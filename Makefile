# triadtime — build / test / reproduce

GO ?= go

.PHONY: all build test test-short test-race vet lint lint-audit fuzz-smoke bench bench-json figures check audit examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Custom analyzer suite (cmd/triad-vet): determinism, hot-path
# allocation, wire-kind exhaustiveness, sealer/opener copy, lock
# discipline, nonce partitioning, durability ordering, atomic-field
# consistency, and epoch fencing. See DESIGN.md, "Static analysis".
lint:
	$(GO) run ./cmd/triad-vet ./...

# Suppression budget: every //triad:nolint must name its analyzers and
# carry a reason, and the total count must not exceed
# lint-baseline.txt. Fails the build on silent or unexplained
# suppressions.
lint-audit:
	$(GO) run ./cmd/triad-vet -nolint-audit

test:
	$(GO) test ./...

# Short mode skips the wall-clock-bound live-UDP tests.
test-short:
	$(GO) test -short ./...

# Race detector over the whole module — exercises the parallel
# experiment runner, trace recorder, and live transport under -race.
test-race:
	$(GO) test -race ./...

# Regenerate every paper figure/table as benchmark output.
bench:
	$(GO) test -bench=. -benchmem

# Tracked performance baseline: the hot-path micro-benchmarks (now
# including the commit vault's lock/unlock path) plus the end-to-end
# live serving throughput benchmark at full benchtime, and one
# iteration of every figure-regeneration benchmark, converted to
# JSON. The output (BENCH_pr9.json) is checked in so later PRs can
# diff ns/op, allocs/op, events/sec, and req/s against it
# (BENCH_pr8.json is the pre-commit-subsystem baseline; BENCH_pr7.json
# predates serve sharding; BENCH_pr4.json predates streaming stats).
BENCH_JSON_OUT ?= BENCH_pr9.json

bench-json:
	{ $(GO) test ./internal/sim ./internal/simnet ./internal/wire ./internal/serve ./internal/commit -run='^$$' \
		-bench='^(BenchmarkSchedulerThroughput|BenchmarkNetworkDelivery|BenchmarkSealOpenRoundtrip|BenchmarkServeDispatch|BenchmarkLiveServeThroughput|BenchmarkCommitUnlockThroughput|BenchmarkCommitLock)$$' -benchmem \
	  && $(GO) test . -run='^$$' -bench=. -benchtime=1x -benchmem ; } \
	| $(GO) run ./cmd/bench-json -out $(BENCH_JSON_OUT)

# Full figure regeneration with CSV + gnuplot scripts under results/.
figures:
	$(GO) run ./cmd/triad-sim -fig all -seed 1 -out results

# Run every Fuzz* target for a short burst of new-input generation —
# a smoke pass over the wire parser/sealer and TSA verifier fuzzers,
# not a soak (lengthen with FUZZTIME=5m).
FUZZTIME ?= 10s

fuzz-smoke:
	@set -e; for pkg in $$($(GO) list ./...); do \
		for f in $$($(GO) test -list '^Fuzz' $$pkg 2>/dev/null | grep '^Fuzz' || true); do \
			echo "== $$pkg $$f"; \
			$(GO) test $$pkg -run '^$$' -fuzz "^$$f$$" -fuzztime $(FUZZTIME); \
		done; \
	done

# Full pre-merge gate: vet, lint, the suppression budget, build,
# tests, and the race detector.
check: vet lint lint-audit build test test-race

# 37-assertion reproduction audit (non-zero exit on any mismatch),
# preceded by the static-analysis gate. Covers the paper figures, the
# quorum fault matrix, the commit attack suite, and the thousand-node
# topology shrink.
audit: lint lint-audit
	$(GO) run ./cmd/triad-sim -fig check -seed 1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/attack-demo
	$(GO) run ./examples/resilient-demo
	$(GO) run ./examples/lease-manager
	$(GO) run ./examples/gossip-demo

clean:
	rm -rf results test_output.txt bench_output.txt
