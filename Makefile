# triadtime — build / test / reproduce

GO ?= go

.PHONY: all build test vet bench figures check examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short mode skips the wall-clock-bound live-UDP tests.
test-short:
	$(GO) test -short ./...

# Regenerate every paper figure/table as benchmark output.
bench:
	$(GO) test -bench=. -benchmem

# Full figure regeneration with CSV + gnuplot scripts under results/.
figures:
	$(GO) run ./cmd/triad-sim -fig all -seed 1 -out results

# 16-assertion reproduction audit (non-zero exit on any mismatch).
check:
	$(GO) run ./cmd/triad-sim -fig check -seed 1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/attack-demo
	$(GO) run ./examples/resilient-demo
	$(GO) run ./examples/lease-manager
	$(GO) run ./examples/gossip-demo

clean:
	rm -rf results test_output.txt bench_output.txt
