package triadtime

// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation (Section IV) plus the Section V extension. Each benchmark
// regenerates its figure from the deterministic simulation at the
// paper's own scale (Figure 3 really simulates 8 hours) and reports the
// headline quantities as benchmark metrics; the first iteration prints
// the same rows the paper reports. Run:
//
//	go test -bench=. -benchmem
//
// Absolute wall-clock numbers are simulation throughput, not protocol
// performance; the protocol-level results are in the printed summaries
// and metrics (drift rates, availabilities, calibrated frequencies).

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"triadtime/internal/experiment"
	"triadtime/internal/simtime"
)

// printOnce emits a figure's rows on the benchmark's first iteration.
func printOnce(b *testing.B, i int, summary string) {
	b.Helper()
	if i == 0 {
		fmt.Printf("\n%s\n", summary)
	}
}

// BenchmarkFig1aTriadLikeAEXCDF regenerates Figure 1a: the CDF of
// inter-AEX delays under the Triad-like simulated distribution.
func BenchmarkFig1aTriadLikeAEXCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig1a(uint64(i)+1, 2*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, res.Summary())
		b.ReportMetric(res.Quantile(0.5), "p50_gap_s")
		b.ReportMetric(float64(len(res.Gaps)), "gaps")
	}
}

// BenchmarkFig1bIsolatedCoreAEXCDF regenerates Figure 1b: inter-AEX
// delays on a monitoring core isolated from most OS interruptions
// (mode ≈ 5.4 minutes).
func BenchmarkFig1bIsolatedCoreAEXCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig1b(uint64(i)+1, 24*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, res.Summary())
		b.ReportMetric(res.Quantile(0.5), "p50_gap_s")
	}
}

// BenchmarkTableINCMonitoring regenerates §IV-A.1's table: 10k INC
// measurements per 15e6 TSC ticks (paper: mean 632181, σ 109.5 raw;
// mean 632182, σ 2.9 and range 10 after outlier removal).
func BenchmarkTableINCMonitoring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunINCTable(uint64(i)+1, 10000)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, res.Summary())
		b.ReportMetric(res.Clean.Mean, "clean_mean_INC")
		b.ReportMetric(res.Clean.Stddev, "clean_stddev_INC")
	}
}

// BenchmarkFig2aDriftNoAttack regenerates Figure 2a: 30 minutes of
// fault-free drift under Triad-like AEXs (sawtooth, ~110ppm).
func BenchmarkFig2aDriftNoAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig2(uint64(i)+1, 30*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, res.Summary())
		worst := 0.0
		for n := 0; n < 3; n++ {
			if rate, ok := res.DriftRate(n, 120, 1800); ok {
				worst = math.Max(worst, math.Abs(rate*1e6))
			}
		}
		if ppm, ok := res.SegmentDriftPPM(0); ok {
			b.ReportMetric(ppm, "node1_segment_drift_ppm")
		}
		b.ReportMetric(worst, "worst_drift_ppm")
	}
}

// BenchmarkFig2bTAReferences regenerates Figure 2b: cumulative Time
// Authority references per node over the Figure 2 run.
func BenchmarkFig2bTAReferences(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig2(uint64(i)+1, 30*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\nFig2b TA references after 30min:")
			for n := 0; n < 3; n++ {
				fmt.Printf(" node%d=%d", n+1, res.TACounts[n].Final())
			}
			fmt.Println()
		}
		b.ReportMetric(float64(res.TACounts[0].Final()), "ta_refs_node1")
	}
}

// BenchmarkFig3aDriftLowAEX regenerates Figure 3a: 8 hours in the
// low-AEX environment; the fastest calibrated clock leads peers via
// 50–70ms forward jumps.
func BenchmarkFig3aDriftLowAEX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig3(uint64(i)+1, 8*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, res.Summary())
		b.ReportMetric(res.Availability[0]*100, "avail_node1_pct")
	}
}

// BenchmarkFig3bStateTimeline regenerates Figure 3b: the node-state
// timing diagram; a single FullCalib stay at the start of the run.
func BenchmarkFig3bStateTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig3(uint64(i)+1, time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\nFig3b state timeline (first hour, node 1):\n")
			segs := res.Timelines[0].Segments(simtime.Epoch, simtime.FromDuration(time.Hour))
			for _, s := range segs {
				fmt.Printf("  %10.3fs - %10.3fs  %s\n", s.From.Seconds(), s.To.Seconds(), s.State)
			}
		}
		full := 0
		for _, s := range res.Timelines[0].Segments(simtime.Epoch, simtime.FromDuration(time.Hour)) {
			if s.State == StateFullCalib {
				full++
			}
		}
		b.ReportMetric(float64(full), "fullcalib_stays")
	}
}

// BenchmarkFig4FPlusLowAEX regenerates Figure 4: F+ attack on Node 3 in
// the low-AEX environment (paper: F₃=3191.224MHz, drift -91ms/s).
func BenchmarkFig4FPlusLowAEX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig4(uint64(i)+1, 10*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, res.Summary())
		b.ReportMetric(res.FCalib[2]/1e6, "node3_fcalib_MHz")
		if rate, ok := res.DriftRate(2, 60, 300); ok {
			b.ReportMetric(rate*1e3, "node3_drift_ms_per_s")
		}
	}
}

// BenchmarkFig5FPlusTriadLike regenerates Figure 5: F+ with all nodes
// under Triad-like AEXs; Node 3 oscillates between peers' drift and
// ≈-150ms.
func BenchmarkFig5FPlusTriadLike(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig5(uint64(i)+1, 10*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, res.Summary())
		minDrift := 0.0
		for _, p := range res.Drift[2].Available() {
			if p.RefSeconds > 60 {
				minDrift = math.Min(minDrift, p.DriftSeconds)
			}
		}
		b.ReportMetric(minDrift*1e3, "node3_min_drift_ms")
		b.ReportMetric(res.FCalib[2]/1e6, "node3_fcalib_MHz")
	}
}

// BenchmarkFig6aFMinusPropagation regenerates Figure 6a: the F- attack
// propagating from Node 3 to honest nodes once they experience AEXs
// (t >= 104s).
func BenchmarkFig6aFMinusPropagation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig6(uint64(i)+1, 7*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, res.Summary())
		afterMax := 0.0
		for _, p := range res.Drift[0].Available() {
			if p.RefSeconds > 104 {
				afterMax = math.Max(afterMax, p.DriftSeconds)
			}
		}
		b.ReportMetric(afterMax, "node1_max_skip_s")
		b.ReportMetric(res.FCalib[2]/1e6, "node3_fcalib_MHz")
	}
}

// BenchmarkFig6bAEXCounts regenerates Figure 6b: cumulative AEX counts,
// flat for honest nodes until t=104s, then linear.
func BenchmarkFig6bAEXCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig6(uint64(i)+1, 7*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\nFig6b AEX counts: ")
			at104, end := 0, 0
			for _, p := range res.AEXCounts[0].Points {
				if p.RefSeconds <= 104 {
					at104 = p.Count
				}
				end = p.Count
			}
			fmt.Printf("node1 t<=104s: %d, t=end: %d; node3 end: %d\n",
				at104, end, res.AEXCounts[2].Final())
		}
		b.ReportMetric(float64(res.AEXCounts[0].Final()), "node1_aex_total")
	}
}

// BenchmarkTableAvailability regenerates §IV-A.2's availability
// numbers: ≥98% over 30 minutes of Triad-like AEXs (including initial
// calibration), up to 99.9% over 8 low-AEX hours.
func BenchmarkTableAvailability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunAvailabilityTable(context.Background(), uint64(i)+1, 30*time.Minute, 8*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nAvailability (§IV-A.2):")
			for _, row := range rows {
				fmt.Println(" ", row.Summary())
			}
		}
		b.ReportMetric(rows[0].Availability[0]*100, "triadlike_pct")
		b.ReportMetric(rows[1].Availability[0]*100, "lowaex_pct")
	}
}

// BenchmarkExtResilientUnderAttack regenerates the Section V headline:
// the hardened protocol under the Figure 6 F- scenario keeps honest
// nodes safe.
func BenchmarkExtResilientUnderAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunExtensionVariant(uint64(i)+1, experiment.VariantHardened, FMinus, 7*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, res.Summary())
		b.ReportMetric(res.HonestMaxDrift*1e3, "honest_max_drift_ms")
	}
}

// BenchmarkExtAblation regenerates the ablation table: every Section V
// mechanism toggled under the F- propagation scenario.
func BenchmarkExtAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiment.RunExtensionComparison(context.Background(), uint64(i)+1, 7*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nSection V ablation (F- propagation scenario):")
			fmt.Print(experiment.ComparisonSummary(results))
		}
		for _, r := range results {
			if r.Variant == experiment.VariantOriginal {
				b.ReportMetric(r.HonestMaxDrift, "original_honest_drift_s")
			}
			if r.Variant == experiment.VariantHardened {
				b.ReportMetric(r.HonestMaxDrift*1e3, "hardened_honest_drift_ms")
			}
		}
	}
}

// BenchmarkBaselineDriftQuality compares synchronization quality:
// Triad's ≤1s-window regression vs the hardened 8s window vs an
// NTP-style discipline, all with the same +100ppm crystal error (the
// paper's §IV-A.2 point: Triad's effective drift is an order of
// magnitude above NTP's 15ppm standard).
func BenchmarkBaselineDriftQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunDriftQuality(uint64(i)+1, 2*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nDrift quality (same TA, same +100ppm crystal):")
			for _, r := range rows {
				fmt.Println(" ", r.Summary())
			}
		}
		b.ReportMetric(rows[0].ResidualPPM, "triad_ppm")
		b.ReportMetric(rows[2].ResidualPPM, "ntp_ppm")
	}
}

// BenchmarkBaselineT3E maps T3E's use-quota trade-off (§II-A): quota
// vs TPM-delay attack throughput/staleness, plus the TPM owner's
// ±32.5% rate-configuration attack that Triad's TA anchoring is immune
// to.
func BenchmarkBaselineT3E(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep, err := experiment.RunT3ETradeoff(uint64(i)+1, 2000, 10*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		drift, err := experiment.RunT3EOwnerDrift(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println()
			fmt.Print(experiment.BaselineSummary(sweep, drift))
		}
		b.ReportMetric(sweep[len(sweep)-1].Throughput*100, "bigquota_tput_pct")
	}
}

// BenchmarkExtLossResilience sweeps packet loss over the fault-free
// scenario: loss costs retries and availability, never calibration
// accuracy.
func BenchmarkExtLossResilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunLossResilience(context.Background(), uint64(i)+1, 10*time.Minute, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nPacket-loss resilience (Triad-like scenario):")
			for _, r := range rows {
				fmt.Println(" ", r.Summary())
			}
		}
		b.ReportMetric(rows[len(rows)-1].MinAvailability*100, "lossy_avail_pct")
	}
}

// BenchmarkExtTAOutage blacks out the Time Authority mid-run: peers
// keep some service alive, and the cluster recovers when the authority
// returns.
func BenchmarkExtTAOutage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTAOutage(uint64(i)+1, 15*time.Minute, 5*time.Minute, 8*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\n" + res.Summary())
		}
		b.ReportMetric(res.AvailabilityDuring*100, "outage_avail_pct")
	}
}

// BenchmarkExtQuorumFaults regenerates the multi-authority quorum
// fault suite: availability and correctness of Marzullo consensus over
// N Time Authorities versus the single-TA baseline under outages,
// lying/delaying authorities, split-brain, and staggered failures.
func BenchmarkExtQuorumFaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunQuorumFaults(context.Background(), uint64(i)+10, 5*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nMulti-authority quorum fault suite:")
			for _, r := range rows {
				fmt.Println("  " + r.Summary())
			}
		}
		for _, r := range rows {
			switch r.Name {
			case "baseline-1ta-outage":
				b.ReportMetric(r.RawAvailability*100, "baseline_outage_avail_pct")
			case "quorum-3ta-1dark":
				b.ReportMetric(r.RawAvailability*100, "quorum_1dark_avail_pct")
			case "quorum-3ta-lying-fixed":
				b.ReportMetric(r.CorrectAvailability*100, "quorum_lying_correct_pct")
			}
		}
	}
}

// BenchmarkExtDualMonitor regenerates the §IV-A.1 RQ A.1 answer: an
// attacker masking a 0.8x TSC scaling with a matching discrete DVFS
// drop evades INC-only monitoring but not the coupled
// frequency-independent memory monitor.
func BenchmarkExtDualMonitor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunDualMonitorAblation(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nDVFS-masked TSC scaling (0.8x TSC + 3500->2800MHz core):")
			for _, r := range rows {
				fmt.Println(" ", r.Summary())
			}
		}
		b.ReportMetric(rows[0].FinalClockRate, "inconly_rate")
		b.ReportMetric(rows[1].FinalClockRate, "dual_rate")
	}
}

// BenchmarkExtClusterScale sweeps cluster sizes through the F-
// propagation scenario: peer redundancy improves availability but the
// adopt-the-highest policy lets one fast clock infect honest nodes at
// every size.
func BenchmarkExtClusterScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunClusterScale(context.Background(), uint64(i)+1, nil, 0, 5*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nCluster-size sweep under F- (one compromised node):")
			for _, r := range rows {
				fmt.Println(" ", r.Summary())
			}
		}
		b.ReportMetric(float64(rows[len(rows)-1].InfectedHonest), "n9_infected")
	}
}

// BenchmarkExtThousandNode runs the scale1k topology: 20 partitions of
// 5 regions x 10 nodes (1000 nodes total) with per-region TAs, an
// asymmetric WAN delay matrix, 10% churn, and a region-isolation
// window — the streaming-stats/pooled-probe memory model's headline
// workload. allocs/op here is the regression gate for the fixed-memory
// claim: per-tick accumulation must not allocate, so allocations stay
// proportional to node count, not to simulated duration.
func BenchmarkExtThousandNode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTopology(context.Background(), experiment.DefaultScale1K(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Thousand-node partitioned topology:\n"+res.Summary())
		b.ReportMetric(res.MinAvailability*100, "min_avail_pct")
		b.ReportMetric(float64(res.Holdovers), "holdovers")
		b.ReportMetric(res.Rollup.Drift.Quantile(0.99)*1e3, "drift_p99_ms")
	}
}

// BenchmarkTableServingLatency reports the client-visible face of
// §IV-A.2's availability: retry-until-success latency of TrustedNow
// under the fault-free Triad-like scenario.
func BenchmarkTableServingLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunServingLatency(uint64(i)+1, 10*time.Minute, 50*time.Millisecond, time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Client-visible serving latency:\n  "+res.Summary())
		b.ReportMetric(res.FirstTry*100, "first_try_pct")
		b.ReportMetric(float64(res.P99.Microseconds()), "p99_us")
	}
}

// BenchmarkTableSeedSweep reports the reproduction's error bars: the
// Figure 2 headline quantities across independent seeds.
func BenchmarkTableSeedSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunSeedSweep(context.Background(), uint64(i)*100+1, 5, 10*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, res.Summary())
		b.ReportMetric(res.Availability.Min*100, "min_avail_pct")
		b.ReportMetric(res.FCalibErrPPM.Max, "max_fcalib_err_ppm")
	}
}

// BenchmarkExtAttackLatency contrasts client-visible service under F-:
// the original protocol serves corrupted time at high availability;
// the hardened one converts the attack into visible unavailability on
// the compromised node only.
func BenchmarkExtAttackLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunAttackLatency(context.Background(), uint64(i)+1, 5*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nClient-visible service under F- attack:")
			for _, r := range rows {
				fmt.Println(" ", r.Summary())
			}
		}
		b.ReportMetric(rows[0].CompromisedFirstTry*100, "orig_compromised_pct")
		b.ReportMetric(rows[1].CompromisedFirstTry*100, "hard_compromised_pct")
	}
}

// BenchmarkExtChimerGossip quantifies §V's true-chimer gossip: under a
// lossy network, accredited peers substitute for same-moment
// majorities and the hardened cluster relies less often on the TA.
func BenchmarkExtChimerGossip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunGossipComparison(uint64(i)+1, 10*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nTrue-chimer gossip under 35% loss (5 hardened nodes):")
			for _, r := range rows {
				fmt.Println(" ", r.Summary())
			}
		}
		b.ReportMetric(rows[0].TARefsPerNode, "ta_refs_no_gossip")
		b.ReportMetric(rows[1].TARefsPerNode, "ta_refs_gossip")
	}
}

// BenchmarkTableCalibrationTime reports startup (time-to-first-service)
// distributions per protocol and interrupt environment.
func BenchmarkTableCalibrationTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunCalibrationTime(context.Background(), uint64(i)*50+300, 10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nTime to first trusted timestamp:")
			for _, r := range rows {
				fmt.Println(" ", r.Summary())
			}
		}
		b.ReportMetric(rows[1].P50.Seconds(), "orig_storm_p50_s")
		b.ReportMetric(rows[3].P50.Seconds(), "hard_storm_p50_s")
	}
}

// BenchmarkParallelSeedSweep measures the experiment runner's realized
// speedup: the Figure 2a seed sweep executed serially vs. on a full
// worker pool. The sweep's aggregate statistics are identical either
// way; only the wall clock changes.
func BenchmarkParallelSeedSweep(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				avails, err := RunSeeds(context.Background(), workers, Seeds(uint64(i)*10+1, 6),
					func(_ context.Context, seed uint64) (float64, error) {
						res, err := experiment.RunFig2(seed, 5*time.Minute)
						if err != nil {
							return 0, err
						}
						worst := 1.0
						for _, a := range res.Availability {
							worst = math.Min(worst, a)
						}
						return worst, nil
					})
				if err != nil {
					b.Fatal(err)
				}
				worst := 1.0
				for _, a := range avails {
					worst = math.Min(worst, a)
				}
				b.ReportMetric(worst*100, "worst_avail_pct")
			}
		})
	}
}
