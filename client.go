package triadtime

import (
	"fmt"

	"triadtime/internal/wire"
)

// The client side of the serving protocol (see internal/serve): sealed
// TimeRequest/TimeResponse datagrams over the node's client-facing UDP
// endpoint. These aliases and helpers are the public surface external
// consumers use — the wire package itself is internal.

// TimeRequest is a client's timestamp request.
type TimeRequest = wire.TimeRequest

// TimeResponse is the endpoint's answer.
type TimeResponse = wire.TimeResponse

// StampStatus is a TimeResponse's outcome code.
type StampStatus = wire.StampStatus

// CommitRequest is a client's commitment operation (lock, unlock, or
// status — see Kind).
type CommitRequest = wire.CommitRequest

// CommitResponse is the endpoint's answer to a commitment operation.
type CommitResponse = wire.CommitResponse

// CommitVerdict is a CommitResponse's outcome code.
type CommitVerdict = wire.CommitVerdict

// Kind discriminates serving-protocol messages (the commit operation
// kinds below; timestamp requests carry their kind implicitly).
type Kind = wire.Kind

// Serving protocol constants, re-exported from the wire layer.
const (
	// FlagWantToken asks the endpoint to stamp the request's document
	// hash into an RFC3161-style token (requires a TSA-enabled endpoint).
	FlagWantToken = wire.FlagWantToken
	// StatusOK: the response carries trusted time.
	StatusOK = wire.StatusOK
	// StatusOverloaded: the request was shed by admission control;
	// back off and retry.
	StatusOverloaded = wire.StatusOverloaded
	// StatusUnavailable: the node cannot serve trusted time right now
	// (tainted or calibrating).
	StatusUnavailable = wire.StatusUnavailable

	// KindCommitLock mints a time-locked commitment token.
	KindCommitLock = wire.KindCommitLock
	// KindCommitUnlock asks the endpoint to vouch that the token's
	// unlock time has passed.
	KindCommitUnlock = wire.KindCommitUnlock
	// KindCommitStatus is the read-only form of unlock.
	KindCommitStatus = wire.KindCommitStatus
	// FlagCommitLease marks a lock as lease-mode: the token is fenced
	// by the vault's restart epoch instead of surviving restarts.
	FlagCommitLease = wire.FlagLease

	// CommitOK: the operation was granted (lock minted, unlock vouched).
	CommitOK = wire.CommitOK
	// CommitSealed: trusted time has not reached the unlock time.
	CommitSealed = wire.CommitSealed
	// CommitFenced: the token's epoch was fenced by a restart.
	CommitFenced = wire.CommitFenced
	// CommitBadToken: the token failed authentication.
	CommitBadToken = wire.CommitBadToken
	// CommitUnavailable: the clock cannot vouch right now (tainted,
	// calibrating, rolled back, or Degraded holdover), or the endpoint
	// has no commitment vault.
	CommitUnavailable = wire.CommitUnavailable
	// CommitOverloaded: the request was shed by admission control.
	CommitOverloaded = wire.CommitOverloaded

	// CommitTokenSize is the size of a serialized commitment token
	// (the CommitRequest/CommitResponse Token field; triad-seal's hex
	// I/O is twice this many characters).
	CommitTokenSize = wire.CommitTokenSize
)

// ClientSealer seals timestamp and commitment requests under the
// endpoint's client key. Not safe for concurrent use; one sealer per
// sending goroutine with a distinct senderID each.
type ClientSealer struct {
	s     *wire.Sealer
	plain [wire.CommitRequestSize]byte
}

// NewClientSealer creates a sealer with the given wire identity.
func NewClientSealer(key []byte, senderID uint32) (*ClientSealer, error) {
	s, err := wire.NewSealer(key, senderID)
	if err != nil {
		return nil, fmt.Errorf("triadtime: %w", err)
	}
	return &ClientSealer{s: s}, nil
}

// SealRequest appends the sealed request datagram to dst.
func (c *ClientSealer) SealRequest(dst []byte, req TimeRequest) []byte {
	req.MarshalInto(c.plain[:])
	return c.s.SealDatagramAppend(dst, c.plain[:wire.TimeRequestSize])
}

// SealCommitRequest appends the sealed commit-operation datagram to
// dst. The endpoint must run a commitment vault; one without answers
// CommitUnavailable (or, vault-less live endpoints, drops the datagram
// as oversize).
func (c *ClientSealer) SealCommitRequest(dst []byte, req CommitRequest) []byte {
	req.MarshalInto(c.plain[:])
	return c.s.SealDatagramAppend(dst, c.plain[:wire.CommitRequestSize])
}

// ClientOpener authenticates and decodes response datagrams. Not safe
// for concurrent use (it tracks a replay window).
type ClientOpener struct {
	o       *wire.Opener
	scratch [wire.CommitResponseSize + wire.SealedOverhead]byte
}

// NewClientOpener creates an opener for the endpoint's client key.
func NewClientOpener(key []byte) (*ClientOpener, error) {
	o, err := wire.NewOpener(key)
	if err != nil {
		return nil, fmt.Errorf("triadtime: %w", err)
	}
	return &ClientOpener{o: o}, nil
}

// OpenResponse authenticates one datagram and decodes the response.
func (c *ClientOpener) OpenResponse(datagram []byte) (TimeResponse, error) {
	plain, _, err := c.o.OpenDatagramInto(c.scratch[:0], datagram)
	if err != nil {
		return TimeResponse{}, fmt.Errorf("triadtime: %w", err)
	}
	resp, err := wire.UnmarshalTimeResponse(plain)
	if err != nil {
		return TimeResponse{}, fmt.Errorf("triadtime: %w", err)
	}
	return resp, nil
}

// OpenCommitResponse authenticates one datagram and decodes the
// commit-operation response.
func (c *ClientOpener) OpenCommitResponse(datagram []byte) (CommitResponse, error) {
	plain, _, err := c.o.OpenDatagramInto(c.scratch[:0], datagram)
	if err != nil {
		return CommitResponse{}, fmt.Errorf("triadtime: %w", err)
	}
	resp, err := wire.UnmarshalCommitResponse(plain)
	if err != nil {
		return CommitResponse{}, fmt.Errorf("triadtime: %w", err)
	}
	return resp, nil
}
