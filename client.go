package triadtime

import (
	"fmt"

	"triadtime/internal/wire"
)

// The client side of the serving protocol (see internal/serve): sealed
// TimeRequest/TimeResponse datagrams over the node's client-facing UDP
// endpoint. These aliases and helpers are the public surface external
// consumers use — the wire package itself is internal.

// TimeRequest is a client's timestamp request.
type TimeRequest = wire.TimeRequest

// TimeResponse is the endpoint's answer.
type TimeResponse = wire.TimeResponse

// StampStatus is a TimeResponse's outcome code.
type StampStatus = wire.StampStatus

// Serving protocol constants, re-exported from the wire layer.
const (
	// FlagWantToken asks the endpoint to stamp the request's document
	// hash into an RFC3161-style token (requires a TSA-enabled endpoint).
	FlagWantToken = wire.FlagWantToken
	// StatusOK: the response carries trusted time.
	StatusOK = wire.StatusOK
	// StatusOverloaded: the request was shed by admission control;
	// back off and retry.
	StatusOverloaded = wire.StatusOverloaded
	// StatusUnavailable: the node cannot serve trusted time right now
	// (tainted or calibrating).
	StatusUnavailable = wire.StatusUnavailable
)

// ClientSealer seals timestamp requests under the endpoint's client
// key. Not safe for concurrent use; one sealer per sending goroutine
// with a distinct senderID each.
type ClientSealer struct {
	s     *wire.Sealer
	plain [wire.TimeRequestSize]byte
}

// NewClientSealer creates a sealer with the given wire identity.
func NewClientSealer(key []byte, senderID uint32) (*ClientSealer, error) {
	s, err := wire.NewSealer(key, senderID)
	if err != nil {
		return nil, fmt.Errorf("triadtime: %w", err)
	}
	return &ClientSealer{s: s}, nil
}

// SealRequest appends the sealed request datagram to dst.
func (c *ClientSealer) SealRequest(dst []byte, req TimeRequest) []byte {
	req.MarshalInto(c.plain[:])
	return c.s.SealDatagramAppend(dst, c.plain[:])
}

// ClientOpener authenticates and decodes response datagrams. Not safe
// for concurrent use (it tracks a replay window).
type ClientOpener struct {
	o       *wire.Opener
	scratch [wire.TimeResponseSize + wire.SealedOverhead]byte
}

// NewClientOpener creates an opener for the endpoint's client key.
func NewClientOpener(key []byte) (*ClientOpener, error) {
	o, err := wire.NewOpener(key)
	if err != nil {
		return nil, fmt.Errorf("triadtime: %w", err)
	}
	return &ClientOpener{o: o}, nil
}

// OpenResponse authenticates one datagram and decodes the response.
func (c *ClientOpener) OpenResponse(datagram []byte) (TimeResponse, error) {
	plain, _, err := c.o.OpenDatagramInto(c.scratch[:0], datagram)
	if err != nil {
		return TimeResponse{}, fmt.Errorf("triadtime: %w", err)
	}
	resp, err := wire.UnmarshalTimeResponse(plain)
	if err != nil {
		return TimeResponse{}, fmt.Errorf("triadtime: %w", err)
	}
	return resp, nil
}
