package triadtime

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// ClusterFile is the on-disk deployment description shared by
// cmd/triad-node and cmd/timeauthority: one JSON file describes the
// whole cluster, and each process picks its own entry by id.
//
//	{
//	  "keyHex": "<64 hex chars>",
//	  "authority": {"id": 100, "addr": "ta.example:7100"},
//	  "nodes": [
//	    {"id": 1, "addr": "a.example:7101"},
//	    {"id": 2, "addr": "b.example:7101"}
//	  ],
//	  "hardened": true,
//	  "aexPeriodMillis": 500
//	}
//
// Multi-authority deployments replace "authority" with an ordered
// "authorities" list (and optionally "quorumMinAgree"); nodes then
// calibrate by Marzullo consensus across the set:
//
//	"authorities": [
//	  {"id": 100, "addr": "ta0.example:7100"},
//	  {"id": 101, "addr": "ta1.example:7100"},
//	  {"id": 102, "addr": "ta2.example:7100"}
//	]
type ClusterFile struct {
	// KeyHex is the cluster's pre-shared AES-256 key, hex-encoded.
	KeyHex string `json:"keyHex"`
	// Authority is the Time Authority endpoint (single-authority
	// deployments; ignored when Authorities is set).
	Authority Endpoint `json:"authority,omitempty"`
	// Authorities lists the Time Authorities for multi-authority quorum
	// calibration, in quorum order. With two or more entries nodes run
	// Marzullo consensus over the set and Authority may be omitted.
	Authorities []Endpoint `json:"authorities,omitempty"`
	// QuorumMinAgree optionally relaxes the quorum's strict-majority
	// rule to "at least this many authorities agree" (e.g. 1 for a
	// 2-authority deployment that must survive one loss).
	QuorumMinAgree int `json:"quorumMinAgree,omitempty"`
	// Nodes lists every Triad node.
	Nodes []Endpoint `json:"nodes"`
	// Hardened selects the Section V protocol for all nodes.
	Hardened bool `json:"hardened,omitempty"`
	// AEXPeriodMillis configures the synthetic interrupt generator
	// (0 disables it).
	AEXPeriodMillis int `json:"aexPeriodMillis,omitempty"`
}

// Endpoint names one participant.
type Endpoint struct {
	ID   NodeID `json:"id"`
	Addr string `json:"addr"`
}

// LoadClusterFile reads and validates a cluster description.
func LoadClusterFile(path string) (*ClusterFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("triadtime: read cluster file: %w", err)
	}
	var cf ClusterFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, fmt.Errorf("triadtime: parse cluster file: %w", err)
	}
	if err := cf.Validate(); err != nil {
		return nil, err
	}
	return &cf, nil
}

// Validate checks the description's internal consistency.
func (cf *ClusterFile) Validate() error {
	key, err := cf.Key()
	if err != nil {
		return err
	}
	if len(key) != KeySize {
		return fmt.Errorf("triadtime: cluster key must be %d bytes, got %d", KeySize, len(key))
	}
	authorities := cf.authorities()
	if len(authorities) == 0 {
		return fmt.Errorf("triadtime: cluster file missing authority address")
	}
	if len(cf.Nodes) == 0 {
		return fmt.Errorf("triadtime: cluster file lists no nodes")
	}
	if cf.QuorumMinAgree < 0 || cf.QuorumMinAgree > len(authorities) {
		return fmt.Errorf("triadtime: quorumMinAgree %d outside [0, %d authorities]",
			cf.QuorumMinAgree, len(authorities))
	}
	seen := map[NodeID]bool{}
	for _, a := range authorities {
		if a.Addr == "" {
			return fmt.Errorf("triadtime: authority %d has no address", a.ID)
		}
		if seen[a.ID] {
			return fmt.Errorf("triadtime: duplicate participant id %d", a.ID)
		}
		seen[a.ID] = true
	}
	for _, n := range cf.Nodes {
		if n.Addr == "" {
			return fmt.Errorf("triadtime: node %d has no address", n.ID)
		}
		if seen[n.ID] {
			return fmt.Errorf("triadtime: duplicate participant id %d", n.ID)
		}
		seen[n.ID] = true
	}
	return nil
}

// authorities returns the effective authority set: Authorities when
// present, else the single Authority entry (if configured).
func (cf *ClusterFile) authorities() []Endpoint {
	if len(cf.Authorities) > 0 {
		return cf.Authorities
	}
	if cf.Authority.Addr == "" {
		return nil
	}
	return []Endpoint{cf.Authority}
}

// Key decodes the cluster key.
func (cf *ClusterFile) Key() ([]byte, error) {
	key, err := hex.DecodeString(cf.KeyHex)
	if err != nil {
		return nil, fmt.Errorf("triadtime: decode cluster key: %w", err)
	}
	return key, nil
}

// NodeConfig builds the LiveConfig for the participant with the given
// id, listening on listen (which may differ from the advertised
// address when behind NAT or binding 0.0.0.0).
func (cf *ClusterFile) NodeConfig(id NodeID, listen string) (LiveConfig, error) {
	key, err := cf.Key()
	if err != nil {
		return LiveConfig{}, err
	}
	var self *Endpoint
	authorities := cf.authorities()
	directory := make(map[NodeID]string, len(authorities)+len(cf.Nodes))
	taIDs := make([]NodeID, len(authorities))
	for i, a := range authorities {
		directory[a.ID] = a.Addr
		taIDs[i] = a.ID
	}
	var peers []NodeID
	for i := range cf.Nodes {
		n := cf.Nodes[i]
		directory[n.ID] = n.Addr
		if n.ID == id {
			self = &cf.Nodes[i]
			continue
		}
		peers = append(peers, n.ID)
	}
	if self == nil {
		return LiveConfig{}, fmt.Errorf("triadtime: id %d not in cluster file", id)
	}
	if listen == "" {
		listen = self.Addr
	}
	cfg := LiveConfig{
		Key:       key,
		ID:        id,
		Listen:    listen,
		Directory: directory,
		Peers:     peers,
		Authority: taIDs[0],
		AEXPeriod: time.Duration(cf.AEXPeriodMillis) * time.Millisecond,
		Hardened:  cf.Hardened,
	}
	if len(taIDs) >= 2 {
		cfg.Authorities = taIDs
		cfg.QuorumMinAgree = cf.QuorumMinAgree
	}
	return cfg, nil
}
