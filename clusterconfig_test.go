package triadtime

import (
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func validClusterJSON() string {
	return `{
	  "keyHex": "` + strings.Repeat("ab", 32) + `",
	  "authority": {"id": 100, "addr": "ta.example:7100"},
	  "nodes": [
	    {"id": 1, "addr": "a.example:7101"},
	    {"id": 2, "addr": "b.example:7101"},
	    {"id": 3, "addr": "c.example:7101"}
	  ],
	  "hardened": true,
	  "aexPeriodMillis": 500
	}`
}

func writeClusterFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadClusterFile(t *testing.T) {
	cf, err := LoadClusterFile(writeClusterFile(t, validClusterJSON()))
	if err != nil {
		t.Fatal(err)
	}
	key, err := cf.Key()
	if err != nil || len(key) != KeySize || key[0] != 0xab {
		t.Errorf("key = %s, %v", hex.EncodeToString(key), err)
	}
	cfg, err := cf.NodeConfig(2, "")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Listen != "b.example:7101" {
		t.Errorf("Listen = %q (should default to the advertised address)", cfg.Listen)
	}
	if cfg.Authority != 100 || len(cfg.Peers) != 2 || !cfg.Hardened {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.AEXPeriod != 500*time.Millisecond {
		t.Errorf("AEXPeriod = %v", cfg.AEXPeriod)
	}
	if cfg.Directory[3] != "c.example:7101" || cfg.Directory[100] != "ta.example:7100" {
		t.Errorf("directory = %v", cfg.Directory)
	}
	// Listen override for NAT / wildcard binds.
	cfg, _ = cf.NodeConfig(2, "0.0.0.0:7101")
	if cfg.Listen != "0.0.0.0:7101" {
		t.Errorf("Listen override = %q", cfg.Listen)
	}
}

func TestLoadClusterFileErrors(t *testing.T) {
	if _, err := LoadClusterFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := []string{
		`{not json`,
		`{"keyHex": "zz", "authority": {"id":100,"addr":"x:1"}, "nodes":[{"id":1,"addr":"y:1"}]}`,
		`{"keyHex": "abcd", "authority": {"id":100,"addr":"x:1"}, "nodes":[{"id":1,"addr":"y:1"}]}`,
		`{"keyHex": "` + strings.Repeat("ab", 32) + `", "authority": {"id":100,"addr":""}, "nodes":[{"id":1,"addr":"y:1"}]}`,
		`{"keyHex": "` + strings.Repeat("ab", 32) + `", "authority": {"id":100,"addr":"x:1"}, "nodes":[]}`,
		`{"keyHex": "` + strings.Repeat("ab", 32) + `", "authority": {"id":100,"addr":"x:1"}, "nodes":[{"id":1,"addr":"y:1"},{"id":1,"addr":"z:1"}]}`,
		`{"keyHex": "` + strings.Repeat("ab", 32) + `", "authority": {"id":100,"addr":"x:1"}, "nodes":[{"id":1,"addr":""}]}`,
	}
	for i, content := range bad {
		if _, err := LoadClusterFile(writeClusterFile(t, content)); err == nil {
			t.Errorf("bad cluster file %d accepted", i)
		}
	}
}

func TestClusterFileAuthoritiesQuorum(t *testing.T) {
	content := `{
	  "keyHex": "` + strings.Repeat("ab", 32) + `",
	  "authorities": [
	    {"id": 100, "addr": "ta0.example:7100"},
	    {"id": 101, "addr": "ta1.example:7100"},
	    {"id": 102, "addr": "ta2.example:7100"}
	  ],
	  "quorumMinAgree": 2,
	  "nodes": [{"id": 1, "addr": "a.example:7101"}, {"id": 2, "addr": "b.example:7101"}]
	}`
	cf, err := LoadClusterFile(writeClusterFile(t, content))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := cf.NodeConfig(1, "")
	if err != nil {
		t.Fatal(err)
	}
	// Authority order in the file is quorum order in the config.
	want := []NodeID{100, 101, 102}
	if len(cfg.Authorities) != len(want) {
		t.Fatalf("Authorities = %v, want %v", cfg.Authorities, want)
	}
	for i, id := range want {
		if cfg.Authorities[i] != id {
			t.Fatalf("Authorities = %v, want %v", cfg.Authorities, want)
		}
	}
	if cfg.Authority != 100 || cfg.QuorumMinAgree != 2 {
		t.Errorf("Authority=%d QuorumMinAgree=%d", cfg.Authority, cfg.QuorumMinAgree)
	}
	for _, id := range want {
		if cfg.Directory[id] == "" {
			t.Errorf("authority %d missing from directory %v", id, cfg.Directory)
		}
	}

	bad := []string{
		// Duplicate id across authorities.
		`{"keyHex": "` + strings.Repeat("ab", 32) + `",
		  "authorities": [{"id":100,"addr":"x:1"},{"id":100,"addr":"y:1"}],
		  "nodes":[{"id":1,"addr":"z:1"}]}`,
		// Authority id colliding with a node id.
		`{"keyHex": "` + strings.Repeat("ab", 32) + `",
		  "authorities": [{"id":100,"addr":"x:1"},{"id":1,"addr":"y:1"}],
		  "nodes":[{"id":1,"addr":"z:1"}]}`,
		// Authority with no address.
		`{"keyHex": "` + strings.Repeat("ab", 32) + `",
		  "authorities": [{"id":100,"addr":"x:1"},{"id":101,"addr":""}],
		  "nodes":[{"id":1,"addr":"z:1"}]}`,
		// MinAgree above the authority count.
		`{"keyHex": "` + strings.Repeat("ab", 32) + `",
		  "authorities": [{"id":100,"addr":"x:1"},{"id":101,"addr":"y:1"}],
		  "quorumMinAgree": 3,
		  "nodes":[{"id":1,"addr":"z:1"}]}`,
	}
	for i, content := range bad {
		if _, err := LoadClusterFile(writeClusterFile(t, content)); err == nil {
			t.Errorf("bad multi-authority cluster file %d accepted", i)
		}
	}

	// Single-authority files keep the legacy shape: no quorum fields set.
	cf, err = LoadClusterFile(writeClusterFile(t, validClusterJSON()))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err = cf.NodeConfig(1, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Authorities) != 0 || cfg.QuorumMinAgree != 0 {
		t.Errorf("single-authority file produced quorum config: %+v", cfg)
	}
}

func TestNodeConfigUnknownID(t *testing.T) {
	cf, err := LoadClusterFile(writeClusterFile(t, validClusterJSON()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cf.NodeConfig(42, ""); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestClusterFileLiveEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	// A cluster file driving a real (single-node) deployment.
	ta, err := NewAuthorityServer("127.0.0.1:0", mustKey(t), 100)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	content := `{
	  "keyHex": "` + strings.Repeat("ab", 32) + `",
	  "authority": {"id": 100, "addr": "` + ta.LocalAddr().String() + `"},
	  "nodes": [{"id": 1, "addr": "127.0.0.1:0"}]
	}`
	cf, err := LoadClusterFile(writeClusterFile(t, content))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := cf.NodeConfig(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node, err := NewLiveNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	deadline := time.Now().Add(20 * time.Second)
	for node.State() != StateOK {
		if time.Now().After(deadline) {
			t.Fatalf("node from cluster file never calibrated (state %v)", node.State())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func mustKey(t *testing.T) []byte {
	t.Helper()
	key, err := hex.DecodeString(strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	return key
}
