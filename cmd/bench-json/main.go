// Command bench-json converts `go test -bench` output on stdin into a
// machine-readable JSON baseline. The repo's `make bench-json` target
// pipes the tracked micro-benchmarks (scheduler, network delivery,
// seal/open) and the figure-regeneration benchmarks through it to
// produce BENCH_pr4.json, the checked-in performance baseline later
// PRs diff against.
//
// Usage:
//
//	go test -bench=... -benchmem | bench-json -out BENCH_pr4.json
//
// Lines that are not benchmark results (figure summaries, pass/fail
// footers) are ignored; goos/goarch/cpu/pkg headers are captured as
// metadata.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	rep := parse(bufio.NewScanner(os.Stdin))
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench-json: no benchmark results on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) report {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var rep report
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				r.Package = pkg
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	return rep
}

// parseLine decodes one benchmark result line:
//
//	BenchmarkName-8  11450052  105.6 ns/op  9472700 events/sec  0 B/op  0 allocs/op
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Iterations: iters}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			v := val
			r.BytesPerOp = &v
		case "allocs/op":
			v := val
			r.AllocsPerOp = &v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = val
		}
	}
	return r, true
}
