// Command timeauthority runs a live Triad Time Authority over UDP: the
// cluster's root of trust for reference time. It answers encrypted
// TimeRequests, observing each request's sleep before replying with
// the current Unix time.
//
// Usage:
//
//	timeauthority -listen 0.0.0.0:7100 -id 100 -key <64 hex chars>
//
// The key must be shared with every Triad node in the cluster (see
// cmd/triad-node).
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"triadtime/internal/authority"
	"triadtime/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "timeauthority:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("timeauthority", flag.ContinueOnError)
	listen := fs.String("listen", "0.0.0.0:7100", "UDP address to bind")
	id := fs.Uint("id", 100, "the authority's wire identity")
	keyHex := fs.String("key", "", "cluster pre-shared key, 64 hex characters (AES-256)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	key, err := parseKey(*keyHex)
	if err != nil {
		return err
	}
	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		return fmt.Errorf("listen %q: %w", *listen, err)
	}
	srv, err := authority.NewServer(conn, key, uint32(*id))
	if err != nil {
		conn.Close()
		return err
	}
	fmt.Printf("time authority %d serving on %s\n", *id, srv.LocalAddr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sigc:
		fmt.Printf("signal %v: shutting down (%d references served)\n", s, srv.Authority().TotalServed())
		return srv.Close()
	}
}

// parseKey decodes and validates the cluster key.
func parseKey(keyHex string) ([]byte, error) {
	if keyHex == "" {
		return nil, fmt.Errorf("-key is required (%d hex characters)", 2*wire.KeySize)
	}
	key, err := hex.DecodeString(keyHex)
	if err != nil {
		return nil, fmt.Errorf("decode -key: %w", err)
	}
	if len(key) != wire.KeySize {
		return nil, fmt.Errorf("-key must be %d bytes, got %d", wire.KeySize, len(key))
	}
	return key, nil
}
