package main

import (
	"strings"
	"testing"
)

func TestParseKey(t *testing.T) {
	if _, err := parseKey(""); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := parseKey("zz"); err == nil {
		t.Error("non-hex key accepted")
	}
	if _, err := parseKey("aabb"); err == nil {
		t.Error("short key accepted")
	}
	key, err := parseKey(strings.Repeat("ab", 32))
	if err != nil {
		t.Fatalf("valid key rejected: %v", err)
	}
	if len(key) != 32 || key[0] != 0xab {
		t.Errorf("key decoded wrong: %x", key)
	}
}

func TestRunRequiresKey(t *testing.T) {
	if err := run([]string{"-listen", "127.0.0.1:0"}); err == nil {
		t.Error("missing key accepted")
	}
}
