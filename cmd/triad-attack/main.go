// Command triad-attack is the live embodiment of the paper's F+ / F-
// calibration attacks: a UDP middlebox an attacker with OS control
// would interpose between the local Triad node and the Time Authority.
//
// Point the victim node's -authority endpoint at this proxy; the proxy
// forwards to the real authority. Messages stay encrypted end-to-end —
// the proxy classifies each response purely by the observed
// request-to-response hold time (the paper's timing side channel) and
// delays the class its mode targets.
//
// Usage:
//
//	triad-attack -listen :7200 -upstream localhost:7100 -mode F- -delay 100ms
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "triad-attack:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("triad-attack", flag.ContinueOnError)
	listen := fs.String("listen", "0.0.0.0:7200", "UDP address the victim node talks to")
	upstream := fs.String("upstream", "", "the real Time Authority's host:port")
	modeStr := fs.String("mode", "F-", "attack mode: F+ (delay high-sleep responses) or F- (delay low-sleep)")
	delay := fs.Duration("delay", 100*time.Millisecond, "delay added to targeted responses")
	threshold := fs.Duration("threshold", 500*time.Millisecond, "hold-time split between low and high sleep classes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *upstream == "" {
		return fmt.Errorf("-upstream is required")
	}
	delayHigh, err := parseMode(*modeStr)
	if err != nil {
		return err
	}
	upAddr, err := net.ResolveUDPAddr("udp", *upstream)
	if err != nil {
		return fmt.Errorf("resolve upstream: %w", err)
	}
	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	p := &proxy{
		conn:      conn,
		upstream:  upAddr,
		delayHigh: delayHigh,
		extra:     *delay,
		threshold: *threshold,
		flows:     make(map[string]*flow),
	}
	fmt.Printf("%s attack proxy on %s -> %s (delay %v, threshold %v)\n",
		*modeStr, conn.LocalAddr(), upAddr, *delay, *threshold)

	errc := make(chan error, 1)
	go func() { errc <- p.serve() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case <-sigc:
		fmt.Printf("shutting down: %d responses delayed, %d passed\n", p.delayed.value(), p.passed.value())
		return conn.Close()
	}
}

// parseMode maps the flag to "delay the high-hold class?".
func parseMode(s string) (bool, error) {
	switch strings.ToUpper(s) {
	case "F+", "FPLUS":
		return true, nil
	case "F-", "FMINUS":
		return false, nil
	default:
		return false, fmt.Errorf("unknown mode %q (want F+ or F-)", s)
	}
}

// counter is a trivial synchronized counter (stdlib-only build).
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// value reads the counter.
func (c *counter) value() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// flow is the NAT state for one victim endpoint: an upstream socket and
// the outstanding request times used for hold estimation.
type flow struct {
	client net.Addr
	up     *net.UDPConn

	mu          sync.Mutex
	outstanding []time.Time
}

// holdOf matches a response to the oldest outstanding request.
func (f *flow) holdOf(now time.Time) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.outstanding) == 0 {
		return 0
	}
	sent := f.outstanding[0]
	f.outstanding = f.outstanding[1:]
	return now.Sub(sent)
}

func (f *flow) noteRequest(now time.Time) {
	f.mu.Lock()
	f.outstanding = append(f.outstanding, now)
	f.mu.Unlock()
}

// proxy shuttles datagrams between victims and the Time Authority,
// delaying targeted responses.
type proxy struct {
	conn      net.PacketConn
	upstream  *net.UDPAddr
	delayHigh bool
	extra     time.Duration
	threshold time.Duration

	mu    sync.Mutex
	flows map[string]*flow

	delayed counter
	passed  counter
}

// target decides whether a response with the given hold gets delayed —
// the attack's classification step (identical to the simulation's
// internal/attack.Delay).
func (p *proxy) target(hold time.Duration) bool {
	high := hold >= p.threshold
	if p.delayHigh {
		return high
	}
	return !high
}

func (p *proxy) serve() error {
	buf := make([]byte, 64*1024)
	for {
		n, from, err := p.conn.ReadFrom(buf)
		if err != nil {
			return nil // closed
		}
		datagram := make([]byte, n)
		copy(datagram, buf[:n])
		f, err := p.flowFor(from)
		if err != nil {
			continue
		}
		f.noteRequest(time.Now())
		// Requests pass untouched (delaying them would shift both
		// classes equally and cancel out of the regression).
		if _, err := f.up.Write(datagram); err != nil {
			continue
		}
	}
}

// flowFor finds or creates the NAT flow for a victim endpoint, wiring
// its response path.
func (p *proxy) flowFor(client net.Addr) (*flow, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.flows[client.String()]; ok {
		return f, nil
	}
	up, err := net.DialUDP("udp", nil, p.upstream)
	if err != nil {
		return nil, err
	}
	f := &flow{client: client, up: up}
	p.flows[client.String()] = f
	go p.pumpResponses(f)
	return f, nil
}

// pumpResponses relays authority responses back to the victim,
// inserting the attack delay on targeted ones.
func (p *proxy) pumpResponses(f *flow) {
	buf := make([]byte, 64*1024)
	for {
		n, err := f.up.Read(buf)
		if err != nil {
			return
		}
		datagram := make([]byte, n)
		copy(datagram, buf[:n])
		hold := f.holdOf(time.Now())
		if p.target(hold) {
			p.delayed.inc()
			time.AfterFunc(p.extra, func() {
				_, _ = p.conn.WriteTo(datagram, f.client)
			})
			continue
		}
		p.passed.inc()
		_, _ = p.conn.WriteTo(datagram, f.client)
	}
}
