package main

import (
	"math"
	"net"
	"testing"
	"time"

	"triadtime/internal/authority"
	"triadtime/internal/core"
	"triadtime/internal/resilient"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
	"triadtime/internal/transport"
	"triadtime/internal/wire"
)

func TestParseMode(t *testing.T) {
	tests := []struct {
		in      string
		high    bool
		wantErr bool
	}{
		{"F+", true, false},
		{"f+", true, false},
		{"FPLUS", true, false},
		{"F-", false, false},
		{"fminus", false, false},
		{"nope", false, true},
	}
	for _, tt := range tests {
		high, err := parseMode(tt.in)
		if (err != nil) != tt.wantErr || (err == nil && high != tt.high) {
			t.Errorf("parseMode(%q) = %v, %v", tt.in, high, err)
		}
	}
}

func TestProxyTargetClassification(t *testing.T) {
	fp := &proxy{delayHigh: true, threshold: 500 * time.Millisecond}
	fm := &proxy{delayHigh: false, threshold: 500 * time.Millisecond}
	if !fp.target(time.Second) || fp.target(time.Millisecond) {
		t.Error("F+ classification wrong")
	}
	if fm.target(time.Second) || !fm.target(time.Millisecond) {
		t.Error("F- classification wrong")
	}
}

func TestFlowHoldMatching(t *testing.T) {
	f := &flow{}
	t0 := time.Now()
	f.noteRequest(t0)
	f.noteRequest(t0.Add(time.Second))
	if got := f.holdOf(t0.Add(300 * time.Millisecond)); got != 300*time.Millisecond {
		t.Errorf("hold = %v", got)
	}
	if got := f.holdOf(t0.Add(1200 * time.Millisecond)); got != 200*time.Millisecond {
		t.Errorf("hold = %v", got)
	}
	if got := f.holdOf(time.Now()); got != 0 {
		t.Errorf("unmatched response hold = %v, want 0", got)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-upstream", ""}); err == nil {
		t.Error("missing upstream accepted")
	}
	if err := run([]string{"-upstream", "localhost:1", "-mode", "bogus"}); err == nil {
		t.Error("bad mode accepted")
	}
}

// TestLiveFMinusThroughProxy wires a real node through the live attack
// proxy to a real Time Authority and verifies the calibrated rate is
// skewed exactly as the paper's F- analysis predicts.
func TestLiveFMinusThroughProxy(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	key := make([]byte, wire.KeySize)
	for i := range key {
		key[i] = byte(i + 41)
	}
	// Real Time Authority.
	taConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	taSrv, err := authority.NewServer(taConn, key, 100)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = taSrv.Serve() }()
	defer taSrv.Close()

	// Attack proxy in F- mode: with calibration sleeps {0, 300ms} and a
	// 150ms threshold, delaying the low class by 60ms deflates the
	// slope to ~(1 - 60/300) = 0.8x.
	proxyConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	upAddr, err := net.ResolveUDPAddr("udp", taConn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	p := &proxy{
		conn:      proxyConn,
		upstream:  upAddr,
		delayHigh: false,
		extra:     60 * time.Millisecond,
		threshold: 150 * time.Millisecond,
		flows:     make(map[string]*flow),
	}
	go func() { _ = p.serve() }()
	defer proxyConn.Close()

	// Victim node whose "authority" is the proxy.
	nodeConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	platform, err := transport.New(transport.Config{
		Conn: nodeConn,
		Directory: map[simnet.Addr]string{
			100: proxyConn.LocalAddr().String(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer platform.Close()
	var node *core.Node
	var nodeErr error
	platform.Do(func() {
		node, nodeErr = core.NewNode(platform, core.Config{
			Key:            key,
			Addr:           1,
			Authority:      100,
			CalibSleeps:    []time.Duration{0, 300 * time.Millisecond},
			DisableMonitor: true,
		})
	})
	if nodeErr != nil {
		t.Fatal(nodeErr)
	}
	platform.Do(node.Start)

	deadline := time.Now().Add(30 * time.Second)
	var fcalib float64
	for {
		platform.Do(func() { fcalib = node.FCalib() })
		if fcalib != 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if fcalib == 0 {
		t.Fatal("victim never calibrated through the proxy")
	}
	ratio := fcalib / simtime.NominalTSCHz
	// 0.8x expected; allow slack for wall-clock jitter.
	if math.Abs(ratio-0.8) > 0.03 {
		t.Errorf("F_calib ratio through live F- proxy = %v, want ~0.8", ratio)
	}
	if p.delayed.value() == 0 {
		t.Error("proxy delayed nothing")
	}
}

// TestLiveHardenedResistsProxy runs the hardened protocol through the
// live F- proxy: every delayed response violates the node's roundtrip
// bound, so calibration either completes honestly (responses the proxy
// passed) or visibly stalls — never silently skews.
func TestLiveHardenedResistsProxy(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	key := make([]byte, wire.KeySize)
	for i := range key {
		key[i] = byte(i + 43)
	}
	taConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	taSrv, err := authority.NewServer(taConn, key, 100)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = taSrv.Serve() }()
	defer taSrv.Close()

	proxyConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	upAddr, err := net.ResolveUDPAddr("udp", taConn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	// F- mode: all immediate responses get +60ms, far over the node's
	// RTT bound.
	p := &proxy{
		conn:      proxyConn,
		upstream:  upAddr,
		delayHigh: false,
		extra:     60 * time.Millisecond,
		threshold: 150 * time.Millisecond,
		flows:     make(map[string]*flow),
	}
	go func() { _ = p.serve() }()
	defer proxyConn.Close()

	nodeConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	platform, err := transport.New(transport.Config{
		Conn:      nodeConn,
		Directory: map[simnet.Addr]string{100: proxyConn.LocalAddr().String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer platform.Close()
	var node *resilient.Node
	var nodeErr error
	platform.Do(func() {
		node, nodeErr = resilient.NewNode(platform, resilient.Config{
			Key:            key,
			Addr:           1,
			Authority:      100,
			CalibWindow:    2 * time.Second, // keep the test quick
			RTTBound:       20 * time.Millisecond,
			DisableMonitor: true,
		})
	})
	if nodeErr != nil {
		t.Fatal(nodeErr)
	}
	platform.Do(node.Start)

	// Under full F- delaying the node is expected to stall (the visible
	// failure mode); a few seconds is enough to observe the rejections.
	deadline := time.Now().Add(6 * time.Second)
	var fcalib float64
	var rejections int
	for time.Now().Before(deadline) {
		platform.Do(func() {
			fcalib = node.FCalib()
			rejections = node.RTTRejections()
		})
		if fcalib != 0 && rejections > 0 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if rejections == 0 {
		t.Error("hardened node never rejected a delayed response")
	}
	if fcalib != 0 {
		ratio := fcalib / simtime.NominalTSCHz
		if math.Abs(ratio-1) > 0.01 {
			t.Errorf("hardened node calibrated to ratio %v under live F- (silent corruption)", ratio)
		}
	}
	// Either outcome — honest calibration or visible stall — is the
	// hardened contract; corruption is the only failure.
}
