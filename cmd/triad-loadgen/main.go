// Command triad-loadgen drives a live client-serving endpoint (a
// triad-node started with -serve) with sealed TimeRequest traffic and
// reports achieved throughput, response mix, and round-trip latency
// quantiles — the live counterpart of the simulation's load sweep
// (triad-sim -fig load).
//
// Example, 50k req/s for 10 seconds from 32 virtual clients:
//
//	triad-loadgen -target localhost:7201 -key $SERVE_KEY \
//	    -rate 50000 -clients 32 -duration 10s
package main

import (
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sync/atomic"
	"time"

	"triadtime/internal/metrics"
	"triadtime/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "triad-loadgen:", err)
		os.Exit(1)
	}
}

type config struct {
	target     string
	key        []byte
	senderID   uint32
	clients    int
	rate       float64
	duration   time.Duration
	tokenEvery int
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("triad-loadgen", flag.ContinueOnError)
	target := fs.String("target", "", "serving endpoint host:port (required)")
	keyHex := fs.String("key", "", "client-traffic pre-shared key, 64 hex characters (required)")
	id := fs.Uint("id", 9001, "this generator's wire sender identity")
	clients := fs.Int("clients", 16, "virtual client IDs to spread requests over")
	rate := fs.Float64("rate", 50000, "offered load, requests/second")
	duration := fs.Duration("duration", 5*time.Second, "sending window")
	tokenEvery := fs.Int("token-every", 0, "request a timestamp token on every Nth request (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *target == "" {
		return errors.New("-target is required")
	}
	key, err := hex.DecodeString(*keyHex)
	if err != nil || len(key) != wire.KeySize {
		return fmt.Errorf("-key must be %d hex characters", 2*wire.KeySize)
	}
	if *clients <= 0 || *rate <= 0 || *duration <= 0 {
		return errors.New("-clients, -rate and -duration must be positive")
	}
	rep, err := generate(config{
		target:     *target,
		key:        key,
		senderID:   uint32(*id),
		clients:    *clients,
		rate:       *rate,
		duration:   *duration,
		tokenEvery: *tokenEvery,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep.render())
	return nil
}

// report is one generation run's outcome.
type report struct {
	cfg      config
	elapsed  time.Duration
	sent     uint64
	ok       uint64
	shed     uint64
	unavail  uint64
	tokens   uint64
	latency  metrics.HistogramSnapshot
	sentRate float64
	okRate   float64
}

func (r report) render() string {
	lost := r.sent - r.ok - r.shed - r.unavail
	return fmt.Sprintf(
		"offered %.0f req/s for %v (%d virtual clients)\n"+
			"  sent     %8d  (%.0f req/s achieved)\n"+
			"  served   %8d  (%.0f req/s)\n"+
			"  shed     %8d\n"+
			"  unavail  %8d\n"+
			"  lost     %8d\n"+
			"  tokens   %8d\n"+
			"  rtt      %s\n",
		r.cfg.rate, r.elapsed.Round(time.Millisecond), r.cfg.clients,
		r.sent, r.sentRate, r.ok, r.okRate, r.shed, r.unavail, lost, r.tokens,
		r.latency.Summary())
}

// seqSlot pairs a sequence number with its send time; the receiver
// matches responses through a power-of-two ring indexed by seq. All
// fields are atomic: the sender may recycle a slot (ring wrap) while
// the receiver consumes it, and the inUse flag arbitrates ownership.
type seqSlot struct {
	seq   atomic.Uint64
	nanos atomic.Int64
	inUse atomic.Bool
}

// generate runs one load generation against cfg.target.
func generate(cfg config) (report, error) {
	raddr, err := net.ResolveUDPAddr("udp", cfg.target)
	if err != nil {
		return report{}, fmt.Errorf("resolve %q: %w", cfg.target, err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return report{}, err
	}
	defer conn.Close()
	sealer, err := wire.NewSealer(cfg.key, cfg.senderID)
	if err != nil {
		return report{}, err
	}
	opener, err := wire.NewOpener(cfg.key)
	if err != nil {
		return report{}, err
	}

	// One second of in-flight state, rounded up to a power of two.
	ringSize := 1
	for float64(ringSize) < cfg.rate {
		ringSize *= 2
	}
	ring := make([]seqSlot, ringSize)
	mask := uint64(ringSize - 1)

	var okCount, shedCount, unavailCount, tokenCount atomic.Uint64
	latency := metrics.NewLatencyHistogram()
	start := time.Now()

	// Receiver: match responses to the ring and record round-trips.
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		buf := make([]byte, 2048)
		scratch := make([]byte, 0, wire.TimeResponseSize)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return // deadline or closed: generation over
			}
			pt, _, err := opener.OpenDatagramInto(scratch, buf[:n])
			if err != nil {
				continue
			}
			resp, err := wire.UnmarshalTimeResponse(pt)
			if err != nil {
				continue
			}
			slot := &ring[resp.Seq&mask]
			if !slot.inUse.CompareAndSwap(true, false) {
				continue // stale or duplicate
			}
			if slot.seq.Load() != resp.Seq {
				continue // ring wrapped under the response; drop it
			}
			latency.Record(int64(time.Since(start)) - slot.nanos.Load())
			switch resp.Status {
			case wire.StatusOK:
				okCount.Add(1)
				if resp.HasToken {
					tokenCount.Add(1)
				}
			case wire.StatusOverloaded:
				shedCount.Add(1)
			case wire.StatusUnavailable:
				unavailCount.Add(1)
			}
		}
	}()

	// Sender: fixed-interval pacing in 1ms slices to keep syscall
	// overhead per request minimal while spreading the offered load.
	const slice = time.Millisecond
	perSlice := cfg.rate * slice.Seconds()
	var plain [wire.TimeRequestSize]byte
	sealBuf := make([]byte, 0, wire.TimeRequestSize+wire.SealedOverhead)
	var sent uint64
	var carry float64
	ticker := time.NewTicker(slice)
	for now := time.Now(); now.Sub(start) < cfg.duration; now = <-ticker.C {
		carry += perSlice
		n := int(carry)
		carry -= float64(n)
		for i := 0; i < n; i++ {
			seq := sent
			req := wire.TimeRequest{
				// Spread sequential sends across virtual clients (and
				// thereby server shards).
				ClientID: uint64(cfg.senderID)<<32 | seq%uint64(cfg.clients),
				Seq:      seq,
			}
			if cfg.tokenEvery > 0 && seq%uint64(cfg.tokenEvery) == 0 {
				req.Flags = wire.FlagWantToken
				req.Hash[0] = byte(seq)
			}
			slot := &ring[seq&mask]
			slot.inUse.Store(false) // retire any stale occupant
			slot.seq.Store(seq)
			slot.nanos.Store(int64(time.Since(start)))
			slot.inUse.Store(true)
			req.MarshalInto(plain[:])
			sealBuf = sealer.SealDatagramAppend(sealBuf[:0], plain[:])
			if _, err := conn.Write(sealBuf); err != nil {
				continue // transient UDP error: counts as loss
			}
			sent++
		}
	}
	ticker.Stop()
	sendElapsed := time.Since(start)

	// Linger for stragglers, then stop the receiver.
	conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	<-recvDone

	return report{
		cfg:      cfg,
		elapsed:  sendElapsed,
		sent:     sent,
		ok:       okCount.Load(),
		shed:     shedCount.Load(),
		unavail:  unavailCount.Load(),
		tokens:   tokenCount.Load(),
		latency:  latency.Snapshot(),
		sentRate: float64(sent) / sendElapsed.Seconds(),
		okRate:   float64(okCount.Load()) / sendElapsed.Seconds(),
	}, nil
}
