package main

import (
	"encoding/hex"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"triadtime/internal/serve"
	"triadtime/internal/wire"
	"triadtime/tsa"
)

func testServeKey() []byte {
	key := make([]byte, wire.KeySize)
	for i := range key {
		key[i] = byte(i + 101)
	}
	return key
}

// startEndpoint brings up an in-process live serving endpoint backed by
// a fixed trusted clock — the loadgen sees exactly what a triad-node
// -serve exposes.
func startEndpoint(t *testing.T, key []byte) *serve.LiveServer {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	clock := serve.ClockFunc(func() (int64, error) { return 42e9, nil })
	stamper, err := tsa.New(clock, key)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewLiveServer(serve.LiveConfig{
		Conn:     conn,
		Key:      key,
		SenderID: 150,
		Server:   serve.Config{Clock: clock, Stamper: stamper},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestLoadgenAgainstLiveEndpoint(t *testing.T) {
	key := testServeKey()
	srv := startEndpoint(t, key)

	// Offered load kept modest so the smoke test passes on slow CI
	// machines; the ≥50k req/s loopback figure is exercised by
	// TestLoadgenSustainsHighRate below and recorded in DESIGN.md.
	rep, err := generate(config{
		target:     srv.LocalAddr().String(),
		key:        key,
		senderID:   9001,
		workers:    2,
		clients:    8,
		rate:       20000,
		duration:   500 * time.Millisecond,
		tokenEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.sent == 0 {
		t.Fatal("nothing sent")
	}
	// Loopback UDP with a healthy endpoint: expect the vast majority
	// served (allow slack for scheduler hiccups on loaded machines).
	if float64(rep.ok) < 0.8*float64(rep.sent) {
		t.Fatalf("served %d of %d sent", rep.ok, rep.sent)
	}
	if rep.shed != 0 || rep.unavail != 0 {
		t.Fatalf("unexpected shed=%d unavail=%d", rep.shed, rep.unavail)
	}
	if rep.tokens == 0 {
		t.Fatal("no tokens issued despite -token-every")
	}
	if rep.latency.Count != rep.ok+rep.shed+rep.unavail {
		t.Fatalf("latency samples %d != responses %d", rep.latency.Count, rep.ok+rep.shed+rep.unavail)
	}
	if p99 := time.Duration(rep.latency.Quantile(0.99)); p99 <= 0 || p99 > 2*time.Second {
		t.Fatalf("implausible p99 %v", p99)
	}
	out := rep.render()
	for _, want := range []string{"sent", "served", "rtt", "tokens"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if c := srv.Server().Counters(); c.Served != rep.ok || c.TokensIssued != rep.tokens {
		t.Fatalf("endpoint counters %s disagree with report ok=%d tokens=%d", c.Summary(), rep.ok, rep.tokens)
	}
}

// TestLoadgenSustainsHighRate demonstrates the ≥250k req/s loopback
// capability of the batched multi-worker path (see BENCH_pr8.json).
// Opt-in (TRIAD_LOADGEN_FULLRATE=1): wall-clock throughput assertions
// are hardware-dependent and would flake shared CI runners.
func TestLoadgenSustainsHighRate(t *testing.T) {
	if os.Getenv("TRIAD_LOADGEN_FULLRATE") == "" {
		t.Skip("set TRIAD_LOADGEN_FULLRATE=1 to assert ≥250k req/s on loopback")
	}
	key := testServeKey()
	srv := startEndpoint(t, key)
	rep, err := generate(config{
		target:   srv.LocalAddr().String(),
		key:      key,
		senderID: 9001,
		workers:  2,
		clients:  32,
		rate:     300000,
		duration: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.sentRate < 250000 {
		t.Fatalf("achieved only %.0f req/s offered", rep.sentRate)
	}
	if rep.okRate < 250000 {
		t.Fatalf("served only %.0f req/s", rep.okRate)
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-key", hex.EncodeToString(testServeKey())}, os.Stderr); err == nil {
		t.Fatal("missing -target accepted")
	}
	if err := run([]string{"-target", "localhost:1", "-key", "zz"}, os.Stderr); err == nil {
		t.Fatal("bad key accepted")
	}
	if err := run([]string{"-target", "localhost:1", "-key", hex.EncodeToString(testServeKey()), "-rate", "0"}, os.Stderr); err == nil {
		t.Fatal("zero rate accepted")
	}
	if err := run([]string{"-target", "localhost:1", "-key", hex.EncodeToString(testServeKey()), "-workers", "0"}, os.Stderr); err == nil {
		t.Fatal("zero workers accepted")
	}
}
