// Command triad-node runs a live Triad trusted-time node over UDP.
//
// Usage (a 3-node cluster plus authority on one machine):
//
//	timeauthority -listen :7100 -id 100 -key $KEY
//	triad-node -listen :7101 -id 1 -key $KEY -authority 100=localhost:7100 \
//	    -peer 2=localhost:7102 -peer 3=localhost:7103
//	triad-node -listen :7102 -id 2 ... (and so on)
//
// The node prints its trusted time once per second. -hardened selects
// the Section V resilient protocol; -aex injects synthetic AEXs at the
// given period (standing in for the OS interrupts real enclaves see).
// Repeating -authority enlists multiple Time Authorities: the node then
// calibrates by Marzullo quorum consensus across the set and adopts a
// reference only when a majority agrees (-min-agree overrides the
// threshold, e.g. 1 for a two-authority deployment).
// -serve (with -serve-key, distinct from -key) additionally exposes the
// node's trusted clock to external clients as a sharded, batched,
// admission-controlled UDP timestamp endpoint; drive it with
// cmd/triad-loadgen. -serve-anchor (with -serve-tsa-key) further
// enables time-locked commitments on that endpoint, with the lease
// epoch and trusted high-water mark persisted in the named anchor
// file across restarts; drive those with cmd/triad-seal.
package main

import (
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"triadtime"
	"triadtime/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "triad-node:", err)
		os.Exit(1)
	}
}

// endpointList collects repeated "id=host:port" flags.
type endpointList map[triadtime.NodeID]string

func (e endpointList) String() string {
	var parts []string
	for id, addr := range e {
		parts = append(parts, fmt.Sprintf("%d=%s", id, addr))
	}
	return strings.Join(parts, ",")
}

func (e endpointList) Set(v string) error {
	id, addr, err := parseEndpoint(v)
	if err != nil {
		return err
	}
	e[id] = addr
	return nil
}

// endpointSeq collects repeated "id=host:port" flags preserving order
// (authority order is quorum order, so a map would scramble it).
type endpointSeq struct {
	ids   []triadtime.NodeID
	addrs []string
}

func (e *endpointSeq) String() string {
	var parts []string
	for i, id := range e.ids {
		parts = append(parts, fmt.Sprintf("%d=%s", id, e.addrs[i]))
	}
	return strings.Join(parts, ",")
}

func (e *endpointSeq) Set(v string) error {
	id, addr, err := parseEndpoint(v)
	if err != nil {
		return err
	}
	for _, seen := range e.ids {
		if seen == id {
			return fmt.Errorf("duplicate authority id %d", id)
		}
	}
	e.ids = append(e.ids, id)
	e.addrs = append(e.addrs, addr)
	return nil
}

// parseEndpoint splits "id=host:port".
func parseEndpoint(v string) (triadtime.NodeID, string, error) {
	idStr, addr, ok := strings.Cut(v, "=")
	if !ok || addr == "" {
		return 0, "", fmt.Errorf("endpoint %q: want id=host:port", v)
	}
	id, err := strconv.ParseUint(idStr, 10, 32)
	if err != nil {
		return 0, "", fmt.Errorf("endpoint %q: bad id: %w", v, err)
	}
	return triadtime.NodeID(id), addr, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("triad-node", flag.ContinueOnError)
	listen := fs.String("listen", "0.0.0.0:7101", "UDP address to bind")
	id := fs.Uint("id", 1, "this node's wire identity")
	keyHex := fs.String("key", "", "cluster pre-shared key, 64 hex characters")
	peers := endpointList{}
	fs.Var(peers, "peer", "peer endpoint id=host:port (repeatable)")
	authorities := &endpointSeq{}
	fs.Var(authorities, "authority", "time authority endpoint id=host:port (repeat for quorum calibration)")
	minAgree := fs.Int("min-agree", 0, "quorum agreement threshold override (0 = strict majority; needs 2+ -authority)")
	aexPeriod := fs.Duration("aex", 500*time.Millisecond, "synthetic AEX period (0 disables)")
	hardened := fs.Bool("hardened", false, "run the Section V hardened protocol")
	printEvery := fs.Duration("print", time.Second, "how often to print the trusted time")
	configPath := fs.String("config", "", "cluster description file (JSON); replaces -key/-peer/-authority")
	statusAddr := fs.String("status", "", "serve /status and /metrics over HTTP at this address (optional)")
	serveAddr := fs.String("serve", "", "serve client timestamp requests over UDP at this address (optional)")
	serveKeyHex := fs.String("serve-key", "", "client-traffic pre-shared key, 64 hex characters (required with -serve; distinct from -key)")
	serveTSAKeyHex := fs.String("serve-tsa-key", "", "timestamp-token key in hex (optional; enables token issuance)")
	serveAnchor := fs.String("serve-anchor", "", "commitment-vault anchor file (optional; enables time-locked commitments — needs -serve-tsa-key; drive with cmd/triad-seal)")
	serveRate := fs.Float64("serve-rate", 0, "per-client admission rate in req/s (0 disables rate limiting)")
	serveSockets := fs.Int("serve-sockets", 1, "SO_REUSEPORT sockets sharing the -serve port (Linux; scales request authentication across cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var cfg triadtime.LiveConfig
	if *configPath != "" {
		cf, err := triadtime.LoadClusterFile(*configPath)
		if err != nil {
			return err
		}
		cfg, err = cf.NodeConfig(triadtime.NodeID(*id), *listen)
		if err != nil {
			return err
		}
		if *hardened {
			cfg.Hardened = true
		}
	} else {
		key, err := hex.DecodeString(*keyHex)
		if err != nil || len(key) != wire.KeySize {
			return fmt.Errorf("-key must be %d hex characters", 2*wire.KeySize)
		}
		if len(authorities.ids) == 0 {
			return errors.New("-authority is required")
		}
		directory := map[triadtime.NodeID]string{}
		for i, taID := range authorities.ids {
			directory[taID] = authorities.addrs[i]
		}
		var peerIDs []triadtime.NodeID
		for pid, addr := range peers {
			directory[pid] = addr
			peerIDs = append(peerIDs, pid)
		}
		cfg = triadtime.LiveConfig{
			Key:       key,
			ID:        triadtime.NodeID(*id),
			Listen:    *listen,
			Directory: directory,
			Peers:     peerIDs,
			Authority: authorities.ids[0],
			AEXPeriod: *aexPeriod,
			Hardened:  *hardened,
		}
		if len(authorities.ids) >= 2 {
			cfg.Authorities = authorities.ids
			cfg.QuorumMinAgree = *minAgree
		}
	}

	node, err := triadtime.NewLiveNode(cfg)
	if err != nil {
		return err
	}
	defer node.Close()
	if *statusAddr != "" {
		addr, err := node.ServeStatus(*statusAddr)
		if err != nil {
			return err
		}
		fmt.Printf("status endpoint on http://%s/status\n", addr)
	}
	if *serveAddr != "" {
		serveKey, err := hex.DecodeString(*serveKeyHex)
		if err != nil || len(serveKey) != wire.KeySize {
			return fmt.Errorf("-serve-key must be %d hex characters", 2*wire.KeySize)
		}
		var tsaKey []byte
		if *serveTSAKeyHex != "" {
			if tsaKey, err = hex.DecodeString(*serveTSAKeyHex); err != nil {
				return fmt.Errorf("-serve-tsa-key: %w", err)
			}
		}
		addr, err := node.ServeClients(triadtime.ClientServeConfig{
			Listen:        *serveAddr,
			Key:           serveKey,
			Sockets:       *serveSockets,
			TSAKey:        tsaKey,
			CommitAnchor:  *serveAnchor,
			RatePerClient: *serveRate,
		})
		if err != nil {
			return err
		}
		fmt.Printf("client serving endpoint on %s\n", addr)
	}
	fmt.Printf("triad node %d on %s (hardened=%v, %d peers)\n",
		*id, node.LocalAddr(), cfg.Hardened, len(cfg.Peers))

	ticker := time.NewTicker(*printEvery)
	defer ticker.Stop()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-ticker.C:
			ts, err := node.TrustedNow()
			if err != nil {
				fmt.Printf("state=%-10s trusted time unavailable\n", node.State())
				continue
			}
			fmt.Printf("state=%-10s trusted=%s offset_vs_local=%v\n",
				node.State(), ts.Time().Format(time.RFC3339Nano),
				time.Duration(ts.Nanos-time.Now().UnixNano()))
		case s := <-sigc:
			fmt.Printf("signal %v: shutting down\n", s)
			return nil
		}
	}
}
