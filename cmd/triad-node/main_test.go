package main

import (
	"strings"
	"testing"
)

func TestParseEndpoint(t *testing.T) {
	id, addr, err := parseEndpoint("3=localhost:7103")
	if err != nil || id != 3 || addr != "localhost:7103" {
		t.Errorf("parseEndpoint = %v %q %v", id, addr, err)
	}
	for _, bad := range []string{"", "3", "=addr", "x=addr", "3="} {
		if _, _, err := parseEndpoint(bad); err == nil {
			t.Errorf("parseEndpoint(%q) accepted", bad)
		}
	}
}

func TestEndpointListFlag(t *testing.T) {
	e := endpointList{}
	if err := e.Set("1=host:1"); err != nil {
		t.Fatal(err)
	}
	if err := e.Set("2=host:2"); err != nil {
		t.Fatal(err)
	}
	if err := e.Set("broken"); err == nil {
		t.Error("broken endpoint accepted")
	}
	s := e.String()
	if !strings.Contains(s, "1=host:1") || !strings.Contains(s, "2=host:2") {
		t.Errorf("String() = %q", s)
	}
}

func TestEndpointSeqFlag(t *testing.T) {
	e := &endpointSeq{}
	for _, v := range []string{"102=host:3", "100=host:1", "101=host:2"} {
		if err := e.Set(v); err != nil {
			t.Fatal(err)
		}
	}
	// Order of the repeated flag is preserved: it is the quorum order.
	if got := e.String(); got != "102=host:3,100=host:1,101=host:2" {
		t.Errorf("String() = %q", got)
	}
	if err := e.Set("100=again:9"); err == nil {
		t.Error("duplicate authority id accepted")
	}
	if err := e.Set("broken"); err == nil {
		t.Error("broken endpoint accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-key", "nothex"}); err == nil {
		t.Error("bad key accepted")
	}
	if err := run([]string{"-key", strings.Repeat("ab", 32)}); err == nil {
		t.Error("missing authority accepted")
	}
	if err := run([]string{"-key", strings.Repeat("ab", 32), "-authority", "broken"}); err == nil {
		t.Error("bad authority endpoint accepted")
	}
}
