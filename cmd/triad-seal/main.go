// Command triad-seal drives the time-locked commitment service of a
// running triad-node (one started with -serve and -serve-anchor): it
// locks a document hash until a trusted unlock time, asks the node to
// vouch for an unlock, or queries a token's status.
//
//	TOKEN=$(triad-seal -target localhost:7201 -key $SERVE_KEY \
//	    lock -file release.tar.gz -for 24h)
//	triad-seal -target localhost:7201 -key $SERVE_KEY unlock -token $TOKEN
//
// lock resolves -for against the node's own trusted clock (one
// timestamp round-trip), so the unlock time lives on the trusted
// timeline, not this machine's wall clock, and prints the minted token
// as one hex line on stdout. unlock and status print the node's
// verdict and exit 0 only when the node vouches CommitOK; a refusal
// (still sealed, fenced by a restart, degraded holdover, overloaded)
// exits 3, transport and usage errors exit 1.
package main

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"triadtime"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == nil:
	case errors.Is(err, errRefused):
		fmt.Fprintln(os.Stderr, "triad-seal:", err)
		os.Exit(3)
	default:
		fmt.Fprintln(os.Stderr, "triad-seal:", err)
		os.Exit(1)
	}
}

// errRefused marks a node's explicit refusal (as opposed to transport
// failure): the caller's request was heard and denied.
var errRefused = errors.New("refused")

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("triad-seal", flag.ContinueOnError)
	target := fs.String("target", "", "serving endpoint host:port (required)")
	keyHex := fs.String("key", "", "client-traffic pre-shared key, 64 hex characters (required)")
	id := fs.Uint("id", 0, "wire sender identity (0 picks a random one per invocation)")
	timeout := fs.Duration("timeout", 2*time.Second, "per-attempt response timeout")
	retries := fs.Int("retries", 2, "resend attempts after a lost datagram")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *target == "" {
		return errors.New("-target is required")
	}
	key, err := hex.DecodeString(*keyHex)
	if err != nil || len(key) != triadtime.KeySize {
		return fmt.Errorf("-key must be %d hex characters", 2*triadtime.KeySize)
	}
	if fs.NArg() == 0 {
		return errors.New("want a subcommand: lock, unlock, or status")
	}
	op, opArgs := fs.Arg(0), fs.Args()[1:]

	// Every invocation is a fresh process whose sealer counts nonces
	// from 1, so reusing a sender identity across invocations would
	// both repeat AEAD nonces and trip the endpoint's per-identity
	// anti-replay window. A random identity per invocation keeps each
	// run in its own nonce space; -id pins it for the rare caller that
	// manages identities explicitly.
	senderID := uint32(*id)
	if senderID == 0 {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return err
		}
		senderID = binary.BigEndian.Uint32(b[:]) | 1<<31
	}

	c, err := dial(*target, key, senderID, *timeout, *retries)
	if err != nil {
		return err
	}
	defer c.conn.Close()

	switch op {
	case "lock":
		return c.lock(opArgs, out)
	case "unlock":
		return c.query(triadtime.KindCommitUnlock, opArgs, out)
	case "status":
		return c.query(triadtime.KindCommitStatus, opArgs, out)
	default:
		return fmt.Errorf("unknown subcommand %q: want lock, unlock, or status", op)
	}
}

// client is one connected flow: a socket, a sealing identity, and the
// matching opener.
type client struct {
	conn    *net.UDPConn
	sealer  *triadtime.ClientSealer
	opener  *triadtime.ClientOpener
	timeout time.Duration
	retries int
	id      uint64
	seq     uint64
}

func dial(target string, key []byte, senderID uint32, timeout time.Duration, retries int) (*client, error) {
	raddr, err := net.ResolveUDPAddr("udp", target)
	if err != nil {
		return nil, fmt.Errorf("resolve %q: %w", target, err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	sealer, err := triadtime.NewClientSealer(key, senderID)
	if err != nil {
		conn.Close()
		return nil, err
	}
	opener, err := triadtime.NewClientOpener(key)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &client{conn: conn, sealer: sealer, opener: opener,
		timeout: timeout, retries: retries, id: uint64(senderID)}, nil
}

// exchange sends one sealed datagram and waits for one openable
// response, retrying lost round-trips with fresh datagrams.
func (c *client) exchange(seal func() []byte, open func([]byte) error) error {
	buf := make([]byte, 2048)
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if _, err := c.conn.Write(seal()); err != nil {
			return err
		}
		_ = c.conn.SetReadDeadline(time.Now().Add(c.timeout))
		n, err := c.conn.Read(buf)
		if err != nil {
			lastErr = fmt.Errorf("no response from %s: %w", c.conn.RemoteAddr(), err)
			continue
		}
		return open(buf[:n])
	}
	return lastErr
}

// trustedNow fetches the node's trusted time with one timestamp
// round-trip.
func (c *client) trustedNow() (int64, error) {
	var nanos int64
	c.seq++
	req := triadtime.TimeRequest{ClientID: c.id, Seq: c.seq}
	err := c.exchange(
		func() []byte { req.Seq = c.seq; return c.sealer.SealRequest(nil, req) },
		func(datagram []byte) error {
			resp, err := c.opener.OpenResponse(datagram)
			if err != nil {
				return err
			}
			if resp.Status != triadtime.StatusOK {
				return fmt.Errorf("%w: node cannot serve trusted time (%v)", errRefused, resp.Status)
			}
			nanos = resp.Nanos
			return nil
		})
	return nanos, err
}

// commitOp runs one commit-operation round-trip.
func (c *client) commitOp(req triadtime.CommitRequest) (triadtime.CommitResponse, error) {
	var resp triadtime.CommitResponse
	err := c.exchange(
		func() []byte {
			c.seq++
			req.ClientID, req.Seq = c.id, c.seq
			return c.sealer.SealCommitRequest(nil, req)
		},
		func(datagram []byte) error {
			var err error
			resp, err = c.opener.OpenCommitResponse(datagram)
			return err
		})
	return resp, err
}

func (c *client) lock(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("triad-seal lock", flag.ContinueOnError)
	file := fs.String("file", "", "document to commit (SHA-256 of its contents)")
	hashHex := fs.String("hash", "", "document hash, 64 hex characters (alternative to -file)")
	lockFor := fs.Duration("for", 0, "seal duration from the node's trusted now")
	until := fs.String("until", "", "absolute unlock time, RFC3339 (alternative to -for)")
	lease := fs.Bool("lease", false, "lease mode: the token is fenced by the node's restart epoch")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var req triadtime.CommitRequest
	req.Kind = triadtime.KindCommitLock
	switch {
	case *file != "" && *hashHex == "":
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		h := sha256.New()
		_, err = io.Copy(h, f)
		f.Close()
		if err != nil {
			return err
		}
		h.Sum(req.Hash[:0])
	case *hashHex != "" && *file == "":
		b, err := hex.DecodeString(*hashHex)
		if err != nil || len(b) != len(req.Hash) {
			return fmt.Errorf("-hash must be %d hex characters", 2*len(req.Hash))
		}
		copy(req.Hash[:], b)
	default:
		return errors.New("want exactly one of -file and -hash")
	}
	if *lease {
		req.Flags |= triadtime.FlagCommitLease
	}

	switch {
	case *lockFor > 0 && *until == "":
		now, err := c.trustedNow()
		if err != nil {
			return err
		}
		req.UnlockNanos = now + int64(*lockFor)
	case *until != "" && *lockFor == 0:
		t, err := time.Parse(time.RFC3339, *until)
		if err != nil {
			return fmt.Errorf("-until: %w", err)
		}
		req.UnlockNanos = t.UnixNano()
	default:
		return errors.New("want exactly one of -for and -until")
	}

	resp, err := c.commitOp(req)
	if err != nil {
		return err
	}
	if resp.Verdict != triadtime.CommitOK {
		return fmt.Errorf("%w: lock %s", errRefused, describe(resp))
	}
	fmt.Fprintf(os.Stderr, "locked until %s (epoch %d)\n",
		time.Unix(0, resp.UnlockNanos).UTC().Format(time.RFC3339Nano), resp.Epoch)
	fmt.Fprintf(out, "%s\n", hex.EncodeToString(resp.Token[:]))
	return nil
}

func (c *client) query(kind triadtime.Kind, args []string, out io.Writer) error {
	name := "unlock"
	if kind == triadtime.KindCommitStatus {
		name = "status"
	}
	fs := flag.NewFlagSet("triad-seal "+name, flag.ContinueOnError)
	tokenArg := fs.String("token", "", "commitment token: hex, or @path to a file holding it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tok := strings.TrimSpace(*tokenArg)
	if path, ok := strings.CutPrefix(tok, "@"); ok {
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		tok = strings.TrimSpace(string(b))
	}
	req := triadtime.CommitRequest{Kind: kind}
	b, err := hex.DecodeString(tok)
	if err != nil || len(b) != len(req.Token) {
		return fmt.Errorf("-token must be %d hex characters", 2*len(req.Token))
	}
	copy(req.Token[:], b)

	resp, err := c.commitOp(req)
	if err != nil {
		return err
	}
	if resp.Verdict != triadtime.CommitOK {
		return fmt.Errorf("%w: %s %s", errRefused, name, describe(resp))
	}
	verb := "unlocked"
	if kind == triadtime.KindCommitStatus {
		verb = "unlockable"
	}
	fmt.Fprintf(out, "%s at trusted %s (epoch %d)\n",
		verb, time.Unix(0, resp.Nanos).UTC().Format(time.RFC3339Nano), resp.Epoch)
	return nil
}

// describe renders a refusal's cause with whatever timing context the
// response carries.
func describe(resp triadtime.CommitResponse) string {
	switch resp.Verdict {
	case triadtime.CommitSealed:
		remain := time.Duration(resp.UnlockNanos - resp.Nanos)
		return fmt.Sprintf("refused: sealed until trusted %s (another %v)",
			time.Unix(0, resp.UnlockNanos).UTC().Format(time.RFC3339Nano), remain.Round(time.Millisecond))
	case triadtime.CommitFenced:
		return fmt.Sprintf("refused: token's lease epoch fenced by a restart (node epoch %d)", resp.Epoch)
	case triadtime.CommitBadToken:
		return "refused: token failed authentication"
	case triadtime.CommitUnavailable:
		return "refused: node cannot vouch right now (tainted, calibrating, degraded holdover, or no commitment vault)"
	case triadtime.CommitOverloaded:
		return "refused: shed by admission control; back off and retry"
	default:
		return fmt.Sprintf("refused: verdict %v", resp.Verdict)
	}
}
