package main

import (
	"bytes"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"triadtime"
)

// startServingNode stands up a live authority and a calibrated node
// with the commitment subsystem enabled, and returns the serving
// endpoint's address and the client key in hex.
func startServingNode(t *testing.T) (target, keyHex string) {
	t.Helper()
	clusterKey := make([]byte, triadtime.KeySize)
	for i := range clusterKey {
		clusterKey[i] = byte(i + 1)
	}
	ta, err := triadtime.NewAuthorityServer("127.0.0.1:0", clusterKey, 100)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ta.Close() })
	node, err := triadtime.NewLiveNode(triadtime.LiveConfig{
		Key:         clusterKey,
		ID:          1,
		Listen:      "127.0.0.1:0",
		Directory:   map[triadtime.NodeID]string{100: ta.LocalAddr().String()},
		Authority:   100,
		CalibSleeps: []time.Duration{0, 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })

	serveKey := make([]byte, triadtime.KeySize)
	for i := range serveKey {
		serveKey[i] = byte(i + 77)
	}
	addr, err := node.ServeClients(triadtime.ClientServeConfig{
		Listen:       "127.0.0.1:0",
		Key:          serveKey,
		TSAKey:       serveKey,
		CommitAnchor: filepath.Join(t.TempDir(), "anchor"),
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for node.State() != triadtime.StateOK {
		if time.Now().After(deadline) {
			t.Fatalf("live node never calibrated (state %v)", node.State())
		}
		time.Sleep(50 * time.Millisecond)
	}
	return addr.String(), hex.EncodeToString(serveKey)
}

// TestSealLockUnlockStatus drives the CLI end to end over live UDP:
// lock a file hash, watch unlock refused while sealed, then unlock
// once trusted time passes the lock.
func TestSealLockUnlockStatus(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	target, keyHex := startServingNode(t)

	doc := filepath.Join(t.TempDir(), "doc.txt")
	if err := os.WriteFile(doc, []byte("the sealed document"), 0o600); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	base := []string{"-target", target, "-key", keyHex}
	if err := run(append(base, "lock", "-file", doc, "-for", "1500ms"), &out); err != nil {
		t.Fatalf("lock: %v", err)
	}
	token := strings.TrimSpace(out.String())
	if len(token) != 2*triadtime.CommitTokenSize {
		t.Fatalf("lock printed %q, want %d hex characters", token, 2*triadtime.CommitTokenSize)
	}

	// Still sealed: both unlock and status are refused, distinguishably.
	err := run(append(base, "unlock", "-token", token), &out)
	if !errors.Is(err, errRefused) || !strings.Contains(err.Error(), "sealed until") {
		t.Fatalf("early unlock: %v", err)
	}
	if err := run(append(base, "status", "-token", token), &out); !errors.Is(err, errRefused) {
		t.Fatalf("early status: %v", err)
	}

	// Trusted time is the authority's Unix time: wait out the lock.
	time.Sleep(2 * time.Second)
	out.Reset()
	if err := run(append(base, "status", "-token", "@"+writeToken(t, token)), &out); err != nil {
		t.Fatalf("ripe status: %v", err)
	}
	if !strings.Contains(out.String(), "unlockable at trusted") {
		t.Fatalf("status output %q", out.String())
	}
	out.Reset()
	if err := run(append(base, "unlock", "-token", token), &out); err != nil {
		t.Fatalf("ripe unlock: %v", err)
	}
	if !strings.Contains(out.String(), "unlocked at trusted") || !strings.Contains(out.String(), "epoch 1") {
		t.Fatalf("unlock output %q", out.String())
	}

	// A corrupted token is rejected as forged, not sealed.
	bad := "00" + token[2:]
	if err := run(append(base, "unlock", "-token", bad), &out); !errors.Is(err, errRefused) ||
		!strings.Contains(err.Error(), "authentication") {
		t.Fatalf("forged unlock: %v", err)
	}
}

// writeToken stores the token in a file to exercise the @path form.
func writeToken(t *testing.T, token string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "token.hex")
	if err := os.WriteFile(p, []byte(token+"\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSealUsageErrors exercises the argument contract without a
// server.
func TestSealUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-key", "00"}, &out); err == nil || !strings.Contains(err.Error(), "-target") {
		t.Fatalf("missing target: %v", err)
	}
	if err := run([]string{"-target", "localhost:1", "-key", "zz"}, &out); err == nil || !strings.Contains(err.Error(), "-key") {
		t.Fatalf("bad key: %v", err)
	}
	key := strings.Repeat("ab", triadtime.KeySize)
	if err := run([]string{"-target", "localhost:1", "-key", key}, &out); err == nil || !strings.Contains(err.Error(), "subcommand") {
		t.Fatalf("missing subcommand: %v", err)
	}
	if err := run([]string{"-target", "localhost:1", "-key", key, "melt"}, &out); err == nil || !strings.Contains(err.Error(), "melt") {
		t.Fatalf("unknown subcommand: %v", err)
	}
	if err := run([]string{"-target", "localhost:1", "-key", key, "lock"}, &out); err == nil || !strings.Contains(err.Error(), "-file") {
		t.Fatalf("lock without hash: %v", err)
	}
	if err := run([]string{"-target", "localhost:1", "-key", key, "unlock", "-token", "beef"}, &out); err == nil || !strings.Contains(err.Error(), "-token") {
		t.Fatalf("short token: %v", err)
	}
}
