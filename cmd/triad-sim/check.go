package main

import (
	"context"
	"fmt"
	"math"
	"time"

	"triadtime/internal/attack"
	"triadtime/internal/experiment"
	"triadtime/internal/simtime"
)

// checkRow is one reproduction assertion: a named quantity, its
// measured value, and the range the paper's shape admits.
type checkRow struct {
	name     string
	measured float64
	lo, hi   float64
}

func (r checkRow) ok() bool { return r.measured >= r.lo && r.measured <= r.hi }

// check runs a fast subset of every experiment and validates the
// headline quantities against the paper's shapes — a one-command
// reproduction audit. It returns an error (non-zero exit) if any
// quantity falls outside its admitted range.
func (r figRunner) check(ctx context.Context) error {
	fmt.Fprintln(r.out, "reproduction self-check (fast subset, seed", r.seed, ")")
	var rows []checkRow
	add := func(name string, measured, lo, hi float64) {
		rows = append(rows, checkRow{name: name, measured: measured, lo: lo, hi: hi})
	}

	// §IV-A.1: INC statistics.
	inc, err := experiment.RunINCTable(r.seed, 3000)
	if err != nil {
		return err
	}
	add("inc_clean_mean", inc.Clean.Mean, 632170, 632195)
	add("inc_clean_stddev", inc.Clean.Stddev, 1, 5)

	// Figure 2 shape (short run).
	fig2, err := experiment.RunFig2(r.seed, 10*time.Minute)
	if err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		add(fmt.Sprintf("fig2_avail_node%d", i+1), fig2.Availability[i], 0.97, 1)
		add(fmt.Sprintf("fig2_fcalib_ppm_node%d", i+1),
			math.Abs(fig2.FCalib[i]-simtime.NominalTSCHz)/simtime.NominalTSCHz*1e6, 0, 1000)
	}

	// Figure 4 shape: F+ rate inflation ~1.1x.
	// Every sub-run below deliberately reuses r.seed so the measured
	// values match the calibrated ranges; each builds an independent
	// simulated cluster whose sealed frames never leave that simulation,
	// so the repeated sender identities share no observable nonce space.
	//triad:nolint:noncepart independent simulated clusters; sealed frames never cross simulations
	fig4, err := experiment.RunFig4(r.seed, 4*time.Minute)
	if err != nil {
		return err
	}
	add("fig4_fplus_ratio", fig4.FCalib[2]/simtime.NominalTSCHz, 1.09, 1.11)
	if ppm, ok := fig4.SegmentDriftPPM(2); ok {
		// ~91ms/s of drift between TA resets (paper: -91ms/s).
		add("fig4_drift_ppm_node3", ppm, 85000, 95000)
	}

	// Figure 6 shape: F- deflation ~0.9x and propagation.
	fig6, err := experiment.RunFig6(r.seed, 4*time.Minute)
	if err != nil {
		return err
	}
	add("fig6_fminus_ratio", fig6.FCalib[2]/simtime.NominalTSCHz, 0.89, 0.91)
	infected := 0.0
	for _, p := range fig6.Drift[0].Available() {
		if p.DriftSeconds > 1 {
			infected = 1
			break
		}
	}
	add("fig6_honest_infected", infected, 1, 1)

	// Section V: hardened safety under the same attack.
	//triad:nolint:noncepart independent simulated clusters; sealed frames never cross simulations
	hardened, err := experiment.RunExtensionVariant(r.seed, experiment.VariantHardened, attack.ModeFMinus, 4*time.Minute)
	if err != nil {
		return err
	}
	add("ext_hardened_honest_drift_s", hardened.HonestMaxDrift, 0, 0.1)
	infectedHardened := 0.0
	if hardened.HonestInfected {
		infectedHardened = 1
	}
	add("ext_hardened_infected", infectedHardened, 0, 0)

	// DVFS masking: dual monitor restores the clock, INC-only does not.
	//triad:nolint:noncepart independent simulated clusters; sealed frames never cross simulations
	dvfs, err := experiment.RunDualMonitorAblation(r.seed)
	if err != nil {
		return err
	}
	add("dvfs_inconly_rate", dvfs[0].FinalClockRate, 0.79, 0.81)
	add("dvfs_dual_rate", dvfs[1].FinalClockRate, 0.99, 1.01)

	// Multi-authority quorum: the suite's headline comparisons. The
	// availability margins over the single-TA baselines must be
	// strictly positive, a lying authority must zero the baseline's
	// correctness without denting the quorum's, and split-brain must be
	// ridden out in holdover.
	//triad:nolint:noncepart independent simulated clusters; sealed frames never cross simulations
	quorum, err := experiment.RunQuorumFaults(ctx, r.seed, 5*time.Minute)
	if err != nil {
		return err
	}
	qr := make(map[string]experiment.QuorumRow, len(quorum))
	for _, row := range quorum {
		qr[row.Name] = row
	}
	add("quorum_3ta_1dark_margin",
		qr["quorum-3ta-1dark"].RawAvailability-qr["baseline-1ta-outage"].RawAvailability, 1e-9, 1)
	add("quorum_5ta_2dark_margin",
		qr["quorum-5ta-2dark"].RawAvailability-qr["baseline-1ta-outage"].RawAvailability, 1e-9, 1)
	add("quorum_lying_baseline_correct", qr["baseline-1ta-lying"].CorrectAvailability, 0, 0.01)
	add("quorum_3ta_lying_correct", qr["quorum-3ta-lying-fixed"].CorrectAvailability, 0.95, 1)
	add("quorum_3ta_lying_false_tickers", float64(qr["quorum-3ta-lying-fixed"].FalseTickers), 1, math.MaxFloat64)
	add("quorum_splitbrain_holdovers", float64(qr["quorum-4ta-splitbrain-2v2"].Holdovers), 1, math.MaxFloat64)
	add("quorum_splitbrain_avail", qr["quorum-4ta-splitbrain-2v2"].RawAvailability, 0.9, 1)

	// Time-locked commitments: the attack suite's security claims. The
	// early-unlock storm must be refused Sealed on every pre-ripe
	// attempt, forged tokens must fail authentication, Degraded
	// holdover must not vouch, clock rollbacks must be detected
	// against the persisted high-water mark, a restart must fence
	// lease-mode tokens while durable ones survive, and a rolled-back
	// anchor must be detected and re-fenced past the evidence.
	commitRows, err := experiment.RunCommitAttacks(ctx, r.seed)
	if err != nil {
		return err
	}
	cr := make(map[string]experiment.CommitRow, len(commitRows))
	for _, row := range commitRows {
		cr[row.Name] = row
	}
	add("commit_storm_early_refusals", float64(cr["early-unlock-storm"].Early), 10, math.MaxFloat64)
	add("commit_storm_early_grants",
		float64(cr["early-unlock-storm"].Ops-cr["early-unlock-storm"].Granted-cr["early-unlock-storm"].Early), 0, 0)
	add("commit_forged_rejected", float64(cr["forged-token"].Forged), 3, 3)
	add("commit_degraded_no_vouch", float64(cr["degraded-holdover"].Unavailable), 2, 2)
	add("commit_clock_rollbacks", float64(cr["clock-rollback"].ClockRollbacks), 1, math.MaxFloat64)
	add("commit_lease_fenced", float64(cr["restart-lease-fence"].Fenced), 1, 1)
	add("commit_durable_survives", float64(cr["restart-lease-fence"].Granted), 1, 1)
	add("commit_anchor_rollbacks", float64(cr["anchor-rollback"].AnchorRollbacks), 1, math.MaxFloat64)
	add("commit_refence_epoch", float64(cr["anchor-rollback"].FinalEpoch), 4, math.MaxFloat64)

	// Thousand-node harness, shrunk: a partitioned region topology with
	// per-region TAs, a WAN delay matrix, churn, and a region-isolation
	// window. Every node must calibrate over the WAN, the isolated
	// region must ride its window out in holdover (not serve a minority
	// view), and availability/correctness must show the dent without
	// collapsing.
	topo, err := experiment.RunTopology(ctx, experiment.TopologyConfig{
		Seed:           r.seed,
		Partitions:     2,
		Regions:        3,
		NodesPerRegion: 3,
		Duration:       2 * time.Minute,
		Churn:          0.25,
		IsolateRegion:  0,
		IsolateFrom:    60 * time.Second,
		IsolateTo:      90 * time.Second,
	})
	if err != nil {
		return err
	}
	add("topo_calibrated_frac", float64(topo.Calibrated)/float64(topo.Nodes), 1, 1)
	add("topo_holdovers", float64(topo.Holdovers), 1, math.MaxFloat64)
	add("topo_min_avail", topo.MinAvailability, 0.5, 0.98)
	add("topo_worst_correct", topo.WorstCorrect, 0.5, 0.98)
	add("topo_drift_p99_s", topo.Rollup.Drift.Quantile(0.99), 1e-6, 0.05)

	failures := 0
	for _, row := range rows {
		verdict := "ok"
		if !row.ok() {
			verdict = "FAIL"
			failures++
		}
		fmt.Fprintf(r.out, "  %-28s %14.4f  in [%g, %g]  %s\n",
			row.name, row.measured, row.lo, row.hi, verdict)
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d reproduction checks failed", failures, len(rows))
	}
	fmt.Fprintf(r.out, "all %d reproduction checks passed\n", len(rows))
	return nil
}
