// Command triad-sim regenerates the paper's figures and tables from the
// deterministic simulation. Each experiment prints a paper-vs-measured
// summary and, with -out, writes the figure's data series as CSV.
//
// Usage:
//
//	triad-sim -fig all -seed 1 -out results/
//	triad-sim -fig 6 -dur 7m
//
// Figure ids: 1a, 1b, inc, 2, 3, 4, 5, 6, avail, ext, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"triadtime/internal/experiment"
	"triadtime/internal/metrics"
	"triadtime/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "triad-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("triad-sim", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 1a, 1b, inc, 2, 3, 4, 5, 6, avail, ext, all")
	seed := fs.Uint64("seed", 1, "simulation seed (same seed, same run)")
	outDir := fs.String("out", "", "directory for CSV data series (optional)")
	dur := fs.Duration("dur", 0, "override the experiment's simulated duration")
	traceFile := fs.String("trace", "", "write structured protocol events (JSONL) for traced figures (currently: 6)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	r := runner{seed: *seed, outDir: *outDir, dur: *dur, out: out, traceFile: *traceFile}

	known := map[string]func() error{
		"1a":      r.fig1a,
		"1b":      r.fig1b,
		"inc":     r.incTable,
		"2":       r.fig2,
		"3":       r.fig3,
		"4":       r.fig4,
		"5":       r.fig5,
		"6":       r.fig6,
		"avail":   r.availability,
		"ext":     r.extension,
		"ntp":     r.driftQuality,
		"t3e":     r.t3e,
		"loss":    r.loss,
		"outage":  r.outage,
		"dvfs":    r.dualMonitor,
		"scale":   r.scale,
		"gossip":  r.gossip,
		"calib":   r.calibTime,
		"latency": r.latency,
		"check":   r.check,
	}
	if *fig == "all" {
		for _, id := range []string{"1a", "1b", "inc", "2", "3", "4", "5", "6", "avail", "ext", "ntp", "t3e", "loss", "outage", "dvfs", "scale", "gossip", "calib", "latency"} {
			if err := known[id](); err != nil {
				return fmt.Errorf("fig %s: %w", id, err)
			}
		}
		return nil
	}
	f, ok := known[*fig]
	if !ok {
		return fmt.Errorf("unknown figure %q", *fig)
	}
	return f()
}

type runner struct {
	seed      uint64
	outDir    string
	dur       time.Duration
	out       io.Writer
	traceFile string
}

func (r runner) duration(def time.Duration) time.Duration {
	if r.dur != 0 {
		return r.dur
	}
	return def
}

func (r runner) writeCSV(name string, write func(io.Writer) error) error {
	if r.outDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(r.outDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	fmt.Fprintf(r.out, "  wrote %s\n", filepath.Join(r.outDir, name))
	return nil
}

func (r runner) cdf(name string, res *experiment.CDFResult) error {
	fmt.Fprintln(r.out, res.Summary())
	if err := r.writeCSV(name, func(w io.Writer) error {
		if _, err := fmt.Fprintln(w, "gap_seconds,cdf"); err != nil {
			return err
		}
		for _, p := range res.Points {
			if _, err := fmt.Fprintf(w, "%.6f,%.6f\n", p.X, p.P); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	base := strings.TrimSuffix(name, ".csv")
	return r.writeCSV(base+"_plot.gp", func(w io.Writer) error {
		return writeCDFPlot(w, base)
	})
}

func (r runner) figure(base string, res *experiment.FigureResult) error {
	fmt.Fprint(r.out, res.Summary())
	if err := r.writeCSV(base+"_drift.csv", func(w io.Writer) error {
		return metrics.WriteDriftCSV(w, res.Drift)
	}); err != nil {
		return err
	}
	if err := r.writeCSV(base+"_ta_refs.csv", func(w io.Writer) error {
		return metrics.WriteCountCSV(w, res.TACounts)
	}); err != nil {
		return err
	}
	if err := r.writeCSV(base+"_aex.csv", func(w io.Writer) error {
		return metrics.WriteCountCSV(w, res.AEXCounts)
	}); err != nil {
		return err
	}
	if err := r.writeCSV(base+"_states.csv", func(w io.Writer) error {
		if _, err := fmt.Fprintln(w, "node,ref_seconds,state"); err != nil {
			return err
		}
		for i, tl := range res.Timelines {
			for _, ch := range tl.Changes() {
				if _, err := fmt.Fprintf(w, "node%d,%.3f,%s\n", i+1, ch.At.Seconds(), ch.State); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}
	nodes := len(res.Drift)
	if err := r.writeCSV(base+"_plot.gp", func(w io.Writer) error {
		return writeDriftPlot(w, base, nodes)
	}); err != nil {
		return err
	}
	if err := r.writeCSV(base+"_ta_refs_plot.gp", func(w io.Writer) error {
		return writeCountPlot(w, base, "ta_refs", "TA references received", nodes)
	}); err != nil {
		return err
	}
	return r.writeCSV(base+"_aex_plot.gp", func(w io.Writer) error {
		return writeCountPlot(w, base, "aex", "AEX count", nodes)
	})
}

func (r runner) fig1a() error {
	res, err := experiment.RunFig1a(r.seed, r.duration(2*time.Hour))
	if err != nil {
		return err
	}
	return r.cdf("fig1a_cdf.csv", res)
}

func (r runner) fig1b() error {
	res, err := experiment.RunFig1b(r.seed, r.duration(24*time.Hour))
	if err != nil {
		return err
	}
	return r.cdf("fig1b_cdf.csv", res)
}

func (r runner) incTable() error {
	res, err := experiment.RunINCTable(r.seed, 10000)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, res.Summary())
	return nil
}

func (r runner) fig2() error {
	res, err := experiment.RunFig2(r.seed, r.duration(30*time.Minute))
	if err != nil {
		return err
	}
	return r.figure("fig2", res)
}

func (r runner) fig3() error {
	res, err := experiment.RunFig3(r.seed, r.duration(8*time.Hour))
	if err != nil {
		return err
	}
	return r.figure("fig3", res)
}

func (r runner) fig4() error {
	res, err := experiment.RunFig4(r.seed, r.duration(10*time.Minute))
	if err != nil {
		return err
	}
	return r.figure("fig4", res)
}

func (r runner) fig5() error {
	res, err := experiment.RunFig5(r.seed, r.duration(10*time.Minute))
	if err != nil {
		return err
	}
	return r.figure("fig5", res)
}

func (r runner) fig6() error {
	var rec *trace.Recorder
	if r.traceFile != "" {
		f, err := os.Create(r.traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		rec = trace.NewRecorder(nil, f)
	}
	res, err := experiment.RunFig6Traced(r.seed, r.duration(7*time.Minute), rec)
	if err != nil {
		return err
	}
	if rec != nil {
		fmt.Fprintf(r.out, "  wrote %d trace events to %s\n", rec.Count(""), r.traceFile)
	}
	return r.figure("fig6", res)
}

func (r runner) availability() error {
	rows, err := experiment.RunAvailabilityTable(r.seed, r.duration(30*time.Minute), 8*time.Hour)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Availability (§IV-A.2):")
	for _, row := range rows {
		fmt.Fprintln(r.out, " ", row.Summary())
	}
	return nil
}

func (r runner) extension() error {
	results, err := experiment.RunExtensionComparison(r.seed, r.duration(7*time.Minute))
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Section V extension: protocol variants under the Figure 6 F- scenario")
	fmt.Fprint(r.out, experiment.ComparisonSummary(results))
	return nil
}

func (r runner) driftQuality() error {
	rows, err := experiment.RunDriftQuality(r.seed, r.duration(2*time.Hour))
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Drift quality vs NTP-style discipline (§IV-A.2 / §V):")
	for _, row := range rows {
		fmt.Fprintln(r.out, " ", row.Summary())
	}
	return nil
}

func (r runner) t3e() error {
	sweep, err := experiment.RunT3ETradeoff(r.seed, 2000, 10*time.Millisecond)
	if err != nil {
		return err
	}
	drift, err := experiment.RunT3EOwnerDrift(r.seed)
	if err != nil {
		return err
	}
	fmt.Fprint(r.out, experiment.BaselineSummary(sweep, drift))
	return nil
}

func (r runner) loss() error {
	rows, err := experiment.RunLossResilience(r.seed, r.duration(10*time.Minute), nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Packet-loss resilience:")
	for _, row := range rows {
		fmt.Fprintln(r.out, " ", row.Summary())
	}
	return nil
}

func (r runner) dualMonitor() error {
	rows, err := experiment.RunDualMonitorAblation(r.seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "DVFS-masked TSC scaling vs monitoring configuration (§IV-A.1):")
	for _, row := range rows {
		fmt.Fprintln(r.out, " ", row.Summary())
	}
	return nil
}

func (r runner) scale() error {
	rows, err := experiment.RunClusterScale(r.seed, nil, r.duration(5*time.Minute))
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Cluster-size sweep under F- (one compromised node):")
	for _, row := range rows {
		fmt.Fprintln(r.out, " ", row.Summary())
	}
	return nil
}

func (r runner) calibTime() error {
	rows, err := experiment.RunCalibrationTime(r.seed*50+300, 10)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Time to first trusted timestamp:")
	for _, row := range rows {
		fmt.Fprintln(r.out, " ", row.Summary())
	}
	return nil
}

func (r runner) latency() error {
	res, err := experiment.RunServingLatency(r.seed, r.duration(10*time.Minute), 50*time.Millisecond, time.Millisecond)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Client-visible serving latency:")
	fmt.Fprintln(r.out, " ", res.Summary())
	return nil
}

func (r runner) gossip() error {
	rows, err := experiment.RunGossipComparison(r.seed, r.duration(10*time.Minute))
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "True-chimer gossip under 35% loss (5 hardened nodes, §V):")
	for _, row := range rows {
		fmt.Fprintln(r.out, " ", row.Summary())
	}
	return nil
}

func (r runner) outage() error {
	res, err := experiment.RunTAOutage(r.seed, r.duration(15*time.Minute), 5*time.Minute, 8*time.Minute)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, res.Summary())
	return nil
}
