// Command triad-sim regenerates the paper's figures and tables from the
// deterministic simulation. Each experiment prints a paper-vs-measured
// summary and, with -out, writes the figure's data series as CSV.
//
// Figures are independent simulations, so -fig all fans them across a
// worker pool (-parallel N, default all CPUs). Output stays
// byte-identical to a serial run at any worker count: every figure
// renders into its own buffer and the buffers are flushed in figure
// order. With -cache DIR, results are memoized on disk keyed by
// (figure, seed, options), so re-running only recomputes what changed;
// the runner accounting line goes to stderr to keep stdout canonical.
//
// Usage:
//
//	triad-sim -fig all -seed 1 -out results/
//	triad-sim -fig all -parallel 8 -cache .simcache
//	triad-sim -fig 6 -dur 7m
//
// Figure ids: 1a, 1b, inc, 2, 3, 4, 5, 6, avail, ext, commit, all
// (plus the sweep/audit ids listed in -fig's usage text).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"triadtime/internal/experiment"
	"triadtime/internal/experiment/runner"
	"triadtime/internal/metrics"
	"triadtime/internal/trace"
)

// cacheVersion tags cache keys with the generation of the simulation
// code. Bump it whenever experiment output changes shape or content,
// or stale -cache entries would replay outdated results.
const cacheVersion = 5

// allFigures is the -fig all execution order (and flush order).
var allFigures = []string{"1a", "1b", "inc", "2", "3", "4", "5", "6", "avail", "ext", "ntp", "t3e", "loss", "outage", "quorum", "dvfs", "scale", "gossip", "calib", "latency", "load", "scale1k", "commit"}

// figures maps figure ids to their generators. Each receives the
// caller's context, which the sweep-style experiments propagate into
// their worker pools.
var figures = map[string]func(figRunner, context.Context) error{
	"1a":      figRunner.fig1a,
	"1b":      figRunner.fig1b,
	"inc":     figRunner.incTable,
	"2":       figRunner.fig2,
	"3":       figRunner.fig3,
	"4":       figRunner.fig4,
	"5":       figRunner.fig5,
	"6":       figRunner.fig6,
	"avail":   figRunner.availability,
	"ext":     figRunner.extension,
	"ntp":     figRunner.driftQuality,
	"t3e":     figRunner.t3e,
	"loss":    figRunner.loss,
	"outage":  figRunner.outage,
	"quorum":  figRunner.quorum,
	"dvfs":    figRunner.dualMonitor,
	"scale":   figRunner.scale,
	"gossip":  figRunner.gossip,
	"calib":   figRunner.calibTime,
	"latency": figRunner.latency,
	"load":    figRunner.load,
	"scale1k": figRunner.scale1k,
	"commit":  figRunner.commit,
	"check":   figRunner.check,
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "triad-sim:", err)
		os.Exit(1)
	}
}

// artifact is one file a figure produces (CSV, gnuplot script, trace),
// captured in memory so figures can run concurrently and flush in
// deterministic order. The JSON form is what the -cache stores.
type artifact struct {
	Path string `json:"path"`
	Data []byte `json:"data"`
}

// figOutput is everything one figure run emits: its console text and
// its file artifacts, in production order.
type figOutput struct {
	Text  string     `json:"text"`
	Files []artifact `json:"files"`
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("triad-sim", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 1a, 1b, inc, 2, 3, 4, 5, 6, avail, ext, commit, all")
	seed := fs.Uint64("seed", 1, "simulation seed (same seed, same run)")
	outDir := fs.String("out", "", "directory for CSV data series (optional)")
	dur := fs.Duration("dur", 0, "override the experiment's simulated duration")
	traceFile := fs.String("trace", "", "write structured protocol events (JSONL) for traced figures (currently: 6)")
	parallel := fs.Int("parallel", 0, "experiment worker pool size (0 = all CPUs, 1 = serial)")
	cacheDir := fs.String("cache", "", "result cache directory; re-runs replay unchanged figures from disk")
	nodesFlag := fs.String("nodes", "", "comma-separated cluster sizes for -fig scale (default 3,5,7,9)")
	churn := fs.Float64("churn", 0, "fraction of honest nodes cycling offline in -fig scale (0..1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	nodes, err := parseSizes(*nodesFlag)
	if err != nil {
		return err
	}
	if *churn < 0 || *churn > 1 {
		return fmt.Errorf("-churn must be in [0,1], got %g", *churn)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	runner.SetDefaultWorkers(*parallel)
	defer runner.SetDefaultWorkers(0)

	ids := []string{*fig}
	if *fig == "all" {
		ids = allFigures
	}
	for _, id := range ids {
		if _, ok := figures[id]; !ok {
			return fmt.Errorf("unknown figure %q", id)
		}
	}

	var cache *runner.Cache
	if *cacheDir != "" {
		var err error
		if cache, err = runner.OpenCache(*cacheDir); err != nil {
			return err
		}
	}

	tasks := make([]runner.Task[figOutput], len(ids))
	for i, id := range ids {
		id := id
		tasks[i] = runner.Task[figOutput]{
			Name: "fig " + id,
			Key: runner.Key{
				// Everything besides the seed that shapes the output,
				// including the output paths embedded in the text.
				Scenario: fmt.Sprintf("triad-sim|v%d|fig=%s|dur=%s|outdir=%s|trace=%s|nodes=%s|churn=%g",
					cacheVersion, id, *dur, *outDir, *traceFile, *nodesFlag, *churn),
				Seed: *seed,
			},
			Run: func(ctx context.Context) (figOutput, error) {
				var buf bytes.Buffer
				var files []artifact
				r := figRunner{
					seed:      *seed,
					outDir:    *outDir,
					dur:       *dur,
					out:       &buf,
					traceFile: *traceFile,
					files:     &files,
					nodes:     nodes,
					churn:     *churn,
				}
				err := figures[id](r, ctx)
				return figOutput{Text: buf.String(), Files: files}, err
			},
		}
	}

	rep := runner.Run(context.Background(), runner.Config{Workers: *parallel, Cache: cache}, tasks)
	var firstErr error
	for i, res := range rep.Results {
		// Flush in figure order, including whatever a failed figure
		// produced before failing (the audit prints its verdict rows).
		if _, err := io.WriteString(out, res.Value.Text); err != nil {
			return err
		}
		for _, f := range res.Value.Files {
			if err := os.WriteFile(f.Path, f.Data, 0o644); err != nil {
				return err
			}
		}
		if res.Err != nil {
			if *fig == "all" {
				firstErr = fmt.Errorf("fig %s: %w", ids[i], res.Err)
			} else {
				firstErr = res.Err
			}
			break
		}
	}
	if len(tasks) > 1 || cache != nil {
		// Accounting goes to stderr: stdout stays byte-identical across
		// worker counts and cache states.
		fmt.Fprintln(errOut, rep.Summary())
	}
	return firstErr
}

// figRunner renders one figure into an in-memory buffer and artifact
// list; the driver flushes both in deterministic figure order.
type figRunner struct {
	seed      uint64
	outDir    string
	dur       time.Duration
	out       io.Writer
	traceFile string
	files     *[]artifact
	// nodes/churn parameterize the scale sweep (-nodes, -churn).
	nodes []int
	churn float64
}

// parseSizes parses the -nodes flag: comma-separated positive cluster
// sizes ("" keeps the experiment's default sweep).
func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("-nodes: %q is not a cluster size >= 2", p)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

func (r figRunner) duration(def time.Duration) time.Duration {
	if r.dur != 0 {
		return r.dur
	}
	return def
}

func (r figRunner) writeCSV(name string, write func(io.Writer) error) error {
	if r.outDir == "" {
		return nil
	}
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return err
	}
	path := filepath.Join(r.outDir, name)
	*r.files = append(*r.files, artifact{Path: path, Data: buf.Bytes()})
	fmt.Fprintf(r.out, "  wrote %s\n", path)
	return nil
}

func (r figRunner) cdf(name string, res *experiment.CDFResult) error {
	fmt.Fprintln(r.out, res.Summary())
	if err := r.writeCSV(name, func(w io.Writer) error {
		if _, err := fmt.Fprintln(w, "gap_seconds,cdf"); err != nil {
			return err
		}
		for _, p := range res.Points {
			if _, err := fmt.Fprintf(w, "%.6f,%.6f\n", p.X, p.P); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	base := strings.TrimSuffix(name, ".csv")
	return r.writeCSV(base+"_plot.gp", func(w io.Writer) error {
		return writeCDFPlot(w, base)
	})
}

func (r figRunner) figure(base string, res *experiment.FigureResult) error {
	fmt.Fprint(r.out, res.Summary())
	if err := r.writeCSV(base+"_drift.csv", func(w io.Writer) error {
		return metrics.WriteDriftCSV(w, res.Drift)
	}); err != nil {
		return err
	}
	if err := r.writeCSV(base+"_ta_refs.csv", func(w io.Writer) error {
		return metrics.WriteCountCSV(w, res.TACounts)
	}); err != nil {
		return err
	}
	if err := r.writeCSV(base+"_aex.csv", func(w io.Writer) error {
		return metrics.WriteCountCSV(w, res.AEXCounts)
	}); err != nil {
		return err
	}
	if err := r.writeCSV(base+"_counters.csv", func(w io.Writer) error {
		return metrics.WriteCountersCSV(w, res.Counters)
	}); err != nil {
		return err
	}
	if err := r.writeCSV(base+"_states.csv", func(w io.Writer) error {
		if _, err := fmt.Fprintln(w, "node,ref_seconds,state"); err != nil {
			return err
		}
		for i, tl := range res.Timelines {
			for _, ch := range tl.Changes() {
				if _, err := fmt.Fprintf(w, "node%d,%.3f,%s\n", i+1, ch.At.Seconds(), ch.State); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}
	nodes := len(res.Drift)
	if err := r.writeCSV(base+"_plot.gp", func(w io.Writer) error {
		return writeDriftPlot(w, base, nodes)
	}); err != nil {
		return err
	}
	if err := r.writeCSV(base+"_ta_refs_plot.gp", func(w io.Writer) error {
		return writeCountPlot(w, base, "ta_refs", "TA references received", nodes)
	}); err != nil {
		return err
	}
	return r.writeCSV(base+"_aex_plot.gp", func(w io.Writer) error {
		return writeCountPlot(w, base, "aex", "AEX count", nodes)
	})
}

func (r figRunner) fig1a(ctx context.Context) error {
	res, err := experiment.RunFig1a(r.seed, r.duration(2*time.Hour))
	if err != nil {
		return err
	}
	return r.cdf("fig1a_cdf.csv", res)
}

func (r figRunner) fig1b(ctx context.Context) error {
	res, err := experiment.RunFig1b(r.seed, r.duration(24*time.Hour))
	if err != nil {
		return err
	}
	return r.cdf("fig1b_cdf.csv", res)
}

func (r figRunner) incTable(ctx context.Context) error {
	res, err := experiment.RunINCTable(r.seed, 10000)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, res.Summary())
	return nil
}

func (r figRunner) fig2(ctx context.Context) error {
	res, err := experiment.RunFig2(r.seed, r.duration(30*time.Minute))
	if err != nil {
		return err
	}
	return r.figure("fig2", res)
}

func (r figRunner) fig3(ctx context.Context) error {
	res, err := experiment.RunFig3(r.seed, r.duration(8*time.Hour))
	if err != nil {
		return err
	}
	return r.figure("fig3", res)
}

func (r figRunner) fig4(ctx context.Context) error {
	res, err := experiment.RunFig4(r.seed, r.duration(10*time.Minute))
	if err != nil {
		return err
	}
	return r.figure("fig4", res)
}

func (r figRunner) fig5(ctx context.Context) error {
	res, err := experiment.RunFig5(r.seed, r.duration(10*time.Minute))
	if err != nil {
		return err
	}
	return r.figure("fig5", res)
}

func (r figRunner) fig6(ctx context.Context) error {
	var rec *trace.Recorder
	var traceBuf bytes.Buffer
	if r.traceFile != "" {
		rec = trace.NewRecorder(nil, &traceBuf)
	}
	res, err := experiment.RunFig6Traced(r.seed, r.duration(7*time.Minute), rec)
	if err != nil {
		return err
	}
	if rec != nil {
		*r.files = append(*r.files, artifact{Path: r.traceFile, Data: traceBuf.Bytes()})
		fmt.Fprintf(r.out, "  wrote %d trace events to %s\n", rec.Count(""), r.traceFile)
	}
	return r.figure("fig6", res)
}

func (r figRunner) availability(ctx context.Context) error {
	rows, err := experiment.RunAvailabilityTable(ctx, r.seed, r.duration(30*time.Minute), 8*time.Hour)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Availability (§IV-A.2):")
	for _, row := range rows {
		fmt.Fprintln(r.out, " ", row.Summary())
	}
	return nil
}

func (r figRunner) extension(ctx context.Context) error {
	results, err := experiment.RunExtensionComparison(ctx, r.seed, r.duration(7*time.Minute))
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Section V extension: protocol variants under the Figure 6 F- scenario")
	fmt.Fprint(r.out, experiment.ComparisonSummary(results))
	return nil
}

func (r figRunner) driftQuality(ctx context.Context) error {
	rows, err := experiment.RunDriftQuality(r.seed, r.duration(2*time.Hour))
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Drift quality vs NTP-style discipline (§IV-A.2 / §V):")
	for _, row := range rows {
		fmt.Fprintln(r.out, " ", row.Summary())
	}
	return nil
}

func (r figRunner) t3e(ctx context.Context) error {
	sweep, err := experiment.RunT3ETradeoff(r.seed, 2000, 10*time.Millisecond)
	if err != nil {
		return err
	}
	drift, err := experiment.RunT3EOwnerDrift(r.seed)
	if err != nil {
		return err
	}
	fmt.Fprint(r.out, experiment.BaselineSummary(sweep, drift))
	return nil
}

func (r figRunner) loss(ctx context.Context) error {
	rows, err := experiment.RunLossResilience(ctx, r.seed, r.duration(10*time.Minute), nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Packet-loss resilience:")
	for _, row := range rows {
		fmt.Fprintln(r.out, " ", row.Summary())
	}
	return nil
}

func (r figRunner) dualMonitor(ctx context.Context) error {
	rows, err := experiment.RunDualMonitorAblation(r.seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "DVFS-masked TSC scaling vs monitoring configuration (§IV-A.1):")
	for _, row := range rows {
		fmt.Fprintln(r.out, " ", row.Summary())
	}
	return nil
}

func (r figRunner) scale(ctx context.Context) error {
	rows, err := experiment.RunClusterScale(ctx, r.seed, r.nodes, r.churn, r.duration(5*time.Minute))
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Cluster-size sweep under F- (one compromised node):")
	for _, row := range rows {
		fmt.Fprintln(r.out, " ", row.Summary())
	}
	return nil
}

func (r figRunner) scale1k(ctx context.Context) error {
	cfg := experiment.DefaultScale1K(r.seed)
	if r.dur != 0 {
		cfg.Duration = r.dur
	}
	res, err := experiment.RunTopology(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Thousand-node partitioned topology (per-region TAs, WAN matrix, churn, region isolation):")
	fmt.Fprint(r.out, res.Summary())
	return r.writeCSV("scale1k_partitions.csv", res.WritePartitionsCSV)
}

func (r figRunner) calibTime(ctx context.Context) error {
	rows, err := experiment.RunCalibrationTime(ctx, r.seed*50+300, 10)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Time to first trusted timestamp:")
	for _, row := range rows {
		fmt.Fprintln(r.out, " ", row.Summary())
	}
	return nil
}

func (r figRunner) latency(ctx context.Context) error {
	res, err := experiment.RunServingLatency(r.seed, r.duration(10*time.Minute), 50*time.Millisecond, time.Millisecond)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Client-visible serving latency:")
	fmt.Fprintln(r.out, " ", res.Summary())
	return nil
}

func (r figRunner) load(ctx context.Context) error {
	// The sweep's 2s-per-point window is fixed (not -dur scaled): load
	// points cost one simulation event per request, so minutes-long
	// windows at 64k req/s would be prohibitive, and 2s of steady state
	// already resolves the throughput plateau and shed shares.
	res, err := experiment.RunLoadSweep(ctx, r.seed, experiment.LoadConfig{})
	if err != nil {
		return err
	}
	fmt.Fprint(r.out, res.Summary())
	return r.writeCSV("load_sweep.csv", func(w io.Writer) error {
		if _, err := fmt.Fprintln(w, "offered_rps,served_rps,shed_frac,p50_us,p99_us,batches,tokens"); err != nil {
			return err
		}
		for _, p := range res.Points {
			if _, err := fmt.Fprintf(w, "%d,%.0f,%.4f,%d,%d,%d,%d\n",
				p.OfferedRPS, p.ServedRPS, p.ShedFrac(),
				p.P50.Microseconds(), p.P99.Microseconds(), p.Batches, p.Tokens); err != nil {
				return err
			}
		}
		return nil
	})
}

func (r figRunner) gossip(ctx context.Context) error {
	rows, err := experiment.RunGossipComparison(r.seed, r.duration(10*time.Minute))
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "True-chimer gossip under 35% loss (5 hardened nodes, §V):")
	for _, row := range rows {
		fmt.Fprintln(r.out, " ", row.Summary())
	}
	return nil
}

func (r figRunner) outage(ctx context.Context) error {
	res, err := experiment.RunTAOutage(r.seed, r.duration(15*time.Minute), 5*time.Minute, 8*time.Minute)
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, res.Summary())
	return nil
}

func (r figRunner) commit(ctx context.Context) error {
	rows, err := experiment.RunCommitAttacks(ctx, r.seed)
	if err != nil {
		return err
	}
	fmt.Fprint(r.out, experiment.CommitAttackSummary(rows))
	return r.writeCSV("commit_rows.csv", func(w io.Writer) error {
		if _, err := fmt.Fprintln(w, "scenario,ops,granted,early,fenced,forged,unavailable,anchor_rollbacks,clock_rollbacks,final_epoch"); err != nil {
			return err
		}
		for _, row := range rows {
			if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
				row.Name, row.Ops, row.Granted, row.Early, row.Fenced, row.Forged,
				row.Unavailable, row.AnchorRollbacks, row.ClockRollbacks, row.FinalEpoch); err != nil {
				return err
			}
		}
		return nil
	})
}

func (r figRunner) quorum(ctx context.Context) error {
	rows, err := experiment.RunQuorumFaults(ctx, r.seed, r.duration(5*time.Minute))
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, "Multi-authority quorum fault suite (Marzullo consensus over N TAs):")
	for _, row := range rows {
		fmt.Fprintln(r.out, " ", row.Summary())
	}
	if err := r.writeCSV("quorum_rows.csv", func(w io.Writer) error {
		if _, err := fmt.Fprintln(w, "scenario,authorities,availability,correct_availability,quorum_accepts,quorum_no_majority,false_tickers,holdovers"); err != nil {
			return err
		}
		for _, row := range rows {
			if _, err := fmt.Fprintf(w, "%s,%d,%.6f,%.6f,%d,%d,%d,%d\n",
				row.Name, row.Authorities, row.RawAvailability, row.CorrectAvailability,
				row.QuorumAccepts, row.QuorumNoMajority, row.FalseTickers, row.Holdovers); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	//triad:nolint:noncepart independent simulated clusters; sealed frames never cross simulations
	fig, err := experiment.RunQuorumAttackFigure(r.seed, r.duration(5*time.Minute))
	if err != nil {
		return err
	}
	if err := r.writeCSV("quorum_attack_baseline_drift.csv", func(w io.Writer) error {
		return metrics.WriteDriftCSV(w, fig.Baseline)
	}); err != nil {
		return err
	}
	return r.writeCSV("quorum_attack_quorum_drift.csv", func(w io.Writer) error {
		return metrics.WriteDriftCSV(w, fig.Quorum)
	})
}
