package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUnknownFigure(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "99"}, &b); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunFig2WritesSummaryAndCSVs(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-fig", "2", "-dur", "2m", "-out", dir, "-seed", "7"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Fig2") || !strings.Contains(out, "F_calib=") {
		t.Errorf("summary missing:\n%s", out)
	}
	for _, name := range []string{"fig2_drift.csv", "fig2_ta_refs.csv", "fig2_aex.csv", "fig2_states.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(strings.Split(string(data), "\n")) < 3 {
			t.Errorf("%s suspiciously short", name)
		}
	}
}

func TestRunFig1aCDF(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-fig", "1a", "-dur", "5m", "-out", dir}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1a_cdf.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "gap_seconds,cdf") {
		t.Error("CDF CSV header missing")
	}
}

func TestRunINC(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "inc"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "632182") && !strings.Contains(b.String(), "63218") {
		t.Errorf("INC summary off:\n%s", b.String())
	}
}

func TestRunExtension(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "ext", "-dur", "3m"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "original") || !strings.Contains(out, "hardened") {
		t.Errorf("extension table malformed:\n%s", out)
	}
	if !strings.Contains(out, "INFECTED") || !strings.Contains(out, "SAFE") {
		t.Errorf("extension verdicts missing:\n%s", out)
	}
}

func TestRunSelfCheck(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "check", "-seed", "3"}, &b); err != nil {
		t.Fatalf("self-check failed:\n%s\n%v", b.String(), err)
	}
	if !strings.Contains(b.String(), "reproduction checks passed") {
		t.Errorf("output:\n%s", b.String())
	}
}

func TestReproductionChecksAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range []string{"11", "23"} {
		var b strings.Builder
		if err := run([]string{"-fig", "check", "-seed", seed}, &b); err != nil {
			t.Errorf("seed %s: %v\n%s", seed, err, b.String())
		}
	}
}

func TestRunAllFigureRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("covers every runner at reduced durations")
	}
	// Cheap passes over every runner the -fig flag accepts (durations
	// shrunk where the flag allows).
	cases := [][]string{
		{"-fig", "1b", "-dur", "1h"},
		{"-fig", "3", "-dur", "10m"},
		{"-fig", "4", "-dur", "3m"},
		{"-fig", "5", "-dur", "3m"},
		{"-fig", "6", "-dur", "3m"},
		{"-fig", "avail", "-dur", "5m"},
		{"-fig", "ntp", "-dur", "30m"},
		{"-fig", "t3e"},
		{"-fig", "loss", "-dur", "3m"},
		{"-fig", "outage", "-dur", "10m"},
		{"-fig", "dvfs"},
		{"-fig", "scale", "-dur", "3m"},
		{"-fig", "gossip", "-dur", "3m"},
		{"-fig", "calib"},
		{"-fig", "latency", "-dur", "3m"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err != nil {
			t.Errorf("%v: %v\n%s", args, err, b.String())
		}
		if b.Len() == 0 {
			t.Errorf("%v produced no output", args)
		}
	}
}
