package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUnknownFigure(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "99"}, &b, io.Discard); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunFig2WritesSummaryAndCSVs(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-fig", "2", "-dur", "2m", "-out", dir, "-seed", "7"}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Fig2") || !strings.Contains(out, "F_calib=") {
		t.Errorf("summary missing:\n%s", out)
	}
	for _, name := range []string{"fig2_drift.csv", "fig2_ta_refs.csv", "fig2_aex.csv", "fig2_states.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(strings.Split(string(data), "\n")) < 3 {
			t.Errorf("%s suspiciously short", name)
		}
	}
}

func TestRunFig1aCDF(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-fig", "1a", "-dur", "5m", "-out", dir}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1a_cdf.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "gap_seconds,cdf") {
		t.Error("CDF CSV header missing")
	}
}

func TestRunINC(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "inc"}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "632182") && !strings.Contains(b.String(), "63218") {
		t.Errorf("INC summary off:\n%s", b.String())
	}
}

func TestRunExtension(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "ext", "-dur", "3m"}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "original") || !strings.Contains(out, "hardened") {
		t.Errorf("extension table malformed:\n%s", out)
	}
	if !strings.Contains(out, "INFECTED") || !strings.Contains(out, "SAFE") {
		t.Errorf("extension verdicts missing:\n%s", out)
	}
}

func TestRunSelfCheck(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "check", "-seed", "3"}, &b, io.Discard); err != nil {
		t.Fatalf("self-check failed:\n%s\n%v", b.String(), err)
	}
	if !strings.Contains(b.String(), "reproduction checks passed") {
		t.Errorf("output:\n%s", b.String())
	}
}

func TestReproductionChecksAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range []string{"11", "23"} {
		var b strings.Builder
		if err := run([]string{"-fig", "check", "-seed", seed}, &b, io.Discard); err != nil {
			t.Errorf("seed %s: %v\n%s", seed, err, b.String())
		}
	}
}

func TestRunAllFigureRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("covers every runner at reduced durations")
	}
	// Cheap passes over every runner the -fig flag accepts (durations
	// shrunk where the flag allows).
	cases := [][]string{
		{"-fig", "1b", "-dur", "1h"},
		{"-fig", "3", "-dur", "10m"},
		{"-fig", "4", "-dur", "3m"},
		{"-fig", "5", "-dur", "3m"},
		{"-fig", "6", "-dur", "3m"},
		{"-fig", "avail", "-dur", "5m"},
		{"-fig", "ntp", "-dur", "30m"},
		{"-fig", "t3e"},
		{"-fig", "loss", "-dur", "3m"},
		{"-fig", "outage", "-dur", "10m"},
		{"-fig", "quorum", "-dur", "3m"},
		{"-fig", "dvfs"},
		{"-fig", "scale", "-dur", "3m"},
		{"-fig", "gossip", "-dur", "3m"},
		{"-fig", "calib"},
		{"-fig", "latency", "-dur", "3m"},
		{"-fig", "load"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b, io.Discard); err != nil {
			t.Errorf("%v: %v\n%s", args, err, b.String())
		}
		if b.Len() == 0 {
			t.Errorf("%v produced no output", args)
		}
	}
}

// readDir returns every file's contents keyed by name.
func readDir(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := map[string]string{}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = string(data)
	}
	return files
}

// TestQuorumFigureSeedStable is the quorum suite's golden-trace gate
// at the CLI layer: two runs at the same seed must produce
// byte-identical console output and CSV artifacts (availability rows
// and both attack drift series).
func TestQuorumFigureSeedStable(t *testing.T) {
	runQuorum := func() (string, map[string]string) {
		dir := t.TempDir()
		var b strings.Builder
		if err := run([]string{"-fig", "quorum", "-dur", "3m", "-seed", "10", "-out", dir}, &b, io.Discard); err != nil {
			t.Fatalf("%v\n%s", err, b.String())
		}
		return strings.ReplaceAll(b.String(), dir, "OUT"), readDir(t, dir)
	}
	text1, files1 := runQuorum()
	text2, files2 := runQuorum()
	if text1 != text2 {
		t.Errorf("quorum figure output differs across same-seed runs:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
	if !strings.Contains(text1, "quorum-3ta-lying-fixed") {
		t.Errorf("quorum rows missing:\n%s", text1)
	}
	for _, name := range []string{"quorum_rows.csv", "quorum_attack_baseline_drift.csv", "quorum_attack_quorum_drift.csv"} {
		if files1[name] == "" {
			t.Errorf("artifact %s missing or empty", name)
		}
		if files1[name] != files2[name] {
			t.Errorf("artifact %s differs across same-seed runs", name)
		}
	}
}

// TestParallelMatchesSerial is the determinism contract of the
// parallel runner: the same figures at the same seed must produce
// byte-identical console output, CSV artifacts, and JSONL traces
// whether they run serially or fanned across workers.
func TestParallelMatchesSerial(t *testing.T) {
	runFigs := func(parallel string) (string, map[string]string) {
		dir := t.TempDir()
		var b strings.Builder
		args := []string{"-fig", "all", "-dur", "2m", "-seed", "5", "-out", dir, "-parallel", parallel}
		if err := run(args, &b, io.Discard); err != nil {
			t.Fatalf("-parallel %s: %v\n%s", parallel, err, b.String())
		}
		files := readDir(t, dir)
		// The out dir path differs between runs; normalize it away so
		// the "wrote ..." lines compare equal.
		return strings.ReplaceAll(b.String(), dir, "OUT"), files
	}
	serialText, serialFiles := runFigs("1")
	parallelText, parallelFiles := runFigs("4")
	if serialText != parallelText {
		t.Errorf("console output differs between -parallel 1 and -parallel 4:\n--- serial ---\n%s\n--- parallel ---\n%s", serialText, parallelText)
	}
	if len(serialFiles) == 0 {
		t.Fatal("serial run wrote no artifacts")
	}
	for name, want := range serialFiles {
		if got, ok := parallelFiles[name]; !ok {
			t.Errorf("parallel run missing artifact %s", name)
		} else if got != want {
			t.Errorf("artifact %s differs between serial and parallel runs", name)
		}
	}
	for name := range parallelFiles {
		if _, ok := serialFiles[name]; !ok {
			t.Errorf("parallel run wrote extra artifact %s", name)
		}
	}
}

// TestTraceFileParallel checks the fig6 JSONL trace survives the
// buffered artifact path byte-for-byte across worker counts.
func TestTraceFileParallel(t *testing.T) {
	runTraced := func(parallel string) string {
		tf := filepath.Join(t.TempDir(), "trace.jsonl")
		var b strings.Builder
		if err := run([]string{"-fig", "6", "-dur", "2m", "-seed", "9", "-trace", tf, "-parallel", parallel}, &b, io.Discard); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(tf)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatal("empty trace")
		}
		return string(data)
	}
	if runTraced("1") != runTraced("4") {
		t.Error("fig6 trace differs across worker counts")
	}
}

// TestCacheReplay checks the -cache path: a second run replays
// identical output and artifacts without recomputation, and a seed
// change misses the cache.
func TestCacheReplay(t *testing.T) {
	cacheDir := t.TempDir()
	dir := t.TempDir() // shared: the out dir is part of the cache key
	runCached := func(seed string) (string, string, map[string]string) {
		var b, e strings.Builder
		args := []string{"-fig", "2", "-dur", "2m", "-seed", seed, "-out", dir, "-cache", cacheDir}
		if err := run(args, &b, &e); err != nil {
			t.Fatal(err)
		}
		return strings.ReplaceAll(b.String(), dir, "OUT"), e.String(), readDir(t, dir)
	}
	coldText, coldSummary, coldFiles := runCached("7")
	if !strings.Contains(coldSummary, "runner: 1 runs") {
		t.Errorf("cold summary missing: %q", coldSummary)
	}
	if strings.Contains(coldSummary, "cached") {
		t.Errorf("cold run reported cache hits: %q", coldSummary)
	}
	warmText, warmSummary, warmFiles := runCached("7")
	if !strings.Contains(warmSummary, "(1 cached)") {
		t.Errorf("warm run did not hit the cache: %q", warmSummary)
	}
	if warmText != coldText {
		t.Errorf("cached replay text differs:\n--- cold ---\n%s\n--- warm ---\n%s", coldText, warmText)
	}
	for name, want := range coldFiles {
		if warmFiles[name] != want {
			t.Errorf("cached artifact %s differs", name)
		}
	}
	_, otherSummary, _ := runCached("8")
	if strings.Contains(otherSummary, "cached") {
		t.Errorf("different seed hit the cache: %q", otherSummary)
	}
}
