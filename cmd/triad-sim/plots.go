package main

import (
	"fmt"
	"io"
)

// Gnuplot scripts regenerate the paper's visual layout from the CSVs:
// `gnuplot fig6_plot.gp` renders fig6.png next to the data. Node colors
// follow the paper's convention (Nodes 1, 2, 3 = blue, orange, black).

// paperColors matches the paper's consistent figure legend.
var paperColors = []string{"blue", "orange", "black"}

// writeDriftPlot emits a gnuplot script for a <base>_drift.csv series.
func writeDriftPlot(w io.Writer, base string, nodes int) error {
	if _, err := fmt.Fprintf(w, `# gnuplot script — renders %[1]s.png from %[1]s_drift.csv
set datafile separator ','
set terminal pngcairo size 900,420
set output '%[1]s.png'
set xlabel 'Reference time (s)'
set ylabel 'Clock drift (s)'
set key top left
set grid
plot \
`, base); err != nil {
		return err
	}
	for i := 0; i < nodes; i++ {
		sep := ", \\\n"
		if i == nodes-1 {
			sep = "\n"
		}
		color := paperColors[i%len(paperColors)]
		if _, err := fmt.Fprintf(w, "  '%s_drift.csv' using 1:%d with points pt 7 ps 0.3 lc rgb '%s' title 'Node %d'%s",
			base, i+2, color, i+1, sep); err != nil {
			return err
		}
	}
	return nil
}

// writeCountPlot emits a gnuplot script for a cumulative-count CSV
// (TA references, AEX counts).
func writeCountPlot(w io.Writer, base, csvSuffix, ylabel string, nodes int) error {
	if _, err := fmt.Fprintf(w, `# gnuplot script — renders %[1]s_%[2]s.png from %[1]s_%[2]s.csv
set datafile separator ','
set terminal pngcairo size 900,420
set output '%[1]s_%[2]s.png'
set xlabel 'Reference time (s)'
set ylabel '%[3]s'
set key top left
set grid
plot \
`, base, csvSuffix, ylabel); err != nil {
		return err
	}
	for i := 0; i < nodes; i++ {
		sep := ", \\\n"
		if i == nodes-1 {
			sep = "\n"
		}
		color := paperColors[i%len(paperColors)]
		if _, err := fmt.Fprintf(w, "  '%s_%s.csv' using 1:%d with steps lc rgb '%s' title 'Node %d'%s",
			base, csvSuffix, i+2, color, i+1, sep); err != nil {
			return err
		}
	}
	return nil
}

// writeCDFPlot emits a gnuplot script for a Figure 1 CDF CSV.
func writeCDFPlot(w io.Writer, base string) error {
	_, err := fmt.Fprintf(w, `# gnuplot script — renders %[1]s.png from %[1]s.csv
set datafile separator ','
set terminal pngcairo size 600,420
set output '%[1]s.png'
set xlabel 'Delay between AEXs (s)'
set ylabel 'CDF'
set logscale x
set yrange [0:1]
set grid
plot '%[1]s.csv' using 1:2 with steps lc rgb 'blue' notitle
`, base)
	return err
}
