// Command triad-vet runs the repo's custom static analyzers — the
// determinism, zero-allocation, wire-safety, lock-discipline, and
// security-invariant checks that ordinary go vet cannot express —
// over a set of package patterns:
//
//	go run ./cmd/triad-vet ./...
//
// Analyzers (see DESIGN.md, "Static analysis"):
//
//	simdet       deterministic packages must not read wall-clock time,
//	             use global math/rand, spawn goroutines, or range over maps
//	hotpath      //triad:hotpath functions must not contain allocating
//	             constructs
//	wirekind     switches over wire enum types must be exhaustive or carry
//	             an explicit default
//	sealcopy     wire Sealer/Opener values must not be copied by value
//	lockflow     serve/transport must not hold mutexes across channel
//	             sends or TrustedNow calls
//	noncepart    sealer constructions must not provably reuse a sender
//	             identity (AEAD nonce partitioning, DESIGN §6.1)
//	durable      persisted files must follow write→fsync→rename→dir-sync
//	atomicfield  a field accessed via sync/atomic anywhere must be
//	             atomic everywhere
//	fencecmp     stores to //triad:monotonic fields must be provably
//	             non-decreasing; no narrowing of monotonic values
//
// Exit status is 1 if any diagnostic is reported, 2 on load failure.
// Suppress a finding with a trailing //triad:nolint:<name> <reason>
// comment on the offending line or the line above it.
//
// -json emits diagnostics as a JSON array for tooling; -nolint-audit
// checks the suppression budget instead of running analyzers: every
// //triad:nolint must carry a reason, and the total count must not
// exceed the baseline file (-baseline, default lint-baseline.txt).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"triadtime/internal/analysis"
	"triadtime/internal/analysis/atomicfield"
	"triadtime/internal/analysis/durable"
	"triadtime/internal/analysis/fencecmp"
	"triadtime/internal/analysis/hotpath"
	"triadtime/internal/analysis/load"
	"triadtime/internal/analysis/lockflow"
	"triadtime/internal/analysis/noncepart"
	"triadtime/internal/analysis/sealcopy"
	"triadtime/internal/analysis/simdet"
	"triadtime/internal/analysis/wirekind"
)

// Suite is the full analyzer set triad-vet runs, in report order.
var Suite = []*analysis.Analyzer{
	simdet.Analyzer,
	hotpath.Analyzer,
	wirekind.Analyzer,
	sealcopy.Analyzer,
	lockflow.Analyzer,
	noncepart.Analyzer,
	durable.Analyzer,
	atomicfield.Analyzer,
	fencecmp.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("triad-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "change to `dir` before loading packages")
	list := fs.Bool("list", false, "print the analyzer names and docs, then exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	audit := fs.Bool("nolint-audit", false, "audit //triad:nolint directives instead of running analyzers")
	baseline := fs.String("baseline", "lint-baseline.txt", "suppression-count baseline `file` for -nolint-audit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: triad-vet [-C dir] [-list] [-json] [-nolint-audit [-baseline file]] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range Suite {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *audit {
		return runAudit(*dir, *baseline, stdout, stderr)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load.Packages(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "triad-vet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, Suite)
	if err != nil {
		fmt.Fprintf(stderr, "triad-vet: %v\n", err)
		return 2
	}
	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "triad-vet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: %s (%s)\n", relativize(d.Pos.String()), d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "triad-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonDiag is the machine-readable diagnostic shape; field names are
// part of the tool's interface (CI consumes them).
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

func writeJSON(stdout io.Writer, diags []analysis.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     relativize(d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
			Analyzer: d.Analyzer,
		})
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// runAudit walks the tree's Go sources (testdata modules excluded —
// their suppressions exercise the mechanism itself) and enforces the
// suppression budget: every directive well-formed and reasoned, and
// no more directives than the checked-in baseline allows. Exit 1 on
// violation, 2 when the tree or baseline cannot be read.
func runAudit(dir, baselinePath string, stdout, stderr io.Writer) int {
	budget, err := readBaseline(filepath.Join(dir, baselinePath))
	if err != nil {
		fmt.Fprintf(stderr, "triad-vet: %v\n", err)
		return 2
	}
	var count, bad int
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		n, problems, err := auditFile(path)
		if err != nil {
			return err
		}
		count += n
		for _, p := range problems {
			bad++
			fmt.Fprintln(stdout, p)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(stderr, "triad-vet: audit: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "triad-vet: %d suppression(s), baseline %d\n", count, budget)
	if bad > 0 {
		fmt.Fprintf(stderr, "triad-vet: %d malformed suppression(s)\n", bad)
		return 1
	}
	if count > budget {
		fmt.Fprintf(stderr, "triad-vet: suppression count %d exceeds baseline %d; fix the finding or raise the baseline with a review\n", count, budget)
		return 1
	}
	return 0
}

// auditFile scans one source file for //triad:nolint directives,
// returning the directive count and a description of each malformed
// one (missing names or missing reason). Files are parsed so only
// real comments count — a mention of the marker in prose (mid-comment)
// or in a string literal is not a directive, exactly mirroring the
// framework's own suppression matching.
func auditFile(path string) (int, []string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return 0, nil, err
	}
	var count int
	var problems []string
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//triad:nolint")
			if !ok {
				continue
			}
			at := fmt.Sprintf("%s:%d", relativize(path), fset.Position(c.Slash).Line)
			if !strings.HasPrefix(rest, ":") {
				problems = append(problems, fmt.Sprintf("%s: //triad:nolint without analyzer names (use //triad:nolint:<names> <reason>)", at))
				continue
			}
			count++
			names, reason, _ := strings.Cut(rest[1:], " ")
			if names == "" {
				problems = append(problems, fmt.Sprintf("%s: //triad:nolint: with empty analyzer list", at))
			}
			if strings.TrimSpace(reason) == "" {
				problems = append(problems, fmt.Sprintf("%s: suppression of %q has no reason; every //triad:nolint must say why the invariant does not apply", at, names))
			}
		}
	}
	return count, problems, nil
}

// readBaseline parses the budget file: the first non-blank,
// non-comment line is the allowed suppression count.
func readBaseline(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("reading baseline: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n, err := strconv.Atoi(line)
		if err != nil {
			return 0, fmt.Errorf("baseline %s: %q is not a count", path, line)
		}
		return n, nil
	}
	return 0, fmt.Errorf("baseline %s: no count found", path)
}

// relativize shortens an absolute file:line:col position to be
// relative to the current directory when possible, for readable
// clickable output.
func relativize(pos string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return pos
	}
	rel, err := filepath.Rel(cwd, pos)
	if err != nil || len(rel) >= len(pos) {
		return pos
	}
	return rel
}
