// Command triad-vet runs the repo's custom static analyzers — the
// determinism, zero-allocation, wire-safety, and lock-discipline
// invariants that ordinary go vet cannot express — over a set of
// package patterns:
//
//	go run ./cmd/triad-vet ./...
//
// Analyzers (see DESIGN.md, "Static analysis"):
//
//	simdet    deterministic packages must not read wall-clock time,
//	          use global math/rand, spawn goroutines, or range over maps
//	hotpath   //triad:hotpath functions must not contain allocating
//	          constructs
//	wirekind  switches over wire enum types must be exhaustive or carry
//	          an explicit default
//	sealcopy  wire Sealer/Opener values must not be copied by value
//	lockflow  serve/transport must not hold mutexes across channel
//	          sends or TrustedNow calls
//
// Exit status is 1 if any diagnostic is reported, 2 on load failure.
// Suppress a finding with a trailing //triad:nolint:<name> <reason>
// comment on the offending line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"triadtime/internal/analysis"
	"triadtime/internal/analysis/hotpath"
	"triadtime/internal/analysis/load"
	"triadtime/internal/analysis/lockflow"
	"triadtime/internal/analysis/sealcopy"
	"triadtime/internal/analysis/simdet"
	"triadtime/internal/analysis/wirekind"
)

// Suite is the full analyzer set triad-vet runs, in report order.
var Suite = []*analysis.Analyzer{
	simdet.Analyzer,
	hotpath.Analyzer,
	wirekind.Analyzer,
	sealcopy.Analyzer,
	lockflow.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("triad-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "change to `dir` before loading packages")
	list := fs.Bool("list", false, "print the analyzer names and docs, then exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: triad-vet [-C dir] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range Suite {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load.Packages(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "triad-vet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, Suite)
	if err != nil {
		fmt.Fprintf(stderr, "triad-vet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s: %s (%s)\n", relativize(d.Pos.String()), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "triad-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// relativize shortens an absolute file:line:col position to be
// relative to the current directory when possible, for readable
// clickable output.
func relativize(pos string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return pos
	}
	rel, err := filepath.Rel(cwd, pos)
	if err != nil || len(rel) >= len(pos) {
		return pos
	}
	return rel
}
