package main

import (
	"path/filepath"
	"testing"

	"triadtime/internal/analysis"
	"triadtime/internal/analysis/load"
)

// TestRepoIsClean runs the full analyzer suite over the repository and
// requires zero findings: every real violation is either fixed or
// carries an explicit //triad:nolint suppression with a reason. This
// is the same gate `make lint` and CI enforce.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repo; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Packages(root, "./...")
	if err != nil {
		t.Fatalf("loading repo packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	diags, err := analysis.Run(pkgs, Suite)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
	}
}
