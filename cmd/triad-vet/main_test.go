package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"triadtime/internal/analysis"
	"triadtime/internal/analysis/load"
)

// TestRepoIsClean runs the full analyzer suite over the repository and
// requires zero findings: every real violation is either fixed or
// carries an explicit //triad:nolint suppression with a reason. This
// is the same gate `make lint` and CI enforce.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repo; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Packages(root, "./...")
	if err != nil {
		t.Fatalf("loading repo packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	diags, err := analysis.Run(pkgs, Suite)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
	}
}

// TestWriteJSON pins the machine-readable diagnostic shape: the field
// names are the tool's interface — the CI problem matcher and any
// editor integration parse them.
func TestWriteJSON(t *testing.T) {
	diags := []analysis.Diagnostic{
		{
			Analyzer: "fencecmp",
			Pos:      token.Position{Filename: "/abs/elsewhere/vault.go", Line: 42, Column: 7},
			Message:  "store is not provably monotonic",
		},
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(got) != 1 {
		t.Fatalf("got %d diags, want 1", len(got))
	}
	for _, key := range []string{"file", "line", "col", "message", "analyzer"} {
		if _, ok := got[0][key]; !ok {
			t.Errorf("missing field %q in %v", key, got[0])
		}
	}
	if got[0]["line"] != float64(42) || got[0]["analyzer"] != "fencecmp" {
		t.Errorf("bad values: %v", got[0])
	}

	// An empty diagnostic list must still encode as [], not null —
	// consumers index into the array unconditionally.
	buf.Reset()
	if err := writeJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if s := bytes.TrimSpace(buf.Bytes()); string(s) != "[]" {
		t.Errorf("empty diags encode as %q, want []", s)
	}
}

// auditTree writes a throwaway module and returns its path.
func auditTree(t *testing.T, baseline string, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	if baseline != "" {
		if err := os.WriteFile(filepath.Join(dir, "lint-baseline.txt"), []byte(baseline), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestAuditCleanTree(t *testing.T) {
	dir := auditTree(t, "# budget\n2\n", map[string]string{
		"a.go": "package a\n\nvar x = 1 //triad:nolint:simdet justified reason here\n",
		"b.go": "package a\n\n//triad:nolint:hotpath,fencecmp two analyzers, one reason\nvar y = 2\n",
		// Prose mentions and testdata directives must not count.
		"c.go":            "package a\n\n// Docs may mention //triad:nolint without being a directive.\nvar z = 3\n",
		"testdata/t.go":   "package t\n\nvar q = 4 //triad:nolint:simdet testdata is exempt\n",
		"testdata/go.mod": "module t\n",
	})
	var out, errOut bytes.Buffer
	if code := runAudit(dir, "lint-baseline.txt", &out, &errOut); code != 0 {
		t.Fatalf("runAudit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if want := "triad-vet: 2 suppression(s), baseline 2\n"; out.String() != want {
		t.Errorf("stdout = %q, want %q", out.String(), want)
	}
}

func TestAuditRejectsUnreasonedAndOverBudget(t *testing.T) {
	// A directive with no reason is malformed regardless of budget.
	dir := auditTree(t, "5\n", map[string]string{
		"a.go": "package a\n\nvar x = 1 //triad:nolint:simdet\n",
	})
	var out, errOut bytes.Buffer
	if code := runAudit(dir, "lint-baseline.txt", &out, &errOut); code != 1 {
		t.Errorf("unreasoned directive: runAudit = %d, want 1", code)
	}

	// A well-formed tree over the baseline count fails too.
	dir = auditTree(t, "0\n", map[string]string{
		"a.go": "package a\n\nvar x = 1 //triad:nolint:simdet fine reason\n",
	})
	out.Reset()
	errOut.Reset()
	if code := runAudit(dir, "lint-baseline.txt", &out, &errOut); code != 1 {
		t.Errorf("over budget: runAudit = %d, want 1", code)
	}

	// Missing names (bare marker at comment start) is malformed.
	dir = auditTree(t, "5\n", map[string]string{
		"a.go": "package a\n\nvar x = 1 //triad:nolint because reasons\n",
	})
	out.Reset()
	errOut.Reset()
	if code := runAudit(dir, "lint-baseline.txt", &out, &errOut); code != 1 {
		t.Errorf("nameless directive: runAudit = %d, want 1", code)
	}
}

func TestReadBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.txt")
	if err := os.WriteFile(path, []byte("# comment\n\n  7  \n"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := readBaseline(path)
	if err != nil || n != 7 {
		t.Errorf("readBaseline = %d, %v; want 7, nil", n, err)
	}
	if _, err := readBaseline(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing baseline: want error")
	}
	if err := os.WriteFile(path, []byte("# only comments\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(path); err == nil {
		t.Error("countless baseline: want error")
	}
}
