package triadtime_test

import (
	"fmt"
	"time"

	"triadtime"
	"triadtime/lease"
	"triadtime/tsa"
)

// ExampleNewLab runs a simulated three-node Triad cluster and reads a
// trusted timestamp once calibration completes.
func ExampleNewLab() {
	lab, err := triadtime.NewLab(triadtime.LabConfig{Seed: 42})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		lab.UseTriadLikeAEXs(i)
	}
	lab.Start()
	lab.Run(30 * time.Second)

	ts, err := lab.TrustedNow(0)
	if err != nil {
		panic(err)
	}
	drift := time.Duration(ts.Nanos - lab.ReferenceNow())
	fmt.Println("state:", lab.Nodes[0].State())
	fmt.Println("drift within 100ms:", drift > -100*time.Millisecond && drift < 100*time.Millisecond)
	// Output:
	// state: OK
	// drift within 100ms: true
}

// ExampleLab_AttackCalibration reproduces the F- attack's calibrated-
// rate skew: ~0.9x the true TSC rate (paper Figure 6).
func ExampleLab_AttackCalibration() {
	lab, err := triadtime.NewLab(triadtime.LabConfig{Seed: 7})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		lab.UseTriadLikeAEXs(i)
	}
	lab.AttackCalibration(2, triadtime.FMinus)
	lab.Start()
	lab.Run(60 * time.Second)

	ratio := lab.Nodes[2].FCalib() / 2899.999e6
	fmt.Printf("victim F_calib ratio ~0.9: %v\n", ratio > 0.89 && ratio < 0.91)
	// Output:
	// victim F_calib ratio ~0.9: true
}

// ExampleNewLab_hardened shows the Section V protocol surviving the
// same attack.
func ExampleNewLab_hardened() {
	lab, err := triadtime.NewLab(triadtime.LabConfig{Seed: 7, Hardened: true})
	if err != nil {
		panic(err)
	}
	lab.AttackCalibration(2, triadtime.FMinus)
	lab.Start()
	lab.Run(60 * time.Second)

	// Either the victim never calibrated (visible DoS) or its rate is
	// honest — never silently corrupted.
	f := lab.Nodes[2].FCalib()
	corrupted := f != 0 && (f < 2899.999e6*0.99 || f > 2899.999e6*1.01)
	fmt.Println("silently corrupted:", corrupted)
	// Output:
	// silently corrupted: false
}

// ExampleNewLab_applications builds the tsa and lease toolkits on a
// simulated node's trusted clock.
func ExampleNewLab_applications() {
	lab, err := triadtime.NewLab(triadtime.LabConfig{Seed: 1})
	if err != nil {
		panic(err)
	}
	lab.Start()
	lab.Run(30 * time.Second)

	stamper, err := tsa.New(lab.NodeClock(0), []byte("example-verification-key-32bytes"))
	if err != nil {
		panic(err)
	}
	token, err := stamper.Issue([]byte("document"))
	if err != nil {
		panic(err)
	}
	fmt.Println("token verifies:", stamper.Verify([]byte("document"), token))

	leases, err := lease.NewManager(lab.NodeClock(0), time.Hour)
	if err != nil {
		panic(err)
	}
	if _, err := leases.Acquire("gpu-0", "alice", time.Minute); err != nil {
		panic(err)
	}
	_, taken := leases.Acquire("gpu-0", "bob", time.Minute)
	fmt.Println("double acquire refused:", taken != nil)
	// Output:
	// token verifies: true
	// double acquire refused: true
}
