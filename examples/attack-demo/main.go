// Attack demo: reproduce the paper's headline result (Figure 6) in a
// few milliseconds of wall time.
//
// Node 3's operating system mounts an F- delay attack on its own
// calibration: the OS delays the Time Authority's immediate responses
// by 100ms, so the regression underestimates the TSC rate and Node 3's
// perceived clock runs ~11% fast. Nodes 1 and 2 are honest — yet as
// soon as they experience AEXs and ask peers for timestamps, Triad's
// adopt-the-higher-timestamp policy drags them onto the compromised
// timeline: they skip forward "arbitrarily far in the future".
//
//	go run ./examples/attack-demo
package main

import (
	"fmt"
	"log"
	"time"

	"triadtime"
)

func main() {
	lab, err := triadtime.NewLab(triadtime.LabConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	// Honest nodes start on quiet, isolated cores; the compromised node
	// endures the usual interrupt storm (it does not care).
	lab.UseIsolatedCore(0)
	lab.UseIsolatedCore(1)
	lab.UseTriadLikeAEXs(2)
	// Node 3's "OS" attacks its own calibration.
	lab.AttackCalibration(2, triadtime.FMinus)
	lab.Start()

	show := func(label string) {
		fmt.Printf("--- %s ---\n", label)
		for i := 0; i < 3; i++ {
			ts, err := lab.TrustedNow(i)
			if err != nil {
				fmt.Printf("node %d: unavailable (%v)\n", i+1, lab.Nodes[i].State())
				continue
			}
			drift := time.Duration(ts.Nanos - lab.ReferenceNow())
			verdict := "honest"
			if drift > time.Second {
				verdict = "INFECTED: skipped into the future"
			}
			fmt.Printf("node %d: drift %+14v  (%s)\n", i+1, drift.Round(time.Microsecond), verdict)
		}
		fmt.Println()
	}

	lab.Run(100 * time.Second)
	show("t=100s: honest nodes quiet, Node 3 already running ~11% fast")

	// The dashed red line of Figure 6: at t=104s the honest nodes start
	// experiencing AEXs and must ask their peers for timestamps.
	lab.UseTriadLikeAEXs(0)
	lab.UseTriadLikeAEXs(1)
	lab.Run(60 * time.Second)
	show("t=160s: honest nodes now taint and untaint from peers")

	lab.Run(120 * time.Second)
	show("t=280s: the infection persists and grows")

	fmt.Println("Compromised node 3 calibrated F =",
		fmt.Sprintf("%.3fMHz", lab.Nodes[2].FCalib()/1e6),
		"(true rate 2899.999MHz — the F- attack deflated it ~10%)")
}
