// Gossip demo: §V's "publish true-chimer lists" extension in action.
//
// Five hardened nodes run over a badly lossy network (35% UDP loss),
// where a tainted node's recovery round often gathers only one or two
// peer answers — too few for a same-moment majority, so without gossip
// every such round falls back to the Time Authority. With gossip, each
// node publishes which peers it has observed interval-consistent; a
// peer accredited by a majority of those published views can untaint a
// node single-handedly.
//
//	go run ./examples/gossip-demo
package main

import (
	"fmt"
	"log"
	"time"

	"triadtime"
)

func run(gossip bool) {
	lab, err := triadtime.NewLab(triadtime.LabConfig{
		Seed:     2024,
		Nodes:    5,
		Hardened: true,
		Gossip:   gossip,
		LossProb: 0.35, // every link drops 35% of datagrams
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		lab.UseTriadLikeAEXs(i)
	}
	lab.Start()
	lab.Run(10 * time.Minute)

	taRefs, untaints := 0, 0
	worstAvail := 1.0
	for i := 0; i < 5; i++ {
		taRefs += lab.Nodes[i].TAReferences()
		untaints += lab.Nodes[i].PeerUntaints()
		if a := lab.Availability(i); a < worstAvail {
			worstAvail = a
		}
	}
	fmt.Printf("gossip=%-5v  TA references %4d   peer recoveries %4d   worst availability %.2f%%\n",
		gossip, taRefs, untaints, worstAvail*100)
}

func main() {
	fmt.Println("5 hardened nodes, Triad-like AEX storms, 10 simulated minutes:")
	run(false)
	run(true)
	fmt.Println()
	fmt.Println("Accreditation lets a single trusted peer stand in for a majority,")
	fmt.Println("so the cluster leans on its own members instead of the remote Time")
	fmt.Println("Authority — the paper's §V: \"a majority clique of true-chimers may")
	fmt.Println("be used to maintain clock consistency and rely less often on the TA\".")
}
