// Lease manager: trusted-time resource leasing with the lease toolkit
// (in the spirit of T-Lease, one of the paper's motivating use-cases).
// A lease grants a holder exclusive access to a resource until an
// expiry timestamp; the safety property is that two holders never
// believe they own the same resource at once. That property collapses
// if the lease arbiter's clock can be manipulated — exactly what the
// F- attack achieves against original Triad.
//
// This example runs the scenario twice in the deterministic lab: an
// honest cluster, then a cluster where the arbiter node is under an F-
// attack, showing leases expiring early against real time (the
// attacker can then re-acquire a resource while the honest holder
// still uses it).
//
//	go run ./examples/lease-manager
package main

import (
	"fmt"
	"log"
	"time"

	"triadtime"
	"triadtime/lease"
)

// scenario grants a 60s lease and reports how much real (reference)
// time passed before a rival could steal the resource.
func scenario(attacked bool) time.Duration {
	lab, err := triadtime.NewLab(triadtime.LabConfig{Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		lab.UseTriadLikeAEXs(i)
	}
	const arbiterNode = 2
	if attacked {
		// The arbiter's own OS quickens its perceived time: leases
		// "expire" while the honest holder still relies on them.
		lab.AttackCalibration(arbiterNode, triadtime.FMinus)
	}
	lab.Start()
	lab.Run(30 * time.Second) // calibration

	arbiter, err := lease.NewManager(lab.NodeClock(arbiterNode), 10*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := arbiter.Acquire("gpu-0", "alice", 60*time.Second); err != nil {
		log.Fatal(err)
	}
	grantedAt := lab.ReferenceNow()

	// Mallory retries every second of reference time.
	for {
		lab.Run(time.Second)
		if _, err := arbiter.Acquire("gpu-0", "mallory", 60*time.Second); err == nil {
			return time.Duration(lab.ReferenceNow() - grantedAt)
		}
		if lab.ReferenceNow()-grantedAt > int64(10*time.Minute) {
			return -1
		}
	}
}

func main() {
	honest := scenario(false)
	fmt.Printf("honest cluster:   alice's 60s lease could be re-acquired after %v of real time\n",
		honest.Round(time.Second))

	attacked := scenario(true)
	fmt.Printf("F- attacked arbiter: alice's 60s lease was stolen after only %v of real time\n",
		attacked.Round(time.Second))
	fmt.Println()
	fmt.Println("The arbiter's clock runs ~11% fast, so every lease silently expires")
	fmt.Println("~10% early — mutual exclusion breaks while the honest holder still")
	fmt.Println("relies on the lease. And the damage compounds: once honest nodes")
	fmt.Println("adopt the fast clock through peer untainting (examples/attack-demo),")
	fmt.Println("the skew grows without bound. Lease systems need the hardened")
	fmt.Println("protocol (see examples/resilient-demo).")
}
