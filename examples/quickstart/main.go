// Quickstart: spin up a simulated Triad cluster (three TEE nodes plus
// a Time Authority), let it calibrate, and read trusted timestamps.
//
//	go run ./examples/quickstart
//
// The simulation is deterministic: a fixed seed reproduces the exact
// run, drift and all.
package main

import (
	"fmt"
	"log"
	"time"

	"triadtime"
)

func main() {
	lab, err := triadtime.NewLab(triadtime.LabConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	// Put every node under the paper's "Triad-like" interrupt storm:
	// inter-AEX gaps of 10ms / 532ms / 1.59s, each with probability 1/3.
	for i := 0; i < 3; i++ {
		lab.UseTriadLikeAEXs(i)
	}
	lab.Start()

	// Let the cluster calibrate against the Time Authority, then read
	// trusted time once per simulated minute.
	lab.Run(30 * time.Second)
	fmt.Println("node  state      F_calib         trusted_time    drift_vs_reference")
	for minute := 1; minute <= 5; minute++ {
		lab.Run(time.Minute)
		for i := 0; i < 3; i++ {
			node := lab.Nodes[i]
			ts, err := lab.TrustedNow(i)
			if err != nil {
				fmt.Printf("%4d  %-9s  (unavailable: %v)\n", i+1, node.State(), err)
				continue
			}
			drift := time.Duration(ts.Nanos - lab.ReferenceNow())
			fmt.Printf("%4d  %-9s  %.3fMHz  t+%-12s  %+v\n",
				i+1, node.State(), node.FCalib()/1e6,
				time.Duration(ts.Nanos).Round(time.Millisecond), drift)
		}
		fmt.Println()
	}

	for i := 0; i < 3; i++ {
		fmt.Printf("node %d availability over the run: %.3f%%\n",
			i+1, lab.Availability(i)*100)
	}
}
