// Resilient demo: the same F- attack as examples/attack-demo, but the
// cluster runs the Section V hardened protocol. Three mechanisms stop
// the damage:
//
//   - calibration uses sleep-free, roundtrip-bounded exchanges over a
//     long TSC window, so the F- timing side channel has nothing to
//     classify and over-delayed responses are simply rejected;
//
//   - tainted nodes untaint from the *majority intersection* of peer
//     timestamps (Marzullo), never from whichever clock is fastest;
//
//   - an in-TCB deadline self-checks the clock even when the attacker
//     withholds interrupts.
//
//     go run ./examples/resilient-demo
package main

import (
	"fmt"
	"log"
	"time"

	"triadtime"
)

func main() {
	lab, err := triadtime.NewLab(triadtime.LabConfig{Seed: 7, Hardened: true})
	if err != nil {
		log.Fatal(err)
	}
	lab.UseIsolatedCore(0)
	lab.UseIsolatedCore(1)
	lab.UseTriadLikeAEXs(2)
	lab.AttackCalibration(2, triadtime.FMinus)
	lab.Start()

	lab.Run(104 * time.Second)
	lab.UseTriadLikeAEXs(0)
	lab.UseTriadLikeAEXs(1)
	lab.Run(200 * time.Second)

	fmt.Println("hardened cluster under the same F- attack, t=304s:")
	worst := time.Duration(0)
	for i := 0; i < 3; i++ {
		ts, err := lab.TrustedNow(i)
		if err != nil {
			// The compromised node may be visibly unavailable — that is
			// the hardened failure mode (DoS instead of corruption).
			fmt.Printf("  node %d: unavailable (%v) — attack turned into visible DoS\n",
				i+1, lab.Nodes[i].State())
			continue
		}
		drift := time.Duration(ts.Nanos - lab.ReferenceNow())
		fmt.Printf("  node %d: drift %+v\n", i+1, drift.Round(time.Microsecond))
		if i < 2 && drift > worst {
			worst = drift
		}
	}
	fmt.Printf("\nworst honest drift: %v — no time skips, no infection\n", worst.Round(time.Microsecond))
	fmt.Println("(compare with examples/attack-demo, where honest nodes skip seconds ahead)")
}
