// Timestamping service: an RFC3161-style TimeStamping Authority built
// from the library's live API and the tsa toolkit — one of the
// trusted-time use-cases the paper's introduction motivates.
//
// The example starts a real Time Authority and a real Triad node over
// localhost UDP, waits for calibration, then issues signed timestamp
// tokens binding document hashes to trusted time. A verifier holding
// the service key can prove a document existed at that time, with the
// timestamp rooted in the TEE's trusted clock instead of the host's
// (malleable) system time.
//
//	go run ./examples/timestamping-service
package main

import (
	"encoding/hex"
	"fmt"
	"log"
	"time"

	"triadtime"
	"triadtime/tsa"
)

func main() {
	clusterKey := make([]byte, triadtime.KeySize)
	for i := range clusterKey {
		clusterKey[i] = byte(3 * i)
	}

	ta, err := triadtime.NewAuthorityServer("127.0.0.1:0", clusterKey, 100)
	if err != nil {
		log.Fatal(err)
	}
	defer ta.Close()
	fmt.Println("time authority on", ta.LocalAddr())

	node, err := triadtime.NewLiveNode(triadtime.LiveConfig{
		Key:       clusterKey,
		ID:        1,
		Listen:    "127.0.0.1:0",
		Directory: map[triadtime.NodeID]string{100: ta.LocalAddr().String()},
		Authority: 100,
		// Calibration needs uninterrupted windows longer than its 1s
		// TA sleeps, so keep synthetic interrupts sparser than that.
		AEXPeriod: 3 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	fmt.Println("triad node on", node.LocalAddr(), "- calibrating...")

	for node.State() != triadtime.StateOK {
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("calibrated: F_calib = %.3fMHz\n\n", node.FCalib()/1e6)

	service, err := tsa.New(tsa.ClockFunc(node.TrustedNanos), []byte("tsa-service-key-demo-32-bytes-ok"))
	if err != nil {
		log.Fatal(err)
	}
	docs := [][]byte{
		[]byte("contract: alice sells bob one enclave"),
		[]byte("audit log entry #4242"),
		[]byte("build artifact sha256:deadbeef"),
	}
	var tokens []tsa.Token
	for _, doc := range docs {
		tok, err := service.Issue(doc)
		if err != nil {
			// Transient taints are expected under AEXs; retry once the
			// node untaints via its peers or the Time Authority.
			time.Sleep(200 * time.Millisecond)
			if tok, err = service.Issue(doc); err != nil {
				log.Fatal(err)
			}
		}
		tokens = append(tokens, tok)
		fmt.Printf("issued: doc=%q\n  hash=%s\n  time=%s\n  token=%d bytes\n",
			doc, hex.EncodeToString(tok.Hash[:8]),
			tok.Time().Format(time.RFC3339Nano), len(tok.Marshal()))
	}

	fmt.Println("\nverification:")
	for i, doc := range docs {
		fmt.Printf("  doc %d genuine: %v\n", i, service.Verify(doc, tokens[i]))
	}
	forged := tokens[0]
	forged.Nanos += int64(time.Hour) // backdate/forward-date attempt
	fmt.Printf("  tampered timestamp rejected: %v\n", !service.Verify(docs[0], forged))
	fmt.Printf("  wrong document rejected: %v\n", !service.Verify([]byte("other"), tokens[0]))
	_, okFromWire := service.VerifyBytes(docs[1], tokens[1].Marshal())
	fmt.Printf("  serialized token verified: %v\n", okFromWire)
}
