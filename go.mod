module triadtime

go 1.24
