package aex

import (
	"math"
	"testing"
	"time"

	"triadtime/internal/sim"
	"triadtime/internal/simtime"
)

func TestTriadLikeDistribution(t *testing.T) {
	s := NewTriadLike(sim.NewRNG(1))
	counts := map[time.Duration]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		g := s.NextGap()
		counts[g]++
	}
	if len(counts) != 3 {
		t.Fatalf("saw %d distinct gaps, want exactly the 3 paper values", len(counts))
	}
	for _, want := range TriadLikeGaps {
		frac := float64(counts[want]) / n
		if math.Abs(frac-1.0/3) > 0.02 {
			t.Errorf("P(%v) = %.3f, want ~1/3", want, frac)
		}
	}
}

func TestTriadLikeJittered(t *testing.T) {
	s := NewTriadLikeJittered(sim.NewRNG(2), 0.05)
	for i := 0; i < 1000; i++ {
		g := s.NextGap()
		ok := false
		for _, base := range TriadLikeGaps {
			lo := time.Duration(0.95 * float64(base))
			hi := time.Duration(1.05 * float64(base))
			if g >= lo && g <= hi {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("jittered gap %v outside ±5%% of any base value", g)
		}
	}
}

func TestIsolatedCoreMostGapsNearMode(t *testing.T) {
	s := NewIsolatedCore(sim.NewRNG(3))
	nearMode, total := 0, 5000
	for i := 0; i < total; i++ {
		g := s.NextGap()
		if g <= 0 {
			t.Fatal("gap must be positive")
		}
		if g > IsolatedCoreModeGap-time.Minute && g < IsolatedCoreModeGap+time.Minute {
			nearMode++
		}
	}
	frac := float64(nearMode) / float64(total)
	if frac < 0.85 {
		t.Errorf("only %.2f of gaps near the 5.4min mode, want most", frac)
	}
}

func TestFixedSampler(t *testing.T) {
	s := Fixed{Gap: time.Second}
	for i := 0; i < 3; i++ {
		if s.NextGap() != time.Second {
			t.Fatal("Fixed must return its gap")
		}
	}
}

func TestExponentialSampler(t *testing.T) {
	s := NewExponential(sim.NewRNG(4), time.Second)
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		g := s.NextGap()
		if g < time.Microsecond {
			t.Fatal("gap below floor")
		}
		sum += g
	}
	mean := float64(sum) / n
	if math.Abs(mean-float64(time.Second)) > 0.05*float64(time.Second) {
		t.Errorf("mean = %v, want ~1s", time.Duration(mean))
	}
}

func TestInjectorDeliversToAllTargets(t *testing.T) {
	sched := sim.NewScheduler()
	in := NewInjector(sched, Fixed{Gap: time.Second})
	var a, b int
	in.Attach(func() { a++ })
	in.Attach(func() { b++ })
	in.Start()
	sched.RunUntil(simtime.FromDuration(5500 * time.Millisecond))
	if a != 5 || b != 5 {
		t.Errorf("targets got %d/%d AEXs, want 5/5", a, b)
	}
	if in.Fired() != 5 {
		t.Errorf("Fired = %d, want 5", in.Fired())
	}
}

func TestInjectorStopStart(t *testing.T) {
	sched := sim.NewScheduler()
	in := NewInjector(sched, Fixed{Gap: time.Second})
	hits := 0
	in.Attach(func() { hits++ })
	in.Start()
	in.Start() // double start is a no-op
	if !in.Running() {
		t.Fatal("injector should be running")
	}
	sched.RunUntil(simtime.FromDuration(2500 * time.Millisecond))
	in.Stop()
	in.Stop() // double stop is a no-op
	sched.RunUntil(simtime.FromDuration(10 * time.Second))
	if hits != 2 {
		t.Errorf("hits = %d, want 2 (stopped after 2.5s)", hits)
	}
	// Restart resumes with a fresh gap.
	in.Start()
	sched.RunUntil(simtime.FromDuration(12500 * time.Millisecond))
	if hits != 4 {
		t.Errorf("hits = %d, want 4 after restart", hits)
	}
}

func TestInjectorDelayedStartModelsFig6(t *testing.T) {
	// Figure 6: honest nodes' AEX counts stay ~0 until t=104s, then grow.
	sched := sim.NewScheduler()
	in := NewInjector(sched, Fixed{Gap: 500 * time.Millisecond})
	hits := 0
	in.Attach(func() { hits++ })
	sched.At(simtime.FromSeconds(104), in.Start)
	sched.RunUntil(simtime.FromSeconds(104))
	if hits != 0 {
		t.Fatalf("AEXs before the scheduled start: %d", hits)
	}
	sched.RunUntil(simtime.FromSeconds(109))
	if hits != 10 {
		t.Errorf("hits = %d, want 10 in the 5s after start", hits)
	}
}

func TestInjectorSetSampler(t *testing.T) {
	sched := sim.NewScheduler()
	in := NewInjector(sched, Fixed{Gap: time.Hour})
	hits := 0
	in.Attach(func() { hits++ })
	in.Start()
	// Swap to a fast process; pending hour-long gap still fires first.
	in.SetSampler(Fixed{Gap: time.Second})
	sched.RunUntil(simtime.FromDuration(time.Hour + 3*time.Second + time.Millisecond))
	if hits != 4 {
		t.Errorf("hits = %d, want 4 (1 slow + 3 fast)", hits)
	}
}
