package aex

import (
	"triadtime/internal/sim"
	"triadtime/internal/simtime"
)

// Injector drives an interrupt process on the simulation scheduler and
// delivers AEXs to every attached core. A per-node injector models the
// paper's rdmsr-based AEX injection on one monitoring core; an injector
// with all cores attached models the machine-wide residual OS interrupts
// that hit every core simultaneously.
type Injector struct {
	sched   *sim.Scheduler
	sampler GapSampler
	targets []func()
	next    sim.Event
	fired   int
	running bool
	// fireFn is the scheduled firing callback, built once so the
	// steady-state inject-reschedule loop never allocates.
	fireFn func()
}

// NewInjector creates an injector on the scheduler using the sampler's
// interrupt process. Attach targets and call Start to begin injecting.
func NewInjector(sched *sim.Scheduler, sampler GapSampler) *Injector {
	in := &Injector{sched: sched, sampler: sampler}
	in.fireFn = in.fire
	return in
}

// Attach registers a core's AEX delivery callback. All attached targets
// receive every AEX of this process (simultaneously, in attach order).
func (in *Injector) Attach(fire func()) {
	in.targets = append(in.targets, fire)
}

// SetSampler swaps the interrupt process. It takes effect when the next
// gap is drawn; an already-scheduled AEX still fires at its time.
func (in *Injector) SetSampler(s GapSampler) { in.sampler = s }

// Start begins injecting AEXs. The first AEX fires one gap from now.
// Starting an already-running injector is a no-op.
func (in *Injector) Start() {
	if in.running {
		return
	}
	in.running = true
	in.scheduleNext()
}

// Stop cancels the pending AEX and pauses the process. A later Start
// resumes with a freshly drawn gap.
func (in *Injector) Stop() {
	if !in.running {
		return
	}
	in.running = false
	in.sched.Cancel(in.next)
	in.next = sim.Event{}
}

// Running reports whether the process is active.
func (in *Injector) Running() bool { return in.running }

// Fired reports how many AEXs this injector has delivered (counting one
// per firing, regardless of how many cores are attached).
func (in *Injector) Fired() int { return in.fired }

//triad:hotpath
func (in *Injector) scheduleNext() {
	gap := in.sampler.NextGap()
	in.next = in.sched.After(simtime.FromDuration(gap), in.fireFn)
}

//triad:hotpath
func (in *Injector) fire() {
	in.fired++
	for _, fire := range in.targets {
		fire()
	}
	if in.running {
		in.scheduleNext()
	}
}
