// Package aex models Asynchronous Enclave Exit (AEX) interrupt processes.
//
// The paper evaluates Triad under two environments (Figure 1): a
// "Triad-like" simulated interrupt distribution with inter-AEX gaps of
// 10ms, 532ms and 1.59s each with probability 1/3, injected per-core; and
// an isolated monitoring core where only residual machine-wide OS
// interrupts remain, arriving roughly every 5.4 minutes and hitting all
// cores of the machine simultaneously (which is what correlates the
// nodes' taint events and produces Figure 2a's sawtooth).
package aex

import (
	"time"

	"triadtime/internal/sim"
)

// GapSampler draws successive inter-AEX gaps for an interrupt process.
type GapSampler interface {
	// NextGap returns the delay until the next AEX. It must be positive.
	NextGap() time.Duration
}

// TriadLikeGaps are the paper's simulated inter-AEX delays, each drawn
// with probability 1/3 (Figure 1a).
var TriadLikeGaps = []time.Duration{
	10 * time.Millisecond,
	532 * time.Millisecond,
	1590 * time.Millisecond,
}

// IsolatedCoreModeGap is the dominant inter-AEX delay on the paper's
// isolated monitoring core: most AEXs occur every 5.4 minutes (Fig. 1b).
const IsolatedCoreModeGap = 324 * time.Second

// TriadLike samples gaps iid from TriadLikeGaps, matching the paper's
// assumption that successive delays are independent:
// P(D_{i+1}=d) = P(D_{i+1}=d | D_i) for all D_i.
type TriadLike struct {
	rng *sim.RNG
	// JitterFrac optionally spreads each gap by a uniform ±fraction, to
	// model scheduling noise of the injection mechanism. Zero keeps the
	// exact three-step CDF.
	jitterFrac float64
}

var _ GapSampler = (*TriadLike)(nil)

// NewTriadLike returns the paper's Triad-like interrupt process.
func NewTriadLike(rng *sim.RNG) *TriadLike {
	return &TriadLike{rng: rng}
}

// NewTriadLikeJittered returns a Triad-like process whose gaps are spread
// by a uniform ±jitterFrac.
func NewTriadLikeJittered(rng *sim.RNG, jitterFrac float64) *TriadLike {
	return &TriadLike{rng: rng, jitterFrac: jitterFrac}
}

// NextGap draws the next inter-AEX delay.
func (s *TriadLike) NextGap() time.Duration {
	g := sim.Choice(s.rng, TriadLikeGaps)
	if s.jitterFrac > 0 {
		g = s.rng.Jitter(g, s.jitterFrac)
	}
	return g
}

// IsolatedCore samples the residual machine-wide interrupt process of an
// isolated core: most gaps cluster around 5.4 minutes with a small spread,
// and a minority of shorter gaps model sporadic OS activity.
type IsolatedCore struct {
	rng *sim.RNG
	// shortFrac is the probability of a short sporadic gap.
	shortFrac float64
}

var _ GapSampler = (*IsolatedCore)(nil)

// NewIsolatedCore returns the low-AEX interrupt process of Figure 1b.
func NewIsolatedCore(rng *sim.RNG) *IsolatedCore {
	return &IsolatedCore{rng: rng, shortFrac: 0.08}
}

// NextGap draws the next inter-AEX delay.
func (s *IsolatedCore) NextGap() time.Duration {
	if s.rng.Float64() < s.shortFrac {
		// Sporadic shorter interrupt: uniform in [5s, 120s).
		return 5*time.Second + time.Duration(s.rng.Float64()*float64(115*time.Second))
	}
	g := s.rng.Gaussian(float64(IsolatedCoreModeGap), float64(8*time.Second))
	if g < float64(time.Second) {
		g = float64(time.Second)
	}
	return time.Duration(g)
}

// Fixed samples a constant gap; useful in tests and for deterministic
// stress scenarios.
type Fixed struct {
	Gap time.Duration
}

var _ GapSampler = Fixed{}

// NextGap returns the fixed gap.
func (s Fixed) NextGap() time.Duration { return s.Gap }

// Exponential samples gaps from an exponential (Poisson-process)
// distribution with the given mean.
type Exponential struct {
	rng  *sim.RNG
	mean time.Duration
}

var _ GapSampler = (*Exponential)(nil)

// NewExponential returns a Poisson interrupt process with the given mean
// inter-AEX gap.
func NewExponential(rng *sim.RNG, mean time.Duration) *Exponential {
	return &Exponential{rng: rng, mean: mean}
}

// NextGap draws the next inter-AEX delay (at least 1µs so the process
// always advances).
func (s *Exponential) NextGap() time.Duration {
	g := s.rng.Exponential(s.mean)
	if g < time.Microsecond {
		g = time.Microsecond
	}
	return g
}
