// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis surface the repo's custom vet
// suite needs. The module deliberately has no third-party
// dependencies, so the suite carries its own Analyzer/Pass/Diagnostic
// types and its own package loader (internal/analysis/load) instead of
// importing the x/tools framework.
//
// An Analyzer inspects one fully type-checked package at a time and
// reports Diagnostics. The runner applies the repo-wide suppression
// directive before diagnostics reach the caller:
//
//	//triad:nolint:name1,name2 reason for the exception
//
// suppresses findings from the named analyzers on the directive's own
// line and on the line directly below it (so the directive can sit on
// its own line above the flagged statement). The reason is free text
// and mandatory by convention: a suppression documents why the
// invariant legitimately does not hold at that site.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"triadtime/internal/analysis/load"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //triad:nolint directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	// A returned error aborts the whole run (it means the analyzer
	// itself failed, not that the code has findings).
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// nolintPrefix is the suppression directive comment prefix.
const nolintPrefix = "//triad:nolint:"

// suppressions maps filename -> line -> analyzer names suppressed
// there ("all" suppresses every analyzer).
type suppressions map[string]map[int][]string

// collectSuppressions scans every comment in the package for
// //triad:nolint directives.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, nolintPrefix)
				if !ok {
					continue
				}
				names, _, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Slash)
				m := sup[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					sup[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], strings.Split(names, ",")...)
			}
		}
	}
	return sup
}

// suppressed reports whether d is covered by a directive on its line
// or on the line above.
func (s suppressions) suppressed(d Diagnostic) bool {
	m := s[d.Pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range m[line] {
			if name == d.Analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

// Run applies every analyzer to every package, filters suppressed
// findings, and returns the rest sorted by position.
func Run(pkgs []*load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg.Fset, pkg.Files)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				PkgPath:   pkg.PkgPath,
				TypesInfo: pkg.TypesInfo,
				diags:     &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		for _, d := range raw {
			if !sup.suppressed(d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// PathBase returns the last element of an import path: the package
// directory name the scope-gated analyzers (simdet, lockflow) match
// on.
func PathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
