// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis surface the repo's custom vet
// suite needs. The module deliberately has no third-party
// dependencies, so the suite carries its own Analyzer/Pass/Diagnostic
// types and its own package loader (internal/analysis/load) instead of
// importing the x/tools framework.
//
// An Analyzer inspects one fully type-checked package at a time and
// reports Diagnostics. The runner applies the repo-wide suppression
// directive before diagnostics reach the caller:
//
//	//triad:nolint:name1,name2 reason for the exception
//
// suppresses findings from the named analyzers on the directive's own
// line and on the line directly below it (so the directive can sit on
// its own line above the flagged statement). The reason is free text
// and mandatory by convention: a suppression documents why the
// invariant legitimately does not hold at that site.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"triadtime/internal/analysis/load"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //triad:nolint directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	// A returned error aborts the whole run (it means the analyzer
	// itself failed, not that the code has findings).
	Run func(*Pass) error
	// Finish, if non-nil, runs once after every package's Run pass.
	// Whole-run analyses whose verdict needs all packages at once
	// (atomicfield's everywhere-or-nowhere rule) accumulate facts in
	// Run and report from Finish. Finish diagnostics pass through the
	// same //triad:nolint filtering as pass diagnostics.
	Finish func(*FinishPass) error
}

// Fact is a piece of knowledge an analyzer attaches to a package-level
// or member object (a function, a struct field) for later passes of
// the same analyzer over dependent packages. Facts are how the suite
// crosses package boundaries without whole-program analysis: each
// package is still analyzed alone, but against its dependencies'
// accumulated facts.
//
// Implementations must be pointer types (so ImportObjectFact can fill
// a caller-allocated value) and carry an AFact marker method.
type Fact interface {
	AFact()
}

// factKey identifies one fact slot: facts are private to their
// analyzer (mirroring x/tools), and one object holds at most one fact
// of each concrete type per analyzer.
type factKey struct {
	analyzer string
	obj      types.Object
	t        reflect.Type
}

// factStore is the run-wide fact accumulator. Packages are analyzed in
// dependency order, so facts flow along import edges: a pass sees
// every fact its package's dependencies exported, never the reverse.
type factStore map[factKey]Fact

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info

	facts factStore
	diags *[]Diagnostic
}

// ExportObjectFact attaches fact to obj for this analyzer's passes
// over dependent packages (and for the remainder of this pass). A
// second export of the same fact type to the same object overwrites
// the first.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil {
		return
	}
	p.facts[factKey{p.Analyzer.Name, obj, reflect.TypeOf(fact)}] = fact
}

// ImportObjectFact copies the fact of fact's concrete type previously
// exported on obj into fact, reporting whether one existed. The
// loader's source-package reuse guarantees obj identity is stable
// between the exporting pass and this one.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	stored, ok := p.facts[factKey{p.Analyzer.Name, obj, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// HasObjectFact reports whether obj carries a fact of the given
// concrete type without copying it.
func (p *Pass) HasObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	_, ok := p.facts[factKey{p.Analyzer.Name, obj, reflect.TypeOf(fact)}]
	return ok
}

// ObjectFact pairs an object with one fact attached to it.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// FinishPass is the whole-run view handed to Analyzer.Finish after the
// last package's Run pass.
type FinishPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet

	facts factStore
	diags *[]Diagnostic
}

// AllObjectFacts returns every fact this analyzer exported during the
// run, across all packages, in no particular order.
func (p *FinishPass) AllObjectFacts() []ObjectFact {
	var out []ObjectFact
	for k, f := range p.facts {
		if k.analyzer == p.Analyzer.Name {
			out = append(out, ObjectFact{Object: k.obj, Fact: f})
		}
	}
	return out
}

// Reportf records one finding at pos (which must come from a file
// registered in the run's shared FileSet).
func (p *FinishPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// nolintPrefix is the suppression directive comment prefix.
const nolintPrefix = "//triad:nolint:"

// suppressions maps filename -> line -> analyzer names suppressed
// there ("all" suppresses every analyzer).
type suppressions map[string]map[int][]string

// collectSuppressions scans every comment in the package for
// //triad:nolint directives.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, nolintPrefix)
				if !ok {
					continue
				}
				names, _, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Slash)
				m := sup[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					sup[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], strings.Split(names, ",")...)
			}
		}
	}
	return sup
}

// suppressed reports whether d is covered by a directive on its line
// or on the line above.
func (s suppressions) suppressed(d Diagnostic) bool {
	m := s[d.Pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range m[line] {
			if name == d.Analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

// Run applies every analyzer to every package, filters suppressed
// findings, and returns the rest sorted by position. Packages must be
// in dependency order (as load.Packages returns them): facts exported
// by a dependency's pass are visible to its dependents' passes.
func Run(pkgs []*load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	facts := factStore{}
	// merged accumulates every package's suppressions so Finish-phase
	// diagnostics (reported after all packages) are filtered too.
	merged := suppressions{}
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg.Fset, pkg.Files)
		for file, lines := range sup {
			if merged[file] == nil {
				merged[file] = map[int][]string{}
			}
			for line, names := range lines {
				merged[file][line] = append(merged[file][line], names...)
			}
		}
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				PkgPath:   pkg.PkgPath,
				TypesInfo: pkg.TypesInfo,
				facts:     facts,
				diags:     &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		for _, d := range raw {
			if !sup.suppressed(d) {
				diags = append(diags, d)
			}
		}
	}
	if len(pkgs) > 0 {
		var raw []Diagnostic
		for _, a := range analyzers {
			if a.Finish == nil {
				continue
			}
			fp := &FinishPass{
				Analyzer: a,
				Fset:     pkgs[0].Fset, // load shares one FileSet run-wide
				facts:    facts,
				diags:    &raw,
			}
			if err := a.Finish(fp); err != nil {
				return nil, fmt.Errorf("analyzer %s finish: %w", a.Name, err)
			}
		}
		for _, d := range raw {
			if !merged.suppressed(d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// PathBase returns the last element of an import path: the package
// directory name the scope-gated analyzers (simdet, lockflow) match
// on.
func PathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
