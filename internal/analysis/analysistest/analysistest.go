// Package analysistest runs an analyzer over a testdata module and
// checks its diagnostics against golden expectations written in the
// source, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	x := time.Now() // want `nondeterministic time\.Now`
//
// Each `// want` comment carries one or more backquoted or
// double-quoted regular expressions; every expectation must be matched
// by a diagnostic on that line, and every diagnostic must be covered
// by an expectation. Testdata directories are modules of their own
// (with a go.mod), so the go tool ignores them during normal builds
// while the loader can still compile them — positive cases must be
// legal Go that merely violates the suite's invariants.
//
// Diagnostics pass through the runner's //triad:nolint filtering, so
// testdata can also pin the suppression mechanism itself.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"triadtime/internal/analysis"
	"triadtime/internal/analysis/load"
)

// expectation is one `// want` pattern at a file position.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the testdata module rooted at dir, applies the analyzer to
// the packages matched by patterns (default ./...), and reports any
// mismatch between diagnostics and `// want` expectations as test
// errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ws, err := collectWants(pkg.Fset, f)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, ws...)
		}
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s", posOf(d), d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func posOf(d analysis.Diagnostic) string {
	return fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose pattern matches.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every `// want` comment in the file.
func collectWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Slash)
			pats, err := parsePatterns(rest)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want comment: %w", pos.Filename, pos.Line, err)
			}
			for _, p := range pats {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %w", pos.Filename, pos.Line, p, err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}
	return wants, nil
}

// parsePatterns splits a want payload into its quoted regexps.
func parsePatterns(s string) ([]string, error) {
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			pats = append(pats, s[1:1+end])
			s = s[2+end:]
		case '"':
			// strconv handles escapes inside double quotes.
			rest := s[1:]
			end := strings.IndexByte(rest, '"')
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			p, err := strconv.Unquote(s[:end+2])
			if err != nil {
				return nil, err
			}
			pats = append(pats, p)
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("expected quoted pattern, got %q", s)
		}
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("no patterns")
	}
	return pats, nil
}
