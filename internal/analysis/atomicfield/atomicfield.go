// Package atomicfield enforces the everywhere-or-nowhere rule for
// sync/atomic: a struct field accessed through the atomic functions
// anywhere in the tree must be accessed through them everywhere. A
// single plain load or store beside atomic ones is a data race the
// race detector only catches under the right interleaving — and on
// the holdover/epoch state this suite guards, the lucky interleaving
// is a forged timestamp.
//
// The analyzer is a whole-run check: every package's pass records
// atomic and plain accesses as facts on the field object, and a
// Finish pass reports each plain access to any field that also has
// atomic accesses — in either direction across package boundaries.
// Fields of the typed atomic wrappers (atomic.Uint64 and friends) are
// inherently safe and out of scope; composite-literal initialization
// before the value is shared is sanctioned, as is the &s.field
// operand position itself.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"triadtime/internal/analysis"
)

// Analyzer is the atomicfield analysis.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "flags struct fields accessed both through sync/atomic and " +
		"plainly; an atomically-accessed field must be atomic at every " +
		"access site in the tree",
	Run:    run,
	Finish: finish,
}

// accessFact accumulates, per struct field, every atomic and plain
// access position seen across the run.
type accessFact struct {
	Atomic []token.Pos
	Plain  []token.Pos
}

func (*accessFact) AFact() {}

// atomicFuncs are the sync/atomic function-style entry points whose
// first argument addresses the guarded location.
func isAtomicFunc(f *types.Func) bool {
	if f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range [...]string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(f.Name(), prefix) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		// atomicOperands collects the &s.f selector nodes that appear as
		// an atomic call's address argument, so the plain-access walk
		// below can skip them. ast.Inspect visits a call before its
		// arguments, so the set is always populated in time.
		atomicOperands := map[*ast.SelectorExpr]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				f, ok := calleeObj(pass.TypesInfo, n).(*types.Func)
				if !ok || !isAtomicFunc(f) || len(n.Args) == 0 {
					return true
				}
				sel := addrFieldSel(n.Args[0])
				if sel == nil {
					return true
				}
				field := fieldObj(pass.TypesInfo, sel)
				if field == nil {
					return true
				}
				atomicOperands[sel] = true
				record(pass, field, n.Args[0].Pos(), true)
			case *ast.SelectorExpr:
				if atomicOperands[n] {
					return true
				}
				field := fieldObj(pass.TypesInfo, n)
				if field == nil || !atomicKind(field.Type()) {
					return true
				}
				record(pass, field, n.Pos(), false)
			}
			return true
		})
	}
	return nil
}

// record appends one access position to the field's fact.
func record(pass *analysis.Pass, field *types.Var, pos token.Pos, atomic bool) {
	var f accessFact
	pass.ImportObjectFact(field, &f)
	if atomic {
		f.Atomic = append(f.Atomic, pos)
	} else {
		f.Plain = append(f.Plain, pos)
	}
	pass.ExportObjectFact(field, &f)
}

func finish(pass *analysis.FinishPass) error {
	for _, of := range pass.AllObjectFacts() {
		f, ok := of.Fact.(*accessFact)
		if !ok || len(f.Atomic) == 0 || len(f.Plain) == 0 {
			continue
		}
		first := pass.Fset.Position(f.Atomic[0])
		for _, pos := range f.Plain {
			pass.Reportf(pos,
				"plain access to %s.%s, which is accessed atomically at %s; every access must go through sync/atomic",
				of.Object.Pkg().Name(), of.Object.Name(), first)
		}
	}
	return nil
}

// addrFieldSel unwraps &expr.field to the selector, or nil.
func addrFieldSel(e ast.Expr) *ast.SelectorExpr {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, _ := ast.Unparen(u.X).(*ast.SelectorExpr)
	return sel
}

// fieldObj returns the struct field a selector denotes, or nil for
// methods, package selectors, and qualified identifiers.
func fieldObj(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// atomicKind reports whether a plain access to a field of type t is
// even a candidate for the rule: only the integer/pointer kinds the
// sync/atomic functions operate on.
func atomicKind(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return t.Underlying().String() == "unsafe.Pointer"
	}
	switch b.Kind() {
	case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr:
		return true
	}
	return false
}

// calleeObj resolves the object a call's callee names.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}
