package atomicfield_test

import (
	"testing"

	"triadtime/internal/analysis/analysistest"
	"triadtime/internal/analysis/atomicfield"
)

func TestAtomicfield(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a testdata module; skipped in -short")
	}
	analysistest.Run(t, "testdata", atomicfield.Analyzer)
}
