module atomicdata

go 1.24
