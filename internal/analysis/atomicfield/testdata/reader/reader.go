// Package reader exercises the cross-package direction of the rule.
package reader

import (
	"sync/atomic"

	"atomicdata/state"
)

// Snapshot reads Served plainly while state.Bump adds to it
// atomically: the classic torn read.
func Snapshot(c *state.Counters) uint64 {
	return c.Served // want `plain access to state\.Served, which is accessed atomically`
}

// HoldCount accesses Held atomically; state.LeakHeld's plain read is
// what gets flagged.
func HoldCount(c *state.Counters) uint64 {
	return atomic.LoadUint64(&c.Held)
}

// DroppedCount keeps Dropped plain-only: no diagnostic on either side.
func DroppedCount(c *state.Counters) uint64 {
	return c.Dropped
}

// mixedLocal exercises the in-package case plus suppression.
type mixedLocal struct {
	n int64
}

func bumpLocal(m *mixedLocal) {
	atomic.AddInt64(&m.n, 1)
}

func readLocal(m *mixedLocal) int64 {
	return m.n // want `plain access to reader\.n, which is accessed atomically`
}

func readLocalSuppressed(m *mixedLocal) int64 {
	//triad:nolint:atomicfield read-only after all writers joined; no concurrent access
	return m.n
}
