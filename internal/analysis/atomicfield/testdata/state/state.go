// Package state declares shared counters; the analyzer's
// everywhere-or-nowhere rule is exercised across this package and its
// importer in both directions.
package state

import "sync/atomic"

// Counters is shared mutable state.
type Counters struct {
	Served  uint64 // atomic here, plain in the reader package: flagged there
	Dropped uint64 // plain everywhere: fine
	Held    uint64 // plain here, atomic in the reader package: flagged here
}

// Bump is the sanctioned accessor for Served.
func Bump(c *Counters) {
	atomic.AddUint64(&c.Served, 1)
}

// Drop touches Dropped plainly; nothing accesses it atomically, so no
// diagnostic.
func Drop(c *Counters) {
	c.Dropped++
}

// LeakHeld reads Held plainly; the reader package's atomic access
// makes this a race even though the atomic site is downstream.
func LeakHeld(c *Counters) uint64 {
	return c.Held // want `plain access to state\.Held, which is accessed atomically`
}
