// Package durable enforces the crash-consistency ordering persisted
// state must follow before anything serves from it (the torn-anchor
// bug class; see DESIGN.md §5 and the T-Lease fencing argument):
//
//	write temp file → file fsync → rename over final → directory fsync
//
// The analyzer fires on the rename-of-a-file-written-here pattern: any
// function that writes a file (os.Create / os.OpenFile / os.WriteFile)
// and later os.Rename's that same path is persistence code and owes
// both barriers. Two diagnostics cover the two torn states a crash can
// leave behind:
//
//   - rename without a prior Sync on the written file: the rename can
//     land while the data blocks are still dirty, publishing a name
//     that points at garbage;
//   - rename with no directory sync after it: the data is durable but
//     the name is not, so a crash resurrects the previous anchor.
//
// Written files are matched to rename sources by canonical path
// expression (value-flow substitution), so the usual `tmp := path +
// ".tmp"` indirection resolves. Renames of paths not written in the
// same function are ignored — the analyzer proves ordering within a
// function, not cross-function protocols.
package durable

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"triadtime/internal/analysis"
	"triadtime/internal/analysis/flow"
)

// Analyzer is the durable analysis.
var Analyzer = &analysis.Analyzer{
	Name: "durable",
	Doc: "enforces write→fsync→rename→dir-sync ordering on persisted " +
		"files (flags renames of unsynced writes and renames with no " +
		"directory sync after them)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// writeState tracks one path written in the function.
type writeState struct {
	synced   bool
	syncable bool // false for os.WriteFile: no handle, nothing to Sync
}

// pendingRename is a rename awaiting a directory sync.
type pendingRename struct {
	pos  token.Pos
	from string
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	fl := flow.New(pass.TypesInfo, fn)
	// handles maps an open file variable to the canonical path it was
	// opened with; writes tracks sync status per canonical path.
	handles := map[*types.Var]string{}
	dirHandle := map[*types.Var]bool{}
	writes := map[string]*writeState{}
	var renames []*pendingRename

	// ast.Inspect visits in source order, which stands in for execution
	// order here — good enough for the straight-line open/sync/rename
	// sequences persistence code is written as.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			recordOpens(pass, fl, n, handles, dirHandle, writes)
		case *ast.CallExpr:
			obj := calleeObj(pass.TypesInfo, n)
			f, ok := obj.(*types.Func)
			if !ok {
				return true
			}
			switch {
			case isOSFunc(f, "WriteFile") && len(n.Args) >= 1:
				writes[fl.Canon(n.Args[0])] = &writeState{syncable: false}
			case isOSFunc(f, "Rename") && len(n.Args) >= 2:
				from := fl.Canon(n.Args[0])
				w, wrote := writes[from]
				if !wrote {
					return true // not written here; out of scope
				}
				if !w.synced {
					if w.syncable {
						pass.Reportf(n.Pos(),
							"rename of %s before its file handle is Synced; a crash can publish the name over unsynced data (write→fsync→rename→dir-sync)",
							from)
					} else {
						pass.Reportf(n.Pos(),
							"rename of %s written with os.WriteFile, which cannot fsync; open+Write+Sync the temp file before renaming (write→fsync→rename→dir-sync)",
							from)
					}
				}
				renames = append(renames, &pendingRename{pos: n.Pos(), from: from})
			case f.Name() == "Sync":
				v := recvVar(pass.TypesInfo, n)
				if v == nil {
					return true
				}
				if path, ok := handles[v]; ok {
					if w := writes[path]; w != nil {
						w.synced = true
					}
				}
				if dirHandle[v] {
					// A directory sync covers every rename before it.
					for _, r := range renames {
						if r.pos < n.Pos() {
							r.pos = token.NoPos
						}
					}
				}
			}
		}
		return true
	})

	for _, r := range renames {
		if r.pos.IsValid() {
			pass.Reportf(r.pos,
				"rename of %s is not followed by a directory sync; a crash can resurrect the previous file (write→fsync→rename→dir-sync)",
				r.from)
		}
	}
}

// recordOpens handles `f, err := os.Create(path)` / os.OpenFile /
// os.Open assignments. Create/OpenFile handles are writable files;
// os.Open handles whose path is a Dir(...) expression are directory
// handles for the dir-sync barrier.
func recordOpens(pass *analysis.Pass, fl *flow.Func, s *ast.AssignStmt, handles map[*types.Var]string, dirHandle map[*types.Var]bool, writes map[string]*writeState) {
	if len(s.Rhs) != 1 || len(s.Lhs) == 0 {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	f, ok := calleeObj(pass.TypesInfo, call).(*types.Func)
	if !ok {
		return
	}
	v := lhsVar(pass.TypesInfo, s.Lhs[0])
	if v == nil {
		return
	}
	path := fl.Canon(call.Args[0])
	switch {
	case isOSFunc(f, "Create"), isOSFunc(f, "OpenFile"):
		handles[v] = path
		writes[path] = &writeState{syncable: true}
	case isOSFunc(f, "Open"):
		// Only a handle on the *directory* satisfies the dir-sync
		// barrier; recognize the filepath.Dir(...) / path.Dir(...)
		// shape the idiom is written with.
		if strings.Contains(path, "Dir(") {
			dirHandle[v] = true
		}
	}
}

func isOSFunc(f *types.Func, name string) bool {
	return f.Pkg() != nil && f.Pkg().Path() == "os" && f.Name() == name
}

// recvVar returns the variable a method call's receiver names (f in
// f.Sync()), or nil for anything more elaborate.
func recvVar(info *types.Info, call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

func lhsVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	var obj types.Object
	if d, ok := info.Defs[id]; ok {
		obj = d
	} else {
		obj = info.Uses[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// calleeObj resolves the object a call's callee names.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}
