package durable_test

import (
	"testing"

	"triadtime/internal/analysis/analysistest"
	"triadtime/internal/analysis/durable"
)

func TestDurable(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a testdata module; skipped in -short")
	}
	analysistest.Run(t, "testdata", durable.Analyzer)
}
