module durabledata

go 1.24
