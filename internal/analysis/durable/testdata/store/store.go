package store

import (
	"os"
	"path/filepath"
)

// saveGood is the sanctioned sequence: write temp, fsync the file,
// rename over the final name, fsync the directory.
func saveGood(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer dir.Close()
	return dir.Sync()
}

// saveNoFsync renames a file whose handle was never synced: a crash
// can publish the name over dirty data blocks.
func saveNoFsync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil { // want `rename of .* before its file handle is Synced` `not followed by a directory sync`
		return err
	}
	return nil
}

// saveWriteFile uses os.WriteFile, which has no handle to fsync at
// all, then renames; both barriers are missing.
func saveWriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o600); err != nil {
		return err
	}
	return os.Rename(tmp, path) // want `written with os.WriteFile, which cannot fsync` `not followed by a directory sync`
}

// saveReordered syncs the file only after the rename: the barrier is
// on the wrong side and the published name can still point at garbage.
func saveReordered(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := os.Rename(tmp, path); err != nil { // want `rename of .* before its file handle is Synced`
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer dir.Close()
	return dir.Sync()
}

// saveNoDirSync fsyncs the file but never the directory, so a crash
// after the rename can resurrect the previous file.
func saveNoDirSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path) // want `not followed by a directory sync`
}

// renameForeign renames a path this function never wrote: out of the
// analyzer's scope, no diagnostic.
func renameForeign(from, to string) error {
	return os.Rename(from, to)
}

// suppressedCache pins the nolint path: a disposable cache entry may
// skip durability on purpose, with the reason written down.
func suppressedCache(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o600); err != nil {
		return err
	}
	//triad:nolint:durable cache entries are disposable; rename is for reader atomicity only
	return os.Rename(tmp, path)
}
