// Package fencecmp proves the monotonicity of epoch and high-water
// mark updates: the T-Lease-style fencing in internal/commit and the
// serving clamp in internal/engine are only safe while fields like
// anchorState.Epoch and lastNanos never move backwards. A field is
// opted in with a directive on (or above) its declaration:
//
//	LastNanos int64 //triad:monotonic reason...
//
// The directive exports a fact on the field object, so stores in
// dependent packages are checked too. Every store to a monotonic
// field must then be provably non-decreasing, which the analyzer
// accepts in the shapes the tree actually uses:
//
//   - F++ / F += c and F = F + c for constant c >= 0;
//   - F = R guarded by a dominating comparison R > F / R >= F (or the
//     equivalent under else-branch negation, early-return inversion,
//     or the subtraction form `if R - F > 0`), including R+c for
//     constant c >= 0 on top of a guarded R;
//   - the clamp idiom: `if R <= F { R = F + 1 }; F = R`;
//   - F = G where G is itself a monotonic field, and F = max(..., F, ...).
//
// Everything else is flagged — that includes the `<` vs `<=`
// inversions that accept an older value, plain unguarded stores, and
// F-- outright. Separately, narrowing integer conversions of values
// read from monotonic fields are flagged: truncating a high-water
// mark re-introduces the wraparound the fencing comparison exists to
// prevent.
package fencecmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"triadtime/internal/analysis"
	"triadtime/internal/analysis/flow"
)

// Analyzer is the fencecmp analysis.
var Analyzer = &analysis.Analyzer{
	Name: "fencecmp",
	Doc: "proves stores to //triad:monotonic fields never move the value " +
		"backwards (guarded comparisons, clamps, +const) and flags " +
		"narrowing conversions of monotonic values",
	Run: run,
}

// directive is the field annotation prefix.
const directive = "//triad:monotonic"

// monotonicFact marks an annotated field.
type monotonicFact struct{}

func (*monotonicFact) AFact() {}

func run(pass *analysis.Pass) error {
	collectAnnotations(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// collectAnnotations exports a fact for every struct field with a
// //triad:monotonic directive on its own line or the line above.
func collectAnnotations(pass *analysis.Pass) {
	for _, file := range pass.Files {
		lines := map[int]bool{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, directive) {
					lines[pass.Fset.Position(c.Slash).Line] = true
				}
			}
		}
		if len(lines) == 0 {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			// A directive trailing field A must not also annotate the
			// field on the next line, so the line-above rule only applies
			// when no field sits on the directive's own line.
			fieldLines := map[int]bool{}
			for _, field := range st.Fields.List {
				fieldLines[pass.Fset.Position(field.Pos()).Line] = true
			}
			for _, field := range st.Fields.List {
				ln := pass.Fset.Position(field.Pos()).Line
				if !lines[ln] && !(lines[ln-1] && !fieldLines[ln-1]) {
					continue
				}
				for _, name := range field.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						pass.ExportObjectFact(obj, &monotonicFact{})
					}
				}
			}
			return true
		})
	}
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	fl := flow.New(pass.TypesInfo, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, fl, n)
		case *ast.IncDecStmt:
			sel, field := monotonicLHS(pass, n.X)
			if field != nil && n.Tok == token.DEC {
				pass.Reportf(n.Pos(), "decrement of monotonic field %s", types.ExprString(sel))
			}
		case *ast.CallExpr:
			checkConversion(pass, fl, n)
		}
		return true
	})
}

// checkAssign verifies every store to a monotonic field in one
// assignment statement.
func checkAssign(pass *analysis.Pass, fl *flow.Func, s *ast.AssignStmt) {
	for i, lhs := range s.Lhs {
		sel, field := monotonicLHS(pass, lhs)
		if field == nil {
			continue
		}
		fCanon := fl.Canon(sel)
		// Diagnostics name the field as written in the source; fCanon
		// (which resolves aliases) is only for internal matching.
		label := types.ExprString(sel)
		// Compound ops: += with a non-negative constant is monotone.
		if s.Tok != token.ASSIGN {
			if s.Tok == token.ADD_ASSIGN && len(s.Rhs) == len(s.Lhs) {
				if c, ok := fl.ConstInt(s.Rhs[i]); ok && c >= 0 {
					continue
				}
			}
			pass.Reportf(s.Pos(), "store to monotonic field %s is not provably monotonic (compound %s)", label, s.Tok)
			continue
		}
		if len(s.Rhs) != len(s.Lhs) {
			pass.Reportf(s.Pos(), "store to monotonic field %s from a multi-value expression cannot be proven monotonic", label)
			continue
		}
		if !monotoneStore(pass, fl, s, sel, s.Rhs[i], fCanon) {
			pass.Reportf(s.Pos(),
				"store to monotonic field %s is not provably monotonic; guard it with a greater-than comparison against the current value",
				label)
		}
	}
}

// monotoneStore reports whether RHS provably does not move the field
// backwards at this store.
func monotoneStore(pass *analysis.Pass, fl *flow.Func, at ast.Node, sel *ast.SelectorExpr, rhs ast.Expr, fCanon string) bool {
	base, off := splitOffset(fl, rhs)
	if off < 0 {
		return false
	}
	bCanon := fl.Canon(base)
	// F = F + c.
	if bCanon == fCanon {
		return true
	}
	// F = G for another monotonic field.
	if _, g := monotonicLHS(pass, base); g != nil {
		return true
	}
	// F = max(..., F, ...).
	if call, ok := fl.Resolve(base).(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "max" {
			for _, a := range call.Args {
				if fl.Canon(a) == fCanon {
					return true
				}
			}
		}
	}
	// Guarded store: a dominating condition implies base >= F.
	for _, g := range guardsFor(fl, at) {
		if ensures(fl, g.cond, g.negated, bCanon, fCanon) {
			return true
		}
	}
	// Early-exit and clamp statements preceding the store.
	return precedingOK(pass, fl, at, base, bCanon, fCanon)
}

// splitOffset decomposes rhs into base + constant offset (offset 0
// when rhs is not an addition with a constant side).
func splitOffset(fl *flow.Func, rhs ast.Expr) (ast.Expr, int64) {
	if be, ok := fl.Resolve(rhs).(*ast.BinaryExpr); ok && be.Op == token.ADD {
		if c, ok := fl.ConstInt(be.Y); ok {
			return be.X, c
		}
		if c, ok := fl.ConstInt(be.X); ok {
			return be.Y, c
		}
	}
	return rhs, 0
}

// guard is one condition known to hold at the store site.
type guard struct {
	cond    ast.Expr
	negated bool
}

// guardsFor walks the parent chain and collects the if-conditions
// dominating n, with else-branch polarity.
func guardsFor(fl *flow.Func, n ast.Node) []guard {
	var out []guard
	child := n
	for p := fl.Parent(child); p != nil; p = fl.Parent(p) {
		if ifs, ok := p.(*ast.IfStmt); ok {
			switch child {
			case ast.Node(ifs.Body):
				out = append(out, guard{ifs.Cond, false})
			case ifs.Else:
				out = append(out, guard{ifs.Cond, true})
			}
		}
		child = p
	}
	return out
}

// precedingOK scans statements before the store (at every enclosing
// block level) for the two sequential idioms: an early-exit if whose
// negated condition implies base >= F, and the clamp
// `if base <= F { base = F + c }` with c > 0.
func precedingOK(pass *analysis.Pass, fl *flow.Func, at ast.Node, base ast.Expr, bCanon, fCanon string) bool {
	child := at
	for p := fl.Parent(child); p != nil; p = fl.Parent(p) {
		block, ok := p.(*ast.BlockStmt)
		if ok {
			for _, stmt := range block.List {
				if stmt == child {
					break
				}
				ifs, ok := stmt.(*ast.IfStmt)
				if !ok {
					continue
				}
				if terminates(ifs.Body) && ensures(fl, ifs.Cond, true, bCanon, fCanon) {
					return true
				}
				if clampOK(fl, ifs, bCanon, fCanon) {
					return true
				}
			}
		}
		child = p
	}
	return false
}

// terminates reports whether a block always leaves the enclosing flow
// (return, branch, or panic as its last statement).
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}

// clampOK matches `if base <= F { base = F + c }` (c > 0): after the
// statement, base > F holds on every path.
func clampOK(fl *flow.Func, ifs *ast.IfStmt, bCanon, fCanon string) bool {
	// Condition must imply F >= base (roles swapped vs ensures' usual
	// order).
	if !ensures(fl, ifs.Cond, false, fCanon, bCanon) {
		return false
	}
	for _, stmt := range ifs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			continue
		}
		if fl.Canon(as.Lhs[0]) != bCanon {
			continue
		}
		nb, c := splitOffset(fl, as.Rhs[0])
		if c > 0 && fl.Canon(nb) == fCanon {
			return true
		}
	}
	return false
}

// ensures reports whether cond (negated if asked) implies a >= f,
// where a and f are canonical expression keys. Handles direct
// comparisons both ways around, &&/||/! composition, and the
// subtraction form (a - f) > 0.
func ensures(fl *flow.Func, cond ast.Expr, negated bool, aCanon, fCanon string) bool {
	cond = ast.Unparen(cond)
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		return ensures(fl, u.X, !negated, aCanon, fCanon)
	}
	be, ok := fl.Resolve(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.LAND:
		// a && b holds: either conjunct may carry the proof. Negated
		// (!(a && b)) proves nothing usable.
		return !negated &&
			(ensures(fl, be.X, false, aCanon, fCanon) || ensures(fl, be.Y, false, aCanon, fCanon))
	case token.LOR:
		// !(a || b) = !a && !b.
		return negated &&
			(ensures(fl, be.X, true, aCanon, fCanon) || ensures(fl, be.Y, true, aCanon, fCanon))
	}
	op := be.Op
	if negated {
		op = negateCmp(op)
	}
	switch op {
	case token.GTR, token.GEQ:
		if cmpMatch(fl, be.X, aCanon) && cmpMatch(fl, be.Y, fCanon) {
			return true
		}
		// (a - f) > 0 and (a - f) >= 0.
		if c, ok := fl.ConstInt(be.Y); ok && c == 0 {
			if sub, ok := fl.Resolve(be.X).(*ast.BinaryExpr); ok && sub.Op == token.SUB {
				return cmpMatch(fl, sub.X, aCanon) && cmpMatch(fl, sub.Y, fCanon)
			}
		}
	case token.LSS, token.LEQ:
		if cmpMatch(fl, be.X, fCanon) && cmpMatch(fl, be.Y, aCanon) {
			return true
		}
		// 0 < (a - f).
		if c, ok := fl.ConstInt(be.X); ok && c == 0 {
			if sub, ok := fl.Resolve(be.Y).(*ast.BinaryExpr); ok && sub.Op == token.SUB {
				return cmpMatch(fl, sub.X, aCanon) && cmpMatch(fl, sub.Y, fCanon)
			}
		}
	}
	return false
}

func cmpMatch(fl *flow.Func, e ast.Expr, canon string) bool {
	return fl.Canon(e) == canon
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	}
	return token.ILLEGAL
}

// checkConversion flags narrowing integer conversions of values read
// from monotonic fields.
func checkConversion(pass *analysis.Pass, fl *flow.Func, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst := intBits(tv.Type)
	src := intBits(pass.TypesInfo.TypeOf(call.Args[0]))
	if dst == 0 || src == 0 || dst >= src {
		return
	}
	for obj := range fl.Mentions(call.Args[0]) {
		v, ok := obj.(*types.Var)
		if !ok || !v.IsField() || !pass.HasObjectFact(v, &monotonicFact{}) {
			continue
		}
		pass.Reportf(call.Pos(),
			"narrowing conversion of monotonic field %s to %s can wrap and break fencing comparisons",
			v.Name(), tv.Type)
		return
	}
}

// intBits returns the width of an integer type (Int/Uint/Uintptr count
// as 64, matching the deployment targets), or 0 for non-integers.
func intBits(t types.Type) int {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 0
	}
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	case types.Int64, types.Uint64, types.Int, types.Uint, types.Uintptr:
		return 64
	}
	return 0
}

// monotonicLHS returns the selector and field object when e stores to
// a monotonic field; (nil, nil) otherwise.
func monotonicLHS(pass *analysis.Pass, e ast.Expr) (*ast.SelectorExpr, *types.Var) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !pass.HasObjectFact(v, &monotonicFact{}) {
		return nil, nil
	}
	return sel, v
}
