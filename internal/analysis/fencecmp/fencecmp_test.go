package fencecmp_test

import (
	"testing"

	"triadtime/internal/analysis/analysistest"
	"triadtime/internal/analysis/fencecmp"
)

func TestFencecmp(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a testdata module; skipped in -short")
	}
	analysistest.Run(t, "testdata", fencecmp.Analyzer)
}
