// Package anchor declares the fenced state; the //triad:monotonic
// directives export facts checked here and in importing packages.
package anchor

// State is a miniature of the repo's anchorState.
type State struct {
	Epoch     uint64 //triad:monotonic fencing epoch; forged tokens from earlier epochs must stay invalid
	LastNanos int64  //triad:monotonic high-water mark of served timestamps
	Free      int64  // unannotated: stores are unchecked
}

// Mirror holds a second monotonic field fed from State.
type Mirror struct {
	//triad:monotonic persisted image of State.LastNanos
	HighWater int64
}

// guarded is the canonical accepted update.
func guarded(s *State, now int64) {
	if now > s.LastNanos {
		s.LastNanos = now
	}
}

// guardedEq allows equality: non-decreasing is enough.
func guardedEq(s *State, now int64) {
	if now >= s.LastNanos {
		s.LastNanos = now
	}
}

// elseNegation stores under the negation of the inverted comparison.
func elseNegation(s *State, now int64) {
	if now <= s.LastNanos {
		_ = now
	} else {
		s.LastNanos = now
	}
}

// earlyReturn proves the guard by leaving first.
func earlyReturn(s *State, now int64) {
	if now <= s.LastNanos {
		return
	}
	s.LastNanos = now
}

// subtractionGuard is the serve-path idiom with an if-init local.
func subtractionGuard(s *State, now int64) {
	if d := now - s.LastNanos; d > 0 {
		s.LastNanos = now
	}
}

// clamp is the engine idiom: force strictly-greater, then store.
func clamp(s *State, now int64) int64 {
	ts := now
	if ts <= s.LastNanos {
		ts = s.LastNanos + 1
	}
	s.LastNanos = ts
	return ts
}

// increments of all accepted shapes.
func increments(s *State, t uint64) {
	s.Epoch++
	s.Epoch += 2
	if t > s.Epoch {
		s.Epoch = t + 1
	}
	s.LastNanos = max(s.LastNanos, 7)
}

// mirror feeds one monotonic field from another.
func mirror(s *State, m *Mirror) {
	m.HighWater = s.LastNanos
}

// freeStore is unannotated and unchecked.
func freeStore(s *State, now int64) {
	s.Free = now
}

// plainStore is the basic violation: nothing relates now to the
// current value.
func plainStore(s *State, now int64) {
	s.LastNanos = now // want `store to monotonic field s\.LastNanos is not provably monotonic`
}

// inverted takes the *older* value: the < vs > inversion.
func inverted(s *State, now int64) {
	if now < s.LastNanos {
		s.LastNanos = now // want `not provably monotonic`
	}
}

// elseOfCorrectGuard stores on the branch where now <= LastNanos.
func elseOfCorrectGuard(s *State, now int64) {
	if now > s.LastNanos {
		_ = now
	} else {
		s.LastNanos = now // want `not provably monotonic`
	}
}

// decrement and regressing arithmetic.
func decrement(s *State) {
	s.Epoch--                     // want `decrement of monotonic field s\.Epoch`
	s.LastNanos -= 1              // want `not provably monotonic \(compound -=\)`
	s.LastNanos = s.LastNanos - 1 // want `not provably monotonic`
}

// narrow truncates the epoch: wraps every 2^32 fences.
func narrow(s *State) uint32 {
	return uint32(s.Epoch) // want `narrowing conversion of monotonic field Epoch to uint32`
}

// narrowViaLocal resolves the alias before flagging.
func narrowViaLocal(s *State) int32 {
	hw := s.LastNanos
	return int32(hw) // want `narrowing conversion of monotonic field LastNanos to int32`
}

// widen (same width or larger) is fine.
func widen(s *State) uint64 {
	return uint64(s.LastNanos)
}

// suppressed pins the nolint path.
func suppressed(s *State, now int64) {
	//triad:nolint:fencecmp recovery path rewinds deliberately after operator attestation
	s.LastNanos = now
}
