module fencedata

go 1.24
