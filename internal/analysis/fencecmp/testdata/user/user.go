// Package user stores to anchor's fenced fields from a dependent
// package: the monotonic facts must cross the import edge.
package user

import "fencedata/anchor"

// Advance is the sanctioned cross-package update.
func Advance(s *anchor.State, now int64) {
	if now > s.LastNanos {
		s.LastNanos = now
	}
}

// Stomp is the cross-package violation.
func Stomp(s *anchor.State, now int64) {
	s.LastNanos = now // want `store to monotonic field s\.LastNanos is not provably monotonic`
}
