// Package flow is the suite's lightweight intra-procedural value-flow
// helper: def-use chains over go/ast + go/types, with no SSA
// dependency. It answers the three questions the dataflow analyzers
// keep asking about an expression inside one function body:
//
//   - what does this expression *mean* — Resolve/Canon substitute
//     single-assignment locals with their defining expressions and fold
//     constants, so `idents`, `srv.Shards()+len(dconns)` and a literal
//     all reduce to comparable symbolic keys;
//   - what does it *depend on* — Mentions collects the objects a
//     resolved expression reads, which is how noncepart decides whether
//     a sealer identity varies with a loop variable;
//   - where does it *sit* — Parent gives the enclosing-node chain, which
//     is how fencecmp finds the guard dominating a store.
//
// The analysis is deliberately conservative: a local that is assigned
// more than once, assigned from a multi-value expression, mutated by
// ++/--/op=, bound by a range clause, or address-taken is "poisoned"
// and resolves to itself. Wrong answers are impossible; incomplete ones
// merely make an analyzer quieter, never noisier about correct code.
package flow

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// maxDepth bounds resolution so pathological chains cannot recurse
// unboundedly (shadowing chains are finite but cheap insurance).
const maxDepth = 32

// Func is the value-flow view of one function body.
type Func struct {
	info    *types.Info
	defs    map[*types.Var]ast.Expr // sole defining expression
	poison  map[*types.Var]bool     // multiply-assigned / mutated / escaped
	loopVar map[*types.Var]bool     // range keys/values, for-init variables
	parents map[ast.Node]ast.Node
	body    *ast.BlockStmt
}

// New builds the value-flow view for a function declaration or
// literal. fn must be an *ast.FuncDecl or *ast.FuncLit with a body;
// any other node yields an empty (but usable) view.
func New(info *types.Info, fn ast.Node) *Func {
	f := &Func{
		info:    info,
		defs:    map[*types.Var]ast.Expr{},
		poison:  map[*types.Var]bool{},
		loopVar: map[*types.Var]bool{},
		parents: map[ast.Node]ast.Node{},
	}
	switch n := fn.(type) {
	case *ast.FuncDecl:
		f.body = n.Body
	case *ast.FuncLit:
		f.body = n.Body
	}
	if f.body == nil {
		return f
	}
	f.collect()
	return f
}

// Body returns the function body the view was built over.
func (f *Func) Body() *ast.BlockStmt { return f.body }

// collect records definitions, poisons, loop variables, and the parent
// chain in one walk. Function literals are walked too: they share the
// enclosing scope, so their assignments must poison captured locals.
func (f *Func) collect() {
	var stack []ast.Node
	ast.Inspect(f.body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			f.parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)

		switch s := n.(type) {
		case *ast.AssignStmt:
			f.collectAssign(s)
		case *ast.IncDecStmt:
			f.poisonExpr(s.X)
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{s.Key, s.Value} {
				f.poisonExpr(e)
				if v := f.varOf(e); v != nil {
					f.loopVar[v] = true
				}
			}
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					if v := f.varOf(lhs); v != nil {
						f.loopVar[v] = true
					}
				}
			}
		case *ast.UnaryExpr:
			// Address-taken locals can be mutated through the pointer;
			// their recorded definition is no longer the whole story.
			if s.Op == token.AND {
				f.poisonExpr(s.X)
			}
		}
		return true
	})
}

func (f *Func) collectAssign(s *ast.AssignStmt) {
	if s.Tok != token.DEFINE && s.Tok != token.ASSIGN {
		// Compound assignment (+=, |=, ...): the variable's value now
		// depends on its own history.
		for _, lhs := range s.Lhs {
			f.poisonExpr(lhs)
		}
		return
	}
	if len(s.Lhs) != len(s.Rhs) {
		// Multi-value unpacking: no single defining expression per name.
		for _, lhs := range s.Lhs {
			f.poisonExpr(lhs)
		}
		return
	}
	for i, lhs := range s.Lhs {
		v := f.varOf(lhs)
		if v == nil {
			continue
		}
		if _, dup := f.defs[v]; dup || f.poison[v] {
			f.poison[v] = true
			delete(f.defs, v)
			continue
		}
		f.defs[v] = s.Rhs[i]
	}
}

// poisonExpr marks the variable behind an lvalue expression (if it is
// a plain local identifier) as unresolvable.
func (f *Func) poisonExpr(e ast.Expr) {
	if v := f.varOf(e); v != nil {
		f.poison[v] = true
		delete(f.defs, v)
	}
}

// varOf returns the local *types.Var an identifier expression names,
// or nil for anything else (selectors, indexes, blank, globals).
func (f *Func) varOf(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	var obj types.Object
	if d, ok := f.info.Defs[id]; ok {
		obj = d
	} else {
		obj = f.info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	return v
}

// Parent returns the AST node enclosing n within the function body,
// or nil at (or outside) the body root.
func (f *Func) Parent(n ast.Node) ast.Node { return f.parents[n] }

// Resolve returns e's sole defining expression when e is a
// single-assignment, unpoisoned local — recursively, so a chain of
// aliases reduces to its source. Anything else returns unchanged.
func (f *Func) Resolve(e ast.Expr) ast.Expr {
	for depth := 0; depth < maxDepth; depth++ {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		v := f.varOf(e)
		if v == nil || f.poison[v] || f.loopVar[v] {
			return e
		}
		def, ok := f.defs[v]
		if !ok {
			return e // parameter, global, or closure-captured
		}
		e = def
	}
	return e
}

// Const returns e's constant value when one is derivable: either the
// type checker recorded one, or e reduces to arithmetic over such
// values after single-assignment locals are substituted (go/types only
// folds spec-constant expressions; `base := 8; base + 2` is a variable
// expression to it, but a known 10 to this helper).
func (f *Func) Const(e ast.Expr) (constant.Value, bool) {
	v := f.constVal(e, 0)
	return v, v != nil
}

func (f *Func) constVal(e ast.Expr, depth int) (v constant.Value) {
	if e == nil || depth > maxDepth {
		return nil
	}
	if tv, ok := f.info.Types[e]; ok && tv.Value != nil {
		return tv.Value
	}
	if r := f.Resolve(e); r != e {
		return f.constVal(r, depth+1)
	}
	// constant.BinaryOp/UnaryOp panic on operand mismatches (e.g. a
	// shift count that is not an unsigned); treat any such case as
	// simply not constant.
	defer func() {
		if recover() != nil {
			v = nil
		}
	}()
	switch e := e.(type) {
	case *ast.ParenExpr:
		return f.constVal(e.X, depth+1)
	case *ast.BinaryExpr:
		x := f.constVal(e.X, depth+1)
		y := f.constVal(e.Y, depth+1)
		if x == nil || y == nil {
			return nil
		}
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.AND, token.OR, token.XOR, token.AND_NOT:
			return constant.BinaryOp(x, e.Op, y)
		case token.SHL, token.SHR:
			n, ok := constant.Uint64Val(y)
			if !ok {
				return nil
			}
			return constant.Shift(x, e.Op, uint(n))
		}
	case *ast.UnaryExpr:
		x := f.constVal(e.X, depth+1)
		if x == nil {
			return nil
		}
		switch e.Op {
		case token.SUB, token.ADD, token.XOR:
			return constant.UnaryOp(e.Op, x, 0)
		}
	}
	return nil
}

// ConstInt is Const narrowed to integer expressions.
func (f *Func) ConstInt(e ast.Expr) (int64, bool) {
	v, ok := f.Const(e)
	if !ok || v.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(v)
}

// Canon renders e as a stable symbolic key: single-assignment locals
// are replaced by their definitions, constants fold to their exact
// value, and everything else prints structurally. Two expressions with
// equal Canon strings are guaranteed to evaluate equal values whenever
// the non-local names they mention are equal — which is exactly the
// comparison the analyzers need ("are these two sealer identities the
// same expression?", "is the guard comparing against the stored
// value?").
func (f *Func) Canon(e ast.Expr) string {
	return f.canon(e, 0)
}

func (f *Func) canon(e ast.Expr, depth int) string {
	if depth > maxDepth {
		return "<deep>"
	}
	if v, ok := f.Const(e); ok {
		return v.ExactString()
	}
	e = f.Resolve(e)
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.ParenExpr:
		return f.canon(e.X, depth+1)
	case *ast.SelectorExpr:
		return f.canon(e.X, depth+1) + "." + e.Sel.Name
	case *ast.BinaryExpr:
		return "(" + f.canon(e.X, depth+1) + e.Op.String() + f.canon(e.Y, depth+1) + ")"
	case *ast.UnaryExpr:
		return e.Op.String() + f.canon(e.X, depth+1)
	case *ast.StarExpr:
		return "*" + f.canon(e.X, depth+1)
	case *ast.IndexExpr:
		return f.canon(e.X, depth+1) + "[" + f.canon(e.Index, depth+1) + "]"
	case *ast.CallExpr:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = f.canon(a, depth+1)
		}
		return f.canon(e.Fun, depth+1) + "(" + strings.Join(parts, ",") + ")"
	case *ast.BasicLit:
		return e.Value
	default:
		return fmt.Sprintf("<%T@%d>", e, e.Pos())
	}
}

// Mentions collects every object a resolved expression reads: the
// leaves of e after alias substitution. A sealer identity whose
// Mentions include a loop variable varies per iteration; one whose
// Mentions are all loop-invariant does not.
func (f *Func) Mentions(e ast.Expr) map[types.Object]bool {
	out := map[types.Object]bool{}
	f.mentions(e, out, 0)
	return out
}

func (f *Func) mentions(e ast.Expr, out map[types.Object]bool, depth int) {
	if e == nil || depth > maxDepth {
		return
	}
	e = f.Resolve(e)
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := f.info.Uses[id]
		if obj == nil {
			return true
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			if def, has := f.defs[v]; has && !f.poison[v] && !f.loopVar[v] {
				// An alias: recurse into what it stands for instead of
				// reporting the alias itself.
				f.mentions(def, out, depth+1)
				return true
			}
		}
		out[obj] = true
		return true
	})
}

// LoopVarsEnclosing returns the iteration variables of every for/range
// statement enclosing n (inside the function body). An expression that
// Mentions one of them takes a different value on each pass over n.
func (f *Func) LoopVarsEnclosing(n ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	for p := f.parents[n]; p != nil; p = f.parents[p] {
		switch s := p.(type) {
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if v := f.varOf(e); v != nil {
					out[v] = true
				}
			}
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					if v := f.varOf(lhs); v != nil {
						out[v] = true
					}
				}
			}
		}
	}
	return out
}

// LoopsEnclosing returns the for/range statements enclosing n,
// innermost first. An object *declared* within one of these spans can
// take a different value on every pass over n even if it is not the
// iteration variable itself (a per-iteration local).
func (f *Func) LoopsEnclosing(n ast.Node) []ast.Node {
	var out []ast.Node
	for p := f.parents[n]; p != nil; p = f.parents[p] {
		switch p.(type) {
		case *ast.RangeStmt, *ast.ForStmt:
			out = append(out, p)
		}
	}
	return out
}

// InsideLoop reports whether n sits inside any for/range statement of
// the function body.
func (f *Func) InsideLoop(n ast.Node) bool {
	for p := f.parents[n]; p != nil; p = f.parents[p] {
		switch p.(type) {
		case *ast.RangeStmt, *ast.ForStmt:
			return true
		}
	}
	return false
}
