package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseFunc type-checks src (a full file) and returns the value-flow
// view of the function named name plus the tools to inspect it.
func parseFunc(t *testing.T, src, name string) (*Func, *ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "flowtest.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("flowtest", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("type-check: %v", err)
	}
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Name.Name != name {
			continue
		}
		return New(info, fd), fd, info
	}
	t.Fatalf("no function %q in source", name)
	return nil, nil, nil
}

// firstCall returns the first call expression in the body whose callee
// renders (syntactically) as fun.
func firstCall(t *testing.T, fd *ast.FuncDecl, fun string) *ast.CallExpr {
	t.Helper()
	var out *ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if ok && types.ExprString(call.Fun) == fun {
			out = call
		}
		return true
	})
	if out == nil {
		t.Fatalf("no call to %s", fun)
	}
	return out
}

func TestResolveSingleAssignment(t *testing.T) {
	f, fd, _ := parseFunc(t, `package p
func sink(int)
func g(base int) {
	n := base + 4
	m := n
	sink(m)
}`, "g")
	arg := firstCall(t, fd, "sink").Args[0]
	got := types.ExprString(f.Resolve(arg))
	if got != "base + 4" {
		t.Fatalf("Resolve(m) = %q, want %q", got, "base + 4")
	}
}

func TestResolveStopsAtReassignment(t *testing.T) {
	f, fd, _ := parseFunc(t, `package p
func sink(int)
func g() {
	n := 1
	n = 2
	sink(n)
}`, "g")
	arg := firstCall(t, fd, "sink").Args[0]
	if got := types.ExprString(f.Resolve(arg)); got != "n" {
		t.Fatalf("Resolve(reassigned n) = %q, want n", got)
	}
}

func TestResolveStopsAtAddressTaken(t *testing.T) {
	f, fd, _ := parseFunc(t, `package p
func sink(int)
func mut(*int)
func g() {
	n := 1
	mut(&n)
	sink(n)
}`, "g")
	arg := firstCall(t, fd, "sink").Args[0]
	if got := types.ExprString(f.Resolve(arg)); got != "n" {
		t.Fatalf("Resolve(address-taken n) = %q, want n", got)
	}
}

func TestResolveStopsAtCompoundAssign(t *testing.T) {
	f, fd, _ := parseFunc(t, `package p
func sink(int)
func g() {
	n := 1
	n += 2
	sink(n)
}`, "g")
	arg := firstCall(t, fd, "sink").Args[0]
	if got := types.ExprString(f.Resolve(arg)); got != "n" {
		t.Fatalf("Resolve(compound-assigned n) = %q, want n", got)
	}
}

func TestConstFolding(t *testing.T) {
	f, fd, _ := parseFunc(t, `package p
func sink(int)
func g() {
	base := 8
	id := base + 2
	sink(id)
}`, "g")
	arg := firstCall(t, fd, "sink").Args[0]
	n, ok := f.ConstInt(arg)
	if !ok || n != 10 {
		t.Fatalf("ConstInt(id) = %d,%v, want 10,true", n, ok)
	}
}

func TestCanonEquivalentExpressions(t *testing.T) {
	f, fd, _ := parseFunc(t, `package p
func sink(int, int)
func g(base int, k int) {
	a := base + k
	tmp := k
	b := base + tmp
	sink(a, b)
}`, "g")
	call := firstCall(t, fd, "sink")
	ca, cb := f.Canon(call.Args[0]), f.Canon(call.Args[1])
	if ca != cb {
		t.Fatalf("Canon(a)=%q != Canon(b)=%q; aliases should canonicalize equal", ca, cb)
	}
}

func TestCanonDistinguishesDifferentValues(t *testing.T) {
	f, fd, _ := parseFunc(t, `package p
func sink(int, int)
func g(base int) {
	a := base + 1
	b := base + 2
	sink(a, b)
}`, "g")
	call := firstCall(t, fd, "sink")
	if f.Canon(call.Args[0]) == f.Canon(call.Args[1]) {
		t.Fatal("Canon collapsed base+1 and base+2")
	}
}

func TestMentionsThroughAliases(t *testing.T) {
	f, fd, info := parseFunc(t, `package p
func sink(int)
func g(base int) {
	n := base * 2
	m := n + 1
	sink(m)
}`, "g")
	arg := firstCall(t, fd, "sink").Args[0]
	mentions := f.Mentions(arg)
	var base types.Object
	for _, obj := range info.Defs {
		if obj != nil && obj.Name() == "base" {
			base = obj
		}
	}
	if base == nil {
		t.Fatal("no base object")
	}
	if !mentions[base] {
		t.Fatalf("Mentions(m) = %v, missing base", mentions)
	}
	for obj := range mentions {
		if obj.Name() == "n" || obj.Name() == "m" {
			t.Fatalf("Mentions leaked alias %s", obj.Name())
		}
	}
}

func TestLoopVarsEnclosing(t *testing.T) {
	f, fd, _ := parseFunc(t, `package p
func sink(int)
func g(xs []int) {
	for i := 0; i < len(xs); i++ {
		sink(i)
	}
}`, "g")
	call := firstCall(t, fd, "sink")
	vars := f.LoopVarsEnclosing(call)
	found := false
	for obj := range vars {
		if obj.Name() == "i" {
			found = true
		}
	}
	if !found {
		t.Fatalf("LoopVarsEnclosing = %v, want to include i", vars)
	}
	if !f.InsideLoop(call) {
		t.Fatal("InsideLoop(call in for) = false")
	}
}

func TestRangeLoopVariable(t *testing.T) {
	f, fd, _ := parseFunc(t, `package p
func sink(int)
func g(xs []int) {
	for i := range xs {
		id := i * 2
		sink(id)
	}
}`, "g")
	call := firstCall(t, fd, "sink")
	loops := f.LoopVarsEnclosing(call)
	mentions := f.Mentions(call.Args[0])
	hit := false
	for obj := range mentions {
		if loops[obj] {
			hit = true
		}
	}
	if !hit {
		t.Fatal("identity derived from range variable not seen as loop-dependent")
	}
}

func TestParentChain(t *testing.T) {
	f, fd, _ := parseFunc(t, `package p
func sink(int)
func g(x int) {
	if x > 0 {
		sink(x)
	}
}`, "g")
	call := firstCall(t, fd, "sink")
	foundIf := false
	for p := f.Parent(call); p != nil; p = f.Parent(p) {
		if _, ok := p.(*ast.IfStmt); ok {
			foundIf = true
		}
	}
	if !foundIf {
		t.Fatal("parent chain from call did not reach the if statement")
	}
}

func TestFuncLitAssignmentPoisons(t *testing.T) {
	f, fd, _ := parseFunc(t, `package p
func sink(int)
func g() {
	n := 1
	fn := func() { n = 2 }
	fn()
	sink(n)
}`, "g")
	arg := firstCall(t, fd, "sink").Args[0]
	if got := types.ExprString(f.Resolve(arg)); got != "n" {
		t.Fatalf("Resolve(closure-mutated n) = %q, want n", got)
	}
}
