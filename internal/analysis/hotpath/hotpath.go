// Package hotpath defines the zero-allocation analyzer: functions
// annotated with a //triad:hotpath doc-comment directive are the
// steady-state loops gated by the ZeroAllocSteadyState runtime tests
// (scheduler Step, simnet delivery, wire seal/open, serve dispatch).
// The analyzer flags constructs that heap-allocate — so an allocation
// regression is caught at vet time, file and line in hand, instead of
// as an opaque allocs/op assertion failure.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"triadtime/internal/analysis"
)

// Directive marks a function as an allocation-free steady-state path.
// It must appear on its own line in the function's doc comment.
const Directive = "//triad:hotpath"

// Analyzer is the hotpath analysis.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "flags allocating constructs (fmt calls, string<->[]byte conversions, " +
		"map/slice/pointer composite literals, make/new, closures, interface " +
		"boxing) inside functions annotated //triad:hotpath",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHot(fn) {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil
}

// isHot reports whether the function's doc comment carries the
// directive.
func isHot(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.CompositeLit:
			checkCompositeLit(pass, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "hot path takes the address of a composite literal (heap allocation); reuse a pooled object")
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path creates a function literal (closure allocation); hoist it to a pre-built field or method value")
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := pass.TypesInfo.TypeOf(n); t != nil && isString(t) {
					pass.Reportf(n.Pos(), "hot path concatenates strings (allocation); use a preallocated buffer")
				}
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Type conversions.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		checkConversion(pass, call, tv.Type)
		return
	}
	// Builtins.
	if id := calleeIdent(call.Fun); id != nil {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "hot path calls %s (allocation); preallocate outside the steady state", b.Name())
			}
			return
		}
	}
	// fmt calls.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "hot path calls fmt.%s (allocates for formatting); move formatting off the steady state", fn.Name())
		}
	}
	checkBoxing(pass, call)
}

// checkConversion flags the two allocating conversion families that
// show up in serialization code.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr, to types.Type) {
	from := pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	switch {
	case isString(to) && isByteSlice(from):
		pass.Reportf(call.Pos(), "hot path converts []byte to string (copies and allocates)")
	case isByteSlice(to) && isString(from):
		pass.Reportf(call.Pos(), "hot path converts string to []byte (copies and allocates)")
	case types.IsInterface(to) && !types.IsInterface(from):
		pass.Reportf(call.Pos(), "hot path converts %s to interface %s (boxing allocation)", from, to)
	}
}

func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		pass.Reportf(lit.Pos(), "hot path builds a map literal (allocation); preallocate outside the steady state")
	case *types.Slice:
		pass.Reportf(lit.Pos(), "hot path builds a slice literal (allocation); preallocate outside the steady state")
	}
}

// checkBoxing flags concrete values passed to interface parameters:
// the conversion boxes the value on the heap (small-integer and
// pointer cases aside, which the runtime gate would still admit — the
// lint is deliberately stricter than the allocator).
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr) {
	sigT := pass.TypesInfo.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice: no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "hot path boxes %s into interface parameter %s (allocation)", at, pt)
	}
	// A call with its own variadic arguments also allocates the
	// backing array for the ...slice.
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= params.Len() {
		pass.Reportf(call.Pos(), "hot path calls a variadic function (allocates the argument slice)")
	}
}

// calleeIdent unwraps a call's function expression to its identifier,
// if it has one (plain name or parenthesized name).
func calleeIdent(fun ast.Expr) *ast.Ident {
	switch f := fun.(type) {
	case *ast.Ident:
		return f
	case *ast.ParenExpr:
		return calleeIdent(f.X)
	}
	return nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
