package hotpath_test

import (
	"testing"

	"triadtime/internal/analysis/analysistest"
	"triadtime/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a testdata module; skipped in -short")
	}
	analysistest.Run(t, "testdata", hotpath.Analyzer)
}
