module hotpathdata

go 1.24
