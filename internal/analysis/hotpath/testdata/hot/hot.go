// Package hot exercises the hotpath analyzer: annotated functions are
// checked for allocating constructs; unannotated ones are not.
package hot

import "fmt"

type pair struct{ a, b int }

//triad:hotpath
func Fmt(x int) {
	fmt.Println(x) // want `calls fmt\.Println` `boxes int into interface` `variadic function`
}

//triad:hotpath
func Convert(b []byte, s string) int {
	t := string(b) // want `converts \[\]byte to string`
	u := []byte(s) // want `converts string to \[\]byte`
	return len(t) + len(u)
}

//triad:hotpath
func Literals() int {
	m := map[int]int{1: 2}       // want `map literal`
	s := []int{1, 2, 3}          // want `slice literal`
	p := &pair{}                 // want `address of a composite literal`
	q := make([]int, 4)          // want `calls make`
	f := func() int { return 1 } // want `function literal`
	return m[1] + s[0] + p.a + q[0] + f()
}

//triad:hotpath
func Concat(a, b string) string {
	return a + b // want `concatenates strings`
}

//triad:hotpath
func Boxes(v int) {
	box(v) // want `boxes int into interface`
}

func box(v any) int {
	if v == nil {
		return 0
	}
	return 1
}

// Cold is unannotated: identical constructs pass.
func Cold() string {
	return fmt.Sprintf("%d", 1+2)
}

// Clean is the steady-state idiom the gate exists to protect:
// append into caller-provided capacity, value structs, no boxing.
//
//triad:hotpath
func Clean(dst []byte, vals []int) []byte {
	for _, v := range vals {
		dst = append(dst, byte(v))
	}
	return dst
}
