// Package load type-checks Go packages for the static-analysis suite
// without depending on golang.org/x/tools/go/packages. It shells out
// to `go list -export -deps -json` for build metadata and compiled
// export data (the same mechanism the x/tools driver uses), parses the
// matched packages' non-test sources, and type-checks them against the
// export data of their dependencies.
//
// Only non-test Go files are analyzed: the suite enforces invariants
// of production code (determinism, zero-alloc hot paths), while tests
// legitimately use wall clocks, goroutines, and allocations.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one fully type-checked, pattern-matched package.
type Package struct {
	PkgPath   string
	Name      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	DepOnly    bool
}

// Packages loads and type-checks the non-test sources of every package
// matched by patterns, resolved relative to dir (the module root, or a
// testdata module root in analyzer tests).
//
// Packages are returned in dependency order (imports before
// importers), and a target package's imports of other targets resolve
// to the source-checked *types.Package rather than to export data.
// Both properties together are what make the analysis facts layer
// work: when a dependent package is analyzed, the objects of its
// already-analyzed dependencies are the very same *types.Object values
// the dependencies' passes exported facts on.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	targets = topoSort(targets)

	fset := token.NewFileSet()
	// checked accumulates source-checked target packages; the importer
	// prefers them over export data so object identities are shared
	// between a package's own pass and its dependents' passes.
	checked := map[string]*types.Package{}
	imp := exportImporter{
		checked: checked,
		imp: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		}),
	}

	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("load: %s uses cgo, which the analysis loader does not support", t.ImportPath)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("load: parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load: type-check %s: %w", t.ImportPath, err)
		}
		checked[t.ImportPath] = tpkg
		pkgs = append(pkgs, &Package{
			PkgPath:   t.ImportPath,
			Name:      t.Name,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	if len(pkgs) == 0 {
		return nil, errors.New("load: patterns matched no packages")
	}
	return pkgs, nil
}

// goList resolves patterns to target packages plus an import-path ->
// export-data-file map covering every dependency.
func goList(dir string, patterns []string) ([]listPackage, map[string]string, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// The analyzed modules are self-contained (stdlib imports only), so
	// the loader never needs the network; failing fast beats hanging on
	// a proxy that is unreachable in CI sandboxes.
	cmd.Env = append(os.Environ(), "GOPROXY=off")
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("load: go list %v: %w\n%s", patterns, err, stderr.Bytes())
	}
	exports := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("load: decode go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	return targets, exports, nil
}

// topoSort orders targets so every package follows all targets it
// imports (direct or transitive). go list -deps already emits this
// order, but the facts layer's correctness rides on it, so it is
// enforced here rather than assumed. Ties keep the original (sorted)
// go list order for stable output.
func topoSort(targets []listPackage) []listPackage {
	index := make(map[string]int, len(targets))
	for i, t := range targets {
		index[t.ImportPath] = i
	}
	out := make([]listPackage, 0, len(targets))
	// visiting doubles as the done set: 1 = on stack, 2 = emitted.
	state := make(map[string]int, len(targets))
	var visit func(i int)
	visit = func(i int) {
		t := targets[i]
		if state[t.ImportPath] != 0 {
			return // emitted, or a cycle (impossible in valid Go)
		}
		state[t.ImportPath] = 1
		for _, dep := range t.Imports {
			if j, ok := index[dep]; ok {
				visit(j)
			}
		}
		state[t.ImportPath] = 2
		out = append(out, t)
	}
	for i := range targets {
		visit(i)
	}
	return out
}

// exportImporter layers the source-checked target packages over the gc
// export-data importer, with the "unsafe" special case (unsafe has no
// export data; the type checker's own package object stands in).
type exportImporter struct {
	checked map[string]*types.Package
	imp     types.Importer
}

func (e exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := e.checked[path]; ok {
		return p, nil
	}
	return e.imp.Import(path)
}
