// Package lockflow defines the lock-discipline analyzer for the live
// serving and transport layers: a sync mutex must not be held across a
// channel send, a TrustedNow call, or a datagram transmit (SendBatch,
// Sendmmsg, WriteTo). Channel sends can block indefinitely against a
// full or undrained channel, TrustedNow fans into the protocol engine
// (and in live bindings marshals through the platform's dispatch
// queue), and a socket write parks in the kernel whenever the send
// buffer is full — holding a shard or sealer lock across any of them
// turns backpressure into a server-wide stall, the availability
// failure mode the serving layer's admission control exists to
// prevent.
//
// The analysis is a conservative intra-procedural scan: it tracks
// Lock/RLock...Unlock/RUnlock pairs in statement order (a deferred
// unlock holds to function end) and does not model cross-branch lock
// state. Code this analyzer cannot see through should be restructured
// — the repo's own hot paths all unlock before blocking — or carry a
// //triad:nolint:lockflow argument.
package lockflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"triadtime/internal/analysis"
	"triadtime/internal/analysis/flow"
)

// guardedPkgs names the package directories the invariant applies to:
// the live serving and transport layers, where locks guard hot shared
// state (shard queues, sealer nonce counters, the peer directory).
var guardedPkgs = map[string]bool{"serve": true, "transport": true}

// Analyzer is the lockflow analysis.
var Analyzer = &analysis.Analyzer{
	Name: "lockflow",
	Doc: "flags mutexes held across channel sends, TrustedNow calls, or " +
		"datagram transmits in the live serving/transport packages",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !guardedPkgs[analysis.PathBase(pass.PkgPath)] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				fl := flow.New(pass.TypesInfo, fn)
				scanBlock(pass, fl, fn.Body.List, map[string]bool{})
			}
		}
	}
	return nil
}

// scanBlock walks stmts in order, tracking which lock expressions are
// held. Nested blocks inherit a copy of the current set, so locks
// taken inside a branch do not leak out, and the state before the
// branch is what flows past it.
func scanBlock(pass *analysis.Pass, fl *flow.Func, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if key, op := lockOp(pass, fl, call); op != "" {
					switch op {
					case "lock":
						held[key] = true
					case "unlock":
						delete(held, key)
					}
					continue
				}
			}
			inspectExpr(pass, s.X, held)
		case *ast.DeferStmt:
			if key, op := lockOp(pass, fl, s.Call); op == "unlock" {
				// Deferred unlock: the lock is held for the remainder of
				// the function, which is exactly the window we must scan.
				_ = key
				continue
			}
			inspectExpr(pass, s.Call, held)
		case *ast.SendStmt:
			reportHeld(pass, s.Arrow, "channel send", held)
			inspectExpr(pass, s.Value, held)
		case *ast.BlockStmt:
			scanBlock(pass, fl, s.List, copyHeld(held))
		case *ast.IfStmt:
			if s.Init != nil {
				scanStmtExprs(pass, s.Init, held)
			}
			inspectExpr(pass, s.Cond, held)
			scanBlock(pass, fl, s.Body.List, copyHeld(held))
			if s.Else != nil {
				scanBlock(pass, fl, []ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			scanBlock(pass, fl, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			inspectExpr(pass, s.X, held)
			scanBlock(pass, fl, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			if s.Tag != nil {
				inspectExpr(pass, s.Tag, held)
			}
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					scanBlock(pass, fl, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					scanBlock(pass, fl, cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					if send, ok := cc.Comm.(*ast.SendStmt); ok {
						reportHeld(pass, send.Arrow, "channel send", held)
					}
					scanBlock(pass, fl, cc.Body, copyHeld(held))
				}
			}
		case *ast.GoStmt:
			// The goroutine body runs without the caller's locks.
		default:
			scanStmtExprs(pass, stmt, held)
		}
	}
}

// copyHeld clones the held-lock set so a nested block can take locks
// without mutating the state the enclosing scan continues with.
func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// scanStmtExprs inspects every expression nested in a statement that
// scanBlock has no structural handling for.
func scanStmtExprs(pass *analysis.Pass, stmt ast.Stmt, held map[string]bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			inspectExprShallow(pass, e, held)
		}
		return true
	})
}

// inspectExpr reports blocking operations nested anywhere in e.
func inspectExpr(pass *analysis.Pass, e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if sub, ok := n.(ast.Expr); ok {
			inspectExprShallow(pass, sub, held)
		}
		return true
	})
}

// blockingSends are method names that transmit datagrams and can park
// in the kernel against a full socket buffer: the batched syscall
// paths (SendBatch, and the raw Sendmmsg should one ever be called
// directly) and the stdlib per-datagram write (WriteTo).
var blockingSends = map[string]bool{
	"SendBatch": true,
	"Sendmmsg":  true,
	"WriteTo":   true,
}

// inspectExprShallow checks one expression node (non-recursively).
func inspectExprShallow(pass *analysis.Pass, e ast.Expr, held map[string]bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch {
	case sel.Sel.Name == "TrustedNow":
		reportHeld(pass, call.Pos(), "TrustedNow call", held)
	case blockingSends[sel.Sel.Name]:
		reportHeld(pass, call.Pos(), sel.Sel.Name+" call", held)
	}
}

func reportHeld(pass *analysis.Pass, pos token.Pos, what string, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	// Deterministic single report: pick the lexicographically first
	// held lock for stable output.
	min := ""
	for k := range held {
		if min == "" || k < min {
			min = k
		}
	}
	pass.Reportf(pos, "%s while holding %s; release the lock before blocking operations", what, min)
}

// lockOp classifies a call as a mutex lock/unlock on a receiver whose
// type is sync.Mutex or sync.RWMutex (possibly via pointer), returning
// a stable key for the receiver expression. Keys are value-flow
// canonical forms, so a lock taken through a pointer alias
// (mu := &s.mu; mu.Lock()) pairs with its direct unlock (s.mu.Unlock())
// — the leading & is stripped because &s.mu and s.mu name the same
// mutex.
func lockOp(pass *analysis.Pass, fl *flow.Func, call *ast.CallExpr) (key, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", ""
	}
	if !isSyncMutex(pass.TypesInfo.TypeOf(sel.X)) {
		return "", ""
	}
	return strings.TrimPrefix(fl.Canon(sel.X), "&"), op
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}
