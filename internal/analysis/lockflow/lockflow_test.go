package lockflow_test

import (
	"testing"

	"triadtime/internal/analysis/analysistest"
	"triadtime/internal/analysis/lockflow"
)

func TestLockflow(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a testdata module; skipped in -short")
	}
	analysistest.Run(t, "testdata", lockflow.Analyzer)
}
