module lockflowdata

go 1.24
