// Package other is outside lockflow's guarded scope: the same
// patterns pass (components that own their concurrency model make
// their own lock-ordering arguments).
package other

import "sync"

type clock interface {
	TrustedNow() (int64, error)
}

type sender interface {
	WriteTo(p []byte, addr string) (int, error)
}

type box struct {
	mu  sync.Mutex
	out chan int64
}

func HeldSend(b *box, c clock) {
	b.mu.Lock()
	n, _ := c.TrustedNow()
	b.out <- n
	b.mu.Unlock()
}

func HeldWrite(b *box, s sender, p []byte) {
	b.mu.Lock()
	s.WriteTo(p, "peer")
	b.mu.Unlock()
}
