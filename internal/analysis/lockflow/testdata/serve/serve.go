// Package serve is in lockflow's guarded scope (its import path ends
// in "serve"): locks must be released before channel sends and
// TrustedNow calls.
package serve

import "sync"

type clock interface {
	TrustedNow() (int64, error)
}

type shard struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	q   []int64
	out chan int64
}

// Bad blocks twice while holding the shard lock.
func Bad(s *shard, c clock) {
	s.mu.Lock()
	n, _ := c.TrustedNow() // want `TrustedNow call while holding s\.mu`
	s.out <- n             // want `channel send while holding s\.mu`
	s.mu.Unlock()
}

// DeferBad holds to function end via defer.
func DeferBad(s *shard, c clock) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, _ := c.TrustedNow() // want `TrustedNow call while holding s\.mu`
	return n
}

// RLockBad covers reader locks.
func RLockBad(s *shard, c clock) int64 {
	s.rw.RLock()
	n, _ := c.TrustedNow() // want `TrustedNow call while holding s\.rw`
	s.rw.RUnlock()
	return n
}

// SelectSend covers sends inside select clauses.
func SelectSend(s *shard, done chan struct{}) {
	s.mu.Lock()
	select {
	case s.out <- 1: // want `channel send while holding s\.mu`
	case <-done:
	}
	s.mu.Unlock()
}

// Good is the repo's own discipline: collect under the lock, release,
// then read trusted time and send.
func Good(s *shard, c clock) {
	s.mu.Lock()
	s.q = append(s.q, 1)
	s.mu.Unlock()
	n, _ := c.TrustedNow()
	s.out <- n
}

// GoodDefer never blocks under its deferred lock.
func GoodDefer(s *shard) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.q)
}
