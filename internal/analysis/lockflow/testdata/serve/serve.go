// Package serve is in lockflow's guarded scope (its import path ends
// in "serve"): locks must be released before channel sends and
// TrustedNow calls.
package serve

import "sync"

type clock interface {
	TrustedNow() (int64, error)
}

// batch mirrors the transport layer's batched-send surface: methods
// that park in the kernel against a full socket buffer.
type batch interface {
	SendBatch(n int) (int, error)
	Sendmmsg(n int) (int, error)
	WriteTo(p []byte, addr string) (int, error)
}

type shard struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	q   []int64
	out chan int64
}

// Bad blocks twice while holding the shard lock.
func Bad(s *shard, c clock) {
	s.mu.Lock()
	n, _ := c.TrustedNow() // want `TrustedNow call while holding s\.mu`
	s.out <- n             // want `channel send while holding s\.mu`
	s.mu.Unlock()
}

// DeferBad holds to function end via defer.
func DeferBad(s *shard, c clock) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, _ := c.TrustedNow() // want `TrustedNow call while holding s\.mu`
	return n
}

// RLockBad covers reader locks.
func RLockBad(s *shard, c clock) int64 {
	s.rw.RLock()
	n, _ := c.TrustedNow() // want `TrustedNow call while holding s\.rw`
	s.rw.RUnlock()
	return n
}

// SelectSend covers sends inside select clauses.
func SelectSend(s *shard, done chan struct{}) {
	s.mu.Lock()
	select {
	case s.out <- 1: // want `channel send while holding s\.mu`
	case <-done:
	}
	s.mu.Unlock()
}

// SendBatchBad transmits a batch while holding the shard lock — the
// exact shape the sharded serving path must never regress into.
func SendBatchBad(s *shard, b batch) {
	s.mu.Lock()
	b.SendBatch(len(s.q)) // want `SendBatch call while holding s\.mu`
	s.mu.Unlock()
}

// SendmmsgBad covers a raw batched syscall wrapper under a deferred
// unlock (held to function end).
func SendmmsgBad(s *shard, b batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b.Sendmmsg(1) // want `Sendmmsg call while holding s\.mu`
}

// WriteToBad covers the stdlib per-datagram path under a reader lock.
func WriteToBad(s *shard, b batch, p []byte) {
	s.rw.RLock()
	b.WriteTo(p, "client") // want `WriteTo call while holding s\.rw`
	s.rw.RUnlock()
}

// SendBatchGood is the discipline the drain loops follow: snapshot
// under the lock, release, then transmit.
func SendBatchGood(s *shard, b batch) {
	s.mu.Lock()
	n := len(s.q)
	s.mu.Unlock()
	b.SendBatch(n)
}

// Good is the repo's own discipline: collect under the lock, release,
// then read trusted time and send.
func Good(s *shard, c clock) {
	s.mu.Lock()
	s.q = append(s.q, 1)
	s.mu.Unlock()
	n, _ := c.TrustedNow()
	s.out <- n
}

// GoodDefer never blocks under its deferred lock.
func GoodDefer(s *shard) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.q)
}

// AliasGood locks through a pointer alias and unlocks through the
// field directly: value-flow canonicalization pairs the two, so the
// blocking call after the unlock is clean.
func AliasGood(s *shard, c clock) {
	mu := &s.mu
	mu.Lock()
	s.q = append(s.q, 1)
	s.mu.Unlock()
	n, _ := c.TrustedNow()
	s.out <- n
}

// AliasBad blocks while holding a lock taken through an alias.
func AliasBad(s *shard, c clock) {
	mu := &s.mu
	mu.Lock()
	n, _ := c.TrustedNow() // want `TrustedNow call while holding s\.mu`
	_ = n
	mu.Unlock()
}
