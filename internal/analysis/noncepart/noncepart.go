// Package noncepart mechanizes DESIGN.md §6.1's nonce-uniqueness
// argument: AES-GCM confidentiality holds only while every sealer in
// the deployment seals under a distinct sender identity, because the
// identity is the nonce prefix that partitions the nonce space. The
// analyzer proves (within its reach) that no two wire.NewSealer /
// wire.NewSealerShard constructions claim the same identity:
//
//   - two construction sites whose identity expressions canonicalize
//     equal (after value-flow substitution and constant folding) are
//     flagged — two sealers, one nonce space;
//   - a construction inside a loop whose identity does not depend on
//     any enclosing loop variable is flagged — every iteration claims
//     the same identity;
//   - a function that constructs a sealer whose identity depends on
//     its own parameters exports a fact, so calls to that wrapper are
//     themselves treated as constructions with the corresponding
//     arguments as the identity — the check crosses function and
//     package boundaries without whole-program analysis.
//
// The check is per-function and conservative: identities it cannot
// resolve to comparable expressions are left to human review, exactly
// as before — it only ever flags provable collisions.
package noncepart

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"triadtime/internal/analysis"
	"triadtime/internal/analysis/flow"
)

// Analyzer is the noncepart analysis.
var Analyzer = &analysis.Analyzer{
	Name: "noncepart",
	Doc: "flags wire sealer constructions that provably reuse a sender " +
		"identity (duplicate or loop-invariant identity expressions); " +
		"each sealer must own a disjoint AEAD nonce partition",
	Run: run,
}

// identityFact marks a function that constructs (directly or through
// another fact-carrying wrapper) a wire sealer whose identity depends
// on the function's own parameters. Params holds the 0-based indices
// of those parameters; a call to the function is then treated as a
// sealer construction whose identity is the corresponding arguments.
type identityFact struct {
	Params []int
}

func (*identityFact) AFact() {}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// site is one sealer construction (direct or via wrapper fact).
type site struct {
	call  *ast.CallExpr
	canon string
	deps  map[types.Object]bool
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	fl := flow.New(pass.TypesInfo, fn)
	var sites []site
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		ids := identityExprs(pass, call)
		if len(ids) == 0 {
			return true
		}
		deps := map[types.Object]bool{}
		for _, e := range ids {
			for obj := range fl.Mentions(e) {
				deps[obj] = true
			}
		}
		s := site{call: call, canon: identityCanon(fl, ids), deps: deps}

		if loops := fl.LoopsEnclosing(call); len(loops) > 0 && !variesAcross(loops, deps) {
			pass.Reportf(call.Pos(),
				"sealer constructed in a loop with loop-invariant identity %s; every iteration claims the same AEAD nonce space",
				s.canon)
		}
		sites = append(sites, s)
		return true
	})

	// Duplicate keys pair the canonical expression with the identities
	// of the objects it reads: two sites whose identical-looking canon
	// binds *different* locals (an if/else each declaring its own
	// variable) are not provably the same value.
	seen := map[string]*site{}
	for i := range sites {
		s := &sites[i]
		key := s.canon + "|" + depsKey(s.deps)
		if prev, ok := seen[key]; ok {
			pass.Reportf(s.call.Pos(),
				"sealer identity %s duplicates the construction at %s; two sealers would share one AEAD nonce space",
				s.canon, pass.Fset.Position(prev.call.Pos()))
			continue
		}
		seen[key] = s
	}

	exportWrapperFact(pass, fn, sites)
}

// variesAcross reports whether the identity provably varies per loop
// iteration: it reads at least one object declared within an
// enclosing loop's span (the iteration variable or a per-iteration
// local rebuilt each pass).
func variesAcross(loops []ast.Node, deps map[types.Object]bool) bool {
	for obj := range deps {
		for _, loop := range loops {
			if loop.Pos() <= obj.Pos() && obj.Pos() < loop.End() {
				return true
			}
		}
	}
	return false
}

// depsKey renders the identity's object set stably (by declaration
// position) for duplicate-site comparison.
func depsKey(deps map[types.Object]bool) string {
	positions := make([]int, 0, len(deps))
	for obj := range deps {
		positions = append(positions, int(obj.Pos()))
	}
	sort.Ints(positions)
	parts := make([]string, len(positions))
	for i, p := range positions {
		parts[i] = strconv.Itoa(p)
	}
	return strings.Join(parts, ",")
}

// identityExprs returns the expressions that determine the sender
// identity of the sealer a call constructs, or nil when the call does
// not construct one. Direct constructions are wire.NewSealer (identity
// = arg 1) and wire.NewSealerShard (identity = base + shard, args 1
// and 2); wrapper constructions are calls to any function carrying an
// identityFact.
func identityExprs(pass *analysis.Pass, call *ast.CallExpr) []ast.Expr {
	obj := calleeObj(pass.TypesInfo, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if fn.Pkg().Name() == "wire" {
		switch fn.Name() {
		case "NewSealer":
			if len(call.Args) >= 2 {
				return call.Args[1:2]
			}
		case "NewSealerShard":
			if len(call.Args) >= 4 {
				return call.Args[1:3]
			}
		}
	}
	var f identityFact
	if pass.ImportObjectFact(obj, &f) {
		var out []ast.Expr
		for _, p := range f.Params {
			if p >= 0 && p < len(call.Args) {
				out = append(out, call.Args[p])
			}
		}
		return out
	}
	return nil
}

// identityCanon renders an identity expression list as one comparable
// key. The NewSealerShard pair folds to base+shard so that, when both
// resolve to constants, it collides correctly with a NewSealer literal
// claiming the same value.
func identityCanon(fl *flow.Func, ids []ast.Expr) string {
	if len(ids) == 2 {
		a, aok := fl.ConstInt(ids[0])
		b, bok := fl.ConstInt(ids[1])
		if aok && bok {
			return strconv.FormatInt(a+b, 10)
		}
		return "(" + fl.Canon(ids[0]) + "+" + fl.Canon(ids[1]) + ")"
	}
	parts := make([]string, len(ids))
	for i, e := range ids {
		parts[i] = fl.Canon(e)
	}
	return strings.Join(parts, ",")
}

// exportWrapperFact publishes fn as an identity wrapper when any of
// its construction sites' identities depend on fn's own parameters.
func exportWrapperFact(pass *analysis.Pass, fn *ast.FuncDecl, sites []site) {
	if len(sites) == 0 || fn.Type.Params == nil {
		return
	}
	var params []types.Object
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			params = append(params, pass.TypesInfo.Defs[name])
		}
	}
	var indices []int
	for i, p := range params {
		if p == nil {
			continue
		}
		for _, s := range sites {
			if s.deps[p] {
				indices = append(indices, i)
				break
			}
		}
	}
	if len(indices) == 0 {
		return
	}
	pass.ExportObjectFact(pass.TypesInfo.Defs[fn.Name], &identityFact{Params: indices})
}

// calleeObj resolves the object a call's callee names, looking through
// parens; nil for indirect calls and conversions.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}
