package noncepart_test

import (
	"testing"

	"triadtime/internal/analysis/analysistest"
	"triadtime/internal/analysis/noncepart"
)

func TestNoncepart(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a testdata module; skipped in -short")
	}
	analysistest.Run(t, "testdata", noncepart.Analyzer)
}
