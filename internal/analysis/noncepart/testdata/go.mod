module noncepartdata

go 1.24
