package use

import (
	"noncepartdata/wire"
	"noncepartdata/wrap"
)

// duplicateLiteral: two sealers on the same literal identity.
func duplicateLiteral(key []byte) (*wire.Sealer, *wire.Sealer) {
	a := wire.NewSealer(key, 7)
	b := wire.NewSealer(key, 7) // want `sealer identity 7 duplicates the construction at .*use\.go:10`
	return a, b
}

// duplicateThroughAlias: the value-flow helper resolves the alias, so
// the two identity expressions canonicalize equal.
func duplicateThroughAlias(key []byte, base, k uint32) (*wire.Sealer, *wire.Sealer) {
	id := base + k
	a := wire.NewSealer(key, id)
	b := wire.NewSealer(key, base+k) // want `sealer identity \(base\+k\) duplicates`
	return a, b
}

// shardOverlapsLiteral: base 8 + shard 2 collides with literal 10 once
// both constant-fold.
func shardOverlapsLiteral(key []byte) (*wire.Sealer, *wire.Sealer) {
	a := wire.NewSealerShard(key, 8, 2, 4)
	b := wire.NewSealer(key, 10) // want `sealer identity 10 duplicates`
	return a, b
}

// loopInvariantIdentity: every iteration claims the same identity.
func loopInvariantIdentity(key []byte, base uint32) []*wire.Sealer {
	var out []*wire.Sealer
	for i := 0; i < 4; i++ {
		out = append(out, wire.NewSealer(key, base)) // want `loop-invariant identity base`
	}
	return out
}

// wrapperDuplicate: the identity fact on wrap.NewWorker makes its call
// sites constructions too.
func wrapperDuplicate(key []byte) (*wire.Sealer, *wire.Sealer) {
	a := wrap.NewWorker(key, 5)
	b := wrap.NewWorker(key, 5) // want `sealer identity 5 duplicates`
	return a, b
}

// wrapperLoopInvariant: same rule through the wrapper fact.
func wrapperLoopInvariant(key []byte) []*wire.Sealer {
	var out []*wire.Sealer
	for i := 0; i < 3; i++ {
		out = append(out, wrap.NewWorker(key, 9)) // want `loop-invariant identity 9`
	}
	return out
}

// shardedLoop is the sanctioned pattern: the shard argument varies
// with the loop variable, so each iteration owns a fresh identity.
func shardedLoop(key []byte, base uint32, shards int) []*wire.Sealer {
	var out []*wire.Sealer
	for i := 0; i < shards; i++ {
		out = append(out, wire.NewSealerShard(key, base, i, shards))
	}
	return out
}

// distinctLiterals is fine: disjoint identities.
func distinctLiterals(key []byte) (*wire.Sealer, *wire.Sealer) {
	return wire.NewSealer(key, 1), wire.NewSealer(key, 2)
}

// wrapperLoopVarying is fine: the wrapper's identity argument depends
// on the loop variable.
func wrapperLoopVarying(key []byte, n int) []*wire.Sealer {
	var out []*wire.Sealer
	for i := 0; i < n; i++ {
		out = append(out, wrap.NewWorker(key, uint32(i)))
	}
	return out
}

// suppressed pins the nolint path for this analyzer.
func suppressed(key []byte) (*wire.Sealer, *wire.Sealer) {
	a := wire.NewSealer(key, 3)
	//triad:nolint:noncepart identities proven disjoint by out-of-band config validation
	b := wire.NewSealer(key, 3)
	return a, b
}
