// Package wire is a miniature stand-in for the repo's wire package:
// noncepart recognizes sealer constructors by package name and
// function name, so the testdata module carries its own.
package wire

// Sealer seals under one sender identity (= nonce partition).
type Sealer struct {
	id uint32
}

// NewSealer returns a sealer owning identity senderID.
func NewSealer(key []byte, senderID uint32) *Sealer {
	_ = key
	return &Sealer{id: senderID}
}

// NewSealerShard returns the shard'th of shards sealers based at base,
// owning identity base+shard.
func NewSealerShard(key []byte, base uint32, shard, shards int) *Sealer {
	_ = shards
	return NewSealer(key, base+uint32(shard))
}
