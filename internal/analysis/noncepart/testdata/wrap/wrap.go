// Package wrap holds an identity wrapper: NewWorker's sealer identity
// is its id parameter, so noncepart exports a fact and treats every
// NewWorker call site as a construction with that argument's identity.
package wrap

import "noncepartdata/wire"

// NewWorker builds a worker sealer owning identity id.
func NewWorker(key []byte, id uint32) *wire.Sealer {
	return wire.NewSealer(key, id)
}
