// Package sealcopy defines the nonce-safety analyzer: wire.Sealer and
// wire.Opener carry mutable anti-replay state (the sealer's nonce
// counter, the opener's per-sender replay windows). Copying one by
// value forks that state — the copy and the original then reuse nonce
// counter values under the same AES-GCM key, which voids
// confidentiality, or accept replays the original already consumed.
// The analyzer enforces pointer-only flow for these types, in the
// spirit of go vet's copylocks.
package sealcopy

import (
	"go/ast"
	"go/types"

	"triadtime/internal/analysis"
)

// noCopyNames are the guarded type names, looked up in any package
// named "wire".
var noCopyNames = map[string]bool{"Sealer": true, "Opener": true}

// Analyzer is the sealcopy analysis.
var Analyzer = &analysis.Analyzer{
	Name: "sealcopy",
	Doc: "forbids copying wire.Sealer/wire.Opener values (forked nonce " +
		"counters and replay windows); these types must flow as pointers",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncType(pass, n.Type)
				if n.Recv != nil {
					for _, field := range n.Recv.List {
						checkFieldType(pass, field)
					}
				}
			case *ast.FuncLit:
				checkFuncType(pass, n.Type)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkCopiedExpr(pass, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkCopiedExpr(pass, v)
				}
			case *ast.RangeStmt:
				checkRangeValue(pass, n)
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					checkCopiedExpr(pass, r)
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					checkCopiedExpr(pass, arg)
				}
			}
			return true
		})
	}
	return nil
}

// checkFuncType flags value parameters and results of guarded types —
// a declaration-level copy regardless of call sites.
func checkFuncType(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			checkFieldType(pass, field)
		}
	}
	if ft.Results != nil {
		for _, field := range ft.Results.List {
			checkFieldType(pass, field)
		}
	}
}

func checkFieldType(pass *analysis.Pass, field *ast.Field) {
	t := pass.TypesInfo.TypeOf(field.Type)
	if name := noCopyType(t); name != "" {
		pass.Reportf(field.Type.Pos(), "declares a by-value %s (copies the nonce/replay state); use *%s", name, name)
	}
}

// checkCopiedExpr flags expressions whose evaluation copies an
// existing guarded value: variables, fields, derefs, and indexes.
// Constructor results and composite literals are initializations, not
// copies, and pass.
func checkCopiedExpr(pass *analysis.Pass, e ast.Expr) {
	name := noCopyType(pass.TypesInfo.TypeOf(e))
	if name == "" {
		return
	}
	if !copiesValue(e) {
		return
	}
	pass.Reportf(e.Pos(), "copies a %s by value (forks its nonce/replay state); share a *%s instead", name, name)
}

// copiesValue reports whether evaluating e duplicates existing state
// (as opposed to creating fresh state).
func copiesValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	case *ast.ParenExpr:
		return copiesValue(e.X)
	default:
		return false
	}
}

func checkRangeValue(pass *analysis.Pass, rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	if name := noCopyType(pass.TypesInfo.TypeOf(rng.Value)); name != "" {
		pass.Reportf(rng.Value.Pos(), "range copies a %s element by value; store and range over *%s", name, name)
	}
}

// noCopyType reports the guarded type's name if t is, or structurally
// contains (struct field or array element, transitively), a guarded
// wire type by value. Pointers to guarded types are fine.
func noCopyType(t types.Type) string {
	if t == nil {
		return ""
	}
	seen := map[types.Type]bool{}
	var walk func(t types.Type) string
	walk = func(t types.Type) string {
		if t == nil || seen[t] {
			return ""
		}
		seen[t] = true
		t = types.Unalias(t)
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Name() == "wire" && noCopyNames[obj.Name()] {
				return obj.Name()
			}
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if name := walk(u.Field(i).Type()); name != "" {
					return name
				}
			}
		case *types.Array:
			return walk(u.Elem())
		}
		return ""
	}
	return walk(t)
}
