package sealcopy_test

import (
	"testing"

	"triadtime/internal/analysis/analysistest"
	"triadtime/internal/analysis/sealcopy"
)

func TestSealcopy(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a testdata module; skipped in -short")
	}
	analysistest.Run(t, "testdata", sealcopy.Analyzer)
}
