module sealcopydata

go 1.24
