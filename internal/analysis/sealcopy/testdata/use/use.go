// Package use copies sealer/opener values in the ways the analyzer
// must catch, plus the pointer idioms it must allow.
package use

import "sealcopydata/wire"

// endpoint embeds a Sealer by value: copying the endpoint forks the
// nonce counter just as surely as copying the Sealer itself.
type endpoint struct {
	s     wire.Sealer
	ident uint32
}

// Copies duplicates live sealer state through deref, index, and range.
func Copies(p *wire.Sealer, list []*wire.Sealer) uint64 {
	v := *p // want `copies a Sealer by value`
	n := v.Seal()
	for _, s := range list {
		n += s.Seal()
	}
	return n
}

// CopyFromSlice copies an element out of a value slice.
func CopyFromSlice(list []wire.Sealer) uint64 {
	w := list[0] // want `copies a Sealer by value`
	return w.Seal()
}

// RangeCopies copies each element into the loop variable.
func RangeCopies(list []wire.Sealer) uint64 {
	var n uint64
	for _, s := range list { // want `range copies a Sealer element`
		n += s.Seal()
	}
	return n
}

// CopyStruct copies a struct that contains a Sealer.
func CopyStruct(e *endpoint) uint64 {
	d := *e // want `copies a Sealer by value`
	return d.s.Seal()
}

// ByValueParam declares a value parameter: a copy at every call site.
func ByValueParam(s wire.Sealer) uint64 { // want `declares a by-value Sealer`
	return s.Seal()
}

// ByValueResult declares a value result: a copy at every return.
func ByValueResult() wire.Sealer { // want `declares a by-value Sealer`
	return *wire.NewSealer() // want `copies a Sealer by value`
}

// OpenerParam covers the second guarded type.
func OpenerParam(o wire.Opener) bool { // want `declares a by-value Opener`
	return o.Accept(1, 1)
}

// Fine shows the sanctioned pointer flow end to end.
func Fine(p *wire.Sealer) (*wire.Sealer, uint64) {
	q := p
	o := wire.NewOpener()
	if !o.Accept(1, q.Seal()) {
		return nil, 0
	}
	return q, q.Seal()
}
