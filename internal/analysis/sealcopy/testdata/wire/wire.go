// Package wire mimics the real wire package's stateful crypto types:
// a Sealer with a nonce counter and an Opener with replay windows.
package wire

// Sealer consumes one nonce counter value per seal.
type Sealer struct {
	counter uint64
}

// NewSealer returns a fresh sealer.
func NewSealer() *Sealer { return &Sealer{} }

// Seal consumes a nonce.
func (s *Sealer) Seal() uint64 {
	s.counter++
	return s.counter
}

// Opener tracks per-sender replay windows.
type Opener struct {
	windows map[uint32]uint64
}

// NewOpener returns a fresh opener.
func NewOpener() *Opener { return &Opener{windows: map[uint32]uint64{}} }

// Accept records a counter.
func (o *Opener) Accept(sender uint32, counter uint64) bool {
	if o.windows[sender] >= counter {
		return false
	}
	o.windows[sender] = counter
	return true
}
