// Package simdet defines the determinism analyzer: every figure and
// table in the reproduction depends on the discrete-event simulation
// being bit-for-bit deterministic across runs and platforms, so the
// packages that execute under the simulated clock must never consult
// a wall clock, the global math/rand generator, spawn goroutines, or
// iterate a map in an order-sensitive position.
package simdet

import (
	"go/ast"
	"go/types"

	"triadtime/internal/analysis"
)

// deterministicPkgs names the package directories (import-path last
// elements) that must stay deterministic: the simulation engine and
// everything that runs on it, plus the metrics/trace layers whose
// output feeds golden traces and figures.
var deterministicPkgs = map[string]bool{
	"sim":        true,
	"simnet":     true,
	"simtime":    true,
	"engine":     true,
	"core":       true,
	"resilient":  true,
	"experiment": true,
	"trace":      true,
	"metrics":    true,
}

// bannedTimeFuncs are the wall-clock entry points of package time.
// Using the time package's types (Duration, Time arithmetic) is fine;
// asking the host for "now" or scheduling against it is not.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRandFuncs are the math/rand constructors that produce a
// seeded, locally-owned generator — the only sanctioned use. Every
// other package-level function draws from the global generator, which
// is seeded per-process and shared across goroutines.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true,
	"NewChaCha8": true, "NewZipf": true,
}

// Analyzer is the simdet analysis.
var Analyzer = &analysis.Analyzer{
	Name: "simdet",
	Doc: "forbids nondeterminism sources (wall clocks, global math/rand, " +
		"goroutines, map iteration) in the deterministic simulation packages",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !deterministicPkgs[analysis.PathBase(pass.PkgPath)] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine started in deterministic package %s; all concurrency must be modelled as scheduler events", analysis.PathBase(pass.PkgPath))
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCall flags wall-clock and global-generator calls.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Only package-level functions: methods (e.g. time.Time.Sub,
	// rand.Rand.Intn on an owned generator) are deterministic given
	// deterministic inputs.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedTimeFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "nondeterministic time.%s in deterministic package; use the simulated clock (simtime/sim.Scheduler)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRandFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "global math/rand generator (rand.%s) in deterministic package; draw from a seeded *rand.Rand (sim.RNG)", fn.Name())
		}
	}
}

// checkRange flags iteration over maps: Go randomizes map order per
// run, so any map range in a deterministic package either leaks
// nondeterminism into traces and figures or needs a
// //triad:nolint:simdet directive arguing order-independence.
func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); ok {
		pass.Reportf(rng.Pos(), "iteration over unordered map in deterministic package; iterate a sorted key slice (or suppress with a //triad:nolint:simdet order-independence argument)")
	}
}
