package simdet_test

import (
	"testing"

	"triadtime/internal/analysis/analysistest"
	"triadtime/internal/analysis/simdet"
)

func TestSimdet(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a testdata module; skipped in -short")
	}
	analysistest.Run(t, "testdata", simdet.Analyzer)
}
