module simdetdata

go 1.24
