// Package liveok is outside the deterministic scope: wall clocks,
// goroutines, and map iteration are legitimate here.
package liveok

import "time"

func Wall(ch chan int64) int64 {
	go func() { ch <- 1 }()
	return time.Now().UnixNano()
}

func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
