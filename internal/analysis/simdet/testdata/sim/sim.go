// Package sim is a deterministic-scope testdata package: its import
// path ends in "sim", so simdet applies.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

// Nondeterministic exercises every banned construct.
func Nondeterministic(ch chan int) int64 {
	go forward(ch, 1)            // want `goroutine started in deterministic package`
	time.Sleep(time.Millisecond) // want `nondeterministic time\.Sleep`
	n := time.Now().UnixNano()   // want `nondeterministic time\.Now`
	n += int64(rand.Intn(4))     // want `global math/rand generator \(rand\.Intn\)`
	return n
}

func forward(ch chan int, v int) { ch <- v }

// MapOrder iterates a map: flagged even though the keys are sorted
// afterwards — the sorted-slice idiom should not range the map without
// arguing order-independence.
func MapOrder(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `iteration over unordered map`
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Deterministic shows the sanctioned forms: an owned seeded generator
// and plain duration arithmetic.
func Deterministic(seed int64) int64 {
	r := rand.New(rand.NewSource(seed))
	d := 3 * time.Second
	return r.Int63() + int64(d)
}

// Sum demonstrates the suppression directive for an order-independent
// aggregation.
func Sum(m map[string]int) int {
	total := 0
	//triad:nolint:simdet commutative sum, order cannot affect the result
	for _, v := range m {
		total += v
	}
	return total
}
