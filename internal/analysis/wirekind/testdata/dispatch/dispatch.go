// Package dispatch switches over wire.Kind from outside the wire
// package — the engine's position.
package dispatch

import "wirekinddata/wire"

// Missing drops KindC and the whole commit family on the floor: the
// bug class the analyzer exists to catch, every absent kind named.
func Missing(k wire.Kind) int {
	switch k { // want `does not handle KindC, KindLock, KindStatus, KindUnlock`
	case wire.KindA:
		return 1
	case wire.KindB:
		return 2
	}
	return 0
}

// PartialCommit adopted the first new kind but not its siblings: a
// half-finished migration is still a diagnostic.
func PartialCommit(k wire.Kind) int {
	switch k { // want `does not handle KindStatus, KindUnlock`
	case wire.KindA, wire.KindB, wire.KindC, wire.KindLock:
		return 1
	}
	return 0
}

// DropFamily consciously ignores the commit family in one clause — the
// engine's posture for serving-layer kinds on the protocol port: no
// diagnostic, because the drop is visible in the dispatch.
func DropFamily(k wire.Kind) int {
	switch k {
	case wire.KindA, wire.KindB, wire.KindC:
		return 1
	case wire.KindLock, wire.KindUnlock, wire.KindStatus:
		// Another subsystem's traffic: deliberately not dispatched.
		return 0
	}
	return -1
}

// VerdictMissing drops VerdictFenced: every wire enum is checked on
// its own, not just Kind.
func VerdictMissing(v wire.Verdict) int {
	switch v { // want `does not handle VerdictFenced`
	case wire.VerdictOK, wire.VerdictSealed:
		return 1
	}
	return 0
}

// Defaulted consciously handles the rest: fine.
func Defaulted(k wire.Kind) int {
	switch k {
	case wire.KindA:
		return 1
	default:
		return 0
	}
}

// MultiCase covers kinds in one clause: fine.
func MultiCase(k wire.Kind) int {
	switch k {
	case wire.KindA, wire.KindB, wire.KindC,
		wire.KindLock, wire.KindUnlock, wire.KindStatus:
		return 1
	}
	return 0
}

// NonConstant compares against a runtime value: coverage is not
// statically decidable, so the analyzer stays silent.
func NonConstant(k, other wire.Kind) int {
	switch k {
	case other:
		return 1
	}
	return 0
}

// NotAnEnum switches over a plain int: out of scope.
func NotAnEnum(v int) int {
	switch v {
	case 1:
		return 1
	}
	return 0
}
