// Package dispatch switches over wire.Kind from outside the wire
// package — the engine's position.
package dispatch

import "wirekinddata/wire"

// Missing drops KindC on the floor: the bug class the analyzer exists
// to catch.
func Missing(k wire.Kind) int {
	switch k { // want `does not handle KindC`
	case wire.KindA:
		return 1
	case wire.KindB:
		return 2
	}
	return 0
}

// Defaulted consciously handles the rest: fine.
func Defaulted(k wire.Kind) int {
	switch k {
	case wire.KindA:
		return 1
	default:
		return 0
	}
}

// MultiCase covers kinds in one clause: fine.
func MultiCase(k wire.Kind) int {
	switch k {
	case wire.KindA, wire.KindB, wire.KindC:
		return 1
	}
	return 0
}

// NonConstant compares against a runtime value: coverage is not
// statically decidable, so the analyzer stays silent.
func NonConstant(k, other wire.Kind) int {
	switch k {
	case other:
		return 1
	}
	return 0
}

// NotAnEnum switches over a plain int: out of scope.
func NotAnEnum(v int) int {
	switch v {
	case 1:
		return 1
	}
	return 0
}
