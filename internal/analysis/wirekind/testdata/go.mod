module wirekinddata

go 1.24
