// Package wire mimics the repo's wire package: an enum-like message
// kind whose switches the wirekind analyzer checks for exhaustiveness.
package wire

// Kind discriminates messages.
type Kind uint8

// Message kinds.
const (
	KindA Kind = iota + 1
	KindB
	KindC
	// KindCAlias shares KindC's value: a covered value counts once.
	KindCAlias = KindC
)

// The commit-family extension (the kinds-8-10 analogue): constants
// appended to the enum in a later const block, after dispatch sites
// were already written — exactly the change the analyzer must surface
// at every switch that predates it.
const (
	KindLock Kind = iota + 4
	KindUnlock
	KindStatus
)

// Verdict mimics the commit response verdict: a second integer enum in
// the same package, checked independently of Kind.
type Verdict uint8

// Verdicts.
const (
	VerdictOK Verdict = iota + 1
	VerdictSealed
	VerdictFenced
)

// Name is exhaustive without a default: every kind has a case.
func Name(k Kind) string {
	switch k {
	case KindA:
		return "a"
	case KindB:
		return "b"
	case KindC:
		return "c"
	case KindLock:
		return "lock"
	case KindUnlock:
		return "unlock"
	case KindStatus:
		return "status"
	}
	return "?"
}
