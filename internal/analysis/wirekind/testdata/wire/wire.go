// Package wire mimics the repo's wire package: an enum-like message
// kind whose switches the wirekind analyzer checks for exhaustiveness.
package wire

// Kind discriminates messages.
type Kind uint8

// Message kinds.
const (
	KindA Kind = iota + 1
	KindB
	KindC
	// KindCAlias shares KindC's value: a covered value counts once.
	KindCAlias = KindC
)

// Name is exhaustive without a default: every kind has a case.
func Name(k Kind) string {
	switch k {
	case KindA:
		return "a"
	case KindB:
		return "b"
	case KindC:
		return "c"
	}
	return "?"
}
