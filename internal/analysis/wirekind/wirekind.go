// Package wirekind defines the wire-dispatch exhaustiveness analyzer:
// every switch over a wire-package enum (message Kind, StampStatus)
// must either handle all declared constants or carry an explicit
// default clause. TriHaRd-style resilience analysis shows how a
// silently dropped message class invalidates protocol guarantees — a
// newly added kind must fail vet everywhere it is not consciously
// dispatched or consciously ignored.
package wirekind

import (
	"go/ast"
	"go/types"
	"strings"

	"triadtime/internal/analysis"
)

// Analyzer is the wirekind analysis.
var Analyzer = &analysis.Analyzer{
	Name: "wirekind",
	Doc: "requires switches over wire enums (message kinds, statuses) to " +
		"handle every declared constant or carry an explicit default",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if ok && sw.Tag != nil {
				checkSwitch(pass, sw)
			}
			return true
		})
	}
	return nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	t := types.Unalias(pass.TypesInfo.TypeOf(sw.Tag))
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	// The invariant is scoped to wire-format enums: defined integer
	// types declared in a package named "wire".
	if obj.Pkg() == nil || obj.Pkg().Name() != "wire" {
		return
	}
	if b, ok := named.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
		return
	}
	consts := enumConstants(obj.Pkg(), named)
	if len(consts) == 0 {
		return
	}

	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			return // explicit default: the switch consciously handles the rest
		}
		for _, expr := range clause.List {
			tv, ok := pass.TypesInfo.Types[expr]
			if !ok || tv.Value == nil {
				return // non-constant case: coverage is not statically decidable
			}
			covered[tv.Value.ExactString()] = true
		}
	}

	var missing []string
	for _, c := range consts {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(), "switch over %s.%s does not handle %s and has no default clause; dispatch or explicitly drop every kind",
			obj.Pkg().Name(), obj.Name(), strings.Join(missing, ", "))
	}
}

// enumConstants collects the constants of type t declared at package
// scope, deduplicated by value (aliased constants count as one case),
// in declaration-name order (Scope.Names is sorted, so diagnostics are
// deterministic).
func enumConstants(pkg *types.Package, t *types.Named) []*types.Const {
	var consts []*types.Const
	seen := map[string]bool{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), t) {
			continue
		}
		key := c.Val().ExactString()
		if seen[key] {
			continue
		}
		seen[key] = true
		consts = append(consts, c)
	}
	return consts
}
