package wirekind_test

import (
	"testing"

	"triadtime/internal/analysis/analysistest"
	"triadtime/internal/analysis/wirekind"
)

func TestWirekind(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a testdata module; skipped in -short")
	}
	analysistest.Run(t, "testdata", wirekind.Analyzer)
}
