package attack

import (
	"math"
	"testing"
	"time"

	"triadtime/internal/authority"
	"triadtime/internal/core"
	"triadtime/internal/enclave"
	"triadtime/internal/sim"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
	"triadtime/internal/wire"
)

const taAddr simnet.Addr = 100

func testKey() []byte {
	key := make([]byte, wire.KeySize)
	for i := range key {
		key[i] = byte(i + 3)
	}
	return key
}

func TestModeString(t *testing.T) {
	if ModeFPlus.String() != "F+" || ModeFMinus.String() != "F-" || Mode(9).String() != "Mode(?)" {
		t.Error("Mode.String misbehaves")
	}
}

func TestDelayClassification(t *testing.T) {
	tests := []struct {
		name        string
		mode        Mode
		hold        time.Duration
		wantDelayed bool
	}{
		{"F+ delays high-s", ModeFPlus, time.Second, true},
		{"F+ passes low-s", ModeFPlus, time.Millisecond, false},
		{"F- delays low-s", ModeFMinus, time.Millisecond, true},
		{"F- passes high-s", ModeFMinus, time.Second, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := NewDelay(DelayConfig{Victim: 3, Authority: taAddr, Mode: tt.mode})
			req := simnet.Packet{From: 3, To: taAddr}
			resp := simnet.Packet{From: taAddr, To: 3}
			v := d.Process(simtime.Epoch, req)
			if v.Drop || v.ExtraDelay != 0 {
				t.Fatal("requests must pass untouched")
			}
			v = d.Process(simtime.Epoch.Add(tt.hold), resp)
			if got := v.ExtraDelay > 0; got != tt.wantDelayed {
				t.Errorf("delayed = %v, want %v (hold %v)", got, tt.wantDelayed, tt.hold)
			}
			if tt.wantDelayed {
				if v.ExtraDelay != 100*time.Millisecond {
					t.Errorf("ExtraDelay = %v, want default 100ms", v.ExtraDelay)
				}
				if d.Delayed() != 1 || d.Passed() != 0 {
					t.Errorf("counters = %d/%d", d.Delayed(), d.Passed())
				}
			} else if d.Passed() != 1 {
				t.Errorf("Passed = %d, want 1", d.Passed())
			}
		})
	}
}

func TestDelayIgnoresUnrelatedTraffic(t *testing.T) {
	d := NewDelay(DelayConfig{Victim: 3, Authority: taAddr, Mode: ModeFMinus})
	for _, pkt := range []simnet.Packet{
		{From: 1, To: 2},      // peer traffic
		{From: 1, To: taAddr}, // another node's TA request
		{From: taAddr, To: 1}, // another node's TA response
	} {
		if v := d.Process(simtime.Epoch, pkt); v.Drop || v.ExtraDelay != 0 {
			t.Errorf("unrelated packet %+v touched", pkt)
		}
	}
	if d.Delayed() != 0 {
		t.Error("unrelated traffic counted as delayed")
	}
}

func TestDelayResponseWithoutRequestTreatedAsLowHold(t *testing.T) {
	d := NewDelay(DelayConfig{Victim: 3, Authority: taAddr, Mode: ModeFMinus})
	v := d.Process(simtime.FromSeconds(5), simnet.Packet{From: taAddr, To: 3})
	if v.ExtraDelay == 0 {
		t.Error("F- should delay an unmatched (hold≈0) response")
	}
}

// attackRig: one victim node + TA, with an optional delay attack.
func attackRig(t *testing.T, mode Mode) (*sim.Scheduler, *core.Node, *Delay) {
	t.Helper()
	sched := sim.NewScheduler()
	rng := sim.NewRNG(77)
	network := simnet.New(sched, rng.Fork(0), simnet.Link{Base: 100 * time.Microsecond})
	if _, err := authority.NewSimBinding(sched, network, testKey(), taAddr); err != nil {
		t.Fatal(err)
	}
	var box *Delay
	if mode != 0 {
		box = NewDelay(DelayConfig{Victim: 3, Authority: taAddr, Mode: mode})
		network.AttachMiddlebox(box)
	}
	p := enclave.NewSimPlatform(sched, rng.Fork(1), network, enclave.SimConfig{
		Addr: 3,
		TSC:  simtime.NewTSC(simtime.NominalTSCHz, 0),
	})
	node, err := core.NewNode(p, core.Config{Key: testKey(), Addr: 3, Authority: taAddr})
	if err != nil {
		t.Fatal(err)
	}
	node.Start()
	return sched, node, box
}

func TestFPlusInflatesCalibratedRate(t *testing.T) {
	sched, node, box := attackRig(t, ModeFPlus)
	sched.RunUntil(simtime.FromSeconds(60))
	if node.State() != core.StateOK {
		t.Fatalf("state = %v", node.State())
	}
	// F+ with 100ms on 1s sleeps: F_calib ≈ 1.1 * F_TSC (paper: 2900MHz
	// -> 3191MHz).
	ratio := node.FCalib() / simtime.NominalTSCHz
	if math.Abs(ratio-1.1) > 0.002 {
		t.Errorf("FCalib/F_TSC = %v, want ~1.1", ratio)
	}
	if box.Delayed() == 0 {
		t.Error("attack never delayed a response")
	}
	// Perceived clock runs slow: ~-91ms per reference second.
	start, _ := node.ClockReading()
	startRef := sched.Now()
	sched.RunUntil(startRef.Add(10 * time.Second))
	end, _ := node.ClockReading()
	rate := float64(end-start) / float64(sched.Now().Sub(startRef))
	if math.Abs(rate-1/1.1) > 0.002 {
		t.Errorf("clock rate = %v, want ~%v (-91ms/s)", rate, 1/1.1)
	}
}

func TestFMinusDeflatesCalibratedRate(t *testing.T) {
	sched, node, _ := attackRig(t, ModeFMinus)
	sched.RunUntil(simtime.FromSeconds(60))
	if node.State() != core.StateOK {
		t.Fatalf("state = %v", node.State())
	}
	// F- with 100ms on 0s sleeps: F_calib ≈ 0.9 * F_TSC (paper: 2610MHz).
	ratio := node.FCalib() / simtime.NominalTSCHz
	if math.Abs(ratio-0.9) > 0.002 {
		t.Errorf("FCalib/F_TSC = %v, want ~0.9", ratio)
	}
	// Perceived clock runs fast: ~+111ms per reference second.
	start, _ := node.ClockReading()
	startRef := sched.Now()
	sched.RunUntil(startRef.Add(10 * time.Second))
	end, _ := node.ClockReading()
	rate := float64(end-start) / float64(sched.Now().Sub(startRef))
	if math.Abs(rate-1/0.9) > 0.002 {
		t.Errorf("clock rate = %v, want ~%v (+111ms/s)", rate, 1/0.9)
	}
}

func TestNoAttackBaseline(t *testing.T) {
	sched, node, _ := attackRig(t, 0)
	sched.RunUntil(simtime.FromSeconds(60))
	ratio := node.FCalib() / simtime.NominalTSCHz
	if math.Abs(ratio-1) > 1e-5 {
		t.Errorf("FCalib/F_TSC = %v without attack, want ~1", ratio)
	}
}

func TestTSCAttackScheduling(t *testing.T) {
	sched := sim.NewScheduler()
	tsc := simtime.NewTSC(1e9, 0)
	a := NewTSCAttack(sched, tsc)
	a.ScaleAt(simtime.FromSeconds(1), 2.0)
	a.JumpAt(simtime.FromSeconds(2), 500)
	sched.RunUntil(simtime.FromSeconds(3))
	// 1s at 1GHz + 1s at 2GHz + 500 jump + 1s at 2GHz.
	want := uint64(1e9 + 2e9 + 500 + 2e9)
	if got := tsc.ReadAt(simtime.FromSeconds(3)); got != want {
		t.Errorf("TSC = %d, want %d", got, want)
	}
}

// TestTheilSenAloneDoesNotStopClassDelays documents why the hardened
// protocol abandons sleep-based regression instead of merely swapping
// in a robust estimator: the F+/F- attacks delay an entire timing
// class, not a minority of samples, so the median of pairwise slopes
// is corrupted just like OLS.
func TestTheilSenAloneDoesNotStopClassDelays(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(88)
	network := simnet.New(sched, rng.Fork(0), simnet.Link{Base: 100 * time.Microsecond})
	if _, err := authority.NewSimBinding(sched, network, testKey(), taAddr); err != nil {
		t.Fatal(err)
	}
	network.AttachMiddlebox(NewDelay(DelayConfig{Victim: 3, Authority: taAddr, Mode: ModeFPlus}))
	p := enclave.NewSimPlatform(sched, rng.Fork(1), network, enclave.SimConfig{
		Addr: 3,
		TSC:  simtime.NewTSC(simtime.NominalTSCHz, 0),
	})
	node, err := core.NewNode(p, core.Config{
		Key:       testKey(),
		Addr:      3,
		Authority: taAddr,
		// A richer sleep grid plus the robust estimator: still falls.
		CalibSleeps:          []time.Duration{0, 250 * time.Millisecond, 500 * time.Millisecond, 750 * time.Millisecond, time.Second},
		CalibSamplesPerSleep: 2,
		Regression:           core.RegressionTheilSen,
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Start()
	sched.RunUntil(simtime.FromSeconds(120))
	if node.FCalib() == 0 {
		t.Fatal("calibration never completed")
	}
	ratio := node.FCalib() / simtime.NominalTSCHz
	if ratio < 1.02 {
		t.Errorf("TheilSen ratio = %v; expected the class-delay attack to still corrupt the slope visibly", ratio)
	}
}

// TestRateMonitorsDoNotStopCalibrationAttacks verifies the paper's
// §IV-A.1 conclusion verbatim: even a monitoring stack that locks the
// attacker out of manipulating the TSC rate and offset "is not
// sufficient to protect against an attacker manipulating the TEE's
// time perception: the attacker can still impact what duration of real
// elapsed time is equated to a number of TSC increments" — the F+/F-
// attacks corrupt calibration without ever touching the TSC.
func TestRateMonitorsDoNotStopCalibrationAttacks(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(99)
	network := simnet.New(sched, rng.Fork(0), simnet.Link{Base: 100 * time.Microsecond})
	if _, err := authority.NewSimBinding(sched, network, testKey(), taAddr); err != nil {
		t.Fatal(err)
	}
	network.AttachMiddlebox(NewDelay(DelayConfig{Victim: 3, Authority: taAddr, Mode: ModeFPlus}))
	p := enclave.NewSimPlatform(sched, rng.Fork(1), network, enclave.SimConfig{
		Addr: 3,
		TSC:  simtime.NewTSC(simtime.NominalTSCHz, 0),
	})
	discrepancies := 0
	node, err := core.NewNode(p, core.Config{
		Key:              testKey(),
		Addr:             3,
		Authority:        taAddr,
		EnableMemMonitor: true, // full dual monitoring, fully armed
		Events: core.Events{
			Discrepancy: func(float64) { discrepancies++ },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Start()
	sched.RunUntil(simtime.FromSeconds(120))

	if discrepancies != 0 {
		t.Errorf("monitors fired %d times; the F+ attack never touches the TSC", discrepancies)
	}
	ratio := node.FCalib() / simtime.NominalTSCHz
	if math.Abs(ratio-1.1) > 0.005 {
		t.Errorf("F_calib ratio = %v, want ~1.1: the attack must succeed despite dual monitoring", ratio)
	}
}
