// Package attack implements the paper's attacks on Triad.
//
// The F+ and F- attacks (paper §III-C) target the calibration protocol
// from the network: the attacker controls the compromised machine's OS,
// so it can delay datagrams between its local TEE and the Time
// Authority. Messages are encrypted, so the attacker cannot read the
// requested sleep s — but it can measure how long the TA held each
// response and classify requests as "high-s" or "low-s" from timing
// alone:
//
//   - F+ delays high-s responses, steepening the regression so the node
//     overestimates its TSC rate (F_calib > F_TSC) and its perceived
//     clock runs slow;
//   - F- delays low-s responses, flattening the regression
//     (F_calib < F_TSC) so the perceived clock runs fast — the variant
//     that propagates to honest peers.
package attack

import (
	"time"

	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
)

// Mode selects which calibration samples a delay attack skews.
type Mode int

// Attack modes.
const (
	// ModeFPlus delays high-sleep responses: F_calib inflated, clock
	// slowed (paper Figures 4 and 5).
	ModeFPlus Mode = iota + 1
	// ModeFMinus delays low-sleep responses: F_calib deflated, clock
	// quickened, drift propagates to peers (paper Figure 6).
	ModeFMinus
)

// String names the mode as in the paper.
func (m Mode) String() string {
	switch m {
	case ModeFPlus:
		return "F+"
	case ModeFMinus:
		return "F-"
	default:
		return "Mode(?)"
	}
}

// DelayConfig parameterizes a calibration delay attack.
type DelayConfig struct {
	// Victim is the compromised node whose TA traffic the attacker
	// controls.
	Victim simnet.Addr
	// Authority is the Time Authority's address.
	Authority simnet.Addr
	// Mode selects F+ or F-.
	Mode Mode
	// Extra is the delay added to targeted responses. The paper uses
	// 100ms. Default: 100ms.
	Extra time.Duration
	// Threshold splits "low-s" from "high-s" by observed TA hold time.
	// With the paper's 0s/1s calibration sleeps, anything around 500ms
	// works. Default: 500ms.
	Threshold time.Duration
}

// Delay is the attacking middlebox. It watches the victim's TA traffic,
// estimates each response's hold time from request/response timing (the
// only side channel the encryption leaves open), and delays the
// responses its mode targets.
type Delay struct {
	cfg DelayConfig

	// Outstanding victim->TA request send times, oldest first. The node
	// issues calibration requests one at a time, so this queue is
	// effectively depth one; the queue handles retries gracefully.
	outstanding []simtime.Instant

	delayed int
	passed  int
}

var _ simnet.Middlebox = (*Delay)(nil)

// NewDelay creates the attack middlebox. Attach it to the network with
// AttachMiddlebox.
func NewDelay(cfg DelayConfig) *Delay {
	if cfg.Extra == 0 {
		cfg.Extra = 100 * time.Millisecond
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 500 * time.Millisecond
	}
	return &Delay{cfg: cfg}
}

// Delayed reports how many responses the attack has delayed.
func (d *Delay) Delayed() int { return d.delayed }

// Passed reports how many victim-TA responses passed undelayed.
func (d *Delay) Passed() int { return d.passed }

// Process implements simnet.Middlebox.
func (d *Delay) Process(now simtime.Instant, pkt simnet.Packet) simnet.Verdict {
	switch {
	case pkt.From == d.cfg.Victim && pkt.To == d.cfg.Authority:
		// Request leaving the compromised machine: remember when.
		d.outstanding = append(d.outstanding, now)
		return simnet.Verdict{}
	case pkt.From == d.cfg.Authority && pkt.To == d.cfg.Victim:
		hold := d.estimateHold(now)
		target := hold >= d.cfg.Threshold
		if d.cfg.Mode == ModeFMinus {
			target = !target
		}
		if target {
			d.delayed++
			return simnet.Verdict{ExtraDelay: d.cfg.Extra}
		}
		d.passed++
		return simnet.Verdict{}
	default:
		return simnet.Verdict{}
	}
}

// estimateHold matches this response to the oldest outstanding request
// and returns the TA-side hold estimate (request-to-response gap minus
// nothing: the attacker knows its LAN RTT is negligible against the
// 0s/1s split).
func (d *Delay) estimateHold(now simtime.Instant) time.Duration {
	if len(d.outstanding) == 0 {
		// Response with no observed request (e.g. attacker attached
		// mid-exchange): treat as low hold.
		return 0
	}
	sent := d.outstanding[0]
	d.outstanding = d.outstanding[1:]
	return now.Sub(sent)
}
