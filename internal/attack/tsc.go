package attack

import (
	"triadtime/internal/sim"
	"triadtime/internal/simtime"
)

// TSCAttack scripts hypervisor-level TSC manipulations against one
// node's guest TSC: rate scaling and value jumps at chosen times. These
// are the manipulations Triad's INC monitoring is designed to catch
// (paper §III-B); the experiment harness uses this to exercise the
// detection path.
type TSCAttack struct {
	sched *sim.Scheduler
	tsc   *simtime.TSC
}

// NewTSCAttack targets the given TSC on the scheduler.
func NewTSCAttack(sched *sim.Scheduler, tsc *simtime.TSC) *TSCAttack {
	return &TSCAttack{sched: sched, tsc: tsc}
}

// ScaleAt schedules a guest-TSC rate scaling at reference time at.
func (a *TSCAttack) ScaleAt(at simtime.Instant, scale float64) {
	a.sched.At(at, func() { a.tsc.SetScale(scale, at) })
}

// JumpAt schedules a guest-TSC value jump of delta ticks at reference
// time at (negative = back in time).
func (a *TSCAttack) JumpAt(at simtime.Instant, delta int64) {
	a.sched.At(at, func() { a.tsc.Jump(delta, at) })
}
