// Package authority implements Triad's Time Authority (TA): the root of
// trust for reference time, standing in for an NTP-grade time server.
//
// The TA's contract is the one the paper's calibration protocol relies
// on: upon a TimeRequest carrying a requested sleep s, wait s, then
// respond with the reference time read at send time. Requests with s=0
// are answered immediately. All traffic is AES-256-GCM protected, so a
// network attacker can delay responses but neither read s nor forge
// timestamps.
package authority

import (
	"fmt"
	"sync"
	"time"

	"triadtime/internal/wire"
)

// MaxSleep bounds the sleep a client may request, protecting the TA
// from resource-exhaustion via absurd wait times.
const MaxSleep = 10 * time.Second

// Clock supplies the TA's reference time in nanoseconds.
type Clock func() int64

// Authority is the transport-independent TA logic. Bindings (SimBinding
// here, the UDP server in server.go) feed it datagrams and schedule its
// delayed replies. It is safe for concurrent use: the live server
// processes requests and fires delayed replies on separate goroutines
// while operators read the served counters.
type Authority struct {
	mu     sync.Mutex
	opener *wire.Opener
	sealer *wire.Sealer
	clock  Clock
	served map[uint32]int
	// openBuf is the request-side plaintext scratch (guarded by mu, like
	// the opener itself). Replies still seal into fresh buffers: a reply
	// builder runs after its sleep, possibly concurrently with later
	// builders, and the returned bytes outlive the lock.
	openBuf []byte
}

// New creates a Time Authority using the cluster's pre-shared key, the
// TA's own wire sender ID, and a reference clock.
func New(key []byte, senderID uint32, clock Clock) (*Authority, error) {
	opener, err := wire.NewOpener(key)
	if err != nil {
		return nil, fmt.Errorf("authority: %w", err)
	}
	sealer, err := wire.NewSealer(key, senderID)
	if err != nil {
		return nil, fmt.Errorf("authority: %w", err)
	}
	return &Authority{
		opener:  opener,
		sealer:  sealer,
		clock:   clock,
		served:  make(map[uint32]int),
		openBuf: make([]byte, 0, wire.MarshaledSize),
	}, nil
}

// Process authenticates and decodes one incoming datagram. For a valid
// TimeRequest it returns the sleep to observe (clamped to MaxSleep) and
// a reply builder that must be invoked after that sleep: the builder
// reads the clock at call time and seals the response. For anything
// else (tampered, replayed, or non-request messages) ok is false and
// the datagram is dropped, mirroring a hardened server's behaviour.
func (a *Authority) Process(datagram []byte) (sleep time.Duration, reply func() []byte, ok bool) {
	a.mu.Lock()
	msg, sender, err := a.opener.OpenInto(a.openBuf, datagram)
	a.mu.Unlock()
	if err != nil || msg.Kind != wire.KindTimeRequest {
		return 0, nil, false
	}
	sleep = msg.Sleep
	if sleep < 0 {
		sleep = 0
	}
	if sleep > MaxSleep {
		sleep = MaxSleep
	}
	seq := msg.Seq
	reply = func() []byte {
		a.mu.Lock()
		a.served[sender]++
		sealed := a.sealer.Seal(wire.Message{
			Kind:      wire.KindTimeResponse,
			Seq:       seq,
			TimeNanos: a.clock(),
		})
		a.mu.Unlock()
		return sealed
	}
	return sleep, reply, true
}

// Served reports how many responses have been sent to the given sender,
// the quantity Figure 2b tracks per node.
func (a *Authority) Served(sender uint32) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.served[sender]
}

// TotalServed reports the total number of responses sent.
func (a *Authority) TotalServed() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := 0
	for _, n := range a.served {
		total += n
	}
	return total
}
