package authority

import (
	"net"
	"testing"
	"time"

	"triadtime/internal/sim"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
	"triadtime/internal/wire"
)

func testKey() []byte {
	key := make([]byte, wire.KeySize)
	for i := range key {
		key[i] = byte(i)
	}
	return key
}

func TestProcessTimeRequest(t *testing.T) {
	now := int64(1000)
	auth, err := New(testKey(), 9, func() int64 { return now })
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sealer, _ := wire.NewSealer(testKey(), 1)
	opener, _ := wire.NewOpener(testKey())

	req := sealer.Seal(wire.Message{Kind: wire.KindTimeRequest, Seq: 42, Sleep: time.Second})
	sleep, reply, ok := auth.Process(req)
	if !ok {
		t.Fatal("valid request rejected")
	}
	if sleep != time.Second {
		t.Errorf("sleep = %v, want 1s", sleep)
	}
	now = 2000 // clock advances while the TA sleeps
	msg, sender, err := opener.Open(reply())
	if err != nil {
		t.Fatalf("Open reply: %v", err)
	}
	if sender != 9 {
		t.Errorf("reply sender = %d, want 9", sender)
	}
	if msg.Kind != wire.KindTimeResponse || msg.Seq != 42 {
		t.Errorf("reply = %+v", msg)
	}
	if msg.TimeNanos != 2000 {
		t.Errorf("TimeNanos = %d, want clock at send time (2000)", msg.TimeNanos)
	}
	if auth.Served(1) != 1 || auth.TotalServed() != 1 {
		t.Errorf("served counts wrong: %d/%d", auth.Served(1), auth.TotalServed())
	}
}

func TestProcessClampsSleep(t *testing.T) {
	auth, _ := New(testKey(), 9, func() int64 { return 0 })
	sealer, _ := wire.NewSealer(testKey(), 1)
	req := sealer.Seal(wire.Message{Kind: wire.KindTimeRequest, Seq: 1, Sleep: time.Hour})
	sleep, _, ok := auth.Process(req)
	if !ok || sleep != MaxSleep {
		t.Errorf("sleep = %v ok=%v, want clamp to %v", sleep, ok, MaxSleep)
	}
	req = sealer.Seal(wire.Message{Kind: wire.KindTimeRequest, Seq: 2, Sleep: -time.Second})
	sleep, _, ok = auth.Process(req)
	if !ok || sleep != 0 {
		t.Errorf("negative sleep = %v ok=%v, want 0", sleep, ok)
	}
}

func TestProcessRejectsGarbageReplayAndWrongKind(t *testing.T) {
	auth, _ := New(testKey(), 9, func() int64 { return 0 })
	if _, _, ok := auth.Process([]byte("garbage")); ok {
		t.Error("garbage accepted")
	}
	sealer, _ := wire.NewSealer(testKey(), 1)
	req := sealer.Seal(wire.Message{Kind: wire.KindTimeRequest, Seq: 1})
	if _, _, ok := auth.Process(req); !ok {
		t.Fatal("valid request rejected")
	}
	if _, _, ok := auth.Process(req); ok {
		t.Error("replayed request accepted")
	}
	peer := sealer.Seal(wire.Message{Kind: wire.KindPeerTimeRequest, Seq: 2})
	if _, _, ok := auth.Process(peer); ok {
		t.Error("non-TA message kind accepted")
	}
}

func TestSimBindingRoundtrip(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(1)
	network := simnet.New(sched, rng, simnet.Link{Base: time.Millisecond})
	binding, err := NewSimBinding(sched, network, testKey(), 100)
	if err != nil {
		t.Fatalf("NewSimBinding: %v", err)
	}
	if binding.Addr() != 100 {
		t.Errorf("Addr = %v", binding.Addr())
	}

	sealer, _ := wire.NewSealer(testKey(), 1)
	opener, _ := wire.NewOpener(testKey())
	var got wire.Message
	var gotAt simtime.Instant
	network.Register(1, func(pkt simnet.Packet) {
		msg, _, err := opener.Open(pkt.Payload)
		if err != nil {
			t.Errorf("Open: %v", err)
			return
		}
		got = msg
		gotAt = sched.Now()
	})
	network.Send(1, 100, sealer.Seal(wire.Message{Kind: wire.KindTimeRequest, Seq: 5, Sleep: time.Second}))
	sched.RunUntilIdle()

	// 1ms to TA + 1s sleep + 1ms back.
	want := simtime.FromDuration(time.Second + 2*time.Millisecond)
	if gotAt != want {
		t.Errorf("response at %v, want %v", gotAt, want)
	}
	if got.Seq != 5 || got.Kind != wire.KindTimeResponse {
		t.Errorf("response = %+v", got)
	}
	// TA read its clock after the sleep, before the return trip.
	wantTime := int64(simtime.FromDuration(time.Second + time.Millisecond))
	if got.TimeNanos != wantTime {
		t.Errorf("TimeNanos = %d, want %d", got.TimeNanos, wantTime)
	}
	if binding.Authority().Served(1) != 1 {
		t.Error("served count not incremented")
	}
}

func TestServerOverLocalUDP(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv, err := NewServer(conn, testKey(), 200)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	client, err := net.Dial("udp", srv.LocalAddr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()

	sealer, _ := wire.NewSealer(testKey(), 1)
	opener, _ := wire.NewOpener(testKey())
	before := time.Now().UnixNano()
	if _, err := client.Write(sealer.Seal(wire.Message{
		Kind:  wire.KindTimeRequest,
		Seq:   7,
		Sleep: 20 * time.Millisecond,
	})); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 1024)
	if err := client.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatalf("deadline: %v", err)
	}
	n, err := client.Read(buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	msg, sender, err := opener.Open(buf[:n])
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if sender != 200 || msg.Kind != wire.KindTimeResponse || msg.Seq != 7 {
		t.Errorf("response = %+v from %d", msg, sender)
	}
	elapsed := time.Duration(msg.TimeNanos - before)
	if elapsed < 20*time.Millisecond {
		t.Errorf("TA responded after %v, should have slept >= 20ms", elapsed)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("Serve: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestServerCloseCancelsPendingReplies(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv, err := NewServer(conn, testKey(), 200)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	go func() { _ = srv.Serve() }()

	client, err := net.Dial("udp", srv.LocalAddr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()
	sealer, _ := wire.NewSealer(testKey(), 1)
	if _, err := client.Write(sealer.Seal(wire.Message{
		Kind:  wire.KindTimeRequest,
		Seq:   1,
		Sleep: 5 * time.Second,
	})); err != nil {
		t.Fatalf("write: %v", err)
	}
	time.Sleep(50 * time.Millisecond) // let the server take the request
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if got := srv.Authority().TotalServed(); got != 0 {
		t.Errorf("served %d replies after Close, want 0", got)
	}
}

func TestNewRejectsBadKey(t *testing.T) {
	if _, err := New([]byte("short"), 1, func() int64 { return 0 }); err == nil {
		t.Error("bad key accepted")
	}
}
