package authority

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Server is the live UDP binding of the Time Authority, the counterpart
// of cmd/timeauthority. It answers encrypted TimeRequests over a
// net.PacketConn, observing each request's sleep before replying.
type Server struct {
	auth *Authority
	conn net.PacketConn

	mu      sync.Mutex
	timers  map[*time.Timer]struct{}
	closed  bool
	done    chan struct{}
	started bool
}

// NewServer creates a live TA bound to the given packet connection.
// The server takes ownership of conn and closes it on Close.
func NewServer(conn net.PacketConn, key []byte, senderID uint32) (*Server, error) {
	return NewServerClock(conn, key, senderID, func() int64 { return time.Now().UnixNano() })
}

// NewServerClock creates a live TA with an explicit reference clock —
// the integration tests' hook for running a deliberately lying
// authority against a quorum of honest ones.
func NewServerClock(conn net.PacketConn, key []byte, senderID uint32, clock Clock) (*Server, error) {
	auth, err := New(key, senderID, clock)
	if err != nil {
		return nil, err
	}
	return &Server{
		auth:   auth,
		conn:   conn,
		timers: make(map[*time.Timer]struct{}),
		done:   make(chan struct{}),
	}, nil
}

// Authority exposes the underlying TA (for served-count metrics).
func (s *Server) Authority() *Authority { return s.auth }

// LocalAddr reports the bound address.
func (s *Server) LocalAddr() net.Addr { return s.conn.LocalAddr() }

// Serve reads datagrams until the connection is closed. It is typically
// run in its own goroutine; it returns nil after Close.
func (s *Server) Serve() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return errors.New("authority: Serve called twice")
	}
	s.started = true
	s.mu.Unlock()
	defer close(s.done)

	buf := make([]byte, 64*1024)
	for {
		n, from, err := s.conn.ReadFrom(buf)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("authority: read: %w", err)
		}
		datagram := make([]byte, n)
		copy(datagram, buf[:n])
		s.handle(datagram, from)
	}
}

// handle processes one datagram. Replies are scheduled on timers so a
// long requested sleep never blocks the read loop. Process mutates the
// authority's replay state, so handle serializes around it.
func (s *Server) handle(datagram []byte, from net.Addr) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	sleep, reply, ok := s.auth.Process(datagram)
	s.mu.Unlock()
	if !ok {
		return
	}
	var t *time.Timer
	t = time.AfterFunc(sleep, func() {
		s.mu.Lock()
		delete(s.timers, t)
		closed := s.closed
		var out []byte
		if !closed {
			out = reply()
		}
		s.mu.Unlock()
		if closed {
			return
		}
		// Write errors are expected on shutdown races; the client
		// retries, as with any UDP time service.
		_, _ = s.conn.WriteTo(out, from)
	})
	s.mu.Lock()
	if s.closed {
		t.Stop()
	} else {
		s.timers[t] = struct{}{}
	}
	s.mu.Unlock()
}

// Close stops the server: pending delayed replies are cancelled, the
// connection is closed, and Serve returns. Close is idempotent and
// waits for the read loop (if started) to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		started := s.started
		s.mu.Unlock()
		if started {
			<-s.done
		}
		return nil
	}
	s.closed = true
	for t := range s.timers {
		t.Stop()
	}
	s.timers = make(map[*time.Timer]struct{})
	started := s.started
	s.mu.Unlock()

	err := s.conn.Close()
	if started {
		<-s.done
	}
	return err
}
