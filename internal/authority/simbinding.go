package authority

import (
	"triadtime/internal/sim"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
)

// SimBinding runs an Authority on the discrete-event simulation: it
// registers the TA's address on the simulated network, observes the
// requested sleeps by scheduling delayed replies, and reads the
// simulation's reference clock.
type SimBinding struct {
	auth  *Authority
	sched *sim.Scheduler
	net   *simnet.Network
	addr  simnet.Addr
}

// NewSimBinding creates a simulated Time Authority at addr. The
// authority's clock is the simulation's reference time; its wire sender
// ID is the address.
func NewSimBinding(sched *sim.Scheduler, net *simnet.Network, key []byte, addr simnet.Addr) (*SimBinding, error) {
	return NewSimBindingClock(sched, net, key, addr, func() int64 { return int64(sched.Now()) })
}

// NewSimBindingClock creates a simulated Time Authority with an
// explicit reference clock. Multi-authority fault scenarios use it to
// run lying authorities (fixed-offset or drifting clocks) alongside
// honest ones; sleeps are still observed on the simulation scheduler.
func NewSimBindingClock(sched *sim.Scheduler, net *simnet.Network, key []byte, addr simnet.Addr, clock Clock) (*SimBinding, error) {
	auth, err := New(key, uint32(addr), clock)
	if err != nil {
		return nil, err
	}
	b := &SimBinding{auth: auth, sched: sched, net: net, addr: addr}
	net.Register(addr, b.handle)
	return b, nil
}

// Addr reports the TA's network address.
func (b *SimBinding) Addr() simnet.Addr { return b.addr }

// Authority exposes the underlying TA (for served-count metrics).
func (b *SimBinding) Authority() *Authority { return b.auth }

func (b *SimBinding) handle(pkt simnet.Packet) {
	sleep, reply, ok := b.auth.Process(pkt.Payload)
	if !ok {
		return
	}
	b.sched.After(simtime.FromDuration(sleep), func() {
		b.net.Send(b.addr, pkt.From, reply())
	})
}
