package commit

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// anchorState is the vault's persisted identity: the fencing epoch,
// the highest trusted time the vault has vouched against, and how many
// times the vault has been reopened. It is the whole of the vault's
// durable state — tokens are self-authenticating, so the anchor is the
// only thing that must survive a crash for the T-Lease fencing
// guarantees to hold.
type anchorState struct {
	Epoch     uint64 //triad:monotonic fencing epoch; a rollback revalidates forged old-epoch tokens
	LastNanos int64  //triad:monotonic high-water mark of vouched trusted time
	Restarts  uint64 //triad:monotonic reopen counter feeding the restart audit trail
}

// Anchor file format: magic(4) + version(1) + epoch(8) + lastNanos(8)
// + restarts(8) + hmac-sha256(32). The MAC (keyed by the vault key,
// domain-separated from token MACs) makes a hand-edited or
// cross-deployment anchor indistinguishable from a torn write: both
// fail authentication and are refused, never silently reset.
const (
	anchorVersion = 1
	anchorSize    = 4 + 1 + 8 + 8 + 8 + macSize
)

var anchorMagic = [4]byte{'T', 'R', 'A', 'N'}

// anchorMACLabel domain-separates anchor MACs from token MACs under
// the shared vault key.
const anchorMACLabel = "triad-commit-anchor-v1"

// Errors surfaced by anchor persistence.
var (
	// ErrNoAnchor is returned by a Store whose location holds no anchor
	// yet (first boot).
	ErrNoAnchor = errors.New("commit: no anchor")
	// ErrAnchorCorrupt is returned when a stored anchor fails to decode
	// or authenticate — a torn write, a tampered file, or an anchor
	// written under a different key. The vault refuses to start rather
	// than guess an epoch.
	ErrAnchorCorrupt = errors.New("commit: anchor corrupt or tampered")
	// ErrAnchorFuture is returned when a loaded anchor's last-seen
	// trusted time is ahead of the trusted clock — the anchor was
	// replayed from a different timeline or the clock rolled back;
	// either way the vault's monotonic history cannot be trusted.
	ErrAnchorFuture = errors.New("commit: anchor is from the future")
)

// encodeAnchor serializes and MACs the state into b (anchorSize
// bytes). mac must be the vault's anchor HMAC instance; the caller
// holds the vault mutex. Allocation-free.
func encodeAnchor(b *[anchorSize]byte, st anchorState, key []byte) {
	copy(b[:], anchorMagic[:])
	b[4] = anchorVersion
	binary.BigEndian.PutUint64(b[5:], st.Epoch)
	binary.BigEndian.PutUint64(b[13:], uint64(st.LastNanos))
	binary.BigEndian.PutUint64(b[21:], st.Restarts)
	m := hmac.New(sha256.New, key)
	m.Write([]byte(anchorMACLabel))
	m.Write(b[:29])
	m.Sum(b[29:29])
}

// decodeAnchor parses and authenticates a stored anchor.
func decodeAnchor(b []byte, key []byte) (anchorState, error) {
	if len(b) != anchorSize || [4]byte(b[:4]) != anchorMagic || b[4] != anchorVersion {
		return anchorState{}, fmt.Errorf("%w: %d bytes", ErrAnchorCorrupt, len(b))
	}
	m := hmac.New(sha256.New, key)
	m.Write([]byte(anchorMACLabel))
	m.Write(b[:29])
	if !hmac.Equal(m.Sum(nil), b[29:]) {
		return anchorState{}, fmt.Errorf("%w: bad MAC", ErrAnchorCorrupt)
	}
	return anchorState{
		Epoch:     binary.BigEndian.Uint64(b[5:]),
		LastNanos: int64(binary.BigEndian.Uint64(b[13:])),
		Restarts:  binary.BigEndian.Uint64(b[21:]),
	}, nil
}

// Store persists the anchor. Save must be atomic and durable: a crash
// between Saves must leave the previous anchor readable, never a torn
// mix (the fencing argument depends on it).
type Store interface {
	// Load returns the stored anchor bytes, or ErrNoAnchor when the
	// location holds none yet.
	Load() ([]byte, error)
	// Save durably replaces the stored anchor.
	Save(b []byte) error
}

// FileStore persists the anchor in a single file, replaced atomically
// (write temp in the same directory, fsync, rename, fsync directory) —
// the standard crash-safe small-state idiom, so a crash mid-write
// leaves either the old anchor or the new one, never a torn file. A
// leftover temp file from a crashed write is ignored and overwritten.
type FileStore struct {
	path string
}

// NewFileStore creates a file-backed anchor store at path.
func NewFileStore(path string) *FileStore { return &FileStore{path: path} }

// Path returns the anchor file location.
func (s *FileStore) Path() string { return s.path }

// Load implements Store.
func (s *FileStore) Load() ([]byte, error) {
	b, err := os.ReadFile(s.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoAnchor
	}
	return b, err
}

// Save implements Store.
func (s *FileStore) Save(b []byte) error {
	tmp := s.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return err
	}
	// Fsync the directory so the rename itself survives a crash.
	dir, err := os.Open(filepath.Dir(s.path))
	if err != nil {
		return err
	}
	defer dir.Close()
	return dir.Sync()
}

// MemStore is an in-memory Store for simulations and tests. Safe for
// concurrent use.
type MemStore struct {
	mu  sync.Mutex
	b   []byte
	set bool
	// FailSaves, while positive, makes that many Saves fail — for
	// exercising the vault's persistence-error accounting.
	FailSaves int
}

// Load implements Store.
func (s *MemStore) Load() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.set {
		return nil, ErrNoAnchor
	}
	return append([]byte(nil), s.b...), nil
}

// Save implements Store.
func (s *MemStore) Save(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.FailSaves > 0 {
		s.FailSaves--
		return errors.New("commit: memstore save failed (injected)")
	}
	if cap(s.b) < len(b) {
		s.b = make([]byte, len(b))
	}
	s.b = s.b[:len(b)]
	copy(s.b, b)
	s.set = true
	return nil
}

// Snapshot returns a copy of the stored bytes (for tests that replay
// or roll back anchors).
func (s *MemStore) Snapshot() ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.set {
		return nil, false
	}
	return append([]byte(nil), s.b...), true
}

// Restore overwrites the stored bytes (for tests that replay or roll
// back anchors).
func (s *MemStore) Restore(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.b = append(s.b[:0], b...)
	s.set = true
}
