package commit

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestFileStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	store := NewFileStore(filepath.Join(dir, "anchor"))
	if _, err := store.Load(); !errors.Is(err, ErrNoAnchor) {
		t.Fatalf("empty store: %v", err)
	}
	clk := &scriptClock{nanos: 1000}
	v1, err := Open(Config{Clock: clk, Key: testVaultKey(), Store: store, Rand: detRand(), RollbackSlack: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	leaseTok, _ := v1.Lock(testHash(), 2000, FlagLease)

	// A real reopen from disk fences the lease holder.
	clk.nanos = 3000
	v2, err := Open(Config{Clock: clk, Key: testVaultKey(), Store: NewFileStore(store.Path()), Rand: detRand(), RollbackSlack: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Epoch() != 2 {
		t.Fatalf("epoch %d after reopen", v2.Epoch())
	}
	if _, vd := v2.Unlock(leaseTok); vd != Fenced {
		t.Fatalf("stale lease verdict %v", vd)
	}
}

// TestFileStoreTornTempWrite simulates a crash mid-Save: the temp file
// holds a partial write, the rename never happened. Load must still
// return the previous anchor, and the next Save must clean up.
func TestFileStoreTornTempWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "anchor")
	store := NewFileStore(path)

	var good [anchorSize]byte
	encodeAnchor(&good, anchorState{Epoch: 7, LastNanos: 123, Restarts: 3}, testVaultKey())
	if err := store.Save(good[:]); err != nil {
		t.Fatal(err)
	}
	// The crash: a torn temp file next to the good anchor.
	if err := os.WriteFile(path+".tmp", good[:10], 0o600); err != nil {
		t.Fatal(err)
	}

	raw, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	st, err := decodeAnchor(raw, testVaultKey())
	if err != nil || st.Epoch != 7 || st.LastNanos != 123 {
		t.Fatalf("post-crash load: %+v, %v", st, err)
	}

	// And a vault opens fine over the torn remnant.
	clk := &scriptClock{nanos: 1000}
	v, err := Open(Config{Clock: clk, Key: testVaultKey(), Store: store, Rand: detRand(), RollbackSlack: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch() != 8 {
		t.Fatalf("epoch %d, want 8", v.Epoch())
	}
}

// TestTornAnchorRefused covers the other crash mode — a non-atomic
// store that exposes a torn or tampered anchor. The vault must refuse
// to guess an epoch.
func TestTornAnchorRefused(t *testing.T) {
	var good [anchorSize]byte
	encodeAnchor(&good, anchorState{Epoch: 7, LastNanos: 123}, testVaultKey())
	clk := &scriptClock{nanos: 1000}

	cases := map[string][]byte{
		"truncated":   good[:anchorSize-5],
		"extended":    append(append([]byte(nil), good[:]...), 0),
		"flipped mac": func() []byte { b := append([]byte(nil), good[:]...); b[anchorSize-1] ^= 1; return b }(),
		"flipped body": func() []byte {
			b := append([]byte(nil), good[:]...)
			b[6] ^= 1
			return b
		}(),
		"bad magic": func() []byte { b := append([]byte(nil), good[:]...); b[0] = 'X'; return b }(),
		"empty":     {},
	}
	for name, raw := range cases {
		store := &MemStore{}
		store.Restore(raw)
		_, err := Open(Config{Clock: clk, Key: testVaultKey(), Store: store, Rand: detRand()})
		if !errors.Is(err, ErrAnchorCorrupt) {
			t.Errorf("%s anchor: %v, want ErrAnchorCorrupt", name, err)
		}
	}

	// An anchor written under a different key is equally refused.
	otherKey := testVaultKey()
	otherKey[0] ^= 0xFF
	var foreign [anchorSize]byte
	encodeAnchor(&foreign, anchorState{Epoch: 1}, otherKey)
	store := &MemStore{}
	store.Restore(foreign[:])
	if _, err := Open(Config{Clock: clk, Key: testVaultKey(), Store: store, Rand: detRand()}); !errors.Is(err, ErrAnchorCorrupt) {
		t.Errorf("foreign-key anchor: %v, want ErrAnchorCorrupt", err)
	}
}

func TestAnchorEncodeDecodeRoundtrip(t *testing.T) {
	states := []anchorState{
		{},
		{Epoch: 1},
		{Epoch: ^uint64(0), LastNanos: -1, Restarts: ^uint64(0)},
		{Epoch: 42, LastNanos: 1719412345678901234, Restarts: 7},
	}
	for _, st := range states {
		var b [anchorSize]byte
		encodeAnchor(&b, st, testVaultKey())
		got, err := decodeAnchor(b[:], testVaultKey())
		if err != nil || got != st {
			t.Errorf("roundtrip %+v: got %+v, %v", st, got, err)
		}
	}
}
