package commit

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// FuzzCommitTokenRoundtrip: the token parser must never panic, every
// accepted buffer must re-encode to the same bytes, and — the part
// that matters — no parse/re-encode path may ever launder a mutated
// token past the vault's MAC check.
func FuzzCommitTokenRoundtrip(f *testing.F) {
	clk := &scriptClock{nanos: 1000}
	v, err := Open(Config{Clock: clk, Key: testVaultKey(), Rand: detRand(), RollbackSlack: time.Millisecond})
	if err != nil {
		f.Fatal(err)
	}
	genuine, vd := v.Lock(testHash(), 2000, FlagLease)
	if vd != OK {
		f.Fatal("seed lock failed")
	}
	clk.nanos = 3000

	f.Add(genuine.Marshal(), uint32(0), byte(0))
	f.Add(genuine.Marshal(), uint32(40), byte(0xFF))
	f.Add(make([]byte, TokenSize), uint32(0), byte(1))
	f.Add([]byte{}, uint32(0), byte(0))
	f.Add(genuine.Marshal()[:TokenSize-1], uint32(0), byte(0))
	f.Fuzz(func(t *testing.T, data []byte, corruptAt uint32, flip byte) {
		tok, err := UnmarshalToken(data)
		if err != nil {
			if !errors.Is(err, ErrTokenEncoding) {
				t.Fatalf("unexpected error class: %v", err)
			}
			if len(data) == TokenSize {
				t.Fatalf("exact-size buffer rejected: %v", err)
			}
			return
		}
		round := tok.Marshal()
		if !bytes.Equal(round, data) {
			t.Fatalf("roundtrip not canonical: %x vs %x", round, data)
		}
		tok2, err := UnmarshalToken(round)
		if err != nil || tok2 != tok {
			t.Fatalf("re-decode broke: %+v vs %+v (%v)", tok2, tok, err)
		}

		// Whatever the bytes decoded to, the vault grants an unlock only
		// to its own mint: anything that differs from the genuine token
		// in any authenticated field must be refused as forged or fenced,
		// never unlocked.
		_, verdict := v.Unlock(tok)
		if verdict == OK || verdict == Sealed {
			if tok != genuine {
				t.Fatalf("mutated token got verdict %v: %+v", verdict, tok)
			}
		}

		// Single-byte corruption of the genuine token must never verify.
		if flip != 0 {
			c := genuine.Marshal()
			c[int(corruptAt)%len(c)] ^= flip
			ct, err := UnmarshalToken(c)
			if err != nil {
				t.Fatalf("exact-size corrupted buffer rejected by parser: %v", err)
			}
			if ct != genuine {
				if _, verdict := v.Unlock(ct); verdict == OK || verdict == Sealed {
					t.Fatalf("corrupted token got verdict %v", verdict)
				}
			}
		}
	})
}
