package commit

import (
	"errors"
	"fmt"
	"time"

	"triadtime/lease"
)

// ErrFencedEpoch is returned when a lease from a previous vault
// incarnation is presented: the node restarted since the grant, the
// anchor epoch was bumped, and the old holder must not be allowed to
// renew or release as if nothing happened (T-Lease's stale-holder
// fence).
var ErrFencedEpoch = errors.New("commit: lease epoch fenced by restart")

// EpochLease is a lease.Lease pinned to the vault epoch it was granted
// in. Holders present the whole value on renew/release; a restart
// between grant and renew fences it.
type EpochLease struct {
	lease.Lease
	Epoch uint64
}

// LeaseStore grants restart-fenced leases: lease.Manager's exclusive
// expiring grants, made crash-safe by the vault's persisted anchor.
// The in-memory lease table does not survive a restart — it does not
// have to: the epoch bump guarantees every pre-crash holder is fenced,
// so the fresh table can never double-grant against a stale holder.
type LeaseStore struct {
	mgr   *lease.Manager
	vault *Vault
}

// NewLeaseStore builds a lease store over the vault's clock and epoch.
// maxTTL bounds lease duration (0 means 1 hour, as in lease.NewManager).
func NewLeaseStore(v *Vault, maxTTL time.Duration) (*LeaseStore, error) {
	if v == nil {
		return nil, errors.New("commit: vault is required")
	}
	mgr, err := lease.NewManager(lease.Clock(ClockFunc(func() (int64, error) {
		// Route the manager's clock reads through the vault so its
		// expiry decisions share the high-water rollback check: a
		// rolled-back clock stops lease grants too.
		v.mu.Lock()
		defer v.mu.Unlock()
		now, ok := v.nowLocked()
		if !ok {
			return 0, fmt.Errorf("commit: clock cannot vouch")
		}
		return now, nil
	})), maxTTL)
	if err != nil {
		return nil, err
	}
	return &LeaseStore{mgr: mgr, vault: v}, nil
}

// Acquire grants resource to holder for ttl, pinned to the current
// epoch.
func (s *LeaseStore) Acquire(resource, holder string, ttl time.Duration) (EpochLease, error) {
	epoch := s.vault.Epoch()
	l, err := s.mgr.Acquire(resource, holder, ttl)
	if err != nil {
		return EpochLease{}, err
	}
	return EpochLease{Lease: l, Epoch: epoch}, nil
}

// Renew extends a lease granted in the current epoch. A lease from an
// earlier epoch is fenced (ErrFencedEpoch) — its holder must
// re-Acquire and observe whatever state changed across the restart.
func (s *LeaseStore) Renew(l EpochLease, ttl time.Duration) (EpochLease, error) {
	if epoch := s.vault.Epoch(); l.Epoch != epoch {
		return EpochLease{}, fmt.Errorf("%w: lease epoch %d, vault epoch %d", ErrFencedEpoch, l.Epoch, epoch)
	}
	nl, err := s.mgr.Renew(l.Lease, ttl)
	if err != nil {
		return EpochLease{}, err
	}
	return EpochLease{Lease: nl, Epoch: l.Epoch}, nil
}

// Release ends a current-epoch lease early. Fenced leases cannot be
// released either — they no longer guard anything, and accepting the
// call would let a stale holder confuse a post-restart successor.
func (s *LeaseStore) Release(l EpochLease) error {
	if epoch := s.vault.Epoch(); l.Epoch != epoch {
		return fmt.Errorf("%w: lease epoch %d, vault epoch %d", ErrFencedEpoch, l.Epoch, epoch)
	}
	return s.mgr.Release(l.Lease)
}

// Holder reports the resource's current holder, if any.
func (s *LeaseStore) Holder(resource string) (string, bool, error) {
	return s.mgr.Holder(resource)
}
