package commit

import (
	"errors"
	"testing"
	"time"

	"triadtime/lease"
)

func TestLeaseStoreGrantRenewRelease(t *testing.T) {
	clk := &scriptClock{nanos: 1000}
	v := openTestVault(t, clk, nil, nil)
	ls, err := NewLeaseStore(v, time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	l, err := ls.Acquire("shard-7", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if l.Epoch != 1 || l.Holder != "alice" {
		t.Fatalf("lease %+v", l)
	}
	if _, err := ls.Acquire("shard-7", "bob", time.Second); !errors.Is(err, lease.ErrHeld) {
		t.Fatalf("double grant: %v", err)
	}
	clk.nanos += int64(500 * time.Millisecond)
	l2, err := ls.Renew(l, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Release(l2); err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Acquire("shard-7", "bob", time.Second); err != nil {
		t.Fatalf("post-release grant: %v", err)
	}
}

// TestLeaseStoreFencedAcrossRestart: the full T-Lease scenario at the
// lease API level. The pre-crash holder's lease must not renew or
// release after the restart, and the resource is immediately grantable
// in the new incarnation.
func TestLeaseStoreFencedAcrossRestart(t *testing.T) {
	store := &MemStore{}
	clk := &scriptClock{nanos: 1000}
	v1 := openTestVault(t, clk, store, nil)
	ls1, err := NewLeaseStore(v1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	old, err := ls1.Acquire("shard-7", "alice", time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	// Crash + restart: new vault incarnation over the same anchor.
	v2 := openTestVault(t, clk, store, nil)
	ls2, err := NewLeaseStore(v2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := ls2.Renew(old, time.Second); !errors.Is(err, ErrFencedEpoch) {
		t.Fatalf("stale renew: %v", err)
	}
	if err := ls2.Release(old); !errors.Is(err, ErrFencedEpoch) {
		t.Fatalf("stale release: %v", err)
	}
	// The new incarnation's table is fresh: bob acquires immediately,
	// even though alice's wall-clock TTL has not expired.
	nl, err := ls2.Acquire("shard-7", "bob", time.Minute)
	if err != nil {
		t.Fatalf("post-restart grant: %v", err)
	}
	if nl.Epoch != 2 {
		t.Fatalf("new lease epoch %d", nl.Epoch)
	}
}

// TestLeaseStoreClockGate: lease grants route through the vault's
// high-water check, so a rolled-back clock stops lease activity too.
func TestLeaseStoreClockGate(t *testing.T) {
	clk := &scriptClock{nanos: int64(time.Second)}
	v := openTestVault(t, clk, nil, nil)
	ls, err := NewLeaseStore(v, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Acquire("r", "h", time.Second); err != nil {
		t.Fatal(err)
	}
	clk.nanos -= int64(10 * time.Millisecond) // beyond the 1ms slack
	if _, err := ls.Acquire("r2", "h", time.Second); !errors.Is(err, lease.ErrClockUnavailable) {
		t.Fatalf("rolled-back grant: %v", err)
	}
}
