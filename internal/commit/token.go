// Package commit implements time-locked commitments and persistent
// trusted leases on top of a Triad trusted clock — the product surface
// the paper's introduction motivates (TSA-style sealing, T-Lease-style
// exclusive grants) turned into a servable subsystem.
//
// A Vault mints commitment tokens that say "this hash is sealed until
// trusted time T" and later vouches for their unlock: the unlock is
// granted only when the trusted clock has provably passed T, refused
// while the clock cannot vouch (Tainted, calibrating, or Degraded
// holdover — Degraded serves timestamps but never vouches), and fenced
// across restarts for lease-mode tokens via a persisted monotonic
// anchor (last-seen trusted nanos + epoch counter, fsync'd), following
// T-Lease's reboot-detection design: every restart bumps the epoch, so
// a lease granted before a crash can never race its post-restart
// successor, and an anchor file rolled back to an older copy is
// detected the moment a token from a newer epoch appears.
package commit

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Clock supplies trusted timestamps in nanoseconds. core.Node,
// resilient.Node and the triadtime façade all provide compatible
// methods.
type Clock interface {
	TrustedNow() (int64, error)
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() (int64, error)

// TrustedNow implements Clock.
func (f ClockFunc) TrustedNow() (int64, error) { return f() }

// HashSize is the commitment hash size (SHA-256 of the sealed data;
// the vault never sees the data itself).
const HashSize = sha256.Size

// nonceSize makes tokens over the same (hash, unlock time) pair
// distinct and untransferable between requests.
const nonceSize = 16

// macSize is the HMAC-SHA256 tag size.
const macSize = sha256.Size

// TokenSize is the fixed serialized token size: hash + unlock + issued
// + epoch + flags + nonce + mac. internal/wire carries exactly this
// many bytes in commit datagrams (wire.CommitTokenSize; internal/serve
// asserts the two agree at compile time).
const TokenSize = HashSize + 8 + 8 + 8 + 1 + nonceSize + macSize

// Token flags.
const (
	// FlagLease marks a lease-mode token: valid only in the anchor
	// epoch it was minted in, so a restart fences it. Plain commitment
	// tokens stay unlockable across restarts.
	FlagLease uint8 = 1 << 0
)

// Token is one time-locked commitment: Hash is sealed until trusted
// time reaches UnlockNanos. The MAC binds every field to the vault
// key, so tokens are self-authenticating — the vault keeps no per-token
// state, only the anchor.
type Token struct {
	Hash        [HashSize]byte
	UnlockNanos int64
	// IssuedNanos is the trusted time the lock was minted at.
	IssuedNanos int64
	// Epoch is the anchor epoch the token was minted in — the fencing
	// generation a lease-mode token must match at unlock.
	Epoch uint64
	Flags uint8
	Nonce [nonceSize]byte
	MAC   [macSize]byte
}

// Lease reports whether the token is lease-mode (epoch-fenced).
func (t Token) Lease() bool { return t.Flags&FlagLease != 0 }

// UnlockTime returns the unlock instant on the trusted timeline (Unix
// for live deployments).
func (t Token) UnlockTime() time.Time { return time.Unix(0, t.UnlockNanos) }

// Marshal serializes the token.
func (t Token) Marshal() []byte {
	out := make([]byte, TokenSize)
	t.MarshalInto(out)
	return out
}

// MarshalInto serializes the token into b, which must be at least
// TokenSize bytes. The allocation-free form of Marshal, for response
// paths that embed tokens in preallocated datagram buffers.
func (t Token) MarshalInto(b []byte) {
	_ = b[TokenSize-1] // bounds hint
	copy(b, t.Hash[:])
	binary.BigEndian.PutUint64(b[HashSize:], uint64(t.UnlockNanos))
	binary.BigEndian.PutUint64(b[HashSize+8:], uint64(t.IssuedNanos))
	binary.BigEndian.PutUint64(b[HashSize+16:], t.Epoch)
	b[HashSize+24] = t.Flags
	copy(b[HashSize+25:], t.Nonce[:])
	copy(b[HashSize+25+nonceSize:], t.MAC[:])
}

// ErrTokenEncoding is returned for malformed serialized tokens.
var ErrTokenEncoding = errors.New("commit: malformed token")

// UnmarshalToken parses a token produced by Marshal. Authentication is
// separate: parsing succeeds for any correctly-sized buffer, and the
// vault's MAC check decides trust.
func UnmarshalToken(b []byte) (Token, error) {
	if len(b) != TokenSize {
		return Token{}, fmt.Errorf("%w: %d bytes, want %d", ErrTokenEncoding, len(b), TokenSize)
	}
	var t Token
	copy(t.Hash[:], b[:HashSize])
	t.UnlockNanos = int64(binary.BigEndian.Uint64(b[HashSize:]))
	t.IssuedNanos = int64(binary.BigEndian.Uint64(b[HashSize+8:]))
	t.Epoch = binary.BigEndian.Uint64(b[HashSize+16:])
	t.Flags = b[HashSize+24]
	copy(t.Nonce[:], b[HashSize+25:])
	copy(t.MAC[:], b[HashSize+25+nonceSize:])
	return t, nil
}
