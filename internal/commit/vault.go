package commit

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"sync"
	"time"
)

// Verdict is a vault operation's disposition. Values align 1:1 with
// wire.CommitVerdict (internal/serve asserts the correspondence at
// compile time); Overloaded exists only at the wire layer, since
// shedding happens before the vault is consulted.
type Verdict uint8

// Operation verdicts.
const (
	// OK: lock minted / unlock granted / status says unlockable now.
	OK Verdict = 1
	// Sealed: the token is authentic but trusted time has not reached
	// its unlock time.
	Sealed Verdict = 2
	// Fenced: the token's epoch is not this vault incarnation's — a
	// lease-mode token from before a restart, or any token from a
	// future epoch (which proves the anchor was rolled back).
	Fenced Verdict = 3
	// BadToken: authentication failed or the request was malformed.
	BadToken Verdict = 4
	// Unavailable: the trusted clock cannot vouch — unavailable,
	// contradicting persisted history, or in Degraded holdover.
	Unavailable Verdict = 5
)

// String names the verdict for logs and tables.
func (v Verdict) String() string {
	switch v {
	case OK:
		return "ok"
	case Sealed:
		return "sealed"
	case Fenced:
		return "fenced"
	case BadToken:
		return "bad-token"
	case Unavailable:
		return "unavailable"
	default:
		return fmt.Sprintf("Verdict(%d)", uint8(v))
	}
}

// tokenMACLabel domain-separates token MACs from anchor MACs (and from
// tsa token MACs, which may share the key in deployments that reuse
// the TSA key for the vault).
const tokenMACLabel = "triad-commit-token-v1"

// Config configures a Vault.
type Config struct {
	// Clock is the trusted time source (required). It may be
	// unavailable at construction (node still calibrating); the vault
	// defers clock-dependent checks until the first read succeeds.
	Clock Clock
	// Vouch reports whether the clock may currently vouch for an
	// unlock decision. A quorum-calibrated node in Degraded holdover
	// still serves timestamps but must not vouch (paper §VI); wire this
	// to `state == OK`. nil means "vouch whenever the clock answers".
	Vouch func() bool
	// Key authenticates tokens and the anchor (>= 16 bytes). Reusing
	// the TSA key is safe: MACs are domain-separated.
	Key []byte
	// Store persists the anchor. nil means a fresh in-memory store
	// (no restart survival — simulations and tests).
	Store Store
	// Rand sources token nonces; nil means crypto/rand. Simulations
	// swap in a deterministic reader.
	Rand func([]byte) (int, error)
	// MaxLockDur bounds how far in the future a lock may seal
	// (0 means 24h).
	MaxLockDur time.Duration
	// RollbackSlack is how far trusted time may read below the
	// persisted high-water mark before the vault declares a clock
	// rollback (0 means 50ms; quorum recalibration can step a node's
	// timeline slightly). Negative disables the check.
	RollbackSlack time.Duration
	// FlushInterval is how much trusted time may pass between
	// high-water-mark persists (0 means 1s). Epoch changes always
	// persist immediately.
	FlushInterval time.Duration
}

// Counters is a snapshot of the vault's monotonic event counts.
type Counters struct {
	LocksIssued    uint64
	UnlocksGranted uint64
	// Refused unlocks, by reason. Early = trusted time not yet at the
	// unlock time; Fenced = epoch fencing; Degraded = the clock
	// answered but may not vouch (holdover); Unavailable = no trusted
	// time or history contradiction; Forged = MAC failure.
	UnlocksRefusedEarly       uint64
	UnlocksRefusedFenced      uint64
	UnlocksRefusedDegraded    uint64
	UnlocksRefusedUnavailable uint64
	UnlocksRefusedForged      uint64
	StatusQueries             uint64
	// AnchorRollbacks counts authentic tokens seen from a future epoch
	// — proof the anchor file was rolled back to an older copy. Each
	// detection re-fences past the token's epoch.
	AnchorRollbacks uint64
	// ClockRollbacks counts trusted reads below the persisted
	// high-water mark (beyond RollbackSlack).
	ClockRollbacks uint64
	// PersistErrors counts failed anchor Saves after construction (the
	// vault keeps serving on its in-memory state; the gap is visible
	// here and in /metrics).
	PersistErrors uint64
	// Restarts is how many times this vault identity has been reopened
	// from a persisted anchor.
	Restarts uint64
}

// Vault mints and vouches for time-locked commitment tokens. Safe for
// concurrent use — the serving layer drives it from every shard.
type Vault struct {
	clock      Clock
	vouch      func() bool
	key        []byte
	store      Store
	randRead   func([]byte) (int, error)
	maxLock    int64
	slack      int64
	flushEvery int64

	mu sync.Mutex
	// st is the live anchor state; st.LastNanos is the in-memory
	// high-water mark, persisted at least every flushEvery of trusted
	// time (epoch changes persist immediately).
	st anchorState
	//triad:monotonic durable image of st.LastNanos; only ever advanced to it
	persistedNanos int64
	// anchorChecked flips once the loaded anchor has been validated
	// against a live trusted read (deferred when the clock was not yet
	// calibrated at Open).
	anchorChecked bool
	tokenMAC      hash.Hash // reused under mu for zero-alloc mint/verify
	tokenLabel    []byte    // tokenMACLabel, pre-converted off the hot path
	numBuf        [25]byte  // fixed-field MAC input scratch, reused under mu
	tokScratch    Token     // MAC computation operand; slices of a stack
	// token handed to the hash interface would force the caller's copy
	// to escape, so the hot path stages tokens here instead
	macBuf    [macSize]byte
	anchorBuf [anchorSize]byte
	c         Counters
}

// Open creates a vault, loading (or initializing) its anchor. A loaded
// anchor has its epoch bumped before any token is minted — the restart
// fence — and the bumped state is persisted before Open returns, so a
// crash right after Open cannot reuse an epoch. A corrupt or tampered
// anchor is refused (ErrAnchorCorrupt); an anchor ahead of an
// available trusted clock is refused (ErrAnchorFuture).
func Open(cfg Config) (*Vault, error) {
	if cfg.Clock == nil {
		return nil, errors.New("commit: clock is required")
	}
	if len(cfg.Key) < 16 {
		return nil, fmt.Errorf("commit: key too short (%d bytes, want >= 16)", len(cfg.Key))
	}
	if cfg.Store == nil {
		cfg.Store = &MemStore{}
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Read
	}
	if cfg.MaxLockDur <= 0 {
		cfg.MaxLockDur = 24 * time.Hour
	}
	slack := cfg.RollbackSlack
	if slack == 0 {
		slack = 50 * time.Millisecond
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = time.Second
	}
	key := make([]byte, len(cfg.Key))
	copy(key, cfg.Key)
	v := &Vault{
		clock:      cfg.Clock,
		vouch:      cfg.Vouch,
		key:        key,
		store:      cfg.Store,
		randRead:   cfg.Rand,
		maxLock:    int64(cfg.MaxLockDur),
		slack:      int64(slack),
		flushEvery: int64(cfg.FlushInterval),
		tokenMAC:   hmac.New(sha256.New, key),
		tokenLabel: []byte(tokenMACLabel),
	}
	if slack < 0 {
		v.slack = -1
	}

	raw, err := v.store.Load()
	switch {
	case errors.Is(err, ErrNoAnchor):
		v.st = anchorState{Epoch: 1}
		v.anchorChecked = true // nothing to check against
	case err != nil:
		return nil, fmt.Errorf("commit: loading anchor: %w", err)
	default:
		st, err := decodeAnchor(raw, v.key)
		if err != nil {
			return nil, err
		}
		// The restart fence: a new incarnation, a new epoch. Every
		// lease-mode token minted before this instant is now fenced.
		st.Epoch++
		st.Restarts++
		v.st = st
		// If the clock can already answer, validate the anchor against
		// it now; otherwise the first successful read does it.
		if now, err := v.clock.TrustedNow(); err == nil {
			if v.slack >= 0 && now+v.slack < st.LastNanos {
				return nil, fmt.Errorf("%w: anchor at %d, trusted now %d", ErrAnchorFuture, st.LastNanos, now)
			}
			v.anchorChecked = true
			if now > v.st.LastNanos {
				v.st.LastNanos = now
			}
		}
	}
	v.c.Restarts = v.st.Restarts
	if err := v.persistLocked(); err != nil {
		return nil, fmt.Errorf("commit: persisting anchor: %w", err)
	}
	return v, nil
}

// persistLocked writes the current anchor state through the store.
// Caller holds v.mu (or is still constructing the vault).
func (v *Vault) persistLocked() error {
	encodeAnchor(&v.anchorBuf, v.st, v.key)
	if err := v.store.Save(v.anchorBuf[:]); err != nil {
		return err
	}
	v.persistedNanos = v.st.LastNanos
	return nil
}

// flushLocked persists the anchor if forced or if the high-water mark
// has advanced past the flush interval. A failed Save is counted
// (PersistErrors) and the vault keeps serving on its in-memory state.
func (v *Vault) flushLocked(force bool) {
	if !force && v.st.LastNanos-v.persistedNanos < v.flushEvery {
		return
	}
	if err := v.persistLocked(); err != nil {
		v.c.PersistErrors++
	}
}

// nowLocked reads trusted time, maintains the monotonic high-water
// mark, and performs the deferred anchor-vs-clock validation and the
// clock-rollback check. ok=false means the read cannot be vouched
// against persisted history.
func (v *Vault) nowLocked() (now int64, ok bool) {
	now, err := v.clock.TrustedNow()
	if err != nil {
		return 0, false
	}
	if v.slack >= 0 && now+v.slack < v.st.LastNanos {
		// The trusted clock reads below history this vault already
		// vouched against: a rolled-back clock, or an anchor replayed
		// from the future. Either way, refuse to vouch.
		v.c.ClockRollbacks++
		return now, false
	}
	v.anchorChecked = true
	if now > v.st.LastNanos {
		v.st.LastNanos = now
		v.flushLocked(false)
	}
	return now, true
}

// macScratchLocked computes the MAC of v.tokScratch into v.macBuf.
// Caller holds v.mu and has staged the token in v.tokScratch.
// Allocation-free: the HMAC instance is reused, and every slice handed
// to the hash interface belongs to the vault, not the caller's stack.
func (v *Vault) macScratchLocked() {
	t := &v.tokScratch
	m := v.tokenMAC
	m.Reset()
	m.Write(v.tokenLabel)
	m.Write(t.Hash[:])
	binary.BigEndian.PutUint64(v.numBuf[0:], uint64(t.UnlockNanos))
	binary.BigEndian.PutUint64(v.numBuf[8:], uint64(t.IssuedNanos))
	binary.BigEndian.PutUint64(v.numBuf[16:], t.Epoch)
	v.numBuf[24] = t.Flags
	m.Write(v.numBuf[:])
	m.Write(t.Nonce[:])
	m.Sum(v.macBuf[:0])
}

// Lock mints a token sealing hash until unlockNanos of trusted time.
// Minting is allowed whenever the clock answers — even in Degraded
// holdover, since a lock promises nothing about time having passed —
// but the unlock time must be in the future and within MaxLockDur.
// flags may include FlagLease for an epoch-fenced lease-mode token.
func (v *Vault) Lock(hashVal [HashSize]byte, unlockNanos int64, flags uint8) (Token, Verdict) {
	v.mu.Lock()
	defer v.mu.Unlock()
	now, ok := v.nowLocked()
	if !ok {
		return Token{}, Unavailable
	}
	if unlockNanos <= now || unlockNanos-now > v.maxLock {
		return Token{}, BadToken
	}
	v.tokScratch = Token{
		Hash:        hashVal,
		UnlockNanos: unlockNanos,
		IssuedNanos: now,
		Epoch:       v.st.Epoch,
		Flags:       flags & FlagLease,
	}
	if _, err := v.randRead(v.tokScratch.Nonce[:]); err != nil {
		return Token{}, Unavailable
	}
	v.macScratchLocked()
	v.tokScratch.MAC = v.macBuf
	v.c.LocksIssued++
	return v.tokScratch, OK
}

// Unlock vouches that trusted time has passed the token's unlock time.
// It returns the trusted now the decision was made against (0 when the
// clock could not answer) and the verdict; OK means the unlock is
// granted. The refusal ladder, in order: forged token, fencing (which
// also detects anchor rollback), clock unavailability or history
// contradiction, Degraded holdover (the clock answers but may not
// vouch), and finally "too early" (Sealed).
//
//triad:hotpath
func (v *Vault) Unlock(t Token) (int64, Verdict) {
	return v.decide(t, true)
}

// Status evaluates a token without consuming an unlock: the same
// verdict ladder as Unlock (OK = "unlockable right now"), counted
// separately.
func (v *Vault) Status(t Token) (int64, Verdict) {
	return v.decide(t, false)
}

func (v *Vault) decide(t Token, isUnlock bool) (int64, Verdict) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !isUnlock {
		v.c.StatusQueries++
	}
	v.tokScratch = t
	v.macScratchLocked()
	if !hmac.Equal(v.macBuf[:], v.tokScratch.MAC[:]) {
		if isUnlock {
			v.c.UnlocksRefusedForged++
		}
		return 0, BadToken
	}
	// An authentic token from a future epoch is proof the anchor was
	// rolled back to an older copy: this incarnation's epoch was
	// derived from stale state. Re-fence past the evidence and persist
	// immediately, so the stolen epochs can never be reissued.
	if t.Epoch > v.st.Epoch {
		v.c.AnchorRollbacks++
		v.st.Epoch = t.Epoch + 1
		v.flushLocked(true)
		if isUnlock {
			v.c.UnlocksRefusedFenced++
		}
		return 0, Fenced
	}
	if t.Lease() && t.Epoch != v.st.Epoch {
		// A lease-mode token from a previous incarnation: fenced by the
		// restart bump, exactly T-Lease's stale-holder guarantee.
		if isUnlock {
			v.c.UnlocksRefusedFenced++
		}
		return 0, Fenced
	}
	now, ok := v.nowLocked()
	if !ok {
		if isUnlock {
			v.c.UnlocksRefusedUnavailable++
		}
		return now, Unavailable
	}
	if now < t.UnlockNanos {
		if isUnlock {
			v.c.UnlocksRefusedEarly++
		}
		return now, Sealed
	}
	if v.vouch != nil && !v.vouch() {
		// Degraded holdover: timestamps still flow, but the node must
		// not vouch that real time has passed the unlock bound.
		if isUnlock {
			v.c.UnlocksRefusedDegraded++
		}
		return now, Unavailable
	}
	if isUnlock {
		v.c.UnlocksGranted++
	}
	return now, OK
}

// Epoch returns the current fencing epoch.
func (v *Vault) Epoch() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.st.Epoch
}

// Counters returns a snapshot of the vault's event counts.
func (v *Vault) Counters() Counters {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.c
}

// Flush persists the current anchor state immediately (shutdown path).
func (v *Vault) Flush() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.persistLocked()
}
