package commit

import (
	"errors"
	"testing"
	"time"
)

// scriptClock is a hand-driven trusted clock.
type scriptClock struct {
	nanos int64
	err   error
}

func (c *scriptClock) TrustedNow() (int64, error) {
	if c.err != nil {
		return 0, c.err
	}
	return c.nanos, nil
}

func testVaultKey() []byte {
	k := make([]byte, 32)
	for i := range k {
		k[i] = byte(i + 1)
	}
	return k
}

// detRand is a deterministic nonce source.
func detRand() func([]byte) (int, error) {
	var ctr byte
	return func(b []byte) (int, error) {
		for i := range b {
			ctr++
			b[i] = ctr
		}
		return len(b), nil
	}
}

func testHash() [HashSize]byte {
	var h [HashSize]byte
	for i := range h {
		h[i] = byte(i * 7)
	}
	return h
}

func openTestVault(t *testing.T, clk Clock, store Store, vouch func() bool) *Vault {
	t.Helper()
	v, err := Open(Config{
		Clock:         clk,
		Vouch:         vouch,
		Key:           testVaultKey(),
		Store:         store,
		Rand:          detRand(),
		RollbackSlack: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestLockUnlockBasics(t *testing.T) {
	clk := &scriptClock{nanos: 1000}
	v := openTestVault(t, clk, nil, nil)

	tok, vd := v.Lock(testHash(), 5000, 0)
	if vd != OK {
		t.Fatalf("lock verdict %v", vd)
	}
	if tok.IssuedNanos != 1000 || tok.UnlockNanos != 5000 || tok.Epoch != 1 || tok.Lease() {
		t.Fatalf("minted token %+v", tok)
	}

	// Too early: sealed, with the deciding trusted now reported.
	if now, vd := v.Unlock(tok); vd != Sealed || now != 1000 {
		t.Fatalf("early unlock: now=%d verdict=%v", now, vd)
	}
	if _, vd := v.Status(tok); vd != Sealed {
		t.Fatalf("early status not sealed")
	}

	clk.nanos = 5000
	if now, vd := v.Unlock(tok); vd != OK || now != 5000 {
		t.Fatalf("due unlock: now=%d verdict=%v", now, vd)
	}
	if _, vd := v.Status(tok); vd != OK {
		t.Fatalf("due status not ok")
	}

	c := v.Counters()
	if c.LocksIssued != 1 || c.UnlocksGranted != 1 || c.UnlocksRefusedEarly != 1 || c.StatusQueries != 2 {
		t.Fatalf("counters %+v", c)
	}
}

func TestLockValidation(t *testing.T) {
	clk := &scriptClock{nanos: int64(time.Hour)}
	v, err := Open(Config{Clock: clk, Key: testVaultKey(), Rand: detRand(), MaxLockDur: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if _, vd := v.Lock(testHash(), clk.nanos, 0); vd != BadToken {
		t.Fatalf("lock at now accepted: %v", vd)
	}
	if _, vd := v.Lock(testHash(), clk.nanos-1, 0); vd != BadToken {
		t.Fatalf("lock in the past accepted: %v", vd)
	}
	if _, vd := v.Lock(testHash(), clk.nanos+int64(time.Minute)+1, 0); vd != BadToken {
		t.Fatalf("lock beyond MaxLockDur accepted: %v", vd)
	}
	clk.err = errors.New("calibrating")
	if _, vd := v.Lock(testHash(), clk.nanos+1, 0); vd != Unavailable {
		t.Fatalf("lock without clock: %v", vd)
	}
}

func TestForgedTokenRefused(t *testing.T) {
	clk := &scriptClock{nanos: 1000}
	v := openTestVault(t, clk, nil, nil)
	tok, _ := v.Lock(testHash(), 2000, 0)
	clk.nanos = 3000

	mutations := map[string]func(*Token){
		"mac bit":    func(t *Token) { t.MAC[0] ^= 1 },
		"hash":       func(t *Token) { t.Hash[5] ^= 1 },
		"unlock":     func(t *Token) { t.UnlockNanos = 1 }, // rewind the seal
		"epoch":      func(t *Token) { t.Epoch = 0 },
		"flags":      func(t *Token) { t.Flags |= FlagLease },
		"nonce":      func(t *Token) { t.Nonce[0] ^= 1 },
		"issued":     func(t *Token) { t.IssuedNanos++ },
		"zero token": func(t *Token) { *t = Token{} },
	}
	for name, mutate := range mutations {
		bad := tok
		mutate(&bad)
		if _, vd := v.Unlock(bad); vd != BadToken {
			t.Errorf("%s mutation: verdict %v, want BadToken", name, vd)
		}
	}
	if c := v.Counters(); c.UnlocksRefusedForged != uint64(len(mutations)) {
		t.Fatalf("forged count %d, want %d", c.UnlocksRefusedForged, len(mutations))
	}
	// The genuine token still unlocks.
	if _, vd := v.Unlock(tok); vd != OK {
		t.Fatalf("genuine token refused after forgeries")
	}
}

func TestDegradedHoldoverNeverVouches(t *testing.T) {
	clk := &scriptClock{nanos: 1000}
	vouching := true
	v := openTestVault(t, clk, nil, func() bool { return vouching })

	tok, vd := v.Lock(testHash(), 2000, 0)
	if vd != OK {
		t.Fatalf("lock in OK state: %v", vd)
	}
	vouching = false // node drops to Degraded holdover

	// Locks may still be minted (a lock promises nothing about time
	// having passed)...
	if _, vd := v.Lock(testHash(), 3000, 0); vd != OK {
		t.Fatalf("lock in holdover: %v", vd)
	}
	// ...refusing early is always safe...
	if _, vd := v.Unlock(tok); vd != Sealed {
		t.Fatalf("early unlock in holdover: %v", vd)
	}
	// ...but once the holdover clock claims T has passed, the vault
	// must not vouch for it.
	clk.nanos = 2500
	if _, vd := v.Unlock(tok); vd != Unavailable {
		t.Fatalf("holdover unlock: %v, want Unavailable", vd)
	}
	if c := v.Counters(); c.UnlocksRefusedDegraded != 1 {
		t.Fatalf("degraded refusals %d", c.UnlocksRefusedDegraded)
	}
	vouching = true
	if _, vd := v.Unlock(tok); vd != OK {
		t.Fatalf("unlock after recovery: %v", vd)
	}
}

// TestLeaseFenceAcrossRestart is the T-Lease core: a lease-mode token
// minted before a restart is fenced by the epoch bump, while a plain
// commitment survives.
func TestLeaseFenceAcrossRestart(t *testing.T) {
	store := &MemStore{}
	clk := &scriptClock{nanos: 1000}

	v1 := openTestVault(t, clk, store, nil)
	leaseTok, vd := v1.Lock(testHash(), 2000, FlagLease)
	if vd != OK || !leaseTok.Lease() || leaseTok.Epoch != 1 {
		t.Fatalf("lease lock: %+v %v", leaseTok, vd)
	}
	plainTok, _ := v1.Lock(testHash(), 2000, 0)

	// "Restart": reopen from the persisted anchor.
	clk.nanos = 3000
	v2 := openTestVault(t, clk, store, nil)
	if e := v2.Epoch(); e != 2 {
		t.Fatalf("post-restart epoch %d, want 2", e)
	}
	if c := v2.Counters(); c.Restarts != 1 {
		t.Fatalf("restarts %d", c.Restarts)
	}

	// The stale lease holder is fenced even though its time has passed.
	if _, vd := v2.Unlock(leaseTok); vd != Fenced {
		t.Fatalf("stale lease unlock: %v, want Fenced", vd)
	}
	// The plain commitment still unlocks: restarts do not unseal or
	// destroy commitments.
	if _, vd := v2.Unlock(plainTok); vd != OK {
		t.Fatalf("plain commitment after restart: %v, want OK", vd)
	}
	if c := v2.Counters(); c.UnlocksRefusedFenced != 1 {
		t.Fatalf("fenced refusals %d", c.UnlocksRefusedFenced)
	}

	// And a fresh lease in the new epoch works.
	clk.nanos = 3500
	newLease, _ := v2.Lock(testHash(), 4000, FlagLease)
	clk.nanos = 4000
	if _, vd := v2.Unlock(newLease); vd != OK {
		t.Fatalf("new-epoch lease refused: %v", vd)
	}
}

// TestAnchorRollbackDetected rolls the anchor file back to an older
// copy: the reopened vault derives a stale epoch, and the first
// authentic token from a newer epoch exposes the rollback. The vault
// must detect it, re-fence past the evidence, and persist the fence.
func TestAnchorRollbackDetected(t *testing.T) {
	store := &MemStore{}
	clk := &scriptClock{nanos: 1000}

	openTestVault(t, clk, store, nil) // epoch 1
	oldAnchor, ok := store.Snapshot()
	if !ok {
		t.Fatal("no anchor persisted")
	}

	v2 := openTestVault(t, clk, store, nil) // epoch 2
	tok2, vd := v2.Lock(testHash(), 2000, 0)
	if vd != OK || tok2.Epoch != 2 {
		t.Fatalf("epoch-2 lock: %+v %v", tok2, vd)
	}

	// The attack: restore the epoch-1 anchor and restart. The vault
	// re-derives epoch 2 from stale state — a reused fencing epoch.
	store.Restore(oldAnchor)
	clk.nanos = 3000
	v3 := openTestVault(t, clk, store, nil)
	if e := v3.Epoch(); e != 2 {
		t.Fatalf("rolled-back reopen epoch %d, want 2 (stale)", e)
	}
	// Mint in the (stolen) epoch 2, then present the other incarnation's
	// epoch-2 token… still indistinguishable. But any epoch-3+ token —
	// here, from a third legitimate restart the attacker erased —
	// proves the rollback.
	store2 := &MemStore{}
	b, _ := store.Snapshot()
	store2.Restore(b)
	v4 := openTestVault(t, clk, store2, nil) // epoch 3, legitimate timeline
	tok3, _ := v4.Lock(testHash(), 4000, 0)
	if tok3.Epoch != 3 {
		t.Fatalf("epoch-3 token: %+v", tok3)
	}

	// v3 (epoch 2, on the rolled-back anchor) sees the epoch-3 token.
	if _, vd := v3.Unlock(tok3); vd != Fenced {
		t.Fatalf("future-epoch token verdict %v, want Fenced", vd)
	}
	c := v3.Counters()
	if c.AnchorRollbacks != 1 {
		t.Fatalf("anchor rollbacks %d, want 1", c.AnchorRollbacks)
	}
	// Re-fenced past the evidence…
	if e := v3.Epoch(); e != 4 {
		t.Fatalf("re-fenced epoch %d, want 4", e)
	}
	// …and the fence is durable: a reopen lands beyond it.
	v5 := openTestVault(t, clk, store, nil)
	if e := v5.Epoch(); e != 5 {
		t.Fatalf("post-fence reopen epoch %d, want 5", e)
	}
}

// TestFutureAnchorRefused replays an anchor whose high-water mark is
// ahead of the trusted clock: the vault must refuse to start (clock
// available) or refuse to vouch (clock arrives later).
func TestFutureAnchorRefused(t *testing.T) {
	store := &MemStore{}
	clk := &scriptClock{nanos: int64(time.Hour)}
	v1 := openTestVault(t, clk, store, nil)
	if _, vd := v1.Lock(testHash(), clk.nanos+1000, 0); vd != OK {
		t.Fatal("seed lock failed")
	}
	if err := v1.Flush(); err != nil {
		t.Fatal(err)
	}

	// Replayed into a deployment whose trusted clock is far behind.
	clk2 := &scriptClock{nanos: 1000}
	_, err := Open(Config{Clock: clk2, Key: testVaultKey(), Store: store, Rand: detRand(), RollbackSlack: time.Millisecond})
	if !errors.Is(err, ErrAnchorFuture) {
		t.Fatalf("future anchor accepted: %v", err)
	}

	// With the clock unavailable at open, the refusal is deferred to
	// the first read: every operation refuses until trusted time
	// catches up with the anchor's history.
	clk3 := &scriptClock{err: errors.New("calibrating")}
	v2, err := Open(Config{Clock: clk3, Key: testVaultKey(), Store: store, Rand: detRand(), RollbackSlack: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	clk3.err = nil
	clk3.nanos = 1000
	if _, vd := v2.Lock(testHash(), 2000, 0); vd != Unavailable {
		t.Fatalf("lock under future anchor: %v", vd)
	}
	if c := v2.Counters(); c.ClockRollbacks != 1 {
		t.Fatalf("clock rollbacks %d", c.ClockRollbacks)
	}
	// Once trusted time passes the anchor's history, service resumes.
	clk3.nanos = int64(time.Hour) + 5000
	if _, vd := v2.Lock(testHash(), clk3.nanos+1000, 0); vd != OK {
		t.Fatalf("lock after catch-up: %v", vd)
	}
}

// TestClockRollbackRefused steps the trusted clock backward past the
// slack: the vault has already vouched against later history and must
// stop vouching.
func TestClockRollbackRefused(t *testing.T) {
	clk := &scriptClock{nanos: int64(time.Second)}
	v := openTestVault(t, clk, nil, nil)
	tok, _ := v.Lock(testHash(), clk.nanos+100, 0)

	clk.nanos += 200
	if _, vd := v.Unlock(tok); vd != OK {
		t.Fatal("pre-rollback unlock failed")
	}

	clk.nanos -= 100 // a 100ns step back, within the 1ms slack: tolerated
	if _, vd := v.Status(tok); vd != OK {
		t.Fatal("within-slack status refused")
	}

	clk.nanos -= int64(2 * time.Millisecond) // beyond slack
	if _, vd := v.Unlock(tok); vd != Unavailable {
		t.Fatalf("rolled-back clock unlock: %v", vd)
	}
	if c := v.Counters(); c.ClockRollbacks != 1 || c.UnlocksRefusedUnavailable != 1 {
		t.Fatalf("counters %+v", c)
	}
}

func TestPersistAmortization(t *testing.T) {
	store := &MemStore{}
	clk := &scriptClock{nanos: 0}
	v, err := Open(Config{
		Clock: clk, Key: testVaultKey(), Store: store, Rand: detRand(),
		FlushInterval: time.Second, RollbackSlack: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	lastPersisted := func() int64 {
		t.Helper()
		b, ok := store.Snapshot()
		if !ok {
			t.Fatal("no anchor")
		}
		st, err := decodeAnchor(b, testVaultKey())
		if err != nil {
			t.Fatal(err)
		}
		return st.LastNanos
	}

	clk.nanos = int64(100 * time.Millisecond)
	v.Lock(testHash(), clk.nanos+1000, 0)
	if got := lastPersisted(); got != 0 {
		t.Fatalf("high-water persisted too eagerly: %d", got)
	}
	clk.nanos = int64(2 * time.Second)
	v.Lock(testHash(), clk.nanos+1000, 0)
	if got := lastPersisted(); got != clk.nanos {
		t.Fatalf("high-water not persisted after interval: %d, want %d", got, clk.nanos)
	}
}

func TestPersistErrorCounted(t *testing.T) {
	store := &MemStore{}
	clk := &scriptClock{nanos: 0}
	v, err := Open(Config{
		Clock: clk, Key: testVaultKey(), Store: store, Rand: detRand(),
		FlushInterval: time.Second, RollbackSlack: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	store.FailSaves = 1
	clk.nanos = int64(2 * time.Second)
	if _, vd := v.Lock(testHash(), clk.nanos+1000, 0); vd != OK {
		t.Fatal("lock should survive a failed amortized persist")
	}
	if c := v.Counters(); c.PersistErrors != 1 {
		t.Fatalf("persist errors %d", c.PersistErrors)
	}
}

// TestVaultZeroAllocSteadyState gates the unlock/status hot path: the
// serving layer decides every commit request under the vault mutex, so
// per-op allocation would show up at six figures of req/s.
func TestVaultZeroAllocSteadyState(t *testing.T) {
	clk := &scriptClock{nanos: 1000}
	v := openTestVault(t, clk, nil, nil)
	tok, _ := v.Lock(testHash(), 2000, 0)
	clk.nanos = 3000
	if _, vd := v.Unlock(tok); vd != OK {
		t.Fatal("warmup unlock failed")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, vd := v.Unlock(tok); vd != OK {
			t.Fatal("unlock failed")
		}
		if _, vd := v.Status(tok); vd != OK {
			t.Fatal("status failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("unlock+status allocated %.1f times per op", allocs)
	}
}

func BenchmarkCommitUnlockThroughput(b *testing.B) {
	clk := &scriptClock{nanos: 1000}
	v, err := Open(Config{Clock: clk, Key: testVaultKey(), Rand: detRand(), RollbackSlack: time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	tok, vd := v.Lock(testHash(), 2000, 0)
	if vd != OK {
		b.Fatal("lock failed")
	}
	clk.nanos = 3000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, vd := v.Unlock(tok); vd != OK {
			b.Fatal("unlock failed")
		}
	}
}

func BenchmarkCommitLock(b *testing.B) {
	clk := &scriptClock{nanos: 1000}
	v, err := Open(Config{Clock: clk, Key: testVaultKey(), Rand: detRand(), RollbackSlack: time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	h := testHash()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, vd := v.Lock(h, 2000, 0); vd != OK {
			b.Fatal("lock failed")
		}
	}
}
