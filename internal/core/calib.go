package core

import (
	"time"

	"triadtime/internal/enclave"
	"triadtime/internal/engine"
	"triadtime/internal/simnet"
	"triadtime/internal/stats"
	"triadtime/internal/wire"
)

// maxOWDNanos caps the one-way-delay estimate extracted from the
// calibration intercept; larger values are treated as noise.
const maxOWDNanos = 10 * int64(time.Millisecond)

// policy is the original protocol's behaviour bundle: the
// sleep-roundtrip regression calibration and the peers-then-authority
// recovery ladder. It implements engine.CalibrationPolicy and
// engine.RecoveryPolicy; the peer decision is the engine's
// first-response AdoptIfAhead filter.
type policy struct {
	cfg Config

	calib    *calibRun
	owdNanos int64 // one-way TA delay estimate from calibration

	refSeq   uint64 // pending reference calibration request, 0 = none
	refTimer enclave.CancelFunc
}

// calibRun tracks one full calibration: repeated TA roundtrips with
// requested sleeps, each bounded by uninterrupted execution (no AEX
// between request send and response receipt), then a regression of TSC
// increments on requested sleeps whose slope is F_calib.
type calibRun struct {
	samples  []stats.Sample
	perSleep map[time.Duration]int

	pendingSeq   uint64
	pendingSleep time.Duration
	sentTSC      uint64
	sentEpoch    uint64
	timer        enclave.CancelFunc

	// lastResponse / lastRecvTSC anchor the time reference once the
	// regression completes.
	lastResponse wire.Message
	lastRecvTSC  uint64
}

// abandonPending drops the in-flight sample (timer included) so a fresh
// request can be issued. The stale response, if it ever arrives, is
// ignored by sequence-number mismatch.
func (c *calibRun) abandonPending() {
	if c.timer != nil {
		c.timer()
		c.timer = nil
	}
	c.pendingSeq = 0
}

// Start begins (or restarts) a full speed + reference calibration with
// the Time Authority.
func (p *policy) Start(e *engine.Engine) {
	e.CancelGather()
	p.cancelRef()
	p.calib = &calibRun{perSleep: make(map[time.Duration]int, len(p.cfg.CalibSleeps))}
	p.sendNextCalibSample(e)
}

// OnTimeResponse claims Time Authority responses belonging to the
// pending calibration sample. The sender is already authenticated as
// the single configured authority, so only the sequence matters here.
func (p *policy) OnTimeResponse(e *engine.Engine, _ simnet.Addr, msg wire.Message) bool {
	if p.calib != nil && msg.Seq == p.calib.pendingSeq {
		p.onCalibSample(e, msg)
		return true
	}
	return false
}

// OnAEX abandons an in-flight calibration sample: it is no longer
// bounded by uninterrupted execution, so retry immediately rather than
// waiting out a wasted roundtrip.
func (p *policy) OnAEX(e *engine.Engine) {
	if p.calib != nil && p.calib.pendingSeq != 0 {
		p.calib.abandonPending()
		p.sendNextCalibSample(e)
	}
}

// nextCalibSleep picks the sleep value with the fewest collected
// samples, so collection interleaves sleeps and finishes them together.
func (p *policy) nextCalibSleep() (time.Duration, bool) {
	var best time.Duration
	bestCount := p.cfg.CalibSamplesPerSleep
	found := false
	for _, s := range p.cfg.CalibSleeps {
		if c := p.calib.perSleep[s]; c < bestCount {
			bestCount = c
			best = s
			found = true
		}
	}
	return best, found
}

// sendNextCalibSample issues the next calibration roundtrip.
func (p *policy) sendNextCalibSample(e *engine.Engine) {
	sleep, ok := p.nextCalibSleep()
	if !ok {
		p.finishCalibration(e)
		return
	}
	c := p.calib
	c.pendingSleep = sleep
	c.pendingSeq = e.NextSeq()
	c.sentTSC = e.Platform().ReadTSC()
	c.sentEpoch = e.AEXEpoch()
	e.SendSealed(e.Authority(), wire.Message{
		Kind:  wire.KindTimeRequest,
		Seq:   c.pendingSeq,
		Sleep: sleep,
	})
	timeout := sleep + p.cfg.TATimeout
	c.timer = e.Platform().AfterTicks(e.TicksFor(timeout), func() {
		// Response lost or over-delayed: retry with a fresh request.
		c.timer = nil
		c.pendingSeq = 0
		p.sendNextCalibSample(e)
	})
}

// onCalibSample handles the TA response to the pending calibration
// request. Samples whose window was severed by an AEX are discarded:
// the attacker could have manipulated the TSC during the exit.
func (p *policy) onCalibSample(e *engine.Engine, msg wire.Message) {
	c := p.calib
	recvTSC := e.Platform().ReadTSC()
	if c.timer != nil {
		c.timer()
		c.timer = nil
	}
	c.pendingSeq = 0
	if e.AEXEpoch() != c.sentEpoch {
		p.sendNextCalibSample(e)
		return
	}
	c.samples = append(c.samples, stats.Sample{
		X: c.pendingSleep.Seconds(),
		Y: float64(recvTSC - c.sentTSC),
	})
	c.perSleep[c.pendingSleep]++
	c.lastResponse = msg
	c.lastRecvTSC = recvTSC
	p.sendNextCalibSample(e)
}

// finishCalibration regresses the collected samples and installs the new
// clock: F_calib from the slope, the one-way-delay estimate from the
// intercept, and the time reference from the most recent TA response.
func (p *policy) finishCalibration(e *engine.Engine) {
	c := p.calib
	var fit stats.Fit
	var err error
	switch p.cfg.Regression {
	case RegressionTheilSen:
		fit, err = stats.TheilSen(c.samples)
	default:
		fit, err = stats.OLS(c.samples)
	}
	if err != nil || fit.Slope <= 0 {
		// Degenerate measurements (e.g. all roundtrips interrupted in
		// pathological schedules): start over.
		p.Start(e)
		return
	}
	owd := int64(fit.Intercept / fit.Slope / 2 * 1e9)
	if owd < 0 {
		owd = 0
	}
	if owd > maxOWDNanos {
		owd = maxOWDNanos
	}
	p.owdNanos = owd

	// Anchor the reference on the last TA response: the TA read its
	// clock when sending, one network traversal before our receive.
	p.calib = nil
	e.CompleteCalibration(fit.Slope, c.lastResponse.TimeNanos+p.owdNanos, c.lastRecvTSC)
}

// OnStart: the original protocol has no steady-state self-checking to
// arm.
func (p *policy) OnStart(*engine.Engine) {}

// OnTaint starts the recovery ladder after an AEX: peers first, the
// Time Authority only if no peer answers (paper §III-B).
func (p *policy) OnTaint(e *engine.Engine) {
	e.SetState(StateTainted)
	e.BeginPeerGather()
}

// OnPeerSample: the original protocol gathers peers only through the
// engine's taint gather; stale responses are dropped.
func (p *policy) OnPeerSample(*engine.Engine, uint64, engine.PeerSample) {}

// StartRefCalib re-acquires only the time reference from the TA (the
// peer untaint path failed). Retries on timeout until a response lands.
func (p *policy) StartRefCalib(e *engine.Engine) {
	e.SetState(StateRefCalib)
	p.refSeq = e.NextSeq()
	e.SendSealed(e.Authority(), wire.Message{
		Kind: wire.KindTimeRequest,
		Seq:  p.refSeq,
		// Sleep 0: immediate response, minimal offset error.
	})
	p.refTimer = e.Platform().AfterTicks(e.TicksFor(p.cfg.TATimeout), func() {
		p.refTimer = nil
		p.refSeq = 0
		p.StartRefCalib(e)
	})
}

// OnTimeResponse (recovery half) claims the pending reference
// calibration response and installs the TA's reference time.
func (p *policy) onRefCalibResponse(e *engine.Engine, msg wire.Message) {
	if p.refTimer != nil {
		p.refTimer()
		p.refTimer = nil
	}
	p.refSeq = 0
	e.AdoptTAReference(msg.TimeNanos+p.owdNanos, e.Platform().ReadTSC())
}

// recoveryPolicy is the RecoveryPolicy view of the bundle: both
// engine policies share one state struct, but each interface claims
// Time Authority responses for its own exchanges, so the method is
// disambiguated here.
type recoveryPolicy struct{ *policy }

// OnTimeResponse claims the pending reference calibration response.
func (rp recoveryPolicy) OnTimeResponse(e *engine.Engine, _ simnet.Addr, msg wire.Message) bool {
	p := rp.policy
	if p.refSeq != 0 && msg.Seq == p.refSeq {
		p.onRefCalibResponse(e, msg)
		return true
	}
	return false
}

// Cancel clears any pending peer-untaint or ref-calib exchange (used
// when escalating to a full calibration).
func (p *policy) Cancel(e *engine.Engine) {
	e.CancelGather()
	p.cancelRef()
}

func (p *policy) cancelRef() {
	if p.refTimer != nil {
		p.refTimer()
		p.refTimer = nil
	}
	p.refSeq = 0
}
