package core

import (
	"time"

	"triadtime/internal/enclave"
	"triadtime/internal/stats"
	"triadtime/internal/wire"
)

// maxOWDNanos caps the one-way-delay estimate extracted from the
// calibration intercept; larger values are treated as noise.
const maxOWDNanos = 10 * int64(time.Millisecond)

// calibRun tracks one full calibration: repeated TA roundtrips with
// requested sleeps, each bounded by uninterrupted execution (no AEX
// between request send and response receipt), then a regression of TSC
// increments on requested sleeps whose slope is F_calib.
type calibRun struct {
	samples  []stats.Sample
	perSleep map[time.Duration]int

	pendingSeq   uint64
	pendingSleep time.Duration
	sentTSC      uint64
	sentEpoch    uint64
	timer        enclave.CancelFunc

	// lastResponse / lastRecvTSC anchor the time reference once the
	// regression completes.
	lastResponse wire.Message
	lastRecvTSC  uint64
}

// abandonPending drops the in-flight sample (timer included) so a fresh
// request can be issued. The stale response, if it ever arrives, is
// ignored by sequence-number mismatch.
func (c *calibRun) abandonPending() {
	if c.timer != nil {
		c.timer()
		c.timer = nil
	}
	c.pendingSeq = 0
}

// startFullCalibration begins (or restarts) a full speed + reference
// calibration with the Time Authority.
func (n *Node) startFullCalibration() {
	n.cancelRecoveryTimers()
	n.calib = &calibRun{perSleep: make(map[time.Duration]int, len(n.cfg.CalibSleeps))}
	n.sendNextCalibSample()
}

// nextCalibSleep picks the sleep value with the fewest collected
// samples, so collection interleaves sleeps and finishes them together.
func (n *Node) nextCalibSleep() (time.Duration, bool) {
	var best time.Duration
	bestCount := n.cfg.CalibSamplesPerSleep
	found := false
	for _, s := range n.cfg.CalibSleeps {
		if c := n.calib.perSleep[s]; c < bestCount {
			bestCount = c
			best = s
			found = true
		}
	}
	return best, found
}

// sendNextCalibSample issues the next calibration roundtrip.
func (n *Node) sendNextCalibSample() {
	sleep, ok := n.nextCalibSleep()
	if !ok {
		n.finishCalibration()
		return
	}
	c := n.calib
	c.pendingSleep = sleep
	c.pendingSeq = n.nextSeq()
	c.sentTSC = n.platform.ReadTSC()
	c.sentEpoch = n.aexEpoch
	n.platform.Send(n.cfg.Authority, n.sealer.Seal(wire.Message{
		Kind:  wire.KindTimeRequest,
		Seq:   c.pendingSeq,
		Sleep: sleep,
	}))
	timeout := sleep + n.cfg.TATimeout
	c.timer = n.platform.AfterTicks(n.ticksFor(timeout), func() {
		// Response lost or over-delayed: retry with a fresh request.
		c.timer = nil
		c.pendingSeq = 0
		n.sendNextCalibSample()
	})
}

// onCalibSample handles the TA response to the pending calibration
// request. Samples whose window was severed by an AEX are discarded:
// the attacker could have manipulated the TSC during the exit.
func (n *Node) onCalibSample(msg wire.Message) {
	c := n.calib
	recvTSC := n.platform.ReadTSC()
	if c.timer != nil {
		c.timer()
		c.timer = nil
	}
	c.pendingSeq = 0
	if n.aexEpoch != c.sentEpoch {
		n.sendNextCalibSample()
		return
	}
	c.samples = append(c.samples, stats.Sample{
		X: c.pendingSleep.Seconds(),
		Y: float64(recvTSC - c.sentTSC),
	})
	c.perSleep[c.pendingSleep]++
	c.lastResponse = msg
	c.lastRecvTSC = recvTSC
	n.sendNextCalibSample()
}

// finishCalibration regresses the collected samples and installs the new
// clock: F_calib from the slope, the one-way-delay estimate from the
// intercept, and the time reference from the most recent TA response.
func (n *Node) finishCalibration() {
	c := n.calib
	var fit stats.Fit
	var err error
	switch n.cfg.Regression {
	case RegressionTheilSen:
		fit, err = stats.TheilSen(c.samples)
	default:
		fit, err = stats.OLS(c.samples)
	}
	if err != nil || fit.Slope <= 0 {
		// Degenerate measurements (e.g. all roundtrips interrupted in
		// pathological schedules): start over.
		n.startFullCalibration()
		return
	}
	n.fCalib = fit.Slope
	owd := int64(fit.Intercept / fit.Slope / 2 * 1e9)
	if owd < 0 {
		owd = 0
	}
	if owd > maxOWDNanos {
		owd = maxOWDNanos
	}
	n.owdNanos = owd

	// Anchor the reference on the last TA response: the TA read its
	// clock when sending, one network traversal before our receive.
	n.refNanos = c.lastResponse.TimeNanos + n.owdNanos
	n.refTSC = c.lastRecvTSC
	n.calib = nil
	n.taRefs++
	n.events.taReference()
	n.events.calibrated(n.fCalib)
	n.setState(StateOK)
}

// startRefCalib re-acquires only the time reference from the TA (the
// peer untaint path failed). Retries on timeout until a response lands.
func (n *Node) startRefCalib() {
	n.setState(StateRefCalib)
	n.refSeq = n.nextSeq()
	n.platform.Send(n.cfg.Authority, n.sealer.Seal(wire.Message{
		Kind: wire.KindTimeRequest,
		Seq:  n.refSeq,
		// Sleep 0: immediate response, minimal offset error.
	}))
	n.refTimer = n.platform.AfterTicks(n.ticksFor(n.cfg.TATimeout), func() {
		n.refTimer = nil
		n.refSeq = 0
		n.startRefCalib()
	})
}

// onRefCalibResponse installs the TA's reference time.
func (n *Node) onRefCalibResponse(msg wire.Message) {
	if n.refTimer != nil {
		n.refTimer()
		n.refTimer = nil
	}
	n.refSeq = 0
	n.refNanos = msg.TimeNanos + n.owdNanos
	n.refTSC = n.platform.ReadTSC()
	n.taRefs++
	n.events.taReference()
	n.setState(StateOK)
}

// cancelRecoveryTimers clears any pending peer-untaint or ref-calib
// exchange (used when escalating to a full calibration).
func (n *Node) cancelRecoveryTimers() {
	if n.peerTimer != nil {
		n.peerTimer()
		n.peerTimer = nil
	}
	n.peerSeq = 0
	if n.refTimer != nil {
		n.refTimer()
		n.refTimer = nil
	}
	n.refSeq = 0
}
