package core

import (
	"errors"
	"time"

	"triadtime/internal/engine"
	"triadtime/internal/simnet"
)

// RegressionKind selects the calibration regression estimator.
type RegressionKind int

// Estimators.
const (
	// RegressionOLS is ordinary least squares, the original protocol's
	// estimator (vulnerable to the F+/F- delay attacks).
	RegressionOLS RegressionKind = iota + 1
	// RegressionTheilSen is the robust median-of-slopes estimator used
	// by the hardened protocol variant.
	RegressionTheilSen
)

// Config parameterizes a Triad node.
type Config struct {
	// Key is the cluster's 32-byte pre-shared AES-256 key.
	Key []byte
	// Addr is this node's network address and wire sender identity.
	Addr simnet.Addr
	// Peers are the other Triad nodes in the cluster.
	Peers []simnet.Addr
	// Authority is the Time Authority's address.
	Authority simnet.Addr
	// Authorities lists multiple independent Time Authorities. With two
	// or more entries the node abandons the single-TA trust assumption:
	// calibration fans out to every authority and a reference is
	// adopted only when a quorum's Marzullo intervals agree
	// (engine.QuorumCalibration); the sleep-regression calibration is
	// not used. Authority may be left zero and defaults to
	// Authorities[0].
	Authorities []simnet.Addr
	// QuorumMinAgree overrides the quorum's strict-majority agreement
	// rule with an absolute count (e.g. 1 for a 2-authority deployment
	// that must survive one authority loss). 0 keeps the majority rule.
	QuorumMinAgree int
	// QuorumRecheck is the steady-state quorum revalidation period
	// (default 10s); failures degrade to holdover instead of going
	// dark.
	QuorumRecheck time.Duration
	// QuorumErrBudget is the base half-width of each authority's
	// confidence interval (default 10ms).
	QuorumErrBudget time.Duration

	// CalibSleeps are the sleep durations requested from the TA during
	// speed calibration. Default: {0, 1s}, as in the paper's
	// implementation ("regression over roundtrips of messages with
	// 0s-sleep and 1s-sleep").
	CalibSleeps []time.Duration
	// CalibSamplesPerSleep is how many uninterrupted samples to collect
	// per sleep value before regressing. Default: 4.
	CalibSamplesPerSleep int
	// Regression selects the slope estimator. Default: RegressionOLS.
	Regression RegressionKind

	// PeerTimeout bounds the wait for peer untainting responses before
	// falling back to the Time Authority. Default: 20ms.
	PeerTimeout time.Duration
	// TATimeout bounds the wait for a TA response beyond the requested
	// sleep before retrying. Default: 250ms.
	TATimeout time.Duration

	// MonitorTicks is the guest-TSC window of one INC monitoring
	// measurement. Default: 15e6 ticks (~5ms), the paper's window.
	MonitorTicks uint64
	// MonitorTolerance is the relative INC deviation from the baseline
	// that is flagged as a TSC discrepancy. Default: 0.005 (0.5%) —
	// generous against the σ≈2.9/632182 ≈ 5ppm measurement noise while
	// far below any useful attack scaling.
	MonitorTolerance float64
	// DisableMonitor turns off INC monitoring (some experiments isolate
	// calibration behaviour).
	DisableMonitor bool
	// EnableMemMonitor additionally runs the frequency-independent
	// memory-access monitor, closing the TSC-scaling-masked-by-DVFS
	// attack (§IV-A.1's RQ A.1 answer).
	EnableMemMonitor bool
	// MemTolerance is the memory monitor's relative deviation flag
	// threshold. Default: 0.05, above its ~1% measurement noise.
	MemTolerance float64

	// Events are optional observation hooks.
	Events Events
}

// Defaults used when Config fields are zero. The monitor and peer
// timeout defaults are the engine's, shared across variants.
const (
	DefaultCalibSamplesPerSleep = 4
	DefaultPeerTimeout          = engine.DefaultPeerTimeout
	DefaultTATimeout            = 250 * time.Millisecond
	DefaultMonitorTicks         = engine.DefaultMonitorTicks
	DefaultMonitorTolerance     = engine.DefaultMonitorTolerance
)

// DefaultCalibSleeps returns the paper's calibration sleeps: an
// immediate response and a 1s-sleep response.
func DefaultCalibSleeps() []time.Duration {
	return []time.Duration{0, time.Second}
}

// withDefaults returns a copy of the config with the core-specific
// zero fields defaulted and validated; key and address validation is
// the engine's job.
func (c Config) withDefaults() (Config, error) {
	if len(c.CalibSleeps) == 0 {
		c.CalibSleeps = DefaultCalibSleeps()
	}
	if len(c.CalibSleeps) < 2 {
		return c, errors.New("core: calibration needs at least two sleep values for a regression")
	}
	if c.CalibSamplesPerSleep <= 0 {
		c.CalibSamplesPerSleep = DefaultCalibSamplesPerSleep
	}
	if c.Regression == 0 {
		c.Regression = RegressionOLS
	}
	if c.TATimeout <= 0 {
		c.TATimeout = DefaultTATimeout
	}
	return c, nil
}
