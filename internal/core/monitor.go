package core

import "triadtime/internal/enclave"

// The TSC-monitoring thread: a dedicated enclave thread cross-checks
// the guest TSC against the core's instruction rate (INC counting,
// §IV-A.1: σ≈2.9 on ~632182 at fixed frequency) and — when
// EnableMemMonitor is set — against the frequency-independent
// memory-access rate, which closes the masking attack where the OS
// changes the core's DVFS point in proportion to a TSC scaling. Any
// concluded TSC manipulation triggers a full recalibration.

// startMonitor builds and starts the node's rate monitor.
func (n *Node) startMonitor() {
	n.monitor = enclave.NewRateMonitor(n.platform, enclave.MonitorConfig{
		INCTicks:      n.cfg.MonitorTicks,
		INCTol:        n.cfg.MonitorTolerance,
		EnableMem:     n.cfg.EnableMemMonitor,
		MemTol:        n.cfg.MemTolerance,
		OnDiscrepancy: n.onDiscrepancy,
		OnFreqChange: func(rel float64) {
			// A core-frequency change is legal OS behaviour; the INC
			// baseline re-learns. Surface it for observability only.
			n.events.freqChange(rel)
		},
	})
	n.monitor.Start()
}

// onDiscrepancy reacts to detected TSC tampering: the calibrated clock
// can no longer be trusted, so the node re-learns both rate and
// reference from the Time Authority, and the monitor re-baselines
// against the (possibly still manipulated) new TSC relationship.
func (n *Node) onDiscrepancy(rel float64) {
	n.events.discrepancy(rel)
	n.monitor.Reset()
	if n.state == StateFullCalib {
		return // already recalibrating
	}
	n.cancelRecoveryTimers()
	n.setState(StateFullCalib)
	n.startFullCalibration()
}
