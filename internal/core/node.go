package core

import (
	"fmt"

	"triadtime/internal/enclave"
	"triadtime/internal/engine"
	"triadtime/internal/simnet"
)

// ErrUnavailable is returned by TrustedNow while the node cannot serve
// trusted timestamps (tainted or calibrating). It is the engine's
// sentinel, shared by every protocol variant.
var ErrUnavailable = engine.ErrUnavailable

// Node is one Triad protocol participant running inside a TEE: the
// shared protocol engine assembled with the original protocol's
// policies.
//
// A Node is event-driven: after Start, all work happens in callbacks the
// Platform dispatches (datagram deliveries, AEX notifications, timer and
// INC-measurement completions). Platforms serialize callbacks, so Node
// has no internal locking; callers of TrustedNow must call from the same
// dispatch context (in the simulation: from scheduler events; live: via
// the transport's Do).
type Node struct {
	eng *engine.Engine
	pol *policy
}

// NewNode creates a Triad node on the given platform. The node installs
// itself as the platform's AEX and message handler. Call Start to begin
// the protocol.
func NewNode(platform enclave.Platform, cfg Config) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	pol := &policy{cfg: cfg}
	pols := engine.Policies{
		Calibration: pol,
		Recovery:    recoveryPolicy{pol},
		Filter:      engine.AdoptIfAhead{},
	}
	if len(cfg.Authorities) >= 2 {
		// Multi-authority deployment: quorum calibration replaces the
		// sleep-regression policy, and the authority side of recovery
		// runs quorum reference rounds (peer untainting is unchanged).
		q := engine.NewQuorumCalibration(engine.QuorumConfig{
			TATimeout:       cfg.TATimeout,
			ErrBudget:       cfg.QuorumErrBudget,
			RecheckInterval: cfg.QuorumRecheck,
			MinAgree:        cfg.QuorumMinAgree,
		})
		pols.Calibration = q
		pols.Recovery = engine.QuorumRecovery{Inner: recoveryPolicy{pol}, Quorum: q}
	}
	eng, err := engine.New(platform, engine.Config{
		Key:              cfg.Key,
		Addr:             cfg.Addr,
		Peers:            cfg.Peers,
		Authority:        cfg.Authority,
		Authorities:      cfg.Authorities,
		PeerTimeout:      cfg.PeerTimeout,
		MonitorTicks:     cfg.MonitorTicks,
		MonitorTolerance: cfg.MonitorTolerance,
		DisableMonitor:   cfg.DisableMonitor,
		EnableMemMonitor: cfg.EnableMemMonitor,
		MemTolerance:     cfg.MemTolerance,
		FreqChangeEvents: true,
		Events:           cfg.Events,
	}, pols)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Node{eng: eng, pol: pol}, nil
}

// Start launches the protocol: the node enters full calibration with the
// Time Authority and, unless disabled, starts TSC monitoring. Starting a
// started node is a no-op.
func (n *Node) Start() { n.eng.Start() }

// Addr reports the node's network address.
func (n *Node) Addr() simnet.Addr { return n.eng.Addr() }

// State reports the node's protocol state.
func (n *Node) State() State { return n.eng.State() }

// FCalib reports the calibrated TSC rate in ticks per reference second,
// or 0 before the first calibration completes.
func (n *Node) FCalib() float64 { return n.eng.FCalib() }

// TAReferences reports how many time references the node has adopted
// from the Time Authority (Figure 2b's metric).
func (n *Node) TAReferences() int { return n.eng.Counters().TAReferences }

// PeerUntaints reports how many times a peer's timestamp untainted this
// node.
func (n *Node) PeerUntaints() int { return n.eng.Counters().PeerUntaints }

// ServedCount reports how many trusted timestamps have been served.
func (n *Node) ServedCount() uint64 { return n.eng.Counters().Served }

// Counters returns a snapshot of the engine's protocol counters (the
// hardening-only fields stay zero on original nodes).
func (n *Node) Counters() engine.Counters { return n.eng.CounterSnapshot() }

// TimeJumps returns the forward jumps (ns) taken when adopting peer
// timestamps; the 50–70ms jumps of Figure 3a and ~35ms jumps of
// Figure 6a show up here. The slice is a copy.
func (n *Node) TimeJumps() []int64 { return n.eng.TimeJumps() }

// TrustedNow serves one trusted timestamp (nanoseconds on the Time
// Authority's timeline). It fails with ErrUnavailable while the node is
// tainted or calibrating. Served timestamps are strictly monotonic.
func (n *Node) TrustedNow() (int64, error) { return n.eng.TrustedNow() }

// ClockReading reports the node's internal clock without availability
// checking or monotonic bumping. Instrumentation only (the experiment
// harness samples drift with it); applications must use TrustedNow.
func (n *Node) ClockReading() (int64, bool) { return n.eng.ClockReading() }
