package core

import (
	"errors"
	"fmt"
	"time"

	"triadtime/internal/enclave"
	"triadtime/internal/simnet"
	"triadtime/internal/wire"
)

// ErrUnavailable is returned by TrustedNow while the node cannot serve
// trusted timestamps (tainted or calibrating).
var ErrUnavailable = errors.New("core: trusted time unavailable")

// Node is one Triad protocol participant running inside a TEE.
//
// A Node is event-driven: after Start, all work happens in callbacks the
// Platform dispatches (datagram deliveries, AEX notifications, timer and
// INC-measurement completions). Platforms serialize callbacks, so Node
// has no internal locking; callers of TrustedNow must call from the same
// dispatch context (in the simulation: from scheduler events; live: via
// the transport's Do).
type Node struct {
	cfg      Config
	platform enclave.Platform
	sealer   *wire.Sealer
	opener   *wire.Opener
	events   *Events
	peers    map[simnet.Addr]bool

	state State

	// Trusted clock: now = refNanos + (tsc - refTSC)/fCalib.
	fCalib     float64 // estimated guest-TSC ticks per reference second
	refNanos   int64
	refTSC     uint64
	owdNanos   int64 // one-way TA delay estimate from calibration
	lastServed int64

	aexEpoch uint64 // bumped on every AEX; stamps in-flight measurements
	seq      uint64 // request sequence numbers

	calib     *calibRun
	peerSeq   uint64 // pending peer untaint request, 0 = none
	peerTimer enclave.CancelFunc
	refSeq    uint64 // pending reference calibration request, 0 = none
	refTimer  enclave.CancelFunc

	monitor *enclave.RateMonitor

	// Counters.
	taRefs       int
	peerUntaints int
	servedCount  uint64
	timeJumps    []int64
}

// NewNode creates a Triad node on the given platform. The node installs
// itself as the platform's AEX and message handler. Call Start to begin
// the protocol.
func NewNode(platform enclave.Platform, cfg Config) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	sealer, err := wire.NewSealer(cfg.Key, uint32(cfg.Addr))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	opener, err := wire.NewOpener(cfg.Key)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	peers := make(map[simnet.Addr]bool, len(cfg.Peers))
	for _, p := range cfg.Peers {
		peers[p] = true
	}
	n := &Node{
		cfg:      cfg,
		platform: platform,
		sealer:   sealer,
		opener:   opener,
		events:   &cfg.Events,
		peers:    peers,
		state:    StateInit,
	}
	platform.SetAEXHandler(n.onAEX)
	platform.SetMessageHandler(n.onDatagram)
	return n, nil
}

// Start launches the protocol: the node enters full calibration with the
// Time Authority and, unless disabled, starts TSC monitoring. Starting a
// started node is a no-op.
func (n *Node) Start() {
	if n.state != StateInit {
		return
	}
	n.setState(StateFullCalib)
	n.startFullCalibration()
	if !n.cfg.DisableMonitor {
		n.startMonitor()
	}
}

// Addr reports the node's network address.
func (n *Node) Addr() simnet.Addr { return n.cfg.Addr }

// State reports the node's protocol state.
func (n *Node) State() State { return n.state }

// FCalib reports the calibrated TSC rate in ticks per reference second,
// or 0 before the first calibration completes.
func (n *Node) FCalib() float64 { return n.fCalib }

// TAReferences reports how many time references the node has adopted
// from the Time Authority (Figure 2b's metric).
func (n *Node) TAReferences() int { return n.taRefs }

// PeerUntaints reports how many times a peer's timestamp untainted this
// node.
func (n *Node) PeerUntaints() int { return n.peerUntaints }

// ServedCount reports how many trusted timestamps have been served.
func (n *Node) ServedCount() uint64 { return n.servedCount }

// TimeJumps returns the forward jumps (ns) taken when adopting peer
// timestamps; the 50–70ms jumps of Figure 3a and ~35ms jumps of
// Figure 6a show up here. The slice is a copy.
func (n *Node) TimeJumps() []int64 {
	cp := make([]int64, len(n.timeJumps))
	copy(cp, n.timeJumps)
	return cp
}

// TrustedNow serves one trusted timestamp (nanoseconds on the Time
// Authority's timeline). It fails with ErrUnavailable while the node is
// tainted or calibrating. Served timestamps are strictly monotonic.
func (n *Node) TrustedNow() (int64, error) {
	if n.state != StateOK {
		return 0, fmt.Errorf("%w: state %s", ErrUnavailable, n.state)
	}
	return n.serveTimestamp(), nil
}

// ClockReading reports the node's internal clock without availability
// checking or monotonic bumping. Instrumentation only (the experiment
// harness samples drift with it); applications must use TrustedNow.
func (n *Node) ClockReading() (int64, bool) {
	if n.fCalib == 0 {
		return 0, false
	}
	return n.clockNow(), true
}

// clockNow converts the current TSC to trusted nanoseconds. Callers
// must ensure fCalib != 0.
func (n *Node) clockNow() int64 {
	tsc := n.platform.ReadTSC()
	var delta float64
	if tsc >= n.refTSC {
		delta = float64(tsc-n.refTSC) / n.fCalib * 1e9
	} else {
		// TSC behind the anchor: a backwards TSC jump the monitor has
		// not yet caught. Freeze rather than go back in time.
		delta = 0
	}
	return n.refNanos + int64(delta)
}

// serveTimestamp returns the current clock reading bumped to stay
// strictly monotonic across everything this node has ever served.
func (n *Node) serveTimestamp() int64 {
	ts := n.clockNow()
	if ts <= n.lastServed {
		ts = n.lastServed + 1
	}
	n.lastServed = ts
	n.servedCount++
	return ts
}

func (n *Node) setState(s State) {
	if s == n.state {
		return
	}
	old := n.state
	n.state = s
	n.events.stateChanged(old, s)
}

// ticksFor converts a wall duration to guest ticks using the boot-time
// frequency hint. Used only to size timeouts, never for trusted time.
func (n *Node) ticksFor(d time.Duration) uint64 {
	return uint64(d.Seconds() * n.platform.BootTSCHz())
}

func (n *Node) nextSeq() uint64 {
	n.seq++
	return n.seq
}

// onDatagram authenticates and dispatches one delivered datagram. The
// network-level source is ignored: trust keys off the authenticated
// wire-layer sender identity.
func (n *Node) onDatagram(_ simnet.Addr, payload []byte) {
	msg, sender, err := n.opener.Open(payload)
	if err != nil {
		return // tampered, replayed, or foreign traffic: drop
	}
	// The authenticated sender identity, not the network source, decides
	// trust: an attacker can spoof addresses but not the AEAD.
	switch msg.Kind {
	case wire.KindTimeResponse:
		if simnet.Addr(sender) != n.cfg.Authority {
			return
		}
		n.onTimeResponse(msg)
	case wire.KindPeerTimeRequest:
		if !n.peers[simnet.Addr(sender)] {
			return
		}
		n.onPeerTimeRequest(simnet.Addr(sender), msg)
	case wire.KindPeerTimeResponse:
		if !n.peers[simnet.Addr(sender)] {
			return
		}
		n.onPeerTimeResponse(sender, msg)
	case wire.KindTimeRequest, wire.KindChimerReport:
		// Nodes are not the Time Authority, and the original protocol
		// does not participate in chimer gossip; ignore.
	}
}

// onTimeResponse routes a Time Authority response to whichever exchange
// is waiting on it.
func (n *Node) onTimeResponse(msg wire.Message) {
	switch {
	case n.calib != nil && msg.Seq == n.calib.pendingSeq:
		n.onCalibSample(msg)
	case n.refSeq != 0 && msg.Seq == n.refSeq:
		n.onRefCalibResponse(msg)
	default:
		// Stale or duplicate response (e.g. a sample abandoned after an
		// AEX): drop.
	}
}

// onPeerTimeRequest answers a peer's untaint request if, and only if,
// this node's own timestamp is currently trustworthy.
func (n *Node) onPeerTimeRequest(from simnet.Addr, msg wire.Message) {
	if n.state != StateOK {
		return // tainted peers stay silent (paper §III-D)
	}
	n.platform.Send(from, n.sealer.Seal(wire.Message{
		Kind:      wire.KindPeerTimeResponse,
		Seq:       msg.Seq,
		TimeNanos: n.serveTimestamp(),
	}))
}

// onAEX is the AEX-Notify handler: time continuity was severed.
func (n *Node) onAEX() {
	n.aexEpoch++
	switch n.state {
	case StateOK:
		n.becomeTainted()
	case StateFullCalib:
		// An in-flight calibration sample is no longer bounded by
		// uninterrupted execution: abandon it and retry immediately
		// rather than waiting out a wasted roundtrip.
		if n.calib != nil && n.calib.pendingSeq != 0 {
			n.calib.abandonPending()
			n.sendNextCalibSample()
		}
	case StateTainted, StateRefCalib, StateInit:
		// Already tainted/recovering; nothing changes.
	}
}
