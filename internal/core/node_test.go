package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"triadtime/internal/authority"
	"triadtime/internal/enclave"
	"triadtime/internal/sim"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
	"triadtime/internal/wire"
)

const taAddr simnet.Addr = 100

func testKey() []byte {
	key := make([]byte, wire.KeySize)
	for i := range key {
		key[i] = byte(i + 1)
	}
	return key
}

// rig is a miniature cluster for node tests: a scheduler, a jitter-free
// (unless configured) network, a Time Authority, and N nodes.
type rig struct {
	t         *testing.T
	sched     *sim.Scheduler
	net       *simnet.Network
	ta        *authority.SimBinding
	nodes     []*Node
	platforms []*enclave.SimPlatform
}

func newRig(t *testing.T, nodeCount int, link simnet.Link, tweak func(i int, cfg *Config)) *rig {
	t.Helper()
	sched := sim.NewScheduler()
	rng := sim.NewRNG(1234)
	network := simnet.New(sched, rng.Fork(0), link)
	ta, err := authority.NewSimBinding(sched, network, testKey(), taAddr)
	if err != nil {
		t.Fatalf("authority: %v", err)
	}
	r := &rig{t: t, sched: sched, net: network, ta: ta}
	addrs := make([]simnet.Addr, nodeCount)
	for i := range addrs {
		addrs[i] = simnet.Addr(i + 1)
	}
	for i := 0; i < nodeCount; i++ {
		tsc := simtime.NewTSC(simtime.NominalTSCHz, uint64(i)*1e6)
		p := enclave.NewSimPlatform(sched, rng.Fork(uint64(i+10)), network, enclave.SimConfig{
			Addr: addrs[i],
			TSC:  tsc,
		})
		var peers []simnet.Addr
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		cfg := Config{
			Key:       testKey(),
			Addr:      addrs[i],
			Peers:     peers,
			Authority: taAddr,
		}
		if tweak != nil {
			tweak(i, &cfg)
		}
		node, err := NewNode(p, cfg)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		r.nodes = append(r.nodes, node)
		r.platforms = append(r.platforms, p)
	}
	return r
}

func (r *rig) startAll() {
	for _, n := range r.nodes {
		n.Start()
	}
}

func (r *rig) run(d time.Duration) {
	r.sched.RunUntil(r.sched.Now().Add(d))
}

func TestConfigValidation(t *testing.T) {
	sched := sim.NewScheduler()
	network := simnet.New(sched, sim.NewRNG(1), simnet.Link{})
	p := enclave.NewSimPlatform(sched, sim.NewRNG(2), network, enclave.SimConfig{
		Addr: 1, TSC: simtime.NewTSC(1e9, 0),
	})
	tests := []struct {
		name string
		cfg  Config
	}{
		{"bad key", Config{Key: []byte("short"), Addr: 1, Authority: 9}},
		{"self authority", Config{Key: testKey(), Addr: 1, Authority: 1}},
		{"self peer", Config{Key: testKey(), Addr: 1, Authority: 9, Peers: []simnet.Addr{1}}},
		{"one sleep", Config{Key: testKey(), Addr: 1, Authority: 9, CalibSleeps: []time.Duration{0}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewNode(p, tt.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestTrustedNowUnavailableBeforeCalibration(t *testing.T) {
	r := newRig(t, 1, simnet.Link{Base: 100 * time.Microsecond}, nil)
	if _, err := r.nodes[0].TrustedNow(); !errors.Is(err, ErrUnavailable) {
		t.Errorf("err = %v, want ErrUnavailable", err)
	}
	if _, ok := r.nodes[0].ClockReading(); ok {
		t.Error("ClockReading should be invalid before calibration")
	}
	if r.nodes[0].State() != StateInit {
		t.Errorf("state = %v, want Init", r.nodes[0].State())
	}
}

func TestFullCalibrationConvergesToTrueRate(t *testing.T) {
	r := newRig(t, 1, simnet.Link{Base: 100 * time.Microsecond}, nil)
	var transitions []State
	r.nodes[0].eng.Events().StateChanged = func(_, s State) { transitions = append(transitions, s) }
	r.startAll()
	r.run(30 * time.Second)

	n := r.nodes[0]
	if n.State() != StateOK {
		t.Fatalf("state = %v, want OK", n.State())
	}
	// Jitter-free link: the regression should recover the rate almost
	// exactly.
	if ppm := math.Abs(n.FCalib()-simtime.NominalTSCHz) / simtime.NominalTSCHz * 1e6; ppm > 1 {
		t.Errorf("FCalib = %v (%.2fppm off), want ~%v", n.FCalib(), ppm, simtime.NominalTSCHz)
	}
	if n.TAReferences() != 1 {
		t.Errorf("TAReferences = %d, want 1 (single full calibration)", n.TAReferences())
	}
	if len(transitions) < 2 || transitions[0] != StateFullCalib || transitions[len(transitions)-1] != StateOK {
		t.Errorf("transitions = %v, want FullCalib...OK", transitions)
	}
	// Clock tracks reference time closely right after calibration.
	ts, err := n.TrustedNow()
	if err != nil {
		t.Fatalf("TrustedNow: %v", err)
	}
	drift := time.Duration(ts - int64(r.sched.Now()))
	if drift < -time.Millisecond || drift > time.Millisecond {
		t.Errorf("clock off reference by %v right after calibration", drift)
	}
}

func TestServedTimestampsStrictlyMonotonic(t *testing.T) {
	r := newRig(t, 1, simnet.Link{Base: 100 * time.Microsecond}, nil)
	r.startAll()
	r.run(10 * time.Second)
	n := r.nodes[0]
	if n.State() != StateOK {
		t.Fatal("node did not calibrate")
	}
	prev := int64(0)
	for i := 0; i < 1000; i++ {
		ts, err := n.TrustedNow()
		if err != nil {
			t.Fatalf("TrustedNow: %v", err)
		}
		if ts <= prev {
			t.Fatalf("timestamp %d not strictly greater than %d", ts, prev)
		}
		prev = ts
	}
	if n.ServedCount() != 1000 {
		t.Errorf("ServedCount = %d", n.ServedCount())
	}
}

func TestMonotonicAcrossBackwardReferenceReset(t *testing.T) {
	r := newRig(t, 1, simnet.Link{Base: 100 * time.Microsecond}, nil)
	r.startAll()
	r.run(10 * time.Second)
	n := r.nodes[0]
	ts1, err := n.TrustedNow()
	if err != nil {
		t.Fatal(err)
	}
	// Force the reference a full second backwards (as a TA re-anchor
	// after a fast miscalibrated stretch would).
	n.eng.ShiftReference(-int64(time.Second))
	ts2, err := n.TrustedNow()
	if err != nil {
		t.Fatal(err)
	}
	if ts2 <= ts1 {
		t.Errorf("served %d after %d: monotonicity violated", ts2, ts1)
	}
}

func TestAEXTaintsAndPeerUntaints(t *testing.T) {
	r := newRig(t, 3, simnet.Link{Base: 100 * time.Microsecond}, nil)
	r.startAll()
	r.run(30 * time.Second)
	for i, n := range r.nodes {
		if n.State() != StateOK {
			t.Fatalf("node %d state = %v", i, n.State())
		}
	}
	// Taint node 0 only: peers are OK and must untaint it.
	r.platforms[0].FireAEX()
	if got := r.nodes[0].State(); got != StateTainted {
		t.Fatalf("state after AEX = %v, want Tainted", got)
	}
	if _, err := r.nodes[0].TrustedNow(); !errors.Is(err, ErrUnavailable) {
		t.Error("tainted node served a timestamp")
	}
	r.run(time.Second)
	if got := r.nodes[0].State(); got != StateOK {
		t.Fatalf("state after peer responses = %v, want OK", got)
	}
	if r.nodes[0].PeerUntaints() != 1 {
		t.Errorf("PeerUntaints = %d, want 1", r.nodes[0].PeerUntaints())
	}
	if r.nodes[0].TAReferences() != 1 {
		t.Errorf("TAReferences = %d, want 1 (no TA fallback needed)", r.nodes[0].TAReferences())
	}
}

func TestSimultaneousTaintFallsBackToTA(t *testing.T) {
	// All nodes tainted at once (machine-wide interrupt): nobody can
	// answer, so everyone RefCalibs with the TA — the Figure 2a sawtooth
	// mechanism.
	r := newRig(t, 3, simnet.Link{Base: 100 * time.Microsecond}, nil)
	r.startAll()
	r.run(30 * time.Second)
	for _, p := range r.platforms {
		p.FireAEX()
	}
	r.run(5 * time.Second)
	for i, n := range r.nodes {
		if n.State() != StateOK {
			t.Errorf("node %d state = %v, want OK", i, n.State())
		}
		if n.TAReferences() != 2 {
			t.Errorf("node %d TAReferences = %d, want 2 (calibration + refcalib)", i, n.TAReferences())
		}
		if n.PeerUntaints() != 0 {
			t.Errorf("node %d PeerUntaints = %d, want 0", i, n.PeerUntaints())
		}
	}
}

func TestPeerUntaintAdoptsHigherTimestamp(t *testing.T) {
	r := newRig(t, 2, simnet.Link{Base: 100 * time.Microsecond}, nil)
	r.startAll()
	r.run(30 * time.Second)
	victim, donor := r.nodes[0], r.nodes[1]
	// Push the donor's clock 50ms into the future.
	donor.eng.ShiftReference(50 * int64(time.Millisecond))
	r.platforms[0].FireAEX()
	r.run(time.Second)
	if victim.State() != StateOK {
		t.Fatalf("victim state = %v", victim.State())
	}
	jumps := victim.TimeJumps()
	if len(jumps) != 1 {
		t.Fatalf("jumps = %v, want exactly one", jumps)
	}
	if jump := time.Duration(jumps[0]); jump < 45*time.Millisecond || jump > 55*time.Millisecond {
		t.Errorf("jump = %v, want ~50ms (adopted the faster clock)", jump)
	}
	// The victim's clock now leads reference time by ~50ms.
	ts, _ := victim.TrustedNow()
	lead := time.Duration(ts - int64(r.sched.Now()))
	if lead < 40*time.Millisecond {
		t.Errorf("victim leads by %v, want ~50ms", lead)
	}
}

func TestPeerUntaintKeepsLocalWhenPeerBehind(t *testing.T) {
	r := newRig(t, 2, simnet.Link{Base: 100 * time.Microsecond}, nil)
	r.startAll()
	r.run(30 * time.Second)
	victim, donor := r.nodes[0], r.nodes[1]
	donor.eng.ShiftReference(-50 * int64(time.Millisecond)) // donor behind
	before, _ := victim.ClockReading()
	r.platforms[0].FireAEX()
	r.run(time.Second)
	if victim.State() != StateOK {
		t.Fatalf("victim state = %v", victim.State())
	}
	jumps := victim.TimeJumps()
	if len(jumps) != 1 || jumps[0] != 0 {
		t.Errorf("jumps = %v, want [0] (kept local, minimal bump)", jumps)
	}
	after, _ := victim.ClockReading()
	if after < before {
		t.Error("local clock went backwards on minimal-bump untaint")
	}
}

// muzzleBox drops every packet from the TA to one node, pinning that
// node in its recovery states.
type muzzleBox struct {
	victim simnet.Addr
	active bool
}

func (b *muzzleBox) Process(_ simtime.Instant, p simnet.Packet) simnet.Verdict {
	return simnet.Verdict{Drop: b.active && p.From == taAddr && p.To == b.victim}
}

func TestTaintedPeersStaySilent(t *testing.T) {
	r := newRig(t, 2, simnet.Link{Base: 100 * time.Microsecond}, nil)
	box := &muzzleBox{victim: 2}
	r.net.AttachMiddlebox(box)
	r.startAll()
	r.run(30 * time.Second)
	// Cut the donor's TA responses, then taint both nodes at once: both
	// peer-untaint attempts meet silence, both fall back to the TA, and
	// only the victim's RefCalib can complete — the donor stays pinned
	// in recovery.
	box.active = true
	r.platforms[1].FireAEX()
	r.platforms[0].FireAEX()
	r.run(2 * time.Second)
	// Taint the victim again: the donor, still recovering, must stay
	// silent even though it is past StateTainted (it is in RefCalib).
	r.platforms[0].FireAEX()
	r.run(2 * time.Second)
	victim, donor := r.nodes[0], r.nodes[1]
	if donor.State() == StateOK {
		t.Fatal("test setup: donor should still be recovering")
	}
	if victim.State() != StateOK {
		t.Fatalf("victim state = %v", victim.State())
	}
	// The donor stayed silent, so the victim needed the TA again.
	if victim.TAReferences() < 2 {
		t.Errorf("TAReferences = %d, want >= 2 (had to use the TA)", victim.TAReferences())
	}
	if victim.PeerUntaints() != 0 {
		t.Errorf("PeerUntaints = %d, want 0", victim.PeerUntaints())
	}
	box.active = false
}

func TestMonitorDetectsTSCScaling(t *testing.T) {
	r := newRig(t, 1, simnet.Link{Base: 100 * time.Microsecond}, nil)
	var discrepancies []float64
	r.nodes[0].eng.Events().Discrepancy = func(rel float64) { discrepancies = append(discrepancies, rel) }
	r.startAll()
	r.run(30 * time.Second)
	n := r.nodes[0]
	if n.State() != StateOK {
		t.Fatal("node did not calibrate")
	}
	firstCalib := n.FCalib()
	// Hypervisor scales the guest TSC up 10%.
	r.platforms[0].TSC().SetScale(1.1, r.sched.Now())
	r.run(60 * time.Second)
	if len(discrepancies) == 0 {
		t.Fatal("INC monitor never flagged the 10% TSC scaling")
	}
	if rel := discrepancies[0]; math.Abs(rel-(1-1/1.1)) > 0.02 {
		t.Errorf("first discrepancy rel = %v, want ~%v", rel, 1-1/1.1)
	}
	if n.State() != StateOK {
		t.Fatalf("state after recalibration = %v, want OK", n.State())
	}
	// Recalibrated rate reflects the new guest rate (~1.1x).
	if ratio := n.FCalib() / firstCalib; math.Abs(ratio-1.1) > 0.01 {
		t.Errorf("recalibrated FCalib ratio = %v, want ~1.1", ratio)
	}
	if n.TAReferences() < 2 {
		t.Errorf("TAReferences = %d, want >= 2 (full recalibration)", n.TAReferences())
	}
}

func TestMonitorDisabled(t *testing.T) {
	r := newRig(t, 1, simnet.Link{Base: 100 * time.Microsecond}, func(_ int, cfg *Config) {
		cfg.DisableMonitor = true
	})
	fired := false
	r.nodes[0].eng.Events().Discrepancy = func(float64) { fired = true }
	r.startAll()
	r.run(10 * time.Second)
	r.platforms[0].TSC().SetScale(1.5, r.sched.Now())
	r.run(30 * time.Second)
	if fired {
		t.Error("discrepancy fired with monitoring disabled")
	}
}

func TestCalibrationSurvivesFrequentAEXs(t *testing.T) {
	// AEXs every 700ms while calibrating with a 500ms sleep: roughly
	// half the 1s-window samples get severed and must be discarded
	// without biasing the estimate.
	r := newRig(t, 1, simnet.Link{Base: 100 * time.Microsecond}, func(_ int, cfg *Config) {
		cfg.CalibSleeps = []time.Duration{0, 500 * time.Millisecond}
	})
	stop := false
	var schedule func(at simtime.Instant)
	schedule = func(at simtime.Instant) {
		r.sched.At(at, func() {
			if stop {
				return
			}
			r.platforms[0].FireAEX()
			schedule(at.Add(700 * time.Millisecond))
		})
	}
	schedule(simtime.FromDuration(700 * time.Millisecond))
	r.startAll()
	r.run(120 * time.Second)
	stop = true
	n := r.nodes[0]
	if n.FCalib() == 0 {
		t.Fatal("calibration never completed under frequent AEXs")
	}
	if ppm := math.Abs(n.FCalib()-simtime.NominalTSCHz) / simtime.NominalTSCHz * 1e6; ppm > 5 {
		t.Errorf("FCalib %.2fppm off despite discard-on-AEX policy", ppm)
	}
}

func TestForgedAndReplayedDatagramsIgnored(t *testing.T) {
	r := newRig(t, 2, simnet.Link{Base: 100 * time.Microsecond}, nil)
	r.startAll()
	r.run(30 * time.Second)
	n := r.nodes[0]
	stateBefore := n.State()
	clockBefore, _ := n.ClockReading()

	// Garbage, wrong-key forgeries, and a "TimeResponse" sealed by a
	// peer (not the TA) must all be ignored.
	r.net.Send(2, 1, []byte("garbage"))
	wrongKey := make([]byte, wire.KeySize)
	forger, _ := wire.NewSealer(wrongKey, uint32(taAddr))
	r.net.Send(taAddr, 1, forger.Seal(wire.Message{Kind: wire.KindTimeResponse, Seq: 1, TimeNanos: 1 << 62}))
	peerSealer, _ := wire.NewSealer(testKey(), 2)
	r.net.Send(2, 1, peerSealer.Seal(wire.Message{Kind: wire.KindTimeResponse, Seq: 1, TimeNanos: 1 << 62}))
	r.run(time.Second)

	if n.State() != stateBefore {
		t.Errorf("state changed to %v after forged traffic", n.State())
	}
	clockAfter, _ := n.ClockReading()
	if clockAfter-clockBefore > int64(2*time.Second) {
		t.Error("clock jumped after forged traffic")
	}
}

func TestPeerRequestFromNonPeerIgnored(t *testing.T) {
	r := newRig(t, 1, simnet.Link{Base: 100 * time.Microsecond}, nil)
	r.startAll()
	r.run(10 * time.Second)
	// A valid cluster member that is not in this node's peer list (e.g.
	// sender ID 55) asks for time; the node must not answer.
	outsider, _ := wire.NewSealer(testKey(), 55)
	answered := false
	r.net.Register(55, func(simnet.Packet) { answered = true })
	r.net.Send(55, 1, outsider.Seal(wire.Message{Kind: wire.KindPeerTimeRequest, Seq: 1}))
	r.run(time.Second)
	if answered {
		t.Error("node answered a non-peer's time request")
	}
}

func TestStartIsIdempotent(t *testing.T) {
	r := newRig(t, 1, simnet.Link{Base: 100 * time.Microsecond}, nil)
	r.nodes[0].Start()
	r.nodes[0].Start()
	r.run(10 * time.Second)
	if r.nodes[0].TAReferences() != 1 {
		t.Errorf("TAReferences = %d after double Start, want 1", r.nodes[0].TAReferences())
	}
}

func TestNodeWithoutPeersGoesStraightToTA(t *testing.T) {
	r := newRig(t, 1, simnet.Link{Base: 100 * time.Microsecond}, nil)
	r.startAll()
	r.run(10 * time.Second)
	r.platforms[0].FireAEX()
	r.run(5 * time.Second)
	n := r.nodes[0]
	if n.State() != StateOK {
		t.Fatalf("state = %v", n.State())
	}
	if n.TAReferences() != 2 || n.PeerUntaints() != 0 {
		t.Errorf("TA/peer = %d/%d, want 2/0", n.TAReferences(), n.PeerUntaints())
	}
}

func TestMonotonicUnderRandomAEXSchedules(t *testing.T) {
	// Property: whatever the interrupt schedule, served timestamps are
	// strictly monotonic.
	for seed := uint64(0); seed < 5; seed++ {
		r := newRig(t, 3, simnet.DefaultLink(), nil)
		rng := sim.NewRNG(900 + seed)
		r.startAll()
		r.run(40 * time.Second) // calibrate
		last := make([]int64, 3)
		for step := 0; step < 300; step++ {
			r.run(time.Duration(rng.IntN(300)) * time.Millisecond)
			if rng.Float64() < 0.3 {
				r.platforms[rng.IntN(3)].FireAEX()
			}
			for i, n := range r.nodes {
				ts, err := n.TrustedNow()
				if err != nil {
					continue
				}
				if ts <= last[i] {
					t.Fatalf("seed %d node %d: served %d after %d", seed, i, ts, last[i])
				}
				last[i] = ts
			}
		}
	}
}

func TestDVFSMaskedScalingNeedsMemMonitor(t *testing.T) {
	// The masking attack of §IV-A.1 (RQ A.1): the OS scales the guest
	// TSC by 0.8 and simultaneously drops the monitoring core to the
	// discrete 2800MHz DVFS point (also 0.8x). The INC count is
	// unchanged, so an INC-only node serves a silently slowed clock;
	// with the frequency-independent memory monitor the node detects
	// it and recalibrates.
	run := func(enableMem bool) (discrepancies int, clockRate float64) {
		r := newRig(t, 1, simnet.Link{Base: 100 * time.Microsecond}, func(_ int, cfg *Config) {
			cfg.EnableMemMonitor = enableMem
		})
		r.nodes[0].eng.Events().Discrepancy = func(float64) { discrepancies++ }
		r.startAll()
		r.run(30 * time.Second)
		if r.nodes[0].State() != StateOK {
			t.Fatal("node never calibrated")
		}
		r.platforms[0].TSC().SetScale(0.8, r.sched.Now())
		r.platforms[0].SetCoreFreqHz(2800e6)
		r.run(60 * time.Second) // detection + possible recalibration
		start, _ := r.nodes[0].ClockReading()
		startRef := r.sched.Now()
		r.run(10 * time.Second)
		end, _ := r.nodes[0].ClockReading()
		return discrepancies, float64(end-start) / float64(r.sched.Now().Sub(startRef))
	}

	d, rate := run(false)
	if d != 0 {
		t.Errorf("INC-only node fired %d discrepancies; the masked attack should evade it", d)
	}
	if math.Abs(rate-0.8) > 0.01 {
		t.Errorf("INC-only clock rate = %v, want ~0.8 (silently slowed)", rate)
	}

	d, rate = run(true)
	if d == 0 {
		t.Error("mem-monitored node never detected the masked attack")
	}
	if math.Abs(rate-1) > 0.01 {
		t.Errorf("mem-monitored clock rate = %v, want ~1 (recalibrated)", rate)
	}
}

func TestHonestDVFSDoesNotDisruptService(t *testing.T) {
	r := newRig(t, 1, simnet.Link{Base: 100 * time.Microsecond}, func(_ int, cfg *Config) {
		cfg.EnableMemMonitor = true
	})
	freqChanges, discrepancies := 0, 0
	r.nodes[0].eng.Events().FreqChange = func(float64) { freqChanges++ }
	r.nodes[0].eng.Events().Discrepancy = func(float64) { discrepancies++ }
	r.startAll()
	r.run(30 * time.Second)
	taRefs := r.nodes[0].TAReferences()
	r.platforms[0].SetCoreFreqHz(2100e6) // powersave governor kicks in
	r.run(60 * time.Second)
	if discrepancies != 0 {
		t.Errorf("honest DVFS triggered %d recalibrations", discrepancies)
	}
	if freqChanges == 0 {
		t.Error("frequency change never surfaced")
	}
	if r.nodes[0].TAReferences() != taRefs {
		t.Error("honest DVFS should not cost TA roundtrips")
	}
}

// TSC value jumps require hypervisor action during an enclave exit, so
// in the paper's model they always coincide with an AEX ("the attacker
// may offset the TSC to make that duration seem shorter or even
// longer"): the taint/refresh machinery, not rate monitoring, is what
// absorbs them. The two tests below exercise exactly that.

func TestBackwardTSCJumpFreezesThenRecovers(t *testing.T) {
	r := newRig(t, 1, simnet.Link{Base: 100 * time.Microsecond}, nil)
	r.startAll()
	r.run(30 * time.Second)
	n := r.nodes[0]
	servedBefore, err := n.TrustedNow()
	if err != nil {
		t.Fatal(err)
	}

	// Jump 10 seconds of ticks into the past, with the AEX the
	// manipulation's VM exit causes. The *internal* clock regresses —
	// that is what the serving guard exists for.
	r.platforms[0].TSC().Jump(-int64(10*simtime.NominalTSCHz), r.sched.Now())
	r.platforms[0].FireAEX()
	r.run(5 * time.Second)
	if n.State() != StateOK {
		t.Fatalf("state = %v after taint recovery", n.State())
	}
	reading, _ := n.ClockReading()
	off := time.Duration(reading - int64(r.sched.Now()))
	if off < -100*time.Millisecond || off > 100*time.Millisecond {
		t.Errorf("clock off reference by %v after recovery", off)
	}
	// Served timestamps never regressed across the whole episode.
	servedAfter, err := n.TrustedNow()
	if err != nil {
		t.Fatal(err)
	}
	if servedAfter <= servedBefore {
		t.Errorf("served %d after %d: regression across jump recovery", servedAfter, servedBefore)
	}
}

func TestForwardTSCJumpRecoveredByUntaint(t *testing.T) {
	r := newRig(t, 1, simnet.Link{Base: 100 * time.Microsecond}, nil)
	r.startAll()
	r.run(30 * time.Second)
	n := r.nodes[0]
	// Forward jump: the clock leaps 5s ahead; the accompanying AEX
	// taints the node and the TA reference pulls it back.
	r.platforms[0].TSC().Jump(int64(5*simtime.NominalTSCHz), r.sched.Now())
	r.platforms[0].FireAEX()
	r.run(5 * time.Second)
	if n.State() != StateOK {
		t.Fatalf("state = %v", n.State())
	}
	reading, _ := n.ClockReading()
	off := time.Duration(reading - int64(r.sched.Now()))
	if off < -100*time.Millisecond || off > 100*time.Millisecond {
		t.Errorf("clock off reference by %v after recovery", off)
	}
	// Serving stays monotonic even though the internal clock stepped
	// back by ~5s at the re-anchor.
	ts1, _ := n.TrustedNow()
	ts2, _ := n.TrustedNow()
	if ts2 <= ts1 {
		t.Error("monotonicity violated across the backward re-anchor")
	}
}

func BenchmarkTrustedNow(b *testing.B) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(1)
	network := simnet.New(sched, rng.Fork(0), simnet.Link{Base: 100 * time.Microsecond})
	if _, err := authority.NewSimBinding(sched, network, testKey(), taAddr); err != nil {
		b.Fatal(err)
	}
	p := enclave.NewSimPlatform(sched, rng.Fork(1), network, enclave.SimConfig{
		Addr: 1, TSC: simtime.NewTSC(simtime.NominalTSCHz, 0),
	})
	node, err := NewNode(p, Config{Key: testKey(), Addr: 1, Authority: taAddr})
	if err != nil {
		b.Fatal(err)
	}
	node.Start()
	sched.RunUntil(simtime.FromSeconds(10))
	if node.State() != StateOK {
		b.Fatal("node did not calibrate")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := node.TrustedNow(); err != nil {
			b.Fatal(err)
		}
	}
}
