// Package core implements the Triad protocol node — the paper's primary
// contribution. A node keeps a trusted notion of time inside a TEE by
// combining:
//
//   - an in-enclave clock derived from the TimeStamp Counter:
//     now = reference + (TSC - referenceTSC) / F_calib;
//   - calibration of F_calib against the Time Authority via linear
//     regression over requested-sleep roundtrips bounded by uninterrupted
//     execution (no AEX between send and receive);
//   - tainting on every Asynchronous Enclave Exit, followed by untainting
//     from a peer's timestamp (adopting it if higher than local time,
//     otherwise bumping the local timestamp by the smallest increment) or,
//     failing that, a reference calibration with the Time Authority;
//   - continuous INC-instruction-rate monitoring of the TSC to detect
//     hypervisor rate/offset manipulation, which triggers full
//     recalibration.
//
// The node is written against enclave.Platform and runs identically on
// the discrete-event simulation and on the live UDP runtime.
package core

// State is a Triad node's protocol state. It matches the states plotted
// in the paper's Figure 3b timing diagram.
type State int

// Node states.
const (
	// StateInit: created, not yet started.
	StateInit State = iota + 1
	// StateFullCalib: calibrating both clock speed (F_calib) and time
	// reference with the Time Authority. Entered at startup and after a
	// TSC discrepancy is detected.
	StateFullCalib
	// StateRefCalib: re-acquiring only the time reference from the Time
	// Authority, after peers failed to untaint us.
	StateRefCalib
	// StateTainted: an AEX severed time continuity; the timestamp cannot
	// be served until refreshed from a peer or the Time Authority.
	StateTainted
	// StateOK: serving trusted timestamps.
	StateOK
)

// String names the state as in the paper's figures.
func (s State) String() string {
	switch s {
	case StateInit:
		return "Init"
	case StateFullCalib:
		return "FullCalib"
	case StateRefCalib:
		return "RefCalib"
	case StateTainted:
		return "Tainted"
	case StateOK:
		return "OK"
	default:
		return "State(?)"
	}
}

// Events are optional observation hooks. They fire synchronously from
// within platform callbacks; handlers must not block and must not call
// back into the node. Nil members are skipped.
type Events struct {
	// StateChanged fires on every protocol state transition.
	StateChanged func(old, new State)
	// Calibrated fires when a full calibration completes, with the new
	// estimated TSC rate in ticks per second.
	Calibrated func(fCalib float64)
	// TAReference fires each time a time reference from the Time
	// Authority is adopted (both RefCalib and FullCalib) — the count
	// plotted in Figure 2b.
	TAReference func()
	// PeerUntaint fires when a peer timestamp untaints the node.
	// jumpNanos is the forward jump relative to the local clock
	// (0 when the local timestamp was kept and minimally bumped).
	PeerUntaint func(fromPeer uint32, jumpNanos int64)
	// Discrepancy fires when rate monitoring concludes the TSC was
	// manipulated; rel is the relative deviation from the baseline.
	Discrepancy func(rel float64)
	// FreqChange fires when dual monitoring identifies a core
	// frequency (DVFS) change instead of TSC tampering: the INC count
	// moved while the memory-access count held.
	FreqChange func(rel float64)
}

func (e *Events) stateChanged(old, new State) {
	if e != nil && e.StateChanged != nil {
		e.StateChanged(old, new)
	}
}

func (e *Events) calibrated(f float64) {
	if e != nil && e.Calibrated != nil {
		e.Calibrated(f)
	}
}

func (e *Events) taReference() {
	if e != nil && e.TAReference != nil {
		e.TAReference()
	}
}

func (e *Events) peerUntaint(from uint32, jump int64) {
	if e != nil && e.PeerUntaint != nil {
		e.PeerUntaint(from, jump)
	}
}

func (e *Events) discrepancy(rel float64) {
	if e != nil && e.Discrepancy != nil {
		e.Discrepancy(rel)
	}
}

func (e *Events) freqChange(rel float64) {
	if e != nil && e.FreqChange != nil {
		e.FreqChange(rel)
	}
}
