// Package core implements the Triad protocol node — the paper's primary
// contribution. A node keeps a trusted notion of time inside a TEE by
// combining:
//
//   - an in-enclave clock derived from the TimeStamp Counter:
//     now = reference + (TSC - referenceTSC) / F_calib;
//   - calibration of F_calib against the Time Authority via linear
//     regression over requested-sleep roundtrips bounded by uninterrupted
//     execution (no AEX between send and receive);
//   - tainting on every Asynchronous Enclave Exit, followed by untainting
//     from a peer's timestamp (adopting it if higher than local time,
//     otherwise bumping the local timestamp by the smallest increment) or,
//     failing that, a reference calibration with the Time Authority;
//   - continuous INC-instruction-rate monitoring of the TSC to detect
//     hypervisor rate/offset manipulation, which triggers full
//     recalibration.
//
// Since the engine extraction, this package is a thin policy bundle:
// internal/engine owns the clock state, the state machine, datagram
// dispatch, AEX epochs, peer gathering, rate monitoring, and counters,
// while core contributes the original protocol's calibration policy
// (sleep-roundtrip regression), recovery policy (first-responding
// peer, then the Time Authority) and the engine's accept-all
// AdoptIfAhead peer filter. The node runs identically on the
// discrete-event simulation and on the live UDP runtime.
package core

import "triadtime/internal/engine"

// State is a Triad node's protocol state, shared with every engine
// variant. It matches the states plotted in the paper's Figure 3b
// timing diagram.
type State = engine.State

// Node states, re-exported from the engine.
const (
	StateInit      = engine.StateInit
	StateFullCalib = engine.StateFullCalib
	StateRefCalib  = engine.StateRefCalib
	StateTainted   = engine.StateTainted
	StateOK        = engine.StateOK
	StateDegraded  = engine.StateDegraded
)

// Events are optional observation hooks, shared with every engine
// variant. They fire synchronously from within platform callbacks;
// handlers must not block and must not call back into the node. Nil
// members are skipped.
type Events = engine.Events
