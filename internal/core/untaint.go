package core

import "triadtime/internal/wire"

// becomeTainted marks the timestamp tainted after an AEX and starts the
// recovery ladder: peers first, the Time Authority only if no peer
// answers (paper §III-B).
func (n *Node) becomeTainted() {
	n.setState(StateTainted)
	n.startPeerUntaint()
}

// startPeerUntaint broadcasts a timestamp request to all peers and arms
// the fallback timer.
func (n *Node) startPeerUntaint() {
	if len(n.cfg.Peers) == 0 {
		n.startRefCalib()
		return
	}
	n.peerSeq = n.nextSeq()
	for _, p := range n.cfg.Peers {
		// Each peer gets its own sealed copy: GCM nonces are single-use.
		n.platform.Send(p, n.sealer.Seal(wire.Message{
			Kind: wire.KindPeerTimeRequest,
			Seq:  n.peerSeq,
		}))
	}
	n.peerTimer = n.platform.AfterTicks(n.ticksFor(n.cfg.PeerTimeout), func() {
		// No peer had an untainted timestamp for us: fall back to the
		// Time Authority.
		n.peerTimer = nil
		n.peerSeq = 0
		n.startRefCalib()
	})
}

// onPeerTimeResponse applies the original Triad peer-timestamp policy:
// adopt the incoming timestamp if it is higher than the local one,
// otherwise keep the local timestamp bumped by the smallest possible
// increment. Either way the node is untainted. This "fastest clock
// wins" rule is exactly what lets a compromised fast node drag honest
// peers forward (paper §III-D, Figure 6).
func (n *Node) onPeerTimeResponse(from uint32, msg wire.Message) {
	if n.state != StateTainted || msg.Seq != n.peerSeq {
		return // stale response, or we already recovered
	}
	if n.peerTimer != nil {
		n.peerTimer()
		n.peerTimer = nil
	}
	n.peerSeq = 0

	local := n.clockNow()
	var jump int64
	if msg.TimeNanos > local {
		jump = msg.TimeNanos - local
		n.refNanos = msg.TimeNanos
	} else {
		n.refNanos = local + 1
	}
	n.refTSC = n.platform.ReadTSC()
	n.peerUntaints++
	n.timeJumps = append(n.timeJumps, jump)
	n.events.peerUntaint(from, jump)
	n.setState(StateOK)
}
