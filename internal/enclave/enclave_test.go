package enclave

import (
	"math"
	"testing"
	"time"

	"triadtime/internal/sim"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
	"triadtime/internal/stats"
)

func newTestPlatform(t *testing.T, cfg SimConfig) (*sim.Scheduler, *SimPlatform) {
	t.Helper()
	sched := sim.NewScheduler()
	rng := sim.NewRNG(1)
	net := simnet.New(sched, rng.Fork(100), simnet.Link{Base: time.Millisecond})
	if cfg.TSC == nil {
		cfg.TSC = simtime.NewTSC(simtime.NominalTSCHz, 0)
	}
	return sched, NewSimPlatform(sched, rng, net, cfg)
}

func TestReadTSCAdvances(t *testing.T) {
	sched, p := newTestPlatform(t, SimConfig{Addr: 1})
	v0 := p.ReadTSC()
	sched.RunUntil(simtime.FromSeconds(1))
	v1 := p.ReadTSC()
	gained := float64(v1 - v0)
	if math.Abs(gained-simtime.NominalTSCHz) > 1 {
		t.Errorf("TSC gained %v over 1s, want ~%v", gained, simtime.NominalTSCHz)
	}
}

func TestBootHzDefaultsToHostRate(t *testing.T) {
	_, p := newTestPlatform(t, SimConfig{Addr: 1})
	if p.BootTSCHz() != simtime.NominalTSCHz {
		t.Errorf("BootTSCHz = %v", p.BootTSCHz())
	}
	if p.Addr() != 1 {
		t.Errorf("Addr = %v", p.Addr())
	}
}

func TestAfterTicksFiresAtGuestRate(t *testing.T) {
	sched, p := newTestPlatform(t, SimConfig{Addr: 1})
	var firedAt simtime.Instant
	p.AfterTicks(uint64(simtime.NominalTSCHz), func() { firedAt = sched.Now() })
	sched.RunUntilIdle()
	if d := firedAt.Sub(simtime.FromSeconds(1)); d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("timer fired at %v, want ~t+1s", firedAt)
	}
}

func TestAfterTicksCancel(t *testing.T) {
	sched, p := newTestPlatform(t, SimConfig{Addr: 1})
	fired := false
	cancel := p.AfterTicks(1000, func() { fired = true })
	cancel()
	cancel() // idempotent
	sched.RunUntilIdle()
	if fired {
		t.Error("cancelled timer fired")
	}
}

func TestMessageRoundtripBetweenPlatforms(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(2)
	net := simnet.New(sched, rng.Fork(1), simnet.Link{Base: time.Millisecond})
	a := NewSimPlatform(sched, rng.Fork(2), net, SimConfig{Addr: 1, TSC: simtime.NewTSC(1e9, 0)})
	b := NewSimPlatform(sched, rng.Fork(3), net, SimConfig{Addr: 2, TSC: simtime.NewTSC(1e9, 0)})
	var got []byte
	var gotFrom simnet.Addr
	b.SetMessageHandler(func(from simnet.Addr, payload []byte) {
		gotFrom = from
		got = payload
	})
	a.Send(2, []byte("hello"))
	sched.RunUntilIdle()
	if string(got) != "hello" || gotFrom != 1 {
		t.Errorf("got %q from %d", got, gotFrom)
	}
}

func TestFireAEXInvokesHandlerAndCounts(t *testing.T) {
	sched, p := newTestPlatform(t, SimConfig{Addr: 1, RecordAEXGaps: true})
	calls := 0
	p.SetAEXHandler(func() { calls++ })
	sched.At(simtime.FromSeconds(1), p.FireAEX)
	sched.At(simtime.FromSeconds(3), p.FireAEX)
	sched.At(simtime.FromSeconds(6), p.FireAEX)
	sched.RunUntilIdle()
	if calls != 3 || p.AEXCount() != 3 {
		t.Errorf("calls/count = %d/%d, want 3/3", calls, p.AEXCount())
	}
	gaps := p.AEXGaps()
	if len(gaps) != 2 || gaps[0] != 2*time.Second || gaps[1] != 3*time.Second {
		t.Errorf("gaps = %v, want [2s 3s]", gaps)
	}
}

func TestAEXGapsNotRecordedWhenDisabled(t *testing.T) {
	sched, p := newTestPlatform(t, SimConfig{Addr: 1})
	sched.At(simtime.FromSeconds(1), p.FireAEX)
	sched.At(simtime.FromSeconds(2), p.FireAEX)
	sched.RunUntilIdle()
	if len(p.AEXGaps()) != 0 {
		t.Error("gaps recorded despite RecordAEXGaps=false")
	}
}

func TestINCCheckMatchesPaperStatistics(t *testing.T) {
	// Reproduce §IV-A.1 in miniature: repeated measurements of INC per
	// 15e6 TSC ticks; after dropping the warm-up outlier the counts are
	// extremely tight around 632182.
	sched, p := newTestPlatform(t, SimConfig{Addr: 1})
	const n = 500
	var counts []float64
	var run func()
	run = func() {
		p.StartINCCheck(15e6, func(c float64, interrupted bool) {
			if interrupted {
				t.Fatal("unexpected interruption")
			}
			counts = append(counts, c)
			if len(counts) < n {
				run()
			}
		})
	}
	run()
	sched.RunUntilIdle()
	if len(counts) != n {
		t.Fatalf("got %d measurements", len(counts))
	}
	first := counts[0]
	if first > 625000 {
		t.Errorf("first measurement %v should show the warm-up outlier", first)
	}
	s := stats.Summarize(counts[1:])
	if math.Abs(s.Mean-simtime.PaperINCPer15MTicks) > 5 {
		t.Errorf("steady-state mean = %v, want ~%v", s.Mean, float64(simtime.PaperINCPer15MTicks))
	}
	if s.Stddev > 5 {
		t.Errorf("steady-state stddev = %v, want ~2.9", s.Stddev)
	}
}

func TestINCCheckDetectsTSCScaling(t *testing.T) {
	// A hypervisor scaling the guest TSC up by 10% makes each 15e6-tick
	// window shorter in real time, so fewer INCs execute: the monitoring
	// thread sees a ~10% INC deficit. This is the tamper-detection path.
	tsc := simtime.NewTSC(simtime.NominalTSCHz, 0)
	sched, p := newTestPlatform(t, SimConfig{Addr: 1, TSC: tsc})
	var clean, scaled float64
	p.StartINCCheck(15e6, func(float64, bool) {}) // discard warm-up outlier
	sched.RunUntilIdle()
	p.StartINCCheck(15e6, func(c float64, _ bool) { clean = c })
	sched.RunUntilIdle()
	tsc.SetScale(1.1, sched.Now())
	p.StartINCCheck(15e6, func(c float64, _ bool) { scaled = c })
	sched.RunUntilIdle()
	ratio := scaled / clean
	if math.Abs(ratio-1/1.1) > 0.01 {
		t.Errorf("scaled/clean INC ratio = %v, want ~%v", ratio, 1/1.1)
	}
}

func TestINCCheckInterruptedByAEX(t *testing.T) {
	sched, p := newTestPlatform(t, SimConfig{Addr: 1})
	var gotInterrupted bool
	done := false
	// 15e6 ticks take ~5.17ms; fire an AEX 1ms in.
	p.StartINCCheck(15e6, func(c float64, interrupted bool) {
		gotInterrupted = interrupted
		done = true
		if c != 0 {
			t.Errorf("interrupted measurement should report count 0, got %v", c)
		}
	})
	sched.At(simtime.FromDuration(time.Millisecond), p.FireAEX)
	sched.RunUntilIdle()
	if !done {
		t.Fatal("measurement callback never ran")
	}
	if !gotInterrupted {
		t.Error("measurement should be flagged interrupted")
	}
}

func TestINCCheckOverlapPanics(t *testing.T) {
	_, p := newTestPlatform(t, SimConfig{Addr: 1})
	p.StartINCCheck(1000, func(float64, bool) {})
	defer func() {
		if recover() == nil {
			t.Error("overlapping INC measurements should panic")
		}
	}()
	p.StartINCCheck(1000, func(float64, bool) {})
}

func TestNewSimPlatformRequiresTSC(t *testing.T) {
	sched := sim.NewScheduler()
	net := simnet.New(sched, sim.NewRNG(1), simnet.Link{})
	defer func() {
		if recover() == nil {
			t.Error("missing TSC should panic")
		}
	}()
	NewSimPlatform(sched, sim.NewRNG(2), net, SimConfig{Addr: 1})
}

func TestIdealINC(t *testing.T) {
	core := simtime.PaperCore()
	got := IdealINC(core, 15e6, simtime.NominalTSCHz)
	if math.Abs(got-simtime.PaperINCPer15MTicks) > 1e-3 {
		t.Errorf("IdealINC = %v, want %v", got, float64(simtime.PaperINCPer15MTicks))
	}
	// Unset cycle cost falls back to 1 cycle per iteration.
	raw := IdealINC(simtime.Core{FreqHz: 2e9}, 1e9, 1e9)
	if raw != 2e9 {
		t.Errorf("IdealINC fallback = %v, want 2e9", raw)
	}
}

func TestINCModelSampleClampsAtZero(t *testing.T) {
	m := INCModel{NoiseSigma: 1, WarmupOffset: -1e12}
	if got := m.sample(100, 0, sim.NewRNG(1)); got != 0 {
		t.Errorf("sample = %v, want clamp to 0", got)
	}
}
