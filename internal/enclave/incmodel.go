package enclave

import (
	"triadtime/internal/sim"
	"triadtime/internal/simtime"
)

// INCModel generates the measurement noise of the INC-counting
// monitoring loop. The paper's 10k-measurement experiment (§IV-A.1)
// shows three regimes: a large negative first-run outlier (cold caches
// and branch predictors: 621448 vs the 632182 mean), a rare moderate
// outlier (630012), and an extremely tight steady state (σ = 2.9 INC,
// total range 10 INC).
type INCModel struct {
	// NoiseSigma is the steady-state standard deviation, in INC.
	NoiseSigma float64
	// WarmupOffset is added to the very first measurement of a core.
	WarmupOffset float64
	// OutlierProb is the per-measurement probability of a moderate
	// outlier; OutlierOffset is its magnitude.
	OutlierProb   float64
	OutlierOffset float64
}

// PaperINCModel reproduces the §IV-A.1 measurement statistics.
func PaperINCModel() INCModel {
	return INCModel{
		NoiseSigma:    2.9,
		WarmupOffset:  -10734, // 621448 - 632182
		OutlierProb:   1e-4,
		OutlierOffset: -2170, // 630012 - 632182
	}
}

// sample draws the measured INC count for one measurement given the
// ideal count, the measurement index (0 = first ever on this core), and
// the model's randomness source.
func (m INCModel) sample(ideal float64, index int, rng *sim.RNG) float64 {
	v := ideal + rng.Gaussian(0, m.NoiseSigma)
	if index == 0 {
		v += m.WarmupOffset
	} else if m.OutlierProb > 0 && rng.Float64() < m.OutlierProb {
		v += m.OutlierOffset
	}
	if v < 0 {
		v = 0
	}
	return v
}

// IdealINC returns the noise-free INC count for a measurement over
// ticks guest-TSC ticks, given the core and the *apparent* guest tick
// rate. When the hypervisor scales the guest TSC, the guest accumulates
// ticks faster or slower relative to real instruction execution, which
// shifts the INC count — this is what makes the monitoring loop a
// tamper detector.
func IdealINC(core simtime.Core, ticks float64, guestHz float64) float64 {
	cycles := core.CyclesPerINC
	if cycles <= 0 {
		cycles = 1
	}
	// Reference seconds the measurement takes: ticks / guestHz.
	// INC executed: seconds * coreHz / cyclesPerINC.
	return ticks / guestHz * core.FreqHz / cycles
}

// MemModel is the memory-access monitoring counterpart of INCModel:
// accesses that miss all caches are paced by the memory subsystem, so
// their rate is independent of the core's DVFS frequency — but noisier
// than INC counting (row-buffer and contention effects).
type MemModel struct {
	// AccessesPerSec is the uncontended memory-access rate.
	AccessesPerSec float64
	// NoiseFrac is the per-measurement relative noise (1 sigma).
	NoiseFrac float64
}

// PaperMemModel is a DDR-class access rate with ~1% measurement noise,
// matching the "less accurate but frequency-independent" framing.
func PaperMemModel() MemModel {
	return MemModel{AccessesPerSec: 1.2e8, NoiseFrac: 0.01}
}

// IdealMem returns the noise-free access count over ticks guest ticks.
// Like INC counting it shifts when the guest TSC is scaled — but NOT
// when only the core frequency changes.
func (m MemModel) IdealMem(ticks float64, guestHz float64) float64 {
	return ticks / guestHz * m.AccessesPerSec
}

// sampleMem draws one measured access count.
func (m MemModel) sampleMem(ideal float64, rng *sim.RNG) float64 {
	v := ideal * (1 + rng.Gaussian(0, m.NoiseFrac))
	if v < 0 {
		v = 0
	}
	return v
}
