package enclave

import "math"

// RateMonitor is the TSC-monitoring thread's logic, shared by the
// original and hardened protocol nodes: it continuously measures the
// INC-instruction count per fixed guest-TSC window and (optionally)
// the frequency-independent memory-access count over the same kind of
// window, comparing each against a learned baseline.
//
// Detection logic per §IV-A.1:
//
//   - a hypervisor scaling or jumping the guest TSC shifts BOTH counts
//     → either monitor flags it;
//   - an attacker masking a TSC scaling with a proportional core DVFS
//     change keeps the INC count steady but cannot move the memory
//     subsystem's rate → only the memory monitor flags it;
//   - an honest DVFS change shifts only the INC count; the combination
//     (INC moved, memory steady) identifies it, and the monitor
//     re-baselines INC rather than crying wolf — frequency settings
//     are discrete and legal for the OS to change.
type RateMonitor struct {
	platform Platform

	incTicks uint64
	incTol   float64
	incState baselineState

	memEnabled bool
	memTicks   uint64
	memTol     float64
	memState   baselineState

	// OnDiscrepancy fires when TSC tampering is concluded; rel is the
	// relative deviation observed.
	onDiscrepancy func(rel float64)
	// onFreqChange fires when an (honest or masking-failed) core
	// frequency change is identified: INC moved, memory steady.
	onFreqChange func(rel float64)

	// incDoneFn/memDoneFn are the per-window completion callbacks,
	// built once at construction so the measurement loop never
	// allocates a fresh closure per monitoring tick.
	incDoneFn func(count float64, interrupted bool)
	memDoneFn func(count float64, interrupted bool)

	started bool
}

// baselineLearnWindows is how many post-warm-up windows are averaged
// into a baseline, diluting per-window measurement noise.
const baselineLearnWindows = 4

// baselineState tracks one counter's learned baseline; the first
// measurement is discarded as warm-up (the paper's first-run outlier,
// and — after a reset — the window that straddled the transition), and
// the next few are averaged into the baseline.
type baselineState struct {
	measured int
	learnSum float64
	baseline float64
	strikes  int
}

// observe returns the relative deviation and whether a baseline exists.
func (s *baselineState) observe(count float64) (rel float64, ok bool) {
	s.measured++
	switch {
	case s.measured == 1:
		return 0, false // warm-up
	case s.baseline == 0:
		s.learnSum += count
		if s.measured-1 >= baselineLearnWindows {
			s.baseline = s.learnSum / baselineLearnWindows
			s.learnSum = 0
		}
		return 0, false
	default:
		return math.Abs(count-s.baseline) / s.baseline, true
	}
}

// strike debounces detections: one deviating window may merely straddle
// a transition (a manipulation or a legal frequency change lands mid
// window); two consecutive deviations cannot.
func (s *baselineState) strike(deviant bool) (conclude bool) {
	if !deviant {
		s.strikes = 0
		return false
	}
	s.strikes++
	return s.strikes >= 2
}

// reset forgets the baseline entirely: the next window is discarded as
// warm-up (it may straddle whatever transition caused the reset) and
// the following windows are re-learned into a new baseline.
func (s *baselineState) reset() {
	s.baseline = 0
	s.learnSum = 0
	s.measured = 0
	s.strikes = 0
}

// MonitorConfig configures a RateMonitor.
type MonitorConfig struct {
	// INCTicks is the INC window (guest ticks); INCTol the relative
	// deviation flagged.
	INCTicks uint64
	INCTol   float64
	// EnableMem turns on the frequency-independent memory monitor.
	EnableMem bool
	// MemTicks/MemTol configure it (MemTol must clear the memory
	// counter's ~1% noise by a wide margin while staying far below any
	// discrete DVFS step ratio; default 0.08).
	MemTicks uint64
	MemTol   float64
	// OnDiscrepancy is required: called on concluded TSC tampering.
	OnDiscrepancy func(rel float64)
	// OnFreqChange is optional: called when a core frequency change is
	// identified instead.
	OnFreqChange func(rel float64)
}

// NewRateMonitor creates the monitor. Call Start once.
func NewRateMonitor(platform Platform, cfg MonitorConfig) *RateMonitor {
	memTicks := cfg.MemTicks
	if memTicks == 0 {
		memTicks = cfg.INCTicks
	}
	memTol := cfg.MemTol
	if memTol <= 0 {
		memTol = 0.08
	}
	m := &RateMonitor{
		platform:      platform,
		incTicks:      cfg.INCTicks,
		incTol:        cfg.INCTol,
		memEnabled:    cfg.EnableMem,
		memTicks:      memTicks,
		memTol:        memTol,
		onDiscrepancy: cfg.OnDiscrepancy,
		onFreqChange:  cfg.OnFreqChange,
	}
	m.incDoneFn = func(count float64, interrupted bool) {
		if !interrupted {
			m.onINC(count)
		}
		m.nextINC()
	}
	m.memDoneFn = func(count float64, interrupted bool) {
		if !interrupted {
			m.onMem(count)
		}
		m.nextMem()
	}
	return m
}

// Start launches the measurement loops. Idempotent.
func (m *RateMonitor) Start() {
	if m.started {
		return
	}
	m.started = true
	m.nextINC()
	if m.memEnabled {
		m.nextMem()
	}
}

// Reset re-baselines both counters — call after a deliberate
// recalibration, when the TSC relationship legitimately changed.
func (m *RateMonitor) Reset() {
	m.incState.reset()
	m.memState.reset()
}

//triad:hotpath
func (m *RateMonitor) nextINC() {
	m.platform.StartINCCheck(m.incTicks, m.incDoneFn)
}

//triad:hotpath
func (m *RateMonitor) nextMem() {
	m.platform.StartMemCheck(m.memTicks, m.memDoneFn)
}

func (m *RateMonitor) onINC(count float64) {
	rel, ok := m.incState.observe(count)
	if !ok {
		return
	}
	if !m.incState.strike(rel > m.incTol) {
		return
	}
	if !m.memEnabled {
		// INC-only mode (original Triad single-monitor configuration):
		// a sustained deviation is treated as TSC tampering.
		m.incState.reset()
		m.onDiscrepancy(rel)
		return
	}
	// Dual mode: a sustained INC shift alone is ambiguous — TSC scaling
	// or DVFS. Re-baseline INC and report a frequency change; if the
	// cause was actually TSC tampering, the frequency-independent
	// memory monitor flags it within its own windows.
	m.incState.reset()
	if m.onFreqChange != nil {
		m.onFreqChange(rel)
	}
}

func (m *RateMonitor) onMem(count float64) {
	rel, ok := m.memState.observe(count)
	if !ok {
		return
	}
	if !m.memState.strike(rel > m.memTol) {
		return
	}
	// The memory rate is DVFS-independent: a sustained deviation here
	// is TSC manipulation, full stop.
	m.memState.reset()
	m.incState.reset()
	m.onDiscrepancy(rel)
}
