package enclave

import (
	"math"
	"testing"
	"time"

	"triadtime/internal/sim"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
)

func monitorRig(t *testing.T) (*sim.Scheduler, *SimPlatform) {
	t.Helper()
	sched := sim.NewScheduler()
	rng := sim.NewRNG(71)
	net := simnet.New(sched, rng.Fork(0), simnet.Link{Base: time.Millisecond})
	p := NewSimPlatform(sched, rng, net, SimConfig{
		Addr: 1,
		TSC:  simtime.NewTSC(simtime.NominalTSCHz, 0),
	})
	return sched, p
}

func TestMemCheckBasics(t *testing.T) {
	sched, p := monitorRig(t)
	var count float64
	p.StartMemCheck(15e6, func(c float64, interrupted bool) {
		if interrupted {
			t.Error("unexpected interruption")
		}
		count = c
	})
	sched.RunUntilIdle()
	ideal := PaperMemModel().IdealMem(15e6, simtime.NominalTSCHz)
	if math.Abs(count-ideal)/ideal > 0.05 {
		t.Errorf("mem count = %v, want ~%v", count, ideal)
	}
}

func TestMemCheckFrequencyIndependent(t *testing.T) {
	// Halving the core frequency shifts INC counts but leaves memory
	// counts untouched — the disambiguator of §IV-A.1.
	sched, p := monitorRig(t)
	var incBefore, incAfter, memBefore, memAfter float64
	p.StartINCCheck(15e6, func(c float64, _ bool) {}) // discard warm-up
	sched.RunUntilIdle()
	p.StartINCCheck(15e6, func(c float64, _ bool) { incBefore = c })
	p.StartMemCheck(15e6, func(c float64, _ bool) { memBefore = c })
	sched.RunUntilIdle()
	p.SetCoreFreqHz(simtime.PaperCoreHz / 2)
	if p.CoreFreqHz() != simtime.PaperCoreHz/2 {
		t.Fatal("SetCoreFreqHz did not apply")
	}
	p.StartINCCheck(15e6, func(c float64, _ bool) { incAfter = c })
	p.StartMemCheck(15e6, func(c float64, _ bool) { memAfter = c })
	sched.RunUntilIdle()
	if r := incAfter / incBefore; math.Abs(r-0.5) > 0.01 {
		t.Errorf("INC ratio after halving freq = %v, want ~0.5", r)
	}
	if r := memAfter / memBefore; math.Abs(r-1) > 0.05 {
		t.Errorf("mem ratio after halving freq = %v, want ~1", r)
	}
}

func TestMemCheckDetectsTSCScaling(t *testing.T) {
	sched, p := monitorRig(t)
	var before, after float64
	p.StartMemCheck(15e6, func(c float64, _ bool) { before = c })
	sched.RunUntilIdle()
	p.TSC().SetScale(1.25, sched.Now())
	p.StartMemCheck(15e6, func(c float64, _ bool) { after = c })
	sched.RunUntilIdle()
	if r := after / before; math.Abs(r-1/1.25) > 0.05 {
		t.Errorf("mem ratio under 1.25x TSC scale = %v, want ~0.8", r)
	}
}

func TestMemCheckInterruptedAndOverlap(t *testing.T) {
	sched, p := monitorRig(t)
	interrupted := false
	p.StartMemCheck(15e6, func(_ float64, i bool) { interrupted = i })
	sched.At(simtime.FromDuration(time.Millisecond), p.FireAEX)
	sched.RunUntilIdle()
	if !interrupted {
		t.Error("AEX should interrupt the memory measurement")
	}
	p.StartMemCheck(1000, func(float64, bool) {})
	defer func() {
		if recover() == nil {
			t.Error("overlapping mem measurements should panic")
		}
	}()
	p.StartMemCheck(1000, func(float64, bool) {})
}

func TestSetCoreFreqValidation(t *testing.T) {
	_, p := monitorRig(t)
	defer func() {
		if recover() == nil {
			t.Error("non-positive frequency should panic")
		}
	}()
	p.SetCoreFreqHz(0)
}

func runMonitor(t *testing.T, enableMem bool, manipulate func(*sim.Scheduler, *SimPlatform)) (discrepancies, freqChanges int) {
	t.Helper()
	sched, p := monitorRig(t)
	m := NewRateMonitor(p, MonitorConfig{
		INCTicks:      15e6,
		INCTol:        0.005,
		EnableMem:     enableMem,
		OnDiscrepancy: func(rel float64) { discrepancies++ },
		OnFreqChange:  func(rel float64) { freqChanges++ },
	})
	m.Start()
	m.Start() // idempotent
	sched.RunUntil(simtime.FromSeconds(1))
	manipulate(sched, p)
	sched.RunUntil(sched.Now().Add(2 * time.Second))
	return discrepancies, freqChanges
}

func TestRateMonitorCleanRunIsQuiet(t *testing.T) {
	d, f := runMonitor(t, true, func(*sim.Scheduler, *SimPlatform) {})
	if d != 0 || f != 0 {
		t.Errorf("clean run produced %d discrepancies, %d freq changes", d, f)
	}
}

func TestRateMonitorINCOnlyCatchesScaling(t *testing.T) {
	d, _ := runMonitor(t, false, func(sched *sim.Scheduler, p *SimPlatform) {
		p.TSC().SetScale(1.1, sched.Now())
	})
	if d == 0 {
		t.Error("INC-only monitor missed a bare 10% TSC scaling")
	}
}

func TestRateMonitorINCOnlyMissesDVFSMaskedScaling(t *testing.T) {
	// The masking attack: scale the guest TSC by 0.8 AND drop the core
	// from 3500MHz to the discrete 2800MHz point (also 0.8x). The INC
	// count is unchanged; without the memory monitor nothing fires.
	d, _ := runMonitor(t, false, func(sched *sim.Scheduler, p *SimPlatform) {
		p.TSC().SetScale(0.8, sched.Now())
		p.SetCoreFreqHz(2800e6)
	})
	if d != 0 {
		t.Errorf("INC-only monitor fired %d times; the masked attack should slip through (that is the vulnerability)", d)
	}
}

func TestRateMonitorDualCatchesDVFSMaskedScaling(t *testing.T) {
	d, _ := runMonitor(t, true, func(sched *sim.Scheduler, p *SimPlatform) {
		p.TSC().SetScale(0.8, sched.Now())
		p.SetCoreFreqHz(2800e6)
	})
	if d == 0 {
		t.Error("dual monitor missed the DVFS-masked TSC scaling")
	}
}

func TestRateMonitorHonestDVFSIsFreqChangeNotTampering(t *testing.T) {
	d, f := runMonitor(t, true, func(sched *sim.Scheduler, p *SimPlatform) {
		p.SetCoreFreqHz(2800e6) // legal governor change, TSC untouched
	})
	if d != 0 {
		t.Errorf("honest DVFS flagged as tampering %d times", d)
	}
	if f == 0 {
		t.Error("honest DVFS not surfaced as a frequency change")
	}
}

func TestRateMonitorResetRelearnsBaseline(t *testing.T) {
	sched, p := monitorRig(t)
	discrepancies := 0
	m := NewRateMonitor(p, MonitorConfig{
		INCTicks:      15e6,
		INCTol:        0.005,
		OnDiscrepancy: func(rel float64) { discrepancies++ },
	})
	m.Start()
	sched.RunUntil(simtime.FromSeconds(1))
	p.TSC().SetScale(1.1, sched.Now())
	m.Reset() // a recalibration just happened: accept the new relation
	sched.RunUntil(sched.Now().Add(time.Second))
	if discrepancies != 0 {
		t.Errorf("monitor fired %d times after an authorized Reset", discrepancies)
	}
}
