// Package enclave defines the execution environment a Triad node runs
// in — the view from inside the TEE — and provides the simulated
// implementation used by all experiments.
//
// The protocol logic in internal/core is written exclusively against the
// Platform interface: in-enclave TSC reads, AEX-Notify callbacks,
// INC-instruction rate measurements, datagram I/O, and TSC-denominated
// timers. That is precisely the paper's trust boundary: everything else
// (scheduling, interrupts, the network, the hypervisor's view of the
// TSC) belongs to the attacker.
package enclave

import "triadtime/internal/simnet"

// CancelFunc cancels a pending timer. Calling it after the timer fired
// or was already cancelled is a no-op.
type CancelFunc func()

// Platform is the enclave's window on the world. Implementations: the
// discrete-event simulation (SimPlatform) and the live UDP runtime
// (internal/transport).
//
// Platforms are event-driven: handlers are invoked by the platform, and
// all Platform methods must be called from platform-dispatched callbacks
// (or before the platform starts). Implementations serialize delivery,
// so node logic needs no locking.
type Platform interface {
	// ReadTSC returns the guest-visible TimeStamp Counter. With SGX2
	// semantics, reading it does not exit the enclave; the value is
	// whatever the (possibly malicious) hypervisor exposes.
	ReadTSC() uint64

	// BootTSCHz is the TSC frequency the OS measured at boot time
	// (2899.999 MHz on the paper's machine). It is a hint from outside
	// the TCB: the protocol may use it to size timeouts, but trusted
	// rates must come from calibration against the Time Authority.
	BootTSCHz() float64

	// Send transmits an encrypted datagram. Delivery is best-effort:
	// the attacker may delay or drop it.
	Send(to simnet.Addr, payload []byte)

	// AfterTicks schedules fn once the guest TSC has advanced by ticks.
	// This models an in-enclave spin/deadline on the TSC, the only
	// "timer" an enclave can have without trusting the OS.
	AfterTicks(ticks uint64, fn func()) CancelFunc

	// SetAEXHandler registers the AEX-Notify callback: it runs when the
	// enclave's monitoring thread resumes after an Asynchronous Enclave
	// Exit. There is exactly one handler; later calls replace it.
	SetAEXHandler(fn func())

	// SetMessageHandler registers the datagram delivery callback.
	// There is exactly one handler; later calls replace it.
	SetMessageHandler(fn func(from simnet.Addr, payload []byte))

	// StartINCCheck runs the monitoring loop until the guest TSC
	// advances by ticks, then reports the number of loop iterations
	// ("INC instructions") executed, or interrupted=true if an AEX
	// severed the measurement.
	StartINCCheck(ticks uint64, done func(count float64, interrupted bool))

	// StartMemCheck is the frequency-independent twin of StartINCCheck:
	// it counts memory accesses (whose rate is set by the memory
	// subsystem, not the core's DVFS state) over the same kind of
	// guest-TSC window. The paper's §IV-A.1 answer to RQ A.1: coupling
	// the accurate-but-frequency-dependent INC monitor with a less
	// accurate but frequency-independent monitor locks an attacker out
	// of masking TSC scaling with a matching core-frequency change.
	StartMemCheck(ticks uint64, done func(count float64, interrupted bool))
}
