package enclave

import (
	"time"

	"triadtime/internal/sim"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
)

// SimPlatform is the discrete-event-simulation implementation of
// Platform: one enclave (one Triad node) on one monitoring core of the
// simulated machine.
type SimPlatform struct {
	sched *sim.Scheduler
	rng   *sim.RNG
	net   *simnet.Network
	addr  simnet.Addr

	tsc      *simtime.TSC
	core     simtime.Core
	bootHz   float64
	incModel INCModel
	memModel MemModel
	incIndex int

	aexHandler func()
	msgHandler func(from simnet.Addr, payload []byte)

	// inc measurement in flight, if any. Measurements run until the
	// guest TSC reaches an absolute target, so mid-window manipulation
	// (a jump or rescale) moves their completion time — exactly how
	// the real monitoring loop reacts.
	incDone   func(count float64, interrupted bool)
	incCancel sim.Event
	incStart  simtime.Instant
	incTarget uint64

	// mem measurement in flight, if any.
	memDone   func(count float64, interrupted bool)
	memCancel sim.Event
	memStart  simtime.Instant
	memTarget uint64

	// finishINCFn/finishMemFn are the completion callbacks handed to the
	// scheduler. Bound once at construction: a fresh method value per
	// measurement window would allocate on every monitoring tick, which
	// at thousand-node scale was the experiment harness's top allocation
	// site.
	finishINCFn func()
	finishMemFn func()

	// AEX bookkeeping for Figure 1's CDFs and Figure 6b's counts.
	aexCount  int
	lastAEXAt simtime.Instant
	sawAEX    bool
	gaps      []time.Duration
	recordGap bool
}

var _ Platform = (*SimPlatform)(nil)

// SimConfig configures a simulated enclave.
type SimConfig struct {
	// Addr is the node's network address (also its wire sender ID).
	Addr simnet.Addr
	// TSC is the node's monitoring-core TimeStamp Counter, including any
	// hypervisor manipulation state. Required.
	TSC *simtime.TSC
	// Core is the monitoring core's execution model. Zero value gets
	// the paper's core (3500 MHz, measured cycles/INC).
	Core simtime.Core
	// BootTSCHz is the OS boot-time TSC frequency hint. Zero defaults
	// to the TSC's true host rate (an honest OS measurement).
	BootTSCHz float64
	// INCModel is the INC measurement noise model. Zero value gets the
	// paper's model.
	INCModel INCModel
	// MemModel is the memory-access monitoring model. Zero value gets
	// the paper-style model.
	MemModel MemModel
	// RecordAEXGaps enables inter-AEX gap recording (Figure 1).
	RecordAEXGaps bool
}

// NewSimPlatform creates a simulated enclave platform and registers it
// on the network.
func NewSimPlatform(sched *sim.Scheduler, rng *sim.RNG, net *simnet.Network, cfg SimConfig) *SimPlatform {
	if cfg.TSC == nil {
		panic("enclave: SimConfig.TSC is required")
	}
	core := cfg.Core
	if core.FreqHz == 0 {
		core = simtime.PaperCore()
	}
	incModel := cfg.INCModel
	if incModel == (INCModel{}) {
		incModel = PaperINCModel()
	}
	memModel := cfg.MemModel
	if memModel == (MemModel{}) {
		memModel = PaperMemModel()
	}
	bootHz := cfg.BootTSCHz
	if bootHz == 0 {
		bootHz = cfg.TSC.HostHz()
	}
	p := &SimPlatform{
		sched:     sched,
		rng:       rng,
		net:       net,
		addr:      cfg.Addr,
		tsc:       cfg.TSC,
		core:      core,
		bootHz:    bootHz,
		incModel:  incModel,
		memModel:  memModel,
		recordGap: cfg.RecordAEXGaps,
	}
	p.finishINCFn = p.finishINC
	p.finishMemFn = p.finishMem
	net.Register(cfg.Addr, func(pkt simnet.Packet) {
		if p.msgHandler != nil {
			p.msgHandler(pkt.From, pkt.Payload)
		}
	})
	// Mid-window TSC manipulation moves the instant an in-flight
	// measurement's tick target is reached.
	cfg.TSC.Observe(p.onTSCManipulated)
	return p
}

// onTSCManipulated reschedules in-flight measurement completions after
// a guest-TSC jump or rescale.
func (p *SimPlatform) onTSCManipulated(at simtime.Instant) {
	if p.incDone != nil {
		p.sched.Cancel(p.incCancel)
		p.incCancel = p.sched.At(p.tsc.TimeOfReaching(p.incTarget, at), p.finishINCFn)
	}
	if p.memDone != nil {
		p.sched.Cancel(p.memCancel)
		p.memCancel = p.sched.At(p.tsc.TimeOfReaching(p.memTarget, at), p.finishMemFn)
	}
}

// Addr reports the platform's network address.
func (p *SimPlatform) Addr() simnet.Addr { return p.addr }

// TSC exposes the underlying TSC model (for attacker manipulation and
// experiment instrumentation; node logic never touches this).
func (p *SimPlatform) TSC() *simtime.TSC { return p.tsc }

// ReadTSC returns the guest-visible TSC now.
func (p *SimPlatform) ReadTSC() uint64 { return p.tsc.ReadAt(p.sched.Now()) }

// BootTSCHz returns the OS boot-time frequency hint.
func (p *SimPlatform) BootTSCHz() float64 { return p.bootHz }

// Send transmits a datagram on the simulated network.
func (p *SimPlatform) Send(to simnet.Addr, payload []byte) {
	p.net.Send(p.addr, to, payload)
}

// AfterTicks schedules fn once the guest TSC has advanced by ticks.
// The firing instant is computed against the current guest rate; a
// hypervisor rescaling the TSC mid-wait shifts a real enclave's spin
// deadline the same way.
func (p *SimPlatform) AfterTicks(ticks uint64, fn func()) CancelFunc {
	at := p.tsc.TimeOfTicksAfter(p.sched.Now(), ticks)
	ev := p.sched.At(at, fn)
	return func() { p.sched.Cancel(ev) }
}

// SetAEXHandler registers the AEX-Notify callback.
func (p *SimPlatform) SetAEXHandler(fn func()) { p.aexHandler = fn }

// SetMessageHandler registers the datagram delivery callback.
func (p *SimPlatform) SetMessageHandler(fn func(from simnet.Addr, payload []byte)) {
	p.msgHandler = fn
}

// StartINCCheck runs one monitoring-loop measurement: count iterations
// until the guest TSC advances by ticks. An AEX during the window
// aborts it with interrupted=true (the count is then meaningless and
// reported as 0). The executed iteration count reflects the *real*
// time the window spans, which is what makes the loop a detector: any
// manipulation that bends guest-ticks-per-real-second shifts the count.
//
//triad:hotpath
func (p *SimPlatform) StartINCCheck(ticks uint64, done func(count float64, interrupted bool)) {
	if p.incDone != nil {
		panic("enclave: overlapping INC measurements on one monitoring thread")
	}
	p.incDone = done
	p.incStart = p.sched.Now()
	p.incTarget = p.ReadTSC() + ticks
	p.incCancel = p.sched.At(p.tsc.TimeOfReaching(p.incTarget, p.incStart), p.finishINCFn)
}

//triad:hotpath
func (p *SimPlatform) finishINC() {
	cb := p.incDone
	p.incDone = nil
	p.incCancel = sim.Event{}
	elapsed := p.sched.Now().Sub(p.incStart).Seconds()
	cycles := p.core.CyclesPerINC
	if cycles <= 0 {
		cycles = 1
	}
	ideal := elapsed * p.core.FreqHz / cycles
	count := p.incModel.sample(ideal, p.incIndex, p.rng)
	p.incIndex++
	cb(count, false)
}

// StartMemCheck runs one memory-access measurement over ticks guest
// ticks. Its count depends on the memory subsystem's rate and the real
// time the window spans — but not the core frequency, which is what
// lets it catch TSC-scaling masked by a matching DVFS change.
//
//triad:hotpath
func (p *SimPlatform) StartMemCheck(ticks uint64, done func(count float64, interrupted bool)) {
	if p.memDone != nil {
		panic("enclave: overlapping memory measurements on one monitoring thread")
	}
	p.memDone = done
	p.memStart = p.sched.Now()
	p.memTarget = p.ReadTSC() + ticks
	p.memCancel = p.sched.At(p.tsc.TimeOfReaching(p.memTarget, p.memStart), p.finishMemFn)
}

//triad:hotpath
func (p *SimPlatform) finishMem() {
	cb := p.memDone
	p.memDone = nil
	p.memCancel = sim.Event{}
	elapsed := p.sched.Now().Sub(p.memStart).Seconds()
	ideal := elapsed * p.memModel.AccessesPerSec
	cb(p.memModel.sampleMem(ideal, p.rng), false)
}

// SetCoreFreqHz models the attacker (who owns the OS frequency
// governor) switching the monitoring core to another DVFS operating
// point. Intel exposes only discrete pre-determined frequencies; the
// experiments respect that by picking from a plausible grid.
func (p *SimPlatform) SetCoreFreqHz(hz float64) {
	if hz <= 0 {
		panic("enclave: non-positive core frequency")
	}
	p.core.FreqHz = hz
}

// CoreFreqHz reports the monitoring core's current frequency.
func (p *SimPlatform) CoreFreqHz() float64 { return p.core.FreqHz }

// FireAEX delivers an Asynchronous Enclave Exit to this enclave's
// monitoring core: interrupt injectors and machine-wide OS interrupt
// processes call this. It aborts any in-flight INC or memory
// measurement, records the inter-AEX gap, and then invokes the
// AEX-Notify handler.
func (p *SimPlatform) FireAEX() {
	now := p.sched.Now()
	p.aexCount++
	if p.sawAEX && p.recordGap {
		p.gaps = append(p.gaps, now.Sub(p.lastAEXAt))
	}
	p.sawAEX = true
	p.lastAEXAt = now

	if p.incDone != nil {
		cb := p.incDone
		p.incDone = nil
		p.sched.Cancel(p.incCancel)
		p.incCancel = sim.Event{}
		cb(0, true)
	}
	if p.memDone != nil {
		cb := p.memDone
		p.memDone = nil
		p.sched.Cancel(p.memCancel)
		p.memCancel = sim.Event{}
		cb(0, true)
	}
	if p.aexHandler != nil {
		p.aexHandler()
	}
}

// AEXCount reports the number of AEXs delivered so far (Figure 6b).
func (p *SimPlatform) AEXCount() int { return p.aexCount }

// AEXGaps returns the recorded inter-AEX gaps (Figure 1). The slice is
// a copy.
func (p *SimPlatform) AEXGaps() []time.Duration {
	cp := make([]time.Duration, len(p.gaps))
	copy(cp, p.gaps)
	return cp
}
