// Engine-level dispatch benchmarks: the same shared engine drives both
// protocol variants, so the baseline/hardened deltas below price the
// policies alone — the Marzullo gather-and-filter cycle and the
// windowed calibration state against the original adopt-if-ahead path.
package engine_test

import (
	"testing"
	"time"

	"triadtime/internal/core"
	"triadtime/internal/experiment"
	"triadtime/internal/resilient"
)

// benchCluster builds a calibrated three-node cluster with every
// wall-clock-free background source disabled (monitors, machine AEXs,
// the hardened deadline), so each benchmark iteration's scheduler work
// is exactly the dispatch path under measurement.
func benchCluster(b *testing.B, hardened bool) *experiment.Cluster {
	b.Helper()
	c, err := experiment.NewCluster(experiment.ClusterConfig{
		Seed:              11,
		Hardened:          hardened,
		DisableMachineAEX: true,
		Tweak: func(_ int, cfg *core.Config) {
			cfg.DisableMonitor = true
		},
		HardenedTweak: func(_ int, cfg *resilient.Config) {
			cfg.DisableMonitor = true
			cfg.DisableDeadline = true
			cfg.CalibWindow = time.Second
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	c.Start()
	c.RunFor(30 * time.Second)
	for i, n := range c.Nodes {
		if n.State() != core.StateOK {
			b.Fatalf("node %d not calibrated: %v", i+1, n.State())
		}
	}
	return c
}

// benchRecoveryCycle drives one full taint -> peer-gather -> untaint
// dispatch cycle per iteration: an AEX on node 1, the sealed
// PeerTimeRequest broadcast, both peers' replies, and the filter
// decision (adopt-if-ahead vs Marzullo).
func benchRecoveryCycle(b *testing.B, hardened bool) {
	c := benchCluster(b, hardened)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Platforms[0].FireAEX()
		c.RunFor(50 * time.Millisecond)
		if c.Nodes[0].State() != core.StateOK {
			b.Fatalf("node 1 did not recover: %v", c.Nodes[0].State())
		}
	}
	b.StopTimer()
	if n := c.Nodes[0].Counters(); n.PeerUntaints+n.TAReferences < b.N {
		b.Fatalf("recovered %d times without references: %+v", b.N, n)
	}
}

func BenchmarkRecoveryDispatchBaseline(b *testing.B) { benchRecoveryCycle(b, false) }
func BenchmarkRecoveryDispatchHardened(b *testing.B) { benchRecoveryCycle(b, true) }

// benchTrustedNow prices the serving path: one monotonic clock read
// per iteration on a calibrated node. Identical engine code for both
// variants — any delta is noise, which makes this the control.
func benchTrustedNow(b *testing.B, hardened bool) {
	c := benchCluster(b, hardened)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Nodes[0].TrustedNow(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrustedNowBaseline(b *testing.B) { benchTrustedNow(b, false) }
func BenchmarkTrustedNowHardened(b *testing.B) { benchTrustedNow(b, true) }
