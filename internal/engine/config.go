package engine

import (
	"errors"
	"fmt"
	"time"

	"triadtime/internal/simnet"
	"triadtime/internal/wire"
)

// Config parameterizes the engine-owned machinery shared by every
// protocol variant. Variant-specific knobs (calibration sleeps,
// windows, RTT bounds, deadlines) live in the variant packages'
// configs and reach the engine only through policy behaviour.
type Config struct {
	// Key is the cluster's 32-byte pre-shared AES-256 key.
	Key []byte
	// Addr is this node's network address and wire sender identity.
	Addr simnet.Addr
	// Peers are the other Triad nodes in the cluster, in broadcast
	// order.
	Peers []simnet.Addr
	// Authority is the Time Authority's address.
	Authority simnet.Addr
	// Authorities lists every Time Authority this node trusts, in a
	// fixed order. Empty defaults to {Authority}: the single-authority
	// protocol. With several entries, time responses from any listed
	// authority reach the policies (the multi-authority quorum
	// calibration), and Authority defaults to Authorities[0].
	Authorities []simnet.Addr

	// PeerTimeout bounds how long a tainted node waits for peer
	// timestamps before falling back to the Time Authority.
	// Default: 20ms.
	PeerTimeout time.Duration

	// MonitorTicks is the guest-TSC window of one INC monitoring
	// measurement. Default: 15e6 ticks (~5ms), the paper's window.
	MonitorTicks uint64
	// MonitorTolerance is the relative INC deviation from the baseline
	// that is flagged as a TSC discrepancy. Default: 0.005 (0.5%).
	MonitorTolerance float64
	// DisableMonitor turns off rate monitoring entirely.
	DisableMonitor bool
	// EnableMemMonitor additionally runs the frequency-independent
	// memory-access monitor, closing the TSC-scaling-masked-by-DVFS
	// attack.
	EnableMemMonitor bool
	// MemTolerance is the memory monitor's relative deviation flag
	// threshold (0 uses the monitor's default).
	MemTolerance float64
	// FreqChangeEvents wires the monitor's DVFS-reclassification
	// callback to Events.FreqChange (the original protocol surfaces
	// it; the hardened variant historically does not).
	FreqChangeEvents bool

	// Events are optional observation hooks.
	Events Events
}

// Defaults used when Config fields are zero. They are shared by both
// protocol variants.
const (
	DefaultPeerTimeout      = 20 * time.Millisecond
	DefaultMonitorTicks     = 15_000_000
	DefaultMonitorTolerance = 0.005
)

// withDefaults returns a copy of the config with zero fields defaulted
// and validates the result. Errors carry no package prefix so the
// variant packages can wrap them under their own name.
func (c Config) withDefaults() (Config, error) {
	if len(c.Key) != wire.KeySize {
		return c, fmt.Errorf("key must be %d bytes, got %d", wire.KeySize, len(c.Key))
	}
	if len(c.Authorities) > 0 && c.Authority == 0 {
		c.Authority = c.Authorities[0]
	}
	if c.Authority == c.Addr {
		return c, errors.New("node address equals authority address")
	}
	if len(c.Authorities) == 0 {
		c.Authorities = []simnet.Addr{c.Authority}
	}
	for i, a := range c.Authorities {
		if a == c.Addr {
			return c, errors.New("node address listed as an authority")
		}
		for _, b := range c.Authorities[:i] {
			if a == b {
				return c, fmt.Errorf("authority %d listed twice", a)
			}
		}
	}
	for _, p := range c.Peers {
		if p == c.Addr {
			return c, errors.New("node lists itself as a peer")
		}
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = DefaultPeerTimeout
	}
	if c.MonitorTicks == 0 {
		c.MonitorTicks = DefaultMonitorTicks
	}
	if c.MonitorTolerance <= 0 {
		c.MonitorTolerance = DefaultMonitorTolerance
	}
	return c, nil
}
