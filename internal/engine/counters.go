package engine

// Counters are the engine's cumulative protocol counters. One struct
// covers both variants so metrics, the live runtime, and the
// experiment harness read original and hardened nodes uniformly;
// hardening-only counters simply stay zero on original nodes.
type Counters struct {
	// TAReferences counts adopted Time Authority references (both
	// reference and full calibrations) — Figure 2b's metric.
	TAReferences int
	// PeerUntaints counts recoveries via peer timestamps.
	PeerUntaints int
	// Served counts trusted timestamps served.
	Served uint64

	// RejectedPeers counts peer timestamps the hardened chimer filter
	// refused.
	RejectedPeers int
	// RTTRejections counts Time Authority exchanges the hardened
	// roundtrip bound discarded.
	RTTRejections int
	// Probes counts hardened in-TCB deadline self-checks;
	// ProbeFailures counts those that found the local clock
	// inconsistent.
	Probes        int
	ProbeFailures int

	// GossipSent / GossipReceived count chimer reports published and
	// ingested; GossipAdoptions counts untaints that needed
	// gossip-accredited evidence.
	GossipSent      int
	GossipReceived  int
	GossipAdoptions int

	// QuorumAccepts counts multi-authority rounds whose interval
	// intersection met the agreement rule and was adopted;
	// QuorumNoMajority counts rounds that found no agreeing quorum.
	// FalseTickers accumulates, over accepted rounds, the responding
	// authorities whose interval fell outside the adopted intersection
	// (lying or badly delayed). Holdovers counts entries into the
	// Degraded holdover state. All stay zero on single-authority nodes.
	QuorumAccepts    int
	QuorumNoMajority int
	FalseTickers     int
	Holdovers        int
}
