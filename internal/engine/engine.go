// Package engine is the protocol machinery shared by every Triad
// variant: the trusted-clock state and its monotonic serving, the
// Init/FullCalib/RefCalib/Tainted/OK state machine, sealed datagram
// dispatch (AEAD sealing, opening, replay windows), AEX-epoch
// stamping, peer-timestamp gathering, the TSC rate monitor, and the
// protocol counters.
//
// Variant behaviour — how to calibrate, how to recover from a taint,
// which peer timestamps to believe, whether to gossip — is injected
// through the small interfaces in policy.go. internal/core assembles
// the paper's original protocol from them; internal/resilient
// assembles the Section V hardened protocol. The engine fires one set
// of observation hooks (Events) and keeps one set of Counters for
// both, so the live runtime, the lab, and the experiment harness
// observe any variant through the same surface.
package engine

import (
	"errors"
	"fmt"
	"time"

	"triadtime/internal/enclave"
	"triadtime/internal/simnet"
	"triadtime/internal/wire"
)

// ErrUnavailable is returned by TrustedNow while the node cannot serve
// trusted timestamps (tainted or calibrating).
var ErrUnavailable = errors.New("trusted time unavailable")

// Engine is the variant-independent half of a Triad node. It is
// event-driven: after Start, all work happens in callbacks the
// Platform dispatches (datagram deliveries, AEX notifications, timer
// and INC-measurement completions). Platforms serialize callbacks, so
// the engine has no internal locking; callers of TrustedNow must call
// from the same dispatch context (in the simulation: from scheduler
// events; live: via the transport's Do).
type Engine struct {
	cfg      Config
	platform enclave.Platform
	sealer   *wire.Sealer
	opener   *wire.Opener
	events   *Events
	peers    map[simnet.Addr]bool

	calibration CalibrationPolicy
	recovery    RecoveryPolicy
	filter      PeerFilter
	gossipHook  GossipHook

	state State

	// Trusted clock: now = refNanos + (tsc - refTSC)/fCalib.
	fCalib     float64 // estimated guest-TSC ticks per reference second
	refNanos   int64
	refTSC     uint64
	lastServed int64 //triad:monotonic strictly-increasing serving clamp (uniqueness of served timestamps)

	//triad:monotonic bumped on every AEX; stamps in-flight measurements
	aexEpoch uint64
	seq      uint64 // request sequence numbers

	gather  *gather
	monitor *enclave.RateMonitor

	// sealBuf/openBuf are the endpoint's datagram scratch: every sealed
	// send reuses sealBuf (safe because both transports are done with
	// the bytes when Send returns — the simulated network copies the
	// payload into its delivery pool, the live one writes it to the
	// socket) and every open decrypts into openBuf, so the dispatch and
	// gather paths allocate nothing per datagram.
	sealBuf []byte
	openBuf []byte

	counters  Counters
	timeJumps []int64
}

// New creates an engine bound to the platform with the given policy
// assembly. It installs itself as the platform's AEX and message
// handler; call Start to begin the protocol. Errors carry no package
// prefix so variants wrap them under their own name.
func New(platform enclave.Platform, cfg Config, pol Policies) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if pol.Calibration == nil || pol.Recovery == nil || pol.Filter == nil {
		return nil, errors.New("engine policies incomplete")
	}
	sealer, err := wire.NewSealer(cfg.Key, uint32(cfg.Addr))
	if err != nil {
		return nil, err
	}
	opener, err := wire.NewOpener(cfg.Key)
	if err != nil {
		return nil, err
	}
	peers := make(map[simnet.Addr]bool, len(cfg.Peers))
	for _, p := range cfg.Peers {
		peers[p] = true
	}
	e := &Engine{
		cfg:         cfg,
		platform:    platform,
		sealer:      sealer,
		opener:      opener,
		events:      &cfg.Events,
		peers:       peers,
		calibration: pol.Calibration,
		recovery:    pol.Recovery,
		filter:      pol.Filter,
		gossipHook:  pol.Gossip,
		state:       StateInit,
		sealBuf:     make([]byte, 0, wire.SealedSize),
		openBuf:     make([]byte, 0, wire.MarshaledSize),
	}
	platform.SetAEXHandler(e.onAEX)
	platform.SetMessageHandler(e.onDatagram)
	return e, nil
}

// Start launches the protocol: full calibration with the Time
// Authority, rate monitoring (unless disabled), and the recovery
// policy's steady-state machinery. Starting a started engine is a
// no-op.
func (e *Engine) Start() {
	if e.state != StateInit {
		return
	}
	e.setState(StateFullCalib)
	e.calibration.Start(e)
	if !e.cfg.DisableMonitor {
		e.startMonitor()
	}
	e.recovery.OnStart(e)
}

// Addr reports the node's network address.
func (e *Engine) Addr() simnet.Addr { return e.cfg.Addr }

// Authority reports the Time Authority's address (the first configured
// authority on multi-authority nodes).
func (e *Engine) Authority() simnet.Addr { return e.cfg.Authority }

// Authorities returns every configured Time Authority in trust order
// (length 1 on single-authority nodes). The slice is shared; callers
// must not mutate it.
func (e *Engine) Authorities() []simnet.Addr { return e.cfg.Authorities }

// isAuthority reports whether a is a configured Time Authority. The
// authority list is at most a handful of entries, so a linear scan
// beats a map (and keeps dispatch allocation- and map-iteration-free).
func (e *Engine) isAuthority(a simnet.Addr) bool {
	for _, auth := range e.cfg.Authorities {
		if auth == a {
			return true
		}
	}
	return false
}

// PeerAddrs returns the configured peers in broadcast order. The
// slice is shared; callers must not mutate it.
func (e *Engine) PeerAddrs() []simnet.Addr { return e.cfg.Peers }

// Platform exposes the enclave platform to policies (TSC reads,
// timers).
func (e *Engine) Platform() enclave.Platform { return e.platform }

// Events exposes the observation hooks, which may be replaced
// mid-session by instrumentation.
func (e *Engine) Events() *Events { return e.events }

// State reports the protocol state.
func (e *Engine) State() State { return e.state }

// SetState transitions the protocol state, firing StateChanged.
func (e *Engine) SetState(s State) { e.setState(s) }

// FCalib reports the calibrated TSC rate in ticks per reference
// second, or 0 before the first calibration completes.
func (e *Engine) FCalib() float64 { return e.fCalib }

// AEXEpoch reports the current AEX epoch; policies stamp in-flight
// measurements with it and discard any whose window was severed.
func (e *Engine) AEXEpoch() uint64 { return e.aexEpoch }

// NextSeq allocates a request sequence number.
func (e *Engine) NextSeq() uint64 {
	e.seq++
	return e.seq
}

// Counters exposes the protocol counters for policy updates.
func (e *Engine) Counters() *Counters { return &e.counters }

// CounterSnapshot returns a copy of the protocol counters.
func (e *Engine) CounterSnapshot() Counters { return e.counters }

// TimeJumps returns the forward jumps (ns) taken when adopting peer
// timestamps; the 50–70ms jumps of Figure 3a and ~35ms jumps of
// Figure 6a show up here. The slice is a copy.
func (e *Engine) TimeJumps() []int64 {
	cp := make([]int64, len(e.timeJumps))
	copy(cp, e.timeJumps)
	return cp
}

// TrustedNow serves one trusted timestamp (nanoseconds on the Time
// Authority's timeline). It fails with ErrUnavailable while the node
// is tainted or calibrating. Served timestamps are strictly monotonic.
func (e *Engine) TrustedNow() (int64, error) {
	if !e.state.Serving() {
		return 0, fmt.Errorf("%w: state %s", ErrUnavailable, e.state)
	}
	return e.serveTimestamp(), nil
}

// ClockReading reports the internal clock without availability
// checking or monotonic bumping. Instrumentation only (the experiment
// harness samples drift with it); applications must use TrustedNow.
func (e *Engine) ClockReading() (int64, bool) {
	if e.fCalib == 0 {
		return 0, false
	}
	return e.ClockNow(), true
}

// ClockNow converts the current TSC to trusted nanoseconds. Callers
// must ensure a calibration has completed (fCalib != 0). When the TSC
// sits behind the anchor — a backwards jump the monitor has not yet
// caught — the clock freezes rather than going back in time.
func (e *Engine) ClockNow() int64 {
	tsc := e.platform.ReadTSC()
	if tsc < e.refTSC {
		return e.refNanos
	}
	return e.refNanos + int64(float64(tsc-e.refTSC)/e.fCalib*1e9)
}

// ReferenceNanos reports the current reference anchor — the latest
// TA- or peer-anchored trusted time. The hardened gossip layer stamps
// chimer reports with it as a credibility signal.
func (e *Engine) ReferenceNanos() int64 { return e.refNanos }

// serveTimestamp returns the current clock reading bumped to stay
// strictly monotonic across everything this node has ever served.
func (e *Engine) serveTimestamp() int64 {
	ts := e.ClockNow()
	if ts <= e.lastServed {
		ts = e.lastServed + 1
	}
	e.lastServed = ts
	e.counters.Served++
	return ts
}

func (e *Engine) setState(s State) {
	if s == e.state {
		return
	}
	old := e.state
	e.state = s
	e.events.stateChanged(old, s)
}

// TicksFor converts a wall duration to guest ticks using the
// boot-time frequency hint. Used only to size timeouts and windows,
// never for trusted time.
func (e *Engine) TicksFor(d time.Duration) uint64 {
	return e.TicksForSeconds(d.Seconds())
}

// TicksForSeconds is TicksFor on a seconds value (hardened windows are
// tracked as float seconds).
func (e *Engine) TicksForSeconds(sec float64) uint64 {
	return uint64(sec * e.platform.BootTSCHz())
}

// SendSealed seals msg under this node's wire identity and sends it.
// The sealed bytes live in the engine's scratch buffer, which the next
// SendSealed reuses; transports must be done with the payload when Send
// returns (both are).
func (e *Engine) SendSealed(to simnet.Addr, msg wire.Message) {
	e.sealBuf = e.sealer.SealAppend(e.sealBuf[:0], msg)
	e.platform.Send(to, e.sealBuf)
}

// CompleteCalibration installs a finished full calibration — rate and
// reference anchor — and moves the node to StateOK, firing
// TAReference then Calibrated in the order the trace battery pins.
func (e *Engine) CompleteCalibration(fCalib float64, refNanos int64, refTSC uint64) {
	e.fCalib = fCalib
	e.refNanos = refNanos
	e.refTSC = refTSC
	e.counters.TAReferences++
	e.events.taReference()
	e.events.calibrated(fCalib)
	e.setState(StateOK)
}

// AdoptTAReference installs a reference-only Time Authority anchor
// (RefCalib completion) and moves the node to StateOK.
func (e *Engine) AdoptTAReference(refNanos int64, refTSC uint64) {
	e.refNanos = refNanos
	e.refTSC = refTSC
	e.counters.TAReferences++
	e.events.taReference()
	e.setState(StateOK)
}

// AdoptPeerReference installs a peer-derived anchor (untaint) and
// moves the node to StateOK. jumpNanos is the forward jump reported to
// observers (0 when the local clock was kept).
func (e *Engine) AdoptPeerReference(from uint32, refNanos int64, refTSC uint64, jumpNanos int64) {
	e.refNanos = refNanos
	e.refTSC = refTSC
	e.counters.PeerUntaints++
	e.timeJumps = append(e.timeJumps, jumpNanos)
	e.events.peerUntaint(from, jumpNanos)
	e.setState(StateOK)
}

// EmitDiscrepancy fires the Discrepancy observation hook (hardened
// probes report clock divergence through it).
func (e *Engine) EmitDiscrepancy(rel float64) { e.events.discrepancy(rel) }

// ShiftReference moves the reference anchor by delta nanoseconds — a
// fault-injection hook for tests and attack drills (a compromised or
// skewed clock).
func (e *Engine) ShiftReference(delta int64) { e.refNanos += delta }

// ScaleRate multiplies the calibrated rate by factor — the
// fault-injection analogue of a miscalibration.
func (e *Engine) ScaleRate(factor float64) { e.fCalib *= factor }

// onDatagram authenticates and dispatches one delivered datagram. The
// network-level source is ignored: trust keys off the authenticated
// wire-layer sender identity — an attacker can spoof addresses but
// not the AEAD.
func (e *Engine) onDatagram(_ simnet.Addr, payload []byte) {
	msg, sender, err := e.opener.OpenInto(e.openBuf, payload)
	if err != nil {
		return // tampered, replayed, or foreign traffic: drop
	}
	switch msg.Kind {
	case wire.KindTimeResponse:
		from := simnet.Addr(sender)
		if !e.isAuthority(from) {
			return
		}
		if !e.calibration.OnTimeResponse(e, from, msg) {
			e.recovery.OnTimeResponse(e, from, msg)
		}
	case wire.KindPeerTimeRequest:
		if !e.peers[simnet.Addr(sender)] {
			return
		}
		e.onPeerTimeRequest(simnet.Addr(sender), msg)
	case wire.KindPeerTimeResponse:
		if !e.peers[simnet.Addr(sender)] {
			return
		}
		e.onPeerTimeResponse(sender, msg)
	case wire.KindChimerReport:
		if e.gossipHook == nil || !e.peers[simnet.Addr(sender)] {
			return
		}
		e.gossipHook.OnChimerReport(e, sender, msg)
	case wire.KindTimeRequest:
		// Nodes are not the Time Authority; ignore.
	case wire.KindStampRequest, wire.KindStampResponse,
		wire.KindCommitLock, wire.KindCommitUnlock, wire.KindCommitStatus:
		// Serving-layer traffic — timestamp and commitment families —
		// rides its own client channel (wire client framing), never the
		// engine's datagram path; drop.
	default:
		// Unknown kind: Unmarshal bounds-checks kinds, but an explicit
		// drop keeps the dispatch total if new kinds are added.
	}
}

// onPeerTimeRequest answers a peer's untaint request if, and only if,
// this node's own timestamp is currently trustworthy (tainted peers
// stay silent, paper §III-D).
func (e *Engine) onPeerTimeRequest(from simnet.Addr, msg wire.Message) {
	if e.state != StateOK {
		return
	}
	e.SendSealed(from, wire.Message{
		Kind:      wire.KindPeerTimeResponse,
		Seq:       msg.Seq,
		TimeNanos: e.serveTimestamp(),
	})
}

// onAEX is the AEX-Notify handler: time continuity was severed.
func (e *Engine) onAEX() {
	e.aexEpoch++
	switch e.state {
	case StateOK, StateDegraded:
		e.recovery.OnTaint(e)
	case StateFullCalib:
		e.calibration.OnAEX(e)
	case StateTainted, StateRefCalib, StateInit:
		// Already tainted/recovering; nothing changes.
	}
}

// startMonitor builds and starts the rate monitor: a dedicated
// enclave thread cross-checks the guest TSC against the core's
// instruction rate (INC counting, §IV-A.1) and — when EnableMemMonitor
// is set — against the frequency-independent memory-access rate,
// which closes the masking attack where the OS changes the core's
// DVFS point in proportion to a TSC scaling.
func (e *Engine) startMonitor() {
	mc := enclave.MonitorConfig{
		INCTicks:      e.cfg.MonitorTicks,
		INCTol:        e.cfg.MonitorTolerance,
		EnableMem:     e.cfg.EnableMemMonitor,
		MemTol:        e.cfg.MemTolerance,
		OnDiscrepancy: e.onDiscrepancy,
	}
	if e.cfg.FreqChangeEvents {
		mc.OnFreqChange = func(rel float64) {
			// A core-frequency change is legal OS behaviour; the INC
			// baseline re-learns. Surface it for observability only.
			e.events.freqChange(rel)
		}
	}
	e.monitor = enclave.NewRateMonitor(e.platform, mc)
	e.monitor.Start()
}

// onDiscrepancy reacts to detected TSC tampering: the calibrated
// clock can no longer be trusted, so the node re-learns both rate and
// reference from the Time Authority, and the monitor re-baselines
// against the (possibly still manipulated) new TSC relationship.
func (e *Engine) onDiscrepancy(rel float64) {
	e.events.discrepancy(rel)
	e.monitor.Reset()
	if e.state == StateFullCalib {
		return // already recalibrating
	}
	e.recovery.Cancel(e)
	e.setState(StateFullCalib)
	e.calibration.Start(e)
}
