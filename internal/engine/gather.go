package engine

import (
	"triadtime/internal/enclave"
	"triadtime/internal/wire"
)

// PeerSample is one peer's timestamp gathered during recovery or a
// self-check probe. The arrival TSC lets decision points age-adjust
// the timestamp: gathering may wait out the full PeerTimeout, and
// adopting a stale reading as "now" would skew the clock into the
// past (and compound across adoption chains).
type PeerSample struct {
	From       uint32
	TS         int64
	ArrivalTSC uint64
}

// gather collects peer timestamps after a taint. How long it stays
// open and what happens to the samples is the PeerFilter's call:
// first-response-wins for the original protocol, a full PeerTimeout
// window with majority filtering for the hardened one.
type gather struct {
	seq       uint64
	responses []PeerSample
	timer     enclave.CancelFunc
}

// BeginPeerGather broadcasts a timestamp request to all peers and arms
// the PeerTimeout fallback. With no peers configured it goes straight
// to the recovery policy's reference calibration. Call while
// StateTainted.
func (e *Engine) BeginPeerGather() {
	if len(e.cfg.Peers) == 0 {
		e.recovery.StartRefCalib(e)
		return
	}
	g := &gather{seq: e.NextSeq()}
	e.gather = g
	for _, p := range e.cfg.Peers {
		// Each peer gets its own sealed copy: GCM nonces are single-use.
		e.SendSealed(p, wire.Message{
			Kind: wire.KindPeerTimeRequest,
			Seq:  g.seq,
		})
	}
	g.timer = e.platform.AfterTicks(e.TicksFor(e.cfg.PeerTimeout), func() {
		g.timer = nil
		e.closeGather()
	})
}

// CancelGather drops any gather in flight (timer included). Stale
// responses are ignored by sequence-number mismatch.
func (e *Engine) CancelGather() {
	if e.gather == nil {
		return
	}
	if e.gather.timer != nil {
		e.gather.timer()
	}
	e.gather = nil
}

// closeGather ends the gather window and hands the samples to the
// filter (or falls back to reference calibration when no peer had an
// untainted timestamp for us).
func (e *Engine) closeGather() {
	g := e.gather
	e.gather = nil
	if g == nil || e.state != StateTainted {
		return
	}
	if len(g.responses) == 0 {
		e.recovery.StartRefCalib(e)
		return
	}
	e.filter.Decide(e, g.responses)
}

// onPeerTimeResponse routes one authenticated peer timestamp: into the
// gather if it matches, otherwise to the recovery policy (hardened
// probes collect peer samples outside taint recovery).
func (e *Engine) onPeerTimeResponse(from uint32, msg wire.Message) {
	s := PeerSample{From: from, TS: msg.TimeNanos, ArrivalTSC: e.platform.ReadTSC()}
	if e.gather != nil && msg.Seq == e.gather.seq {
		e.gather.responses = append(e.gather.responses, s)
		if e.filter.Immediate() {
			if e.gather.timer != nil {
				e.gather.timer()
			}
			e.closeGather()
		}
		return
	}
	e.recovery.OnPeerSample(e, msg.Seq, s)
}
