package engine

import (
	"triadtime/internal/simnet"
	"triadtime/internal/wire"
)

// The engine calls out to small policy interfaces at exactly the
// decision points where the original protocol (internal/core) and the
// Section V hardened variant (internal/resilient) diverge. A protocol
// variant is an assembly of these policies over one engine; everything
// else — clock state, state machine, datagram dispatch, AEX epochs,
// peer gathering, rate monitoring, counters — is engine-owned and
// identical across variants.

// CalibrationPolicy drives full (rate + reference) calibration with
// the Time Authority. The original protocol regresses TSC increments
// over requested-sleep roundtrips; the hardened variant takes two
// RTT-bounded exchanges across a long window.
type CalibrationPolicy interface {
	// Start begins (or restarts) a full calibration. The engine has
	// already set StateFullCalib; the policy must cancel its own stale
	// exchanges and any engine gather (Engine.CancelGather) first.
	Start(e *Engine)
	// OnTimeResponse offers a Time Authority response; from is the
	// authenticated authority identity, so multi-authority policies can
	// attribute the response. It returns true if the response belonged
	// to a calibration exchange (consumed).
	OnTimeResponse(e *Engine, from simnet.Addr, msg wire.Message) bool
	// OnAEX notifies the policy that an AEX fired while calibrating:
	// any in-flight measurement window was severed.
	OnAEX(e *Engine)
}

// RecoveryPolicy drives taint recovery and any steady-state
// self-checking. The original protocol recovers via first-responding
// peer then reference calibration; the hardened variant gathers all
// peers, filters, probes, and runs an in-TCB refresh deadline.
type RecoveryPolicy interface {
	// OnStart runs once when the node starts (after calibration and
	// monitoring are launched) — the hardened variant arms its refresh
	// deadline here.
	OnStart(e *Engine)
	// OnTaint runs when an AEX fires in StateOK. The policy must move
	// the engine to StateTainted and begin recovery (typically
	// Engine.BeginPeerGather).
	OnTaint(e *Engine)
	// OnTimeResponse offers a Time Authority response not claimed by
	// the calibration policy (reference calibration, probes); from is
	// the authenticated authority identity. It returns true if
	// consumed.
	OnTimeResponse(e *Engine, from simnet.Addr, msg wire.Message) bool
	// OnPeerSample offers a peer time response that did not match the
	// engine's gather (e.g. hardened probe responses).
	OnPeerSample(e *Engine, seq uint64, s PeerSample)
	// StartRefCalib re-acquires the time reference from the Time
	// Authority; the engine calls it when peer recovery yields nothing.
	StartRefCalib(e *Engine)
	// Cancel aborts all recovery machinery in flight (gather included,
	// via Engine.CancelGather) — called when escalating to a full
	// calibration after a monitor discrepancy.
	Cancel(e *Engine)
}

// PeerFilter decides what to do with gathered peer timestamps.
type PeerFilter interface {
	// Immediate reports whether the first gathered response should
	// close the gather window at once (the original protocol's
	// first-response-wins) instead of waiting out PeerTimeout.
	Immediate() bool
	// Decide applies the gathered samples (len >= 1) while the engine
	// is StateTainted: adopt a reference via
	// Engine.AdoptPeerReference, or fall back to
	// RecoveryPolicy.StartRefCalib.
	Decide(e *Engine, samples []PeerSample)
}

// GossipHook receives chimer-report datagrams from authenticated
// peers. Variants without gossip leave it nil and the engine drops the
// reports.
type GossipHook interface {
	OnChimerReport(e *Engine, from uint32, msg wire.Message)
}

// Policies bundles a variant's behaviour for engine construction.
type Policies struct {
	Calibration CalibrationPolicy
	Recovery    RecoveryPolicy
	Filter      PeerFilter
	// Gossip is optional; nil drops chimer reports.
	Gossip GossipHook
}

// AdoptIfAhead is the original Triad peer policy (paper §III-B): the
// first responding peer decides; its timestamp is adopted if higher
// than the local clock, otherwise the local timestamp is kept and
// bumped by the smallest increment. This "fastest clock wins" rule is
// exactly what lets a compromised fast node drag honest peers forward
// (paper §III-D, Figure 6). The hardened variant reuses it as its
// chimer-filter ablation.
type AdoptIfAhead struct{}

// Immediate reports first-response-wins.
func (AdoptIfAhead) Immediate() bool { return true }

// Decide applies the adopt-if-higher rule to the first sample.
func (AdoptIfAhead) Decide(e *Engine, samples []PeerSample) {
	r := samples[0]
	local := e.ClockNow()
	var jump int64
	adopted := local + 1
	if r.TS > local {
		jump = r.TS - local
		adopted = r.TS
	}
	e.AdoptPeerReference(r.From, adopted, e.Platform().ReadTSC(), jump)
}
