package engine

import (
	"sort"
	"time"

	"triadtime/internal/enclave"
	"triadtime/internal/marzullo"
	"triadtime/internal/simnet"
	"triadtime/internal/wire"
)

// Multi-authority quorum calibration (ROADMAP item 2, following
// TriHaRd's hardening of the single-Time-Authority trust assumption).
// Instead of trusting one TA, the node fans every calibration exchange
// out to N independent authorities, converts each response into a
// confidence interval on reference time, and adopts a reference only
// when the Marzullo intersection of those intervals is supported by an
// agreeing quorum — by default a strict majority of the configured
// authorities. One lying, delaying, or dark authority in a minority
// cannot move the adopted time; it merely shows up in the FalseTickers
// counter. When a steady-state recheck finds no quorum (split-brain,
// or a majority outage), the node enters the Degraded holdover state:
// it keeps serving on its last agreed calibration — bounded only by
// local TSC drift — while retrying, rather than going dark or trusting
// a disputed reference.

// QuorumConfig parameterizes the multi-authority quorum policies.
type QuorumConfig struct {
	// TATimeout is each round's response deadline: a round closes when
	// every authority answered or the deadline passes. Default: 250ms.
	TATimeout time.Duration
	// ErrBudget is the base half-width of the confidence interval
	// assigned to each authority reading (authority clock error + local
	// extrapolation error); half the observed roundtrip is added on
	// top. Default: 10ms.
	ErrBudget time.Duration
	// CalibWindow is the TSC window between the two reference rounds of
	// a rate calibration (as in the hardened windowed calibration, but
	// fanned out). An AEX inside the window halves it, down to
	// MinCalibWindow. Defaults: 2s / 250ms.
	CalibWindow    time.Duration
	MinCalibWindow time.Duration
	// RecheckInterval is the steady-state quorum revalidation period:
	// while serving, the node re-runs a reference round and degrades to
	// holdover if the quorum is gone. Default: 10s.
	RecheckInterval time.Duration
	// DisableRecheck turns steady-state revalidation off (the node then
	// only consults the quorum at calibration and taint recovery).
	DisableRecheck bool
	// RetryBackoff is the pause before retrying after a failed or
	// under-responded quorum round. Default: 250ms.
	RetryBackoff time.Duration
	// MinAgree overrides the agreement rule: accept an intersection
	// supported by at least MinAgree authorities instead of a strict
	// majority of all configured ones. 0 keeps the majority rule. A
	// 2-authority deployment sets MinAgree=1 to survive one authority
	// loss (trading Byzantine protection for availability).
	MinAgree int
}

func (c QuorumConfig) withDefaults() QuorumConfig {
	if c.TATimeout <= 0 {
		c.TATimeout = 250 * time.Millisecond
	}
	if c.ErrBudget <= 0 {
		c.ErrBudget = 10 * time.Millisecond
	}
	if c.CalibWindow <= 0 {
		c.CalibWindow = 2 * time.Second
	}
	if c.MinCalibWindow <= 0 {
		c.MinCalibWindow = 250 * time.Millisecond
	}
	if c.MinCalibWindow > c.CalibWindow {
		c.MinCalibWindow = c.CalibWindow
	}
	if c.RecheckInterval <= 0 {
		c.RecheckInterval = 10 * time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
	return c
}

// QuorumDecide applies the quorum agreement rule to per-authority
// confidence intervals: the Marzullo intersection is adopted when
// supported by at least minAgree authorities (minAgree > 0) or by a
// strict majority of the total configured authorities (minAgree == 0).
// It returns the best intersection, how many intervals support it, and
// the verdict.
func QuorumDecide(intervals []marzullo.Interval, total, minAgree int) (marzullo.Interval, int, bool) {
	best, count := marzullo.Intersect(intervals)
	if minAgree > 0 {
		return best, count, count >= minAgree
	}
	return best, count, count*2 > total
}

// quorumSample is one authority's slot in a round.
type quorumSample struct {
	addr    simnet.Addr
	seq     uint64
	sentTSC uint64
	recvTSC uint64
	t       int64 // authority reference time, valid when have
	have    bool
}

// quorumRound is one fan-out: a sleep-0 TimeRequest to every
// configured authority, closing when all answered or the deadline
// passed. Slots stay in authority config order, so iteration is
// deterministic.
type quorumRound struct {
	slots   []quorumSample
	pending int
	epoch   uint64 // AEX epoch at send; a mismatch at close severs the round
	timer   enclave.CancelFunc
	done    func() // close handler: fired once, by deadline or last response
}

func (r *quorumRound) cancel() {
	if r.timer != nil {
		r.timer()
		r.timer = nil
	}
}

// offer matches a response to its slot (authenticated sender identity
// and sequence number both must match) and reports whether the round
// is now complete.
func (r *quorumRound) offer(e *Engine, from simnet.Addr, msg wire.Message) (claimed, complete bool) {
	for i := range r.slots {
		s := &r.slots[i]
		if s.addr != from || s.seq != msg.Seq || s.have {
			continue
		}
		s.have = true
		s.t = msg.TimeNanos
		s.recvTSC = e.Platform().ReadTSC()
		r.pending--
		return true, r.pending == 0
	}
	return false, false
}

// Reference-round kinds.
const (
	refNone = iota
	// refRecalib: post-taint recovery (peers failed); the node is in
	// StateRefCalib and cannot serve until a quorum anchors it.
	refRecalib
	// refRecheck: steady-state revalidation while serving; failure
	// degrades to holdover instead of going dark.
	refRecheck
)

// QuorumCalibration is the multi-authority CalibrationPolicy: a
// windowed two-round rate calibration fanned out over every configured
// authority, with the reference adopted from the quorum intersection.
// Pair it with QuorumRecovery wrapping the variant's recovery policy.
type QuorumCalibration struct {
	cfg QuorumConfig

	// Full-calibration state machine: round A, window wait, round B.
	windowSec  float64
	calRound   *quorumRound
	roundA     []quorumSample // responded round-A slots
	waitTimer  enclave.CancelFunc
	retryTimer enclave.CancelFunc

	// Reference rounds (taint recovery and steady-state rechecks).
	refRound     *quorumRound
	refKind      int
	refRetry     enclave.CancelFunc
	recheckTimer enclave.CancelFunc

	rates []float64 // scratch for the per-round rate median
}

// NewQuorumCalibration creates the quorum calibration policy. The
// authority set comes from the engine's config at run time.
func NewQuorumCalibration(cfg QuorumConfig) *QuorumCalibration {
	return &QuorumCalibration{cfg: cfg.withDefaults()}
}

// needed returns the response count required by the agreement rule
// over n configured authorities.
func (q *QuorumCalibration) needed(n int) int {
	if q.cfg.MinAgree > 0 {
		return q.cfg.MinAgree
	}
	return n/2 + 1
}

// beginRound fans one sleep-0 request out to every authority.
func (q *QuorumCalibration) beginRound(e *Engine, onDone func()) *quorumRound {
	auths := e.Authorities()
	r := &quorumRound{
		slots:   make([]quorumSample, len(auths)),
		pending: len(auths),
		epoch:   e.AEXEpoch(),
		done:    onDone,
	}
	for i, a := range auths {
		r.slots[i] = quorumSample{addr: a, seq: e.NextSeq(), sentTSC: e.Platform().ReadTSC()}
		e.SendSealed(a, wire.Message{Kind: wire.KindTimeRequest, Seq: r.slots[i].seq})
	}
	r.timer = e.Platform().AfterTicks(e.TicksFor(q.cfg.TATimeout), func() {
		r.timer = nil
		r.done()
	})
	return r
}

// Start begins (or restarts) a full quorum calibration.
func (q *QuorumCalibration) Start(e *Engine) {
	e.CancelGather()
	q.cancelCal()
	q.cancelRef()
	q.windowSec = q.cfg.CalibWindow.Seconds()
	q.startCalRoundA(e)
}

func (q *QuorumCalibration) startCalRoundA(e *Engine) {
	q.calRound = q.beginRound(e, func() { q.onCalRoundA(e) })
}

func (q *QuorumCalibration) startCalRoundB(e *Engine) {
	q.calRound = q.beginRound(e, func() { q.onCalRoundB(e) })
}

// retryCal restarts the calibration from round A after the backoff —
// the pacing that keeps retries bounded while authorities are dark.
func (q *QuorumCalibration) retryCal(e *Engine) {
	q.roundA = q.roundA[:0]
	q.retryTimer = e.Platform().AfterTicks(e.TicksFor(q.cfg.RetryBackoff), func() {
		q.retryTimer = nil
		q.startCalRoundA(e)
	})
}

func (q *QuorumCalibration) onCalRoundA(e *Engine) {
	r := q.calRound
	q.calRound = nil
	r.cancel()
	if e.AEXEpoch() != r.epoch {
		// Severed by an AEX that raced the close; OnAEX normally
		// restarts first, but never trust a severed window.
		q.startCalRoundA(e)
		return
	}
	q.roundA = q.roundA[:0]
	for _, s := range r.slots {
		if s.have {
			q.roundA = append(q.roundA, s)
		}
	}
	if len(q.roundA) < q.needed(len(r.slots)) {
		q.retryCal(e)
		return
	}
	q.waitTimer = e.Platform().AfterTicks(e.TicksForSeconds(q.windowSec), func() {
		q.waitTimer = nil
		q.startCalRoundB(e)
	})
}

// midTSC is the roundtrip midpoint, the instant the authority's
// reading is anchored at (the TA reads its clock one one-way before
// the receive).
func (s quorumSample) midTSC() float64 {
	return float64(s.sentTSC) + float64(s.recvTSC-s.sentTSC)/2
}

func (q *QuorumCalibration) onCalRoundB(e *Engine) {
	r := q.calRound
	q.calRound = nil
	r.cancel()
	if e.AEXEpoch() != r.epoch {
		q.startCalRoundA(e)
		return
	}

	// Per-authority rate over the window, for authorities that answered
	// both rounds; the median defangs a minority of rate-lying clocks.
	q.rates = q.rates[:0]
	for _, sb := range r.slots {
		if !sb.have {
			continue
		}
		for _, sa := range q.roundA {
			if sa.addr != sb.addr {
				continue
			}
			dt := float64(sb.t-sa.t) / 1e9
			dticks := sb.midTSC() - sa.midTSC()
			if dt > 0 && dticks > 0 {
				q.rates = append(q.rates, dticks/dt)
			}
			break
		}
	}
	if len(q.rates) == 0 {
		q.retryCal(e)
		return
	}
	sort.Float64s(q.rates)
	rate := q.rates[len(q.rates)/2]
	if len(q.rates)%2 == 0 {
		rate = (q.rates[len(q.rates)/2-1] + q.rates[len(q.rates)/2]) / 2
	}

	refTSC := e.Platform().ReadTSC()
	intervals := q.intervals(r, refTSC, rate)
	best, count, ok := QuorumDecide(intervals, len(r.slots), q.cfg.MinAgree)
	if !ok {
		if len(intervals) >= q.needed(len(r.slots)) {
			e.Counters().QuorumNoMajority++
		}
		q.retryCal(e)
		return
	}
	e.Counters().QuorumAccepts++
	e.Counters().FalseTickers += len(intervals) - count
	q.roundA = q.roundA[:0]
	e.CompleteCalibration(rate, best.Midpoint(), refTSC)
}

// intervals converts a round's responses into confidence intervals on
// reference time, all extrapolated to the common instant refTSC using
// rate. Each interval's half-width is the error budget plus half the
// observed roundtrip (the one-way ambiguity a delaying attacker can
// exploit, bounded per response).
func (q *QuorumCalibration) intervals(r *quorumRound, refTSC uint64, rate float64) []marzullo.Interval {
	out := make([]marzullo.Interval, 0, len(r.slots))
	for _, s := range r.slots {
		if !s.have {
			continue
		}
		est := s.t + int64((float64(refTSC)-s.midTSC())/rate*1e9)
		rttNanos := int64(float64(s.recvTSC-s.sentTSC) / rate * 1e9)
		err := q.cfg.ErrBudget.Nanoseconds() + rttNanos/2
		out = append(out, marzullo.Interval{Lo: est - err, Hi: est + err})
	}
	return out
}

// OnTimeResponse claims responses belonging to the calibration rounds.
// The last outstanding response closes the round immediately instead
// of waiting out the deadline.
func (q *QuorumCalibration) OnTimeResponse(e *Engine, from simnet.Addr, msg wire.Message) bool {
	r := q.calRound
	if r == nil {
		return false
	}
	claimed, complete := r.offer(e, from, msg)
	if complete {
		r.cancel()
		r.done()
	}
	return claimed
}

// OnAEX severs the calibration in flight: cancel everything, halve the
// window (AEXs are arriving faster than it) and restart from round A.
func (q *QuorumCalibration) OnAEX(e *Engine) {
	q.cancelCal()
	q.windowSec /= 2
	if min := q.cfg.MinCalibWindow.Seconds(); q.windowSec < min {
		q.windowSec = min
	}
	q.startCalRoundA(e)
}

func (q *QuorumCalibration) cancelCal() {
	if q.calRound != nil {
		q.calRound.cancel()
		q.calRound = nil
	}
	if q.waitTimer != nil {
		q.waitTimer()
		q.waitTimer = nil
	}
	if q.retryTimer != nil {
		q.retryTimer()
		q.retryTimer = nil
	}
	q.roundA = q.roundA[:0]
}

func (q *QuorumCalibration) cancelRef() {
	if q.refRound != nil {
		q.refRound.cancel()
		q.refRound = nil
	}
	if q.refRetry != nil {
		q.refRetry()
		q.refRetry = nil
	}
	q.refKind = refNone
}

// startRefCalib begins quorum taint recovery: the node re-anchors its
// reference from a round's quorum intersection, keeping its calibrated
// rate.
func (q *QuorumCalibration) startRefCalib(e *Engine) {
	e.SetState(StateRefCalib)
	q.cancelRef()
	q.refKind = refRecalib
	q.beginRefRound(e)
}

func (q *QuorumCalibration) beginRefRound(e *Engine) {
	q.refRound = q.beginRound(e, func() { q.onRefRound(e) })
}

// armRecheck schedules the periodic steady-state quorum revalidation.
// The timer re-arms itself every period regardless of outcome; ticks
// while the node is not serving (or while another reference round is
// in flight) are skipped.
func (q *QuorumCalibration) armRecheck(e *Engine) {
	if q.cfg.DisableRecheck {
		return
	}
	q.recheckTimer = e.Platform().AfterTicks(e.TicksFor(q.cfg.RecheckInterval), func() {
		q.recheckTimer = nil
		q.armRecheck(e)
		if !e.State().Serving() || q.refKind != refNone || q.refRound != nil {
			return
		}
		q.refKind = refRecheck
		q.beginRefRound(e)
	})
}

func (q *QuorumCalibration) onRefRound(e *Engine) {
	r := q.refRound
	q.refRound = nil
	r.cancel()
	kind := q.refKind

	if e.AEXEpoch() != r.epoch {
		switch kind {
		case refRecalib:
			// Still tainted and unanchored: retry the round.
			q.beginRefRound(e)
		case refRecheck:
			// A taint interrupted the recheck; recovery owns the flow
			// now. The periodic timer will check again.
			q.refKind = refNone
		}
		return
	}
	if kind == refRecheck && !e.State().Serving() {
		q.refKind = refNone
		return
	}

	rate := e.FCalib()
	refTSC := e.Platform().ReadTSC()
	intervals := q.intervals(r, refTSC, rate)
	best, count, ok := QuorumDecide(intervals, len(r.slots), q.cfg.MinAgree)
	disagreed := len(intervals) >= q.needed(len(r.slots)) && !ok

	switch kind {
	case refRecalib:
		if !ok {
			if disagreed {
				e.Counters().QuorumNoMajority++
			}
			q.refRetry = e.Platform().AfterTicks(e.TicksFor(q.cfg.RetryBackoff), func() {
				q.refRetry = nil
				q.beginRefRound(e)
			})
			return
		}
		e.Counters().QuorumAccepts++
		e.Counters().FalseTickers += len(intervals) - count
		q.refKind = refNone
		e.AdoptTAReference(best.Midpoint(), refTSC)
	case refRecheck:
		q.refKind = refNone
		if !ok {
			// No validated quorum: hold over on the last agreed
			// calibration rather than going dark or adopting a disputed
			// reference. The next periodic tick retries.
			if disagreed {
				e.Counters().QuorumNoMajority++
			}
			if e.State() == StateOK {
				e.Counters().Holdovers++
				e.SetState(StateDegraded)
			}
			return
		}
		e.Counters().QuorumAccepts++
		e.Counters().FalseTickers += len(intervals) - count
		// Re-anchoring on every validated recheck bounds holdover drift
		// and recovers from Degraded the moment the quorum heals.
		e.AdoptTAReference(best.Midpoint(), refTSC)
	}
}

// onRefResponse claims responses belonging to the reference round.
func (q *QuorumCalibration) onRefResponse(e *Engine, from simnet.Addr, msg wire.Message) bool {
	r := q.refRound
	if r == nil {
		return false
	}
	claimed, complete := r.offer(e, from, msg)
	if complete {
		r.cancel()
		r.done()
	}
	return claimed
}

// QuorumRecovery wraps a variant's RecoveryPolicy for multi-authority
// operation: taint recovery still tries peers first (the inner
// policy's ladder), but the authority fallback and the steady-state
// revalidation run quorum reference rounds instead of trusting one TA.
type QuorumRecovery struct {
	// Inner is the wrapped single-authority recovery behaviour (peer
	// gathering, probes, deadlines).
	Inner RecoveryPolicy
	// Quorum is the calibration policy sharing the round machinery.
	Quorum *QuorumCalibration
}

// OnStart arms the inner machinery and the periodic quorum recheck.
func (qr QuorumRecovery) OnStart(e *Engine) {
	qr.Inner.OnStart(e)
	qr.Quorum.armRecheck(e)
}

// OnTaint delegates to the inner policy's recovery ladder.
func (qr QuorumRecovery) OnTaint(e *Engine) { qr.Inner.OnTaint(e) }

// OnTimeResponse claims quorum reference-round responses, then offers
// the rest to the inner policy (e.g. hardened probe responses).
func (qr QuorumRecovery) OnTimeResponse(e *Engine, from simnet.Addr, msg wire.Message) bool {
	if qr.Quorum.onRefResponse(e, from, msg) {
		return true
	}
	return qr.Inner.OnTimeResponse(e, from, msg)
}

// OnPeerSample delegates to the inner policy.
func (qr QuorumRecovery) OnPeerSample(e *Engine, seq uint64, s PeerSample) {
	qr.Inner.OnPeerSample(e, seq, s)
}

// StartRefCalib re-anchors from a quorum of authorities instead of the
// single TA.
func (qr QuorumRecovery) StartRefCalib(e *Engine) { qr.Quorum.startRefCalib(e) }

// Cancel aborts inner recovery machinery and quorum reference rounds.
func (qr QuorumRecovery) Cancel(e *Engine) {
	qr.Inner.Cancel(e)
	qr.Quorum.cancelRef()
}
