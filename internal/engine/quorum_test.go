package engine

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"triadtime/internal/marzullo"
)

// bruteQuorumDecide is the O(n²) oracle for the quorum decision: the
// maximum number of valid intervals sharing a point is found by
// scanning every interval's Lo endpoint, and the agreement rule is
// applied to that count directly.
func bruteQuorumDecide(intervals []marzullo.Interval, total, minAgree int) (int, bool) {
	best := 0
	for _, cand := range intervals {
		if !cand.Valid() {
			continue
		}
		n := 0
		for _, iv := range intervals {
			if iv.Valid() && iv.Lo <= cand.Lo && cand.Lo <= iv.Hi {
				n++
			}
		}
		if n > best {
			best = n
		}
	}
	if minAgree > 0 {
		return best, best >= minAgree
	}
	return best, best*2 > total
}

// TestQuorumDecideMatchesOracle drives QuorumDecide with randomized
// authority-interval sets — clustered readings with outliers, like
// real quorum rounds — and checks count and verdict against the
// brute-force oracle under both agreement rules.
func TestQuorumDecideMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 5000; trial++ {
		total := 1 + rng.IntN(7)
		responded := rng.IntN(total + 1)
		intervals := make([]marzullo.Interval, responded)
		for i := range intervals {
			// Cluster most readings near a common reference; make some
			// liars (big offsets) and occasionally an inverted interval.
			center := int64(rng.IntN(20)) - 10
			if rng.IntN(4) == 0 {
				center += int64(rng.IntN(2000)) - 1000
			}
			half := int64(rng.IntN(15))
			intervals[i] = marzullo.Interval{Lo: center - half, Hi: center + half}
			if rng.IntN(16) == 0 {
				intervals[i].Lo, intervals[i].Hi = intervals[i].Hi+1, intervals[i].Lo
			}
		}
		minAgree := 0
		if rng.IntN(2) == 0 {
			minAgree = 1 + rng.IntN(total)
		}

		best, count, ok := QuorumDecide(intervals, total, minAgree)
		wantCount, wantOK := bruteQuorumDecide(intervals, total, minAgree)
		if count != wantCount || ok != wantOK {
			t.Fatalf("QuorumDecide(%v, total=%d, minAgree=%d) = (count %d, ok %v), oracle (count %d, ok %v)",
				intervals, total, minAgree, count, ok, wantCount, wantOK)
		}
		if ok && count > 0 {
			// The adopted midpoint must be covered by `count` intervals:
			// the consensus time really is vouched for by the quorum.
			mid := best.Midpoint()
			covered := 0
			for _, iv := range intervals {
				if iv.Valid() && iv.Contains(mid) {
					covered++
				}
			}
			if covered < count {
				t.Fatalf("midpoint %d of %v covered by %d intervals, want >= %d", mid, best, covered, count)
			}
		}
	}
}

// TestQuorumDecideNoResponses: an empty round never agrees, under
// either rule.
func TestQuorumDecideNoResponses(t *testing.T) {
	if _, count, ok := QuorumDecide(nil, 5, 0); ok || count != 0 {
		t.Errorf("majority rule agreed on no intervals (count %d)", count)
	}
	if _, count, ok := QuorumDecide(nil, 5, 1); ok || count != 0 {
		t.Errorf("minAgree rule agreed on no intervals (count %d)", count)
	}
}

// TestQuorumDecideMinAgreeOverride: MinAgree=1 accepts a single
// responder that the majority rule would reject — the 2-authority
// availability trade-off.
func TestQuorumDecideMinAgreeOverride(t *testing.T) {
	one := []marzullo.Interval{{Lo: 90, Hi: 110}}
	if _, _, ok := QuorumDecide(one, 2, 0); ok {
		t.Error("1 of 2 must not be a strict majority")
	}
	if _, _, ok := QuorumDecide(one, 2, 1); !ok {
		t.Error("MinAgree=1 must accept a single responder")
	}
}

// TestQuorumConfigDefaults pins the documented defaults and the
// agreement thresholds derived from them.
func TestQuorumConfigDefaults(t *testing.T) {
	q := NewQuorumCalibration(QuorumConfig{})
	if q.cfg.TATimeout != 250*time.Millisecond || q.cfg.ErrBudget != 10*time.Millisecond ||
		q.cfg.CalibWindow != 2*time.Second || q.cfg.MinCalibWindow != 250*time.Millisecond ||
		q.cfg.RecheckInterval != 10*time.Second || q.cfg.RetryBackoff != 250*time.Millisecond {
		t.Errorf("unexpected defaults: %+v", q.cfg)
	}
	for _, c := range []struct{ n, want int }{{1, 1}, {2, 2}, {3, 2}, {4, 3}, {5, 3}} {
		if got := q.needed(c.n); got != c.want {
			t.Errorf("needed(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	q2 := NewQuorumCalibration(QuorumConfig{MinAgree: 1})
	if got := q2.needed(2); got != 1 {
		t.Errorf("needed(2) with MinAgree=1 = %d, want 1", got)
	}
	// A window floor above the window collapses to the window.
	q3 := NewQuorumCalibration(QuorumConfig{CalibWindow: time.Second, MinCalibWindow: 5 * time.Second})
	if q3.cfg.MinCalibWindow != time.Second {
		t.Errorf("MinCalibWindow not clamped: %v", q3.cfg.MinCalibWindow)
	}
}

// TestStateServing pins which states serve timestamps.
func TestStateServing(t *testing.T) {
	serving := map[State]bool{
		StateInit: false, StateFullCalib: false, StateRefCalib: false,
		StateTainted: false, StateOK: true, StateDegraded: true,
	}
	for s, want := range serving {
		if got := s.Serving(); got != want {
			t.Errorf("%v.Serving() = %v, want %v", s, got, want)
		}
	}
	if StateDegraded.String() != "Degraded" {
		t.Errorf("StateDegraded.String() = %q", StateDegraded.String())
	}
}

// TestQuorumDecidePermutationInvariant: shuffling responses cannot
// change the verdict (quick.Check over random permutations).
func TestQuorumDecidePermutationInvariant(t *testing.T) {
	prop := func(raw []int8, seed uint64) bool {
		intervals := make([]marzullo.Interval, len(raw))
		for i, v := range raw {
			intervals[i] = marzullo.Interval{Lo: int64(v), Hi: int64(v) + 10}
		}
		total := len(intervals)
		_, count, ok := QuorumDecide(intervals, total, 0)
		rng := rand.New(rand.NewPCG(seed, 1))
		rng.Shuffle(len(intervals), func(i, j int) {
			intervals[i], intervals[j] = intervals[j], intervals[i]
		})
		_, count2, ok2 := QuorumDecide(intervals, total, 0)
		return count == count2 && ok == ok2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
