package engine

// State is a Triad node's protocol state. It matches the states plotted
// in the paper's Figure 3b timing diagram and is shared by every
// protocol variant built on the engine.
type State int

// Node states.
const (
	// StateInit: created, not yet started.
	StateInit State = iota + 1
	// StateFullCalib: calibrating both clock speed (F_calib) and time
	// reference with the Time Authority. Entered at startup and after a
	// TSC discrepancy is detected.
	StateFullCalib
	// StateRefCalib: re-acquiring only the time reference from the Time
	// Authority, after peers failed to untaint us.
	StateRefCalib
	// StateTainted: an AEX severed time continuity; the timestamp cannot
	// be served until refreshed from a peer or the Time Authority.
	StateTainted
	// StateOK: serving trusted timestamps.
	StateOK
	// StateDegraded: quorum holdover. A steady-state quorum recheck
	// found no agreeing majority among the configured Time Authorities
	// (split-brain or a lying majority), so the node keeps serving on
	// its last agreed calibration while retrying. Only the
	// multi-authority quorum policy enters this state; it is appended
	// after StateOK so existing states keep their values.
	StateDegraded
)

// String names the state as in the paper's figures.
func (s State) String() string {
	switch s {
	case StateInit:
		return "Init"
	case StateFullCalib:
		return "FullCalib"
	case StateRefCalib:
		return "RefCalib"
	case StateTainted:
		return "Tainted"
	case StateOK:
		return "OK"
	case StateDegraded:
		return "Degraded"
	default:
		return "State(?)"
	}
}

// Serving reports whether trusted timestamps are served in this state:
// OK, or the quorum variant's Degraded holdover (still serving, on the
// last majority-agreed calibration).
func (s State) Serving() bool { return s == StateOK || s == StateDegraded }

// Events are optional observation hooks. They fire synchronously from
// within platform callbacks; handlers must not block and must not call
// back into the node. Nil members are skipped. The engine fires them
// identically for every protocol variant, which is what lets the live
// runtime, the lab, and the experiment harness observe original and
// hardened nodes uniformly.
type Events struct {
	// StateChanged fires on every protocol state transition.
	StateChanged func(old, new State)
	// Calibrated fires when a full calibration completes, with the new
	// estimated TSC rate in ticks per second.
	Calibrated func(fCalib float64)
	// TAReference fires each time a time reference from the Time
	// Authority is adopted (both RefCalib and FullCalib) — the count
	// plotted in Figure 2b.
	TAReference func()
	// PeerUntaint fires when a peer timestamp untaints the node.
	// jumpNanos is the forward jump relative to the local clock
	// (0 when the local timestamp was kept and minimally bumped).
	PeerUntaint func(fromPeer uint32, jumpNanos int64)
	// Discrepancy fires when rate monitoring (or a hardened probe)
	// concludes the clock was manipulated; rel is the relative
	// deviation from the baseline (probe failures report seconds of
	// divergence instead).
	Discrepancy func(rel float64)
	// FreqChange fires when dual monitoring identifies a core
	// frequency (DVFS) change instead of TSC tampering: the INC count
	// moved while the memory-access count held.
	FreqChange func(rel float64)
}

func (e *Events) stateChanged(old, new State) {
	if e != nil && e.StateChanged != nil {
		e.StateChanged(old, new)
	}
}

func (e *Events) calibrated(f float64) {
	if e != nil && e.Calibrated != nil {
		e.Calibrated(f)
	}
}

func (e *Events) taReference() {
	if e != nil && e.TAReference != nil {
		e.TAReference()
	}
}

func (e *Events) peerUntaint(from uint32, jump int64) {
	if e != nil && e.PeerUntaint != nil {
		e.PeerUntaint(from, jump)
	}
}

func (e *Events) discrepancy(rel float64) {
	if e != nil && e.Discrepancy != nil {
		e.Discrepancy(rel)
	}
}

func (e *Events) freqChange(rel float64) {
	if e != nil && e.FreqChange != nil {
		e.FreqChange(rel)
	}
}
