package experiment

import (
	"fmt"
	"math"
	"strings"
	"time"

	"triadtime/internal/authority"
	"triadtime/internal/core"
	"triadtime/internal/enclave"
	"triadtime/internal/ntpdisc"
	"triadtime/internal/resilient"
	"triadtime/internal/sim"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
	"triadtime/internal/t3e"
)

// DriftQualityRow compares one synchronization mechanism's steady-state
// clock quality (the §IV-A.2 / §V discussion: Triad's short-window
// calibration yields ~110ppm effective drift, an order of magnitude
// above NTP's 15ppm standard).
type DriftQualityRow struct {
	Mechanism string
	// ResidualPPM is the steady-state drift rate magnitude.
	ResidualPPM float64
	// WorstOffset is the largest |clock - reference| observed while
	// the mechanism was serving, over the measurement window.
	WorstOffset time.Duration
}

// Summary renders the row.
func (r DriftQualityRow) Summary() string {
	return fmt.Sprintf("%-28s residual drift %8.2fppm   worst offset %v",
		r.Mechanism, r.ResidualPPM, r.WorstOffset.Round(time.Microsecond))
}

// RunDriftQuality compares, on one network against one Time Authority:
// the original Triad node (regression over ≤1s windows), the hardened
// node (8s windowed calibration) and an NTP-style discipline (adaptive
// 16s+ polls, clock filter, frequency discipline). No attacks; the
// question is pure synchronization quality, as in the paper's NTP
// comparison.
func RunDriftQuality(seed uint64, duration time.Duration) ([]DriftQualityRow, error) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	network := simnet.New(sched, rng.Fork(1), defaultExperimentLink())
	if _, err := authority.NewSimBinding(sched, network, ClusterKey(), TAAddr); err != nil {
		return nil, err
	}

	// Every contender gets the same crystal error: +100ppm relative to
	// the boot-time hint, a realistic oscillator tolerance.
	const crystalPPM = 100.0
	trueHz := simtime.NominalTSCHz * (1 + crystalPPM*1e-6)
	newPlatform := func(addr simnet.Addr, fork uint64) *enclave.SimPlatform {
		return enclave.NewSimPlatform(sched, rng.Fork(fork), network, enclave.SimConfig{
			Addr:      addr,
			TSC:       simtime.NewTSC(trueHz, uint64(addr)*5e9),
			BootTSCHz: simtime.NominalTSCHz,
		})
	}

	triadNode, err := core.NewNode(newPlatform(1, 10), core.Config{
		Key: ClusterKey(), Addr: 1, Authority: TAAddr,
		CalibSamplesPerSleep: 2,
	})
	if err != nil {
		return nil, err
	}
	hardenedNode, err := resilient.NewNode(newPlatform(2, 11), resilient.Config{
		Key: ClusterKey(), Addr: 2, Authority: TAAddr,
	})
	if err != nil {
		return nil, err
	}
	ntpClient, err := ntpdisc.NewClient(newPlatform(3, 12), ntpdisc.Config{
		Key: ClusterKey(), Addr: 3, Authority: TAAddr,
	})
	if err != nil {
		return nil, err
	}
	triadNode.Start()
	hardenedNode.Start()
	ntpClient.Start()

	// Sample all three clocks once per simulated second after a
	// settling period.
	settle := duration / 4
	type probe struct {
		read  func() (int64, bool)
		worst time.Duration
		// For the drift-rate fit.
		ts, off []float64
	}
	probes := []*probe{
		{read: triadNode.ClockReading},
		{read: hardenedNode.ClockReading},
		{read: ntpClient.Now},
	}
	var tick func()
	tick = func() {
		now := sched.Now()
		if now.Sub(simtime.Epoch) >= settle {
			for _, p := range probes {
				reading, ok := p.read()
				if !ok {
					continue
				}
				off := time.Duration(reading - int64(now))
				if off < 0 {
					off = -off
				}
				if off > p.worst {
					p.worst = off
				}
				p.ts = append(p.ts, now.Seconds())
				p.off = append(p.off, time.Duration(reading-int64(now)).Seconds())
			}
		}
		sched.After(simtime.FromDuration(time.Second), tick)
	}
	sched.After(simtime.FromDuration(time.Second), tick)
	sched.RunUntil(simtime.FromDuration(duration))

	names := []string{
		"Triad (<=1s regression)",
		"hardened (8s window)",
		"NTP discipline (16s+ polls)",
	}
	rows := make([]DriftQualityRow, 0, len(probes))
	for i, p := range probes {
		rows = append(rows, DriftQualityRow{
			Mechanism:   names[i],
			ResidualPPM: math.Abs(slopePPM(p.ts, p.off)),
			WorstOffset: p.worst,
		})
	}
	return rows, nil
}

// slopePPM least-squares fits offset(t) and returns the slope in ppm.
func slopePPM(ts, off []float64) float64 {
	n := float64(len(ts))
	if n < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range ts {
		sx += ts[i]
		sy += off[i]
		sxx += ts[i] * ts[i]
		sxy += ts[i] * off[i]
	}
	den := sxx - sx*sx/n
	if den == 0 {
		return math.NaN()
	}
	return (sxy - sx*sy/n) / den * 1e6
}

// T3ERow is one cell of the T3E trade-off sweep (§II-A): a use quota
// against an attacker-controlled TPM response delay.
type T3ERow struct {
	Quota      int
	TPMDelay   time.Duration
	Throughput float64 // fraction of requests served
	// WorstStaleness is the maximum age of a served timestamp.
	WorstStaleness time.Duration
}

// Summary renders the row.
func (r T3ERow) Summary() string {
	return fmt.Sprintf("quota %5d  tpm_delay %8v  throughput %6.1f%%  worst staleness %v",
		r.Quota, r.TPMDelay, r.Throughput*100, r.WorstStaleness.Round(time.Millisecond))
}

// RunT3ETradeoff sweeps T3E's use quota against TPM delay attacks,
// mapping the paper's §II-A criticism: small quotas stall honest
// workloads, large quotas hand the attacker staleness room — and
// either way the number is workload-dependent.
func RunT3ETradeoff(seed uint64, requests int, interval time.Duration) ([]T3ERow, error) {
	quotas := []int{1, 10, 100, 1000}
	delays := []time.Duration{0, 100 * time.Millisecond, time.Second}
	rows := make([]T3ERow, 0, len(quotas)*len(delays))
	for _, quota := range quotas {
		for _, delay := range delays {
			sched := sim.NewScheduler()
			rng := sim.NewRNG(seed)
			tpm := t3e.NewTPM(sched, rng.Fork(1), 5*time.Millisecond)
			node, err := t3e.NewNode(sched, tpm, t3e.Config{UseQuota: quota})
			if err != nil {
				return nil, err
			}
			// Let the first TPM reading land, then engage the attack.
			sched.RunUntil(simtime.FromDuration(50 * time.Millisecond))
			tpm.ExtraDelay = delay

			served := 0
			worst := time.Duration(0)
			reqRNG := rng.Fork(2)
			for i := 0; i < requests; i++ {
				sched.RunUntil(sched.Now().Add(reqRNG.Jitter(interval, 0.5)))
				ts, err := node.TrustedNow()
				if err != nil {
					continue
				}
				served++
				if s := time.Duration(int64(sched.Now()) - ts); s > worst {
					worst = s
				}
			}
			rows = append(rows, T3ERow{
				Quota:          quota,
				TPMDelay:       delay,
				Throughput:     float64(served) / float64(requests),
				WorstStaleness: worst,
			})
		}
	}
	return rows, nil
}

// T3EDriftRow captures the TPM root-of-trust weakness: an owner
// configuring the spec's full ±32.5% drift envelope skews T3E's served
// time proportionally, with nothing to detect it against — unlike
// Triad, whose reference is the remote Time Authority.
type T3EDriftRow struct {
	TPMRateFrac float64
	// ServedDriftFrac is served-time drift relative to real time.
	ServedDriftFrac float64
}

// RunT3EOwnerDrift measures served-time drift under TPM owner rate
// configuration.
func RunT3EOwnerDrift(seed uint64) ([]T3EDriftRow, error) {
	fracs := []float64{-t3e.MaxTPMDriftFrac, 0, t3e.MaxTPMDriftFrac}
	rows := make([]T3EDriftRow, 0, len(fracs))
	for _, frac := range fracs {
		sched := sim.NewScheduler()
		rng := sim.NewRNG(seed)
		tpm := t3e.NewTPM(sched, rng.Fork(1), 5*time.Millisecond)
		tpm.RateFrac = frac
		node, err := t3e.NewNode(sched, tpm, t3e.Config{UseQuota: 1 << 20})
		if err != nil {
			return nil, err
		}
		sched.RunUntil(simtime.FromDuration(100 * time.Second))
		ts, err := node.TrustedNow()
		if err != nil {
			return nil, fmt.Errorf("t3e drift run: %w", err)
		}
		rows = append(rows, T3EDriftRow{
			TPMRateFrac:     frac,
			ServedDriftFrac: float64(ts-int64(sched.Now())) / float64(sched.Now()),
		})
	}
	return rows, nil
}

// BaselineSummary renders the T3E sweep and drift rows together.
func BaselineSummary(sweep []T3ERow, drift []T3EDriftRow) string {
	var b strings.Builder
	b.WriteString("T3E use-quota vs TPM-delay trade-off (§II-A):\n")
	for _, r := range sweep {
		b.WriteString("  " + r.Summary() + "\n")
	}
	b.WriteString("T3E under TPM owner rate configuration (spec envelope ±32.5%):\n")
	for _, r := range drift {
		fmt.Fprintf(&b, "  tpm_rate %+6.1f%%  served drift %+6.1f%%\n",
			r.TPMRateFrac*100, r.ServedDriftFrac*100)
	}
	return b.String()
}
