package experiment

import (
	"strings"
	"testing"
	"time"

	"triadtime/internal/ntpdisc"
	"triadtime/internal/t3e"
)

func TestDriftQualityOrdering(t *testing.T) {
	rows, err := RunDriftQuality(21, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	triad, hardened, ntp := rows[0], rows[1], rows[2]
	// The paper's point: Triad's short-window calibration drifts an
	// order of magnitude above NTP's 15ppm standard; long-window
	// mechanisms stay under it.
	if triad.ResidualPPM < 10 {
		t.Errorf("Triad residual = %.2fppm; expected O(100ppm) short-window error", triad.ResidualPPM)
	}
	if ntp.ResidualPPM > ntpdisc.StandardDriftPPM {
		t.Errorf("NTP residual = %.2fppm, want < %dppm", ntp.ResidualPPM, ntpdisc.StandardDriftPPM)
	}
	if hardened.ResidualPPM > triad.ResidualPPM {
		t.Errorf("hardened (%.2fppm) should beat Triad (%.2fppm)", hardened.ResidualPPM, triad.ResidualPPM)
	}
	if !strings.Contains(triad.Summary(), "ppm") {
		t.Error("summary malformed")
	}
}

func TestT3ETradeoffShape(t *testing.T) {
	rows, err := RunT3ETradeoff(22, 400, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	byCell := map[[2]int64]T3ERow{}
	for _, r := range rows {
		byCell[[2]int64{int64(r.Quota), int64(r.TPMDelay)}] = r
	}
	noAttack := byCell[[2]int64{10, 0}]
	if noAttack.Throughput < 0.95 {
		t.Errorf("quota 10 without attack: throughput %.2f, want ~1", noAttack.Throughput)
	}
	// Under a 1s delay, small quotas collapse throughput...
	smallQ := byCell[[2]int64{1, int64(time.Second)}]
	if smallQ.Throughput > 0.2 {
		t.Errorf("quota 1 under 1s delay: throughput %.2f, want collapse", smallQ.Throughput)
	}
	// ...while big quotas keep serving but with staleness up to the
	// injected delay.
	bigQ := byCell[[2]int64{1000, int64(time.Second)}]
	if bigQ.Throughput < 0.9 {
		t.Errorf("quota 1000 under 1s delay: throughput %.2f, want ~1", bigQ.Throughput)
	}
	if bigQ.WorstStaleness < 500*time.Millisecond {
		t.Errorf("quota 1000 staleness %v, want near the 1s delay", bigQ.WorstStaleness)
	}
}

func TestT3EOwnerDrift(t *testing.T) {
	rows, err := RunT3EOwnerDrift(23)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		diff := r.ServedDriftFrac - r.TPMRateFrac
		if diff < -0.02 || diff > 0.02 {
			t.Errorf("tpm rate %+.3f -> served drift %+.3f (should track)", r.TPMRateFrac, r.ServedDriftFrac)
		}
	}
	if rows[0].TPMRateFrac != -t3e.MaxTPMDriftFrac {
		t.Error("first row should be the -32.5% envelope")
	}
	sum := BaselineSummary(nil, rows)
	if !strings.Contains(sum, "32.5") {
		t.Errorf("summary missing envelope note:\n%s", sum)
	}
}
