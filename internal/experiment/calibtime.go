package experiment

import (
	"context"
	"fmt"
	"time"

	"triadtime/internal/core"
	"triadtime/internal/experiment/runner"
	"triadtime/internal/stats"
)

// CalibTimeRow reports the time-to-first-service distribution for one
// protocol under one interrupt environment: how long a freshly started
// node needs before TrustedNow works. Calibration requires
// uninterrupted measurement windows, so AEX pressure stretches it —
// differently for the original (needs 1s-sleep roundtrips) and the
// hardened protocol (adaptive windows).
type CalibTimeRow struct {
	Protocol string
	Env      string
	// P50 and P95 of time-to-first-OK across trials.
	P50, P95 time.Duration
	Trials   int
}

// Summary renders the row.
func (r CalibTimeRow) Summary() string {
	return fmt.Sprintf("%-9s %-11s p50 %8v   p95 %8v   (n=%d)",
		r.Protocol, r.Env, r.P50.Round(time.Millisecond), r.P95.Round(time.Millisecond), r.Trials)
}

// RunCalibrationTime measures startup time across seeds for both
// protocols in both interrupt environments. Every (protocol, env,
// trial) combination is an independent single-node simulation; the
// whole grid fans across the runner's worker pool, with samples
// regrouped in trial order so quantiles match a serial run exactly.
// Cancelling ctx abandons unstarted trials and returns its error.
func RunCalibrationTime(ctx context.Context, baseSeed uint64, trials int) ([]CalibTimeRow, error) {
	if trials <= 0 {
		trials = 10
	}
	type combo struct {
		hardened bool
		env      Env
	}
	combos := []combo{
		{false, EnvNone}, {false, EnvTriadLike},
		{true, EnvNone}, {true, EnvTriadLike},
	}
	var tasks []runner.Task[float64]
	for _, cb := range combos {
		for trial := 0; trial < trials; trial++ {
			cb, seed := cb, baseSeed+uint64(trial)
			tasks = append(tasks, runner.Task[float64]{
				Name: fmt.Sprintf("calib hardened=%v env=%d seed=%d", cb.hardened, cb.env, seed),
				Run: func(context.Context) (float64, error) {
					d, err := timeToFirstOK(seed, cb.hardened, cb.env)
					if err != nil {
						return 0, err
					}
					return d.Seconds(), nil
				},
			})
		}
	}
	samplesByTask, err := runner.Run(ctx, runner.Config{}, tasks).Values()
	if err != nil {
		return nil, err
	}

	var rows []CalibTimeRow
	for ci, cb := range combos {
		samples := samplesByTask[ci*trials : (ci+1)*trials]
		cdf := stats.NewCDF(samples)
		name := "original"
		if cb.hardened {
			name = "hardened"
		}
		envName := "low-AEX"
		if cb.env == EnvTriadLike {
			envName = "Triad-like"
		}
		rows = append(rows, CalibTimeRow{
			Protocol: name,
			Env:      envName,
			P50:      time.Duration(cdf.Quantile(0.5) * float64(time.Second)),
			P95:      time.Duration(cdf.Quantile(0.95) * float64(time.Second)),
			Trials:   trials,
		})
	}
	return rows, nil
}

// timeToFirstOK runs a single node until it first reaches StateOK.
func timeToFirstOK(seed uint64, hardened bool, env Env) (time.Duration, error) {
	var firstOK time.Duration = -1
	cfg := ClusterConfig{
		Seed:     seed,
		Nodes:    1,
		Hardened: hardened,
	}
	c, err := NewCluster(cfg)
	if err != nil {
		return 0, err
	}
	c.SetEnv(0, env)
	c.Start()
	deadline := 10 * time.Minute
	step := 50 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < deadline; elapsed += step {
		c.RunFor(step)
		if c.Nodes[0].State() == core.StateOK {
			firstOK = elapsed + step
			break
		}
	}
	if firstOK < 0 {
		return 0, fmt.Errorf("seed %d: node never calibrated within %v", seed, deadline)
	}
	return firstOK, nil
}
