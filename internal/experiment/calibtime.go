package experiment

import (
	"fmt"
	"time"

	"triadtime/internal/core"
	"triadtime/internal/stats"
)

// CalibTimeRow reports the time-to-first-service distribution for one
// protocol under one interrupt environment: how long a freshly started
// node needs before TrustedNow works. Calibration requires
// uninterrupted measurement windows, so AEX pressure stretches it —
// differently for the original (needs 1s-sleep roundtrips) and the
// hardened protocol (adaptive windows).
type CalibTimeRow struct {
	Protocol string
	Env      string
	// P50 and P95 of time-to-first-OK across trials.
	P50, P95 time.Duration
	Trials   int
}

// Summary renders the row.
func (r CalibTimeRow) Summary() string {
	return fmt.Sprintf("%-9s %-11s p50 %8v   p95 %8v   (n=%d)",
		r.Protocol, r.Env, r.P50.Round(time.Millisecond), r.P95.Round(time.Millisecond), r.Trials)
}

// RunCalibrationTime measures startup time across seeds for both
// protocols in both interrupt environments.
func RunCalibrationTime(baseSeed uint64, trials int) ([]CalibTimeRow, error) {
	if trials <= 0 {
		trials = 10
	}
	var rows []CalibTimeRow
	for _, hardened := range []bool{false, true} {
		for _, env := range []Env{EnvNone, EnvTriadLike} {
			var samples []float64
			for trial := 0; trial < trials; trial++ {
				d, err := timeToFirstOK(baseSeed+uint64(trial), hardened, env)
				if err != nil {
					return nil, err
				}
				samples = append(samples, d.Seconds())
			}
			cdf := stats.NewCDF(samples)
			name := "original"
			if hardened {
				name = "hardened"
			}
			envName := "low-AEX"
			if env == EnvTriadLike {
				envName = "Triad-like"
			}
			rows = append(rows, CalibTimeRow{
				Protocol: name,
				Env:      envName,
				P50:      time.Duration(cdf.Quantile(0.5) * float64(time.Second)),
				P95:      time.Duration(cdf.Quantile(0.95) * float64(time.Second)),
				Trials:   trials,
			})
		}
	}
	return rows, nil
}

// timeToFirstOK runs a single node until it first reaches StateOK.
func timeToFirstOK(seed uint64, hardened bool, env Env) (time.Duration, error) {
	var firstOK time.Duration = -1
	cfg := ClusterConfig{
		Seed:     seed,
		Nodes:    1,
		Hardened: hardened,
	}
	c, err := NewCluster(cfg)
	if err != nil {
		return 0, err
	}
	c.SetEnv(0, env)
	c.Start()
	deadline := 10 * time.Minute
	step := 50 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < deadline; elapsed += step {
		c.RunFor(step)
		if c.Nodes[0].State() == core.StateOK {
			firstOK = elapsed + step
			break
		}
	}
	if firstOK < 0 {
		return 0, fmt.Errorf("seed %d: node never calibrated within %v", seed, deadline)
	}
	return firstOK, nil
}
