package experiment

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestCalibrationTimeDistribution(t *testing.T) {
	rows, err := RunCalibrationTime(context.Background(), 300, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(proto, env string) CalibTimeRow {
		for _, r := range rows {
			if r.Protocol == proto && r.Env == env {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", proto, env)
		return CalibTimeRow{}
	}
	// The original protocol needs 1s-sleep roundtrips: a quiet core
	// calibrates in ~2-3s; Triad-like AEX pressure stretches it (each
	// 1s window succeeds only inside 1.59s gaps).
	orig := get("original", "low-AEX")
	origStorm := get("original", "Triad-like")
	if orig.P50 > 5*time.Second {
		t.Errorf("original low-AEX p50 = %v", orig.P50)
	}
	if origStorm.P50 <= orig.P50 {
		t.Errorf("AEX pressure should slow calibration: %v vs %v", origStorm.P50, orig.P50)
	}
	// The hardened protocol's 8s window dominates its quiet startup and
	// adaptive halving keeps the storm case bounded.
	hard := get("hardened", "low-AEX")
	if hard.P50 < 5*time.Second || hard.P50 > 12*time.Second {
		t.Errorf("hardened low-AEX p50 = %v, want ~8s window", hard.P50)
	}
	hardStorm := get("hardened", "Triad-like")
	if hardStorm.P95 > 2*time.Minute {
		t.Errorf("hardened Triad-like p95 = %v, adaptive halving failed?", hardStorm.P95)
	}
	if !strings.Contains(rows[0].Summary(), "p50") {
		t.Error("summary malformed")
	}
}
