package experiment

import (
	"errors"
	"testing"
	"time"

	"triadtime/internal/core"
	"triadtime/internal/sim"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
)

// chaosBox is an adversarial network: random extra delays, drops and
// duplications on every packet — the strongest Dolev-Yao-style network
// behaviour short of forging (which the AEAD prevents).
type chaosBox struct {
	rng      *sim.RNG
	dropProb float64
	dupProb  float64
	maxDelay time.Duration
	active   bool
}

func (b *chaosBox) Process(_ simtime.Instant, _ simnet.Packet) simnet.Verdict {
	if !b.active {
		return simnet.Verdict{}
	}
	v := simnet.Verdict{}
	if b.rng.Float64() < b.dropProb {
		v.Drop = true
		return v
	}
	if b.rng.Float64() < b.dupProb {
		v.Duplicate = true
	}
	v.ExtraDelay = time.Duration(b.rng.Float64() * float64(b.maxDelay))
	return v
}

// TestChaosMonotonicityAndRecovery drives the cluster through an
// adversarial network phase (random delay up to 50ms, 10% loss, 10%
// duplication) under Triad-like AEXs, asserting the protocol's safety
// invariant — strictly monotonic served timestamps — and liveness
// recovery once the chaos ends.
func TestChaosMonotonicityAndRecovery(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		c, err := NewCluster(ClusterConfig{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := range c.Nodes {
			c.SetEnv(i, EnvTriadLike)
		}
		box := &chaosBox{
			rng:      sim.NewRNG(seed * 131),
			dropProb: 0.10,
			dupProb:  0.10,
			maxDelay: 50 * time.Millisecond,
		}
		c.Net.AttachMiddlebox(box)
		c.Start()
		c.RunFor(30 * time.Second) // calibrate cleanly
		box.active = true

		last := make([]int64, len(c.Nodes))
		served := 0
		probe := c.RNG.Fork(999)
		for step := 0; step < 600; step++ {
			c.RunFor(time.Duration(probe.IntN(400)) * time.Millisecond)
			for i, n := range c.Nodes {
				ts, err := n.TrustedNow()
				if errors.Is(err, core.ErrUnavailable) {
					continue
				}
				if err != nil {
					t.Fatalf("seed %d: unexpected error: %v", seed, err)
				}
				served++
				if ts <= last[i] {
					t.Fatalf("seed %d node %d: monotonicity violated under chaos (%d after %d)",
						seed, i+1, ts, last[i])
				}
				last[i] = ts
			}
		}
		if served == 0 {
			t.Fatalf("seed %d: nothing served during chaos", seed)
		}

		// Liveness: with the chaos over, every node is serving within a
		// machine-AEX-free grace period.
		box.active = false
		c.RunFor(10 * time.Second)
		for i, n := range c.Nodes {
			if _, err := n.TrustedNow(); err != nil {
				// One more chance: a taint can be in flight.
				c.RunFor(5 * time.Second)
				if _, err := n.TrustedNow(); err != nil {
					t.Errorf("seed %d node %d never recovered: %v", seed, i+1, err)
				}
			}
		}
	}
}

// TestChaosHardenedCluster runs the same adversarial network against
// the hardened protocol.
func TestChaosHardenedCluster(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Seed: 5, Hardened: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Nodes {
		c.SetEnv(i, EnvTriadLike)
	}
	box := &chaosBox{
		rng:      sim.NewRNG(555),
		dropProb: 0.05,
		dupProb:  0.10,
		maxDelay: 3 * time.Millisecond, // below the RTT bound: chaos, not DoS
	}
	c.Net.AttachMiddlebox(box)
	box.active = true
	c.Start()
	c.RunFor(3 * time.Minute)

	last := make([]int64, len(c.Nodes))
	served := 0
	for step := 0; step < 200; step++ {
		c.RunFor(250 * time.Millisecond)
		for i, n := range c.Nodes {
			ts, err := n.TrustedNow()
			if err != nil {
				continue
			}
			served++
			if ts <= last[i] {
				t.Fatalf("node %d: monotonicity violated (%d after %d)", i+1, ts, last[i])
			}
			last[i] = ts
		}
	}
	if served == 0 {
		t.Fatal("hardened cluster served nothing under chaos")
	}
}
