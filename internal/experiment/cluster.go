// Package experiment assembles the paper's evaluation scenarios: a
// simulated machine hosting three Triad nodes and a Time Authority,
// interrupt environments (Triad-like, isolated-core), attacks, and the
// instrumentation that regenerates every figure and table of the
// paper's Section IV.
package experiment

import (
	"fmt"
	"time"

	"triadtime/internal/aex"
	"triadtime/internal/authority"
	"triadtime/internal/core"
	"triadtime/internal/enclave"
	"triadtime/internal/engine"
	"triadtime/internal/metrics"
	"triadtime/internal/resilient"
	"triadtime/internal/sim"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
	"triadtime/internal/trace"
	"triadtime/internal/wire"
)

// TimeNode is the common surface of the original (core.Node) and
// hardened (resilient.Node) protocol implementations; experiments are
// written against it so every scenario can run on either.
type TimeNode interface {
	Start()
	Addr() simnet.Addr
	State() core.State
	FCalib() float64
	TAReferences() int
	PeerUntaints() int
	Counters() engine.Counters
	TrustedNow() (int64, error)
	ClockReading() (int64, bool)
}

var (
	_ TimeNode = (*core.Node)(nil)
	_ TimeNode = (*resilient.Node)(nil)
)

// TAAddr is the (first) Time Authority's address in all experiments;
// multi-authority clusters occupy TAAddr, TAAddr+1, ....
const TAAddr simnet.Addr = 100

// ClusterKey is the experiments' pre-shared AES-256 cluster key.
func ClusterKey() []byte {
	key := make([]byte, wire.KeySize)
	for i := range key {
		key[i] = byte(0xA5 ^ i)
	}
	return key
}

// Env selects a node's simulated-interrupt environment.
type Env int

// Interrupt environments.
const (
	// EnvNone: no per-node injected AEXs; only machine-wide residual OS
	// interrupts reach the monitoring core (plus rare sporadic ones).
	EnvNone Env = iota + 1
	// EnvTriadLike: the paper's simulated distribution — inter-AEX gaps
	// of 10ms/532ms/1.59s, each with probability 1/3 (Figure 1a).
	EnvTriadLike
)

// ClusterConfig parameterizes an experiment cluster.
type ClusterConfig struct {
	// Seed drives all randomness; same seed, same run.
	Seed uint64
	// Nodes is the cluster size. Default: 3, as in the paper.
	Nodes int
	// Link is the network model. Default: the experiments' LAN model
	// (see defaultExperimentLink).
	Link *simnet.Link
	// MachineWideAEX enables the residual OS interrupt process that
	// hits all monitoring cores simultaneously (the paper's Figure 1b
	// environment; on shared hardware these correlate node taints).
	// Default: true.
	DisableMachineAEX bool
	// SampleEvery is the drift/counter sampling period. Default: 1s.
	SampleEvery time.Duration
	// MonitorTicks overrides the nodes' INC monitoring window (long
	// experiments use a larger window to bound simulation event count).
	MonitorTicks uint64
	// Tweak adjusts each node's configuration before creation.
	Tweak func(i int, cfg *core.Config)
	// RecordAEXGaps enables per-node inter-AEX gap recording.
	RecordAEXGaps bool
	// Hardened builds resilient.Node participants instead of the
	// original protocol (the Section V extension experiments).
	Hardened bool
	// HardenedTweak adjusts each hardened node's configuration (e.g.
	// for ablations). Only used when Hardened is set.
	HardenedTweak func(i int, cfg *resilient.Config)
	// Trace, when set, receives every node's protocol events as
	// structured records (JSONL if the recorder has a sink).
	Trace *trace.Recorder
	// Authorities is the number of independent Time Authorities, at
	// addresses TAAddr..TAAddr+N-1. Default: 1 (the single-TA paper
	// setup). With two or more, nodes run quorum calibration.
	Authorities int
	// AuthorityClocks, when set, supplies authority i's clock given the
	// simulation's reference clock — the hook the fault scenarios use to
	// run lying (fixed-offset or drifting) authorities. Returning nil
	// keeps the honest reference clock.
	AuthorityClocks func(i int, ref authority.Clock) authority.Clock
	// QuorumMinAgree overrides the quorum agreement rule on every node
	// (0 = strict majority of configured authorities).
	QuorumMinAgree int
	// Streaming replaces the retained per-node sample series (Drift,
	// TACounts, AEXCounts, FCalibs) with pooled fixed-memory probes —
	// the thousand-node mode. Timelines survive (state transitions are
	// few) so Availability still works; figures that plot full series
	// must leave it unset. Sampling reads the same node state either
	// way, so a streaming run's dynamics are byte-identical to a
	// retained run of the same seed.
	Streaming bool
	// StreamCorrectTol is the streaming probes' correctness tolerance
	// (default CorrectDriftTolerance); StreamInfectTol the signed-drift
	// infection threshold (default 1s, the scale sweep's detector).
	StreamCorrectTol time.Duration
	StreamInfectTol  time.Duration
}

// defaultExperimentLink reproduces the paper's effective calibration
// noise: O(100ppm) drift rates arise purely from lognormal delay jitter
// over the ≤1s regression windows (paper §IV-A.2 measures ~110ppm
// typical, 210ppm worst).
func defaultExperimentLink() simnet.Link {
	return simnet.DefaultLink()
}

// Cluster is a fully wired experiment: scheduler, network, Time
// Authority, nodes with instrumentation, and interrupt processes.
type Cluster struct {
	Sched *sim.Scheduler
	RNG   *sim.RNG
	Net   *simnet.Network
	// TA is the first (or only) Time Authority; TAs holds all of them
	// in address order for multi-authority clusters.
	TA        *authority.SimBinding
	TAs       []*authority.SimBinding
	Nodes     []TimeNode
	Platforms []*enclave.SimPlatform

	// Per-node instrumentation. In streaming mode the series slices stay
	// nil and Probes carries the fixed-memory accumulators instead.
	Timelines []*metrics.StateTimeline
	Drift     []*metrics.DriftSeries
	TACounts  []*metrics.CountSeries
	AEXCounts []*metrics.CountSeries
	FCalibs   [][]float64  // every calibrated rate, per node (retained mode)
	Probes    []*NodeProbe // per-node streaming accumulators (streaming mode)

	machineAEX *aex.Injector
	sporadic   []*aex.Injector
	perNode    []*aex.Injector
	sampleEv   time.Duration
	sampleFn   func()
	streaming  bool
	lastFCalib []float64
	started    bool
}

// NewCluster builds the experiment rig. Nodes are addressed 1..N ("Node
// 1".."Node N" in the figures); the Time Authority is TAAddr.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 3
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = time.Second
	}
	link := defaultExperimentLink()
	if cfg.Link != nil {
		link = *cfg.Link
	}
	if cfg.Authorities == 0 {
		cfg.Authorities = 1
	}
	sched := sim.NewScheduler()
	rng := sim.NewRNG(cfg.Seed)
	network := simnet.New(sched, rng.Fork(1), link)
	c := &Cluster{
		Sched:     sched,
		RNG:       rng,
		Net:       network,
		sampleEv:  cfg.SampleEvery,
		streaming: cfg.Streaming,
	}
	// One sampling closure for the whole run: rebuilding it per tick
	// would allocate on every sample of a thousand-node sweep.
	c.sampleFn = func() {
		c.sampleOnce()
		c.scheduleSample()
	}
	correctTol := CorrectDriftTolerance.Seconds()
	if cfg.StreamCorrectTol != 0 {
		correctTol = cfg.StreamCorrectTol.Seconds()
	}
	infectTol := 1.0
	if cfg.StreamInfectTol != 0 {
		infectTol = cfg.StreamInfectTol.Seconds()
	}
	// The extra authorities consume no RNG forks, so a single-authority
	// run stays byte-identical to the pre-quorum rig.
	refClock := authority.Clock(func() int64 { return int64(sched.Now()) })
	taAddrs := make([]simnet.Addr, cfg.Authorities)
	for i := range taAddrs {
		taAddrs[i] = TAAddr + simnet.Addr(i)
		clock := refClock
		if cfg.AuthorityClocks != nil {
			if ck := cfg.AuthorityClocks(i, refClock); ck != nil {
				clock = ck
			}
		}
		ta, err := authority.NewSimBindingClock(sched, network, ClusterKey(), taAddrs[i], clock)
		if err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
		c.TAs = append(c.TAs, ta)
	}
	c.TA = c.TAs[0]
	if cfg.Trace != nil {
		cfg.Trace.SetNow(sched.Now)
	}

	addrs := make([]simnet.Addr, cfg.Nodes)
	for i := range addrs {
		addrs[i] = simnet.Addr(i + 1)
	}
	for i := 0; i < cfg.Nodes; i++ {
		tsc := simtime.NewTSC(simtime.NominalTSCHz, uint64(i+1)*7e9)
		platform := enclave.NewSimPlatform(sched, rng.Fork(uint64(100+i)), network, enclave.SimConfig{
			Addr:          addrs[i],
			TSC:           tsc,
			RecordAEXGaps: cfg.RecordAEXGaps,
		})
		var peers []simnet.Addr
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		idx := i
		timeline := &metrics.StateTimeline{}
		events := core.Events{
			StateChanged: func(_, s core.State) {
				timeline.Record(sched.Now(), s)
			},
			Calibrated: func(f float64) {
				c.lastFCalib[idx] = f
				if !c.streaming {
					c.FCalibs[idx] = append(c.FCalibs[idx], f)
				}
			},
		}
		if cfg.Trace != nil {
			hooks := cfg.Trace.ForNode(fmt.Sprintf("node%d", i+1))
			prevState, prevCalib := events.StateChanged, events.Calibrated
			events.StateChanged = func(old, s core.State) {
				prevState(old, s)
				hooks.StateChanged(old.String(), s.String())
			}
			events.Calibrated = func(f float64) {
				prevCalib(f)
				hooks.Calibrated(f)
			}
			events.TAReference = hooks.TAReference
			events.PeerUntaint = hooks.PeerUntaint
			events.Discrepancy = hooks.Discrepancy
		}
		var node TimeNode
		if cfg.Hardened {
			nodeCfg := resilient.Config{
				Key:          ClusterKey(),
				Addr:         addrs[i],
				Peers:        peers,
				Authority:    TAAddr,
				MonitorTicks: cfg.MonitorTicks,
				Events:       events,
			}
			if cfg.Authorities >= 2 {
				nodeCfg.Authorities = taAddrs
				nodeCfg.QuorumMinAgree = cfg.QuorumMinAgree
			}
			if cfg.HardenedTweak != nil {
				cfg.HardenedTweak(i, &nodeCfg)
			}
			hardened, err := resilient.NewNode(platform, nodeCfg)
			if err != nil {
				return nil, fmt.Errorf("experiment: hardened node %d: %w", i+1, err)
			}
			node = hardened
		} else {
			nodeCfg := core.Config{
				Key:       ClusterKey(),
				Addr:      addrs[i],
				Peers:     peers,
				Authority: TAAddr,
				// The paper's effective drift rates come from few, short
				// measurements; two samples per sleep value matches its
				// "repeated and independent short interactions".
				CalibSamplesPerSleep: 2,
				MonitorTicks:         cfg.MonitorTicks,
				Events:               events,
			}
			if cfg.Authorities >= 2 {
				nodeCfg.Authorities = taAddrs
				nodeCfg.QuorumMinAgree = cfg.QuorumMinAgree
			}
			if cfg.Tweak != nil {
				cfg.Tweak(i, &nodeCfg)
			}
			original, err := core.NewNode(platform, nodeCfg)
			if err != nil {
				return nil, fmt.Errorf("experiment: node %d: %w", i+1, err)
			}
			node = original
		}
		c.Nodes = append(c.Nodes, node)
		c.Platforms = append(c.Platforms, platform)
		c.Timelines = append(c.Timelines, timeline)
		if cfg.Streaming {
			c.Probes = append(c.Probes, AcquireProbe(correctTol, infectTol))
		} else {
			name := fmt.Sprintf("node%d", i+1)
			c.Drift = append(c.Drift, &metrics.DriftSeries{Node: name})
			c.TACounts = append(c.TACounts, &metrics.CountSeries{Node: name})
			c.AEXCounts = append(c.AEXCounts, &metrics.CountSeries{Node: name})
			c.FCalibs = append(c.FCalibs, nil)
		}
		c.lastFCalib = append(c.lastFCalib, 0)
		c.perNode = append(c.perNode, nil)
	}

	if !cfg.DisableMachineAEX {
		// Machine-wide residual OS interrupts: one process, all cores.
		c.machineAEX = aex.NewInjector(sched, aex.NewIsolatedCore(rng.Fork(50)))
		for _, p := range c.Platforms {
			c.machineAEX.Attach(p.FireAEX)
		}
		// Sporadic per-core OS activity: rare, uncorrelated (this is
		// what lets individual nodes taint alone in the low-AEX
		// environment and produce Figure 3a's peer-untaint jumps).
		for i, p := range c.Platforms {
			inj := aex.NewInjector(sched, aex.NewExponential(rng.Fork(uint64(60+i)), 15*time.Minute))
			inj.Attach(p.FireAEX)
			c.sporadic = append(c.sporadic, inj)
		}
	}
	return c, nil
}

// SetEnv installs node i's per-node interrupt environment, replacing
// any previous one. Callable before Start or mid-run (scheduled via
// At).
func (c *Cluster) SetEnv(i int, env Env) {
	if c.perNode[i] != nil {
		c.perNode[i].Stop()
		c.perNode[i] = nil
	}
	if env != EnvTriadLike {
		return
	}
	inj := aex.NewInjector(c.Sched, aex.NewTriadLike(c.RNG.Fork(uint64(200+i))))
	inj.Attach(c.Platforms[i].FireAEX)
	c.perNode[i] = inj
	if c.started {
		inj.Start()
	}
}

// At schedules fn at reference time t (convenience for scripting
// mid-run environment or attack changes).
func (c *Cluster) At(t time.Duration, fn func()) {
	c.Sched.At(simtime.FromDuration(t), fn)
}

// Start launches nodes, interrupt processes and the sampling loop.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	for _, n := range c.Nodes {
		n.Start()
	}
	if c.machineAEX != nil {
		c.machineAEX.Start()
	}
	for _, inj := range c.sporadic {
		inj.Start()
	}
	for _, inj := range c.perNode {
		if inj != nil {
			inj.Start()
		}
	}
	c.scheduleSample()
}

func (c *Cluster) scheduleSample() {
	c.Sched.After(simtime.FromDuration(c.sampleEv), c.sampleFn)
}

func (c *Cluster) sampleOnce() {
	now := c.Sched.Now()
	refSec := now.Seconds()
	if c.streaming {
		for i, n := range c.Nodes {
			reading, ok := n.ClockReading()
			var drift float64
			if ok {
				drift = float64(reading-int64(now)) / 1e9
			}
			c.Probes[i].Observe(refSec, drift, n.State(), ok)
		}
		return
	}
	for i, n := range c.Nodes {
		if reading, ok := n.ClockReading(); ok {
			c.Drift[i].Add(metrics.DriftPoint{
				RefSeconds:   refSec,
				DriftSeconds: float64(reading-int64(now)) / 1e9,
				State:        n.State(),
			})
		}
		c.TACounts[i].Add(metrics.CountPoint{RefSeconds: refSec, Count: n.TAReferences()})
		c.AEXCounts[i].Add(metrics.CountPoint{RefSeconds: refSec, Count: c.Platforms[i].AEXCount()})
	}
}

// RunFor advances the simulation by d.
func (c *Cluster) RunFor(d time.Duration) {
	c.Sched.RunUntil(c.Sched.Now().Add(d))
}

// CounterSnapshots returns every node's current protocol counters —
// the uniform engine counter set, so hardened columns are zero on
// original-protocol clusters.
func (c *Cluster) CounterSnapshots() []metrics.CounterSnapshot {
	snaps := make([]metrics.CounterSnapshot, len(c.Nodes))
	for i, n := range c.Nodes {
		snaps[i] = metrics.CounterSnapshot{
			Node:     fmt.Sprintf("node%d", i+1),
			Counters: n.Counters(),
		}
	}
	return snaps
}

// Availability reports node i's serving availability over [0, now].
func (c *Cluster) Availability(i int) float64 {
	return c.Timelines[i].Availability(simtime.Epoch, c.Sched.Now())
}

// FinalFCalib reports node i's most recent calibrated rate (0 if never
// calibrated).
func (c *Cluster) FinalFCalib(i int) float64 {
	return c.lastFCalib[i]
}

// ReleaseProbes returns a streaming cluster's probes to the pool once
// their numbers have been read out. The cluster must not be sampled
// afterwards.
func (c *Cluster) ReleaseProbes() {
	for i, p := range c.Probes {
		ReleaseProbe(p)
		c.Probes[i] = nil
	}
	c.Probes = nil
}
