package experiment

import (
	"strings"
	"testing"
	"time"

	"triadtime/internal/trace"
)

func TestClusterTraceRecording(t *testing.T) {
	var sink strings.Builder
	rec := trace.NewRecorder(nil, &sink) // clock installed by the cluster
	c, err := NewCluster(ClusterConfig{Seed: 61, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Nodes {
		c.SetEnv(i, EnvTriadLike)
	}
	c.Start()
	c.RunFor(2 * time.Minute)

	if rec.Count("state") == 0 || rec.Count("calibrated") != 3 {
		t.Errorf("trace counts: state=%d calibrated=%d", rec.Count("state"), rec.Count("calibrated"))
	}
	if rec.Count("ta_ref") < 3 {
		t.Errorf("ta_ref = %d, want >= 3 (initial calibrations)", rec.Count("ta_ref"))
	}
	if !strings.Contains(sink.String(), `"kind":"calibrated"`) {
		t.Error("JSONL sink missing calibration records")
	}
	// Events carry simulated timestamps, not zeros.
	stamped := false
	for _, e := range rec.Events() {
		if e.RefSeconds > 0 {
			stamped = true
			break
		}
	}
	if !stamped {
		t.Error("all trace events stamped at t=0 (clock never installed)")
	}
}

func TestClusterTraceDeterministic(t *testing.T) {
	run := func() string {
		var sink strings.Builder
		rec := trace.NewRecorder(nil, &sink)
		c, err := NewCluster(ClusterConfig{Seed: 62, Trace: rec})
		if err != nil {
			t.Fatal(err)
		}
		for i := range c.Nodes {
			c.SetEnv(i, EnvTriadLike)
		}
		c.Start()
		c.RunFor(time.Minute)
		return sink.String()
	}
	if run() != run() {
		t.Error("same-seed traces differ: determinism broken")
	}
}
