package experiment

import (
	"context"
	"fmt"
	"strings"
	"time"

	"triadtime/internal/commit"
	"triadtime/internal/experiment/runner"
	"triadtime/internal/serve"
	"triadtime/internal/sim"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
	"triadtime/internal/wire"
)

// This file holds the time-locked commitment attack suite: an attacker
// holding valid client credentials tries to open commitments before
// their trusted unlock time — by simply asking early and often, by
// forging tokens, by exploiting Degraded holdover, by rolling the
// node's clock back, and by restarting the vault against a replayed
// (rolled-back) anchor file. Each scenario is an independent
// deterministic simulation driving the sealed serving path end to end
// (client datagrams through the sharded Server and its vault), so the
// table is byte-identical across runs and worker counts.

// CommitServeAddr is the commitment endpoint's base address. Restart
// scenarios bring each vault incarnation up one address higher, the
// way a restarted node returns under the same name but with fresh
// sockets.
const CommitServeAddr simnet.Addr = 170

// commitAttackerAddr is the attacking client's address.
const commitAttackerAddr simnet.Addr = 1200

// CommitRow reports one attack scenario: the client-observed verdict
// tallies over its unlock and status attempts, the vault's detection
// counters, and the final lease epoch.
type CommitRow struct {
	Name string
	// Ops counts unlock and status attempts (locks are setup, not
	// attempts). Granted counts OK verdicts among them; the refusal
	// columns split the rest by verdict.
	Ops, Granted, Early, Fenced, Forged, Unavailable int
	// AnchorRollbacks and ClockRollbacks are the vault's detections,
	// summed across incarnations.
	AnchorRollbacks, ClockRollbacks uint64
	// FinalEpoch is the last incarnation's lease epoch.
	FinalEpoch uint64
}

// Summary renders the row.
func (r CommitRow) Summary() string {
	return fmt.Sprintf("%-22s ops=%2d granted=%d early=%2d fenced=%d forged=%d unavail=%d anchor_rb=%d clock_rb=%d epoch=%d",
		r.Name, r.Ops, r.Granted, r.Early, r.Fenced, r.Forged, r.Unavailable,
		r.AnchorRollbacks, r.ClockRollbacks, r.FinalEpoch)
}

// CommitVaultKey is the commitment vault's token/anchor key in the
// attack scenarios — distinct from ClientKey, as a deployment would
// keep transport and token credentials separate.
func CommitVaultKey() []byte {
	key := make([]byte, wire.KeySize)
	for i := range key {
		key[i] = byte(0xC3 ^ i*5)
	}
	return key
}

// commitRig is one scenario's world: the scheduler and network, a
// scripted trusted clock (offset and vouch hooks model clock attacks
// and Degraded holdover), and a MemStore anchor that persists across
// vault incarnations — the restartable piece the rollback scenarios
// attack.
type commitRig struct {
	sched *sim.Scheduler
	net   *simnet.Network
	store *commit.MemStore
	vault *commit.Vault
	addr  simnet.Addr // current incarnation's endpoint

	// clockOffset shifts the trusted clock (a rollback attack sets it
	// negative); vouch=false models Degraded holdover, where the node
	// serves timestamps but must not vouch.
	clockOffset int64
	vouch       bool

	incarnation int
	randCounter uint64
	// Detection counters accumulated from closed incarnations.
	anchorRB, clockRB uint64
}

// trustedNow is the rig's scripted trusted clock.
func (r *commitRig) trustedNow() (int64, error) {
	return int64(r.sched.Now()) + r.clockOffset, nil
}

// at schedules fn at simulated time d.
func (r *commitRig) at(d time.Duration, fn func()) {
	r.sched.At(simtime.FromDuration(d), fn)
}

// restart closes the books on the current incarnation (its detection
// counters roll into the rig's) and opens a fresh vault from the
// persisted anchor behind a fresh serving binding — the simulated
// process restart. The anchor's epoch bump on Open is the restart
// fence the lease scenarios measure.
func (r *commitRig) restart() error {
	if r.vault != nil {
		c := r.vault.Counters()
		r.anchorRB += c.AnchorRollbacks
		r.clockRB += c.ClockRollbacks
	}
	vault, err := commit.Open(commit.Config{
		Clock: commit.ClockFunc(r.trustedNow),
		Vouch: func() bool { return r.vouch },
		Key:   CommitVaultKey(),
		Store: r.store,
		Rand: func(b []byte) (int, error) {
			// Deterministic nonce source: the suite's tables must be
			// byte-identical across runs.
			r.randCounter++
			for i := range b {
				b[i] = byte(r.randCounter + uint64(i)*13)
			}
			return len(b), nil
		},
	})
	if err != nil {
		return err
	}
	r.incarnation++
	binding, err := serve.NewSimBinding(r.sched, r.net, serve.SimConfig{
		Addr: CommitServeAddr + simnet.Addr(r.incarnation),
		Key:  ClientKey(),
		Tick: time.Millisecond,
		Server: serve.Config{
			Clock: serve.ClockFunc(r.trustedNow),
			Vault: vault,
		},
	})
	if err != nil {
		return err
	}
	binding.Start()
	r.vault = vault
	r.addr = binding.Addr()
	return nil
}

// commitAttacker is the scripted client: it locks named documents and
// fires unlock/status attempts, tallying the node's verdicts. It holds
// valid transport credentials — the threat model is a compromised
// client (or the relying party itself) trying to shortcut time, not a
// network outsider.
type commitAttacker struct {
	rig    *commitRig
	sealer *wire.Sealer
	opener *wire.Opener
	row    *CommitRow

	seq     uint64
	sent    map[uint64]sentOp
	tokens  map[string][wire.CommitTokenSize]byte
	scratch [wire.CommitRequestSize]byte
	sealBuf []byte
}

// sentOp remembers what an in-flight seq asked for.
type sentOp struct {
	kind wire.Kind
	name string
}

func newCommitAttacker(rig *commitRig, row *CommitRow) (*commitAttacker, error) {
	sealer, err := wire.NewSealer(ClientKey(), uint32(commitAttackerAddr))
	if err != nil {
		return nil, err
	}
	opener, err := wire.NewOpener(ClientKey())
	if err != nil {
		return nil, err
	}
	a := &commitAttacker{
		rig:    rig,
		sealer: sealer,
		opener: opener,
		row:    row,
		sent:   make(map[uint64]sentOp),
		tokens: make(map[string][wire.CommitTokenSize]byte),
	}
	rig.net.Register(commitAttackerAddr, a.handle)
	return a, nil
}

func (a *commitAttacker) send(req wire.CommitRequest, name string) {
	a.seq++
	req.ClientID = uint64(commitAttackerAddr)
	req.Seq = a.seq
	a.sent[a.seq] = sentOp{kind: req.Kind, name: name}
	req.MarshalInto(a.scratch[:])
	a.sealBuf = a.sealer.SealDatagramAppend(a.sealBuf[:0], a.scratch[:wire.CommitRequestSize])
	// The rig's current address is read at send time, so attempts
	// scheduled before a restart land on whichever incarnation is
	// serving when they fire.
	a.rig.net.Send(commitAttackerAddr, a.rig.addr, a.sealBuf)
}

// lock seals the named document for unlockIn of trusted time.
func (a *commitAttacker) lock(name string, unlockIn time.Duration, flags uint8) {
	var req wire.CommitRequest
	req.Kind = wire.KindCommitLock
	req.Flags = flags
	for i := range req.Hash {
		req.Hash[i] = byte(len(name) + i)
	}
	copy(req.Hash[:], name)
	now, _ := a.rig.trustedNow()
	req.UnlockNanos = now + int64(unlockIn)
	a.send(req, name)
}

// unlock and status fire one attempt against the named token.
func (a *commitAttacker) unlock(name string) { a.query(wire.KindCommitUnlock, name, false) }
func (a *commitAttacker) status(name string) { a.query(wire.KindCommitStatus, name, false) }

// unlockForged flips a byte of the named token's MAC first.
func (a *commitAttacker) unlockForged(name string) { a.query(wire.KindCommitUnlock, name, true) }

func (a *commitAttacker) query(kind wire.Kind, name string, forge bool) {
	tok, ok := a.tokens[name]
	if !ok {
		return // the lock itself was refused; nothing to attempt
	}
	if forge {
		tok[len(tok)-1] ^= 0x80
	}
	var req wire.CommitRequest
	req.Kind = kind
	req.Token = tok
	a.send(req, name)
}

func (a *commitAttacker) handle(pkt simnet.Packet) {
	plain, _, err := a.opener.OpenDatagramInto(nil, pkt.Payload)
	if err != nil || len(plain) != wire.CommitResponseSize {
		return
	}
	resp, err := wire.UnmarshalCommitResponse(plain)
	if err != nil || resp.ClientID != uint64(commitAttackerAddr) {
		return
	}
	op, ok := a.sent[resp.Seq]
	if !ok {
		return
	}
	delete(a.sent, resp.Seq)
	if op.kind == wire.KindCommitLock {
		if resp.Verdict == wire.CommitOK {
			a.tokens[op.name] = resp.Token
		}
		return
	}
	a.row.Ops++
	switch resp.Verdict {
	case wire.CommitOK:
		a.row.Granted++
	case wire.CommitSealed:
		a.row.Early++
	case wire.CommitFenced:
		a.row.Fenced++
	case wire.CommitBadToken:
		a.row.Forged++
	case wire.CommitUnavailable:
		a.row.Unavailable++
	case wire.CommitOverloaded:
		// Admission control never sheds at the suite's request rates; a
		// shed here would break the ops-partition invariant the tests
		// pin, so count it where the audit's zero-range assertion
		// (ops − granted − early) will catch it.
	}
}

// commitScenario scripts one attack.
type commitScenario struct {
	name string
	dur  time.Duration
	// script schedules the attack's events on the rig's scheduler.
	script func(r *commitRig, a *commitAttacker)
}

// commitScenarios is the suite.
func commitScenarios() []commitScenario {
	return []commitScenario{
		{
			// The control: a sealed status query is refused, the ripe
			// unlock is vouched.
			name: "honest-ripe-unlock",
			dur:  40 * time.Second,
			script: func(r *commitRig, a *commitAttacker) {
				r.at(1*time.Second, func() { a.lock("doc", 30*time.Second, 0) })
				r.at(10*time.Second, func() { a.status("doc") })
				r.at(32*time.Second, func() { a.unlock("doc") })
			},
		},
		{
			// Ask early and often: every pre-ripe attempt must come back
			// Sealed; only attempts after the 60s mark are granted.
			name: "early-unlock-storm",
			dur:  80 * time.Second,
			script: func(r *commitRig, a *commitAttacker) {
				r.at(1*time.Second, func() { a.lock("doc", 60*time.Second, 0) })
				for t := 5 * time.Second; t < 78*time.Second; t += 4 * time.Second {
					r.at(t, func() { a.unlock("doc") })
				}
			},
		},
		{
			// Token forgery: flipped MACs are rejected as BadToken, and
			// the genuine token still unlocks on time.
			name: "forged-token",
			dur:  20 * time.Second,
			script: func(r *commitRig, a *commitAttacker) {
				r.at(1*time.Second, func() { a.lock("doc", 10*time.Second, 0) })
				r.at(3*time.Second, func() { a.unlockForged("doc") })
				r.at(5*time.Second, func() { a.unlockForged("doc") })
				r.at(7*time.Second, func() { a.unlockForged("doc") })
				r.at(13*time.Second, func() { a.unlock("doc") })
			},
		},
		{
			// Degraded holdover: the clock still answers (timestamps
			// keep flowing) but the node must not vouch that the unlock
			// time has truly passed (paper §VI). Attempts during the
			// holdover window are refused Unavailable even though the
			// token is ripe; vouching resumes with calibration.
			name: "degraded-holdover",
			dur:  25 * time.Second,
			script: func(r *commitRig, a *commitAttacker) {
				r.at(1*time.Second, func() { a.lock("doc", 10*time.Second, 0) })
				r.at(14*time.Second, func() { r.vouch = false })
				r.at(15*time.Second, func() { a.unlock("doc") })
				r.at(17*time.Second, func() { a.unlock("doc") })
				r.at(19*time.Second, func() { r.vouch = true })
				r.at(20*time.Second, func() { a.unlock("doc") })
			},
		},
		{
			// Clock rollback: after the vault has vouched against
			// trusted time t, the clock is stepped 8s backwards. Reads
			// below the persisted high-water mark refuse to vouch and
			// are counted; service resumes once the clock passes the
			// mark again.
			name: "clock-rollback",
			dur:  25 * time.Second,
			script: func(r *commitRig, a *commitAttacker) {
				r.at(1*time.Second, func() { a.lock("doc", 10*time.Second, 0) })
				r.at(12*time.Second, func() { a.status("doc") }) // ripe: OK, high-water ~12s
				r.at(13*time.Second, func() { r.clockOffset = -int64(8 * time.Second) })
				r.at(14*time.Second, func() { a.unlock("doc") })
				r.at(16*time.Second, func() { a.unlock("doc") })
				r.at(17*time.Second, func() { r.clockOffset = 0 })
				r.at(18*time.Second, func() { a.unlock("doc") })
			},
		},
		{
			// Restart fencing (T-Lease): a lease-mode token minted in
			// epoch 1 is fenced after the restart bumps the epoch; a
			// durable (non-lease) commitment survives the same restart.
			name: "restart-lease-fence",
			dur:  20 * time.Second,
			script: func(r *commitRig, a *commitAttacker) {
				r.at(1*time.Second, func() { a.lock("lease", 10*time.Second, wire.FlagLease) })
				r.at(2*time.Second, func() { a.lock("durable", 10*time.Second, 0) })
				r.at(5*time.Second, func() { _ = r.restart() })
				r.at(13*time.Second, func() { a.unlock("lease") })
				r.at(15*time.Second, func() { a.unlock("durable") })
			},
		},
		{
			// Anchor rollback: the attacker snapshots the anchor file in
			// epoch 1, lets the vault restart twice (epoch 3), then
			// restores the stale anchor and restarts again. The replayed
			// incarnation reopens at epoch 2 — but the attacker's own
			// epoch-3 token is authentic proof of the rollback, so the
			// vault re-fences past it (epoch 4) and refuses. A fresh
			// lock/unlock cycle then works at the re-fenced epoch.
			name: "anchor-rollback",
			dur:  25 * time.Second,
			script: func(r *commitRig, a *commitAttacker) {
				var stale []byte
				r.at(1*time.Second, func() { a.lock("warm", 5*time.Second, 0) })
				r.at(2*time.Second, func() { stale, _ = r.store.Snapshot() })
				r.at(3*time.Second, func() { _ = r.restart() })
				r.at(4*time.Second, func() { _ = r.restart() })
				r.at(5*time.Second, func() { a.lock("fresh", 5*time.Second, 0) })
				r.at(7*time.Second, func() {
					r.store.Restore(stale)
					_ = r.restart()
				})
				r.at(11*time.Second, func() { a.unlock("fresh") })
				r.at(13*time.Second, func() { a.lock("post", 3*time.Second, 0) })
				r.at(17*time.Second, func() { a.unlock("post") })
			},
		},
	}
}

// runCommitScenario executes one scenario and reduces it to a row.
func runCommitScenario(seed uint64, sc commitScenario) (CommitRow, error) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	network := simnet.New(sched, rng.Fork(1), simnet.DefaultLink())
	rig := &commitRig{
		sched: sched,
		net:   network,
		store: &commit.MemStore{},
		vouch: true,
	}
	if err := rig.restart(); err != nil {
		return CommitRow{}, fmt.Errorf("experiment: %w", err)
	}
	row := CommitRow{Name: sc.name}
	attacker, err := newCommitAttacker(rig, &row)
	if err != nil {
		return CommitRow{}, fmt.Errorf("experiment: %w", err)
	}
	sc.script(rig, attacker)
	sched.RunUntil(simtime.FromDuration(sc.dur))

	final := rig.vault.Counters()
	row.AnchorRollbacks = rig.anchorRB + final.AnchorRollbacks
	row.ClockRollbacks = rig.clockRB + final.ClockRollbacks
	row.FinalEpoch = rig.vault.Epoch()
	return row, nil
}

// RunCommitAttacks runs the commitment attack suite. Rows come back in
// scenario order; each scenario is an independent simulation, so they
// fan across the runner's worker pool with byte-identical output.
// Cancelling ctx abandons unstarted scenarios and returns its error.
func RunCommitAttacks(ctx context.Context, seed uint64) ([]CommitRow, error) {
	scenarios := commitScenarios()
	tasks := make([]runner.Task[CommitRow], len(scenarios))
	for i, sc := range scenarios {
		sc := sc
		tasks[i] = runner.Task[CommitRow]{
			Name: "commit " + sc.name,
			Run: func(context.Context) (CommitRow, error) {
				return runCommitScenario(seed, sc)
			},
		}
	}
	return runner.Run(ctx, runner.Config{}, tasks).Values()
}

// CommitAttackSummary renders the suite's table.
func CommitAttackSummary(rows []CommitRow) string {
	var b strings.Builder
	b.WriteString("Time-locked commitment attack suite (early unlocks, forgery, holdover, rollbacks):\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "  %s\n", row.Summary())
	}
	return b.String()
}
