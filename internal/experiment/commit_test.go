package experiment

import (
	"context"
	"testing"
)

// TestCommitAttackRows pins the suite's verdict tallies: the attack
// table is an oracle, so every row's counts are exact.
func TestCommitAttackRows(t *testing.T) {
	rows, err := RunCommitAttacks(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]CommitRow{
		"honest-ripe-unlock":  {Ops: 2, Granted: 1, Early: 1, FinalEpoch: 1},
		"early-unlock-storm":  {Ops: 19, Granted: 5, Early: 14, FinalEpoch: 1},
		"forged-token":        {Ops: 4, Granted: 1, Forged: 3, FinalEpoch: 1},
		"degraded-holdover":   {Ops: 3, Granted: 1, Unavailable: 2, FinalEpoch: 1},
		"clock-rollback":      {Ops: 4, Granted: 2, Unavailable: 2, ClockRollbacks: 2, FinalEpoch: 1},
		"restart-lease-fence": {Ops: 2, Granted: 1, Fenced: 1, FinalEpoch: 2},
		"anchor-rollback":     {Ops: 2, Granted: 1, Fenced: 1, AnchorRollbacks: 1, FinalEpoch: 4},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for _, row := range rows {
		exp, ok := want[row.Name]
		if !ok {
			t.Errorf("unexpected scenario %q", row.Name)
			continue
		}
		exp.Name = row.Name
		if row != exp {
			t.Errorf("row mismatch:\n got %s\nwant %s", row.Summary(), exp.Summary())
		}
	}
}

// TestCommitAttacksDeterministic diffs two full runs: the rendered
// table must be byte-identical (triad-sim caches and re-renders it).
func TestCommitAttacksDeterministic(t *testing.T) {
	a, err := RunCommitAttacks(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCommitAttacks(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if CommitAttackSummary(a) != CommitAttackSummary(b) {
		t.Fatalf("runs differ:\n%s\nvs\n%s", CommitAttackSummary(a), CommitAttackSummary(b))
	}
}

// TestCommitAttacksNeverGrantEarly is the suite's core security claim
// as a property: across scenarios, every granted unlock happened at or
// after the token's unlock time on the trusted timeline — refusals are
// how the storm, holdover, and rollback scenarios show up, never an
// early grant. The storm scenario in particular fires 14 pre-ripe
// attempts; all must be refused Sealed.
func TestCommitAttacksNeverGrantEarly(t *testing.T) {
	rows, err := RunCommitAttacks(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]CommitRow, len(rows))
	for _, row := range rows {
		byName[row.Name] = row
		if row.Ops != row.Granted+row.Early+row.Fenced+row.Forged+row.Unavailable {
			t.Errorf("%s: verdicts don't partition ops: %s", row.Name, row.Summary())
		}
	}
	storm := byName["early-unlock-storm"]
	if storm.Early == 0 || storm.Granted+storm.Early != storm.Ops {
		t.Errorf("storm row admits a non-Sealed refusal or no early attempts: %s", storm.Summary())
	}
	if CommitAttackSummary(rows) == "" {
		t.Fatal("empty summary")
	}
}
