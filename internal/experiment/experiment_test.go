package experiment

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"triadtime/internal/core"
	"triadtime/internal/simtime"
)

func TestFig1aTriadLikeCDF(t *testing.T) {
	res, err := RunFig1a(1, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Gaps) < 3000 {
		t.Fatalf("only %d gaps in an hour of Triad-like AEXs", len(res.Gaps))
	}
	// The CDF steps at the three paper values, each carrying ~1/3 mass.
	xs := make([]float64, len(res.Gaps))
	for i, g := range res.Gaps {
		xs[i] = g.Seconds()
	}
	cdf := newCDF(xs)
	steps := []struct {
		at   float64
		want float64
	}{
		{0.011, 1.0 / 3}, {0.533, 2.0 / 3}, {1.591, 1.0},
	}
	for _, s := range steps {
		if got := cdf(s.at); math.Abs(got-s.want) > 0.03 {
			t.Errorf("CDF(%vs) = %.3f, want ~%.3f", s.at, got, s.want)
		}
	}
	if !strings.Contains(res.Summary(), "Fig1a") {
		t.Error("summary should name the figure")
	}
}

// newCDF is a tiny local empirical CDF for assertions.
func newCDF(xs []float64) func(float64) float64 {
	return func(at float64) float64 {
		n := 0
		for _, x := range xs {
			if x <= at {
				n++
			}
		}
		return float64(n) / float64(len(xs))
	}
}

func TestFig1bIsolatedCoreCDF(t *testing.T) {
	res, err := RunFig1b(2, 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Gaps) < 50 {
		t.Fatalf("only %d gaps", len(res.Gaps))
	}
	// Most AEXs occur every ~5.4 minutes (324s).
	med := res.Quantile(0.5)
	if med < 250 || med > 400 {
		t.Errorf("median gap = %vs, want ~324s", med)
	}
}

func TestINCTable(t *testing.T) {
	res, err := RunINCTable(3, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Raw.N != 2000 {
		t.Fatalf("raw N = %d", res.Raw.N)
	}
	// The warm-up outlier inflates the raw stddev...
	if res.Raw.Stddev < 50 {
		t.Errorf("raw stddev = %v, expected the warm-up outlier to inflate it", res.Raw.Stddev)
	}
	// ...and outlier removal recovers the paper's tight steady state:
	// mean ~632182, σ ~2.9.
	if math.Abs(res.Clean.Mean-632182) > 2 {
		t.Errorf("clean mean = %v, want ~632182", res.Clean.Mean)
	}
	if res.Clean.Stddev < 1 || res.Clean.Stddev > 5 {
		t.Errorf("clean stddev = %v, want ~2.9", res.Clean.Stddev)
	}
	if len(res.Outliers) < 1 {
		t.Error("expected at least the warm-up outlier")
	}
	if !strings.Contains(res.Summary(), "outliers removed") {
		t.Error("summary should mention outlier removal")
	}
}

func TestFig2NoAttack(t *testing.T) {
	res, err := RunFig2(4, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		// Calibrated close to the true rate: O(100ppm) errors.
		ppm := math.Abs(res.FCalib[i]-simtime.NominalTSCHz) / simtime.NominalTSCHz * 1e6
		if ppm > 1000 {
			t.Errorf("node%d F_calib %.0fppm off, want O(100ppm)", i+1, ppm)
		}
		// High availability including initial calibration (paper: >=98%).
		if res.Availability[i] < 0.97 {
			t.Errorf("node%d availability = %.4f, want >= 0.97", i+1, res.Availability[i])
		}
		// Drift bounded: correlated machine AEXs force TA resets.
		for _, p := range res.Drift[i].Available() {
			if math.Abs(p.DriftSeconds) > 0.25 {
				t.Errorf("node%d drift reached %vs without attack", i+1, p.DriftSeconds)
				break
			}
		}
		// The sawtooth requires at least one TA reference beyond the
		// initial calibration within 10 minutes... only when a machine
		// AEX fired; with mode 324s it fires with overwhelming odds.
		if res.TACounts[i].Final() < 2 {
			t.Errorf("node%d TA refs = %d, want >= 2 (sawtooth resets)", i+1, res.TACounts[i].Final())
		}
	}
}

func TestFig3LowAEX(t *testing.T) {
	res, err := RunFig3(5, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		// Low-AEX: availability rises towards 99.9%.
		if res.Availability[i] < 0.99 {
			t.Errorf("node%d availability = %.4f, want >= 0.99", i+1, res.Availability[i])
		}
	}
	// A single FullCalib at the start (paper Figure 3b): count FullCalib
	// segments in each node's timeline.
	for i := 0; i < 3; i++ {
		full := 0
		for _, seg := range res.Timelines[i].Segments(simtime.Epoch, simtime.FromDuration(2*time.Hour)) {
			if seg.State == core.StateFullCalib {
				full++
			}
		}
		if full != 1 {
			t.Errorf("node%d FullCalib segments = %d, want 1", i+1, full)
		}
	}
}

func TestFig4FPlusLowAEX(t *testing.T) {
	res, err := RunFig4(6, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Node 3's calibrated rate inflated ~10%: 2900 -> ~3190MHz.
	ratio := res.FCalib[2] / simtime.NominalTSCHz
	if math.Abs(ratio-1.1) > 0.005 {
		t.Errorf("node3 F_calib ratio = %v, want ~1.1 (paper: 3191MHz)", ratio)
	}
	// Node 3 in the low-AEX environment drifts at ~-91ms/s between
	// resets; fit over a window that avoids the ~324s machine AEX.
	rate, ok := res.DriftRate(2, 60, 300)
	if !ok {
		t.Fatal("no drift samples for node 3")
	}
	if math.Abs(rate-(-0.091)) > 0.01 {
		t.Errorf("node3 drift rate = %+.4f s/s, want ~-0.091", rate)
	}
	// Honest nodes stay calibrated near the true rate.
	for i := 0; i < 2; i++ {
		ppm := math.Abs(res.FCalib[i]-simtime.NominalTSCHz) / simtime.NominalTSCHz * 1e6
		if ppm > 1000 {
			t.Errorf("node%d F_calib %.0fppm off", i+1, ppm)
		}
	}
}

func TestFig5FPlusTriadLike(t *testing.T) {
	res, err := RunFig5(7, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.FCalib[2] / simtime.NominalTSCHz
	if math.Abs(ratio-1.1) > 0.005 {
		t.Errorf("node3 F_calib ratio = %v, want ~1.1", ratio)
	}
	// Honest nodes keep their natural O(100ppm) drift envelope...
	honestMax := 0.0
	for i := 0; i < 2; i++ {
		for _, p := range res.Drift[i].Available() {
			honestMax = math.Max(honestMax, math.Abs(p.DriftSeconds))
		}
	}
	if honestMax > 0.15 {
		t.Errorf("honest drift envelope = %vs under F+ (should stay at natural calibration error)", honestMax)
	}
	// ...while Node 3 oscillates between that envelope (after peer
	// untaints) and ~-150ms when running on its own slow clock between
	// AEXs (1.59s * 91ms/s ≈ 145ms below the envelope).
	var minDrift, maxDrift float64
	pts := res.Drift[2].Available()
	if len(pts) == 0 {
		t.Fatal("no node3 samples")
	}
	for _, p := range pts {
		if p.RefSeconds < 60 {
			continue // skip calibration transient
		}
		minDrift = math.Min(minDrift, p.DriftSeconds)
		maxDrift = math.Max(maxDrift, p.DriftSeconds)
	}
	if minDrift > -0.08 || minDrift < -0.35 {
		t.Errorf("node3 min drift = %vs, want ~-0.15s below the honest envelope", minDrift)
	}
	if maxDrift > honestMax+0.02 {
		t.Errorf("node3 max drift = %vs, want within peers' envelope (%vs)", maxDrift, honestMax)
	}
}

func TestFig6FMinusPropagation(t *testing.T) {
	res, err := RunFig6(8, 7*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Node 3's rate deflated ~10%: 2900 -> ~2610MHz, clock +111ms/s.
	ratio := res.FCalib[2] / simtime.NominalTSCHz
	if math.Abs(ratio-0.9) > 0.005 {
		t.Errorf("node3 F_calib ratio = %v, want ~0.9 (paper: 2610MHz)", ratio)
	}
	switchSec := FMinusSwitch.Seconds()
	for i := 0; i < 2; i++ {
		var beforeMax, afterMax float64
		for _, p := range res.Drift[i].Available() {
			a := math.Abs(p.DriftSeconds)
			if p.RefSeconds < switchSec {
				beforeMax = math.Max(beforeMax, a)
			} else {
				afterMax = math.Max(afterMax, a)
			}
		}
		// Honest and unbothered before the switch...
		if beforeMax > 0.05 {
			t.Errorf("node%d drift %vs before AEXs started", i+1, beforeMax)
		}
		// ...then dragged onto the compromised timeline: forward skips
		// far beyond any honest drift ("arbitrarily far in the future").
		if afterMax < 1 {
			t.Errorf("node%d max drift after switch = %vs, want >1s (infection)", i+1, afterMax)
		}
	}
	// Infection direction is forward-only.
	for i := 0; i < 2; i++ {
		for _, p := range res.Drift[i].Available() {
			if p.RefSeconds > switchSec+30 && p.DriftSeconds < -0.05 {
				t.Errorf("node%d drifted backwards under F-", i+1)
				break
			}
		}
	}
}

func TestAvailabilityTable(t *testing.T) {
	rows, err := RunAvailabilityTable(context.Background(), 9, 10*time.Minute, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, a := range rows[0].Availability {
		if a < 0.97 {
			t.Errorf("Triad-like availability = %v, want >= 0.97", a)
		}
	}
	for _, a := range rows[1].Availability {
		if a < 0.99 {
			t.Errorf("low-AEX availability = %v, want >= 0.99", a)
		}
	}
	for _, a := range rows[2].Availability {
		if a < 0.9 {
			t.Errorf("hardened availability = %v, want >= 0.9", a)
		}
	}
	if !strings.Contains(rows[0].Summary(), "node1=") {
		t.Error("row summary malformed")
	}
	// Original-protocol rows carry the uniform counter set with the
	// hardening columns zero; the hardened row shows its probe machinery
	// actually ran.
	if len(rows[0].Counters) == 0 || len(rows[2].Counters) == 0 {
		t.Fatal("rows missing counter snapshots")
	}
	for _, s := range rows[0].Counters {
		if s.Probes != 0 || s.RejectedPeers != 0 {
			t.Errorf("%s: original protocol reports hardened counters: %+v", s.Node, s.Counters)
		}
	}
	for _, s := range rows[2].Counters {
		if s.Probes == 0 {
			t.Errorf("%s: hardened node never probed", s.Node)
		}
		if !strings.Contains(s.Summary(), "probes=") {
			t.Errorf("%s: counter summary malformed: %q", s.Node, s.Summary())
		}
	}
	if !strings.Contains(rows[2].Summary(), "rtt_rejections=") {
		t.Error("hardened row summary missing counters")
	}
}

func TestClusterDeterminism(t *testing.T) {
	run := func() string {
		res, err := RunFig2(42, 3*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary()
	}
	if run() != run() {
		t.Error("same seed should reproduce the identical run")
	}
}

func TestClusterSeedSensitivity(t *testing.T) {
	a, err := RunFig2(1, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig2(2, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if a.FCalib[0] == b.FCalib[0] {
		t.Error("different seeds produced identical calibrations (suspicious)")
	}
}
