package experiment

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"triadtime/internal/attack"
	"triadtime/internal/core"
	"triadtime/internal/experiment/runner"
	"triadtime/internal/resilient"
	"triadtime/internal/simtime"
)

// Variant selects a protocol build for the Section V extension and
// ablation experiments.
type Variant int

// Protocol variants under ablation.
const (
	// VariantOriginal is the paper's Triad implementation
	// (internal/core), fully vulnerable.
	VariantOriginal Variant = iota + 1
	// VariantHardened is the full Section V hardening: windowed
	// calibration, RTT bounds, chimer filtering, in-TCB deadline.
	VariantHardened
	// VariantNoChimer disables the true-chimer peer filter only.
	VariantNoChimer
	// VariantNoDeadline disables the in-TCB refresh deadline only.
	VariantNoDeadline
)

// String names the variant for result tables.
func (v Variant) String() string {
	switch v {
	case VariantOriginal:
		return "original"
	case VariantHardened:
		return "hardened"
	case VariantNoChimer:
		return "hardened-no-chimer"
	case VariantNoDeadline:
		return "hardened-no-deadline"
	default:
		return "variant(?)"
	}
}

// buildVariantCluster wires a cluster running the given protocol
// variant under the Figure 6 F- propagation scenario.
func buildVariantCluster(seed uint64, v Variant, mode attack.Mode) (*Cluster, error) {
	cfg := ClusterConfig{
		Seed:        seed,
		SampleEvery: 250 * time.Millisecond,
	}
	if v != VariantOriginal {
		cfg.Hardened = true
		cfg.HardenedTweak = func(_ int, rc *resilient.Config) {
			switch v {
			case VariantNoChimer:
				rc.DisableChimerFilter = true
			case VariantNoDeadline:
				rc.DisableDeadline = true
			}
		}
	}
	c, err := NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	c.SetEnv(0, EnvNone)
	c.SetEnv(1, EnvNone)
	c.SetEnv(2, EnvTriadLike)
	c.Net.AttachMiddlebox(attack.NewDelay(attack.DelayConfig{
		Victim:    c.Nodes[2].Addr(),
		Authority: TAAddr,
		Mode:      mode,
	}))
	c.At(FMinusSwitch, func() {
		c.SetEnv(0, EnvTriadLike)
		c.SetEnv(1, EnvTriadLike)
	})
	return c, nil
}

// ExtensionResult summarizes one variant's behaviour under attack.
type ExtensionResult struct {
	Variant Variant
	Mode    attack.Mode
	// HonestMaxDrift is the worst |drift| (seconds) either honest node
	// showed while serving.
	HonestMaxDrift float64
	// HonestInfected reports whether any honest node skipped more than
	// one second into the future (the paper's propagation outcome).
	HonestInfected bool
	// CompromisedFCalibPPM is how far the compromised node's calibrated
	// rate landed from the true rate, in ppm (0 if never calibrated).
	CompromisedFCalibPPM float64
	// CompromisedAvailability is the compromised node's serving
	// availability (hardening may trade it for safety).
	CompromisedAvailability float64
	// HonestAvailability is the worst availability among honest nodes.
	HonestAvailability float64
}

// Summary renders one comparison row.
func (r ExtensionResult) Summary() string {
	infected := "honest nodes SAFE"
	if r.HonestInfected {
		infected = "honest nodes INFECTED"
	}
	return fmt.Sprintf(
		"%-22s under %s: honest max drift %8.3fms (%s), honest avail %.2f%%, compromised F_calib off %7.0fppm, compromised avail %.2f%%",
		r.Variant, r.Mode, r.HonestMaxDrift*1e3, infected,
		r.HonestAvailability*100, r.CompromisedFCalibPPM, r.CompromisedAvailability*100)
}

// RunExtensionVariant runs the Figure 6 propagation scenario on the
// given protocol variant and summarizes the outcome.
func RunExtensionVariant(seed uint64, v Variant, mode attack.Mode, duration time.Duration) (*ExtensionResult, error) {
	c, err := buildVariantCluster(seed, v, mode)
	if err != nil {
		return nil, err
	}
	c.Start()
	c.RunFor(duration)

	res := &ExtensionResult{Variant: v, Mode: mode, HonestAvailability: 1}
	for i := 0; i < 2; i++ {
		for _, p := range c.Drift[i].Available() {
			a := math.Abs(p.DriftSeconds)
			res.HonestMaxDrift = math.Max(res.HonestMaxDrift, a)
			if p.DriftSeconds > 1 {
				res.HonestInfected = true
			}
		}
		res.HonestAvailability = math.Min(res.HonestAvailability, c.Availability(i))
	}
	if f := c.FinalFCalib(2); f != 0 {
		res.CompromisedFCalibPPM = (f - simtime.NominalTSCHz) / simtime.NominalTSCHz * 1e6
	}
	res.CompromisedAvailability = c.Availability(2)
	return res, nil
}

// RunExtensionComparison runs the F- propagation scenario across all
// protocol variants — the headline Section V result: the hardened
// protocol keeps honest nodes safe where the original gets infected.
// Cancelling ctx abandons unstarted variants and returns its error.
func RunExtensionComparison(ctx context.Context, seed uint64, duration time.Duration) ([]*ExtensionResult, error) {
	variants := []Variant{VariantOriginal, VariantHardened, VariantNoChimer, VariantNoDeadline}
	tasks := make([]runner.Task[*ExtensionResult], len(variants))
	for i, v := range variants {
		v := v
		tasks[i] = runner.Task[*ExtensionResult]{
			Name: fmt.Sprintf("variant %s", v),
			Run: func(context.Context) (*ExtensionResult, error) {
				// Variants share the seed on purpose (like-for-like
				// comparison); each variant is its own simulation, so the
				// repeated sender identities share no nonce space.
				//triad:nolint:noncepart independent simulated clusters; sealed frames never cross simulations
				r, err := RunExtensionVariant(seed, v, attack.ModeFMinus, duration)
				if err != nil {
					return nil, fmt.Errorf("variant %s: %w", v, err)
				}
				return r, nil
			},
		}
	}
	return runner.Run(ctx, runner.Config{}, tasks).Values()
}

// ComparisonSummary renders the variant table.
func ComparisonSummary(results []*ExtensionResult) string {
	var b strings.Builder
	for _, r := range results {
		b.WriteString("  " + r.Summary() + "\n")
	}
	return b.String()
}

// DualMonitorRow reports one monitoring configuration's behaviour under
// the DVFS-masked TSC-scaling attack of §IV-A.1 (RQ A.1).
type DualMonitorRow struct {
	Mechanism string
	// Detected reports whether the manipulation triggered a
	// recalibration.
	Detected bool
	// FinalClockRate is the node's perceived seconds per reference
	// second at the end of the run (1.0 = honest).
	FinalClockRate float64
}

// Summary renders the row.
func (r DualMonitorRow) Summary() string {
	return fmt.Sprintf("%-22s detected=%-5v final clock rate %.4f", r.Mechanism, r.Detected, r.FinalClockRate)
}

// RunDualMonitorAblation runs the masking attack — guest TSC scaled to
// 0.8x with the monitoring core simultaneously dropped from 3500MHz to
// the discrete 2800MHz DVFS point — against an INC-only node and a
// dual-monitor (INC + memory) node.
func RunDualMonitorAblation(seed uint64) ([]DualMonitorRow, error) {
	run := func(enableMem bool) (DualMonitorRow, error) {
		c, err := NewCluster(ClusterConfig{
			Seed:  seed,
			Nodes: 1,
			// The masking attacker owns the OS: it suppresses interrupts
			// so nothing but the monitors can notice anything (and TA
			// re-anchor jumps do not pollute the rate probe).
			DisableMachineAEX: true,
			Tweak: func(_ int, cfg *core.Config) {
				cfg.EnableMemMonitor = enableMem
			},
		})
		if err != nil {
			return DualMonitorRow{}, err
		}
		detected := false
		// The cluster builder wired Calibrated; detection shows up as a
		// second calibration after the attack engages.
		c.Start()
		c.RunFor(30 * time.Second)
		calibsBefore := len(c.FCalibs[0])
		c.Platforms[0].TSC().SetScale(0.8, c.Sched.Now())
		c.Platforms[0].SetCoreFreqHz(2800e6)
		c.RunFor(60 * time.Second)
		detected = len(c.FCalibs[0]) > calibsBefore

		start, _ := c.Nodes[0].ClockReading()
		startRef := c.Sched.Now()
		c.RunFor(10 * time.Second)
		end, _ := c.Nodes[0].ClockReading()
		rate := float64(end-start) / float64(c.Sched.Now().Sub(startRef))
		name := "INC-only monitor"
		if enableMem {
			name = "INC + memory monitor"
		}
		return DualMonitorRow{Mechanism: name, Detected: detected, FinalClockRate: rate}, nil
	}
	incOnly, err := run(false)
	if err != nil {
		return nil, err
	}
	dual, err := run(true)
	if err != nil {
		return nil, err
	}
	return []DualMonitorRow{incOnly, dual}, nil
}

// GossipRow compares Time Authority reliance with and without §V's
// true-chimer gossip, under lossy conditions where taints often gather
// only a minority of peer answers.
type GossipRow struct {
	Gossip bool
	// TARefsPerNode is the mean TA reference count per node.
	TARefsPerNode float64
	// PeerUntaintsPerNode is the mean peer-recovery count per node.
	PeerUntaintsPerNode float64
	// MinAvailability is the worst node availability.
	MinAvailability float64
}

// Summary renders the row.
func (r GossipRow) Summary() string {
	return fmt.Sprintf("gossip=%-5v TA refs/node %6.1f  peer untaints/node %6.1f  min availability %6.2f%%",
		r.Gossip, r.TARefsPerNode, r.PeerUntaintsPerNode, r.MinAvailability*100)
}

// RunGossipComparison runs a lossy 5-node hardened cluster with and
// without chimer gossip: accredited peers standing in for same-moment
// majorities cut TA reliance (§V: "a majority clique of true-chimers
// may be used to maintain clock consistency and rely less often on
// the TA").
func RunGossipComparison(seed uint64, duration time.Duration) ([]GossipRow, error) {
	rows := make([]GossipRow, 0, 2)
	for _, gossip := range []bool{false, true} {
		link := defaultExperimentLink()
		link.LossProb = 0.35 // partial answers dominate recovery rounds
		c, err := NewCluster(ClusterConfig{
			Seed:     seed,
			Nodes:    5,
			Link:     &link,
			Hardened: true,
			HardenedTweak: func(_ int, rc *resilient.Config) {
				rc.EnableGossip = gossip
			},
		})
		if err != nil {
			return nil, err
		}
		for i := range c.Nodes {
			c.SetEnv(i, EnvTriadLike)
		}
		c.Start()
		c.RunFor(duration)

		row := GossipRow{Gossip: gossip, MinAvailability: 1}
		for i, n := range c.Nodes {
			row.TARefsPerNode += float64(n.TAReferences())
			row.PeerUntaintsPerNode += float64(n.PeerUntaints())
			row.MinAvailability = math.Min(row.MinAvailability, c.Availability(i))
		}
		row.TARefsPerNode /= float64(len(c.Nodes))
		row.PeerUntaintsPerNode /= float64(len(c.Nodes))
		rows = append(rows, row)
	}
	return rows, nil
}
