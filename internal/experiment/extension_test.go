package experiment

import (
	"context"
	"strings"
	"testing"
	"time"

	"triadtime/internal/attack"
)

func TestExtensionOriginalGetsInfected(t *testing.T) {
	res, err := RunExtensionVariant(11, VariantOriginal, attack.ModeFMinus, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HonestInfected {
		t.Error("original protocol should propagate the F- attack to honest nodes")
	}
	if res.CompromisedFCalibPPM > -50000 {
		t.Errorf("compromised F_calib off by %.0fppm, want ~-100000 (0.9x)", res.CompromisedFCalibPPM)
	}
}

func TestExtensionHardenedStaysSafe(t *testing.T) {
	res, err := RunExtensionVariant(11, VariantHardened, attack.ModeFMinus, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.HonestInfected {
		t.Error("hardened protocol let the F- attack propagate")
	}
	if res.HonestMaxDrift > 0.1 {
		t.Errorf("honest max drift = %vs under hardened protocol", res.HonestMaxDrift)
	}
	// Hardening may cost the compromised node availability (visible
	// DoS), but never silent rate corruption.
	if ppm := res.CompromisedFCalibPPM; ppm < -5000 || ppm > 5000 {
		t.Errorf("compromised F_calib off by %.0fppm, want bounded corruption", ppm)
	}
	// Honest nodes keep serving.
	if res.HonestAvailability < 0.95 {
		t.Errorf("honest availability = %v", res.HonestAvailability)
	}
}

func TestExtensionComparisonTable(t *testing.T) {
	results, err := RunExtensionComparison(context.Background(), 12, 4*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d rows", len(results))
	}
	byVariant := map[Variant]*ExtensionResult{}
	for _, r := range results {
		byVariant[r.Variant] = r
	}
	if !byVariant[VariantOriginal].HonestInfected {
		t.Error("original row should show infection")
	}
	if byVariant[VariantHardened].HonestInfected {
		t.Error("hardened row should be safe")
	}
	// The no-deadline ablation still has the chimer filter, so
	// propagation is still blocked.
	if byVariant[VariantNoDeadline].HonestInfected {
		t.Error("no-deadline ablation should still block propagation (chimer filter active)")
	}
	summary := ComparisonSummary(results)
	if !strings.Contains(summary, "original") || !strings.Contains(summary, "hardened") {
		t.Errorf("summary malformed:\n%s", summary)
	}
}

func TestVariantString(t *testing.T) {
	if VariantOriginal.String() != "original" || Variant(99).String() != "variant(?)" {
		t.Error("Variant.String misbehaves")
	}
}

func TestGossipReducesTAReliance(t *testing.T) {
	rows, err := RunGossipComparison(17, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	off, on := rows[0], rows[1]
	if on.TARefsPerNode >= off.TARefsPerNode {
		t.Errorf("gossip TA refs/node = %v, want < %v (the §V promise)",
			on.TARefsPerNode, off.TARefsPerNode)
	}
	if on.MinAvailability < off.MinAvailability-0.01 {
		t.Errorf("gossip availability %v worse than baseline %v", on.MinAvailability, off.MinAvailability)
	}
}
