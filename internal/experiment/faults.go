package experiment

import (
	"context"
	"fmt"
	"math"
	"time"

	"triadtime/internal/experiment/runner"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
)

// LossRow reports cluster health under one packet-loss rate.
type LossRow struct {
	LossProb float64
	// Calibrated reports whether all nodes completed calibration.
	Calibrated bool
	// MinAvailability is the worst node's serving availability.
	MinAvailability float64
	// WorstDriftPPM is the worst |F_calib error| across nodes.
	WorstDriftPPM float64
}

// Summary renders the row.
func (r LossRow) Summary() string {
	return fmt.Sprintf("loss %4.1f%%  calibrated=%-5v  min availability %7.3f%%  worst F_calib err %6.1fppm",
		r.LossProb*100, r.Calibrated, r.MinAvailability*100, r.WorstDriftPPM)
}

// RunLossResilience sweeps UDP loss rates over the fault-free
// Triad-like scenario: the protocol's request/timeout/retry machinery
// must keep the cluster calibrated and available as the network
// degrades (loss only costs retries, never correctness). Cancelling
// ctx abandons unstarted loss points and returns its error.
func RunLossResilience(ctx context.Context, seed uint64, duration time.Duration, lossProbs []float64) ([]LossRow, error) {
	if len(lossProbs) == 0 {
		lossProbs = []float64{0, 0.01, 0.05, 0.20}
	}
	tasks := make([]runner.Task[LossRow], len(lossProbs))
	for t, loss := range lossProbs {
		loss := loss
		tasks[t] = runner.Task[LossRow]{
			Name: fmt.Sprintf("loss %.0f%%", loss*100),
			Run: func(context.Context) (LossRow, error) {
				link := defaultExperimentLink()
				link.LossProb = loss
				// Streaming: the row reduces to final calibrated rates and
				// timeline availability, so no sample series is retained.
				c, err := NewCluster(ClusterConfig{Seed: seed, Link: &link, Streaming: true})
				if err != nil {
					return LossRow{}, err
				}
				for i := range c.Nodes {
					c.SetEnv(i, EnvTriadLike)
				}
				c.Start()
				c.RunFor(duration)

				row := LossRow{LossProb: loss, Calibrated: true, MinAvailability: 1}
				for i := range c.Nodes {
					f := c.FinalFCalib(i)
					if f == 0 {
						row.Calibrated = false
						continue
					}
					ppm := math.Abs(f-simtime.NominalTSCHz) / simtime.NominalTSCHz * 1e6
					row.WorstDriftPPM = math.Max(row.WorstDriftPPM, ppm)
					row.MinAvailability = math.Min(row.MinAvailability, c.Availability(i))
				}
				c.ReleaseProbes()
				return row, nil
			},
		}
	}
	return runner.Run(ctx, runner.Config{}, tasks).Values()
}

// OutageResult reports cluster behaviour across a Time Authority
// outage window.
type OutageResult struct {
	OutageStart, OutageEnd time.Duration
	// AvailabilityDuring is the worst node availability measured over
	// the outage window only.
	AvailabilityDuring float64
	// Recovered reports whether every node was serving again after the
	// authority returned.
	Recovered bool
}

// Summary renders the result.
func (r OutageResult) Summary() string {
	return fmt.Sprintf("TA outage %v..%v: worst availability during %6.2f%%, recovered=%v",
		r.OutageStart, r.OutageEnd, r.AvailabilityDuring*100, r.Recovered)
}

// taBlackhole drops every packet to or from the Time Authority while
// active.
type taBlackhole struct {
	active bool
}

func (b *taBlackhole) Process(_ simtime.Instant, p simnet.Packet) simnet.Verdict {
	return simnet.Verdict{Drop: b.active && (p.From == TAAddr || p.To == TAAddr)}
}

// RunTAOutage kills the Time Authority for [start, end) of a
// Triad-like run. While the TA is dark, nodes can still untaint from
// peers; only simultaneous machine-wide taints leave them stuck in
// RefCalib retries until the authority returns.
func RunTAOutage(seed uint64, duration, start, end time.Duration) (*OutageResult, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	for i := range c.Nodes {
		c.SetEnv(i, EnvTriadLike)
	}
	hole := &taBlackhole{}
	c.Net.AttachMiddlebox(hole)
	c.At(start, func() { hole.active = true })
	c.At(end, func() { hole.active = false })
	c.Start()
	c.RunFor(duration)

	res := &OutageResult{OutageStart: start, OutageEnd: end, AvailabilityDuring: 1, Recovered: true}
	for i := range c.Nodes {
		avail := c.Timelines[i].Availability(simtime.FromDuration(start), simtime.FromDuration(end))
		res.AvailabilityDuring = math.Min(res.AvailabilityDuring, avail)
		// Recovery: available again over the final stretch.
		tail := c.Timelines[i].Availability(simtime.FromDuration(duration-30*time.Second), simtime.FromDuration(duration))
		if tail < 0.5 {
			res.Recovered = false
		}
	}
	return res, nil
}
