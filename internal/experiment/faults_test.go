package experiment

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestLossResilienceSweep(t *testing.T) {
	rows, err := RunLossResilience(context.Background(), 31, 5*time.Minute, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Calibrated {
			t.Errorf("loss %.2f: cluster failed to calibrate", r.LossProb)
		}
		if r.WorstDriftPPM > 2000 {
			t.Errorf("loss %.2f: F_calib err %.0fppm (loss must cost retries, not accuracy)", r.LossProb, r.WorstDriftPPM)
		}
	}
	// Clean network is at least as available as 20% loss.
	if rows[0].MinAvailability < rows[3].MinAvailability-0.001 {
		t.Errorf("availability ordering broken: clean %.4f < lossy %.4f",
			rows[0].MinAvailability, rows[3].MinAvailability)
	}
	if !strings.Contains(rows[0].Summary(), "loss") {
		t.Error("summary malformed")
	}
}

func TestTAOutageRecovery(t *testing.T) {
	res, err := RunTAOutage(32, 10*time.Minute, 3*time.Minute, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Error("cluster never recovered after the outage")
	}
	// Peer untainting keeps some service alive even with the TA dark,
	// but correlated taints can pin nodes in RefCalib retries: anything
	// clearly above zero is the expected shape.
	if res.AvailabilityDuring <= 0 {
		t.Errorf("availability during outage = %v", res.AvailabilityDuring)
	}
	if !strings.Contains(res.Summary(), "recovered=true") {
		t.Errorf("summary = %q", res.Summary())
	}
}
