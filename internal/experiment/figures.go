package experiment

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"triadtime/internal/attack"
	"triadtime/internal/core"
	"triadtime/internal/experiment/runner"
	"triadtime/internal/metrics"
	"triadtime/internal/stats"
	"triadtime/internal/trace"
)

// longRunMonitorTicks enlarges the INC monitoring window for multi-hour
// simulations so event counts stay tractable (the detector's relative
// precision only improves with a longer window).
const longRunMonitorTicks = 150_000_000 // ~52ms at 2.9GHz

// FigureResult carries everything a drift/state figure needs.
type FigureResult struct {
	Name     string
	Duration time.Duration

	Drift     []*metrics.DriftSeries
	TACounts  []*metrics.CountSeries
	AEXCounts []*metrics.CountSeries
	Timelines []*metrics.StateTimeline

	// FCalib is each node's final calibrated rate (Hz).
	FCalib []float64
	// Availability is each node's serving availability over the run.
	Availability []float64
	// Counters are each node's final protocol counters, including the
	// hardening tallies (peer rejections, RTT rejections, probes) that
	// stay zero on original-protocol runs.
	Counters []metrics.CounterSnapshot
}

// DriftRate estimates node i's drift rate (s/s) over [fromSec, toSec].
func (r *FigureResult) DriftRate(i int, fromSec, toSec float64) (float64, bool) {
	return r.Drift[i].DriftRatePerSecond(fromSec, toSec)
}

// SegmentDriftPPM estimates node i's characteristic drift rate between
// clock resets (TA re-anchors and peer-untaint jumps): the median of
// consecutive-sample drift slopes. The median discards the reset
// samples as outliers, leaving the steady free-running rate — the
// quantity the paper's "~110ppm" drift rates describe, which a
// whole-run fit would wash out to ~0 against the sawtooth.
func (r *FigureResult) SegmentDriftPPM(i int) (float64, bool) {
	pts := r.Drift[i].Available()
	var rates []float64
	for j := 0; j+1 < len(pts); j++ {
		dt := pts[j+1].RefSeconds - pts[j].RefSeconds
		if dt <= 0 || dt > 5 {
			continue // unavailability gap: not a free-running stretch
		}
		rates = append(rates, math.Abs(pts[j+1].DriftSeconds-pts[j].DriftSeconds)/dt*1e6)
	}
	if len(rates) == 0 {
		return 0, false
	}
	return stats.Median(rates), true
}

// Summary renders the shape-level numbers a reader compares against the
// paper: calibrated rates, drift rates, availability.
func (r *FigureResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s simulated)\n", r.Name, r.Duration)
	for i := range r.Drift {
		rateStr := "n/a"
		if ppm, ok := r.SegmentDriftPPM(i); ok {
			rateStr = fmt.Sprintf("%.0fppm", ppm)
		}
		fmt.Fprintf(&b, "  node%d: F_calib=%s drift_rate(between resets)=%s availability=%.3f%% TA_refs=%d AEXs=%d\n",
			i+1, stats.FormatHz(r.FCalib[i]), rateStr,
			r.Availability[i]*100, r.TACounts[i].Final(), r.AEXCounts[i].Final())
	}
	return b.String()
}

// collectResult snapshots a cluster's instrumentation.
func collectResult(name string, c *Cluster, d time.Duration) *FigureResult {
	res := &FigureResult{
		Name:      name,
		Duration:  d,
		Drift:     c.Drift,
		TACounts:  c.TACounts,
		AEXCounts: c.AEXCounts,
		Timelines: c.Timelines,
		Counters:  c.CounterSnapshots(),
	}
	for i := range c.Nodes {
		res.FCalib = append(res.FCalib, c.FinalFCalib(i))
		res.Availability = append(res.Availability, c.Availability(i))
	}
	return res
}

// CDFResult carries an inter-AEX delay distribution (Figure 1).
type CDFResult struct {
	Name   string
	Gaps   []time.Duration
	Points []stats.Point // CDF curve, x in seconds
}

// Quantile reports the q-quantile of the gap distribution, in seconds.
func (r *CDFResult) Quantile(q float64) float64 {
	xs := make([]float64, len(r.Gaps))
	for i, g := range r.Gaps {
		xs[i] = g.Seconds()
	}
	return stats.NewCDF(xs).Quantile(q)
}

// Summary renders headline quantiles of the distribution.
func (r *CDFResult) Summary() string {
	return fmt.Sprintf("%s: n=%d p10=%.3fs p50=%.3fs p90=%.3fs max=%.1fs",
		r.Name, len(r.Gaps), r.Quantile(0.10), r.Quantile(0.50), r.Quantile(0.90), r.Quantile(1))
}

// RunFig1a measures the inter-AEX delay CDF of the "Triad-like"
// simulated interrupt distribution, injected on top of the residual
// machine environment (paper Figure 1a).
func RunFig1a(seed uint64, duration time.Duration) (*CDFResult, error) {
	return runAEXCDF("Fig1a Triad-like inter-AEX CDF", seed, duration, EnvTriadLike)
}

// RunFig1b measures the inter-AEX delay CDF of an isolated monitoring
// core: only residual machine-wide OS interrupts (paper Figure 1b).
func RunFig1b(seed uint64, duration time.Duration) (*CDFResult, error) {
	return runAEXCDF("Fig1b isolated-core inter-AEX CDF", seed, duration, EnvNone)
}

func runAEXCDF(name string, seed uint64, duration time.Duration, env Env) (*CDFResult, error) {
	c, err := NewCluster(ClusterConfig{
		Seed:          seed,
		Nodes:         1,
		RecordAEXGaps: true,
		MonitorTicks:  longRunMonitorTicks,
	})
	if err != nil {
		return nil, err
	}
	c.SetEnv(0, env)
	c.Start()
	c.RunFor(duration)
	gaps := c.Platforms[0].AEXGaps()
	xs := make([]float64, len(gaps))
	for i, g := range gaps {
		xs[i] = g.Seconds()
	}
	return &CDFResult{Name: name, Gaps: gaps, Points: stats.NewCDF(xs).Points()}, nil
}

// INCResult carries the §IV-A.1 INC-monitoring statistics.
type INCResult struct {
	Raw stats.Summary // all measurements
	// Clean excludes outliers (the paper removed the warm-up run and
	// one other), leaving the tight steady-state distribution.
	Clean    stats.Summary
	Outliers []float64
}

// Summary renders the table the paper reports in §IV-A.1.
func (r *INCResult) Summary() string {
	return fmt.Sprintf(
		"INC per 15e6 TSC ticks: raw mean=%.0f stddev=%.1f | outliers removed (%d): mean=%.0f stddev=%.1f range=%.0f",
		r.Raw.Mean, r.Raw.Stddev, len(r.Outliers), r.Clean.Mean, r.Clean.Stddev, r.Clean.Max-r.Clean.Min)
}

// RunINCTable reproduces the 10k-measurement INC-counting experiment:
// count monitoring-loop iterations until the TSC advances by 15e6
// ticks, at fixed core frequency (§IV-A.1).
func RunINCTable(seed uint64, n int) (*INCResult, error) {
	c, err := NewCluster(ClusterConfig{
		Seed:              seed,
		Nodes:             1,
		DisableMachineAEX: true,
		Tweak: func(_ int, cfg *core.Config) {
			cfg.DisableMonitor = true // the experiment drives INC manually
		},
	})
	if err != nil {
		return nil, err
	}
	platform := c.Platforms[0]
	counts := make([]float64, 0, n)
	var runOne func()
	runOne = func() {
		platform.StartINCCheck(15_000_000, func(count float64, interrupted bool) {
			if !interrupted {
				counts = append(counts, count)
			}
			if len(counts) < n {
				runOne()
			}
		})
	}
	runOne()
	c.Sched.RunUntilIdle()

	res := &INCResult{Raw: stats.Summarize(counts)}
	med := stats.Median(counts)
	clean := make([]float64, 0, len(counts))
	for _, x := range counts {
		if math.Abs(x-med) > 50 { // far beyond the σ≈2.9 steady state
			res.Outliers = append(res.Outliers, x)
			continue
		}
		clean = append(clean, x)
	}
	sort.Float64s(res.Outliers)
	res.Clean = stats.Summarize(clean)
	return res, nil
}

// RunFig2 reproduces the fault-free 30-minute run under Triad-like AEXs
// (Figures 2a drift and 2b TA references, plus the ≥98% availability
// row of §IV-A.2).
func RunFig2(seed uint64, duration time.Duration) (*FigureResult, error) {
	return RunFig2Traced(seed, duration, nil)
}

// RunFig2Traced is RunFig2 with an optional structured-event recorder
// attached to every node. The simulation is deterministic, so the
// recorded JSONL stream is a byte-exact fingerprint of the run — the
// oracle the parallel-runner determinism tests diff against.
func RunFig2Traced(seed uint64, duration time.Duration, rec *trace.Recorder) (*FigureResult, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed, Trace: rec})
	if err != nil {
		return nil, err
	}
	for i := range c.Nodes {
		c.SetEnv(i, EnvTriadLike)
	}
	c.Start()
	c.RunFor(duration)
	return collectResult("Fig2 fault-free, Triad-like AEXs", c, duration), nil
}

// RunFig3 reproduces the fault-free long run in the low-AEX isolated
// core environment (Figures 3a drift and 3b state timeline, plus the
// 99.9% availability row).
func RunFig3(seed uint64, duration time.Duration) (*FigureResult, error) {
	c, err := NewCluster(ClusterConfig{
		Seed:         seed,
		MonitorTicks: longRunMonitorTicks,
	})
	if err != nil {
		return nil, err
	}
	for i := range c.Nodes {
		c.SetEnv(i, EnvNone)
	}
	c.Start()
	c.RunFor(duration)
	return collectResult("Fig3 fault-free, low-AEX environment", c, duration), nil
}

// RunFig4 reproduces the F+ attack with the compromised Node 3 in the
// low-AEX environment while Nodes 1-2 experience Triad-like AEXs
// (Figure 4: Node 3 drifts at ≈ -91ms/s).
func RunFig4(seed uint64, duration time.Duration) (*FigureResult, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed, MonitorTicks: longRunMonitorTicks})
	if err != nil {
		return nil, err
	}
	c.SetEnv(0, EnvTriadLike)
	c.SetEnv(1, EnvTriadLike)
	c.SetEnv(2, EnvNone) // attacker isolates its own monitoring core
	c.Net.AttachMiddlebox(attack.NewDelay(attack.DelayConfig{
		Victim:    c.Nodes[2].Addr(),
		Authority: TAAddr,
		Mode:      attack.ModeFPlus,
	}))
	c.Start()
	c.RunFor(duration)
	return collectResult("Fig4 F+ attack on Node 3 (low-AEX)", c, duration), nil
}

// RunFig5 reproduces the F+ attack with all nodes under Triad-like
// AEXs (Figure 5: Node 3 oscillates between its peers' drift and
// ≈ -150ms).
func RunFig5(seed uint64, duration time.Duration) (*FigureResult, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	for i := range c.Nodes {
		c.SetEnv(i, EnvTriadLike)
	}
	c.Net.AttachMiddlebox(attack.NewDelay(attack.DelayConfig{
		Victim:    c.Nodes[2].Addr(),
		Authority: TAAddr,
		Mode:      attack.ModeFPlus,
	}))
	c.Start()
	c.RunFor(duration)
	return collectResult("Fig5 F+ attack on Node 3 (all Triad-like)", c, duration), nil
}

// FMinusSwitch is when Nodes 1-2 switch from the low-AEX to the
// Triad-like environment in the Figure 6 scenario (the dashed red line
// at t = 104s).
const FMinusSwitch = 104 * time.Second

// RunFig6 reproduces the F- attack and its propagation: Node 3 (fast
// clock, Triad-like AEXs) infects Nodes 1-2 once they start
// experiencing AEXs at t=104s and ask peers for timestamps
// (Figures 6a drift and 6b AEX counts).
func RunFig6(seed uint64, duration time.Duration) (*FigureResult, error) {
	return RunFig6Traced(seed, duration, nil)
}

// RunFig6Traced is RunFig6 with an optional structured-event recorder
// attached to every node (see internal/trace).
func RunFig6Traced(seed uint64, duration time.Duration, rec *trace.Recorder) (*FigureResult, error) {
	c, err := NewCluster(ClusterConfig{
		Seed:        seed,
		SampleEvery: 250 * time.Millisecond, // jumps are short-lived
		Trace:       rec,
	})
	if err != nil {
		return nil, err
	}
	c.SetEnv(0, EnvNone)
	c.SetEnv(1, EnvNone)
	c.SetEnv(2, EnvTriadLike)
	c.Net.AttachMiddlebox(attack.NewDelay(attack.DelayConfig{
		Victim:    c.Nodes[2].Addr(),
		Authority: TAAddr,
		Mode:      attack.ModeFMinus,
	}))
	c.At(FMinusSwitch, func() {
		c.SetEnv(0, EnvTriadLike)
		c.SetEnv(1, EnvTriadLike)
	})
	c.Start()
	c.RunFor(duration)
	return collectResult("Fig6 F- attack on Node 3 with propagation", c, duration), nil
}

// AvailabilityRow is one row of the §IV-A.2 availability table.
type AvailabilityRow struct {
	Scenario     string
	Duration     time.Duration
	Availability []float64
	// Counters are each node's final protocol counters for the run,
	// rendered under the availability line so hardened-variant rows
	// show their rejection/probe tallies next to the metric they
	// protect.
	Counters []metrics.CounterSnapshot
}

// Summary renders the row, with one counter line per node beneath it.
func (r AvailabilityRow) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s):", r.Scenario, r.Duration)
	for i, a := range r.Availability {
		fmt.Fprintf(&b, " node%d=%.3f%%", i+1, a*100)
	}
	for _, s := range r.Counters {
		fmt.Fprintf(&b, "\n    %s", s.Summary())
	}
	return b.String()
}

// RunHardenedAvailability runs the hardened (§V) variant through the
// fault-free Triad-like scenario so its availability — and the
// rejection/probe counters behind it — land beside the original
// protocol's rows.
func RunHardenedAvailability(seed uint64, duration time.Duration) (*FigureResult, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed, Hardened: true})
	if err != nil {
		return nil, err
	}
	for i := range c.Nodes {
		c.SetEnv(i, EnvTriadLike)
	}
	c.Start()
	c.RunFor(duration)
	return collectResult("Hardened fault-free, Triad-like AEXs", c, duration), nil
}

// runAvailabilityRow runs one availability scenario in streaming mode:
// the row reduces to timeline availability and final counters, neither
// of which needs retained sample series, so even the 8-hour low-AEX
// run costs fixed instrumentation memory. Sampling performs the same
// node reads either way, so the numbers are identical to the retained
// figure runs the table used to share.
func runAvailabilityRow(scenario string, seed uint64, d time.Duration, hardened bool, env Env, monitorTicks uint64) (AvailabilityRow, error) {
	c, err := NewCluster(ClusterConfig{
		Seed:         seed,
		Hardened:     hardened,
		MonitorTicks: monitorTicks,
		Streaming:    true,
	})
	if err != nil {
		return AvailabilityRow{}, err
	}
	for i := range c.Nodes {
		c.SetEnv(i, env)
	}
	c.Start()
	c.RunFor(d)
	row := AvailabilityRow{Scenario: scenario, Duration: d, Counters: c.CounterSnapshots()}
	for i := range c.Nodes {
		row.Availability = append(row.Availability, c.Availability(i))
	}
	c.ReleaseProbes()
	return row, nil
}

// RunAvailabilityTable reproduces §IV-A.2's availability numbers — the
// 30-minute Triad-like run (≥98% including initial calibration) and a
// long low-AEX run (up to 99.9%) — plus a hardened-variant row whose
// counters show the §V machinery (RTT rejections, probes) at work.
// Cancelling ctx abandons unstarted rows and returns its error.
func RunAvailabilityTable(ctx context.Context, seed uint64, shortRun, longRun time.Duration) ([]AvailabilityRow, error) {
	rows, err := runner.Run(ctx, runner.Config{}, []runner.Task[AvailabilityRow]{
		{Name: "availability triad-like", Run: func(context.Context) (AvailabilityRow, error) {
			return runAvailabilityRow("Triad-like AEXs", seed, shortRun, false, EnvTriadLike, 0)
		}},
		{Name: "availability low-AEX", Run: func(context.Context) (AvailabilityRow, error) {
			return runAvailabilityRow("low-AEX environment", seed+1, longRun, false, EnvNone, longRunMonitorTicks)
		}},
		{Name: "availability hardened", Run: func(context.Context) (AvailabilityRow, error) {
			return runAvailabilityRow("hardened (§V), Triad-like AEXs", seed+2, shortRun, true, EnvTriadLike, 0)
		}},
	}).Values()
	if err != nil {
		return nil, err
	}
	return rows, nil
}
