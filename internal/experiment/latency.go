package experiment

import (
	"fmt"
	"time"

	"triadtime/internal/simtime"
	"triadtime/internal/stats"
)

// LatencyResult is the client's view of a Triad node's availability:
// instead of the time-based availability of §IV-A.2, it measures what
// an application experiences — how long a TrustedNow call effectively
// takes when unavailability forces retries.
type LatencyResult struct {
	Node string
	// FirstTry is the fraction of requests served without retrying.
	FirstTry float64
	// P50, P99, Max are retry-until-success latencies. A request that
	// succeeds immediately counts as zero latency (the simulation does
	// not model in-process call cost).
	P50, P99, Max time.Duration
	// Requests is the number of client requests issued.
	Requests int
}

// Summary renders the row.
func (r LatencyResult) Summary() string {
	return fmt.Sprintf("%s: first-try %6.2f%%  retry latency p50=%v p99=%v max=%v (n=%d)",
		r.Node, r.FirstTry*100, r.P50, r.P99, r.Max, r.Requests)
}

// RunServingLatency drives a client workload against node 1 of a
// fault-free Triad-like cluster: one request per period, retrying
// every retryEvery until served.
func RunServingLatency(seed uint64, duration, period, retryEvery time.Duration) (*LatencyResult, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	for i := range c.Nodes {
		c.SetEnv(i, EnvTriadLike)
	}

	res := &LatencyResult{Node: "node1"}
	var latencies []float64
	node := c.Nodes[0]

	var issue func()
	issue = func() {
		start := c.Sched.Now()
		res.Requests++
		var attempt func()
		attempt = func() {
			if _, err := node.TrustedNow(); err == nil {
				waited := c.Sched.Now().Sub(start)
				latencies = append(latencies, float64(waited))
				if waited == 0 {
					res.FirstTry++
				}
				return
			}
			c.Sched.After(simtime.FromDuration(retryEvery), attempt)
		}
		attempt()
		c.Sched.After(simtime.FromDuration(period), issue)
	}
	// Start the workload after the cluster has had a chance to
	// calibrate once; initial-calibration latency is reported by the
	// availability table instead.
	c.Sched.At(simtime.FromDuration(10*time.Second), issue)
	c.Start()
	c.RunFor(duration)

	if res.Requests > 0 {
		res.FirstTry /= float64(res.Requests)
	}
	cdf := stats.NewCDF(latencies)
	res.P50 = time.Duration(cdf.Quantile(0.5))
	res.P99 = time.Duration(cdf.Quantile(0.99))
	res.Max = time.Duration(cdf.Quantile(1))
	return res, nil
}
