package experiment

import (
	"fmt"
	"math"
	"time"

	"triadtime/internal/simtime"
)

// LatencyResult is the client's view of a Triad node's availability:
// instead of the time-based availability of §IV-A.2, it measures what
// an application experiences — how long a TrustedNow call effectively
// takes when unavailability forces retries.
type LatencyResult struct {
	Node string
	// FirstTry is the fraction of requests served without retrying.
	FirstTry float64
	// P50, P99, Max are retry-until-success latencies. A request that
	// succeeds immediately counts as zero latency (the simulation does
	// not model in-process call cost).
	P50, P99, Max time.Duration
	// Requests is the number of client requests issued.
	Requests int
}

// Summary renders the row.
func (r LatencyResult) Summary() string {
	return fmt.Sprintf("%s: first-try %6.2f%%  retry latency p50=%v p99=%v max=%v (n=%d)",
		r.Node, r.FirstTry*100, r.P50, r.P99, r.Max, r.Requests)
}

// retryGrid accumulates retry-until-success latencies in streaming
// form. Every latency is an exact multiple of the retry interval
// (retries are scheduled at fixed offsets from the request), so a
// count per multiple loses nothing: quantiles computed from the grid
// are byte-identical to sorting the retained samples, at O(max
// retries) memory instead of O(requests).
type retryGrid struct {
	step   time.Duration
	counts []int
	n      int
}

// add records one latency of k retry steps.
func (g *retryGrid) add(k int) {
	for len(g.counts) <= k {
		g.counts = append(g.counts, 0)
	}
	g.counts[k]++
	g.n++
}

// orderStat returns the i-th (0-indexed) latency in sorted order.
func (g *retryGrid) orderStat(i int) float64 {
	cum := 0
	for k, c := range g.counts {
		cum += c
		if i < cum {
			return float64(int64(k) * int64(g.step))
		}
	}
	return 0 // unreachable for i < n
}

// quantile mirrors stats.CDF.Quantile over the grid: nearest-rank
// interpolation at pos = q·(n-1), so results match the retained-slice
// implementation exactly.
func (g *retryGrid) quantile(q float64) float64 {
	if g.n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return g.orderStat(0)
	}
	if q >= 1 {
		return g.orderStat(g.n - 1)
	}
	pos := q * float64(g.n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return g.orderStat(lo)
	}
	frac := pos - float64(lo)
	return g.orderStat(lo)*(1-frac) + g.orderStat(hi)*frac
}

// RunServingLatency drives a client workload against node 1 of a
// fault-free Triad-like cluster: one request per period, retrying
// every retryEvery until served.
func RunServingLatency(seed uint64, duration, period, retryEvery time.Duration) (*LatencyResult, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	for i := range c.Nodes {
		c.SetEnv(i, EnvTriadLike)
	}

	res := &LatencyResult{Node: "node1"}
	grid := &retryGrid{step: retryEvery}
	node := c.Nodes[0]

	var issue func()
	issue = func() {
		start := c.Sched.Now()
		res.Requests++
		var attempt func()
		attempt = func() {
			if _, err := node.TrustedNow(); err == nil {
				waited := c.Sched.Now().Sub(start)
				grid.add(int(waited / retryEvery))
				if waited == 0 {
					res.FirstTry++
				}
				return
			}
			c.Sched.After(simtime.FromDuration(retryEvery), attempt)
		}
		attempt()
		c.Sched.After(simtime.FromDuration(period), issue)
	}
	// Start the workload after the cluster has had a chance to
	// calibrate once; initial-calibration latency is reported by the
	// availability table instead.
	c.Sched.At(simtime.FromDuration(10*time.Second), issue)
	c.Start()
	c.RunFor(duration)

	if res.Requests > 0 {
		res.FirstTry /= float64(res.Requests)
	}
	res.P50 = time.Duration(grid.quantile(0.5))
	res.P99 = time.Duration(grid.quantile(0.99))
	res.Max = time.Duration(grid.quantile(1))
	return res, nil
}
