package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestServingLatency(t *testing.T) {
	res, err := RunServingLatency(71, 10*time.Minute, 50*time.Millisecond, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests < 10000 {
		t.Fatalf("requests = %d", res.Requests)
	}
	// Taints are short (peer untainting ~ RTT): nearly every request
	// succeeds first try and the tail stays in the tens of milliseconds.
	if res.FirstTry < 0.98 {
		t.Errorf("first-try fraction = %v, want >= 0.98", res.FirstTry)
	}
	if res.P50 != 0 {
		t.Errorf("p50 = %v, want 0 (immediate service)", res.P50)
	}
	if res.Max > 5*time.Second {
		t.Errorf("max retry latency = %v, suspiciously long without attacks", res.Max)
	}
	if !strings.Contains(res.Summary(), "first-try") {
		t.Error("summary malformed")
	}
}
