package experiment

import (
	"context"
	"fmt"
	"strings"
	"time"

	"triadtime/internal/experiment/runner"
	"triadtime/internal/metrics"
	"triadtime/internal/serve"
	"triadtime/internal/sim"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
	"triadtime/internal/wire"
	"triadtime/tsa"
)

// ServeAddr is the serving endpoint's address in load experiments.
const ServeAddr simnet.Addr = 150

// ClientKey is the experiments' pre-shared client-traffic key —
// deliberately distinct from ClusterKey, so client credentials cannot
// open protocol datagrams (and vice versa).
func ClientKey() []byte {
	key := make([]byte, wire.KeySize)
	for i := range key {
		key[i] = byte(0x5A ^ i)
	}
	return key
}

// LoadConfig shapes one load sweep.
type LoadConfig struct {
	// OfferedRPS are the offered-load points, requests/second across all
	// clients. Default: a sweep crossing the rig's nominal capacity.
	OfferedRPS []int
	// Clients is the number of concurrent requesters. Default 16.
	Clients int
	// Duration is the measured window per point (after warm-up).
	// Default 2s.
	Duration time.Duration
	// Shards, QueueDepth, BatchMax and Tick size the serving rig; the
	// defaults give a nominal capacity of Shards*BatchMax/Tick = 32k
	// req/s, small enough to saturate cheaply in simulation.
	Shards     int
	QueueDepth int
	BatchMax   int
	Tick       time.Duration
	// TokenEvery requests a tsa token on every Nth request (0 disables).
	// Default 4.
	TokenEvery int
}

func (c LoadConfig) withDefaults() LoadConfig {
	if len(c.OfferedRPS) == 0 {
		c.OfferedRPS = []int{4000, 8000, 16000, 24000, 32000, 48000, 64000}
	}
	if c.Clients <= 0 {
		c.Clients = 16
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 8
	}
	if c.Tick <= 0 {
		c.Tick = time.Millisecond
	}
	if c.TokenEvery == 0 {
		c.TokenEvery = 4
	}
	return c
}

// capacityRPS is the rig's nominal drain capacity.
func (c LoadConfig) capacityRPS() float64 {
	return float64(c.Shards) * float64(c.BatchMax) / c.Tick.Seconds()
}

// LoadPoint is one offered-load measurement: client-observed outcome
// counts and round-trip latency quantiles over the measured window,
// plus the server's whole-run batching counters.
type LoadPoint struct {
	OfferedRPS int
	// Client-side tallies over the measured window.
	Sent, Served, Shed, Unavailable uint64
	ServedRPS                       float64
	// Round-trip latency of served requests (client-observed).
	P50, P99 time.Duration
	// Server-side whole-run counters.
	Batches, Tokens uint64
}

// ShedFrac is the shed fraction of sent requests.
func (p LoadPoint) ShedFrac() float64 {
	if p.Sent == 0 {
		return 0
	}
	return float64(p.Shed) / float64(p.Sent)
}

// LoadResult is the throughput/latency-vs-offered-load table.
type LoadResult struct {
	Config LoadConfig
	Points []LoadPoint
}

// Summary renders the table.
func (r *LoadResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving load sweep (%d shards × batch %d / %v tick ≈ %.0f rps capacity):\n",
		r.Config.Shards, r.Config.BatchMax, r.Config.Tick, r.Config.capacityRPS())
	fmt.Fprintf(&b, "  %9s %11s %7s %9s %9s %8s %7s\n",
		"offered", "served rps", "shed%", "p50", "p99", "batches", "tokens")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %9d %11.0f %6.1f%% %9v %9v %8d %7d\n",
			p.OfferedRPS, p.ServedRPS, p.ShedFrac()*100,
			p.P50.Round(10*time.Microsecond), p.P99.Round(10*time.Microsecond),
			p.Batches, p.Tokens)
	}
	return b.String()
}

// RunLoadSweep measures the serving subsystem across offered loads on
// the deterministic simulation. Each point is an independent simulation
// (same construction, different offered rate), so points fan across the
// runner's worker pool and the table is byte-identical at any worker
// count. Past the rig's nominal capacity the bounded queues engage:
// shed share rises with offered load while served-request p99 stays
// bounded by queue depth over drain rate — the shape that distinguishes
// load shedding from collapse. Cancelling ctx abandons unstarted load
// points and returns its error.
func RunLoadSweep(ctx context.Context, seed uint64, cfg LoadConfig) (*LoadResult, error) {
	cfg = cfg.withDefaults()
	tasks := make([]runner.Task[LoadPoint], len(cfg.OfferedRPS))
	for i, offered := range cfg.OfferedRPS {
		offered := offered
		tasks[i] = runner.Task[LoadPoint]{
			Name: fmt.Sprintf("load %d rps", offered),
			Run: func(context.Context) (LoadPoint, error) {
				return runLoadPoint(seed, offered, cfg)
			},
		}
	}
	points, err := runner.Run(ctx, runner.Config{}, tasks).Values()
	if err != nil {
		return nil, err
	}
	return &LoadResult{Config: cfg, Points: points}, nil
}

// loadClient is one simulated requester sending at a fixed interval and
// tallying responses. Requests sent before the warm-up boundary are
// excluded from the tallies (their responses are recognized by seq).
type loadClient struct {
	net    *simnet.Network
	sched  *sim.Scheduler
	addr   simnet.Addr
	sealer *wire.Sealer
	opener *wire.Opener

	interval   simtime.Instant
	stopAt     simtime.Instant
	warmupSeq  uint64
	tokenEvery int

	seq     uint64
	sentAt  map[uint64]simtime.Instant
	point   *LoadPoint
	latency *metrics.Histogram
	scratch [wire.TimeRequestSize]byte
	sealBuf []byte
}

func (c *loadClient) tick() {
	now := c.sched.Now()
	if now.After(c.stopAt) {
		return
	}
	req := wire.TimeRequest{ClientID: uint64(c.addr), Seq: c.seq}
	if c.tokenEvery > 0 && c.seq%uint64(c.tokenEvery) == 0 {
		req.Flags = wire.FlagWantToken
		req.Hash[0] = byte(c.seq) // stand-in document hash
	}
	c.sentAt[c.seq] = now
	c.seq++
	req.MarshalInto(c.scratch[:])
	c.sealBuf = c.sealer.SealDatagramAppend(c.sealBuf[:0], c.scratch[:])
	c.net.Send(c.addr, ServeAddr, c.sealBuf)
	c.sched.After(c.interval, c.tick)
}

func (c *loadClient) handle(pkt simnet.Packet) {
	plain, sender, err := c.opener.OpenDatagramInto(nil, pkt.Payload)
	if err != nil || sender != uint32(ServeAddr) {
		return
	}
	resp, err := wire.UnmarshalTimeResponse(plain)
	if err != nil || resp.ClientID != uint64(c.addr) {
		return
	}
	sent, ok := c.sentAt[resp.Seq]
	if !ok {
		return
	}
	delete(c.sentAt, resp.Seq)
	if resp.Seq < c.warmupSeq {
		return // warm-up traffic: excluded from the measured window
	}
	c.point.Sent++
	switch resp.Status {
	case wire.StatusOK:
		c.point.Served++
		c.latency.Record(int64(c.sched.Now().Sub(sent)))
	case wire.StatusOverloaded:
		c.point.Shed++
	case wire.StatusUnavailable:
		c.point.Unavailable++
	}
}

// runLoadPoint measures one offered load on a fresh simulation.
func runLoadPoint(seed uint64, offered int, cfg LoadConfig) (LoadPoint, error) {
	const warmup = 250 * time.Millisecond
	const drain = 100 * time.Millisecond

	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	network := simnet.New(sched, rng.Fork(1), simnet.DefaultLink())
	clock := serve.ClockFunc(func() (int64, error) { return int64(sched.Now()), nil })
	stamper, err := tsa.New(clock, ClientKey())
	if err != nil {
		return LoadPoint{}, fmt.Errorf("experiment: %w", err)
	}
	latency := metrics.NewLatencyHistogram()
	binding, err := serve.NewSimBinding(sched, network, serve.SimConfig{
		Addr: ServeAddr,
		Key:  ClientKey(),
		Tick: cfg.Tick,
		Server: serve.Config{
			Shards:     cfg.Shards,
			QueueDepth: cfg.QueueDepth,
			BatchMax:   cfg.BatchMax,
			Clock:      clock,
			Stamper:    stamper,
		},
	})
	if err != nil {
		return LoadPoint{}, fmt.Errorf("experiment: %w", err)
	}
	binding.Start()

	point := LoadPoint{OfferedRPS: offered}
	interval := simtime.FromDuration(time.Duration(float64(time.Second) * float64(cfg.Clients) / float64(offered)))
	if interval <= 0 {
		interval = 1
	}
	stopAt := simtime.FromDuration(warmup + cfg.Duration)
	clients := make([]*loadClient, cfg.Clients)
	for i := range clients {
		addr := simnet.Addr(1000 + i)
		sealer, err := wire.NewSealer(ClientKey(), uint32(addr))
		if err != nil {
			return LoadPoint{}, fmt.Errorf("experiment: %w", err)
		}
		opener, err := wire.NewOpener(ClientKey())
		if err != nil {
			return LoadPoint{}, fmt.Errorf("experiment: %w", err)
		}
		c := &loadClient{
			net:        network,
			sched:      sched,
			addr:       addr,
			sealer:     sealer,
			opener:     opener,
			interval:   interval,
			stopAt:     stopAt,
			tokenEvery: cfg.TokenEvery,
			warmupSeq:  ^uint64(0), // exclude everything until the boundary event
			sentAt:     make(map[uint64]simtime.Instant),
			point:      &point,
			latency:    latency,
		}
		network.Register(addr, c.handle)
		clients[i] = c
		// Stagger client phases across one interval so the offered load
		// arrives spread, not in lockstep bursts.
		start := simtime.Instant(int64(interval) * int64(i) / int64(cfg.Clients))
		sched.At(start, c.tick)
	}
	// Warm-up boundary: responses to seqs sent before it are excluded.
	sched.At(simtime.FromDuration(warmup), func() {
		for _, c := range clients {
			c.warmupSeq = c.seq
		}
	})
	sched.RunUntil(stopAt.Add(drain))

	snap := latency.Snapshot()
	point.P50 = time.Duration(snap.Quantile(0.5))
	point.P99 = time.Duration(snap.Quantile(0.99))
	point.ServedRPS = float64(point.Served) / cfg.Duration.Seconds()
	counters := binding.Server().Counters()
	point.Batches = counters.Batches
	point.Tokens = counters.TokensIssued
	return point, nil
}
