package experiment

import (
	"context"
	"testing"
	"time"
)

// testLoadConfig keeps the sweep small enough for unit tests while
// still crossing the rig's nominal capacity (32k rps).
func testLoadConfig() LoadConfig {
	return LoadConfig{
		OfferedRPS: []int{8000, 64000},
		Duration:   500 * time.Millisecond,
	}
}

func TestLoadSweepAdmissionControlEngages(t *testing.T) {
	res, err := RunLoadSweep(context.Background(), 1, testLoadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points, want 2", len(res.Points))
	}
	under, over := res.Points[0], res.Points[1]

	// Under capacity: everything is served, nothing shed.
	if under.Shed != 0 || under.Unavailable != 0 {
		t.Fatalf("under capacity: shed=%d unavailable=%d, want 0/0", under.Shed, under.Unavailable)
	}
	if ratio := under.ServedRPS / float64(under.OfferedRPS); ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("under capacity served %.0f rps for offered %d", under.ServedRPS, under.OfferedRPS)
	}

	// Past saturation (2× capacity): throughput plateaus near capacity,
	// a large share is shed with explicit responses, and — the point of
	// bounded queues — served p99 stays bounded by queue depth over
	// drain rate instead of growing with offered load.
	cap := res.Config.capacityRPS()
	if over.ServedRPS < 0.9*cap || over.ServedRPS > 1.1*cap {
		t.Fatalf("past saturation served %.0f rps, want ≈ capacity %.0f", over.ServedRPS, cap)
	}
	if frac := over.ShedFrac(); frac < 0.2 {
		t.Fatalf("past saturation shed fraction %.2f, want ≥ 0.2", frac)
	}
	// Worst admissible wait: QueueDepth/BatchMax ticks, plus slack for
	// RTT and tick phase — doubled because the latency histogram's
	// power-of-two buckets resolve quantiles only to a factor of two.
	bound := 2 * time.Duration(res.Config.QueueDepth/res.Config.BatchMax+4) * res.Config.Tick
	if over.P99 > bound {
		t.Fatalf("past saturation p99 %v exceeds queue-bound %v", over.P99, bound)
	}
	if over.P99 < under.P99 {
		t.Fatalf("p99 shrank under overload: %v < %v", over.P99, under.P99)
	}
	if over.Batches == 0 || over.Tokens == 0 {
		t.Fatalf("server counters not engaged: batches=%d tokens=%d", over.Batches, over.Tokens)
	}
}

// TestLoadSweepSeedStable guards the acceptance requirement that the
// load table is reproducible byte-for-byte for a fixed seed.
func TestLoadSweepSeedStable(t *testing.T) {
	a, err := RunLoadSweep(context.Background(), 7, testLoadConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLoadSweep(context.Background(), 7, testLoadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary() != b.Summary() {
		t.Fatalf("load sweep not seed-stable:\n%s\nvs\n%s", a.Summary(), b.Summary())
	}
}
