package experiment

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"triadtime/internal/experiment/runner"
	"triadtime/internal/simtime"
	"triadtime/internal/trace"
)

// fig2Trace runs the Figure 2a scenario with a JSONL recorder attached
// and returns the recorded byte stream — the run's deterministic
// fingerprint.
func fig2Trace(seed uint64, duration time.Duration) ([]byte, error) {
	var buf bytes.Buffer
	rec := trace.NewRecorder(nil, &buf)
	if _, err := RunFig2Traced(seed, duration, rec); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// TestGoldenTraceSerialVsParallel is the golden-trace determinism
// battery: the Fig 2a scenario run serially and through the parallel
// runner must produce byte-identical JSONL traces. Two seeds run
// concurrently in the parallel pass, so any cross-run state leak
// (shared RNG, recorder, or cluster state) would corrupt at least one
// of the traces.
func TestGoldenTraceSerialVsParallel(t *testing.T) {
	const dur = 2 * time.Minute
	seeds := []uint64{7, 21}

	golden := make(map[uint64][]byte, len(seeds))
	for _, seed := range seeds {
		g, err := fig2Trace(seed, dur)
		if err != nil {
			t.Fatalf("serial seed %d: %v", seed, err)
		}
		if len(g) == 0 {
			t.Fatalf("serial seed %d recorded no events", seed)
		}
		golden[seed] = g
	}

	tasks := make([]runner.Task[[]byte], len(seeds))
	for i, seed := range seeds {
		seed := seed
		tasks[i] = runner.Task[[]byte]{
			Name: fmt.Sprintf("fig2 trace seed %d", seed),
			Run:  func(context.Context) ([]byte, error) { return fig2Trace(seed, dur) },
		}
	}
	traces, err := runner.Run(context.Background(), runner.Config{Workers: len(seeds)}, tasks).Values()
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		if !bytes.Equal(traces[i], golden[seed]) {
			t.Errorf("seed %d: parallel trace differs from serial golden (%d vs %d bytes)",
				seed, len(traces[i]), len(golden[seed]))
		}
	}
}

// monotonicViolations polls every node's TrustedNow once per 100ms of
// simulated time and counts violations of the strict-monotonicity
// serving guarantee between consecutive successful serves.
func monotonicViolations(seed uint64, duration time.Duration) (int, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed})
	if err != nil {
		return 0, err
	}
	for i := range c.Nodes {
		c.SetEnv(i, EnvTriadLike)
	}
	last := make([]int64, len(c.Nodes))
	violations := 0
	var poll func()
	poll = func() {
		for i, n := range c.Nodes {
			ts, err := n.TrustedNow()
			if err != nil {
				continue
			}
			if last[i] != 0 && ts <= last[i] {
				violations++
			}
			last[i] = ts
		}
		c.Sched.After(simtime.FromDuration(100*time.Millisecond), poll)
	}
	c.Sched.At(simtime.FromDuration(100*time.Millisecond), poll)
	c.Start()
	c.RunFor(duration)
	return violations, nil
}

// TestMonotonicServingUnderParallelRunner property-tests the
// monotonic-serving invariant for runs executed through the parallel
// runner at randomized seeds and every interesting worker count: a
// node's served timestamps must be strictly increasing regardless of
// how many sibling simulations share the process.
func TestMonotonicServingUnderParallelRunner(t *testing.T) {
	workerCounts := []int{1, 2, runtime.NumCPU()}
	prop := func(seedByte uint8) bool {
		base := uint64(seedByte)*31 + 1
		seeds := runner.Seeds(base, 3)
		for _, workers := range workerCounts {
			tasks := make([]runner.Task[int], len(seeds))
			for i, seed := range seeds {
				seed := seed
				tasks[i] = runner.Task[int]{
					Name: fmt.Sprintf("monotonic seed %d", seed),
					Run: func(context.Context) (int, error) {
						return monotonicViolations(seed, 2*time.Minute)
					},
				}
			}
			counts, err := runner.Run(context.Background(), runner.Config{Workers: workers}, tasks).Values()
			if err != nil {
				t.Logf("workers=%d: %v", workers, err)
				return false
			}
			for i, v := range counts {
				if v != 0 {
					t.Logf("workers=%d seed=%d: %d monotonicity violations", workers, seeds[i], v)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 4}
	if testing.Short() {
		cfg.MaxCount = 1
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
