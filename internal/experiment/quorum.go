package experiment

import (
	"context"
	"fmt"
	"math"
	"time"

	"triadtime/internal/authority"
	"triadtime/internal/experiment/runner"
	"triadtime/internal/metrics"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
	"triadtime/internal/trace"
)

// This file holds the multi-authority quorum fault scenarios: lying
// minorities (fixed-offset and drifting clocks), delaying authorities,
// staggered and simultaneous authority outages, and split-brain
// partitions of the authority set. Every scenario has a single-TA
// baseline so the rows show what the quorum buys.

// CorrectDriftTolerance is the drift bound under which a served
// timestamp counts as correct: wide enough for calibration noise and
// bounded holdover drift, far below the scenarios' injected lies
// (hundreds of ms).
const CorrectDriftTolerance = 50 * time.Millisecond

// QuorumRow reports one fault scenario.
type QuorumRow struct {
	Name        string
	Authorities int
	// RawAvailability is the worst node's state-based serving
	// availability (OK or Degraded) — what a client sees as uptime.
	RawAvailability float64
	// CorrectAvailability is the worst node's fraction of samples that
	// were both served and within CorrectDriftTolerance of reference
	// time. A node calibrated against a lying authority is available
	// but not correct; this is the paper-style security metric.
	CorrectAvailability float64
	// Cluster-wide counter sums.
	QuorumAccepts    int
	QuorumNoMajority int
	FalseTickers     int
	Holdovers        int
}

// Summary renders the row.
func (r QuorumRow) Summary() string {
	return fmt.Sprintf("%-26s TAs=%d  avail %7.3f%%  correct %7.3f%%  accepts=%d no_majority=%d false_tickers=%d holdovers=%d",
		r.Name, r.Authorities, r.RawAvailability*100, r.CorrectAvailability*100,
		r.QuorumAccepts, r.QuorumNoMajority, r.FalseTickers, r.Holdovers)
}

// quorumScenario scripts one cluster run: the authority set, optional
// lying clocks, and a fault hook installed before Start.
type quorumScenario struct {
	name        string
	authorities int
	minAgree    int
	clocks      func(i int, ref authority.Clock) authority.Clock
	// install wires middleboxes / scheduled faults onto the cluster.
	install func(c *Cluster)
	// noAEX runs without any interrupt injection (no Triad-like storm,
	// no machine-wide residuals). The split-brain scenario uses it: a
	// taint while every peer is in Degraded holdover strands the node in
	// RefCalib until the partition heals (Degraded peers do not vouch,
	// and neither side of the split has a quorum), so an interrupt-free
	// run is the one that isolates holdover behaviour itself. Split
	// behaviour under interrupts is covered by quorum-5ta-split-3v2,
	// where the honest majority keeps recovery available.
	noAEX bool
}

// addrFault is a middlebox dropping or delaying traffic of selected
// authority addresses while active. Address sets are tiny fixed
// arrays, keeping Process allocation-free on the hot path.
type addrFault struct {
	active bool
	drop   bool
	extra  time.Duration
	addrs  []simnet.Addr
}

func (f *addrFault) Process(_ simtime.Instant, p simnet.Packet) simnet.Verdict {
	if !f.active {
		return simnet.Verdict{}
	}
	hit := false
	for _, a := range f.addrs {
		if p.From == a || p.To == a {
			hit = true
			break
		}
	}
	if !hit {
		return simnet.Verdict{}
	}
	if f.drop {
		return simnet.Verdict{Drop: true}
	}
	return simnet.Verdict{ExtraDelay: f.extra}
}

// blackholeWindow drops an authority set's traffic during [from, to).
func blackholeWindow(c *Cluster, addrs []simnet.Addr, from, to time.Duration) {
	hole := &addrFault{drop: true, addrs: addrs}
	c.Net.AttachMiddlebox(hole)
	c.At(from, func() { hole.active = true })
	c.At(to, func() { hole.active = false })
}

// lieOffset returns a clock lying by a fixed offset.
func lieOffset(ref authority.Clock, offset time.Duration) authority.Clock {
	return func() int64 { return ref() + offset.Nanoseconds() }
}

// lieDrift returns a clock drifting from reference at ppb parts per
// billion (2e6 ppb = 2ms/s).
func lieDrift(ref authority.Clock, ppb int64) authority.Clock {
	return func() int64 {
		t := ref()
		return t + t/1e9*ppb
	}
}

// lieOffsetWindow returns a clock lying by offset only during
// [from, to) of reference time — the split-brain partition that heals.
func lieOffsetWindow(ref authority.Clock, offset, from, to time.Duration) authority.Clock {
	return func() int64 {
		t := ref()
		if t >= from.Nanoseconds() && t < to.Nanoseconds() {
			return t + offset.Nanoseconds()
		}
		return t
	}
}

// quorumScenarios is the fault suite. TA addresses are TAAddr + i; the
// liar / victim choices are fixed so runs are reproducible.
func quorumScenarios() []quorumScenario {
	const lie = 300 * time.Millisecond
	return []quorumScenario{
		{
			name:        "baseline-1ta-outage",
			authorities: 1,
			install: func(c *Cluster) {
				blackholeWindow(c, []simnet.Addr{TAAddr}, 60*time.Second, 180*time.Second)
			},
		},
		{
			name:        "quorum-3ta-1dark",
			authorities: 3,
			install: func(c *Cluster) {
				blackholeWindow(c, []simnet.Addr{TAAddr + 1}, 60*time.Second, 180*time.Second)
			},
		},
		{
			name:        "quorum-5ta-2dark",
			authorities: 5,
			install: func(c *Cluster) {
				blackholeWindow(c, []simnet.Addr{TAAddr + 3, TAAddr + 4}, 60*time.Second, 180*time.Second)
			},
		},
		{
			name:        "baseline-1ta-lying",
			authorities: 1,
			clocks: func(i int, ref authority.Clock) authority.Clock {
				return lieOffset(ref, lie)
			},
		},
		{
			name:        "quorum-3ta-lying-fixed",
			authorities: 3,
			clocks: func(i int, ref authority.Clock) authority.Clock {
				if i == 2 {
					return lieOffset(ref, lie)
				}
				return nil
			},
		},
		{
			name:        "quorum-3ta-lying-drift",
			authorities: 3,
			clocks: func(i int, ref authority.Clock) authority.Clock {
				if i == 2 {
					return lieDrift(ref, 2_000_000) // 2ms/s
				}
				return nil
			},
		},
		{
			name:        "quorum-3ta-delaying",
			authorities: 3,
			install: func(c *Cluster) {
				slow := &addrFault{active: true, extra: 50 * time.Millisecond, addrs: []simnet.Addr{TAAddr + 2}}
				c.Net.AttachMiddlebox(slow)
			},
		},
		{
			name:        "quorum-4ta-splitbrain-2v2",
			authorities: 4,
			// Two of four authorities jump +500ms during [60s, 180s): no
			// strict majority on either side, so rechecks degrade nodes to
			// holdover until the partition heals.
			clocks: func(i int, ref authority.Clock) authority.Clock {
				if i >= 2 {
					return lieOffsetWindow(ref, 500*time.Millisecond, 60*time.Second, 180*time.Second)
				}
				return nil
			},
			noAEX: true,
		},
		{
			name:        "quorum-5ta-split-3v2",
			authorities: 5,
			clocks: func(i int, ref authority.Clock) authority.Clock {
				if i >= 3 {
					return lieOffset(ref, 500*time.Millisecond)
				}
				return nil
			},
		},
		{
			name:        "quorum-3ta-staggered-dark",
			authorities: 3,
			install: func(c *Cluster) {
				blackholeWindow(c, []simnet.Addr{TAAddr + 1}, 60*time.Second, 120*time.Second)
				blackholeWindow(c, []simnet.Addr{TAAddr + 2}, 120*time.Second, 180*time.Second)
			},
		},
	}
}

// runQuorumScenario executes one scenario for duration and reduces it
// to a row. rec, when non-nil, receives the run's protocol trace (the
// golden-trace seed-stability tests diff these byte-for-byte). The
// cluster runs in streaming mode: correct-availability is accumulated
// per sampling tick by the node probes (same condition the retained
// Drift/TACounts reduction applied — served, Serving state, within
// CorrectDriftTolerance — over the same tick denominator).
func runQuorumScenario(seed uint64, duration time.Duration, sc quorumScenario, rec *trace.Recorder) (QuorumRow, error) {
	c, err := NewCluster(ClusterConfig{
		Seed:              seed,
		Authorities:       sc.authorities,
		QuorumMinAgree:    sc.minAgree,
		MonitorTicks:      longRunMonitorTicks,
		AuthorityClocks:   sc.clocks,
		DisableMachineAEX: sc.noAEX,
		Trace:             rec,
		Streaming:         true,
	})
	if err != nil {
		return QuorumRow{}, err
	}
	if !sc.noAEX {
		for i := range c.Nodes {
			c.SetEnv(i, EnvTriadLike)
		}
	}
	if sc.install != nil {
		sc.install(c)
	}
	c.Start()
	c.RunFor(duration)

	row := QuorumRow{Name: sc.name, Authorities: sc.authorities, RawAvailability: 1, CorrectAvailability: 1}
	for i := range c.Nodes {
		row.RawAvailability = math.Min(row.RawAvailability, c.Availability(i))
		row.CorrectAvailability = math.Min(row.CorrectAvailability, c.Probes[i].CorrectAvailability())
		cnt := c.Nodes[i].Counters()
		row.QuorumAccepts += cnt.QuorumAccepts
		row.QuorumNoMajority += cnt.QuorumNoMajority
		row.FalseTickers += cnt.FalseTickers
		row.Holdovers += cnt.Holdovers
	}
	c.ReleaseProbes()
	return row, nil
}

// RunQuorumFaults runs the full multi-authority fault suite: authority
// outages (single, minority, staggered), lying minorities (fixed and
// drifting), a delaying authority, and split-brain partitions — each
// against the single-TA baselines. Rows are returned in scenario
// order. Cancelling ctx abandons unstarted scenarios and returns its
// error.
func RunQuorumFaults(ctx context.Context, seed uint64, duration time.Duration) ([]QuorumRow, error) {
	if duration == 0 {
		duration = 5 * time.Minute
	}
	scenarios := quorumScenarios()
	tasks := make([]runner.Task[QuorumRow], len(scenarios))
	for t, sc := range scenarios {
		sc := sc
		tasks[t] = runner.Task[QuorumRow]{
			Name: sc.name,
			Run: func(context.Context) (QuorumRow, error) {
				return runQuorumScenario(seed, duration, sc, nil)
			},
		}
	}
	return runner.Run(ctx, runner.Config{}, tasks).Values()
}

// QuorumAttackFigure is the lying-authority attack figure: per-node
// drift series under a +300ms lying authority, for the single-TA
// baseline (the node follows the liar) and a 3-authority quorum (the
// liar is outvoted).
type QuorumAttackFigure struct {
	Baseline []*metrics.DriftSeries // 1 TA, lying
	Quorum   []*metrics.DriftSeries // 3 TAs, one lying
}

// RunQuorumAttackFigure produces the attack figure's drift series.
func RunQuorumAttackFigure(seed uint64, duration time.Duration) (*QuorumAttackFigure, error) {
	if duration == 0 {
		duration = 5 * time.Minute
	}
	run := func(authorities int, clocks func(i int, ref authority.Clock) authority.Clock) ([]*metrics.DriftSeries, error) {
		c, err := NewCluster(ClusterConfig{
			Seed:            seed,
			Authorities:     authorities,
			MonitorTicks:    longRunMonitorTicks,
			AuthorityClocks: clocks,
		})
		if err != nil {
			return nil, err
		}
		for i := range c.Nodes {
			c.SetEnv(i, EnvTriadLike)
		}
		c.Start()
		c.RunFor(duration)
		return c.Drift, nil
	}
	const lie = 300 * time.Millisecond
	baseline, err := run(1, func(i int, ref authority.Clock) authority.Clock {
		return lieOffset(ref, lie)
	})
	if err != nil {
		return nil, err
	}
	quorum, err := run(3, func(i int, ref authority.Clock) authority.Clock {
		if i == 2 {
			return lieOffset(ref, lie)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &QuorumAttackFigure{Baseline: baseline, Quorum: quorum}, nil
}
