package experiment

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"triadtime/internal/trace"
)

// quorumSuiteSeed is the suite's canonical seed: it places a
// machine-wide AEX inside the fault window, so the single-TA baseline
// visibly loses availability while the quorum variants ride it out.
const quorumSuiteSeed = 10

const quorumSuiteDuration = 5 * time.Minute

func quorumRowsByName(t *testing.T) map[string]QuorumRow {
	t.Helper()
	rows, err := RunQuorumFaults(context.Background(), quorumSuiteSeed, quorumSuiteDuration)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]QuorumRow, len(rows))
	for _, r := range rows {
		byName[r.Name] = r
	}
	return byName
}

// TestQuorumFaultSuite pins the suite's headline claims: quorum
// clusters survive minority authority outages and lying minorities
// with availability strictly above the single-TA baselines.
func TestQuorumFaultSuite(t *testing.T) {
	rows := quorumRowsByName(t)
	baseOutage := rows["baseline-1ta-outage"]
	baseLying := rows["baseline-1ta-lying"]

	// The baseline outage must actually hurt (the seed guarantees a
	// machine-wide taint while the TA is dark) and the lying baseline
	// must serve wrong time: available but never correct.
	if baseOutage.RawAvailability > 0.95 {
		t.Errorf("baseline outage availability %.3f: outage did not bite, seed no longer demonstrative", baseOutage.RawAvailability)
	}
	if baseLying.CorrectAvailability > 0.01 {
		t.Errorf("lying baseline correct availability %.3f, want ~0 (node follows the liar)", baseLying.CorrectAvailability)
	}
	if baseLying.RawAvailability < 0.9 {
		t.Errorf("lying baseline raw availability %.3f: the point is that it stays 'available' while wrong", baseLying.RawAvailability)
	}

	outageRows := []string{"quorum-3ta-1dark", "quorum-5ta-2dark", "quorum-3ta-staggered-dark"}
	for _, name := range outageRows {
		r, ok := rows[name]
		if !ok {
			t.Fatalf("missing row %q", name)
		}
		if r.RawAvailability <= baseOutage.RawAvailability {
			t.Errorf("%s availability %.4f not strictly above single-TA baseline %.4f",
				name, r.RawAvailability, baseOutage.RawAvailability)
		}
		if r.CorrectAvailability <= baseOutage.CorrectAvailability {
			t.Errorf("%s correct availability %.4f not strictly above baseline %.4f",
				name, r.CorrectAvailability, baseOutage.CorrectAvailability)
		}
	}

	attackRows := []string{"quorum-3ta-lying-fixed", "quorum-3ta-lying-drift", "quorum-3ta-delaying", "quorum-5ta-split-3v2"}
	for _, name := range attackRows {
		r, ok := rows[name]
		if !ok {
			t.Fatalf("missing row %q", name)
		}
		if r.CorrectAvailability < 0.95 {
			t.Errorf("%s correct availability %.4f, want >= 0.95 (quorum outvotes the minority)", name, r.CorrectAvailability)
		}
		if r.CorrectAvailability <= baseLying.CorrectAvailability {
			t.Errorf("%s correct availability %.4f not strictly above lying baseline %.4f",
				name, r.CorrectAvailability, baseLying.CorrectAvailability)
		}
	}

	// Lying minorities are visible in the false-ticker tally; a purely
	// delaying authority is not (the half-roundtrip interval widening
	// keeps its interval over the truth, by construction).
	for _, name := range []string{"quorum-3ta-lying-fixed", "quorum-3ta-lying-drift", "quorum-5ta-split-3v2"} {
		if rows[name].FalseTickers == 0 {
			t.Errorf("%s: no false tickers counted, liar went unnoticed", name)
		}
	}
	if ft := rows["quorum-3ta-delaying"].FalseTickers; ft != 0 {
		t.Errorf("delaying authority counted as %d false tickers, want 0", ft)
	}

	// Split-brain: no side has a majority, so nodes must degrade to
	// holdover (counted) yet keep serving, and recover after the heal.
	sb := rows["quorum-4ta-splitbrain-2v2"]
	if sb.Holdovers == 0 {
		t.Error("split-brain: no holdovers counted")
	}
	if sb.QuorumNoMajority == 0 {
		t.Error("split-brain: no failed quorum rechecks counted")
	}
	if sb.RawAvailability < 0.9 || sb.CorrectAvailability < 0.9 {
		t.Errorf("split-brain availability raw %.4f correct %.4f: holdover should keep the cluster serving",
			sb.RawAvailability, sb.CorrectAvailability)
	}

	// Every quorum scenario actually exercised quorum calibration.
	for name, r := range rows {
		if r.Authorities >= 2 && r.QuorumAccepts == 0 {
			t.Errorf("%s: no quorum accepts", name)
		}
		if r.Authorities == 1 && (r.QuorumAccepts != 0 || r.QuorumNoMajority != 0) {
			t.Errorf("%s: single-TA baseline shows quorum counters: %+v", name, r)
		}
	}
}

// TestQuorumSuiteDeterministic: the whole suite is a pure function of
// its seed.
func TestQuorumSuiteDeterministic(t *testing.T) {
	a, err := RunQuorumFaults(context.Background(), quorumSuiteSeed, quorumSuiteDuration)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunQuorumFaults(context.Background(), quorumSuiteSeed, quorumSuiteDuration)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed suite rows differ:\n%v\n%v", a, b)
	}
}

// TestQuorumScenarioGoldenTraces runs every scenario twice with a
// trace recorder attached and requires byte-identical JSONL — the
// golden-trace seed-stability gate for the quorum machinery (timer
// ordering, round bookkeeping, counter updates all feed the trace).
func TestQuorumScenarioGoldenTraces(t *testing.T) {
	for _, sc := range quorumScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			run := func() string {
				var sink strings.Builder
				rec := trace.NewRecorder(nil, &sink)
				if _, err := runQuorumScenario(quorumSuiteSeed, 2*time.Minute, sc, rec); err != nil {
					t.Fatal(err)
				}
				return sink.String()
			}
			first, second := run(), run()
			if first == "" {
				t.Fatal("empty trace")
			}
			if first != second {
				t.Error("same-seed scenario traces differ: determinism broken")
			}
			if !strings.Contains(first, `"kind":"calibrated"`) {
				t.Error("trace records no calibration")
			}
		})
	}
}

// TestQuorumAttackFigure checks the attack figure's shape: under a
// +300ms lying authority the single-TA node tracks the lie, while the
// 3-authority quorum stays on reference time.
func TestQuorumAttackFigure(t *testing.T) {
	fig, err := RunQuorumAttackFigure(quorumSuiteSeed, quorumSuiteDuration)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Baseline) == 0 || len(fig.Quorum) == 0 {
		t.Fatal("empty figure series")
	}
	for _, s := range fig.Baseline {
		pts := s.Available()
		if len(pts) == 0 {
			t.Fatalf("%s: no available samples", s.Node)
		}
		lied := 0
		for _, p := range pts {
			if math.Abs(p.DriftSeconds) > 0.25 {
				lied++
			}
		}
		if frac := float64(lied) / float64(len(pts)); frac < 0.9 {
			t.Errorf("baseline %s only %.2f of samples near the +300ms lie; figure lost its contrast", s.Node, frac)
		}
	}
	for _, s := range fig.Quorum {
		for _, p := range s.Available() {
			if math.Abs(p.DriftSeconds) > CorrectDriftTolerance.Seconds() {
				t.Errorf("quorum %s drifted %.3fs at t=%.0fs despite honest majority", s.Node, p.DriftSeconds, p.RefSeconds)
				break
			}
		}
	}
}

// TestTAOutageNoRecoveryAtRunEnd is the regression for the outage
// runner's recovery verdict: when the outage window ends exactly at
// the run's end, there is no post-outage stretch to recover in, and
// Recovered must report false (the tail window lies inside the
// outage). The seed pins a machine-wide taint during the outage so the
// cluster is genuinely down at the end.
func TestTAOutageNoRecoveryAtRunEnd(t *testing.T) {
	res, err := RunTAOutage(quorumSuiteSeed, 240*time.Second, 60*time.Second, 240*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered {
		t.Errorf("Recovered=true for an outage ending at run end: %s", res.Summary())
	}
	if res.AvailabilityDuring > 0.5 {
		t.Errorf("availability during %.3f, want the outage to bite (seed drift?)", res.AvailabilityDuring)
	}
}

// TestOutageResultSummaryFormat pins the row's rendering.
func TestOutageResultSummaryFormat(t *testing.T) {
	cases := []struct {
		res  OutageResult
		want string
	}{
		{
			OutageResult{OutageStart: time.Minute, OutageEnd: 4 * time.Minute, AvailabilityDuring: 0.3473, Recovered: false},
			"TA outage 1m0s..4m0s: worst availability during  34.73%, recovered=false",
		},
		{
			OutageResult{OutageStart: 30 * time.Second, OutageEnd: 90 * time.Second, AvailabilityDuring: 1, Recovered: true},
			"TA outage 30s..1m30s: worst availability during 100.00%, recovered=true",
		},
		{
			OutageResult{},
			"TA outage 0s..0s: worst availability during   0.00%, recovered=false",
		},
	}
	for _, c := range cases {
		if got := c.res.Summary(); got != c.want {
			t.Errorf("Summary() = %q, want %q", got, c.want)
		}
	}
}
