package runner

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Key identifies a cacheable run: a scenario description plus the
// seed. The scenario string must capture every input that affects the
// result other than the seed — figure id, durations, output options,
// and a version tag for the generating code — because the cache trusts
// it blindly: two runs with equal keys are assumed interchangeable.
type Key struct {
	Scenario string
	Seed     uint64
}

// IsZero reports whether the key is unset (caching disabled for the
// task carrying it).
func (k Key) IsZero() bool { return k == Key{} }

// filename derives the cache entry's file name: a scenario hash plus
// the seed in clear, so a cache directory stays human-navigable per
// seed while scenario changes never collide.
func (k Key) filename() string {
	h := sha256.Sum256([]byte(k.Scenario))
	return fmt.Sprintf("%x-seed%d.json", h[:12], k.Seed)
}

// Cache is an on-disk result store. Entries are JSON files written
// atomically (temp file + rename), so concurrent workers — or
// concurrent triad-sim invocations sharing a directory — never observe
// torn entries.
type Cache struct {
	dir string
	tmp atomic.Uint64 // unique temp-file suffix per process
}

// OpenCache opens (creating if needed) a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir reports the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Load decodes the entry for k into v, reporting whether a usable
// entry existed. Unreadable or corrupt entries count as misses.
func (c *Cache) Load(k Key, v any) bool {
	data, err := os.ReadFile(filepath.Join(c.dir, k.filename()))
	if err != nil {
		return false
	}
	return json.Unmarshal(data, v) == nil
}

// Store writes v as the entry for k.
func (c *Cache) Store(k Key, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runner: cache encode: %w", err)
	}
	final := filepath.Join(c.dir, k.filename())
	tmp := fmt.Sprintf("%s.tmp.%d.%d", final, os.Getpid(), c.tmp.Add(1))
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("runner: cache write: %w", err)
	}
	// The rename is for concurrent-reader atomicity, not durability:
	// entries are disposable, and Load already treats a torn or corrupt
	// file as a miss, so a crash at worst costs one recompute. fsync
	// barriers here would only slow the harness down.
	//triad:nolint:durable cache entries are disposable; Load self-heals torn files as misses
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("runner: cache commit: %w", err)
	}
	return nil
}
