// Package runner fans independent simulation runs across a worker
// pool. Every experiment in this repository is a deterministic
// discrete-event simulation with all of its state — scheduler, RNG,
// network, instrumentation — owned by the run itself, so runs
// parallelize with no shared state and no loss of reproducibility:
// results are collected by task index, never by completion order, and
// a sweep executed on one worker is byte-identical to the same sweep
// on sixteen.
//
// The pool adds the operational machinery large sweeps need:
//
//   - cancellation via context.Context (undispatched tasks report the
//     context error instead of running);
//   - per-task panic capture (a crashing seed becomes a failed Result,
//     not a dead sweep);
//   - an optional on-disk result cache keyed by (scenario hash, seed),
//     so regenerating a figure set only recomputes what changed.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Task is one independent unit of work: typically a single seeded
// simulation run.
type Task[T any] struct {
	// Name labels the task in errors and summaries ("fig2 seed 7").
	Name string
	// Key enables result caching when a Cache is configured and the key
	// is non-zero. The scenario string must capture everything that
	// affects the result besides the seed.
	Key Key
	// Run produces the task's result. It must not share mutable state
	// with other tasks; the pool calls it from an arbitrary goroutine.
	Run func(ctx context.Context) (T, error)
}

// Config parameterizes a pool invocation.
type Config struct {
	// Workers is the pool size. Values <= 0 use the package default
	// (GOMAXPROCS unless SetDefaultWorkers overrode it).
	Workers int
	// Cache, when non-nil, is consulted before and populated after each
	// task that carries a non-zero Key.
	Cache *Cache
}

// Result is one task's outcome, at its original task index.
type Result[T any] struct {
	Index int
	Name  string
	Value T
	// Err is the task's failure, the recovered panic, or the context
	// error for tasks cancelled before dispatch.
	Err error
	// Panicked marks Err as a recovered panic.
	Panicked bool
	// Skipped marks a task the pool never ran (context cancelled).
	Skipped bool
	// CacheHit marks a Value loaded from the on-disk cache.
	CacheHit bool
	// Elapsed is the task's own wall-clock time.
	Elapsed time.Duration
}

// Report is a completed pool invocation: results ordered by task
// index plus the aggregate accounting a summary line needs.
type Report[T any] struct {
	Results   []Result[T]
	Workers   int
	CacheHits int
	Failures  int
	// Wall is the whole invocation's wall-clock time; CPU is the sum of
	// per-task times. CPU/Wall is the realized speedup.
	Wall, CPU time.Duration
}

// Err returns the first failed task's error (by index), or nil.
func (r *Report[T]) Err() error {
	for i := range r.Results {
		if err := r.Results[i].Err; err != nil {
			return err
		}
	}
	return nil
}

// Values returns every task's value in task order, or the first error.
func (r *Report[T]) Values() ([]T, error) {
	if err := r.Err(); err != nil {
		return nil, err
	}
	vals := make([]T, len(r.Results))
	for i := range r.Results {
		vals[i] = r.Results[i].Value
	}
	return vals, nil
}

// Speedup is the realized parallel speedup (CPU time / wall time).
func (r *Report[T]) Speedup() float64 {
	if r.Wall <= 0 {
		return 1
	}
	return float64(r.CPU) / float64(r.Wall)
}

// Summary renders the one-line runner accounting.
func (r *Report[T]) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runner: %d runs", len(r.Results))
	if r.CacheHits > 0 {
		fmt.Fprintf(&b, " (%d cached)", r.CacheHits)
	}
	if r.Failures > 0 {
		fmt.Fprintf(&b, " (%d FAILED)", r.Failures)
	}
	fmt.Fprintf(&b, ", %d workers, wall %s, cpu %s, speedup %.1fx",
		r.Workers, r.Wall.Round(time.Millisecond), r.CPU.Round(time.Millisecond), r.Speedup())
	return b.String()
}

// defaultWorkers holds the pool size used when Config.Workers <= 0.
// Zero means GOMAXPROCS.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the pool size used when Config.Workers <= 0.
// n <= 0 restores the GOMAXPROCS default. cmd/triad-sim wires its
// -parallel flag here so nested sweeps inherit the setting.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers reports the current default pool size.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

func resolveWorkers(configured, tasks int) int {
	w := configured
	if w <= 0 {
		w = DefaultWorkers()
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes the tasks on a worker pool and returns the ordered
// report. It never returns early: cancelled tasks are reported as
// skipped with the context error, and panics inside tasks are captured
// into their Result.
func Run[T any](ctx context.Context, cfg Config, tasks []Task[T]) *Report[T] {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := resolveWorkers(cfg.Workers, len(tasks))
	rep := &Report[T]{
		Results: make([]Result[T], len(tasks)),
		Workers: workers,
	}
	start := time.Now()

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				rep.Results[i] = runOne(ctx, cfg, i, tasks[i])
			}
		}()
	}
	dispatched := len(tasks)
dispatch:
	for i := range tasks {
		select {
		case idx <- i:
		case <-ctx.Done():
			dispatched = i
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	for i := dispatched; i < len(tasks); i++ {
		rep.Results[i] = Result[T]{
			Index:   i,
			Name:    tasks[i].Name,
			Err:     fmt.Errorf("runner: task %q skipped: %w", tasks[i].Name, ctx.Err()),
			Skipped: true,
		}
	}
	rep.Wall = time.Since(start)
	for i := range rep.Results {
		rep.CPU += rep.Results[i].Elapsed
		if rep.Results[i].CacheHit {
			rep.CacheHits++
		}
		if rep.Results[i].Err != nil {
			rep.Failures++
		}
	}
	return rep
}

func runOne[T any](ctx context.Context, cfg Config, i int, t Task[T]) (res Result[T]) {
	res = Result[T]{Index: i, Name: t.Name}
	start := time.Now()
	defer func() { res.Elapsed = time.Since(start) }()
	if err := ctx.Err(); err != nil {
		res.Err = fmt.Errorf("runner: task %q skipped: %w", t.Name, err)
		res.Skipped = true
		return res
	}
	if cfg.Cache != nil && !t.Key.IsZero() {
		var v T
		if cfg.Cache.Load(t.Key, &v) {
			res.Value = v
			res.CacheHit = true
			return res
		}
	}
	defer func() {
		if p := recover(); p != nil {
			res.Panicked = true
			res.Err = fmt.Errorf("runner: task %q panicked: %v\n%s", t.Name, p, debug.Stack())
		}
	}()
	v, err := t.Run(ctx)
	// A failed task's partial value is preserved: callers rendering
	// buffered output (triad-sim) flush what the task produced before
	// it failed, matching serial behaviour.
	res.Value = v
	if err != nil {
		res.Err = err
		return res
	}
	if cfg.Cache != nil && !t.Key.IsZero() {
		// Store failures (full disk, unwritable dir) only cost future
		// cache hits; the computed result stands.
		_ = cfg.Cache.Store(t.Key, v)
	}
	return res
}

// Seeds builds the n consecutive seeds base, base+1, ... — the shape
// every seed sweep in this repository uses.
func Seeds(base uint64, n int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = base + uint64(i)
	}
	return s
}
