package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrdersResultsByIndex(t *testing.T) {
	// Tasks finish in reverse dispatch order (earlier tasks sleep
	// longer); results must still land at their task index.
	const n = 8
	tasks := make([]Task[int], n)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{
			Name: fmt.Sprintf("task%d", i),
			Run: func(context.Context) (int, error) {
				time.Sleep(time.Duration(n-i) * time.Millisecond)
				return i * i, nil
			},
		}
	}
	rep := Run(context.Background(), Config{Workers: n}, tasks)
	vals, err := rep.Values()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != i*i {
			t.Errorf("result %d = %d, want %d", i, v, i*i)
		}
	}
	if rep.Workers != n {
		t.Errorf("workers = %d, want %d", rep.Workers, n)
	}
}

func TestRunIdenticalAcrossWorkerCounts(t *testing.T) {
	build := func() []Task[uint64] {
		tasks := make([]Task[uint64], 16)
		for i := range tasks {
			seed := uint64(i) + 1
			tasks[i] = Task[uint64]{
				Name: fmt.Sprintf("seed%d", seed),
				Run: func(context.Context) (uint64, error) {
					// A run's result must depend only on its own inputs.
					return seed * 2654435761, nil
				},
			}
		}
		return tasks
	}
	var want []uint64
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		rep := Run(context.Background(), Config{Workers: workers}, build())
		got, err := rep.Values()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunCapturesPanics(t *testing.T) {
	tasks := []Task[int]{
		{Name: "ok", Run: func(context.Context) (int, error) { return 1, nil }},
		{Name: "boom", Run: func(context.Context) (int, error) { panic("seed exploded") }},
		{Name: "also-ok", Run: func(context.Context) (int, error) { return 3, nil }},
	}
	rep := Run(context.Background(), Config{Workers: 2}, tasks)
	if rep.Failures != 1 {
		t.Fatalf("failures = %d, want 1", rep.Failures)
	}
	r := rep.Results[1]
	if !r.Panicked || r.Err == nil || !strings.Contains(r.Err.Error(), "seed exploded") {
		t.Errorf("panic not captured: %+v", r)
	}
	// The healthy runs still completed.
	if rep.Results[0].Value != 1 || rep.Results[2].Value != 3 {
		t.Errorf("healthy results lost: %+v", rep.Results)
	}
	if _, err := rep.Values(); err == nil {
		t.Error("Values() hid the failure")
	}
}

func TestRunTaskError(t *testing.T) {
	sentinel := errors.New("bad seed")
	tasks := []Task[int]{
		{Name: "fails", Run: func(context.Context) (int, error) { return 0, sentinel }},
	}
	rep := Run(context.Background(), Config{Workers: 1}, tasks)
	if !errors.Is(rep.Err(), sentinel) {
		t.Errorf("Err() = %v, want %v", rep.Err(), sentinel)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	release := make(chan struct{})
	tasks := make([]Task[int], 6)
	for i := range tasks {
		tasks[i] = Task[int]{
			Name: fmt.Sprintf("task%d", i),
			Run: func(context.Context) (int, error) {
				started.Add(1)
				<-release
				return 0, nil
			},
		}
	}
	done := make(chan *Report[int])
	go func() { done <- Run(ctx, Config{Workers: 2}, tasks) }()
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	rep := <-done

	skipped := 0
	for _, r := range rep.Results {
		if r.Skipped {
			skipped++
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("skipped task error = %v, want context.Canceled", r.Err)
			}
		}
	}
	if skipped == 0 {
		t.Error("no task was skipped after cancellation")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	type payload struct {
		Rows []float64
		Note string
	}
	var computes atomic.Int32
	build := func() []Task[payload] {
		tasks := make([]Task[payload], 4)
		for i := range tasks {
			seed := uint64(i) + 1
			tasks[i] = Task[payload]{
				Name: fmt.Sprintf("seed%d", seed),
				Key:  Key{Scenario: "unit|v1", Seed: seed},
				Run: func(context.Context) (payload, error) {
					computes.Add(1)
					return payload{Rows: []float64{float64(seed), 2}, Note: "fresh"}, nil
				},
			}
		}
		return tasks
	}

	first := Run(context.Background(), Config{Workers: 2, Cache: cache}, build())
	if first.CacheHits != 0 || computes.Load() != 4 {
		t.Fatalf("cold run: hits=%d computes=%d", first.CacheHits, computes.Load())
	}
	second := Run(context.Background(), Config{Workers: 2, Cache: cache}, build())
	if second.CacheHits != 4 || computes.Load() != 4 {
		t.Fatalf("warm run: hits=%d computes=%d", second.CacheHits, computes.Load())
	}
	want, _ := first.Values()
	got, err := second.Values()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Note != want[i].Note || len(got[i].Rows) != len(want[i].Rows) || got[i].Rows[0] != want[i].Rows[0] {
			t.Errorf("cached value %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// A different scenario must miss: the key's scenario hash separates
	// entries even for the same seed.
	third := Run(context.Background(), Config{Workers: 2, Cache: cache}, func() []Task[payload] {
		tasks := build()
		for i := range tasks {
			tasks[i].Key.Scenario = "unit|v2"
		}
		return tasks
	}())
	if third.CacheHits != 0 {
		t.Errorf("scenario change still hit the cache (%d hits)", third.CacheHits)
	}
}

func TestCacheIgnoresCorruptEntries(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Scenario: "corrupt", Seed: 1}
	if err := cache.Store(k, 42); err != nil {
		t.Fatal(err)
	}
	var v int
	if !cache.Load(k, &v) || v != 42 {
		t.Fatalf("load = %v, want 42", v)
	}
	// An entry whose JSON does not decode into the caller's type must
	// count as a miss, not an error.
	if err := cache.Store(Key{Scenario: "corrupt2", Seed: 1}, "not-an-int"); err != nil {
		t.Fatal(err)
	}
	var w int
	if cache.Load(Key{Scenario: "corrupt2", Seed: 1}, &w) {
		t.Error("type-mismatched entry loaded as hit")
	}
}

func TestSeeds(t *testing.T) {
	s := Seeds(10, 3)
	if len(s) != 3 || s[0] != 10 || s[2] != 12 {
		t.Errorf("Seeds(10,3) = %v", s)
	}
}

func TestSummaryShape(t *testing.T) {
	rep := Run(context.Background(), Config{Workers: 2}, []Task[int]{
		{Name: "a", Run: func(context.Context) (int, error) { return 0, nil }},
		{Name: "b", Run: func(context.Context) (int, error) { return 0, nil }},
	})
	s := rep.Summary()
	if !strings.Contains(s, "2 runs") || !strings.Contains(s, "workers") || !strings.Contains(s, "speedup") {
		t.Errorf("summary malformed: %q", s)
	}
}

func TestSetDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(3)
	if DefaultWorkers() != 3 {
		t.Errorf("DefaultWorkers = %d, want 3", DefaultWorkers())
	}
	SetDefaultWorkers(0)
	if DefaultWorkers() != runtime.GOMAXPROCS(0) {
		t.Errorf("DefaultWorkers = %d, want GOMAXPROCS", DefaultWorkers())
	}
}
