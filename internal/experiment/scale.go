package experiment

import (
	"context"
	"fmt"
	"math"
	"time"

	"triadtime/internal/attack"
	"triadtime/internal/experiment/runner"
	"triadtime/internal/simnet"
)

// Churn schedule for the scale sweeps: churned honest nodes go dark
// for churnDark each, staggered churnGap apart from churnStart, so
// windows are deterministic and non-overlapping at small sizes while
// overlapping progressively in large clusters.
const (
	churnStart = 60 * time.Second
	churnGap   = 20 * time.Second
	churnDark  = 15 * time.Second
)

// ScaleRow reports one cluster size's behaviour under the F-
// propagation scenario (all nodes under Triad-like AEXs, one
// compromised). Larger clusters give a tainted node more honest donors
// — but the adopt-the-highest policy means a single fast clock still
// wins every race it answers first, so infection persists at scale.
type ScaleRow struct {
	Nodes int
	// InfectedHonest counts honest nodes that skipped > 1s forward.
	InfectedHonest int
	// FirstInfection is when the first honest node skipped (0 if none).
	FirstInfection time.Duration
	// MinAvailability is the worst availability across honest nodes.
	MinAvailability float64
	// TARefsPerNode is the mean TA reference count across honest nodes
	// (peer redundancy should keep it low at every size).
	TARefsPerNode float64
}

// Summary renders the row.
func (r ScaleRow) Summary() string {
	first := "-"
	if r.FirstInfection > 0 {
		first = r.FirstInfection.Round(time.Second).String()
	}
	return fmt.Sprintf("n=%2d  infected honest %2d/%2d  first infection %-6s  min honest avail %6.2f%%  TA refs/node %.1f",
		r.Nodes, r.InfectedHonest, r.Nodes-1, first, r.MinAvailability*100, r.TARefsPerNode)
}

// RunClusterScale sweeps cluster sizes through the F- scenario with
// node N compromised and everyone under Triad-like AEXs from the
// start. churn is the fraction of honest nodes that additionally cycle
// offline mid-run (0 = none, the paper-style fault-free sweep): each
// churned node's traffic is blackholed for churnDark on a staggered
// deterministic schedule. Each size is an independent streaming-mode
// simulation; the sweep fans across the runner's worker pool with rows
// collected in size order. Cancelling ctx abandons unstarted sizes and
// returns its error.
func RunClusterScale(ctx context.Context, seed uint64, sizes []int, churn float64, duration time.Duration) ([]ScaleRow, error) {
	if len(sizes) == 0 {
		sizes = []int{3, 5, 7, 9}
	}
	tasks := make([]runner.Task[ScaleRow], len(sizes))
	for t, n := range sizes {
		n := n
		tasks[t] = runner.Task[ScaleRow]{
			Name: fmt.Sprintf("cluster scale n=%d", n),
			Run: func(context.Context) (ScaleRow, error) {
				return runClusterScaleOne(seed, n, churn, duration)
			},
		}
	}
	return runner.Run(ctx, runner.Config{}, tasks).Values()
}

// scheduleChurn installs staggered blackhole windows over the first
// round(churn·honest) honest nodes. Exposed to the topology driver,
// which churns region members with the same schedule.
func scheduleChurn(c *Cluster, churn float64, honest int) {
	k := int(math.Round(churn * float64(honest)))
	for j := 0; j < k; j++ {
		from := churnStart + time.Duration(j)*churnGap
		blackholeWindow(c, []simnet.Addr{c.Nodes[j].Addr()}, from, from+churnDark)
	}
}

// runClusterScaleOne measures one cluster size under the F- scenario.
// The cluster runs in streaming mode: infection detection and
// availability reduce per-tick into the node probes, so memory stays
// fixed per node no matter how long or large the run.
func runClusterScaleOne(seed uint64, n int, churn float64, duration time.Duration) (ScaleRow, error) {
	c, err := NewCluster(ClusterConfig{Seed: seed, Nodes: n, Streaming: true})
	if err != nil {
		return ScaleRow{}, err
	}
	for i := range c.Nodes {
		c.SetEnv(i, EnvTriadLike)
	}
	compromised := n - 1
	c.Net.AttachMiddlebox(attack.NewDelay(attack.DelayConfig{
		Victim:    c.Nodes[compromised].Addr(),
		Authority: TAAddr,
		Mode:      attack.ModeFMinus,
	}))
	scheduleChurn(c, churn, n-1)
	c.Start()
	c.RunFor(duration)

	row := ScaleRow{Nodes: n, MinAvailability: 1}
	var taSum float64
	for i := 0; i < n-1; i++ {
		if p := c.Probes[i]; p.Infected {
			row.InfectedHonest++
			at := p.FirstInfection()
			if row.FirstInfection == 0 || at < row.FirstInfection {
				row.FirstInfection = at
			}
		}
		row.MinAvailability = math.Min(row.MinAvailability, c.Availability(i))
		taSum += float64(c.Nodes[i].TAReferences())
	}
	row.TARefsPerNode = taSum / float64(n-1)
	c.ReleaseProbes()
	return row, nil
}
