package experiment

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestClusterScaleInfectionPersists(t *testing.T) {
	rows, err := RunClusterScale(context.Background(), 41, []int{3, 5, 7}, 0, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The single fast clock drags most of the cluster at any size:
		// the adopt-the-highest policy has no majority dampening.
		if r.InfectedHonest == 0 {
			t.Errorf("n=%d: no honest node infected — propagation should persist at scale", r.Nodes)
		}
		if r.MinAvailability < 0.95 {
			t.Errorf("n=%d: min availability %v", r.Nodes, r.MinAvailability)
		}
		if !strings.Contains(r.Summary(), "infected honest") {
			t.Error("summary malformed")
		}
	}
}

func TestClusterScaleChurnDeterminism(t *testing.T) {
	// Same seed, same churn fraction: byte-identical rows at different
	// worker interleavings (each size is an independent simulation, so
	// the runner's scheduling cannot leak into results).
	run := func() string {
		rows, err := RunClusterScale(context.Background(), 17, []int{3, 5}, 0.5, 4*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, r := range rows {
			fmt.Fprintln(&b, r.Summary())
		}
		return b.String()
	}
	a := run()
	if b := run(); a != b {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
	// Churn must actually dent availability relative to the fault-free
	// sweep (half the honest nodes go dark for 15s each).
	noChurn, err := RunClusterScale(context.Background(), 17, []int{5}, 0, 4*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	churned, err := RunClusterScale(context.Background(), 17, []int{5}, 0.5, 4*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if churned[0].MinAvailability >= noChurn[0].MinAvailability {
		t.Errorf("churn did not reduce min availability: %v >= %v",
			churned[0].MinAvailability, noChurn[0].MinAvailability)
	}
}

func testTopologyConfig(seed uint64) TopologyConfig {
	return TopologyConfig{
		Seed:           seed,
		Partitions:     2,
		Regions:        3,
		NodesPerRegion: 3,
		Duration:       2 * time.Minute,
		Churn:          0.25,
		IsolateRegion:  0,
		IsolateFrom:    60 * time.Second,
		IsolateTo:      90 * time.Second,
	}
}

func TestTopologyPartitionDeterminism(t *testing.T) {
	// The partitioned topology must be reproducible byte for byte: same
	// seed, same CSV rows and summary, independent of the worker pool's
	// interleaving (partitions share no state).
	run := func() (string, string) {
		res, err := RunTopology(context.Background(), testTopologyConfig(7))
		if err != nil {
			t.Fatal(err)
		}
		var csv strings.Builder
		if err := res.WritePartitionsCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return res.Summary(), csv.String()
	}
	sumA, csvA := run()
	sumB, csvB := run()
	if sumA != sumB {
		t.Fatalf("summary diverged:\n%s\nvs\n%s", sumA, sumB)
	}
	if csvA != csvB {
		t.Fatalf("partition CSV diverged:\n%s\nvs\n%s", csvA, csvB)
	}
}

func TestTopologyIsolationForcesHoldover(t *testing.T) {
	res, err := RunTopology(context.Background(), testTopologyConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 18 {
		t.Fatalf("nodes = %d", res.Nodes)
	}
	if res.Calibrated != res.Nodes {
		t.Errorf("calibrated %d/%d nodes", res.Calibrated, res.Nodes)
	}
	// Region 0's nodes lose 2 of 3 authorities for 30s: quorum must
	// enter holdover rather than serve a minority view.
	if res.Holdovers == 0 {
		t.Error("region isolation produced no holdovers")
	}
	if res.MinAvailability <= 0 || res.MinAvailability >= 1 {
		t.Errorf("min availability = %v, want in (0,1) under isolation+churn", res.MinAvailability)
	}
	if res.WorstCorrect <= 0 || res.WorstCorrect >= 1 {
		t.Errorf("worst correct = %v, want in (0,1) under isolation+churn", res.WorstCorrect)
	}
	if res.Rollup.Samples != res.Nodes*int(testTopologyConfig(7).Duration/time.Second) {
		t.Errorf("rollup samples = %d", res.Rollup.Samples)
	}
	if q50, q99 := res.Rollup.Drift.Quantile(0.5), res.Rollup.Drift.Quantile(0.99); !(q50 <= q99) {
		t.Errorf("drift quantiles not monotone: p50=%v p99=%v", q50, q99)
	}
}

func TestTopologyCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunTopology(ctx, testTopologyConfig(7)); err == nil {
		t.Fatal("cancelled context did not propagate an error")
	}
}
