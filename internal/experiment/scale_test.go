package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestClusterScaleInfectionPersists(t *testing.T) {
	rows, err := RunClusterScale(41, []int{3, 5, 7}, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The single fast clock drags most of the cluster at any size:
		// the adopt-the-highest policy has no majority dampening.
		if r.InfectedHonest == 0 {
			t.Errorf("n=%d: no honest node infected — propagation should persist at scale", r.Nodes)
		}
		if r.MinAvailability < 0.95 {
			t.Errorf("n=%d: min availability %v", r.Nodes, r.MinAvailability)
		}
		if !strings.Contains(r.Summary(), "infected honest") {
			t.Error("summary malformed")
		}
	}
}
