package experiment

import (
	"math"
	"sync"
	"time"

	"triadtime/internal/core"
	"triadtime/internal/stats"
)

// This file holds the streaming instrumentation behind
// ClusterConfig.Streaming: fixed-memory per-node probes that replace
// the retained DriftSeries/CountSeries sample slices. A probe folds
// each sampling tick into counters, a quantile sketch, and online
// moments, so a node's whole run costs ~8KB regardless of duration —
// the memory model that makes thousand-node sweeps tractable. Probes
// are pooled: partition-parallel drivers recycle them across the many
// short-lived clusters a sweep builds.

// NodeProbe accumulates one node's sampling ticks in fixed memory.
// The counters mirror the retained-series reductions byte for byte:
// Samples matches len(CountSeries.Points), Correct the
// correctAvailability numerator, Infected/FirstInfectedRef the scale
// sweep's first-serving-sample-beyond-threshold detection.
type NodeProbe struct {
	// Samples counts sampling ticks; Served those with a clock reading.
	Samples int
	Served  int
	// Correct counts served ticks in a Serving state within CorrectTol
	// of reference time (the quorum suite's security metric).
	Correct int
	// Infected latches on the first serving tick whose signed drift
	// exceeds InfectTol; FirstInfectedRef is that tick's reference time
	// in seconds (the F- propagation detector).
	Infected         bool
	FirstInfectedRef float64
	// MaxAbsDrift is the worst served |drift| seen, in seconds.
	MaxAbsDrift float64
	// Drift sketches the served drift distribution (quantiles/CDF);
	// Moments tracks its exact mean and variance.
	Drift   stats.Sketch
	Moments stats.Welford

	// CorrectTol and InfectTol are thresholds in seconds, fixed at
	// acquisition.
	CorrectTol float64
	InfectTol  float64
}

// Observe folds one sampling tick into the probe. ok reports whether
// the node produced a clock reading this tick; driftSec is its signed
// offset from reference time in seconds (ignored when !ok).
//
//triad:hotpath
func (p *NodeProbe) Observe(refSec, driftSec float64, state core.State, ok bool) {
	p.Samples++
	if !ok {
		return
	}
	p.Served++
	abs := math.Abs(driftSec)
	if abs > p.MaxAbsDrift {
		p.MaxAbsDrift = abs
	}
	if state.Serving() {
		if abs <= p.CorrectTol {
			p.Correct++
		}
		if driftSec > p.InfectTol && !p.Infected {
			p.Infected = true
			p.FirstInfectedRef = refSec
		}
	}
	p.Drift.Add(driftSec)
	p.Moments.Add(driftSec)
}

// CorrectAvailability is the fraction of sampling ticks served
// correctly — the streaming counterpart of the retained-series
// correctAvailability reduction.
func (p *NodeProbe) CorrectAvailability() float64 {
	if p.Samples == 0 {
		return 0
	}
	return float64(p.Correct) / float64(p.Samples)
}

// FirstInfection converts the latched infection tick to a duration
// from simulation start (0 if never infected).
func (p *NodeProbe) FirstInfection() time.Duration {
	if !p.Infected {
		return 0
	}
	return time.Duration(p.FirstInfectedRef * float64(time.Second))
}

// Merge folds another probe's ticks into this one (sketch merge is
// exact), aggregating per-node probes into region or cluster rollups.
func (p *NodeProbe) Merge(o *NodeProbe) {
	p.Samples += o.Samples
	p.Served += o.Served
	p.Correct += o.Correct
	if o.Infected && (!p.Infected || o.FirstInfectedRef < p.FirstInfectedRef) {
		p.Infected = true
		p.FirstInfectedRef = o.FirstInfectedRef
	}
	if o.MaxAbsDrift > p.MaxAbsDrift {
		p.MaxAbsDrift = o.MaxAbsDrift
	}
	p.Drift.Merge(&o.Drift)
	p.Moments.Merge(o.Moments)
}

// probePool recycles NodeProbes across the short-lived clusters a
// sweep builds; a probe is ~8KB of bucket arrays, worth reusing when a
// thousand-node sweep churns through thousands of them.
var probePool = sync.Pool{New: func() any { return new(NodeProbe) }}

// AcquireProbe returns a reset probe with the given thresholds (in
// seconds). Release it when its numbers have been read out.
func AcquireProbe(correctTol, infectTol float64) *NodeProbe {
	p := probePool.Get().(*NodeProbe)
	p.Reset()
	p.CorrectTol = correctTol
	p.InfectTol = infectTol
	return p
}

// ReleaseProbe returns a probe to the pool. The probe must not be used
// afterwards.
func ReleaseProbe(p *NodeProbe) { probePool.Put(p) }

// Reset clears all accumulated state and thresholds.
func (p *NodeProbe) Reset() { *p = NodeProbe{} }
