package experiment

import (
	"math"
	"testing"
	"time"

	"triadtime/internal/core"
)

func TestProbeObserveMirrorsRetainedReductions(t *testing.T) {
	p := AcquireProbe(CorrectDriftTolerance.Seconds(), 1.0)
	defer ReleaseProbe(p)
	// Tick 1: no reading.
	p.Observe(1, 0, core.StateFullCalib, false)
	// Tick 2: served, serving, correct.
	p.Observe(2, 0.001, core.StateOK, true)
	// Tick 3: served, serving, incorrect but not infected (negative).
	p.Observe(3, -0.9, core.StateOK, true)
	// Tick 4: served but tainted — neither correct nor infectable.
	p.Observe(4, 5.0, core.StateTainted, true)
	// Tick 5: served, serving, infected.
	p.Observe(5, 2.5, core.StateOK, true)
	// Tick 6: infected again — the first latch must win.
	p.Observe(6, 3.5, core.StateOK, true)

	if p.Samples != 6 || p.Served != 5 || p.Correct != 1 {
		t.Fatalf("samples/served/correct = %d/%d/%d, want 6/5/1", p.Samples, p.Served, p.Correct)
	}
	if !p.Infected || p.FirstInfection() != 5*time.Second {
		t.Fatalf("infection = %v at %v, want latched at 5s", p.Infected, p.FirstInfection())
	}
	if p.MaxAbsDrift != 5.0 {
		t.Fatalf("max |drift| = %v, want 5.0", p.MaxAbsDrift)
	}
	if got := p.CorrectAvailability(); got != 1.0/6 {
		t.Fatalf("correct availability = %v, want 1/6", got)
	}
	if p.Drift.N() != 5 || p.Moments.N() != 5 {
		t.Fatalf("sketch/moments n = %d/%d, want 5 served ticks", p.Drift.N(), p.Moments.N())
	}
}

func TestProbeMergeAggregates(t *testing.T) {
	a := AcquireProbe(0.05, 1.0)
	b := AcquireProbe(0.05, 1.0)
	defer ReleaseProbe(a)
	defer ReleaseProbe(b)
	a.Observe(1, 0.01, core.StateOK, true)
	a.Observe(2, 3.0, core.StateOK, true) // infected at 2s
	b.Observe(1, 0.02, core.StateOK, true)
	b.Observe(2, 2.0, core.StateOK, true) // infected at 2s too
	b.FirstInfectedRef = 1.5              // earlier latch must win the merge

	a.Merge(b)
	if a.Samples != 4 || a.Served != 4 || a.Correct != 2 {
		t.Fatalf("merged samples/served/correct = %d/%d/%d", a.Samples, a.Served, a.Correct)
	}
	if !a.Infected || a.FirstInfectedRef != 1.5 {
		t.Fatalf("merged infection ref = %v, want the earlier 1.5", a.FirstInfectedRef)
	}
	if a.MaxAbsDrift != 3.0 {
		t.Fatalf("merged max |drift| = %v", a.MaxAbsDrift)
	}
	if a.Drift.N() != 4 {
		t.Fatalf("merged sketch n = %d", a.Drift.N())
	}
	if mean := a.Moments.Mean(); math.Abs(mean-(0.01+3.0+0.02+2.0)/4) > 1e-12 {
		t.Fatalf("merged mean = %v", mean)
	}
}

// TestProbeObserveZeroAllocSteadyState is the fixed-memory gate behind
// the thousand-node mode: folding a sampling tick into a probe must
// never allocate, so a streaming run's footprint is set by node count
// alone, not by how long it runs.
func TestProbeObserveZeroAllocSteadyState(t *testing.T) {
	p := AcquireProbe(0.05, 1.0)
	defer ReleaseProbe(p)
	p.Observe(0, 0.001, core.StateOK, true)
	allocs := testing.AllocsPerRun(1000, func() {
		p.Observe(1, 0.002, core.StateOK, true)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per tick, want 0", allocs)
	}
}
