package experiment

import (
	"context"
	"fmt"
	"math"
	"time"

	"triadtime/internal/attack"
	"triadtime/internal/experiment/runner"
	"triadtime/internal/simtime"
	"triadtime/internal/stats"
)

// SweepResult aggregates the fault-free scenario's headline quantities
// across independent seeds — the reproduction's error bars.
type SweepResult struct {
	Seeds int
	// Availability statistics across all nodes and seeds.
	Availability stats.Summary
	// FCalibErrPPM is |F_calib − F_TSC| in ppm across all nodes/seeds.
	FCalibErrPPM stats.Summary
	// SegmentDriftPPM is the between-resets drift rate across nodes.
	SegmentDriftPPM stats.Summary
}

// Summary renders the table.
func (r *SweepResult) Summary() string {
	return fmt.Sprintf(
		"seed sweep (n=%d runs):\n"+
			"  availability      mean %7.3f%%  min %7.3f%%\n"+
			"  F_calib error     mean %7.1fppm  max %7.1fppm\n"+
			"  drift rate        mean %7.1fppm  max %7.1fppm",
		r.Seeds,
		r.Availability.Mean*100, r.Availability.Min*100,
		r.FCalibErrPPM.Mean, r.FCalibErrPPM.Max,
		r.SegmentDriftPPM.Mean, r.SegmentDriftPPM.Max)
}

// RunSeedSweep repeats the Figure 2 scenario across seeds and
// aggregates: the paper's qualitative claims should hold for every
// seed, not one lucky draw. The seeds are independent simulations, so
// they fan across the runner's worker pool; aggregation happens in
// seed order afterwards, keeping the result bit-identical to a serial
// sweep at any worker count. Cancelling ctx abandons unstarted seeds
// and returns its error.
func RunSeedSweep(ctx context.Context, baseSeed uint64, seeds int, duration time.Duration) (*SweepResult, error) {
	if seeds <= 0 {
		seeds = 5
	}
	tasks := make([]runner.Task[*FigureResult], seeds)
	for s, seed := range runner.Seeds(baseSeed, seeds) {
		seed := seed
		tasks[s] = runner.Task[*FigureResult]{
			Name: fmt.Sprintf("fig2 seed %d", seed),
			Run: func(context.Context) (*FigureResult, error) {
				res, err := RunFig2(seed, duration)
				if err != nil {
					return nil, fmt.Errorf("seed %d: %w", seed, err)
				}
				return res, nil
			},
		}
	}
	results, err := runner.Run(ctx, runner.Config{}, tasks).Values()
	if err != nil {
		return nil, err
	}
	var avail, ferr, drift stats.Welford
	for _, res := range results {
		for i := range res.FCalib {
			avail.Add(res.Availability[i])
			ferr.Add(math.Abs(res.FCalib[i]-simtime.NominalTSCHz) / simtime.NominalTSCHz * 1e6)
			if ppm, ok := res.SegmentDriftPPM(i); ok {
				drift.Add(ppm)
			}
		}
	}
	return &SweepResult{
		Seeds:           seeds,
		Availability:    avail.Snapshot(),
		FCalibErrPPM:    ferr.Snapshot(),
		SegmentDriftPPM: drift.Snapshot(),
	}, nil
}

// AttackLatencyRow contrasts client-visible service under the F-
// attack for both protocol variants: the original keeps "serving"
// (corrupted time, high availability), the hardened one turns the
// attack into visible unavailability on the compromised node while
// honest nodes keep serving honestly.
type AttackLatencyRow struct {
	Variant Variant
	// HonestFirstTry is the honest nodes' immediate-success fraction.
	HonestFirstTry float64
	// CompromisedFirstTry is the compromised node's.
	CompromisedFirstTry float64
}

// Summary renders the row.
func (r AttackLatencyRow) Summary() string {
	return fmt.Sprintf("%-10s honest first-try %6.2f%%  compromised first-try %6.2f%%",
		r.Variant, r.HonestFirstTry*100, r.CompromisedFirstTry*100)
}

// RunAttackLatency measures request success rates under the Figure 6
// F- scenario for the original and hardened protocols. The two variant
// runs are independent simulations and execute on the worker pool.
// Cancelling ctx abandons unstarted variants and returns its error.
func RunAttackLatency(ctx context.Context, seed uint64, duration time.Duration) ([]AttackLatencyRow, error) {
	variants := []Variant{VariantOriginal, VariantHardened}
	tasks := make([]runner.Task[AttackLatencyRow], len(variants))
	for i, v := range variants {
		v := v
		tasks[i] = runner.Task[AttackLatencyRow]{
			Name: fmt.Sprintf("attack latency %s", v),
			Run: func(context.Context) (AttackLatencyRow, error) {
				// Both variants reuse the seed for a like-for-like
				// comparison; the clusters are separate simulations.
				//triad:nolint:noncepart independent simulated clusters; sealed frames never cross simulations
				c, err := buildVariantCluster(seed, v, attack.ModeFMinus)
				if err != nil {
					return AttackLatencyRow{}, err
				}
				honest := probeCounts{}
				compromised := probeCounts{}
				var poll func()
				poll = func() {
					for i, n := range c.Nodes {
						_, err := n.TrustedNow()
						tgt := &honest
						if i == 2 {
							tgt = &compromised
						}
						tgt.total++
						if err == nil {
							tgt.ok++
						}
					}
					c.Sched.After(simtime.FromDuration(100*time.Millisecond), poll)
				}
				c.Sched.At(simtime.FromDuration(30*time.Second), poll)
				c.Start()
				c.RunFor(duration)
				return AttackLatencyRow{
					Variant:             v,
					HonestFirstTry:      honest.frac(),
					CompromisedFirstTry: compromised.frac(),
				}, nil
			},
		}
	}
	return runner.Run(ctx, runner.Config{}, tasks).Values()
}

type probeCounts struct {
	ok, total int
}

func (p probeCounts) frac() float64 {
	if p.total == 0 {
		return 0
	}
	return float64(p.ok) / float64(p.total)
}
