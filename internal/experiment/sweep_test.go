package experiment

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestSeedSweepStability(t *testing.T) {
	res, err := RunSeedSweep(context.Background(), 100, 4, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds != 4 {
		t.Fatalf("seeds = %d", res.Seeds)
	}
	// The paper's qualitative claims hold for every seed: the minimum
	// is the load-bearing statistic.
	if res.Availability.Min < 0.97 {
		t.Errorf("worst-seed availability = %v", res.Availability.Min)
	}
	if res.FCalibErrPPM.Max > 1000 {
		t.Errorf("worst-seed F_calib error = %vppm", res.FCalibErrPPM.Max)
	}
	if !strings.Contains(res.Summary(), "seed sweep") {
		t.Error("summary malformed")
	}
}

func TestAttackLatencyContrast(t *testing.T) {
	rows, err := RunAttackLatency(context.Background(), 9, 4*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	orig, hard := rows[0], rows[1]
	// The original protocol's compromised node keeps "serving"
	// (corrupted) time at high availability...
	if orig.CompromisedFirstTry < 0.9 {
		t.Errorf("original compromised first-try = %v, want high (silent corruption)", orig.CompromisedFirstTry)
	}
	// ...the hardened one's attack surface turns into visible
	// unavailability instead.
	if hard.CompromisedFirstTry > 0.5 {
		t.Errorf("hardened compromised first-try = %v, want low (visible DoS)", hard.CompromisedFirstTry)
	}
	// Honest nodes serve well under both.
	if orig.HonestFirstTry < 0.9 || hard.HonestFirstTry < 0.9 {
		t.Errorf("honest first-try = %v / %v", orig.HonestFirstTry, hard.HonestFirstTry)
	}
}
