package experiment

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"triadtime/internal/experiment/runner"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
)

// This file is the thousand-node topology driver: it builds
// region-structured clusters (per-region Time Authorities, an
// asymmetric inter-region WAN delay matrix, staggered churn, and a
// region-isolation partition window), fans independent partitions
// across the worker pool, and merges the partitions' streaming probes
// into one rollup. Memory stays fixed per node — each probe is ~8KB of
// sketch buckets — so the driver's footprint is bounded by
// workers × nodes-per-partition live probes, not by run length or
// total node count.

// TopologyConfig parameterizes a partitioned region-structured sweep.
// Total nodes = Partitions × Regions × NodesPerRegion; each partition
// is an independent deterministic simulation (its own scheduler, RNG
// and network), so partitions parallelize with no shared state and the
// merged result is identical at any worker count.
type TopologyConfig struct {
	// Seed drives partition p with Seed+p; same seed, same rollup.
	Seed uint64
	// Partitions is the number of independent cluster simulations.
	Partitions int
	// Regions is the number of regions per partition. Each region hosts
	// its own Time Authority (Authorities = Regions), so nodes run
	// quorum calibration across the WAN.
	Regions int
	// NodesPerRegion is the node count per region.
	NodesPerRegion int
	// Duration is the simulated time per partition.
	Duration time.Duration
	// Churn is the fraction of each partition's nodes that cycle
	// offline mid-run on the staggered deterministic schedule shared
	// with RunClusterScale.
	Churn float64
	// WANBase and WANStep shape the asymmetric inter-region delay
	// matrix: traffic from region i to region j rides a link with base
	// delay WANBase + (i·Regions+j)·WANStep, so no two directed region
	// pairs share a delay and every pair is asymmetric. Defaults: 20ms
	// base, 5ms step. Intra-region traffic keeps the LAN default link.
	WANBase time.Duration
	WANStep time.Duration
	// IsolateRegion is cut off from the rest of the partition during
	// [IsolateFrom, IsolateTo): all traffic crossing its boundary is
	// dropped, leaving its nodes with only their local authority — a
	// minority, so quorum calibration must ride the window out in
	// holdover. A zero-length window disables isolation.
	IsolateRegion int
	IsolateFrom   time.Duration
	IsolateTo     time.Duration
}

// DefaultScale1K is the scale1k figure's configuration: 20 partitions
// of 5 regions × 10 nodes = 1000 nodes, 10% churn, and a 60s isolation
// of region 0 in every partition.
func DefaultScale1K(seed uint64) TopologyConfig {
	return TopologyConfig{
		Seed:           seed,
		Partitions:     20,
		Regions:        5,
		NodesPerRegion: 10,
		Duration:       3 * time.Minute,
		Churn:          0.1,
		IsolateRegion:  0,
		IsolateFrom:    90 * time.Second,
		IsolateTo:      150 * time.Second,
	}
}

// withDefaults fills the WAN matrix defaults.
func (cfg TopologyConfig) withDefaults() TopologyConfig {
	if cfg.WANBase == 0 {
		cfg.WANBase = 20 * time.Millisecond
	}
	if cfg.WANStep == 0 {
		cfg.WANStep = 5 * time.Millisecond
	}
	return cfg
}

// nodes returns the per-partition node count.
func (cfg TopologyConfig) nodes() int { return cfg.Regions * cfg.NodesPerRegion }

// regionOf maps an address to its region: node addresses 1..N are laid
// out region-major, authority i lives in region i.
func (cfg *TopologyConfig) regionOf(a simnet.Addr) int {
	if a >= TAAddr {
		return int(a - TAAddr)
	}
	return (int(a) - 1) / cfg.NodesPerRegion
}

// linkFor is the partition's LinkPolicy: intra-region pairs fall
// through to the LAN default, inter-region pairs ride the asymmetric
// WAN matrix. Computing the link from region coordinates at send time
// keeps the topology O(regions) instead of O(n²) per-pair links.
//
//triad:hotpath
func (cfg *TopologyConfig) linkFor(from, to simnet.Addr) (simnet.Link, bool) {
	rf, rt := cfg.regionOf(from), cfg.regionOf(to)
	if rf == rt {
		return simnet.Link{}, false
	}
	return simnet.Link{
		Base:        cfg.WANBase + time.Duration(rf*cfg.Regions+rt)*cfg.WANStep,
		JitterSigma: 1.0,
		JitterScale: 200 * time.Microsecond,
	}, true
}

// regionIsolation is the partition-window middlebox: while active it
// drops every packet crossing the isolated region's boundary.
type regionIsolation struct {
	cfg    *TopologyConfig
	region int
	active bool
}

//triad:hotpath
func (m *regionIsolation) Process(_ simtime.Instant, pkt simnet.Packet) simnet.Verdict {
	if !m.active {
		return simnet.Verdict{}
	}
	crosses := (m.cfg.regionOf(pkt.From) == m.region) != (m.cfg.regionOf(pkt.To) == m.region)
	return simnet.Verdict{Drop: crosses}
}

// PartitionStats is one partition's reduction: a merged probe rollup
// over all its nodes plus the availability/calibration/quorum counters
// the summary reports.
type PartitionStats struct {
	Partition int
	// Rollup merges every node's streaming probe. It is a value copy,
	// not a pooled pointer: the pooled probes go back to the pool
	// before the partition returns.
	Rollup NodeProbe
	// MinAvailability is the worst per-node raw availability;
	// WorstCorrect the worst per-node correct-availability.
	MinAvailability float64
	WorstCorrect    float64
	// Calibrated counts nodes that completed at least one calibration.
	Calibrated int
	// Holdovers and NoMajority sum the partition's quorum counters; the
	// isolation window must show up here (isolated nodes see only 1 of
	// Regions authorities — no majority — and hold over).
	Holdovers  int
	NoMajority int
}

// TopologyResult is the merged outcome of a partitioned topology run.
type TopologyResult struct {
	Config     TopologyConfig
	Partitions []PartitionStats
	// Rollup merges every partition's rollup: the drift sketch and
	// moments over all Nodes nodes.
	Rollup NodeProbe
	// Nodes is the total node count across partitions.
	Nodes int
	// MinAvailability / WorstCorrect are the worst per-node values
	// anywhere in the topology; Calibrated, Holdovers and NoMajority
	// sum across partitions.
	MinAvailability float64
	WorstCorrect    float64
	Calibrated      int
	Holdovers       int
	NoMajority      int
}

// RunTopology executes every partition as an independent streaming
// cluster, fanned across the runner's worker pool, and merges the
// results. Cancelling ctx abandons unstarted partitions and returns
// its error.
func RunTopology(ctx context.Context, cfg TopologyConfig) (*TopologyResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Partitions <= 0 || cfg.Regions <= 0 || cfg.NodesPerRegion <= 0 {
		return nil, fmt.Errorf("topology: partitions, regions and nodes-per-region must be positive")
	}
	tasks := make([]runner.Task[PartitionStats], cfg.Partitions)
	for p := 0; p < cfg.Partitions; p++ {
		p := p
		tasks[p] = runner.Task[PartitionStats]{
			Name: fmt.Sprintf("topology partition %d", p),
			Run: func(context.Context) (PartitionStats, error) {
				return runTopologyPartition(cfg, p)
			},
		}
	}
	parts, err := runner.Run(ctx, runner.Config{}, tasks).Values()
	if err != nil {
		return nil, err
	}
	res := &TopologyResult{
		Config:          cfg,
		Partitions:      parts,
		Nodes:           cfg.Partitions * cfg.nodes(),
		MinAvailability: 1,
		WorstCorrect:    1,
	}
	for i := range parts {
		st := &parts[i]
		res.Rollup.Merge(&st.Rollup)
		res.MinAvailability = math.Min(res.MinAvailability, st.MinAvailability)
		res.WorstCorrect = math.Min(res.WorstCorrect, st.WorstCorrect)
		res.Calibrated += st.Calibrated
		res.Holdovers += st.Holdovers
		res.NoMajority += st.NoMajority
	}
	return res, nil
}

// runTopologyPartition builds and runs one partition's cluster: a
// region-structured quorum cluster under Triad-like AEXs with WAN
// links, churn, and the isolation window, reduced through pooled
// streaming probes.
func runTopologyPartition(cfg TopologyConfig, part int) (PartitionStats, error) {
	n := cfg.nodes()
	c, err := NewCluster(ClusterConfig{
		Seed:         cfg.Seed + uint64(part),
		Nodes:        n,
		Authorities:  cfg.Regions,
		MonitorTicks: longRunMonitorTicks,
		Streaming:    true,
	})
	if err != nil {
		return PartitionStats{}, err
	}
	c.Net.SetLinkPolicy(cfg.linkFor)
	for i := range c.Nodes {
		c.SetEnv(i, EnvTriadLike)
	}
	scheduleChurn(c, cfg.Churn, n)
	if cfg.IsolateTo > cfg.IsolateFrom {
		iso := &regionIsolation{cfg: &cfg, region: cfg.IsolateRegion}
		c.Net.AttachMiddlebox(iso)
		c.At(cfg.IsolateFrom, func() { iso.active = true })
		c.At(cfg.IsolateTo, func() { iso.active = false })
	}
	c.Start()
	c.RunFor(cfg.Duration)

	st := PartitionStats{Partition: part, MinAvailability: 1, WorstCorrect: 1}
	for i := range c.Nodes {
		p := c.Probes[i]
		st.Rollup.Merge(p)
		st.MinAvailability = math.Min(st.MinAvailability, c.Availability(i))
		st.WorstCorrect = math.Min(st.WorstCorrect, p.CorrectAvailability())
		if c.FinalFCalib(i) != 0 {
			st.Calibrated++
		}
		cnt := c.Nodes[i].Counters()
		st.Holdovers += cnt.Holdovers
		st.NoMajority += cnt.QuorumNoMajority
	}
	c.ReleaseProbes()
	return st, nil
}

// Summary renders the merged result.
func (r *TopologyResult) Summary() string {
	cfg := r.Config
	return fmt.Sprintf(
		"%d partitions x %d regions x %d nodes = %d nodes, %s simulated, churn %.0f%%\n"+
			"  worst availability %.2f%%  worst correct %.2f%%  calibrated %d/%d\n"+
			"  drift p50 %.3gms  p99 %.3gms  max %.3gms  (served %d/%d samples)\n"+
			"  holdovers %d  quorum no-majority %d\n",
		cfg.Partitions, cfg.Regions, cfg.NodesPerRegion, r.Nodes,
		cfg.Duration, cfg.Churn*100,
		r.MinAvailability*100, r.WorstCorrect*100, r.Calibrated, r.Nodes,
		r.Rollup.Drift.Quantile(0.50)*1e3, r.Rollup.Drift.Quantile(0.99)*1e3,
		r.Rollup.MaxAbsDrift*1e3, r.Rollup.Served, r.Rollup.Samples,
		r.Holdovers, r.NoMajority)
}

// WritePartitionsCSV emits one row per partition.
func (r *TopologyResult) WritePartitionsCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "partition,nodes,samples,served,min_availability,worst_correct,calibrated,drift_p50_s,drift_p99_s,max_abs_drift_s,holdovers,quorum_no_majority"); err != nil {
		return err
	}
	for _, st := range r.Partitions {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%.6f,%.6f,%d,%.9f,%.9f,%.9f,%d,%d\n",
			st.Partition, r.Config.nodes(), st.Rollup.Samples, st.Rollup.Served,
			st.MinAvailability, st.WorstCorrect, st.Calibrated,
			st.Rollup.Drift.Quantile(0.50), st.Rollup.Drift.Quantile(0.99),
			st.Rollup.MaxAbsDrift, st.Holdovers, st.NoMajority); err != nil {
			return err
		}
	}
	return nil
}
