package marzullo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntersectEmptyAndInvalidInputs(t *testing.T) {
	cases := [][]Interval{
		nil,
		{},
		{{Lo: 5, Hi: 3}},
		{{Lo: 1, Hi: 0}, {Lo: math.MaxInt64, Hi: math.MinInt64}},
	}
	for _, ivs := range cases {
		best, count := Intersect(ivs)
		if count != 0 || best != (Interval{}) {
			t.Errorf("Intersect(%v) = (%v, %d), want zero result", ivs, best, count)
		}
		if chimers := TrueChimers(ivs); chimers != nil {
			t.Errorf("TrueChimers(%v) = %v, want nil", ivs, chimers)
		}
		if _, ok := MajorityAgrees(ivs, len(ivs)); ok {
			t.Errorf("MajorityAgrees(%v) agreed with no valid interval", ivs)
		}
	}
}

func TestIntersectSingleInterval(t *testing.T) {
	for _, iv := range []Interval{
		{Lo: 10, Hi: 20},
		{Lo: -3, Hi: -3}, // single point
		{Lo: math.MinInt64, Hi: math.MaxInt64},
	} {
		best, count := Intersect([]Interval{iv})
		if count != 1 || best != iv {
			t.Errorf("Intersect([%v]) = (%v, %d), want the interval itself, count 1", iv, best, count)
		}
	}
}

func TestIntersectAllDisjoint(t *testing.T) {
	ivs := []Interval{{Lo: 30, Hi: 40}, {Lo: 0, Hi: 10}, {Lo: 15, Hi: 25}}
	best, count := Intersect(ivs)
	if count != 1 {
		t.Fatalf("disjoint intervals: count = %d, want 1", count)
	}
	// Ties resolve toward the earliest interval in sweep order.
	if best.Lo != 0 {
		t.Errorf("disjoint tie broke to Lo=%d, want earliest (0)", best.Lo)
	}
}

func TestIntersectTouchingEndpointChain(t *testing.T) {
	// Closed intervals: sharing exactly one point counts as overlap.
	ivs := []Interval{{Lo: 0, Hi: 10}, {Lo: 10, Hi: 20}}
	best, count := Intersect(ivs)
	if count != 2 {
		t.Fatalf("touching endpoints: count = %d, want 2", count)
	}
	if best != (Interval{Lo: 10, Hi: 10}) {
		t.Errorf("touching endpoints: best = %v, want the shared point [10,10]", best)
	}
	if mid := best.Midpoint(); mid != 10 {
		t.Errorf("point-interval midpoint = %d, want 10", mid)
	}

	// A three-way chain touching at both seams still peaks at 2.
	ivs = append(ivs, Interval{Lo: 20, Hi: 30})
	if _, count = Intersect(ivs); count != 2 {
		t.Errorf("chained touching intervals: count = %d, want 2", count)
	}
}

func TestIntersectInt64Extremes(t *testing.T) {
	full := Interval{Lo: math.MinInt64, Hi: math.MaxInt64}
	hiHalf := Interval{Lo: 0, Hi: math.MaxInt64}
	best, count := Intersect([]Interval{full, hiHalf})
	if count != 2 || best != hiHalf {
		t.Errorf("extreme overlap: (%v, %d), want (%v, 2)", best, count, hiHalf)
	}

	loEdge := Interval{Lo: math.MinInt64, Hi: math.MinInt64}
	hiEdge := Interval{Lo: math.MaxInt64, Hi: math.MaxInt64}
	if _, count := Intersect([]Interval{loEdge, hiEdge}); count != 1 {
		t.Errorf("disjoint extremes: count = %d, want 1", count)
	}
	if !full.Overlaps(loEdge) || !full.Overlaps(hiEdge) {
		t.Error("full-range interval must overlap both extreme points")
	}
}

func TestMidpointOverflowAdjacent(t *testing.T) {
	cases := []struct {
		iv   Interval
		want int64
	}{
		{Interval{Lo: math.MinInt64, Hi: math.MaxInt64}, -1}, // true midpoint -0.5, rounded toward Lo
		{Interval{Lo: math.MinInt64, Hi: 0}, -(1 << 62)},
		{Interval{Lo: 0, Hi: math.MaxInt64}, math.MaxInt64 / 2},
		{Interval{Lo: math.MaxInt64 - 4, Hi: math.MaxInt64}, math.MaxInt64 - 2},
		{Interval{Lo: math.MinInt64, Hi: math.MinInt64 + 4}, math.MinInt64 + 2},
		{Interval{Lo: math.MaxInt64, Hi: math.MaxInt64}, math.MaxInt64},
		{Interval{Lo: math.MinInt64, Hi: math.MinInt64}, math.MinInt64},
		{Interval{Lo: -7, Hi: 8}, 0},
	}
	for _, c := range cases {
		if got := c.iv.Midpoint(); got != c.want {
			t.Errorf("Midpoint(%v) = %d, want %d", c.iv, got, c.want)
		}
	}
}

// TestMidpointProperty checks, over random intervals spanning the whole
// int64 range, that the midpoint lies inside the interval and splits it
// evenly (the two halves differ by at most one).
func TestMidpointProperty(t *testing.T) {
	prop := func(a, b int64) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		iv := Interval{Lo: lo, Hi: hi}
		mid := iv.Midpoint()
		if !iv.Contains(mid) {
			return false
		}
		left := uint64(mid) - uint64(lo)  // distances fit in uint64 even
		right := uint64(hi) - uint64(mid) // when the width overflows int64
		return right-left <= 1 && right >= left
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestIntersectMatchesOracleProperty cross-checks the sweep line against
// the O(n²) oracle over random interval sets (the non-fuzz twin of
// FuzzMarzulloIntersect, so `go test` alone exercises the oracle).
func TestIntersectMatchesOracleProperty(t *testing.T) {
	prop := func(raw [][2]int64) bool {
		intervals := make([]Interval, len(raw))
		for i, r := range raw {
			intervals[i] = Interval{Lo: r[0], Hi: r[1]}
		}
		// Mix in some overlap-prone small intervals so the random wide
		// spread doesn't dominate.
		for i := range intervals {
			if i%2 == 0 {
				intervals[i].Lo %= 100
				intervals[i].Hi = intervals[i].Lo + (intervals[i].Hi%100+100)%100
			}
		}
		_, count := Intersect(intervals)
		return count == bruteIntersect(intervals)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
