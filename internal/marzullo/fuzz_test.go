package marzullo

import (
	"encoding/binary"
	"math"
	"testing"
)

// bruteIntersect is the O(n²) oracle the fuzz targets and property
// tests check the sweep line against: the maximum overlap count is
// achieved at some interval's Lo endpoint, so scanning every endpoint
// against every interval finds it.
func bruteIntersect(intervals []Interval) int {
	best := 0
	for _, cand := range intervals {
		if !cand.Valid() {
			continue
		}
		n := 0
		for _, iv := range intervals {
			if iv.Valid() && iv.Contains(cand.Lo) {
				n++
			}
		}
		if n > best {
			best = n
		}
	}
	return best
}

// coverage counts the valid intervals containing t.
func coverage(intervals []Interval, t int64) int {
	n := 0
	for _, iv := range intervals {
		if iv.Valid() && iv.Contains(t) {
			n++
		}
	}
	return n
}

// decodeIntervals turns fuzz bytes into intervals, 16 bytes each. No
// normalization: invalid (Lo > Hi) intervals are part of the input
// space both implementations must ignore.
func decodeIntervals(data []byte) []Interval {
	const maxIntervals = 24
	var out []Interval
	for len(data) >= 16 && len(out) < maxIntervals {
		out = append(out, Interval{
			Lo: int64(binary.LittleEndian.Uint64(data[0:8])),
			Hi: int64(binary.LittleEndian.Uint64(data[8:16])),
		})
		data = data[16:]
	}
	return out
}

// reversed returns a reversed copy (a cheap deterministic permutation).
func reversed(intervals []Interval) []Interval {
	out := make([]Interval, len(intervals))
	for i, iv := range intervals {
		out[len(intervals)-1-i] = iv
	}
	return out
}

func seedCorpus(f *testing.F) {
	enc := func(ivs ...int64) []byte {
		b := make([]byte, 8*len(ivs))
		for i, v := range ivs {
			binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
		}
		return b
	}
	f.Add([]byte{})
	f.Add(enc(0, 10, 5, 15, 12, 20))                                       // chained overlaps
	f.Add(enc(0, 10, 10, 20))                                              // touching endpoints
	f.Add(enc(5, 3, 0, 1))                                                 // invalid + valid
	f.Add(enc(math.MinInt64, math.MaxInt64, 0, math.MaxInt64))             // extremes
	f.Add(enc(math.MinInt64, math.MinInt64, math.MaxInt64, math.MaxInt64)) // degenerate extremes
}

func FuzzMarzulloIntersect(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		intervals := decodeIntervals(data)
		best, count := Intersect(intervals)

		want := bruteIntersect(intervals)
		if count != want {
			t.Fatalf("Intersect count = %d, oracle = %d (intervals %v)", count, want, intervals)
		}
		if count == 0 {
			if best != (Interval{}) {
				t.Fatalf("no-coverage result must be the zero interval, got %v", best)
			}
			return
		}
		if !best.Valid() {
			t.Fatalf("Intersect returned invalid interval %v with count %d", best, count)
		}
		// The reported interval must actually be covered that many times
		// at its start.
		if got := coverage(intervals, best.Lo); got != count {
			t.Fatalf("coverage at best.Lo=%d is %d, want %d (intervals %v)", best.Lo, got, count, intervals)
		}
		// Permutation invariance: the sweep depends only on the edge
		// multiset.
		permBest, permCount := Intersect(reversed(intervals))
		if permBest != best || permCount != count {
			t.Fatalf("permutation changed result: (%v,%d) vs (%v,%d)", best, count, permBest, permCount)
		}
	})
}

func FuzzMajorityAgrees(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		intervals := decodeIntervals(data)
		n := len(intervals)
		best, ok := MajorityAgrees(intervals, n)

		oracleCount := bruteIntersect(intervals)
		if want := oracleCount*2 > n; ok != want {
			t.Fatalf("MajorityAgrees(n=%d) = %v, oracle count %d wants %v", n, ok, oracleCount, want)
		}
		wantBest, _ := Intersect(intervals)
		if best != wantBest {
			t.Fatalf("MajorityAgrees interval %v differs from Intersect %v", best, wantBest)
		}
		if ok {
			mid := best.Midpoint()
			if !best.Contains(mid) {
				t.Fatalf("midpoint %d outside agreed interval %v", mid, best)
			}
			if got := coverage(intervals, mid); got*2 <= n {
				t.Fatalf("midpoint %d covered by %d of %d clocks: not a majority point", mid, got, n)
			}
		}
	})
}
