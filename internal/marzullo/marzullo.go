// Package marzullo implements Marzullo's interval-intersection
// algorithm (Marzullo & Owicki, 1983), the classic building block of
// clock-selection in NTP-style synchronization.
//
// Given per-clock confidence intervals t_i ± e_i, the algorithm finds
// the interval covered by the largest number of clocks. Clocks whose
// intervals contain that intersection are "true-chimers"; the rest are
// "false-tickers". The paper's Section V proposes exactly this to stop
// a compromised fast clock from dragging honest Triad nodes: a peer
// timestamp is only trusted if it is consistent with a majority clique
// of clocks.
package marzullo

import "sort"

// Interval is one clock's confidence interval [Lo, Hi] (inclusive), in
// nanoseconds of reference time.
type Interval struct {
	Lo, Hi int64
}

// Valid reports whether the interval is non-empty.
func (iv Interval) Valid() bool { return iv.Lo <= iv.Hi }

// Contains reports whether t lies in the interval.
func (iv Interval) Contains(t int64) bool { return iv.Lo <= t && t <= iv.Hi }

// Overlaps reports whether two intervals share at least one point.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// Midpoint returns the interval's midpoint (the consensus timestamp a
// caller typically adopts), rounded toward Lo.
func (iv Interval) Midpoint() int64 {
	// Average without overflow: the width Hi-Lo can exceed MaxInt64
	// (e.g. Lo near MinInt64, Hi near MaxInt64), but it always fits in
	// a uint64, and adding half of it back to Lo wraps modulo 2^64
	// straight to the right two's-complement answer.
	return int64(uint64(iv.Lo) + (uint64(iv.Hi)-uint64(iv.Lo))/2)
}

// Intersect finds the interval covered by the maximum number of input
// intervals and that count. Invalid (empty) intervals are ignored. With
// no valid inputs it returns count 0.
//
// Ties are resolved toward the earliest such interval, matching the
// original algorithm's sweep order.
func Intersect(intervals []Interval) (Interval, int) {
	type edge struct {
		at    int64
		delta int // +1 = interval opens, -1 = interval closes (after at)
	}
	edges := make([]edge, 0, 2*len(intervals))
	for _, iv := range intervals {
		if !iv.Valid() {
			continue
		}
		edges = append(edges, edge{at: iv.Lo, delta: +1}, edge{at: iv.Hi, delta: -1})
	}
	if len(edges) == 0 {
		return Interval{}, 0
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		// Opens before closes at the same point: intervals are closed,
		// so touching endpoints count as overlap.
		return edges[i].delta > edges[j].delta
	})
	best, bestCount := Interval{}, 0
	count := 0
	for i, e := range edges {
		count += e.delta
		if count > bestCount {
			bestCount = count
			best.Lo = e.at
			// The region of this coverage extends to the next edge.
			if i+1 < len(edges) {
				best.Hi = edges[i+1].at
			} else {
				best.Hi = e.at
			}
		}
	}
	return best, bestCount
}

// TrueChimers returns the indices of the intervals consistent with the
// best intersection (those that overlap it). With no valid inputs it
// returns nil.
func TrueChimers(intervals []Interval) []int {
	best, count := Intersect(intervals)
	if count == 0 {
		return nil
	}
	var out []int
	for i, iv := range intervals {
		if iv.Valid() && iv.Overlaps(best) {
			out = append(out, i)
		}
	}
	return out
}

// MajorityAgrees reports whether the best intersection is supported by
// a strict majority of the n clocks submitted (the honest-majority
// assumption of Section V).
func MajorityAgrees(intervals []Interval, n int) (Interval, bool) {
	best, count := Intersect(intervals)
	return best, count*2 > n
}
