package marzullo

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Lo: 10, Hi: 20}
	if !iv.Valid() || !iv.Contains(10) || !iv.Contains(20) || iv.Contains(21) {
		t.Error("Interval basics broken")
	}
	if iv.Midpoint() != 15 {
		t.Errorf("Midpoint = %d", iv.Midpoint())
	}
	if (Interval{Lo: 5, Hi: 4}).Valid() {
		t.Error("inverted interval should be invalid")
	}
	if !iv.Overlaps(Interval{Lo: 20, Hi: 30}) {
		t.Error("touching endpoints should overlap (closed intervals)")
	}
	if iv.Overlaps(Interval{Lo: 21, Hi: 30}) {
		t.Error("disjoint intervals should not overlap")
	}
}

func TestMidpointNoOverflow(t *testing.T) {
	iv := Interval{Lo: 1<<62 + 2, Hi: 1<<62 + 10}
	if got := iv.Midpoint(); got != 1<<62+6 {
		t.Errorf("Midpoint = %d", got)
	}
}

func TestIntersectAllOverlap(t *testing.T) {
	ivs := []Interval{{0, 10}, {5, 15}, {8, 20}}
	best, count := Intersect(ivs)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if best.Lo != 8 || best.Hi != 10 {
		t.Errorf("best = %+v, want [8,10]", best)
	}
}

func TestIntersectMajorityExcludesOutlier(t *testing.T) {
	// Three honest clocks agree around 100; a compromised fast clock
	// claims ~500. The intersection covers only the honest three.
	ivs := []Interval{{95, 105}, {98, 108}, {93, 103}, {495, 505}}
	best, count := Intersect(ivs)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if best.Lo < 93 || best.Hi > 108 {
		t.Errorf("best = %+v, want inside the honest cluster", best)
	}
	chimers := TrueChimers(ivs)
	if len(chimers) != 3 || chimers[0] != 0 || chimers[1] != 1 || chimers[2] != 2 {
		t.Errorf("chimers = %v, want [0 1 2]", chimers)
	}
}

func TestIntersectDisjoint(t *testing.T) {
	ivs := []Interval{{0, 1}, {10, 11}, {20, 21}}
	_, count := Intersect(ivs)
	if count != 1 {
		t.Errorf("count = %d, want 1 (all disjoint)", count)
	}
}

func TestIntersectIgnoresInvalid(t *testing.T) {
	ivs := []Interval{{10, 5}, {0, 10}, {5, 15}}
	best, count := Intersect(ivs)
	if count != 2 || best.Lo != 5 || best.Hi != 10 {
		t.Errorf("best/count = %+v/%d", best, count)
	}
}

func TestIntersectEmpty(t *testing.T) {
	if _, count := Intersect(nil); count != 0 {
		t.Error("empty input should give count 0")
	}
	if got := TrueChimers(nil); got != nil {
		t.Errorf("TrueChimers(nil) = %v", got)
	}
	if _, count := Intersect([]Interval{{5, 4}}); count != 0 {
		t.Error("only-invalid input should give count 0")
	}
}

func TestIntersectTouchingEndpoints(t *testing.T) {
	ivs := []Interval{{0, 10}, {10, 20}}
	best, count := Intersect(ivs)
	if count != 2 || best.Lo != 10 || best.Hi != 10 {
		t.Errorf("touching intervals: best/count = %+v/%d, want [10,10]/2", best, count)
	}
}

func TestMajorityAgrees(t *testing.T) {
	honest := []Interval{{95, 105}, {98, 108}, {93, 103}}
	if _, ok := MajorityAgrees(honest, 3); !ok {
		t.Error("3/3 agreement should be a majority")
	}
	split := []Interval{{0, 1}, {100, 101}}
	if _, ok := MajorityAgrees(split, 2); ok {
		t.Error("1-of-2 should not be a strict majority")
	}
	// Count from a subset of a larger cluster.
	if _, ok := MajorityAgrees(honest, 7); !ok == false {
		t.Error("3 of 7 is not a strict majority")
	}
}

func TestIntersectProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		ivs := make([]Interval, n)
		for i := range ivs {
			lo := int64(rng.IntN(1000))
			ivs[i] = Interval{Lo: lo, Hi: lo + int64(rng.IntN(100))}
		}
		best, count := Intersect(ivs)
		if count < 1 || count > n {
			return false
		}
		// Verify the claimed coverage by brute force at the midpoint.
		mid := best.Midpoint()
		covering := 0
		for _, iv := range ivs {
			if iv.Contains(mid) {
				covering++
			}
		}
		if covering != count {
			return false
		}
		// No single point is covered by more than count intervals.
		for p := int64(0); p <= 1100; p++ {
			c := 0
			for _, iv := range ivs {
				if iv.Contains(p) {
					c++
				}
			}
			if c > count {
				return false
			}
		}
		// Every reported true-chimer overlaps the best interval.
		for _, i := range TrueChimers(ivs) {
			if !ivs[i].Overlaps(best) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIntersect(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	ivs := make([]Interval, 16)
	for i := range ivs {
		lo := int64(rng.IntN(1000))
		ivs[i] = Interval{Lo: lo, Hi: lo + int64(rng.IntN(200))}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Intersect(ivs)
	}
}
