package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram for hot-path measurements
// (request latencies, queue waits). The bucket layout is fixed at
// construction, Record is allocation-free and safe for concurrent use
// (a single atomic add per sample), and quantiles are estimated by
// linear interpolation inside the covering bucket — the usual
// fixed-bucket trade: O(1) recording and bounded memory for bounded
// quantile resolution.
//
// Values at or below bounds[i] (and above bounds[i-1]) land in bucket
// i; values above the last bound land in the overflow bucket, whose
// quantiles are reported as the last bound (a known lower bound, never
// an extrapolation).
type Histogram struct {
	bounds []int64         // ascending inclusive upper bounds
	counts []atomic.Uint64 // len(bounds)+1: per-bucket, plus overflow
	total  atomic.Uint64
	sum    atomic.Int64
}

// NewHistogram creates a histogram over the given ascending, strictly
// increasing inclusive upper bounds. Panics on an empty or unsorted
// layout: bucket layouts are compile-time decisions, not runtime data.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	cp := make([]int64, len(bounds))
	copy(cp, bounds)
	for i := 1; i < len(cp); i++ {
		if cp[i] <= cp[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not strictly increasing at %d: %d <= %d", i, cp[i], cp[i-1]))
		}
	}
	return &Histogram{bounds: cp, counts: make([]atomic.Uint64, len(cp)+1)}
}

// NewLatencyHistogram creates the serving subsystem's default layout:
// powers of two from 1µs to ~8.6s. 24 buckets resolve sub-millisecond
// tails to within a factor of two, which is all a shed-or-serve
// decision needs.
func NewLatencyHistogram() *Histogram {
	bounds := make([]int64, 24)
	b := int64(time.Microsecond)
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return NewHistogram(bounds)
}

// Record adds one sample. Negative samples clamp to zero (they land in
// the first bucket): with monotonic inputs they indicate a caller bug,
// but a telemetry path must never panic the server.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	// Binary search over ≤ a few dozen bounds; no allocation either way.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Quantile estimates the q-quantile of the recorded samples; see
// HistogramSnapshot.Quantile.
func (h *Histogram) Quantile(q float64) int64 { return h.Snapshot().Quantile(q) }

// Snapshot captures a point-in-time copy for analysis and rendering.
// Concurrent Records may land between bucket reads; each bucket is
// individually consistent, which is the usual monitoring contract.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistogramSnapshot is an immutable view of a Histogram.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bounds; Counts has one extra
	// trailing entry for the overflow bucket.
	Bounds []int64
	Counts []uint64
	Count  uint64
	Sum    int64
}

// Mean reports the arithmetic mean of the recorded samples (0 when
// empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]; values outside clamp)
// by linear interpolation within the covering bucket, taking each
// bucket's samples as uniformly spread over (lower, upper]. The first
// bucket interpolates from zero; the overflow bucket reports the last
// bound. An empty snapshot reports 0.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the sample the quantile names, under
	// the "nearest rank with interpolation" convention.
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i == len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1] // overflow: lower bound only
		}
		lower := int64(0)
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		frac := (rank - float64(cum)) / float64(c)
		return lower + int64(math.Round(frac*float64(upper-lower)))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Summary renders the snapshot's headline quantiles as durations, the
// form the load generator and live /metrics report.
func (s HistogramSnapshot) Summary() string {
	if s.Count == 0 {
		return "no samples"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%v", s.Count, time.Duration(int64(s.Mean())).Round(time.Microsecond))
	for _, q := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(&b, " p%g=%v", q*100, time.Duration(s.Quantile(q)).Round(time.Microsecond))
	}
	return b.String()
}
