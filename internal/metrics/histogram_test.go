package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	// Inclusive upper bounds: a value exactly on a bound lands in that
	// bound's bucket, one past it in the next, and past the last bound
	// in the overflow bucket.
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, // clamps to 0
		{0, 0},
		{10, 0},
		{11, 1},
		{20, 1},
		{21, 2},
		{40, 2},
		{41, 3},
		{1 << 60, 3},
	}
	for _, tc := range cases {
		h := NewHistogram([]int64{10, 20, 40})
		h.Record(tc.v)
		s := h.Snapshot()
		for i, c := range s.Counts {
			want := uint64(0)
			if i == tc.bucket {
				want = 1
			}
			if c != want {
				t.Errorf("Record(%d): bucket %d count %d, want %d", tc.v, i, c, want)
			}
		}
	}
}

func TestHistogramRejectsBadLayout(t *testing.T) {
	for _, bounds := range [][]int64{nil, {}, {5, 5}, {10, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]int64{100, 200, 400})
	// 10 samples in (100, 200]: uniform-spread interpolation puts the
	// median at lower + 0.5*(upper-lower) = 150.
	for i := 0; i < 10; i++ {
		h.Record(150)
	}
	if got := h.Quantile(0.5); got != 150 {
		t.Errorf("p50 = %d, want 150", got)
	}
	// q=1 names the last sample: the top of its bucket.
	if got := h.Quantile(1); got != 200 {
		t.Errorf("p100 = %d, want 200", got)
	}
	// First bucket interpolates from zero.
	h2 := NewHistogram([]int64{100, 200})
	for i := 0; i < 4; i++ {
		h2.Record(10)
	}
	if got := h2.Quantile(0.25); got != 25 {
		t.Errorf("first-bucket p25 = %d, want 25", got)
	}
	// Mixed buckets: 5 below 100, 5 in (100,200]; p90 ranks into the
	// second bucket at fraction (9-5)/5 = 0.8 → 180.
	h3 := NewHistogram([]int64{100, 200})
	for i := 0; i < 5; i++ {
		h3.Record(50)
		h3.Record(150)
	}
	if got := h3.Quantile(0.9); got != 180 {
		t.Errorf("p90 = %d, want 180", got)
	}
	// Overflow bucket reports the last bound, never an extrapolation.
	h4 := NewHistogram([]int64{100})
	h4.Record(1e6)
	if got := h4.Quantile(0.99); got != 100 {
		t.Errorf("overflow p99 = %d, want 100", got)
	}
	// Quantiles clamp and an empty histogram reports zero.
	if got := h4.Quantile(-1); got != 100 {
		t.Errorf("clamped q<0 = %d, want 100", got)
	}
	if got := NewHistogram([]int64{1}).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %d, want 0", got)
	}
}

func TestHistogramMeanAndSummary(t *testing.T) {
	h := NewLatencyHistogram()
	for _, v := range []int64{1000, 3000} {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 2 || s.Mean() != 2000 {
		t.Errorf("count=%d mean=%v, want 2 / 2000", s.Count, s.Mean())
	}
	if sum := s.Summary(); sum == "" || sum == "no samples" {
		t.Errorf("summary: %q", sum)
	}
	if empty := (HistogramSnapshot{}).Summary(); empty != "no samples" {
		t.Errorf("empty summary: %q", empty)
	}
}

func TestHistogramRecordZeroAlloc(t *testing.T) {
	h := NewLatencyHistogram()
	allocs := testing.AllocsPerRun(1000, func() { h.Record(12345) })
	if allocs != 0 {
		t.Fatalf("Record allocated %.1f times per op", allocs)
	}
}

// TestHistogramConcurrentRecord hammers Record from many goroutines
// (run under -race via make test-race): no sample may be lost and the
// sum must be exact, since both are single atomic adds.
func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewLatencyHistogram()
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(time.Microsecond) << uint(g%8))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count %d, want %d", s.Count, goroutines*per)
	}
	var bucketSum uint64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}
