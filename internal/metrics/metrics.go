// Package metrics collects the observables the paper's figures plot:
// per-node clock drift against reference time, protocol-state timelines
// (and the availability derived from them), and cumulative counters
// (Time Authority references, AEXs).
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"triadtime/internal/core"
	"triadtime/internal/engine"
	"triadtime/internal/simtime"
)

// CounterSnapshot is one node's cumulative protocol counters at a
// point in time, named for table rendering. It carries the engine's
// uniform counter set, so original and hardened nodes snapshot
// identically — hardening-only columns simply stay zero on original
// nodes.
type CounterSnapshot struct {
	Node string
	engine.Counters
}

// Summary renders the snapshot as one table line. The hardened
// columns (chimer rejections, RTT rejections, probes) are always
// present so scenario outputs stay column-stable; gossip tallies are
// appended only when the gossip layer was active.
func (s CounterSnapshot) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: ta_refs=%d peer_untaints=%d served=%d rejected_peers=%d rtt_rejections=%d probes=%d probe_failures=%d",
		s.Node, s.TAReferences, s.PeerUntaints, s.Served,
		s.RejectedPeers, s.RTTRejections, s.Probes, s.ProbeFailures)
	if s.GossipSent != 0 || s.GossipReceived != 0 || s.GossipAdoptions != 0 {
		fmt.Fprintf(&b, " gossip_sent=%d gossip_received=%d gossip_adoptions=%d",
			s.GossipSent, s.GossipReceived, s.GossipAdoptions)
	}
	if s.QuorumAccepts != 0 || s.QuorumNoMajority != 0 || s.FalseTickers != 0 || s.Holdovers != 0 {
		fmt.Fprintf(&b, " quorum_accepts=%d quorum_no_majority=%d false_tickers=%d holdovers=%d",
			s.QuorumAccepts, s.QuorumNoMajority, s.FalseTickers, s.Holdovers)
	}
	return b.String()
}

// WriteCountersCSV emits counter snapshots as CSV, one row per node.
func WriteCountersCSV(w io.Writer, snaps []CounterSnapshot) error {
	if _, err := fmt.Fprintln(w, "node,ta_refs,peer_untaints,served,rejected_peers,rtt_rejections,probes,probe_failures,gossip_sent,gossip_received,gossip_adoptions,quorum_accepts,quorum_no_majority,false_tickers,holdovers"); err != nil {
		return err
	}
	for _, s := range snaps {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			s.Node, s.TAReferences, s.PeerUntaints, s.Served,
			s.RejectedPeers, s.RTTRejections, s.Probes, s.ProbeFailures,
			s.GossipSent, s.GossipReceived, s.GossipAdoptions,
			s.QuorumAccepts, s.QuorumNoMajority, s.FalseTickers, s.Holdovers); err != nil {
			return err
		}
	}
	return nil
}

// DriftPoint is one sample of a node's clock error against reference
// time.
type DriftPoint struct {
	// RefSeconds is the reference time of the sample.
	RefSeconds float64
	// DriftSeconds is nodeClock - referenceTime, in seconds. Positive
	// means the node's clock is ahead of (faster than) reference time.
	DriftSeconds float64
	// State is the node's protocol state at the sample.
	State core.State
}

// DriftSeries is one node's drift time-series (Figures 2a, 3a, 4, 5, 6a).
type DriftSeries struct {
	Node   string
	Points []DriftPoint
}

// Add appends a sample.
func (s *DriftSeries) Add(p DriftPoint) { s.Points = append(s.Points, p) }

// Available returns only the samples taken while the node was serving
// (state OK, or the quorum variant's Degraded holdover) — the points
// the paper's figures plot.
func (s *DriftSeries) Available() []DriftPoint {
	out := make([]DriftPoint, 0, len(s.Points))
	for _, p := range s.Points {
		if p.State.Serving() {
			out = append(out, p)
		}
	}
	return out
}

// DriftRatePerSecond estimates the series' drift rate (s/s) by least
// squares over the available samples between two reference times.
// Returns ok=false with fewer than two samples in range.
func (s *DriftSeries) DriftRatePerSecond(fromSec, toSec float64) (float64, bool) {
	var sx, sy, sxx, sxy float64
	n := 0
	for _, p := range s.Available() {
		if p.RefSeconds < fromSec || p.RefSeconds > toSec {
			continue
		}
		sx += p.RefSeconds
		sy += p.DriftSeconds
		sxx += p.RefSeconds * p.RefSeconds
		sxy += p.RefSeconds * p.DriftSeconds
		n++
	}
	if n < 2 {
		return 0, false
	}
	den := sxx - sx*sx/float64(n)
	if den == 0 {
		return 0, false
	}
	return (sxy - sx*sy/float64(n)) / den, true
}

// StateChange is one protocol-state transition.
type StateChange struct {
	At    simtime.Instant
	State core.State
}

// StateTimeline records a node's state transitions (Figure 3b) and
// derives availability from them.
type StateTimeline struct {
	changes []StateChange
}

// Record appends a transition. Transitions must arrive in time order.
func (tl *StateTimeline) Record(at simtime.Instant, s core.State) {
	if n := len(tl.changes); n > 0 && at < tl.changes[n-1].At {
		panic(fmt.Sprintf("metrics: out-of-order state change at %v", at))
	}
	tl.changes = append(tl.changes, StateChange{At: at, State: s})
}

// Changes returns the recorded transitions (copy).
func (tl *StateTimeline) Changes() []StateChange {
	cp := make([]StateChange, len(tl.changes))
	copy(cp, tl.changes)
	return cp
}

// Segment is a maximal interval spent in one state.
type Segment struct {
	From, To simtime.Instant
	State    core.State
}

// Segments renders the timeline as contiguous segments over [from, to].
// Before the first recorded change the node is considered StateInit.
func (tl *StateTimeline) Segments(from, to simtime.Instant) []Segment {
	if to < from {
		from, to = to, from
	}
	var segs []Segment
	cur := core.StateInit
	curFrom := from
	for _, c := range tl.changes {
		if c.At <= from {
			cur = c.State
			continue
		}
		if c.At > to {
			break
		}
		if c.At > curFrom {
			segs = append(segs, Segment{From: curFrom, To: c.At, State: cur})
		}
		cur = c.State
		curFrom = c.At
	}
	if to > curFrom {
		segs = append(segs, Segment{From: curFrom, To: to, State: cur})
	}
	return segs
}

// Availability is the fraction of [from, to] spent serving timestamps
// (state OK, or the quorum holdover state Degraded) — the paper's
// §IV-A.2 availability metric.
func (tl *StateTimeline) Availability(from, to simtime.Instant) float64 {
	if to <= from {
		return 0
	}
	var ok time.Duration
	for _, seg := range tl.Segments(from, to) {
		if seg.State.Serving() {
			ok += seg.To.Sub(seg.From)
		}
	}
	return float64(ok) / float64(to.Sub(from))
}

// CountPoint is one sample of a cumulative counter.
type CountPoint struct {
	RefSeconds float64
	Count      int
}

// CountSeries is a cumulative counter over time: TA references received
// (Figure 2b) or AEXs experienced (Figure 6b).
type CountSeries struct {
	Node   string
	Points []CountPoint
}

// Add appends a sample.
func (s *CountSeries) Add(p CountPoint) { s.Points = append(s.Points, p) }

// Final returns the last recorded count (0 if empty).
func (s *CountSeries) Final() int {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Count
}

// WriteDriftCSV emits drift series as CSV: time, one drift column per
// node (empty when unavailable). Series are merged on sample times.
func WriteDriftCSV(w io.Writer, series []*DriftSeries) error {
	if _, err := fmt.Fprint(w, "ref_seconds"); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, ",drift_s_%s", s.Node); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	// Collect the sorted, deduplicated union of sample times. A slice
	// with sort+compact (rather than a set map) keeps the iteration
	// deterministic.
	var times []float64
	for _, s := range series {
		for _, p := range s.Points {
			times = append(times, p.RefSeconds)
		}
	}
	sort.Float64s(times)
	uniq := times[:0]
	for _, t := range times {
		if len(uniq) == 0 || uniq[len(uniq)-1] != t {
			uniq = append(uniq, t)
		}
	}
	times = uniq
	// Index points by time per series.
	idx := make([]map[float64]DriftPoint, len(series))
	for i, s := range series {
		idx[i] = make(map[float64]DriftPoint, len(s.Points))
		for _, p := range s.Points {
			idx[i][p.RefSeconds] = p
		}
	}
	for _, tm := range times {
		if _, err := fmt.Fprintf(w, "%.3f", tm); err != nil {
			return err
		}
		for i := range series {
			p, ok := idx[i][tm]
			if !ok || !p.State.Serving() {
				if _, err := fmt.Fprint(w, ","); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, ",%.6f", p.DriftSeconds); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteCountCSV emits count series as CSV with one column per node.
func WriteCountCSV(w io.Writer, series []*CountSeries) error {
	if _, err := fmt.Fprint(w, "ref_seconds"); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, ",count_%s", s.Node); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	n := 0
	for _, s := range series {
		if len(s.Points) > n {
			n = len(s.Points)
		}
	}
	for row := 0; row < n; row++ {
		wrote := false
		for _, s := range series {
			if row >= len(s.Points) {
				continue
			}
			if !wrote {
				if _, err := fmt.Fprintf(w, "%.3f", s.Points[row].RefSeconds); err != nil {
					return err
				}
				wrote = true
			}
		}
		for _, s := range series {
			if row < len(s.Points) {
				if _, err := fmt.Fprintf(w, ",%d", s.Points[row].Count); err != nil {
					return err
				}
			} else if _, err := fmt.Fprint(w, ","); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
