package metrics

import (
	"math"
	"strings"
	"testing"
	"time"

	"triadtime/internal/core"
	"triadtime/internal/simtime"
)

func TestDriftSeriesAvailableFiltersStates(t *testing.T) {
	var s DriftSeries
	s.Add(DriftPoint{RefSeconds: 1, DriftSeconds: 0.1, State: core.StateOK})
	s.Add(DriftPoint{RefSeconds: 2, DriftSeconds: 0.2, State: core.StateTainted})
	s.Add(DriftPoint{RefSeconds: 3, DriftSeconds: 0.3, State: core.StateOK})
	got := s.Available()
	if len(got) != 2 || got[0].RefSeconds != 1 || got[1].RefSeconds != 3 {
		t.Errorf("Available() = %v", got)
	}
}

func TestDriftRatePerSecond(t *testing.T) {
	var s DriftSeries
	// Drift growing at -91ms/s (the paper's F+ rate).
	for i := 0; i <= 10; i++ {
		s.Add(DriftPoint{
			RefSeconds:   float64(i),
			DriftSeconds: -0.091 * float64(i),
			State:        core.StateOK,
		})
	}
	rate, ok := s.DriftRatePerSecond(0, 10)
	if !ok || math.Abs(rate+0.091) > 1e-9 {
		t.Errorf("rate = %v ok=%v, want -0.091", rate, ok)
	}
	// Range with < 2 samples.
	if _, ok := s.DriftRatePerSecond(100, 200); ok {
		t.Error("empty range should report !ok")
	}
}

func TestDriftRateIgnoresUnavailableSamples(t *testing.T) {
	var s DriftSeries
	for i := 0; i <= 10; i++ {
		st := core.StateOK
		drift := 0.001 * float64(i)
		if i%2 == 1 {
			st = core.StateTainted
			drift = 99 // garbage while tainted
		}
		s.Add(DriftPoint{RefSeconds: float64(i), DriftSeconds: drift, State: st})
	}
	rate, ok := s.DriftRatePerSecond(0, 10)
	if !ok || math.Abs(rate-0.001) > 1e-9 {
		t.Errorf("rate = %v, want 0.001 (tainted samples excluded)", rate)
	}
}

func at(d time.Duration) simtime.Instant { return simtime.FromDuration(d) }

func TestTimelineSegmentsAndAvailability(t *testing.T) {
	var tl StateTimeline
	tl.Record(at(0), core.StateFullCalib)
	tl.Record(at(10*time.Second), core.StateOK)
	tl.Record(at(60*time.Second), core.StateTainted)
	tl.Record(at(61*time.Second), core.StateOK)

	segs := tl.Segments(at(0), at(100*time.Second))
	want := []Segment{
		{at(0), at(10 * time.Second), core.StateFullCalib},
		{at(10 * time.Second), at(60 * time.Second), core.StateOK},
		{at(60 * time.Second), at(61 * time.Second), core.StateTainted},
		{at(61 * time.Second), at(100 * time.Second), core.StateOK},
	}
	if len(segs) != len(want) {
		t.Fatalf("segments = %+v", segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Errorf("segment %d = %+v, want %+v", i, segs[i], want[i])
		}
	}
	avail := tl.Availability(at(0), at(100*time.Second))
	if math.Abs(avail-0.89) > 1e-9 {
		t.Errorf("availability = %v, want 0.89", avail)
	}
}

func TestTimelineMidWindow(t *testing.T) {
	var tl StateTimeline
	tl.Record(at(0), core.StateOK)
	tl.Record(at(50*time.Second), core.StateTainted)
	// Window starting inside the OK period.
	avail := tl.Availability(at(40*time.Second), at(60*time.Second))
	if math.Abs(avail-0.5) > 1e-9 {
		t.Errorf("availability = %v, want 0.5", avail)
	}
	// Degenerate windows.
	if tl.Availability(at(5*time.Second), at(5*time.Second)) != 0 {
		t.Error("zero-length window should report 0")
	}
}

func TestTimelineBeforeFirstChangeIsInit(t *testing.T) {
	var tl StateTimeline
	tl.Record(at(10*time.Second), core.StateOK)
	segs := tl.Segments(at(0), at(20*time.Second))
	if len(segs) != 2 || segs[0].State != core.StateInit || segs[1].State != core.StateOK {
		t.Errorf("segments = %+v", segs)
	}
}

func TestTimelineOutOfOrderPanics(t *testing.T) {
	var tl StateTimeline
	tl.Record(at(10*time.Second), core.StateOK)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Record should panic")
		}
	}()
	tl.Record(at(5*time.Second), core.StateTainted)
}

func TestTimelineChangesCopy(t *testing.T) {
	var tl StateTimeline
	tl.Record(at(1*time.Second), core.StateOK)
	ch := tl.Changes()
	ch[0].State = core.StateTainted
	if tl.Changes()[0].State != core.StateOK {
		t.Error("Changes() exposed internal storage")
	}
}

func TestCountSeriesFinal(t *testing.T) {
	var s CountSeries
	if s.Final() != 0 {
		t.Error("empty Final should be 0")
	}
	s.Add(CountPoint{RefSeconds: 1, Count: 2})
	s.Add(CountPoint{RefSeconds: 2, Count: 5})
	if s.Final() != 5 {
		t.Errorf("Final = %d", s.Final())
	}
}

func TestWriteDriftCSV(t *testing.T) {
	s1 := &DriftSeries{Node: "node1"}
	s1.Add(DriftPoint{RefSeconds: 1, DriftSeconds: 0.001, State: core.StateOK})
	s1.Add(DriftPoint{RefSeconds: 2, DriftSeconds: 0.002, State: core.StateTainted})
	s2 := &DriftSeries{Node: "node2"}
	s2.Add(DriftPoint{RefSeconds: 1, DriftSeconds: -0.001, State: core.StateOK})
	var b strings.Builder
	if err := WriteDriftCSV(&b, []*DriftSeries{s1, s2}); err != nil {
		t.Fatalf("WriteDriftCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "ref_seconds,drift_s_node1,drift_s_node2" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[1] != "1.000,0.001000,-0.001000" {
		t.Errorf("row 1 = %q", lines[1])
	}
	// Tainted sample -> empty cell; node2 has no sample at t=2.
	if lines[2] != "2.000,," {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestWriteCountCSV(t *testing.T) {
	s1 := &CountSeries{Node: "node1"}
	s1.Add(CountPoint{RefSeconds: 1, Count: 1})
	s1.Add(CountPoint{RefSeconds: 2, Count: 2})
	s2 := &CountSeries{Node: "node2"}
	s2.Add(CountPoint{RefSeconds: 1, Count: 0})
	var b strings.Builder
	if err := WriteCountCSV(&b, []*CountSeries{s1, s2}); err != nil {
		t.Fatalf("WriteCountCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "ref_seconds,count_node1,count_node2" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1.000,1,0" || lines[2] != "2.000,2," {
		t.Errorf("rows = %q", lines[1:])
	}
}
