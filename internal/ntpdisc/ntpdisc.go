// Package ntpdisc implements an NTP-style clock discipline loop: the
// "mature synchronization protocol" the paper's Section V recommends
// over Triad's short-window calibration, and the yardstick its §IV-A.2
// drift discussion quotes (standard allowed drift-rate 15ppm, drift
// measured over long 2^τ-second windows, τ ∈ [4,17], versus Triad's
// effective ~110ppm from ≤1s measurement windows).
//
// The client polls the Time Authority periodically, pushes each
// (offset, delay) sample through an NTP-like clock filter (an 8-stage
// shift register selecting the minimum-delay sample, which suppresses
// delay spikes — including attacker-injected ones), and disciplines a
// local clock in frequency and phase with NTP's clamps: ±500ppm
// frequency envelope, 128ms step threshold.
package ntpdisc

import (
	"fmt"
	"math"
	"time"

	"triadtime/internal/enclave"
	"triadtime/internal/simnet"
	"triadtime/internal/wire"
)

// NTP-standard constants the discipline respects.
const (
	// MaxFreqPPM is NTP's maximum tolerated frequency error (±500ppm).
	MaxFreqPPM = 500
	// StepThreshold is the offset beyond which the clock steps instead
	// of slewing (NTP: 128ms).
	StepThreshold = 128 * time.Millisecond
	// StandardDriftPPM is the standard allowed residual drift-rate the
	// paper quotes: 15ppm (1.3s/day).
	StandardDriftPPM = 15
	// filterDepth is the clock-filter shift register size.
	filterDepth = 8
)

// Config parameterizes the discipline.
type Config struct {
	// Key is the cluster's pre-shared AES-256 key.
	Key []byte
	// Addr is this client's wire identity.
	Addr simnet.Addr
	// Authority is the Time Authority's address.
	Authority simnet.Addr
	// MinPoll and MaxPoll bound the adaptive poll interval
	// (NTP: 2^4=16s up to 2^17≈36h). Defaults: 16s and 1024s.
	MinPoll time.Duration
	MaxPoll time.Duration
	// PhaseGain is the fraction of the filtered offset corrected per
	// poll. Default: 0.5.
	PhaseGain float64
	// FreqGain scales frequency corrections. Default: 0.3.
	FreqGain float64
}

func (c Config) withDefaults() (Config, error) {
	if len(c.Key) != wire.KeySize {
		return c, fmt.Errorf("ntpdisc: key must be %d bytes", wire.KeySize)
	}
	if c.Addr == c.Authority {
		return c, fmt.Errorf("ntpdisc: client address equals authority address")
	}
	if c.MinPoll <= 0 {
		c.MinPoll = 16 * time.Second
	}
	if c.MaxPoll < c.MinPoll {
		c.MaxPoll = 1024 * time.Second
	}
	if c.PhaseGain <= 0 || c.PhaseGain > 1 {
		c.PhaseGain = 0.5
	}
	if c.FreqGain <= 0 || c.FreqGain > 1 {
		c.FreqGain = 0.3
	}
	return c, nil
}

// sample is one poll's measurement.
type sample struct {
	offset time.Duration // authority time minus local time at receive
	delay  time.Duration // roundtrip
	seq    uint64
}

// Client is the disciplined clock.
type Client struct {
	cfg      Config
	platform enclave.Platform
	sealer   *wire.Sealer
	opener   *wire.Opener

	// Disciplined clock: now = refNanos + (tsc-refTSC)/rate * 1e9.
	refNanos int64
	refTSC   uint64
	rate     float64 // ticks per second, bootHz adjusted by corrPPM
	corrPPM  float64
	synced   bool

	poll       time.Duration
	stableRuns int

	filter []sample

	pendingSeq uint64
	sentTSC    uint64
	timer      enclave.CancelFunc

	polls, steps, slews, spikes int
	lastOffset                  time.Duration
	started                     bool

	// Per-endpoint datagram scratch, as in the Triad engine: polls
	// reseal into sealBuf, responses decrypt into openBuf.
	sealBuf []byte
	openBuf []byte
}

// NewClient creates a discipline client on the platform. Call Start.
// The client installs itself as the platform's message handler; it is
// a standalone time client, not a Triad cluster member.
func NewClient(platform enclave.Platform, cfg Config) (*Client, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	sealer, err := wire.NewSealer(cfg.Key, uint32(cfg.Addr))
	if err != nil {
		return nil, fmt.Errorf("ntpdisc: %w", err)
	}
	opener, err := wire.NewOpener(cfg.Key)
	if err != nil {
		return nil, fmt.Errorf("ntpdisc: %w", err)
	}
	c := &Client{
		cfg:      cfg,
		platform: platform,
		sealer:   sealer,
		opener:   opener,
		rate:     platform.BootTSCHz(),
		poll:     cfg.MinPoll,
		sealBuf:  make([]byte, 0, wire.SealedSize),
		openBuf:  make([]byte, 0, wire.MarshaledSize),
	}
	platform.SetMessageHandler(c.onDatagram)
	return c, nil
}

// Start begins polling. Idempotent.
func (c *Client) Start() {
	if c.started {
		return
	}
	c.started = true
	c.sendPoll()
}

// Synced reports whether the clock has been set at least once.
func (c *Client) Synced() bool { return c.synced }

// Now reads the disciplined clock (authority timeline). ok is false
// before the first synchronization.
func (c *Client) Now() (int64, bool) {
	if !c.synced {
		return 0, false
	}
	return c.now(), true
}

func (c *Client) now() int64 {
	tsc := c.platform.ReadTSC()
	if tsc < c.refTSC {
		return c.refNanos
	}
	return c.refNanos + int64(float64(tsc-c.refTSC)/c.rate*1e9)
}

// FreqCorrectionPPM reports the accumulated frequency correction.
func (c *Client) FreqCorrectionPPM() float64 { return c.corrPPM }

// PollInterval reports the current (adaptive) poll interval.
func (c *Client) PollInterval() time.Duration { return c.poll }

// Stats reports poll/step/slew/spike counters.
func (c *Client) Stats() (polls, steps, slews, spikes int) {
	return c.polls, c.steps, c.slews, c.spikes
}

// LastOffset reports the most recent filtered offset applied.
func (c *Client) LastOffset() time.Duration { return c.lastOffset }

func (c *Client) ticksFor(d time.Duration) uint64 {
	return uint64(d.Seconds() * c.platform.BootTSCHz())
}

// sendPoll issues one authority exchange and schedules the retry/next.
func (c *Client) sendPoll() {
	c.polls++
	c.pendingSeq = uint64(c.polls)
	c.sentTSC = c.platform.ReadTSC()
	c.sealBuf = c.sealer.SealAppend(c.sealBuf[:0], wire.Message{
		Kind: wire.KindTimeRequest,
		Seq:  c.pendingSeq,
	})
	c.platform.Send(c.cfg.Authority, c.sealBuf)
	// If the response never arrives, poll again after the interval.
	c.timer = c.platform.AfterTicks(c.ticksFor(c.poll), func() {
		c.timer = nil
		c.pendingSeq = 0
		c.sendPoll()
	})
}

func (c *Client) onDatagram(_ simnet.Addr, payload []byte) {
	msg, sender, err := c.opener.OpenInto(c.openBuf, payload)
	if err != nil || msg.Kind != wire.KindTimeResponse {
		return
	}
	if simnet.Addr(sender) != c.cfg.Authority || msg.Seq != c.pendingSeq {
		return
	}
	if c.timer != nil {
		c.timer()
		c.timer = nil
	}
	c.pendingSeq = 0
	recvTSC := c.platform.ReadTSC()
	rttNanos := float64(recvTSC-c.sentTSC) / c.rate * 1e9
	delay := time.Duration(rttNanos)
	var offset time.Duration
	if c.synced {
		local := c.now()
		offset = time.Duration(msg.TimeNanos + int64(rttNanos/2) - local)
	}
	if !c.synced {
		// First exchange: step directly onto the authority timeline.
		c.refNanos = msg.TimeNanos + int64(rttNanos/2)
		c.refTSC = recvTSC
		c.synced = true
		c.steps++
	} else {
		c.applySample(sample{offset: offset, delay: delay, seq: uint64(c.polls)})
	}
	// Next poll after the (possibly adapted) interval.
	c.timer = c.platform.AfterTicks(c.ticksFor(c.poll), func() {
		c.timer = nil
		c.sendPoll()
	})
}

// applySample pushes the measurement through the clock filter and, if
// it survives, disciplines the clock.
func (c *Client) applySample(s sample) {
	c.filter = append(c.filter, s)
	if len(c.filter) > filterDepth {
		c.filter = c.filter[1:]
	}
	// NTP clock filter: only act when the newest sample is the
	// minimum-delay sample of the register — a delayed (possibly
	// attacker-held) response never disciplines the clock.
	best := c.filter[0]
	for _, f := range c.filter[1:] {
		if f.delay < best.delay {
			best = f
		}
	}
	if best.seq != s.seq {
		c.spikes++
		c.adaptPoll(s.offset)
		return
	}
	offset := s.offset
	if offset > StepThreshold || offset < -StepThreshold {
		// Step: re-anchor and restart the filter.
		c.refNanos = c.now() + int64(offset)
		c.refTSC = c.platform.ReadTSC()
		c.filter = nil
		c.steps++
		c.adaptPoll(offset)
		c.lastOffset = offset
		return
	}
	// Slew. Frequency: the residual offset accumulated over one poll
	// interval estimates the rate error; correct a fraction of it.
	offPPM := offset.Seconds() / c.poll.Seconds() * 1e6
	c.corrPPM += c.cfg.FreqGain * offPPM
	if c.corrPPM > MaxFreqPPM {
		c.corrPPM = MaxFreqPPM
	}
	if c.corrPPM < -MaxFreqPPM {
		c.corrPPM = -MaxFreqPPM
	}
	// Phase: correct a fraction of the offset now. Rebase so the rate
	// change does not retroactively bend history.
	nowNanos := c.now()
	c.refNanos = nowNanos + int64(c.cfg.PhaseGain*float64(offset))
	c.refTSC = c.platform.ReadTSC()
	// A positive offset means the authority is ahead: our clock runs
	// slow, so its effective rate (ticks per authority second) is
	// lower than we thought.
	c.rate = c.platform.BootTSCHz() * (1 - c.corrPPM*1e-6)
	c.slews++
	c.lastOffset = offset
	c.adaptPoll(offset)
}

// adaptPoll widens the poll interval while the clock is stable and
// narrows it when offsets grow — NTP's 2^τ adaptation in miniature.
func (c *Client) adaptPoll(offset time.Duration) {
	abs := offset
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs < time.Millisecond:
		c.stableRuns++
		if c.stableRuns >= 3 && c.poll < c.cfg.MaxPoll {
			c.poll *= 2
			if c.poll > c.cfg.MaxPoll {
				c.poll = c.cfg.MaxPoll
			}
			c.stableRuns = 0
		}
	case abs > 10*time.Millisecond:
		c.stableRuns = 0
		if c.poll > c.cfg.MinPoll {
			c.poll /= 2
			if c.poll < c.cfg.MinPoll {
				c.poll = c.cfg.MinPoll
			}
		}
	default:
		c.stableRuns = 0
	}
}

// DriftRatePPM estimates the clock's current residual drift rate from
// the frequency correction trajectory — a convenience for experiments.
func (c *Client) DriftRatePPM(trueRateHz float64) float64 {
	if !c.synced {
		return math.NaN()
	}
	// rate is ticks per authority-second the client assumes; the true
	// rate is what the hardware does. Residual drift is the mismatch.
	return (trueRateHz - c.rate) / trueRateHz * 1e6
}
