package ntpdisc

import (
	"math"
	"testing"
	"time"

	"triadtime/internal/authority"
	"triadtime/internal/enclave"
	"triadtime/internal/sim"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
	"triadtime/internal/wire"
)

const taAddr simnet.Addr = 100

func testKey() []byte {
	key := make([]byte, wire.KeySize)
	for i := range key {
		key[i] = byte(i + 5)
	}
	return key
}

// rig builds a scheduler + network + TA + one discipline client whose
// hardware TSC runs at trueHz while the boot hint claims hintHz.
func rig(t *testing.T, trueHz, hintHz float64, link simnet.Link, tweak func(*Config)) (*sim.Scheduler, *Client) {
	t.Helper()
	sched := sim.NewScheduler()
	rng := sim.NewRNG(321)
	network := simnet.New(sched, rng.Fork(0), link)
	if _, err := authority.NewSimBinding(sched, network, testKey(), taAddr); err != nil {
		t.Fatal(err)
	}
	platform := enclave.NewSimPlatform(sched, rng.Fork(1), network, enclave.SimConfig{
		Addr:      1,
		TSC:       simtime.NewTSC(trueHz, 0),
		BootTSCHz: hintHz,
	})
	cfg := Config{Key: testKey(), Addr: 1, Authority: taAddr}
	if tweak != nil {
		tweak(&cfg)
	}
	client, err := NewClient(platform, cfg)
	if err != nil {
		t.Fatal(err)
	}
	client.Start()
	client.Start() // idempotent
	return sched, client
}

func TestConfigValidation(t *testing.T) {
	sched := sim.NewScheduler()
	network := simnet.New(sched, sim.NewRNG(1), simnet.Link{})
	p := enclave.NewSimPlatform(sched, sim.NewRNG(2), network, enclave.SimConfig{
		Addr: 1, TSC: simtime.NewTSC(1e9, 0),
	})
	if _, err := NewClient(p, Config{Key: []byte("x"), Addr: 1, Authority: 2}); err == nil {
		t.Error("bad key accepted")
	}
	if _, err := NewClient(p, Config{Key: testKey(), Addr: 2, Authority: 2}); err == nil {
		t.Error("self authority accepted")
	}
}

func TestFirstExchangeSteps(t *testing.T) {
	sched, c := rig(t, simtime.NominalTSCHz, simtime.NominalTSCHz, simnet.Link{Base: 100 * time.Microsecond}, nil)
	if _, ok := c.Now(); ok {
		t.Error("clock readable before first sync")
	}
	sched.RunUntil(simtime.FromSeconds(1))
	now, ok := c.Now()
	if !ok || !c.Synced() {
		t.Fatal("client never synced")
	}
	if off := time.Duration(now - int64(sched.Now())); off < -time.Millisecond || off > time.Millisecond {
		t.Errorf("clock off by %v right after first sync", off)
	}
	if _, steps, _, _ := c.Stats(); steps != 1 {
		t.Errorf("steps = %d, want 1", steps)
	}
}

func TestDisciplineConvergesBelowStandardDrift(t *testing.T) {
	// Hardware runs 100ppm fast relative to the boot hint (a typical
	// crystal error and the order of Triad's calibration error). The
	// discipline must pull residual drift under NTP's 15ppm standard.
	trueHz := simtime.NominalTSCHz * (1 + 100e-6)
	sched, c := rig(t, trueHz, simtime.NominalTSCHz, simnet.DefaultLink(), nil)
	sched.RunUntil(simtime.FromDuration(2 * time.Hour))

	if got := math.Abs(c.DriftRatePPM(trueHz)); got > StandardDriftPPM {
		t.Errorf("residual drift = %.1fppm, want < %dppm", got, StandardDriftPPM)
	}
	now, _ := c.Now()
	if off := time.Duration(now - int64(sched.Now())); off < -5*time.Millisecond || off > 5*time.Millisecond {
		t.Errorf("steady-state offset = %v", off)
	}
	// Frequency correction should have learned ~+100ppm (clock slow in
	// tick terms -> fewer ticks per authority second than hinted).
	if corr := c.FreqCorrectionPPM(); math.Abs(corr-(-100)) > 20 && math.Abs(corr-100) > 20 {
		t.Errorf("freq correction = %.1fppm, want magnitude ~100ppm", corr)
	}
}

func TestPollIntervalWidensWhenStable(t *testing.T) {
	sched, c := rig(t, simtime.NominalTSCHz, simtime.NominalTSCHz,
		simnet.Link{Base: 100 * time.Microsecond}, nil)
	if c.PollInterval() != 16*time.Second {
		t.Fatalf("initial poll = %v", c.PollInterval())
	}
	sched.RunUntil(simtime.FromDuration(time.Hour))
	if c.PollInterval() <= 16*time.Second {
		t.Errorf("poll interval never widened: %v", c.PollInterval())
	}
}

func TestClockFilterSuppressesDelaySpikes(t *testing.T) {
	// A middlebox delays every 4th authority response by 50ms. The
	// min-delay clock filter must keep those samples from disciplining
	// the clock (they would otherwise inject -25ms offsets).
	sched := sim.NewScheduler()
	rng := sim.NewRNG(11)
	network := simnet.New(sched, rng.Fork(0), simnet.Link{Base: 100 * time.Microsecond})
	if _, err := authority.NewSimBinding(sched, network, testKey(), taAddr); err != nil {
		t.Fatal(err)
	}
	spiker := &everyNth{n: 4, extra: 50 * time.Millisecond, from: taAddr, to: 1}
	network.AttachMiddlebox(spiker)
	platform := enclave.NewSimPlatform(sched, rng.Fork(1), network, enclave.SimConfig{
		Addr: 1, TSC: simtime.NewTSC(simtime.NominalTSCHz, 0),
	})
	c, err := NewClient(platform, Config{Key: testKey(), Addr: 1, Authority: taAddr})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	sched.RunUntil(simtime.FromDuration(time.Hour))
	now, ok := c.Now()
	if !ok {
		t.Fatal("never synced")
	}
	if off := time.Duration(now - int64(sched.Now())); off < -3*time.Millisecond || off > 3*time.Millisecond {
		t.Errorf("offset = %v under periodic 50ms spikes (filter failed)", off)
	}
	if _, _, _, spikes := c.Stats(); spikes == 0 {
		t.Error("filter reported no suppressed spikes")
	}
}

// everyNth delays every nth matching packet.
type everyNth struct {
	n     int
	extra time.Duration
	from  simnet.Addr
	to    simnet.Addr
	count int
}

func (m *everyNth) Process(_ simtime.Instant, p simnet.Packet) simnet.Verdict {
	if p.From != m.from || p.To != m.to {
		return simnet.Verdict{}
	}
	m.count++
	if m.count%m.n == 0 {
		return simnet.Verdict{ExtraDelay: m.extra}
	}
	return simnet.Verdict{}
}

func TestLargeOffsetSteps(t *testing.T) {
	sched, c := rig(t, simtime.NominalTSCHz, simtime.NominalTSCHz,
		simnet.Link{Base: 100 * time.Microsecond}, nil)
	sched.RunUntil(simtime.FromDuration(time.Minute))
	// Yank the local clock a full second off; the next polls must step
	// it back rather than slew for hours.
	c.refNanos -= int64(time.Second)
	sched.RunUntil(sched.Now().Add(5 * time.Minute))
	now, _ := c.Now()
	if off := time.Duration(now - int64(sched.Now())); off < -5*time.Millisecond || off > 5*time.Millisecond {
		t.Errorf("offset = %v after step recovery", off)
	}
	if _, steps, _, _ := c.Stats(); steps < 2 {
		t.Errorf("steps = %d, want >= 2 (initial + recovery)", steps)
	}
}

func TestFreqClamp(t *testing.T) {
	// Hardware 5000ppm off (way outside NTP's envelope): the correction
	// must clamp at ±500ppm rather than chase it.
	trueHz := simtime.NominalTSCHz * (1 + 5000e-6)
	sched, c := rig(t, trueHz, simtime.NominalTSCHz, simnet.Link{Base: 100 * time.Microsecond}, nil)
	sched.RunUntil(simtime.FromDuration(30 * time.Minute))
	if corr := math.Abs(c.FreqCorrectionPPM()); corr > MaxFreqPPM+1e-9 {
		t.Errorf("freq correction %v exceeds the ±%dppm clamp", corr, MaxFreqPPM)
	}
}

func TestLostResponsesRetried(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(13)
	network := simnet.New(sched, rng.Fork(0), simnet.Link{Base: 100 * time.Microsecond, LossProb: 0.5})
	if _, err := authority.NewSimBinding(sched, network, testKey(), taAddr); err != nil {
		t.Fatal(err)
	}
	platform := enclave.NewSimPlatform(sched, rng.Fork(1), network, enclave.SimConfig{
		Addr: 1, TSC: simtime.NewTSC(simtime.NominalTSCHz, 0),
	})
	c, err := NewClient(platform, Config{Key: testKey(), Addr: 1, Authority: taAddr})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	sched.RunUntil(simtime.FromDuration(time.Hour))
	if !c.Synced() {
		t.Fatal("never synced under 50% loss")
	}
	now, _ := c.Now()
	if off := time.Duration(now - int64(sched.Now())); off < -10*time.Millisecond || off > 10*time.Millisecond {
		t.Errorf("offset = %v under loss", off)
	}
}
