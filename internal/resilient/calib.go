package resilient

import (
	"triadtime/internal/core"
	"triadtime/internal/enclave"
	"triadtime/internal/engine"
	"triadtime/internal/simnet"
	"triadtime/internal/wire"
)

// policy is the hardened protocol's behaviour bundle: windowed
// sleep-free calibration, RTT-bounded reference calibration, the
// Marzullo gather (via marzulloFilter), the in-TCB refresh deadline
// with its probes, and true-chimer gossip bookkeeping. It implements
// engine.CalibrationPolicy and engine.RecoveryPolicy.
type policy struct {
	cfg Config

	calib *calibState

	refSeq     uint64 // pending reference calibration request, 0 = none
	refSentTSC uint64
	refTimer   enclave.CancelFunc

	deadlineCancel enclave.CancelFunc
	probe          *probeState

	gossip gossipView
}

// calibState tracks one windowed rate calibration: exchange A, a long
// TSC wait, exchange B. Rate = elapsed ticks / elapsed TA time. All
// exchanges are sleep-free and roundtrip-bounded, leaving no timing
// class for an F+/F- attacker to target and at most 2*RTTBound/window
// of rate influence.
type calibState struct {
	windowSec float64 // current (possibly halved) window

	pendingSeq uint64
	sentTSC    uint64
	sentEpoch  uint64
	timer      enclave.CancelFunc

	// First exchange's anchor, once taken.
	haveFirst bool
	t1        int64
	tsc1      float64
	waitTimer enclave.CancelFunc
}

// Start begins a windowed rate + reference calibration.
func (p *policy) Start(e *engine.Engine) {
	e.CancelGather()
	p.cancelRef()
	p.calib = &calibState{windowSec: p.cfg.CalibWindow.Seconds()}
	p.sendCalibExchange(e)
}

// OnTimeResponse claims Time Authority responses belonging to the
// pending calibration exchange. The sender is already authenticated as
// a configured authority; single-authority exchanges match by
// sequence.
func (p *policy) OnTimeResponse(e *engine.Engine, _ simnet.Addr, msg wire.Message) bool {
	if p.calib != nil && msg.Seq == p.calib.pendingSeq {
		p.onCalibResponse(e, msg)
		return true
	}
	return false
}

// OnAEX aborts the calibration window in flight: cancel everything,
// halve the window (AEXs are arriving faster than the window, adaptive
// per §V) and restart from exchange A.
func (p *policy) OnAEX(e *engine.Engine) {
	c := p.calib
	if c == nil {
		return
	}
	if c.timer != nil {
		c.timer()
		c.timer = nil
	}
	if c.waitTimer != nil {
		c.waitTimer()
		c.waitTimer = nil
	}
	c.pendingSeq = 0
	c.haveFirst = false
	c.windowSec /= 2
	if min := p.cfg.MinCalibWindow.Seconds(); c.windowSec < min {
		c.windowSec = min
	}
	p.sendCalibExchange(e)
}

// sendCalibExchange issues one sleep-free TA exchange (A or B according
// to calib.haveFirst).
func (p *policy) sendCalibExchange(e *engine.Engine) {
	c := p.calib
	c.pendingSeq = e.NextSeq()
	c.sentTSC = e.Platform().ReadTSC()
	c.sentEpoch = e.AEXEpoch()
	e.SendSealed(e.Authority(), wire.Message{
		Kind: wire.KindTimeRequest,
		Seq:  c.pendingSeq,
	})
	c.timer = e.Platform().AfterTicks(e.TicksFor(p.cfg.TATimeout), func() {
		c.timer = nil
		c.pendingSeq = 0
		p.sendCalibExchange(e)
	})
}

// onCalibResponse validates one exchange and advances the window state
// machine.
func (p *policy) onCalibResponse(e *engine.Engine, msg wire.Message) {
	c := p.calib
	recvTSC := e.Platform().ReadTSC()
	if c.timer != nil {
		c.timer()
		c.timer = nil
	}
	c.pendingSeq = 0

	rttTicks := float64(recvTSC - c.sentTSC)
	boundTicks := p.cfg.RTTBound.Seconds() * e.Platform().BootTSCHz()
	interrupted := e.AEXEpoch() != c.sentEpoch
	if interrupted || rttTicks > boundTicks {
		if rttTicks > boundTicks {
			e.Counters().RTTRejections++
		}
		// Retry this exchange; a severed window is handled by OnAEX.
		p.sendCalibExchange(e)
		return
	}
	// The TA read its clock one one-way before our receive: anchor the
	// reading at the roundtrip midpoint.
	tscMid := float64(c.sentTSC) + rttTicks/2
	if !c.haveFirst {
		c.haveFirst = true
		c.t1 = msg.TimeNanos
		c.tsc1 = tscMid
		c.waitTimer = e.Platform().AfterTicks(e.TicksForSeconds(c.windowSec), func() {
			c.waitTimer = nil
			p.sendCalibExchange(e)
		})
		return
	}
	dt := float64(msg.TimeNanos-c.t1) / 1e9
	dticks := tscMid - c.tsc1
	if dt <= 0 || dticks <= 0 {
		// TA clock anomaly or TSC went backwards: restart outright.
		p.Start(e)
		return
	}
	p.calib = nil
	e.CompleteCalibration(dticks/dt, msg.TimeNanos, uint64(tscMid))
}

// StartRefCalib re-anchors the reference from a single bounded TA
// exchange.
func (p *policy) StartRefCalib(e *engine.Engine) {
	e.SetState(core.StateRefCalib)
	p.sendRefExchange(e)
}

func (p *policy) sendRefExchange(e *engine.Engine) {
	p.refSeq = e.NextSeq()
	p.refSentTSC = e.Platform().ReadTSC()
	e.SendSealed(e.Authority(), wire.Message{
		Kind: wire.KindTimeRequest,
		Seq:  p.refSeq,
	})
	p.refTimer = e.Platform().AfterTicks(e.TicksFor(p.cfg.TATimeout), func() {
		p.refTimer = nil
		p.refSeq = 0
		p.sendRefExchange(e)
	})
}

func (p *policy) onRefCalibResponse(e *engine.Engine, msg wire.Message) {
	recvTSC := e.Platform().ReadTSC()
	if p.refTimer != nil {
		p.refTimer()
		p.refTimer = nil
	}
	p.refSeq = 0
	rttTicks := float64(recvTSC - p.refSentTSC)
	if rttTicks > p.cfg.RTTBound.Seconds()*e.Platform().BootTSCHz() {
		// Over-delayed (possibly attacker-held): visible retry instead
		// of silent offset error.
		e.Counters().RTTRejections++
		p.sendRefExchange(e)
		return
	}
	tscMid := float64(p.refSentTSC) + rttTicks/2
	e.AdoptTAReference(msg.TimeNanos, uint64(tscMid))
}

// Cancel clears pending probe/gather/refcalib machinery (used when
// escalating to a full calibration after a monitor discrepancy).
func (p *policy) Cancel(e *engine.Engine) {
	p.cancelProbe()
	e.CancelGather()
	p.cancelRef()
}

func (p *policy) cancelRef() {
	if p.refTimer != nil {
		p.refTimer()
		p.refTimer = nil
	}
	p.refSeq = 0
}

// recoveryPolicy is the RecoveryPolicy view of the bundle: both engine
// policies share one state struct, but each interface claims Time
// Authority responses for its own exchanges, so the method is
// disambiguated here.
type recoveryPolicy struct{ *policy }

// OnTimeResponse claims reference calibration and probe TA responses.
func (rp recoveryPolicy) OnTimeResponse(e *engine.Engine, _ simnet.Addr, msg wire.Message) bool {
	p := rp.policy
	switch {
	case p.refSeq != 0 && msg.Seq == p.refSeq:
		p.onRefCalibResponse(e, msg)
		return true
	case p.probe != nil && msg.Seq == p.probe.taSeq:
		p.onProbeTAResponse(e, msg)
		return true
	}
	return false
}
