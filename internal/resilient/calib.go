package resilient

import (
	"triadtime/internal/core"
	"triadtime/internal/enclave"
	"triadtime/internal/wire"
)

// calibState tracks one windowed rate calibration: exchange A, a long
// TSC wait, exchange B. Rate = elapsed ticks / elapsed TA time. All
// exchanges are sleep-free and roundtrip-bounded, leaving no timing
// class for an F+/F- attacker to target and at most 2*RTTBound/window
// of rate influence.
type calibState struct {
	windowSec float64 // current (possibly halved) window

	pendingSeq uint64
	sentTSC    uint64
	sentEpoch  uint64
	timer      enclave.CancelFunc

	// First exchange's anchor, once taken.
	haveFirst bool
	t1        int64
	tsc1      float64
	waitTimer enclave.CancelFunc
}

// abort cancels everything in flight, halves the window (AEXs are
// arriving faster than the window) and restarts from exchange A.
func (c *calibState) abort(n *Node) {
	if c.timer != nil {
		c.timer()
		c.timer = nil
	}
	if c.waitTimer != nil {
		c.waitTimer()
		c.waitTimer = nil
	}
	c.pendingSeq = 0
	c.haveFirst = false
	c.windowSec /= 2
	if min := n.cfg.MinCalibWindow.Seconds(); c.windowSec < min {
		c.windowSec = min
	}
	n.sendCalibExchange()
}

// startFullCalibration begins a windowed rate + reference calibration.
func (n *Node) startFullCalibration() {
	n.cancelRecovery()
	n.calib = &calibState{windowSec: n.cfg.CalibWindow.Seconds()}
	n.sendCalibExchange()
}

// sendCalibExchange issues one sleep-free TA exchange (A or B according
// to calib.haveFirst).
func (n *Node) sendCalibExchange() {
	c := n.calib
	c.pendingSeq = n.nextSeq()
	c.sentTSC = n.platform.ReadTSC()
	c.sentEpoch = n.aexEpoch
	n.platform.Send(n.cfg.Authority, n.sealer.Seal(wire.Message{
		Kind: wire.KindTimeRequest,
		Seq:  c.pendingSeq,
	}))
	c.timer = n.platform.AfterTicks(n.ticksFor(n.cfg.TATimeout.Seconds()), func() {
		c.timer = nil
		c.pendingSeq = 0
		n.sendCalibExchange()
	})
}

// onCalibResponse validates one exchange and advances the window state
// machine.
func (n *Node) onCalibResponse(msg wire.Message) {
	c := n.calib
	recvTSC := n.platform.ReadTSC()
	if c.timer != nil {
		c.timer()
		c.timer = nil
	}
	c.pendingSeq = 0

	rttTicks := float64(recvTSC - c.sentTSC)
	boundTicks := n.cfg.RTTBound.Seconds() * n.platform.BootTSCHz()
	interrupted := n.aexEpoch != c.sentEpoch
	if interrupted || rttTicks > boundTicks {
		if rttTicks > boundTicks {
			n.rttRejections++
		}
		// Retry this exchange; a severed window is handled by onAEX.
		n.sendCalibExchange()
		return
	}
	// The TA read its clock one one-way before our receive: anchor the
	// reading at the roundtrip midpoint.
	tscMid := float64(c.sentTSC) + rttTicks/2
	if !c.haveFirst {
		c.haveFirst = true
		c.t1 = msg.TimeNanos
		c.tsc1 = tscMid
		c.waitTimer = n.platform.AfterTicks(n.ticksFor(c.windowSec), func() {
			c.waitTimer = nil
			n.sendCalibExchange()
		})
		return
	}
	dt := float64(msg.TimeNanos-c.t1) / 1e9
	dticks := tscMid - c.tsc1
	if dt <= 0 || dticks <= 0 {
		// TA clock anomaly or TSC went backwards: restart outright.
		n.startFullCalibration()
		return
	}
	n.fCalib = dticks / dt
	n.adoptReference(msg.TimeNanos, uint64(tscMid))
	n.calib = nil
	n.taRefs++
	if n.events.TAReference != nil {
		n.events.TAReference()
	}
	if n.events.Calibrated != nil {
		n.events.Calibrated(n.fCalib)
	}
	n.setState(core.StateOK)
}

// startRefCalib re-anchors the reference from a single bounded TA
// exchange.
func (n *Node) startRefCalib() {
	n.setState(core.StateRefCalib)
	n.sendRefExchange()
}

func (n *Node) sendRefExchange() {
	n.refSeq = n.nextSeq()
	n.refSentTSC = n.platform.ReadTSC()
	n.platform.Send(n.cfg.Authority, n.sealer.Seal(wire.Message{
		Kind: wire.KindTimeRequest,
		Seq:  n.refSeq,
	}))
	n.refTimer = n.platform.AfterTicks(n.ticksFor(n.cfg.TATimeout.Seconds()), func() {
		n.refTimer = nil
		n.refSeq = 0
		n.sendRefExchange()
	})
}

func (n *Node) onRefCalibResponse(msg wire.Message) {
	recvTSC := n.platform.ReadTSC()
	if n.refTimer != nil {
		n.refTimer()
		n.refTimer = nil
	}
	n.refSeq = 0
	rttTicks := float64(recvTSC - n.refSentTSC)
	if rttTicks > n.cfg.RTTBound.Seconds()*n.platform.BootTSCHz() {
		// Over-delayed (possibly attacker-held): visible retry instead
		// of silent offset error.
		n.rttRejections++
		n.sendRefExchange()
		return
	}
	tscMid := float64(n.refSentTSC) + rttTicks/2
	n.adoptReference(msg.TimeNanos, uint64(tscMid))
	n.taRefs++
	if n.events.TAReference != nil {
		n.events.TAReference()
	}
	n.setState(core.StateOK)
}

// cancelRecovery clears pending gather/refcalib machinery.
func (n *Node) cancelRecovery() {
	if n.gather != nil {
		if n.gather.timer != nil {
			n.gather.timer()
		}
		n.gather = nil
	}
	if n.refTimer != nil {
		n.refTimer()
		n.refTimer = nil
	}
	n.refSeq = 0
}
