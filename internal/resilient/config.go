// Package resilient implements the hardened Triad variant sketched in
// the paper's Section V discussion. It differs from the original
// protocol (internal/core) in four ways, each closing one vulnerability
// demonstrated in Section IV:
//
//  1. Windowed, sleep-free rate calibration. Instead of regressing TSC
//     increments on requested TA sleeps (the surface the F+/F- timing
//     side channel attacks), the node takes two immediate-response TA
//     exchanges separated by a long TSC window and divides elapsed
//     ticks by elapsed TA time. Every exchange's roundtrip is bounded:
//     a response slower than RTTBound is discarded, so an attacker can
//     skew the rate by at most 2*RTTBound/window — O(100ppm) for
//     multi-second windows instead of the paper's 10%.
//
//  2. Round-trip bounding of reference calibration, with the same
//     effect on offset manipulation: delaying a TA response beyond the
//     bound turns the attack into visible unavailability, not silent
//     clock error.
//
//  3. True-chimer peer untainting (Marzullo). A tainted node gathers
//     all peer timestamps, forms consistency intervals, and adopts the
//     midpoint of the majority intersection — never the maximum. A
//     single fast compromised clock is disjoint from the honest
//     majority and gets ignored; without a majority the node falls
//     back to the Time Authority. This severs the F- propagation of
//     Figure 6.
//
//  4. An in-TCB refresh deadline. The original protocol refreshes only
//     on attacker-controlled AEXs; the hardened node additionally
//     self-checks every DeadlineTicks of its own TSC, so a
//     miscalibrated clock cannot run unchecked arbitrarily long in a
//     low-AEX environment (the amplifier behind Figure 4).
//
// Since the engine extraction, this package is a thin policy bundle:
// internal/engine owns the clock state, the state machine, datagram
// dispatch, AEX epochs, peer gathering, rate monitoring, and counters,
// while resilient contributes the windowed calibration policy, the
// probe/deadline recovery policy, the Marzullo true-chimer peer
// filter, and the chimer-gossip hook.
package resilient

import (
	"time"

	"triadtime/internal/core"
	"triadtime/internal/simnet"
)

// Config parameterizes a hardened node.
type Config struct {
	// Key is the cluster's 32-byte pre-shared AES-256 key.
	Key []byte
	// Addr is this node's network address and wire sender identity.
	Addr simnet.Addr
	// Peers are the other nodes in the cluster.
	Peers []simnet.Addr
	// Authority is the Time Authority's address.
	Authority simnet.Addr
	// Authorities lists multiple independent Time Authorities. With two
	// or more entries the node runs multi-authority quorum calibration
	// (engine.QuorumCalibration) instead of the single-TA windowed
	// calibration: every exchange fans out to all authorities and a
	// reference is adopted only when a quorum's Marzullo intervals
	// agree. Authority may be left zero and defaults to Authorities[0].
	Authorities []simnet.Addr
	// QuorumMinAgree overrides the quorum's strict-majority agreement
	// rule with an absolute count. 0 keeps the majority rule.
	QuorumMinAgree int
	// QuorumRecheck is the steady-state quorum revalidation period
	// (default 10s).
	QuorumRecheck time.Duration

	// CalibWindow is the target TSC window between the two calibration
	// exchanges, expressed as wall time via the boot hint. Longer
	// windows dilute attacker-induced delay. An AEX inside the window
	// aborts it; the node halves the window down to MinCalibWindow and
	// retries, so calibration completes even under Triad-like AEX
	// storms. Default: 8s.
	CalibWindow time.Duration
	// MinCalibWindow floors the adaptive halving. Default: 500ms.
	MinCalibWindow time.Duration
	// RTTBound rejects any TA exchange whose roundtrip exceeds it.
	// Default: 5ms.
	RTTBound time.Duration
	// PeerTimeout is how long a tainted node gathers peer responses
	// before deciding. Default: 20ms.
	PeerTimeout time.Duration
	// TATimeout bounds the wait for a TA response. Default: 250ms.
	TATimeout time.Duration

	// ErrBudget is the half-width of the consistency interval assigned
	// to each clock reading when intersecting (own drift since last
	// sync + peer drift + network). Default: 50ms.
	ErrBudget time.Duration
	// DeadlineTicks is the in-TCB self-check period in guest TSC ticks.
	// Zero defaults to ~2s of ticks via the boot hint at node creation.
	// Set to a negative sentinel via DisableDeadline instead of zero.
	DeadlineTicks uint64
	// DisableDeadline turns off the in-TCB refresh deadline (ablation).
	DisableDeadline bool
	// DisableChimerFilter makes peer untainting behave like the
	// original protocol (adopt-if-higher, first response) — for
	// ablation benchmarks.
	DisableChimerFilter bool
	// EnableGossip turns on true-chimer report gossip (§V): peers
	// accredited by a majority of published views can untaint a node
	// single-handedly, reducing Time Authority reliance. Node
	// identities must be <= 64 for the report bitmask.
	EnableGossip bool

	// MonitorTicks / MonitorTolerance / DisableMonitor mirror the
	// original node's INC monitoring configuration. The hardened node
	// runs the frequency-independent memory monitor by default;
	// DisableMemMonitor turns it off (ablation).
	MonitorTicks      uint64
	MonitorTolerance  float64
	DisableMonitor    bool
	DisableMemMonitor bool

	// Events are optional observation hooks (shared with core).
	Events core.Events
}

// Defaults for zero Config fields.
const (
	DefaultCalibWindow    = 8 * time.Second
	DefaultMinCalibWindow = 500 * time.Millisecond
	DefaultRTTBound       = 5 * time.Millisecond
	DefaultPeerTimeout    = 20 * time.Millisecond
	DefaultTATimeout      = 250 * time.Millisecond
	DefaultErrBudget      = 50 * time.Millisecond
	DefaultDeadline       = 2 * time.Second
)

// withDefaults returns a copy of the config with the resilient-specific
// zero fields defaulted; key and address validation is the engine's
// job (NewNode wraps its errors under this package's name).
func (c Config) withDefaults() (Config, error) {
	if c.CalibWindow <= 0 {
		c.CalibWindow = DefaultCalibWindow
	}
	if c.MinCalibWindow <= 0 {
		c.MinCalibWindow = DefaultMinCalibWindow
	}
	if c.MinCalibWindow > c.CalibWindow {
		c.MinCalibWindow = c.CalibWindow
	}
	if c.RTTBound <= 0 {
		c.RTTBound = DefaultRTTBound
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = DefaultPeerTimeout
	}
	if c.TATimeout <= 0 {
		c.TATimeout = DefaultTATimeout
	}
	if c.ErrBudget <= 0 {
		c.ErrBudget = DefaultErrBudget
	}
	// MonitorTicks / MonitorTolerance default in the engine.
	return c, nil
}
