package resilient

import (
	"time"

	"triadtime/internal/engine"
	"triadtime/internal/wire"
)

// True-chimer gossip (paper §V): each hardened node publishes which
// cluster members it currently considers true-chimers, learned from
// interval-consistency evidence during untainting and probes. A peer
// accredited by a strict majority of reporters may untaint a node on
// its own — peers' consistency testimony substitutes for a same-moment
// majority — so the cluster relies on the Time Authority less often,
// without ever accrediting a lone fast clock (honest observers mark it
// a false-ticker, and its self-serving report is one vote).

// maxGossipID is the highest node identity representable in the
// report's 64-bit chimer bitmask.
const maxGossipID = 64

// gossipView is the node's chimer bookkeeping; the sent/received/
// adoption tallies live in the engine's Counters.
type gossipView struct {
	// own is this node's view: bit id-1 set = node id seen consistent.
	own uint64
	// views holds the latest report bitmask per reporter identity.
	views map[uint32]uint64
	// lastTA is the freshest TA-anchored timestamp per reporter (the
	// §V credibility signal; currently informational).
	lastTA map[uint32]int64
}

func bitFor(id uint32) uint64 {
	if id == 0 || id > maxGossipID {
		return 0
	}
	return 1 << (id - 1)
}

// markChimer records consistency evidence about a peer.
func (p *policy) markChimer(id uint32, consistent bool) {
	if !p.cfg.EnableGossip {
		return
	}
	bit := bitFor(id)
	if bit == 0 {
		return
	}
	if consistent {
		p.gossip.own |= bit
	} else {
		p.gossip.own &^= bit
	}
}

// broadcastChimerReport publishes the current view to all peers. It
// rides the in-TCB deadline, so views refresh at probe cadence.
func (p *policy) broadcastChimerReport(e *engine.Engine) {
	if !p.cfg.EnableGossip || len(p.cfg.Peers) == 0 {
		return
	}
	c := e.Counters()
	c.GossipSent++
	for _, peer := range p.cfg.Peers {
		e.SendSealed(peer, wire.Message{
			Kind:      wire.KindChimerReport,
			Seq:       uint64(c.GossipSent),
			Sleep:     time.Duration(e.ReferenceNanos()), // latest TA-anchored time
			TimeNanos: int64(p.gossip.own),
		})
	}
}

// gossipHook ingests peers' published views; it is installed only when
// gossip is enabled, so a disabled node drops reports in the engine.
type gossipHook struct{ p *policy }

// OnChimerReport ingests a peer's published view.
func (h gossipHook) OnChimerReport(e *engine.Engine, from uint32, msg wire.Message) {
	g := &h.p.gossip
	if g.views == nil {
		g.views = make(map[uint32]uint64)
		g.lastTA = make(map[uint32]int64)
	}
	g.views[from] = uint64(msg.TimeNanos)
	g.lastTA[from] = int64(msg.Sleep)
	e.Counters().GossipReceived++
}

// accredited reports whether a strict majority of the cluster's
// reporters (this node plus every peer view received) currently marks
// id as a true-chimer.
func (p *policy) accredited(id uint32) bool {
	if !p.cfg.EnableGossip {
		return false
	}
	bit := bitFor(id)
	if bit == 0 {
		return false
	}
	clusterSize := len(p.cfg.Peers) + 1
	votes := 0
	if p.gossip.own&bit != 0 {
		votes++
	}
	for reporter, view := range p.gossip.views { //triad:nolint:simdet commutative vote sum — iteration order cannot affect the count
		if reporter == id {
			continue // no self-accreditation: the §V credibility rule
		}
		if view&bit != 0 {
			votes++
		}
	}
	return votes*2 > clusterSize
}
