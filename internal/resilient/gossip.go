package resilient

import (
	"time"

	"triadtime/internal/wire"
)

// True-chimer gossip (paper §V): each hardened node publishes which
// cluster members it currently considers true-chimers, learned from
// interval-consistency evidence during untainting and probes. A peer
// accredited by a strict majority of reporters may untaint a node on
// its own — peers' consistency testimony substitutes for a same-moment
// majority — so the cluster relies on the Time Authority less often,
// without ever accrediting a lone fast clock (honest observers mark it
// a false-ticker, and its self-serving report is one vote).

// maxGossipID is the highest node identity representable in the
// report's 64-bit chimer bitmask.
const maxGossipID = 64

// gossipState is the node's chimer bookkeeping.
type gossipState struct {
	// own is this node's view: bit id-1 set = node id seen consistent.
	own uint64
	// views holds the latest report bitmask per reporter identity.
	views map[uint32]uint64
	// lastTA is the freshest TA-anchored timestamp per reporter (the
	// §V credibility signal; currently informational).
	lastTA map[uint32]int64

	sent, received, adoptions int
}

func bitFor(id uint32) uint64 {
	if id == 0 || id > maxGossipID {
		return 0
	}
	return 1 << (id - 1)
}

// markChimer records consistency evidence about a peer.
func (n *Node) markChimer(id uint32, consistent bool) {
	if !n.cfg.EnableGossip {
		return
	}
	bit := bitFor(id)
	if bit == 0 {
		return
	}
	if consistent {
		n.gossip.own |= bit
	} else {
		n.gossip.own &^= bit
	}
}

// broadcastChimerReport publishes the current view to all peers. It
// rides the in-TCB deadline, so views refresh at probe cadence.
func (n *Node) broadcastChimerReport() {
	if !n.cfg.EnableGossip || len(n.cfg.Peers) == 0 {
		return
	}
	n.gossip.sent++
	for _, p := range n.cfg.Peers {
		n.platform.Send(p, n.sealer.Seal(wire.Message{
			Kind:      wire.KindChimerReport,
			Seq:       uint64(n.gossip.sent),
			Sleep:     time.Duration(n.refNanos), // latest TA-anchored time
			TimeNanos: int64(n.gossip.own),
		}))
	}
}

// onChimerReport ingests a peer's published view.
func (n *Node) onChimerReport(from uint32, msg wire.Message) {
	if !n.cfg.EnableGossip {
		return
	}
	if n.gossip.views == nil {
		n.gossip.views = make(map[uint32]uint64)
		n.gossip.lastTA = make(map[uint32]int64)
	}
	n.gossip.views[from] = uint64(msg.TimeNanos)
	n.gossip.lastTA[from] = int64(msg.Sleep)
	n.gossip.received++
}

// accredited reports whether a strict majority of the cluster's
// reporters (this node plus every peer view received) currently marks
// id as a true-chimer.
func (n *Node) accredited(id uint32) bool {
	if !n.cfg.EnableGossip {
		return false
	}
	bit := bitFor(id)
	if bit == 0 {
		return false
	}
	clusterSize := len(n.cfg.Peers) + 1
	votes := 0
	if n.gossip.own&bit != 0 {
		votes++
	}
	for reporter, view := range n.gossip.views {
		if reporter == id {
			continue // no self-accreditation: the §V credibility rule
		}
		if view&bit != 0 {
			votes++
		}
	}
	return votes*2 > clusterSize
}

// GossipStats reports (reportsSent, reportsReceived, untaintsViaGossip).
func (n *Node) GossipStats() (sent, received, adoptions int) {
	return n.gossip.sent, n.gossip.received, n.gossip.adoptions
}
