package resilient

import (
	"testing"
	"time"

	"triadtime/internal/core"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
)

func gossipRig(t *testing.T, nodes int) *rig {
	t.Helper()
	return newRig(t, nodes, func(_ int, cfg *Config) {
		cfg.EnableGossip = true
	})
}

func TestGossipBuildsAccreditation(t *testing.T) {
	r := gossipRig(t, 3)
	r.startAll()
	// Several deadline periods: probes gather consistency evidence and
	// reports circulate.
	r.run(2 * time.Minute)
	for i, n := range r.nodes {
		sent, received, _ := n.GossipStats()
		if sent == 0 || received == 0 {
			t.Fatalf("node %d gossip sent/received = %d/%d", i+1, sent, received)
		}
		for _, peer := range n.pol.cfg.Peers {
			if !n.pol.accredited(uint32(peer)) {
				t.Errorf("node %d: honest peer %d not accredited", i+1, peer)
			}
		}
	}
}

func TestGossipNeverAccreditsFastClock(t *testing.T) {
	// Node 5 models a Byzantine participant: it holds the cluster key
	// and answers protocol messages, but none of the honest refresh
	// triggers run (a hardened node would self-heal within one in-TCB
	// deadline — that is tested elsewhere; gossip safety must hold even
	// against a participant that does not).
	r := newRig(t, 5, func(i int, cfg *Config) {
		cfg.EnableGossip = true
		if i == 4 {
			cfg.DisableDeadline = true
			cfg.DisableMonitor = true
		}
	})
	r.startAll()
	r.run(90 * time.Second)
	// Compromise node 5's clock after everyone calibrated honestly.
	r.nodes[4].eng.ShiftReference(10 * int64(time.Second))
	r.run(3 * time.Minute)
	for i := 0; i < 4; i++ {
		if r.nodes[i].pol.accredited(5) {
			t.Errorf("node %d accredits the fast clock", i+1)
		}
		// Honest peers stay accredited.
		for peer := uint32(1); peer <= 4; peer++ {
			if peer == uint32(i+1) {
				continue
			}
			if !r.nodes[i].pol.accredited(peer) {
				t.Errorf("node %d lost accreditation of honest peer %d", i+1, peer)
			}
		}
	}
	// And the fast clock's self-promoting reports do not help it: its
	// own vote is excluded and honest votes are against.
}

func TestGossipAccreditedPeerUntaintsAlone(t *testing.T) {
	r := gossipRig(t, 3)
	box := &muzzleAll{}
	r.net.AttachMiddlebox(box)
	r.startAll()
	r.run(2 * time.Minute) // accreditation established

	victim := r.nodes[0]
	taBefore := victim.TAReferences()
	_, _, adoptionsBefore := victim.GossipStats()
	// Silence node 3 entirely: a taint on node 1 now yields a single
	// answer (node 2) — no same-moment majority.
	box.muted = 3
	r.platforms[0].FireAEX()
	r.run(2 * time.Second)

	if victim.State() != core.StateOK {
		t.Fatalf("victim state = %v", victim.State())
	}
	_, _, adoptions := victim.GossipStats()
	if adoptions != adoptionsBefore+1 {
		t.Errorf("gossip adoptions = %d, want %d", adoptions, adoptionsBefore+1)
	}
	if victim.TAReferences() != taBefore {
		t.Error("victim fell back to the TA despite an accredited responder")
	}
	// The clock stayed honest.
	reading, _ := victim.ClockReading()
	if off := time.Duration(reading - int64(r.sched.Now())); off < -50*time.Millisecond || off > 50*time.Millisecond {
		t.Errorf("clock off reference by %v after gossip adoption", off)
	}
}

func TestGossipRefusesUnaccreditedSingleAnswer(t *testing.T) {
	// Without gossip history (fresh cluster), a single answer must
	// still fall through to the TA.
	r := gossipRig(t, 3)
	box := &muzzleAll{}
	r.net.AttachMiddlebox(box)
	r.startAll()
	r.run(10 * time.Second) // calibrated, but no probe rounds yet
	victim := r.nodes[0]
	taBefore := victim.TAReferences()
	box.muted = 3
	r.platforms[0].FireAEX()
	r.run(2 * time.Second)
	if victim.State() != core.StateOK {
		t.Fatalf("victim state = %v", victim.State())
	}
	if victim.TAReferences() != taBefore+1 {
		t.Errorf("TA refs = %d, want %d (no accreditation yet)", victim.TAReferences(), taBefore+1)
	}
}

func TestGossipFastClockCannotUntaintViaAccreditation(t *testing.T) {
	// Even while the compromised node is still "accredited" from its
	// honest past, its future disjoint answers are not adopted once
	// honest evidence marks it false — and before that, an adoption
	// from a disagreeing accredited set is refused.
	r := newRig(t, 3, func(i int, cfg *Config) {
		cfg.EnableGossip = true
		if i == 2 {
			cfg.DisableDeadline = true // Byzantine participant: no self-heal
			cfg.DisableMonitor = true
		}
	})
	r.startAll()
	r.run(2 * time.Minute) // accreditation established everywhere
	r.nodes[2].eng.ShiftReference(10 * int64(time.Second))
	// Let probes observe the now-fast clock: honest nodes revoke.
	r.run(30 * time.Second)
	if r.nodes[0].pol.accredited(3) || r.nodes[1].pol.accredited(3) {
		t.Fatal("fast clock still accredited after probe evidence")
	}
	// A taint on node 1 with node 2 muzzled leaves only node 3's
	// answer: unaccredited -> TA, clock stays honest.
	box := &muzzleAll{muted: 2}
	r.net.AttachMiddlebox(box)
	taBefore := r.nodes[0].TAReferences()
	r.platforms[0].FireAEX()
	r.run(2 * time.Second)
	if r.nodes[0].TAReferences() != taBefore+1 {
		t.Error("victim did not use the TA against the lone fast clock")
	}
	reading, _ := r.nodes[0].ClockReading()
	if off := time.Duration(reading - int64(r.sched.Now())); off > 50*time.Millisecond {
		t.Errorf("victim infected: %v", off)
	}
}

// muzzleAll drops every packet sent by the muted node.
type muzzleAll struct {
	muted simnet.Addr
}

func (b *muzzleAll) Process(_ simtime.Instant, p simnet.Packet) simnet.Verdict {
	return simnet.Verdict{Drop: b.muted != 0 && p.From == b.muted}
}

func TestBitFor(t *testing.T) {
	if bitFor(0) != 0 || bitFor(65) != 0 {
		t.Error("out-of-range ids must map to no bit")
	}
	if bitFor(1) != 1 || bitFor(64) != 1<<63 {
		t.Error("bit mapping wrong")
	}
}

func TestGossipDisabledIsInert(t *testing.T) {
	r := newRig(t, 3, nil) // gossip off
	r.startAll()
	r.run(2 * time.Minute)
	for i, n := range r.nodes {
		sent, received, adoptions := n.GossipStats()
		if sent != 0 || received != 0 || adoptions != 0 {
			t.Errorf("node %d gossip active while disabled: %d/%d/%d", i+1, sent, received, adoptions)
		}
		if n.pol.accredited(uint32((i+1)%3) + 1) {
			t.Errorf("node %d accredits with gossip disabled", i+1)
		}
	}
}
