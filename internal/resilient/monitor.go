package resilient

import (
	"triadtime/internal/core"
	"triadtime/internal/enclave"
)

// Rate monitoring is shared with the original protocol (the enclave's
// RateMonitor): INC counting cross-checks the TSC at fixed core
// frequency, and the hardened node enables the frequency-independent
// memory monitor by default, so a DVFS-masked TSC scaling is caught
// too.

func (n *Node) startMonitor() {
	n.monitor = enclave.NewRateMonitor(n.platform, enclave.MonitorConfig{
		INCTicks:      n.cfg.MonitorTicks,
		INCTol:        n.cfg.MonitorTolerance,
		EnableMem:     !n.cfg.DisableMemMonitor,
		OnDiscrepancy: n.onTSCDiscrepancy,
	})
	n.monitor.Start()
}

func (n *Node) onTSCDiscrepancy(rel float64) {
	if n.events.Discrepancy != nil {
		n.events.Discrepancy(rel)
	}
	n.monitor.Reset()
	if n.state == core.StateFullCalib {
		return
	}
	n.cancelProbe()
	n.cancelRecovery()
	n.setState(core.StateFullCalib)
	n.startFullCalibration()
}
