package resilient

import (
	"fmt"

	"triadtime/internal/core"
	"triadtime/internal/enclave"
	"triadtime/internal/marzullo"
	"triadtime/internal/simnet"
	"triadtime/internal/wire"
)

// Node is a hardened Triad participant (see the package comment for how
// it departs from internal/core's original protocol). Like the
// original, it is event-driven and runs unmodified on the simulation
// and the live runtime.
type Node struct {
	cfg      Config
	platform enclave.Platform
	sealer   *wire.Sealer
	opener   *wire.Opener
	events   *core.Events
	peers    map[simnet.Addr]bool

	state core.State

	// Trusted clock: now = refNanos + (tsc - refTSC)/fCalib.
	fCalib     float64
	refNanos   int64
	refTSC     uint64
	lastServed int64

	aexEpoch uint64
	seq      uint64

	calib      *calibState
	refSeq     uint64
	refSentTSC uint64
	refTimer   enclave.CancelFunc

	gather *gatherState

	deadlineCancel enclave.CancelFunc
	probe          *probeState

	monitor *enclave.RateMonitor
	gossip  gossipState

	// Counters.
	taRefs        int
	peerUntaints  int
	rejectedPeers int // peer timestamps discarded by the chimer filter
	rttRejections int // TA exchanges discarded by the RTT bound
	probes        int
	probeFailures int
	servedCount   uint64
}

// NewNode creates a hardened node on the platform; call Start to begin.
func NewNode(platform enclave.Platform, cfg Config) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	sealer, err := wire.NewSealer(cfg.Key, uint32(cfg.Addr))
	if err != nil {
		return nil, fmt.Errorf("resilient: %w", err)
	}
	opener, err := wire.NewOpener(cfg.Key)
	if err != nil {
		return nil, fmt.Errorf("resilient: %w", err)
	}
	if cfg.DeadlineTicks == 0 {
		cfg.DeadlineTicks = uint64(DefaultDeadline.Seconds() * platform.BootTSCHz())
	}
	peers := make(map[simnet.Addr]bool, len(cfg.Peers))
	for _, p := range cfg.Peers {
		peers[p] = true
	}
	n := &Node{
		cfg:      cfg,
		platform: platform,
		sealer:   sealer,
		opener:   opener,
		events:   &cfg.Events,
		peers:    peers,
		state:    core.StateInit,
	}
	platform.SetAEXHandler(n.onAEX)
	platform.SetMessageHandler(n.onDatagram)
	return n, nil
}

// Start launches the protocol. Idempotent.
func (n *Node) Start() {
	if n.state != core.StateInit {
		return
	}
	n.setState(core.StateFullCalib)
	n.startFullCalibration()
	if !n.cfg.DisableMonitor {
		n.startMonitor()
	}
	if !n.cfg.DisableDeadline {
		n.armDeadline()
	}
}

// Addr reports the node's network address.
func (n *Node) Addr() simnet.Addr { return n.cfg.Addr }

// State reports the protocol state.
func (n *Node) State() core.State { return n.state }

// FCalib reports the calibrated tick rate (0 before calibration).
func (n *Node) FCalib() float64 { return n.fCalib }

// TAReferences counts adopted Time Authority references.
func (n *Node) TAReferences() int { return n.taRefs }

// PeerUntaints counts recoveries via peer consensus.
func (n *Node) PeerUntaints() int { return n.peerUntaints }

// RejectedPeerSamples counts peer timestamps the chimer filter refused.
func (n *Node) RejectedPeerSamples() int { return n.rejectedPeers }

// RTTRejections counts TA exchanges discarded by the roundtrip bound.
func (n *Node) RTTRejections() int { return n.rttRejections }

// Probes counts in-TCB deadline self-checks; ProbeFailures counts those
// that found the local clock inconsistent.
func (n *Node) Probes() int        { return n.probes }
func (n *Node) ProbeFailures() int { return n.probeFailures }

// ServedCount reports how many trusted timestamps have been served.
func (n *Node) ServedCount() uint64 { return n.servedCount }

// TrustedNow serves one trusted timestamp; ErrUnavailable while the
// node cannot vouch for its clock.
func (n *Node) TrustedNow() (int64, error) {
	if n.state != core.StateOK {
		return 0, fmt.Errorf("%w: state %s", core.ErrUnavailable, n.state)
	}
	return n.serveTimestamp(), nil
}

// ClockReading is instrumentation-only (drift sampling), as in core.
func (n *Node) ClockReading() (int64, bool) {
	if n.fCalib == 0 {
		return 0, false
	}
	return n.clockNow(), true
}

func (n *Node) clockNow() int64 {
	tsc := n.platform.ReadTSC()
	if tsc < n.refTSC {
		return n.refNanos
	}
	return n.refNanos + int64(float64(tsc-n.refTSC)/n.fCalib*1e9)
}

func (n *Node) serveTimestamp() int64 {
	ts := n.clockNow()
	if ts <= n.lastServed {
		ts = n.lastServed + 1
	}
	n.lastServed = ts
	n.servedCount++
	return ts
}

func (n *Node) setState(s core.State) {
	if s == n.state {
		return
	}
	old := n.state
	n.state = s
	if n.events.StateChanged != nil {
		n.events.StateChanged(old, s)
	}
}

func (n *Node) ticksFor(d float64) uint64 {
	return uint64(d * n.platform.BootTSCHz())
}

func (n *Node) nextSeq() uint64 {
	n.seq++
	return n.seq
}

// onDatagram authenticates and dispatches one datagram.
func (n *Node) onDatagram(_ simnet.Addr, payload []byte) {
	msg, sender, err := n.opener.Open(payload)
	if err != nil {
		return
	}
	switch msg.Kind {
	case wire.KindTimeResponse:
		if simnet.Addr(sender) != n.cfg.Authority {
			return
		}
		n.onTimeResponse(msg)
	case wire.KindPeerTimeRequest:
		if !n.peers[simnet.Addr(sender)] {
			return
		}
		if n.state != core.StateOK {
			return // never vouch for a clock we do not trust ourselves
		}
		n.platform.Send(simnet.Addr(sender), n.sealer.Seal(wire.Message{
			Kind:      wire.KindPeerTimeResponse,
			Seq:       msg.Seq,
			TimeNanos: n.serveTimestamp(),
		}))
	case wire.KindPeerTimeResponse:
		if !n.peers[simnet.Addr(sender)] {
			return
		}
		n.onPeerTimeResponse(sender, msg)
	case wire.KindChimerReport:
		if !n.peers[simnet.Addr(sender)] {
			return
		}
		n.onChimerReport(sender, msg)
	case wire.KindTimeRequest:
		// Not the Time Authority; ignore.
	}
}

func (n *Node) onTimeResponse(msg wire.Message) {
	switch {
	case n.calib != nil && msg.Seq == n.calib.pendingSeq:
		n.onCalibResponse(msg)
	case n.refSeq != 0 && msg.Seq == n.refSeq:
		n.onRefCalibResponse(msg)
	case n.probe != nil && msg.Seq == n.probe.taSeq:
		n.onProbeTAResponse(msg)
	}
}

// onAEX: continuity severed. Taint if serving; abort any calibration
// window in flight.
func (n *Node) onAEX() {
	n.aexEpoch++
	switch n.state {
	case core.StateOK:
		n.cancelProbe()
		n.becomeTainted()
	case core.StateFullCalib:
		if n.calib != nil {
			n.calib.abort(n)
		}
	case core.StateTainted, core.StateRefCalib, core.StateInit:
	}
}

// adoptReference installs a trusted (time, tsc) anchor.
func (n *Node) adoptReference(nanos int64, tsc uint64) {
	n.refNanos = nanos
	n.refTSC = tsc
}

// intervalFor builds the consistency interval for a clock reading.
func (n *Node) intervalFor(ts int64) marzullo.Interval {
	e := int64(n.cfg.ErrBudget)
	return marzullo.Interval{Lo: ts - e, Hi: ts + e}
}
