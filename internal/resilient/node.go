package resilient

import (
	"fmt"

	"triadtime/internal/core"
	"triadtime/internal/enclave"
	"triadtime/internal/engine"
	"triadtime/internal/simnet"
)

// Node is a hardened Triad participant (see the package comment for how
// it departs from internal/core's original protocol): the shared
// protocol engine assembled with the Section V policies. Like the
// original, it is event-driven and runs unmodified on the simulation
// and the live runtime.
type Node struct {
	eng *engine.Engine
	pol *policy
}

// NewNode creates a hardened node on the platform; call Start to begin.
func NewNode(platform enclave.Platform, cfg Config) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.DeadlineTicks == 0 {
		cfg.DeadlineTicks = uint64(DefaultDeadline.Seconds() * platform.BootTSCHz())
	}
	pol := &policy{cfg: cfg}
	var filter engine.PeerFilter = marzulloFilter{pol}
	if cfg.DisableChimerFilter {
		// Original-protocol ablation: first response decides,
		// adopt-if-higher.
		filter = engine.AdoptIfAhead{}
	}
	var gossip engine.GossipHook
	if cfg.EnableGossip {
		gossip = gossipHook{pol}
	}
	pols := engine.Policies{
		Calibration: pol,
		Recovery:    recoveryPolicy{pol},
		Filter:      filter,
		Gossip:      gossip,
	}
	if len(cfg.Authorities) >= 2 {
		// Multi-authority deployment: quorum calibration replaces the
		// windowed single-TA calibration, reusing the hardened window
		// and error-budget tuning; probes, deadlines, and Marzullo peer
		// untainting stay the inner policy's.
		q := engine.NewQuorumCalibration(engine.QuorumConfig{
			TATimeout:       cfg.TATimeout,
			ErrBudget:       cfg.ErrBudget,
			CalibWindow:     cfg.CalibWindow,
			MinCalibWindow:  cfg.MinCalibWindow,
			RecheckInterval: cfg.QuorumRecheck,
			MinAgree:        cfg.QuorumMinAgree,
		})
		pols.Calibration = q
		pols.Recovery = engine.QuorumRecovery{Inner: recoveryPolicy{pol}, Quorum: q}
	}
	eng, err := engine.New(platform, engine.Config{
		Key:              cfg.Key,
		Addr:             cfg.Addr,
		Peers:            cfg.Peers,
		Authority:        cfg.Authority,
		Authorities:      cfg.Authorities,
		PeerTimeout:      cfg.PeerTimeout,
		MonitorTicks:     cfg.MonitorTicks,
		MonitorTolerance: cfg.MonitorTolerance,
		DisableMonitor:   cfg.DisableMonitor,
		EnableMemMonitor: !cfg.DisableMemMonitor,
		Events:           cfg.Events,
	}, pols)
	if err != nil {
		return nil, fmt.Errorf("resilient: %w", err)
	}
	return &Node{eng: eng, pol: pol}, nil
}

// Start launches the protocol. Idempotent.
func (n *Node) Start() { n.eng.Start() }

// Addr reports the node's network address.
func (n *Node) Addr() simnet.Addr { return n.eng.Addr() }

// State reports the protocol state.
func (n *Node) State() core.State { return n.eng.State() }

// FCalib reports the calibrated tick rate (0 before calibration).
func (n *Node) FCalib() float64 { return n.eng.FCalib() }

// TAReferences counts adopted Time Authority references.
func (n *Node) TAReferences() int { return n.eng.Counters().TAReferences }

// PeerUntaints counts recoveries via peer consensus.
func (n *Node) PeerUntaints() int { return n.eng.Counters().PeerUntaints }

// RejectedPeerSamples counts peer timestamps the chimer filter refused.
func (n *Node) RejectedPeerSamples() int { return n.eng.Counters().RejectedPeers }

// RTTRejections counts TA exchanges discarded by the roundtrip bound.
func (n *Node) RTTRejections() int { return n.eng.Counters().RTTRejections }

// Probes counts in-TCB deadline self-checks; ProbeFailures counts those
// that found the local clock inconsistent.
func (n *Node) Probes() int        { return n.eng.Counters().Probes }
func (n *Node) ProbeFailures() int { return n.eng.Counters().ProbeFailures }

// ServedCount reports how many trusted timestamps have been served.
func (n *Node) ServedCount() uint64 { return n.eng.Counters().Served }

// Counters returns a snapshot of the engine's protocol counters.
func (n *Node) Counters() engine.Counters { return n.eng.CounterSnapshot() }

// GossipStats reports (reportsSent, reportsReceived, untaintsViaGossip).
func (n *Node) GossipStats() (sent, received, adoptions int) {
	c := n.eng.Counters()
	return c.GossipSent, c.GossipReceived, c.GossipAdoptions
}

// TrustedNow serves one trusted timestamp; ErrUnavailable while the
// node cannot vouch for its clock.
func (n *Node) TrustedNow() (int64, error) { return n.eng.TrustedNow() }

// ClockReading is instrumentation-only (drift sampling), as in core.
func (n *Node) ClockReading() (int64, bool) { return n.eng.ClockReading() }
