package resilient

import (
	"errors"
	"math"
	"testing"
	"time"

	"triadtime/internal/attack"
	"triadtime/internal/authority"
	"triadtime/internal/core"
	"triadtime/internal/enclave"
	"triadtime/internal/sim"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
	"triadtime/internal/wire"
)

const taAddr simnet.Addr = 100

func testKey() []byte {
	key := make([]byte, wire.KeySize)
	for i := range key {
		key[i] = byte(i + 9)
	}
	return key
}

type rig struct {
	t         *testing.T
	sched     *sim.Scheduler
	net       *simnet.Network
	nodes     []*Node
	platforms []*enclave.SimPlatform
}

func newRig(t *testing.T, nodeCount int, tweak func(i int, cfg *Config)) *rig {
	t.Helper()
	sched := sim.NewScheduler()
	rng := sim.NewRNG(555)
	network := simnet.New(sched, rng.Fork(0), simnet.DefaultLink())
	if _, err := authority.NewSimBinding(sched, network, testKey(), taAddr); err != nil {
		t.Fatal(err)
	}
	r := &rig{t: t, sched: sched, net: network}
	addrs := make([]simnet.Addr, nodeCount)
	for i := range addrs {
		addrs[i] = simnet.Addr(i + 1)
	}
	for i := 0; i < nodeCount; i++ {
		p := enclave.NewSimPlatform(sched, rng.Fork(uint64(i+10)), network, enclave.SimConfig{
			Addr: addrs[i],
			TSC:  simtime.NewTSC(simtime.NominalTSCHz, uint64(i)*3e9),
		})
		var peers []simnet.Addr
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		cfg := Config{Key: testKey(), Addr: addrs[i], Peers: peers, Authority: taAddr}
		if tweak != nil {
			tweak(i, &cfg)
		}
		n, err := NewNode(p, cfg)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		r.nodes = append(r.nodes, n)
		r.platforms = append(r.platforms, p)
	}
	return r
}

func (r *rig) startAll() {
	for _, n := range r.nodes {
		n.Start()
	}
}

func (r *rig) run(d time.Duration) { r.sched.RunUntil(r.sched.Now().Add(d)) }

func TestConfigValidation(t *testing.T) {
	sched := sim.NewScheduler()
	network := simnet.New(sched, sim.NewRNG(1), simnet.Link{})
	p := enclave.NewSimPlatform(sched, sim.NewRNG(2), network, enclave.SimConfig{
		Addr: 1, TSC: simtime.NewTSC(1e9, 0),
	})
	bad := []Config{
		{Key: []byte("short"), Addr: 1, Authority: 9},
		{Key: testKey(), Addr: 1, Authority: 1},
		{Key: testKey(), Addr: 1, Authority: 9, Peers: []simnet.Addr{1}},
	}
	for _, cfg := range bad {
		if _, err := NewNode(p, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestWindowedCalibrationAccuracy(t *testing.T) {
	r := newRig(t, 1, nil)
	r.startAll()
	r.run(30 * time.Second)
	n := r.nodes[0]
	if n.State() != core.StateOK {
		t.Fatalf("state = %v", n.State())
	}
	// Jitter over an 8s window: a few ppm of rate error at most.
	ppm := math.Abs(n.FCalib()-simtime.NominalTSCHz) / simtime.NominalTSCHz * 1e6
	if ppm > 20 {
		t.Errorf("FCalib %.2fppm off, want < 20ppm (windowed calibration)", ppm)
	}
	ts, err := n.TrustedNow()
	if err != nil {
		t.Fatal(err)
	}
	if off := time.Duration(ts - int64(r.sched.Now())); off < -time.Millisecond || off > time.Millisecond {
		t.Errorf("clock off reference by %v", off)
	}
}

func TestCalibrationWindowHalvesUnderAEXs(t *testing.T) {
	// AEXs every 900ms: the default 8s window can never complete, but
	// adaptive halving brings it under the AEX gap and calibration
	// succeeds.
	r := newRig(t, 1, nil)
	stop := false
	var schedule func(at simtime.Instant)
	schedule = func(at simtime.Instant) {
		r.sched.At(at, func() {
			if stop {
				return
			}
			r.platforms[0].FireAEX()
			schedule(at.Add(900 * time.Millisecond))
		})
	}
	schedule(simtime.FromDuration(900 * time.Millisecond))
	r.startAll()
	r.run(2 * time.Minute)
	stop = true
	n := r.nodes[0]
	if n.FCalib() == 0 {
		t.Fatal("calibration never completed under AEX pressure")
	}
	ppm := math.Abs(n.FCalib()-simtime.NominalTSCHz) / simtime.NominalTSCHz * 1e6
	if ppm > 200 {
		t.Errorf("FCalib %.0fppm off with halved window, want < 200ppm", ppm)
	}
}

func TestFPlusAttackIneffective(t *testing.T) {
	// The hardened node never requests TA sleeps, so the F+ classifier
	// sees only low-hold responses and never fires.
	r := newRig(t, 1, nil)
	box := attack.NewDelay(attack.DelayConfig{Victim: 1, Authority: taAddr, Mode: attack.ModeFPlus})
	r.net.AttachMiddlebox(box)
	r.startAll()
	r.run(60 * time.Second)
	n := r.nodes[0]
	if n.State() != core.StateOK {
		t.Fatalf("state = %v", n.State())
	}
	ppm := math.Abs(n.FCalib()-simtime.NominalTSCHz) / simtime.NominalTSCHz * 1e6
	if ppm > 20 {
		t.Errorf("FCalib %.2fppm off under F+, want < 20ppm", ppm)
	}
	if box.Delayed() != 0 {
		t.Errorf("F+ delayed %d responses of a sleep-free calibrator", box.Delayed())
	}
}

func TestFMinusAttackBecomesVisibleDoSNotCorruption(t *testing.T) {
	// F- delays every low-hold response by 100ms — far over the 5ms
	// RTT bound, so the hardened node rejects all of them: it stays
	// unavailable (a visible failure) instead of silently running fast.
	r := newRig(t, 1, nil)
	box := attack.NewDelay(attack.DelayConfig{Victim: 1, Authority: taAddr, Mode: attack.ModeFMinus})
	r.net.AttachMiddlebox(box)
	r.startAll()
	r.run(60 * time.Second)
	n := r.nodes[0]
	if n.State() == core.StateOK {
		// If it did manage to calibrate, the rate must be honest.
		ppm := math.Abs(n.FCalib()-simtime.NominalTSCHz) / simtime.NominalTSCHz * 1e6
		if ppm > 500 {
			t.Errorf("FCalib %.0fppm off under F-: silent corruption", ppm)
		}
	}
	if n.RTTRejections() == 0 {
		t.Error("no RTT rejections: the bound never engaged")
	}
	if n.FCalib() != 0 {
		ppm := math.Abs(n.FCalib()-simtime.NominalTSCHz) / simtime.NominalTSCHz * 1e6
		if ppm > 500 {
			t.Errorf("corrupted FCalib: %.0fppm off", ppm)
		}
	}
}

func TestChimerFilterRejectsLoneFastClock(t *testing.T) {
	r := newRig(t, 3, nil)
	r.startAll()
	r.run(60 * time.Second)
	for i, n := range r.nodes {
		if n.State() != core.StateOK {
			t.Fatalf("node %d state = %v", i, n.State())
		}
	}
	// Compromise node 3's clock: +10s into the future.
	r.nodes[2].eng.ShiftReference(10 * int64(time.Second))
	taBefore := r.nodes[0].TAReferences()
	// Taint node 1: it hears honest node 2 and fast node 3; the two
	// disagree, so no majority -> TA fallback, fast clock rejected.
	r.platforms[0].FireAEX()
	r.run(2 * time.Second)
	victim := r.nodes[0]
	if victim.State() != core.StateOK {
		t.Fatalf("victim state = %v", victim.State())
	}
	reading, _ := victim.ClockReading()
	drift := time.Duration(reading - int64(r.sched.Now()))
	if drift > 100*time.Millisecond {
		t.Errorf("victim infected: drift %v after untaint", drift)
	}
	if victim.RejectedPeerSamples() == 0 {
		t.Error("chimer filter reported no rejections")
	}
	if victim.TAReferences() <= taBefore {
		t.Error("victim should have fallen back to the TA")
	}
}

func TestChimerConsensusAdoptsHonestMajority(t *testing.T) {
	r := newRig(t, 3, func(_ int, cfg *Config) {
		cfg.DisableDeadline = true
	})
	r.startAll()
	r.run(60 * time.Second)
	taBefore := r.nodes[0].TAReferences()
	// Both peers honest: the tainted node recovers from their
	// consensus without touching the TA.
	r.platforms[0].FireAEX()
	r.run(2 * time.Second)
	victim := r.nodes[0]
	if victim.State() != core.StateOK {
		t.Fatalf("state = %v", victim.State())
	}
	if victim.PeerUntaints() != 1 {
		t.Errorf("PeerUntaints = %d, want 1", victim.PeerUntaints())
	}
	if victim.TAReferences() != taBefore {
		t.Error("TA contacted despite honest peer majority")
	}
}

func TestAblationWithoutChimerFilterGetsInfected(t *testing.T) {
	r := newRig(t, 3, func(_ int, cfg *Config) {
		cfg.DisableChimerFilter = true
		cfg.DisableDeadline = true
	})
	r.startAll()
	r.run(60 * time.Second)
	r.nodes[2].eng.ShiftReference(10 * int64(time.Second))
	// Make the fast clock's answer arrive first, as the original
	// first-response policy race allows.
	r.net.SetLink(2, 1, simnet.Link{Base: 10 * time.Millisecond})
	r.platforms[0].FireAEX()
	r.run(2 * time.Second)
	reading, _ := r.nodes[0].ClockReading()
	drift := time.Duration(reading - int64(r.sched.Now()))
	if drift < 9*time.Second {
		t.Errorf("ablation: drift = %v, expected infection (~10s) without the filter", drift)
	}
}

func TestDeadlineProbeCatchesMiscalibratedClock(t *testing.T) {
	r := newRig(t, 3, nil)
	r.startAll()
	r.run(60 * time.Second)
	n := r.nodes[2]
	// Simulate a calibration the F- attack would have produced on the
	// original protocol: rate 10% low -> clock runs +111ms/s.
	n.eng.ScaleRate(0.9)
	r.run(30 * time.Second)
	if n.ProbeFailures() == 0 {
		t.Fatal("in-TCB deadline never caught the runaway clock")
	}
	// Recalibrated back to an honest rate.
	ppm := math.Abs(n.FCalib()-simtime.NominalTSCHz) / simtime.NominalTSCHz * 1e6
	if ppm > 100 {
		t.Errorf("post-recovery FCalib %.0fppm off", ppm)
	}
	reading, _ := n.ClockReading()
	drift := time.Duration(reading - int64(r.sched.Now()))
	if drift > 100*time.Millisecond || drift < -100*time.Millisecond {
		t.Errorf("post-recovery drift = %v", drift)
	}
}

func TestDeadlineDisabledAblation(t *testing.T) {
	r := newRig(t, 1, func(_ int, cfg *Config) {
		cfg.DisableDeadline = true
		cfg.DisableMonitor = true
	})
	r.startAll()
	r.run(30 * time.Second)
	n := r.nodes[0]
	n.eng.ScaleRate(0.9)
	r.run(60 * time.Second)
	if n.Probes() != 0 {
		t.Errorf("probes ran despite DisableDeadline: %d", n.Probes())
	}
	// Without the in-TCB trigger the bad rate persists (that is the
	// original protocol's hole).
	reading, _ := n.ClockReading()
	drift := time.Duration(reading - int64(r.sched.Now()))
	if drift < 5*time.Second {
		t.Errorf("drift = %v, expected the runaway clock to persist", drift)
	}
}

func TestMonitorDetectsTSCScalingResilient(t *testing.T) {
	r := newRig(t, 1, nil)
	r.startAll()
	r.run(30 * time.Second)
	before := r.nodes[0].FCalib()
	r.platforms[0].TSC().SetScale(1.1, r.sched.Now())
	r.run(60 * time.Second)
	n := r.nodes[0]
	if n.State() != core.StateOK {
		t.Fatalf("state = %v", n.State())
	}
	if ratio := n.FCalib() / before; math.Abs(ratio-1.1) > 0.01 {
		t.Errorf("recalibrated ratio = %v, want ~1.1", ratio)
	}
}

func TestServedMonotonicAcrossConsensusAdoption(t *testing.T) {
	r := newRig(t, 3, nil)
	r.startAll()
	r.run(60 * time.Second)
	victim := r.nodes[0]
	ts1, err := victim.TrustedNow()
	if err != nil {
		t.Fatal(err)
	}
	// Push the victim's clock ahead, then force a consensus adoption
	// (which lands behind): serving stays monotonic regardless.
	victim.eng.ShiftReference(int64(time.Second))
	ts2, _ := victim.TrustedNow()
	r.platforms[0].FireAEX()
	r.run(time.Second)
	ts3, err := victim.TrustedNow()
	if err != nil {
		t.Fatal(err)
	}
	if !(ts1 < ts2 && ts2 < ts3) {
		t.Errorf("served sequence not monotonic: %d %d %d", ts1, ts2, ts3)
	}
}

func TestTrustedNowUnavailableStates(t *testing.T) {
	r := newRig(t, 1, nil)
	if _, err := r.nodes[0].TrustedNow(); !errors.Is(err, core.ErrUnavailable) {
		t.Errorf("err = %v, want ErrUnavailable", err)
	}
	r.startAll()
	r.run(30 * time.Second)
	r.platforms[0].FireAEX()
	if _, err := r.nodes[0].TrustedNow(); !errors.Is(err, core.ErrUnavailable) {
		t.Error("tainted node served")
	}
}

func TestStartIdempotent(t *testing.T) {
	r := newRig(t, 1, nil)
	r.nodes[0].Start()
	r.nodes[0].Start()
	r.run(30 * time.Second)
	if r.nodes[0].TAReferences() != 1 {
		t.Errorf("TAReferences = %d, want 1", r.nodes[0].TAReferences())
	}
}

func TestProbeTACheckWithoutPeers(t *testing.T) {
	// A peerless hardened node self-checks directly against the TA.
	r := newRig(t, 1, nil)
	r.startAll()
	r.run(60 * time.Second)
	n := r.nodes[0]
	if n.Probes() == 0 {
		t.Fatal("deadline probes never ran")
	}
	if n.ProbeFailures() != 0 {
		t.Errorf("healthy clock failed %d probes", n.ProbeFailures())
	}
	// Consistency checks must not be misread as reference adoptions.
	if n.TAReferences() != 1 {
		t.Errorf("TAReferences = %d, want 1 (probes are checks, not re-anchors)", n.TAReferences())
	}
}

func TestProbeConsistentWithPeersSkipsTA(t *testing.T) {
	r := newRig(t, 3, nil)
	r.startAll()
	r.run(10 * time.Second) // calibrations
	taBefore := make([]int, 3)
	for i, n := range r.nodes {
		taBefore[i] = n.TAReferences()
	}
	r.run(60 * time.Second) // ~30 deadline probes per node
	for i, n := range r.nodes {
		if n.Probes() == 0 {
			t.Fatalf("node %d never probed", i)
		}
		if n.TAReferences() != taBefore[i] {
			t.Errorf("node %d contacted the TA %d times despite consistent peers",
				i, n.TAReferences()-taBefore[i])
		}
	}
}

func TestDualMonitorDefaultOnHardened(t *testing.T) {
	// The hardened node runs the memory monitor by default: the
	// DVFS-masked TSC scaling is caught and recalibrated away.
	r := newRig(t, 1, nil)
	r.startAll()
	r.run(30 * time.Second)
	n := r.nodes[0]
	before := n.FCalib()
	r.platforms[0].TSC().SetScale(0.8, r.sched.Now())
	r.platforms[0].SetCoreFreqHz(2800e6)
	r.run(60 * time.Second)
	if n.FCalib() == before {
		t.Error("masked attack never triggered recalibration (memory monitor inactive?)")
	}
	if ratio := n.FCalib() / before; math.Abs(ratio-0.8) > 0.01 {
		t.Errorf("recalibrated ratio = %v, want ~0.8 (the new guest rate)", ratio)
	}
}

func TestDisableMemMonitorAblation(t *testing.T) {
	r := newRig(t, 1, func(_ int, cfg *Config) {
		cfg.DisableMemMonitor = true
		cfg.DisableDeadline = true // isolate the monitor's role
	})
	r.startAll()
	r.run(30 * time.Second)
	n := r.nodes[0]
	before := n.FCalib()
	r.platforms[0].TSC().SetScale(0.8, r.sched.Now())
	r.platforms[0].SetCoreFreqHz(2800e6)
	r.run(60 * time.Second)
	if n.FCalib() != before {
		t.Error("INC-only hardened node recalibrated; the masked attack should evade it")
	}
}

func TestCalibWindowFloor(t *testing.T) {
	// AEXs every 300ms: halving must floor at MinCalibWindow and the
	// node must still eventually calibrate within sub-window gaps.
	r := newRig(t, 1, func(_ int, cfg *Config) {
		cfg.MinCalibWindow = 200 * time.Millisecond
		cfg.DisableMonitor = true
	})
	stop := false
	var schedule func(at simtime.Instant)
	schedule = func(at simtime.Instant) {
		r.sched.At(at, func() {
			if stop {
				return
			}
			r.platforms[0].FireAEX()
			schedule(at.Add(300 * time.Millisecond))
		})
	}
	schedule(simtime.FromDuration(300 * time.Millisecond))
	r.startAll()
	r.run(3 * time.Minute)
	stop = true
	if r.nodes[0].FCalib() == 0 {
		t.Fatal("never calibrated despite the window floor")
	}
}

func TestRTTRejectionOnRefCalib(t *testing.T) {
	// Delay TA responses beyond the bound only during recovery: the
	// node must reject them (visible retries) instead of adopting a
	// stale reference.
	r := newRig(t, 1, nil)
	box := &slowTA{}
	r.net.AttachMiddlebox(box)
	r.startAll()
	r.run(30 * time.Second)
	n := r.nodes[0]
	box.extra = 20 * time.Millisecond // > 5ms RTTBound
	r.platforms[0].FireAEX()          // no peers -> RefCalib
	r.run(2 * time.Second)
	if n.State() == core.StateOK {
		t.Error("node recovered through over-delayed TA responses")
	}
	if n.RTTRejections() == 0 {
		t.Error("no RTT rejections recorded")
	}
	box.extra = 0
	r.run(2 * time.Second)
	if n.State() != core.StateOK {
		t.Errorf("state = %v after delays ended, want OK", n.State())
	}
}

type slowTA struct {
	extra time.Duration
}

func (b *slowTA) Process(_ simtime.Instant, p simnet.Packet) simnet.Verdict {
	if p.From == taAddr {
		return simnet.Verdict{ExtraDelay: b.extra}
	}
	return simnet.Verdict{}
}

// TestInteropWithOriginalNodes runs a mixed cluster: two original
// protocol nodes and one hardened node share the wire format, answer
// each other's peer requests, and keep trusted time together. This is
// the incremental-upgrade story: hardened nodes can join an existing
// Triad deployment.
func TestInteropWithOriginalNodes(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(777)
	network := simnet.New(sched, rng.Fork(0), simnet.DefaultLink())
	if _, err := authority.NewSimBinding(sched, network, testKey(), taAddr); err != nil {
		t.Fatal(err)
	}
	newPlatform := func(addr simnet.Addr, fork uint64) *enclave.SimPlatform {
		return enclave.NewSimPlatform(sched, rng.Fork(fork), network, enclave.SimConfig{
			Addr: addr,
			TSC:  simtime.NewTSC(simtime.NominalTSCHz, uint64(addr)*2e9),
		})
	}
	p1, p2, p3 := newPlatform(1, 10), newPlatform(2, 11), newPlatform(3, 12)
	orig1, err := core.NewNode(p1, core.Config{
		Key: testKey(), Addr: 1, Peers: []simnet.Addr{2, 3}, Authority: taAddr,
	})
	if err != nil {
		t.Fatal(err)
	}
	orig2, err := core.NewNode(p2, core.Config{
		Key: testKey(), Addr: 2, Peers: []simnet.Addr{1, 3}, Authority: taAddr,
	})
	if err != nil {
		t.Fatal(err)
	}
	hard, err := NewNode(p3, Config{
		Key: testKey(), Addr: 3, Peers: []simnet.Addr{1, 2}, Authority: taAddr,
	})
	if err != nil {
		t.Fatal(err)
	}
	orig1.Start()
	orig2.Start()
	hard.Start()
	sched.RunUntil(simtime.FromSeconds(30))
	if orig1.State() != core.StateOK || orig2.State() != core.StateOK || hard.State() != core.StateOK {
		t.Fatalf("states = %v/%v/%v", orig1.State(), orig2.State(), hard.State())
	}

	// An original node taints: the hardened peer serves it a timestamp.
	p1.FireAEX()
	sched.RunUntil(sched.Now().Add(time.Second))
	if orig1.State() != core.StateOK {
		t.Fatalf("original node state = %v after peer untaint", orig1.State())
	}
	if orig1.PeerUntaints() != 1 {
		t.Errorf("original node PeerUntaints = %d", orig1.PeerUntaints())
	}

	// The hardened node taints: both original peers answer and their
	// consensus untaints it without the TA.
	taBefore := hard.TAReferences()
	p3.FireAEX()
	sched.RunUntil(sched.Now().Add(time.Second))
	if hard.State() != core.StateOK {
		t.Fatalf("hardened node state = %v", hard.State())
	}
	if hard.PeerUntaints() != 1 {
		t.Errorf("hardened PeerUntaints = %d", hard.PeerUntaints())
	}
	if hard.TAReferences() != taBefore {
		t.Error("hardened node needed the TA despite honest original peers")
	}

	// All three track reference time.
	for i, ts := range []func() (int64, error){orig1.TrustedNow, orig2.TrustedNow, hard.TrustedNow} {
		v, err := ts()
		if err != nil {
			t.Fatalf("node %d: %v", i+1, err)
		}
		if off := time.Duration(v - int64(sched.Now())); off < -100*time.Millisecond || off > 100*time.Millisecond {
			t.Errorf("node %d off reference by %v", i+1, off)
		}
	}
}

func TestCalibrationRetriesOnLostResponses(t *testing.T) {
	// Drop every TA response for the first 2 minutes: TATimeout retries
	// carry the node through; calibration completes once the network
	// heals.
	r := newRig(t, 1, nil)
	box := &slowTA{} // reuse: extra=0 means pass-through
	drop := &muzzleAll{muted: taAddr}
	r.net.AttachMiddlebox(box)
	r.net.AttachMiddlebox(drop)
	r.startAll()
	r.run(2 * time.Minute)
	if r.nodes[0].FCalib() != 0 {
		t.Fatal("calibrated without any TA responses?")
	}
	drop.muted = 0
	r.run(30 * time.Second)
	n := r.nodes[0]
	if n.State() != core.StateOK {
		t.Fatalf("state = %v after network healed", n.State())
	}
	if ppm := math.Abs(n.FCalib()-simtime.NominalTSCHz) / simtime.NominalTSCHz * 1e6; ppm > 50 {
		t.Errorf("FCalib %.1fppm off after retries", ppm)
	}
	if n.Addr() != 1 {
		t.Errorf("Addr = %v", n.Addr())
	}
	if _, err := n.TrustedNow(); err != nil {
		t.Fatal(err)
	}
	if n.ServedCount() == 0 {
		t.Error("ServedCount not tracking")
	}
}

func TestRefCalibRetriesOnLostResponses(t *testing.T) {
	r := newRig(t, 1, nil)
	drop := &muzzleAll{}
	r.net.AttachMiddlebox(drop)
	r.startAll()
	r.run(30 * time.Second)
	// Taint, with the TA dark: RefCalib retries until it heals.
	drop.muted = taAddr
	r.platforms[0].FireAEX()
	r.run(5 * time.Second)
	if r.nodes[0].State() == core.StateOK {
		t.Fatal("recovered without TA responses")
	}
	drop.muted = 0
	r.run(2 * time.Second)
	if r.nodes[0].State() != core.StateOK {
		t.Fatalf("state = %v after heal", r.nodes[0].State())
	}
}
