package resilient

import (
	"triadtime/internal/core"
	"triadtime/internal/enclave"
	"triadtime/internal/marzullo"
	"triadtime/internal/wire"
)

// peerSample is one peer's timestamp gathered during recovery or a
// self-check probe. The arrival TSC lets the decision point age-adjust
// the timestamp: gathering waits out the full PeerTimeout, and
// adopting a stale reading as "now" would skew the clock into the past
// (and compound across adoption chains).
type peerSample struct {
	from       uint32
	ts         int64
	arrivalTSC uint64
}

// freshTS returns the sample's timestamp advanced by the time elapsed
// since its arrival (measured in local ticks via the boot hint — the
// spans are milliseconds, so hint error is negligible).
func (n *Node) freshTS(s peerSample) int64 {
	nowTSC := n.platform.ReadTSC()
	if nowTSC <= s.arrivalTSC {
		return s.ts
	}
	age := float64(nowTSC-s.arrivalTSC) / n.platform.BootTSCHz() * 1e9
	return s.ts + int64(age)
}

// gatherState collects peer timestamps for the duration of PeerTimeout
// before deciding — unlike the original protocol's first-response-wins,
// which is what lets a fast compromised clock win races.
type gatherState struct {
	seq       uint64
	responses []peerSample
	timer     enclave.CancelFunc
}

// becomeTainted starts recovery after an AEX.
func (n *Node) becomeTainted() {
	n.setState(core.StateTainted)
	if len(n.cfg.Peers) == 0 {
		n.startRefCalib()
		return
	}
	g := &gatherState{seq: n.nextSeq()}
	n.gather = g
	for _, p := range n.cfg.Peers {
		n.platform.Send(p, n.sealer.Seal(wire.Message{
			Kind: wire.KindPeerTimeRequest,
			Seq:  g.seq,
		}))
	}
	g.timer = n.platform.AfterTicks(n.ticksFor(n.cfg.PeerTimeout.Seconds()), func() {
		g.timer = nil
		n.decideUntaint()
	})
}

// onPeerTimeResponse collects (or, in ablation mode, immediately
// applies) a peer timestamp.
func (n *Node) onPeerTimeResponse(from uint32, msg wire.Message) {
	sample := peerSample{from: from, ts: msg.TimeNanos, arrivalTSC: n.platform.ReadTSC()}
	switch {
	case n.gather != nil && msg.Seq == n.gather.seq:
		n.gather.responses = append(n.gather.responses, sample)
		if n.cfg.DisableChimerFilter {
			// Original-protocol ablation: first response decides.
			if n.gather.timer != nil {
				n.gather.timer()
			}
			n.decideUntaint()
		}
	case n.probe != nil && msg.Seq == n.probe.seq:
		n.probe.responses = append(n.probe.responses, sample)
	}
}

// decideUntaint closes the gather window and applies the chimer policy.
func (n *Node) decideUntaint() {
	g := n.gather
	n.gather = nil
	if g == nil || n.state != core.StateTainted {
		return
	}
	if len(g.responses) == 0 {
		n.startRefCalib()
		return
	}
	if n.cfg.DisableChimerFilter {
		n.untaintOriginalPolicy(g.responses[0])
		return
	}

	intervals := make([]marzullo.Interval, len(g.responses))
	for i, r := range g.responses {
		intervals[i] = n.intervalFor(n.freshTS(r))
	}
	best, ok := marzullo.MajorityAgrees(intervals, len(n.cfg.Peers))
	if !ok {
		// No same-moment majority among the answers. Gossip-accredited
		// responders may stand in for one: a strict majority of the
		// cluster's published views vouches for their consistency.
		if adopted, from, found := n.gossipAdoption(g.responses); found {
			local := n.clockNow()
			n.adoptReference(adopted, n.platform.ReadTSC())
			n.peerUntaints++
			n.gossip.adoptions++
			if n.events.PeerUntaint != nil {
				jump := adopted - local
				if jump < 0 {
					jump = 0
				}
				n.events.PeerUntaint(from, jump)
			}
			n.setState(core.StateOK)
			return
		}
		// A lone unaccredited clock cannot be told from a lone honest
		// one, so fall back to the root of trust.
		n.rejectedPeers += len(g.responses)
		n.startRefCalib()
		return
	}
	for i, iv := range intervals {
		consistent := iv.Overlaps(best)
		n.markChimer(g.responses[i].from, consistent)
		if !consistent {
			n.rejectedPeers++
		}
	}
	adopted := best.Midpoint()
	local := n.clockNow()
	n.adoptReference(adopted, n.platform.ReadTSC())
	n.peerUntaints++
	if n.events.PeerUntaint != nil {
		jump := adopted - local
		if jump < 0 {
			jump = 0
		}
		n.events.PeerUntaint(uint32(g.responses[0].from), jump)
	}
	n.setState(core.StateOK)
}

// untaintOriginalPolicy reproduces internal/core's adopt-if-higher rule
// for the ablation benchmark.
func (n *Node) untaintOriginalPolicy(r peerSample) {
	local := n.clockNow()
	if r.ts > local {
		n.adoptReference(r.ts, n.platform.ReadTSC())
	} else {
		n.adoptReference(local+1, n.platform.ReadTSC())
	}
	n.peerUntaints++
	if n.events.PeerUntaint != nil {
		jump := r.ts - local
		if jump < 0 {
			jump = 0
		}
		n.events.PeerUntaint(r.from, jump)
	}
	n.setState(core.StateOK)
}

// gossipAdoption looks for an accredited responder whose timestamp can
// untaint us without a same-moment majority. With several accredited
// answers, their interval intersection midpoint is used.
func (n *Node) gossipAdoption(responses []peerSample) (nanos int64, from uint32, ok bool) {
	var ivs []marzullo.Interval
	for _, r := range responses {
		if n.accredited(r.from) {
			ivs = append(ivs, n.intervalFor(n.freshTS(r)))
			from = r.from
		}
	}
	if len(ivs) == 0 {
		return 0, 0, false
	}
	best, count := marzullo.Intersect(ivs)
	if count != len(ivs) {
		// Accredited clocks disagreeing among themselves: evidence is
		// stale, do not trust it.
		return 0, 0, false
	}
	return best.Midpoint(), from, true
}

// probeState is one in-TCB deadline self-check: gather peer timestamps
// (and if needed a TA reading) and verify the local clock is a
// true-chimer.
type probeState struct {
	seq       uint64
	responses []peerSample
	timer     enclave.CancelFunc
	taSeq     uint64
	taSentTSC uint64
	taTimer   enclave.CancelFunc
}

// armDeadline schedules the next in-TCB self-check.
func (n *Node) armDeadline() {
	n.deadlineCancel = n.platform.AfterTicks(n.cfg.DeadlineTicks, func() {
		n.deadlineCancel = nil
		n.onDeadline()
		if !n.cfg.DisableDeadline {
			n.armDeadline()
		}
	})
}

// onDeadline fires the self-check if the node is serving; otherwise the
// protocol is already refreshing via another path.
func (n *Node) onDeadline() {
	if n.state != core.StateOK || n.probe != nil {
		return
	}
	n.probes++
	n.broadcastChimerReport()
	p := &probeState{seq: n.nextSeq()}
	n.probe = p
	if len(n.cfg.Peers) == 0 {
		n.probeTACheck()
		return
	}
	for _, peer := range n.cfg.Peers {
		n.platform.Send(peer, n.sealer.Seal(wire.Message{
			Kind: wire.KindPeerTimeRequest,
			Seq:  p.seq,
		}))
	}
	p.timer = n.platform.AfterTicks(n.ticksFor(n.cfg.PeerTimeout.Seconds()), func() {
		p.timer = nil
		n.decideProbe()
	})
}

// decideProbe evaluates the gathered peer view of our clock.
func (n *Node) decideProbe() {
	p := n.probe
	if p == nil || n.state != core.StateOK {
		n.cancelProbe()
		return
	}
	if len(p.responses) == 0 {
		// Nobody answered: check against the root of trust instead.
		n.probeTACheck()
		return
	}
	intervals := make([]marzullo.Interval, 0, len(p.responses)+1)
	for _, r := range p.responses {
		intervals = append(intervals, n.intervalFor(n.freshTS(r)))
	}
	best, ok := marzullo.MajorityAgrees(intervals, len(n.cfg.Peers))
	if ok {
		// Record consistency evidence for the gossip layer.
		for i, iv := range intervals {
			n.markChimer(p.responses[i].from, iv.Overlaps(best))
		}
	}
	if ok && n.intervalFor(n.clockNow()).Overlaps(best) {
		// Consistent with the majority: clock quality confirmed.
		n.probe = nil
		return
	}
	// Inconsistent or inconclusive: ask the Time Authority.
	n.probeTACheck()
}

// probeTACheck verifies the local clock directly against the TA.
func (n *Node) probeTACheck() {
	p := n.probe
	if p == nil {
		return
	}
	p.taSeq = n.nextSeq()
	p.taSentTSC = n.platform.ReadTSC()
	n.platform.Send(n.cfg.Authority, n.sealer.Seal(wire.Message{
		Kind: wire.KindTimeRequest,
		Seq:  p.taSeq,
	}))
	p.taTimer = n.platform.AfterTicks(n.ticksFor(n.cfg.TATimeout.Seconds()), func() {
		p.taTimer = nil
		// TA unreachable right now; give up on this probe, the next
		// deadline retries.
		n.probe = nil
	})
}

// onProbeTAResponse compares the local clock against the TA reading.
func (n *Node) onProbeTAResponse(msg wire.Message) {
	p := n.probe
	recvTSC := n.platform.ReadTSC()
	if p.taTimer != nil {
		p.taTimer()
		p.taTimer = nil
	}
	n.probe = nil
	if n.state != core.StateOK {
		return
	}
	rttTicks := float64(recvTSC - p.taSentTSC)
	if rttTicks > n.cfg.RTTBound.Seconds()*n.platform.BootTSCHz() {
		n.rttRejections++
		return // unusable reading; next deadline retries
	}
	taNow := msg.TimeNanos // one-way stale, well inside ErrBudget
	diff := n.clockNow() - taNow
	if diff < 0 {
		diff = -diff
	}
	if diff <= int64(n.cfg.ErrBudget) {
		// Clock quality confirmed by the root of trust. The probe's
		// peer answers can now be judged against our confirmed clock —
		// the evidence path that matters in small clusters, where one
		// honest and one false answer never form a majority.
		own := n.intervalFor(n.clockNow())
		for _, r := range p.responses {
			n.markChimer(r.from, n.intervalFor(n.freshTS(r)).Overlaps(own))
		}
		return
	}
	// The local clock ran away from reference inside one deadline
	// period: the calibrated rate itself must be bad (this is exactly
	// the miscalibrated-arbitrarily-long hole of the original protocol,
	// paper §V ¶1). Re-learn everything.
	n.probeFailures++
	if n.events.Discrepancy != nil {
		n.events.Discrepancy(float64(diff) / 1e9)
	}
	n.setState(core.StateFullCalib)
	n.startFullCalibration()
}

// cancelProbe abandons a probe in flight (e.g. the node got tainted).
func (n *Node) cancelProbe() {
	p := n.probe
	if p == nil {
		return
	}
	if p.timer != nil {
		p.timer()
	}
	if p.taTimer != nil {
		p.taTimer()
	}
	n.probe = nil
}
