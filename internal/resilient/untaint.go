package resilient

import (
	"triadtime/internal/core"
	"triadtime/internal/enclave"
	"triadtime/internal/engine"
	"triadtime/internal/marzullo"
	"triadtime/internal/wire"
)

// freshTS returns the sample's timestamp advanced by the time elapsed
// since its arrival (measured in local ticks via the boot hint — the
// spans are milliseconds, so hint error is negligible). Gathering
// waits out the full PeerTimeout, and adopting a stale reading as
// "now" would skew the clock into the past (and compound across
// adoption chains).
func (p *policy) freshTS(e *engine.Engine, s engine.PeerSample) int64 {
	nowTSC := e.Platform().ReadTSC()
	if nowTSC <= s.ArrivalTSC {
		return s.TS
	}
	age := float64(nowTSC-s.ArrivalTSC) / e.Platform().BootTSCHz() * 1e9
	return s.TS + int64(age)
}

// intervalFor builds the consistency interval for a clock reading.
func (p *policy) intervalFor(ts int64) marzullo.Interval {
	eb := int64(p.cfg.ErrBudget)
	return marzullo.Interval{Lo: ts - eb, Hi: ts + eb}
}

// OnStart arms the in-TCB refresh deadline (the hardened protocol's
// steady-state self-checking).
func (p *policy) OnStart(e *engine.Engine) {
	if !p.cfg.DisableDeadline {
		p.armDeadline(e)
	}
}

// OnTaint starts recovery after an AEX: abandon any probe in flight
// and gather all peers for the duration of PeerTimeout — unlike the
// original protocol's first-response-wins, which is what lets a fast
// compromised clock win races.
func (p *policy) OnTaint(e *engine.Engine) {
	p.cancelProbe()
	e.SetState(core.StateTainted)
	e.BeginPeerGather()
}

// OnPeerSample collects probe responses (gather responses are routed
// by the engine; anything else is stale and dropped).
func (p *policy) OnPeerSample(_ *engine.Engine, seq uint64, s engine.PeerSample) {
	if p.probe != nil && seq == p.probe.seq {
		p.probe.responses = append(p.probe.responses, s)
	}
}

// marzulloFilter is the hardened peer policy (paper §V): wait out the
// gather window, form consistency intervals, and adopt the majority
// intersection midpoint — never the maximum.
type marzulloFilter struct{ p *policy }

// Immediate reports that gathering waits out the full PeerTimeout.
func (marzulloFilter) Immediate() bool { return false }

// Decide applies the chimer policy to the gathered samples.
func (f marzulloFilter) Decide(e *engine.Engine, samples []engine.PeerSample) {
	f.p.decideUntaint(e, samples)
}

// decideUntaint applies the true-chimer policy: a single fast
// compromised clock is disjoint from the honest majority and gets
// ignored; without a majority the node falls back to the Time
// Authority (or, with gossip, to an accredited responder).
func (p *policy) decideUntaint(e *engine.Engine, samples []engine.PeerSample) {
	intervals := make([]marzullo.Interval, len(samples))
	for i, r := range samples {
		intervals[i] = p.intervalFor(p.freshTS(e, r))
	}
	best, ok := marzullo.MajorityAgrees(intervals, len(p.cfg.Peers))
	if !ok {
		// No same-moment majority among the answers. Gossip-accredited
		// responders may stand in for one: a strict majority of the
		// cluster's published views vouches for their consistency.
		if adopted, from, found := p.gossipAdoption(e, samples); found {
			local := e.ClockNow()
			jump := adopted - local
			if jump < 0 {
				jump = 0
			}
			e.Counters().GossipAdoptions++
			e.AdoptPeerReference(from, adopted, e.Platform().ReadTSC(), jump)
			return
		}
		// A lone unaccredited clock cannot be told from a lone honest
		// one, so fall back to the root of trust.
		e.Counters().RejectedPeers += len(samples)
		p.StartRefCalib(e)
		return
	}
	for i, iv := range intervals {
		consistent := iv.Overlaps(best)
		p.markChimer(samples[i].From, consistent)
		if !consistent {
			e.Counters().RejectedPeers++
		}
	}
	adopted := best.Midpoint()
	local := e.ClockNow()
	jump := adopted - local
	if jump < 0 {
		jump = 0
	}
	e.AdoptPeerReference(samples[0].From, adopted, e.Platform().ReadTSC(), jump)
}

// gossipAdoption looks for an accredited responder whose timestamp can
// untaint us without a same-moment majority. With several accredited
// answers, their interval intersection midpoint is used.
func (p *policy) gossipAdoption(e *engine.Engine, samples []engine.PeerSample) (nanos int64, from uint32, ok bool) {
	var ivs []marzullo.Interval
	for _, r := range samples {
		if p.accredited(r.From) {
			ivs = append(ivs, p.intervalFor(p.freshTS(e, r)))
			from = r.From
		}
	}
	if len(ivs) == 0 {
		return 0, 0, false
	}
	best, count := marzullo.Intersect(ivs)
	if count != len(ivs) {
		// Accredited clocks disagreeing among themselves: evidence is
		// stale, do not trust it.
		return 0, 0, false
	}
	return best.Midpoint(), from, true
}

// probeState is one in-TCB deadline self-check: gather peer timestamps
// (and if needed a TA reading) and verify the local clock is a
// true-chimer.
type probeState struct {
	seq       uint64
	responses []engine.PeerSample
	timer     enclave.CancelFunc
	taSeq     uint64
	taSentTSC uint64
	taTimer   enclave.CancelFunc
}

// armDeadline schedules the next in-TCB self-check.
func (p *policy) armDeadline(e *engine.Engine) {
	p.deadlineCancel = e.Platform().AfterTicks(p.cfg.DeadlineTicks, func() {
		p.deadlineCancel = nil
		p.onDeadline(e)
		if !p.cfg.DisableDeadline {
			p.armDeadline(e)
		}
	})
}

// onDeadline fires the self-check if the node is serving; otherwise the
// protocol is already refreshing via another path.
func (p *policy) onDeadline(e *engine.Engine) {
	if e.State() != core.StateOK || p.probe != nil {
		return
	}
	e.Counters().Probes++
	p.broadcastChimerReport(e)
	pr := &probeState{seq: e.NextSeq()}
	p.probe = pr
	if len(p.cfg.Peers) == 0 {
		p.probeTACheck(e)
		return
	}
	for _, peer := range p.cfg.Peers {
		e.SendSealed(peer, wire.Message{
			Kind: wire.KindPeerTimeRequest,
			Seq:  pr.seq,
		})
	}
	pr.timer = e.Platform().AfterTicks(e.TicksFor(p.cfg.PeerTimeout), func() {
		pr.timer = nil
		p.decideProbe(e)
	})
}

// decideProbe evaluates the gathered peer view of our clock.
func (p *policy) decideProbe(e *engine.Engine) {
	pr := p.probe
	if pr == nil || e.State() != core.StateOK {
		p.cancelProbe()
		return
	}
	if len(pr.responses) == 0 {
		// Nobody answered: check against the root of trust instead.
		p.probeTACheck(e)
		return
	}
	intervals := make([]marzullo.Interval, 0, len(pr.responses)+1)
	for _, r := range pr.responses {
		intervals = append(intervals, p.intervalFor(p.freshTS(e, r)))
	}
	best, ok := marzullo.MajorityAgrees(intervals, len(p.cfg.Peers))
	if ok {
		// Record consistency evidence for the gossip layer.
		for i, iv := range intervals {
			p.markChimer(pr.responses[i].From, iv.Overlaps(best))
		}
	}
	if ok && p.intervalFor(e.ClockNow()).Overlaps(best) {
		// Consistent with the majority: clock quality confirmed.
		p.probe = nil
		return
	}
	// Inconsistent or inconclusive: ask the Time Authority.
	p.probeTACheck(e)
}

// probeTACheck verifies the local clock directly against the TA.
func (p *policy) probeTACheck(e *engine.Engine) {
	pr := p.probe
	if pr == nil {
		return
	}
	pr.taSeq = e.NextSeq()
	pr.taSentTSC = e.Platform().ReadTSC()
	e.SendSealed(e.Authority(), wire.Message{
		Kind: wire.KindTimeRequest,
		Seq:  pr.taSeq,
	})
	pr.taTimer = e.Platform().AfterTicks(e.TicksFor(p.cfg.TATimeout), func() {
		pr.taTimer = nil
		// TA unreachable right now; give up on this probe, the next
		// deadline retries.
		p.probe = nil
	})
}

// onProbeTAResponse compares the local clock against the TA reading.
func (p *policy) onProbeTAResponse(e *engine.Engine, msg wire.Message) {
	pr := p.probe
	recvTSC := e.Platform().ReadTSC()
	if pr.taTimer != nil {
		pr.taTimer()
		pr.taTimer = nil
	}
	p.probe = nil
	if e.State() != core.StateOK {
		return
	}
	rttTicks := float64(recvTSC - pr.taSentTSC)
	if rttTicks > p.cfg.RTTBound.Seconds()*e.Platform().BootTSCHz() {
		e.Counters().RTTRejections++
		return // unusable reading; next deadline retries
	}
	taNow := msg.TimeNanos // one-way stale, well inside ErrBudget
	diff := e.ClockNow() - taNow
	if diff < 0 {
		diff = -diff
	}
	if diff <= int64(p.cfg.ErrBudget) {
		// Clock quality confirmed by the root of trust. The probe's
		// peer answers can now be judged against our confirmed clock —
		// the evidence path that matters in small clusters, where one
		// honest and one false answer never form a majority.
		own := p.intervalFor(e.ClockNow())
		for _, r := range pr.responses {
			p.markChimer(r.From, p.intervalFor(p.freshTS(e, r)).Overlaps(own))
		}
		return
	}
	// The local clock ran away from reference inside one deadline
	// period: the calibrated rate itself must be bad (this is exactly
	// the miscalibrated-arbitrarily-long hole of the original protocol,
	// paper §V ¶1). Re-learn everything.
	e.Counters().ProbeFailures++
	e.EmitDiscrepancy(float64(diff) / 1e9)
	e.SetState(core.StateFullCalib)
	p.Start(e)
}

// cancelProbe abandons a probe in flight (e.g. the node got tainted).
func (p *policy) cancelProbe() {
	pr := p.probe
	if pr == nil {
		return
	}
	if pr.timer != nil {
		pr.timer()
	}
	if pr.taTimer != nil {
		pr.taTimer()
	}
	p.probe = nil
}
