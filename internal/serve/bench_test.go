package serve

import (
	"testing"

	"triadtime/internal/metrics"
	"triadtime/internal/wire"
)

// dispatchLoop submits reqsPerShard requests per shard from a fixed
// client population and drains every shard once — the steady-state
// serving cycle both bindings run.
func dispatchLoop(s *Server[uint64], now int64, clients, reqsPerShard int, out []Delivery[uint64]) []Delivery[uint64] {
	var req wire.TimeRequest
	for c := 0; c < clients; c++ {
		req.ClientID = uint64(c)
		for r := 0; r < reqsPerShard; r++ {
			req.Seq++
			s.Submit(now, req, req.ClientID)
		}
	}
	out = out[:0]
	for i := 0; i < s.Shards(); i++ {
		out = s.Drain(i, now, out)
	}
	return out
}

// BenchmarkServeDispatch measures the full submit+drain cycle —
// admission, queueing, batch drain, response build, queue-wait
// recording — and must report 0 allocs/op: the serving hot path may
// not create garbage-collector pressure.
func BenchmarkServeDispatch(b *testing.B) {
	s, err := New[uint64](Config{
		Shards:        4,
		RatePerClient: 1e12, // buckets exercised, never shedding
		QueueWait:     metrics.NewLatencyHistogram(),
		Clock:         ClockFunc(func() (int64, error) { return 1e9, nil }),
	})
	if err != nil {
		b.Fatal(err)
	}
	const clients, perClient = 16, 8
	out := make([]Delivery[uint64], 0, clients*perClient)
	out = dispatchLoop(s, 0, clients, perClient, out) // warm token buckets
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		out = dispatchLoop(s, int64(n), clients, perClient, out)
	}
	if len(out) != clients*perClient {
		b.Fatalf("served %d, want %d", len(out), clients*perClient)
	}
}

// TestServeDispatchZeroAllocSteadyState is the CI gate behind the
// benchmark: after the first cycle warms per-client token buckets, a
// full submit+drain cycle must not allocate at all.
func TestServeDispatchZeroAllocSteadyState(t *testing.T) {
	s, err := New[uint64](Config{
		Shards:        4,
		RatePerClient: 1e12,
		QueueWait:     metrics.NewLatencyHistogram(),
		Clock:         ClockFunc(func() (int64, error) { return 1e9, nil }),
	})
	if err != nil {
		t.Fatal(err)
	}
	const clients, perClient = 16, 8
	out := make([]Delivery[uint64], 0, clients*perClient)
	out = dispatchLoop(s, 0, clients, perClient, out)
	now := int64(0)
	allocs := testing.AllocsPerRun(100, func() {
		now++
		out = dispatchLoop(s, now, clients, perClient, out)
	})
	if allocs != 0 {
		t.Fatalf("steady-state dispatch cycle allocated %.1f times per run", allocs)
	}
}
