package serve

import (
	"crypto/sha256"
	"sync/atomic"
	"testing"
	"time"

	"triadtime/internal/commit"
	"triadtime/internal/sim"
	"triadtime/internal/simnet"
	"triadtime/internal/simtime"
	"triadtime/internal/wire"
)

// newCommitVault opens an in-memory vault for serve tests, with a
// deterministic nonce source so simulated runs stay reproducible.
func newCommitVault(t testing.TB, clk commit.Clock) *commit.Vault {
	t.Helper()
	v, err := commit.Open(commit.Config{
		Clock: clk,
		Key:   []byte("serve-commit-key-0123456789abcde"),
		Rand: func(b []byte) (int, error) {
			for i := range b {
				b[i] = byte(i * 7)
			}
			return len(b), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestCommitDispatchThroughDrain drives the full lock → early-unlock →
// ripe-unlock cycle through the engine's shard queues and batch drain,
// mixed with a timestamp request in the same batch.
func TestCommitDispatchThroughDrain(t *testing.T) {
	clk := &fixedClock{nanos: 10e9}
	s, err := New[int](Config{Shards: 1, Clock: clk, Vault: newCommitVault(t, clk)})
	if err != nil {
		t.Fatal(err)
	}

	submitCommit := func(req wire.CommitRequest) {
		t.Helper()
		if resp, decided := s.SubmitCommit(0, req, int(req.Seq)); decided {
			t.Fatalf("commit seq %d decided at admission: %+v", req.Seq, resp)
		}
	}
	drainOne := func() Delivery[int] {
		t.Helper()
		out := drainAll(s, 0)
		if len(out) != 1 || !out[0].IsCommit {
			t.Fatalf("deliveries %+v, want one commit", out)
		}
		return out[0]
	}

	hash := sha256.Sum256([]byte("the committed document"))
	unlockAt := int64(10e9) + int64(time.Second)
	submitCommit(wire.CommitRequest{Kind: wire.KindCommitLock, ClientID: 7, Seq: 1, Hash: hash, UnlockNanos: unlockAt})
	// A stamp request rides in the same batch: the families share the
	// queue but answer on their own wire formats.
	s.Submit(0, wire.TimeRequest{ClientID: 7, Seq: 100}, 100)
	out := drainAll(s, 0)
	if len(out) != 2 {
		t.Fatalf("%d deliveries, want 2", len(out))
	}
	var lock *Delivery[int]
	for i := range out {
		if out[i].IsCommit {
			lock = &out[i]
		} else if out[i].Resp.Status != wire.StatusOK || out[i].Resp.Nanos != 10e9 {
			t.Fatalf("stamp response in mixed batch: %+v", out[i].Resp)
		}
	}
	if lock == nil {
		t.Fatalf("no commit delivery in %+v", out)
	}
	if lock.Commit.Verdict != wire.CommitOK || lock.Commit.Kind != wire.KindCommitLock {
		t.Fatalf("lock answer %+v", lock.Commit)
	}
	if lock.Commit.Nanos != 10e9 || lock.Commit.UnlockNanos != unlockAt || lock.Commit.Epoch != 1 {
		t.Fatalf("lock answer fields %+v", lock.Commit)
	}
	token := lock.Commit.Token

	// Too early: sealed, echoing the token's unlock time.
	submitCommit(wire.CommitRequest{Kind: wire.KindCommitUnlock, ClientID: 7, Seq: 2, Token: token})
	if d := drainOne(); d.Commit.Verdict != wire.CommitSealed || d.Commit.UnlockNanos != unlockAt {
		t.Fatalf("early unlock %+v", d.Commit)
	}

	// Past the unlock time: status and unlock both vouch.
	clk.nanos = unlockAt + int64(time.Millisecond)
	submitCommit(wire.CommitRequest{Kind: wire.KindCommitStatus, ClientID: 7, Seq: 3, Token: token})
	if d := drainOne(); d.Commit.Verdict != wire.CommitOK || d.Commit.Kind != wire.KindCommitStatus {
		t.Fatalf("ripe status %+v", d.Commit)
	}
	submitCommit(wire.CommitRequest{Kind: wire.KindCommitUnlock, ClientID: 7, Seq: 4, Token: token})
	if d := drainOne(); d.Commit.Verdict != wire.CommitOK || d.Commit.Nanos != clk.nanos {
		t.Fatalf("ripe unlock %+v", d.Commit)
	}

	c := s.Counters()
	if c.Served != 5 || c.Unavailable != 0 || c.Shed() != 0 {
		t.Fatalf("counters: %s", c.Summary())
	}
}

// TestSubmitCommitWithoutVault: an endpoint with no vault answers every
// commit request CommitUnavailable immediately, without queueing.
func TestSubmitCommitWithoutVault(t *testing.T) {
	s, _ := newTestServer(t, Config{Shards: 1})
	req := wire.CommitRequest{Kind: wire.KindCommitUnlock, ClientID: 3, Seq: 9}
	resp, decided := s.SubmitCommit(0, req, 0)
	if !decided {
		t.Fatal("vault-less commit request queued")
	}
	if resp.Verdict != wire.CommitUnavailable || resp.Kind != req.Kind || resp.ClientID != 3 || resp.Seq != 9 {
		t.Fatalf("vault-less answer %+v", resp)
	}
	c := s.Counters()
	if c.Unavailable != 1 || c.Queued != 0 {
		t.Fatalf("counters: %s", c.Summary())
	}
}

// TestCommitSharesAdmissionWithStamps: the two request families draw
// from the same per-client token bucket, so switching families does not
// dodge the rate limit.
func TestCommitSharesAdmissionWithStamps(t *testing.T) {
	clk := &fixedClock{nanos: 1e9}
	s, err := New[int](Config{Shards: 1, Clock: clk, Vault: newCommitVault(t, clk), RatePerClient: 1, RateBurst: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, shed := s.Submit(0, wire.TimeRequest{ClientID: 5, Seq: uint64(i)}, 0); shed {
			t.Fatalf("burst stamp %d shed", i)
		}
	}
	resp, decided := s.SubmitCommit(0, wire.CommitRequest{Kind: wire.KindCommitStatus, ClientID: 5, Seq: 2}, 0)
	if !decided || resp.Verdict != wire.CommitOverloaded {
		t.Fatalf("over-budget commit: decided=%v %+v", decided, resp)
	}
	// An unrelated client's commit op is admitted.
	if _, decided := s.SubmitCommit(0, wire.CommitRequest{Kind: wire.KindCommitStatus, ClientID: 6, Seq: 0}, 0); decided {
		t.Fatal("independent client's commit op shed")
	}
	if got := s.Counters().ShedRateLimited; got != 1 {
		t.Fatalf("ShedRateLimited=%d, want 1", got)
	}
}

// simCommitClient drives commit operations over the simulated network,
// demultiplexing responses by plaintext length exactly like real
// clients must.
type simCommitClient struct {
	t      *testing.T
	net    *simnet.Network
	addr   simnet.Addr
	server simnet.Addr
	sealer *wire.Sealer
	opener *wire.Opener

	token    [wire.CommitTokenSize]byte
	verdicts []wire.CommitVerdict
	stamps   int
}

func (c *simCommitClient) sendLock(seq uint64, hash [32]byte, unlock int64) {
	c.sendCommit(wire.CommitRequest{Kind: wire.KindCommitLock, ClientID: uint64(c.addr), Seq: seq, Hash: hash, UnlockNanos: unlock})
}

func (c *simCommitClient) sendUnlock(seq uint64) {
	c.sendCommit(wire.CommitRequest{Kind: wire.KindCommitUnlock, ClientID: uint64(c.addr), Seq: seq, Token: c.token})
}

func (c *simCommitClient) sendCommit(req wire.CommitRequest) {
	var plain [wire.CommitRequestSize]byte
	req.MarshalInto(plain[:])
	c.net.Send(c.addr, c.server, c.sealer.SealDatagramAppend(nil, plain[:]))
}

func (c *simCommitClient) sendStamp(seq uint64) {
	var plain [wire.TimeRequestSize]byte
	wire.TimeRequest{ClientID: uint64(c.addr), Seq: seq}.MarshalInto(plain[:])
	c.net.Send(c.addr, c.server, c.sealer.SealDatagramAppend(nil, plain[:]))
}

func (c *simCommitClient) handle(pkt simnet.Packet) {
	plain, _, err := c.opener.OpenDatagramInto(nil, pkt.Payload)
	if err != nil {
		c.t.Fatalf("client %d: bad response datagram: %v", c.addr, err)
	}
	switch len(plain) {
	case wire.TimeResponseSize:
		c.stamps++
	case wire.CommitResponseSize:
		resp, err := wire.UnmarshalCommitResponse(plain)
		if err != nil {
			c.t.Fatalf("client %d: bad commit response: %v", c.addr, err)
		}
		if resp.Kind == wire.KindCommitLock && resp.Verdict == wire.CommitOK {
			c.token = resp.Token
		}
		c.verdicts = append(c.verdicts, resp.Verdict)
	default:
		c.t.Fatalf("client %d: response plaintext of %d bytes", c.addr, len(plain))
	}
}

// TestSimBindingCommitRoundtrip runs the lock → early-unlock →
// ripe-unlock cycle over the simulated network, interleaved with stamp
// traffic on the same endpoint.
func TestSimBindingCommitRoundtrip(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(7)
	snet := simnet.New(sched, rng, simnet.Link{Base: 100 * time.Microsecond})
	key := []byte("serve-client-key-0123456789abcde")

	clock := ClockFunc(func() (int64, error) { return int64(sched.Now()), nil })
	b, err := NewSimBinding(sched, snet, SimConfig{
		Addr: 150,
		Key:  key,
		Tick: time.Millisecond,
		Server: Config{
			Shards: 2,
			Clock:  clock,
			Vault:  newCommitVault(t, clock),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()

	sealer, err := wire.NewSealer(key, 9)
	if err != nil {
		t.Fatal(err)
	}
	opener, err := wire.NewOpener(key)
	if err != nil {
		t.Fatal(err)
	}
	c := &simCommitClient{t: t, net: snet, addr: 9, server: b.Addr(), sealer: sealer, opener: opener}
	snet.Register(c.addr, c.handle)

	hash := sha256.Sum256([]byte("sim-sealed"))
	unlock := int64(simtime.FromDuration(200 * time.Millisecond))
	sched.At(simtime.FromDuration(1*time.Millisecond), func() { c.sendLock(1, hash, unlock) })
	sched.At(simtime.FromDuration(10*time.Millisecond), func() { c.sendUnlock(2) }) // too early
	sched.At(simtime.FromDuration(15*time.Millisecond), func() { c.sendStamp(3) })
	sched.At(simtime.FromDuration(300*time.Millisecond), func() { c.sendUnlock(4) }) // ripe
	sched.RunUntil(simtime.FromSeconds(1))

	want := []wire.CommitVerdict{wire.CommitOK, wire.CommitSealed, wire.CommitOK}
	if len(c.verdicts) != len(want) {
		t.Fatalf("verdicts %v, want %v", c.verdicts, want)
	}
	for i := range want {
		if c.verdicts[i] != want[i] {
			t.Fatalf("verdict %d = %v, want %v", i, c.verdicts[i], want[i])
		}
	}
	if c.stamps != 1 {
		t.Fatalf("%d stamp responses, want 1", c.stamps)
	}
	if counters := b.Server().Counters(); counters.Served != 4 || counters.Shed() != 0 {
		t.Fatalf("server counters: %s", counters.Summary())
	}
}

// TestLiveServerCommitRoundtrip exercises the commit family over real
// UDP through the batched serving path: lock, refused early unlock,
// granted unlock after the clock passes the lock time.
func TestLiveServerCommitRoundtrip(t *testing.T) {
	key := liveTestKey()
	var nanos atomic.Int64
	nanos.Store(int64(time.Hour))
	clock := ClockFunc(func() (int64, error) { return nanos.Load(), nil })
	srv, err := NewLiveServer(LiveConfig{
		Conn:     listenUDP(t),
		Key:      key,
		SenderID: 150,
		Tick:     time.Millisecond,
		Server: Config{
			Clock: clock,
			Vault: newCommitVault(t, clock),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := listenUDP(t)
	defer client.Close()
	sealer, err := wire.NewSealer(key, 9001)
	if err != nil {
		t.Fatal(err)
	}
	opener, err := wire.NewOpener(key)
	if err != nil {
		t.Fatal(err)
	}
	roundtrip := func(req wire.CommitRequest) wire.CommitResponse {
		t.Helper()
		var plain [wire.CommitRequestSize]byte
		req.MarshalInto(plain[:])
		if _, err := client.WriteTo(sealer.SealDatagramAppend(nil, plain[:]), srv.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		client.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 2048)
		n, _, err := client.ReadFrom(buf)
		if err != nil {
			t.Fatalf("no commit response: %v", err)
		}
		pt, _, err := opener.OpenDatagramInto(nil, buf[:n])
		if err != nil {
			t.Fatalf("bad response datagram: %v", err)
		}
		resp, err := wire.UnmarshalCommitResponse(pt)
		if err != nil {
			t.Fatal(err)
		}
		if resp.ClientID != req.ClientID || resp.Seq != req.Seq || resp.Kind != req.Kind {
			t.Fatalf("response %+v does not match request %+v", resp, req)
		}
		return resp
	}

	hash := sha256.Sum256([]byte("live-sealed"))
	unlock := nanos.Load() + int64(time.Second)
	lock := roundtrip(wire.CommitRequest{Kind: wire.KindCommitLock, ClientID: 9001, Seq: 1, Hash: hash, UnlockNanos: unlock})
	if lock.Verdict != wire.CommitOK || lock.Epoch != 1 || lock.UnlockNanos != unlock {
		t.Fatalf("lock %+v", lock)
	}
	early := roundtrip(wire.CommitRequest{Kind: wire.KindCommitUnlock, ClientID: 9001, Seq: 2, Token: lock.Token})
	if early.Verdict != wire.CommitSealed {
		t.Fatalf("early unlock %+v", early)
	}
	nanos.Store(unlock + int64(time.Millisecond))
	ripe := roundtrip(wire.CommitRequest{Kind: wire.KindCommitUnlock, ClientID: 9001, Seq: 3, Token: lock.Token})
	if ripe.Verdict != wire.CommitOK || ripe.Nanos < unlock {
		t.Fatalf("ripe unlock %+v", ripe)
	}
	status := roundtrip(wire.CommitRequest{Kind: wire.KindCommitStatus, ClientID: 9001, Seq: 4, Token: lock.Token})
	if status.Verdict != wire.CommitOK {
		t.Fatalf("status %+v", status)
	}
	if c := srv.Counters(); c.Served != 4 || c.OversizeDrops != 0 || c.SendErrors != 0 {
		t.Fatalf("counters: %s", c.Summary())
	}
}

// TestLiveServerVaultlessDropsCommitSized: without a vault the receive
// buffers stay stamp-sized and a commit-sized datagram is an oversize
// drop — it never reaches authentication, and stamp traffic still
// flows.
func TestLiveServerVaultlessDropsCommitSized(t *testing.T) {
	key := liveTestKey()
	srv, err := NewLiveServer(LiveConfig{
		Conn:     listenUDP(t),
		Key:      key,
		SenderID: 150,
		Tick:     time.Millisecond,
		Server: Config{
			Clock: ClockFunc(func() (int64, error) { return 424242, nil }),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := listenUDP(t)
	defer client.Close()
	sealer, err := wire.NewSealer(key, 42)
	if err != nil {
		t.Fatal(err)
	}
	var creq [wire.CommitRequestSize]byte
	wire.CommitRequest{Kind: wire.KindCommitStatus, ClientID: 42, Seq: 1}.MarshalInto(creq[:])
	if _, err := client.WriteTo(sealer.SealDatagramAppend(nil, creq[:]), srv.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	// A stamp request behind it is still answered; by the time that
	// response arrives, the commit datagram has been counted.
	var sreq [wire.TimeRequestSize]byte
	wire.TimeRequest{ClientID: 42, Seq: 2}.MarshalInto(sreq[:])
	if _, err := client.WriteTo(sealer.SealDatagramAppend(nil, sreq[:]), srv.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 2048)
	if _, _, err := client.ReadFrom(buf); err != nil {
		t.Fatalf("stamp response: %v", err)
	}
	if c := srv.Counters(); c.OversizeDrops != 1 || c.Received != 1 {
		t.Fatalf("counters: oversize=%d received=%d, want 1/1", c.OversizeDrops, c.Received)
	}
}
