package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"triadtime/internal/wire"
)

// LiveConfig parameterizes a live (UDP) serving endpoint.
type LiveConfig struct {
	// Conn is the endpoint's packet socket. The server takes ownership
	// and closes it on Close. Required.
	Conn net.PacketConn
	// Key seals client traffic — a separate credential from the
	// protocol cluster key, so client datagrams cannot masquerade as
	// protocol traffic (and vice versa).
	Key []byte
	// SenderID is the endpoint's wire identity in response datagrams.
	SenderID uint32
	// Tick is the per-shard drain period. Default 1ms.
	Tick time.Duration
	// Server configures the underlying engine; Clock is required.
	Server Config
}

// LiveServer runs a Server over UDP: a receive goroutine decodes,
// authenticates and admits requests; one drain goroutine per shard
// batches responses on the configured tick. The engine, admission
// behavior and wire format are identical to the simulated binding.
type LiveServer struct {
	srv   *Server[net.Addr]
	conn  net.PacketConn
	tick  time.Duration
	start time.Time

	opener *wire.Opener
	sealer *wire.Sealer
	// sealMu serializes sealer state (the nonce counter): shed
	// responses on the receive goroutine and batch responses on the
	// drain goroutines share one sending identity.
	sealMu sync.Mutex

	done     chan struct{}
	drainWG  sync.WaitGroup
	recvDone chan struct{}
	stopOnce sync.Once
}

// NewLiveServer creates the endpoint and starts its goroutines.
func NewLiveServer(cfg LiveConfig) (*LiveServer, error) {
	if cfg.Conn == nil {
		return nil, errors.New("serve: Conn is required")
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	srv, err := New[net.Addr](cfg.Server)
	if err != nil {
		return nil, err
	}
	opener, err := wire.NewOpener(cfg.Key)
	if err != nil {
		return nil, fmt.Errorf("serve: client key: %w", err)
	}
	sealer, err := wire.NewSealer(cfg.Key, cfg.SenderID)
	if err != nil {
		return nil, fmt.Errorf("serve: client key: %w", err)
	}
	s := &LiveServer{
		srv:      srv,
		conn:     cfg.Conn,
		tick:     cfg.Tick,
		start:    time.Now(),
		opener:   opener,
		sealer:   sealer,
		done:     make(chan struct{}),
		recvDone: make(chan struct{}),
	}
	for i := 0; i < srv.Shards(); i++ {
		s.drainWG.Add(1)
		go s.drainLoop(i)
	}
	go s.recvLoop()
	return s, nil
}

// Server exposes the underlying engine (counters, metrics).
func (s *LiveServer) Server() *Server[net.Addr] { return s.srv }

// LocalAddr reports the bound UDP address.
func (s *LiveServer) LocalAddr() net.Addr { return s.conn.LocalAddr() }

// nowNanos is the endpoint's monotonic clock for admission and
// queue-wait accounting (not trusted time).
func (s *LiveServer) nowNanos() int64 { return int64(time.Since(s.start)) }

func (s *LiveServer) recvLoop() {
	defer close(s.recvDone)
	buf := make([]byte, 64*1024)
	scratch := make([]byte, 0, wire.TimeRequestSize)
	var plain [wire.TimeResponseSize]byte
	sealBuf := make([]byte, 0, wire.TimeResponseSize+wire.SealedOverhead)
	for {
		n, from, err := s.conn.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		// Opener replay state is only touched here, on one goroutine.
		pt, _, err := s.opener.OpenDatagramInto(scratch, buf[:n])
		if err != nil {
			continue // forged, replayed, or protocol-keyed: drop
		}
		req, err := wire.UnmarshalTimeRequest(pt)
		if err != nil {
			continue
		}
		if resp, shed := s.srv.Submit(s.nowNanos(), req, from); shed {
			s.send(from, resp, &plain, &sealBuf)
		}
	}
}

func (s *LiveServer) drainLoop(i int) {
	defer s.drainWG.Done()
	t := time.NewTicker(s.tick)
	defer t.Stop()
	out := make([]Delivery[net.Addr], 0, s.srv.BatchMax())
	var plain [wire.TimeResponseSize]byte
	sealBuf := make([]byte, 0, wire.TimeResponseSize+wire.SealedOverhead)
	deliver := func() {
		out = s.srv.Drain(i, s.nowNanos(), out[:0])
		for k := range out {
			s.send(out[k].To, out[k].Resp, &plain, &sealBuf)
		}
	}
	for {
		select {
		case <-t.C:
			deliver()
		case <-s.done:
			deliver() // answer what was already admitted
			return
		}
	}
}

// send seals one response and writes it. plain and sealBuf are the
// caller's scratch; only the sealer's nonce counter is shared state.
func (s *LiveServer) send(to net.Addr, resp wire.TimeResponse, plain *[wire.TimeResponseSize]byte, sealBuf *[]byte) {
	resp.MarshalInto(plain[:])
	s.sealMu.Lock()
	*sealBuf = s.sealer.SealDatagramAppend((*sealBuf)[:0], plain[:])
	s.sealMu.Unlock()
	// Write errors are indistinguishable from loss for the client.
	_, _ = s.conn.WriteTo(*sealBuf, to)
}

// Close shuts the endpoint down gracefully: drain goroutines answer
// every already-admitted request and exit, then the socket closes and
// the receive goroutine exits. Safe to call multiple times.
func (s *LiveServer) Close() error {
	var err error
	s.stopOnce.Do(func() {
		close(s.done)
		s.drainWG.Wait()
		err = s.conn.Close()
		<-s.recvDone
	})
	return err
}
