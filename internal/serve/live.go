package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"triadtime/internal/transport"
	"triadtime/internal/wire"
)

// Sealed client datagram sizes. Requests are fixed-size, so the
// receive path can right-size its buffers to the only legal datagram
// and reject anything larger before paying for authentication.
const (
	// SealedRequestSize is the exact wire size of a sealed TimeRequest.
	SealedRequestSize = wire.TimeRequestSize + wire.SealedOverhead
	// SealedResponseSize is the exact wire size of a sealed TimeResponse.
	SealedResponseSize = wire.TimeResponseSize + wire.SealedOverhead
	// SealedCommitRequestSize is the exact wire size of a sealed
	// CommitRequest (kinds 8-10). Only legal when the endpoint has a
	// commitment vault; without one these datagrams are oversize drops.
	SealedCommitRequestSize = wire.CommitRequestSize + wire.SealedOverhead
	// SealedCommitResponseSize is the exact wire size of a sealed
	// CommitResponse.
	SealedCommitResponseSize = wire.CommitResponseSize + wire.SealedOverhead
)

// recvSlots is how many datagrams one batched receive can return: one
// recvmmsg pulls up to this many requests out of the socket buffer per
// kernel crossing.
const recvSlots = 256

// LiveConfig parameterizes a live (UDP) serving endpoint.
type LiveConfig struct {
	// Conn, when set, is a caller-supplied packet socket (the
	// compatibility and test-stub path, one datagram per syscall unless
	// it is a *net.UDPConn). The server takes ownership and closes it on
	// Close. Mutually exclusive with Listen.
	Conn net.PacketConn
	// Listen, when set, is a UDP address ("127.0.0.1:0", "0.0.0.0:7201")
	// the server binds itself — as a SO_REUSEPORT group of Sockets
	// members on Linux, so the kernel spreads client flows across
	// receive goroutines. Mutually exclusive with Conn.
	Listen string
	// Sockets is the reuseport group size for Listen mode. Default 1;
	// values above 1 require Linux.
	Sockets int
	// Key seals client traffic — a separate credential from the
	// protocol cluster key, so client datagrams cannot masquerade as
	// protocol traffic (and vice versa).
	Key []byte
	// SenderID is the base of the endpoint's wire-identity range. The
	// endpoint seals concurrently from every drain shard and every
	// receive goroutine, each under its own identity so AES-GCM nonces
	// stay unique without a shared counter: it reserves
	// [SenderID, SenderID+Shards+Sockets). See PROTOCOL.md.
	SenderID uint32
	// Tick is the per-shard drain period. Default 1ms.
	Tick time.Duration
	// Server configures the underlying engine; Clock is required.
	Server Config
}

// LiveServer runs a Server over UDP with nothing shared on the hot
// path: each socket has a receive goroutine owning its own
// wire.Opener, receive batch and shed sealer; each engine shard has a
// drain goroutine owning its own sealer and send batch. Responses are
// sealed straight into batch buffers and flushed with one sendmmsg per
// batch (Linux), so steady-state serving performs no allocation and
// takes no lock beyond the engine's per-shard queue mutex. The engine,
// admission behavior and wire format are identical to the simulated
// binding.
type LiveServer struct {
	srv    *Server[transport.Sockaddr]
	conns  []net.PacketConn
	dconns []transport.DatagramConn
	tick   time.Duration
	start  time.Time

	// maxReq/maxResp are the largest legal sealed datagram in each
	// direction: the stamp sizes normally, the commit sizes when a
	// vault is configured. Receive buffers, the pre-auth oversize
	// threshold, send slots and the GSO segment all derive from them.
	maxReq  int
	maxResp int

	// sendErrors counts responses discarded because the socket write
	// failed; oversize counts received datagrams larger than any legal
	// request, dropped before authentication.
	sendErrors atomic.Uint64
	oversize   atomic.Uint64

	done     chan struct{}
	drainWG  sync.WaitGroup
	recvWG   sync.WaitGroup
	stopOnce sync.Once
	closeErr error
}

// LiveCounters extends the engine's admission/serving tallies with the
// endpoint's transport-level ones.
type LiveCounters struct {
	Counters
	// SendErrors counts responses discarded because the socket write
	// failed (client indistinguishable from datagram loss; see
	// triad_serve_send_errors_total).
	SendErrors uint64
	// OversizeDrops counts received datagrams exceeding
	// SealedRequestSize, dropped before any AEAD work.
	OversizeDrops uint64
}

// NewLiveServer creates the endpoint and starts its goroutines.
func NewLiveServer(cfg LiveConfig) (*LiveServer, error) {
	if (cfg.Conn == nil) == (cfg.Listen == "") {
		return nil, errors.New("serve: exactly one of Conn and Listen is required")
	}
	if cfg.Sockets <= 0 {
		cfg.Sockets = 1
	}
	if cfg.Conn != nil && cfg.Sockets != 1 {
		return nil, errors.New("serve: Sockets requires Listen mode (a caller-supplied Conn is one socket)")
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	srv, err := New[transport.Sockaddr](cfg.Server)
	if err != nil {
		return nil, err
	}
	// With a commitment vault the endpoint speaks two request families;
	// without one, buffers stay right-sized to stamp traffic and
	// commit-sized datagrams are dropped before authentication.
	maxReq, maxResp := SealedRequestSize, SealedResponseSize
	if cfg.Server.Vault != nil {
		maxReq, maxResp = SealedCommitRequestSize, SealedCommitResponseSize
	}

	var conns []net.PacketConn
	if cfg.Conn != nil {
		conns = []net.PacketConn{cfg.Conn}
	} else {
		group, err := transport.ListenReusePortGroup("udp", cfg.Listen, cfg.Sockets)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		conns = make([]net.PacketConn, len(group))
		for i, c := range group {
			conns[i] = c
		}
	}
	closeConns := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	dconns := make([]transport.DatagramConn, len(conns))
	for i, c := range conns {
		if uc, ok := c.(*net.UDPConn); ok {
			// Request bursts at hundreds of kreq/s overflow default
			// socket buffers long before the recv loop falls behind;
			// match the sizing ListenReusePortGroup applies.
			_ = uc.SetReadBuffer(1 << 20)
			_ = uc.SetWriteBuffer(1 << 20)
			bc, err := transport.NewBatchConn(uc)
			if err != nil {
				closeConns()
				return nil, fmt.Errorf("serve: batch socket: %w", err)
			}
			// Best-effort UDP GSO at the largest response size: stamp-only
			// endpoints segment at SealedResponseSize as before; with a
			// vault the segment grows to SealedCommitResponseSize, under
			// which equal-size same-client runs still collapse and the
			// smaller stamp responses simply terminate runs (groupGSO only
			// rejects slots *exceeding* the segment). Kernels without
			// UDP_SEGMENT keep the one-header-per-datagram path.
			if g, ok := transport.DatagramConn(bc).(interface{ EnableGSO(int) error }); ok {
				_ = g.EnableGSO(maxResp)
			}
			dconns[i] = bc
		} else {
			dconns[i] = transport.NewPacketBatchConn(c)
		}
	}

	// Identity range: drain shard i seals as SenderID+i, receive
	// goroutine j (shed responses) as SenderID+Shards+j. Disjoint
	// identities keep every concurrent sealer's nonce space disjoint
	// under the shared key.
	idents := srv.Shards() + len(dconns)
	drainSealers := make([]*wire.Sealer, srv.Shards())
	for i := range drainSealers {
		if drainSealers[i], err = wire.NewSealerShard(cfg.Key, cfg.SenderID, i, idents); err != nil {
			closeConns()
			return nil, fmt.Errorf("serve: client key: %w", err)
		}
	}
	shedSealers := make([]*wire.Sealer, len(dconns))
	openers := make([]*wire.Opener, len(dconns))
	for j := range dconns {
		if shedSealers[j], err = wire.NewSealerShard(cfg.Key, cfg.SenderID, srv.Shards()+j, idents); err != nil {
			closeConns()
			return nil, fmt.Errorf("serve: client key: %w", err)
		}
		if openers[j], err = wire.NewOpener(cfg.Key); err != nil {
			closeConns()
			return nil, fmt.Errorf("serve: client key: %w", err)
		}
	}

	s := &LiveServer{
		srv:     srv,
		conns:   conns,
		dconns:  dconns,
		tick:    cfg.Tick,
		start:   time.Now(),
		maxReq:  maxReq,
		maxResp: maxResp,
		done:    make(chan struct{}),
	}
	for i := 0; i < srv.Shards(); i++ {
		s.drainWG.Add(1)
		go s.drainLoop(i, dconns[i%len(dconns)], drainSealers[i])
	}
	for j := range dconns {
		s.recvWG.Add(1)
		go s.recvLoop(dconns[j], openers[j], shedSealers[j])
	}
	return s, nil
}

// Server exposes the underlying engine (shard layout, engine counters).
func (s *LiveServer) Server() *Server[transport.Sockaddr] { return s.srv }

// Counters snapshots the endpoint's cumulative tallies: the engine's
// plus the transport-level ones only this layer sees.
func (s *LiveServer) Counters() LiveCounters {
	return LiveCounters{
		Counters:      s.srv.Counters(),
		SendErrors:    s.sendErrors.Load(),
		OversizeDrops: s.oversize.Load(),
	}
}

// LocalAddr reports the bound UDP address (shared by every socket in a
// reuseport group).
func (s *LiveServer) LocalAddr() net.Addr { return s.conns[0].LocalAddr() }

// Sockets reports how many UDP sockets serve the address.
func (s *LiveServer) Sockets() int { return len(s.dconns) }

// nowNanos is the endpoint's monotonic clock for admission and
// queue-wait accounting (not trusted time).
func (s *LiveServer) nowNanos() int64 { return int64(time.Since(s.start)) }

// recvLoop drains one socket: each batched receive authenticates and
// admits its datagrams, and shed (overload) responses are sealed under
// this goroutine's own identity and flushed back in one batched send.
// All state — opener replay windows, batches, seal scratch — is owned
// by this goroutine; the only shared structure touched is the engine
// shard a request hashes onto.
func (s *LiveServer) recvLoop(conn transport.DatagramConn, opener *wire.Opener, shedSealer *wire.Sealer) {
	defer s.recvWG.Done()
	// One byte above the largest legal size: a full read at cap is an
	// oversize (possibly kernel-truncated) datagram, not a request.
	in := transport.NewBatch(recvSlots, s.maxReq+1)
	out := transport.NewBatch(recvSlots, s.maxResp)
	scratch := make([]byte, 0, wire.CommitRequestSize)
	var plain [wire.CommitResponseSize]byte
	for {
		n, err := conn.RecvBatch(in)
		if err != nil {
			return // closed, or reads interrupted for shutdown
		}
		s.admitBatch(conn, in, n, out, opener, shedSealer, &plain, scratch)
	}
}

// admitBatch processes one received batch and sends any shed
// responses.
//
//triad:hotpath
func (s *LiveServer) admitBatch(conn transport.DatagramConn, in *transport.Batch, n int, out *transport.Batch, opener *wire.Opener, shedSealer *wire.Sealer, plain *[wire.CommitResponseSize]byte, scratch []byte) {
	now := s.nowNanos()
	shed := 0
	for i := 0; i < n; i++ {
		if in.Len(i) > s.maxReq {
			s.oversize.Add(1)
			continue
		}
		pt, _, err := opener.OpenDatagramInto(scratch, in.Payload(i))
		if err != nil {
			continue // forged, replayed, or protocol-keyed: drop
		}
		// The request families are fixed-size and distinct, so the
		// authenticated plaintext length is the demultiplexer.
		switch len(pt) {
		case wire.TimeRequestSize:
			req, err := wire.UnmarshalTimeRequest(pt)
			if err != nil {
				continue
			}
			if resp, shedNow := s.srv.Submit(now, req, in.Addr(i)); shedNow {
				resp.MarshalInto(plain[:])
				sealed := shedSealer.SealDatagramAppend(out.Buffer(shed), plain[:wire.TimeResponseSize])
				out.Set(shed, len(sealed), in.Addr(i))
				shed++
			}
		case wire.CommitRequestSize:
			req, err := wire.UnmarshalCommitRequest(pt)
			if err != nil {
				continue
			}
			if resp, decided := s.srv.SubmitCommit(now, req, in.Addr(i)); decided {
				resp.MarshalInto(plain[:])
				sealed := shedSealer.SealDatagramAppend(out.Buffer(shed), plain[:wire.CommitResponseSize])
				out.Set(shed, len(sealed), in.Addr(i))
				shed++
			}
		}
	}
	if shed > 0 {
		sent, _ := conn.SendBatch(out, shed)
		if sent < shed {
			s.sendErrors.Add(uint64(shed - sent))
		}
	}
}

// drainLoop serves one engine shard on the configured tick, sealing
// under the shard's own identity and flushing each drained batch with
// one batched send on the shard's assigned socket. (Reuseport group
// members share the bound address, so responses carry the same source
// address regardless of which socket sends them.)
func (s *LiveServer) drainLoop(i int, conn transport.DatagramConn, sealer *wire.Sealer) {
	defer s.drainWG.Done()
	t := time.NewTicker(s.tick)
	defer t.Stop()
	deliveries := make([]Delivery[transport.Sockaddr], 0, s.srv.BatchMax())
	out := transport.NewBatch(s.srv.BatchMax(), s.maxResp)
	var plain [wire.CommitResponseSize]byte
	for {
		select {
		case <-t.C:
			// Drain until the shard is empty, not once per tick: a
			// backlog above BatchMax would otherwise be throttled to
			// BatchMax responses per tick regardless of capacity.
			for {
				deliveries = s.srv.Drain(i, s.nowNanos(), deliveries[:0])
				if len(deliveries) == 0 {
					break
				}
				s.sendDeliveries(conn, sealer, deliveries, out, &plain)
			}
		case <-s.done:
			// Answer everything already admitted: reads are interrupted
			// before done closes, so the backlog only shrinks — but it
			// can exceed one BatchMax drain, so drain until empty.
			for {
				deliveries = s.srv.Drain(i, s.nowNanos(), deliveries[:0])
				if len(deliveries) == 0 {
					return
				}
				s.sendDeliveries(conn, sealer, deliveries, out, &plain)
			}
		}
	}
}

// sendDeliveries seals a drained batch into out and flushes it,
// chunking in the (config-dependent) case that BatchMax exceeds the
// batch's slot count.
//
//triad:hotpath
func (s *LiveServer) sendDeliveries(conn transport.DatagramConn, sealer *wire.Sealer, deliveries []Delivery[transport.Sockaddr], out *transport.Batch, plain *[wire.CommitResponseSize]byte) {
	k := 0
	for d := range deliveries {
		var pt []byte
		if deliveries[d].IsCommit {
			deliveries[d].Commit.MarshalInto(plain[:])
			pt = plain[:wire.CommitResponseSize]
		} else {
			deliveries[d].Resp.MarshalInto(plain[:])
			pt = plain[:wire.TimeResponseSize]
		}
		sealed := sealer.SealDatagramAppend(out.Buffer(k), pt)
		out.Set(k, len(sealed), deliveries[d].To)
		k++
		if k == out.Size() {
			s.flush(conn, out, k)
			k = 0
		}
	}
	if k > 0 {
		s.flush(conn, out, k)
	}
}

// flush sends out's first k slots, counting responses the socket
// refused. Write errors are indistinguishable from loss for the
// client; the counter is the server operator's signal.
//
//triad:hotpath
func (s *LiveServer) flush(conn transport.DatagramConn, out *transport.Batch, k int) {
	sent, _ := conn.SendBatch(out, k)
	if sent < k {
		s.sendErrors.Add(uint64(k - sent))
	}
}

// Close shuts the endpoint down gracefully: socket reads are
// interrupted and the receive goroutines join (no further admissions),
// then each drain goroutine answers everything already admitted on its
// still-open socket and exits, and only then do the sockets close.
// Every request admitted before Close is answered. Safe to call
// multiple times.
func (s *LiveServer) Close() error {
	s.stopOnce.Do(func() {
		for _, c := range s.conns {
			_ = transport.InterruptReads(c)
		}
		s.recvWG.Wait()
		close(s.done)
		s.drainWG.Wait()
		for _, c := range s.conns {
			if err := c.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}
