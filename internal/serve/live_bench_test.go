package serve

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"triadtime/internal/transport"
	"triadtime/internal/wire"
)

// BenchmarkLiveServeThroughput measures the full live serving path
// end-to-end over loopback UDP: sealed requests in, authenticated,
// admitted, batch-drained, sealed responses out. The driver is
// closed-loop and windowed — each worker keeps a fixed number of
// requests in flight and only replenishes as responses return — so the
// number reported is a sustained rate, not an open-loop burst that
// would collapse into shedding. Reports req/s (responses actually
// received and counted) alongside ns/op.
func BenchmarkLiveServeThroughput(b *testing.B) {
	// One socket per core up to a small cap: extra sockets only add
	// receive-goroutine wakeups once cores are saturated.
	sockets := runtime.NumCPU()
	if sockets > 4 {
		sockets = 4
	}
	if !transport.ReusePortSockets {
		sockets = 1
	}
	key := liveTestKey()
	srv, err := NewLiveServer(LiveConfig{
		Listen:   "127.0.0.1:0",
		Sockets:  sockets,
		Key:      key,
		SenderID: 300,
		Tick:     100 * time.Microsecond,
		Server: Config{
			Shards:     4,
			QueueDepth: 4096,
			BatchMax:   512,
			Clock:      ClockFunc(func() (int64, error) { return 1234567890, nil }),
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	const workers = 2
	const window = 512 // in-flight per worker; must stay under QueueDepth and socket buffers
	perWorker := b.N / workers
	if perWorker < 1 {
		perWorker = 1
	}

	var responses, lost atomic.Uint64
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := dialLiveClient(b, key, srv.LocalAddr(), uint64(1000+w))
			c.conn.SetReadBuffer(1 << 20)
			bc, err := transport.NewBatchConn(c.conn)
			if err != nil {
				b.Error(err)
				return
			}
			// Requests are fixed-size too, so the generator side gets the
			// same segmentation win (best-effort; plain sends otherwise).
			if g, ok := transport.DatagramConn(bc).(interface{ EnableGSO(int) error }); ok {
				_ = g.EnableGSO(SealedRequestSize)
			}
			out := transport.NewBatch(window, SealedRequestSize)
			in := transport.NewBatch(window, SealedResponseSize+1)
			var plain [wire.TimeRequestSize]byte
			seq := uint64(0)
			for remaining := perWorker; remaining > 0; {
				burst := window
				if burst > remaining {
					burst = remaining
				}
				for i := 0; i < burst; i++ {
					seq++
					// Spread client IDs so every engine shard works.
					wire.TimeRequest{ClientID: uint64(w)<<16 | seq%16, Seq: seq}.MarshalInto(plain[:])
					sealed := c.sealer.SealDatagramAppend(out.Buffer(i), plain[:])
					out.Set(i, len(sealed), transport.Sockaddr{}) // connected socket
				}
				if _, err := bc.SendBatch(out, burst); err != nil {
					b.Error(err)
					return
				}
				got := 0
				c.conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
				for got < burst {
					k, err := bc.RecvBatch(in)
					if err != nil {
						// Deadline: treat the shortfall as datagram loss
						// and move on rather than deadlocking the loop.
						lost.Add(uint64(burst - got))
						break
					}
					got += k
				}
				responses.Add(uint64(got))
				remaining -= burst
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()

	got, dropped := responses.Load(), lost.Load()
	if got < uint64(b.N)/2 {
		b.Fatalf("only %d/%d responses (lost %d): throughput figure meaningless", got, b.N, dropped)
	}
	b.ReportMetric(float64(got)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(float64(dropped), "lost")
	if c := srv.Counters(); c.SendErrors != 0 {
		b.Fatalf("send errors during benchmark: %d", c.SendErrors)
	}
}
