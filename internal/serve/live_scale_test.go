package serve

import (
	"errors"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"triadtime/internal/transport"
	"triadtime/internal/wire"
)

// failingConn is a net.PacketConn stub whose writes always fail: the
// SendErrors counter's unit-test harness. Reads deliver queued
// datagrams and honor deadline interrupts the way a real socket does.
type failingConn struct {
	reqs      chan []byte
	interrupt chan struct{}
	closed    chan struct{}
	intOnce   sync.Once
	closeOnce sync.Once
	writes    atomic.Uint64
}

func newFailingConn() *failingConn {
	return &failingConn{
		reqs:      make(chan []byte, 16),
		interrupt: make(chan struct{}),
		closed:    make(chan struct{}),
	}
}

func (c *failingConn) ReadFrom(p []byte) (int, net.Addr, error) {
	select {
	case b := <-c.reqs:
		return copy(p, b), &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 4242}, nil
	case <-c.interrupt:
		return 0, nil, os.ErrDeadlineExceeded
	case <-c.closed:
		return 0, nil, net.ErrClosed
	}
}

func (c *failingConn) WriteTo(p []byte, a net.Addr) (int, error) {
	c.writes.Add(1)
	return 0, errors.New("stub: transmit ring gone")
}

func (c *failingConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

func (c *failingConn) LocalAddr() net.Addr {
	return &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 7201}
}

func (c *failingConn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

func (c *failingConn) SetReadDeadline(t time.Time) error {
	if !t.IsZero() && t.Before(time.Now()) {
		c.intOnce.Do(func() { close(c.interrupt) })
	}
	return nil
}

func (c *failingConn) SetWriteDeadline(t time.Time) error { return nil }

// TestLiveServerCountsSendErrors: responses the socket refuses are
// discarded (the client sees loss) but tallied in SendErrors.
func TestLiveServerCountsSendErrors(t *testing.T) {
	key := liveTestKey()
	conn := newFailingConn()
	srv, err := NewLiveServer(LiveConfig{
		Conn:     conn,
		Key:      key,
		SenderID: 150,
		Tick:     time.Millisecond,
		Server: Config{
			Clock: ClockFunc(func() (int64, error) { return 42, nil }),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sealer, err := wire.NewSealer(key, 9001)
	if err != nil {
		t.Fatal(err)
	}
	var plain [wire.TimeRequestSize]byte
	wire.TimeRequest{ClientID: 9001, Seq: 1}.MarshalInto(plain[:])
	conn.reqs <- sealer.SealDatagramAppend(nil, plain[:])

	deadline := time.Now().Add(5 * time.Second)
	for srv.Counters().SendErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("send error never counted: %+v", srv.Counters())
		}
		time.Sleep(time.Millisecond)
	}
	c := srv.Counters()
	if c.Served != 1 || c.SendErrors != 1 || conn.writes.Load() != 1 {
		t.Fatalf("served=%d sendErrors=%d writes=%d, want 1/1/1", c.Served, c.SendErrors, conn.writes.Load())
	}
}

// TestLiveServerDropsOversize: datagrams above the only legal sealed
// request size are dropped before any authentication work and tallied;
// well-formed requests on the same socket keep being served.
func TestLiveServerDropsOversize(t *testing.T) {
	key := liveTestKey()
	srv, err := NewLiveServer(LiveConfig{
		Conn:     listenUDP(t),
		Key:      key,
		SenderID: 150,
		Tick:     time.Millisecond,
		Server: Config{
			Clock: ClockFunc(func() (int64, error) { return 42, nil }),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := listenUDP(t)
	defer client.Close()
	if _, err := client.WriteTo(make([]byte, SealedRequestSize+37), srv.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Counters().OversizeDrops == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("oversize datagram never counted: %+v", srv.Counters())
		}
		time.Sleep(time.Millisecond)
	}
	if c := srv.Counters(); c.Received != 0 {
		t.Fatalf("oversize datagram reached the engine: %s", c.Summary())
	}

	sealer, err := wire.NewSealer(key, 9001)
	if err != nil {
		t.Fatal(err)
	}
	var plain [wire.TimeRequestSize]byte
	wire.TimeRequest{ClientID: 9001, Seq: 1}.MarshalInto(plain[:])
	if _, err := client.WriteTo(sealer.SealDatagramAppend(nil, plain[:]), srv.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	if _, _, err := client.ReadFrom(buf); err != nil {
		t.Fatalf("no response after oversize drop: %v", err)
	}
}

// liveClient is one test client flow: its own socket, sealer identity
// and opener.
type liveClient struct {
	conn   *net.UDPConn
	sealer *wire.Sealer
	opener *wire.Opener
	id     uint64
}

func dialLiveClient(t testing.TB, key []byte, addr net.Addr, id uint64) *liveClient {
	t.Helper()
	conn, err := net.DialUDP("udp", nil, addr.(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	sealer, err := wire.NewSealer(key, uint32(8000+id))
	if err != nil {
		t.Fatal(err)
	}
	opener, err := wire.NewOpener(key)
	if err != nil {
		t.Fatal(err)
	}
	return &liveClient{conn: conn, sealer: sealer, opener: opener, id: id}
}

func (c *liveClient) send(seq uint64) error {
	var plain [wire.TimeRequestSize]byte
	wire.TimeRequest{ClientID: c.id, Seq: seq}.MarshalInto(plain[:])
	_, err := c.conn.Write(c.sealer.SealDatagramAppend(nil, plain[:]))
	return err
}

// recv reads one response, returning it decoded and authenticated.
func (c *liveClient) recv(timeout time.Duration) (wire.TimeResponse, error) {
	buf := make([]byte, SealedResponseSize+1)
	c.conn.SetReadDeadline(time.Now().Add(timeout))
	n, err := c.conn.Read(buf)
	if err != nil {
		return wire.TimeResponse{}, err
	}
	pt, _, err := c.opener.OpenDatagramInto(nil, buf[:n])
	if err != nil {
		return wire.TimeResponse{}, err
	}
	return wire.UnmarshalTimeResponse(pt)
}

// TestLiveServerMultiSocket: a reuseport group serves many client
// flows — the kernel spreads flows across sockets, every request is
// answered, and every response authenticates under some identity in
// the server's range.
func TestLiveServerMultiSocket(t *testing.T) {
	sockets := 1
	if transport.ReusePortSockets {
		sockets = 4
	}
	key := liveTestKey()
	srv, err := NewLiveServer(LiveConfig{
		Listen:   "127.0.0.1:0",
		Sockets:  sockets,
		Key:      key,
		SenderID: 150,
		Tick:     time.Millisecond,
		Server: Config{
			Clock: ClockFunc(func() (int64, error) { return 1234567890, nil }),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Sockets() != sockets {
		t.Fatalf("Sockets() = %d, want %d", srv.Sockets(), sockets)
	}

	const flows, perFlow = 16, 5
	for f := 0; f < flows; f++ {
		c := dialLiveClient(t, key, srv.LocalAddr(), uint64(f+1))
		for seq := uint64(0); seq < perFlow; seq++ {
			if err := c.send(seq); err != nil {
				t.Fatal(err)
			}
		}
		got := map[uint64]bool{}
		for len(got) < perFlow {
			resp, err := c.recv(5 * time.Second)
			if err != nil {
				t.Fatalf("flow %d after %d responses: %v", f, len(got), err)
			}
			if resp.Status != wire.StatusOK || resp.ClientID != c.id || resp.Nanos != 1234567890 {
				t.Fatalf("flow %d bad response: %+v", f, resp)
			}
			got[resp.Seq] = true
		}
	}
	c := srv.Counters()
	if c.Served != flows*perFlow || c.SendErrors != 0 || c.OversizeDrops != 0 {
		t.Fatalf("counters: %s sendErrors=%d oversize=%d", c.Summary(), c.SendErrors, c.OversizeDrops)
	}
}

// TestLiveServerCloseUnderLoad closes the endpoint while concurrent
// clients are firing at it across multiple sockets, and asserts the
// graceful-shutdown contract: every admitted request is answered
// (served or unavailable, never silently dropped), no send hits a
// closed socket, all goroutines exit, and double-Close is safe.
func TestLiveServerCloseUnderLoad(t *testing.T) {
	sockets := 1
	if transport.ReusePortSockets {
		sockets = 3
	}
	key := liveTestKey()
	baseline := runtime.NumGoroutine()
	srv, err := NewLiveServer(LiveConfig{
		Listen:   "127.0.0.1:0",
		Sockets:  sockets,
		Key:      key,
		SenderID: 150,
		Tick:     time.Millisecond,
		Server: Config{
			Shards: 4,
			Clock:  ClockFunc(func() (int64, error) { return 42, nil }),
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const senders = 4
	stop := make(chan struct{})
	var senderWG sync.WaitGroup
	for w := 0; w < senders; w++ {
		c := dialLiveClient(t, key, srv.LocalAddr(), uint64(w+1))
		senderWG.Add(1)
		go func(c *liveClient) {
			defer senderWG.Done()
			for seq := uint64(0); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := c.send(seq); err != nil {
					return // socket closed under us at test end
				}
			}
		}(c)
	}

	// Let load build, then close mid-stream.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Counters().Queued < 100 {
		if time.Now().After(deadline) {
			t.Fatalf("load never built: %+v", srv.Counters())
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	close(stop)
	senderWG.Wait()

	c := srv.Counters()
	if c.Queued == 0 {
		t.Fatal("no requests admitted")
	}
	if answered := c.Served + c.Unavailable; answered != c.Queued {
		t.Fatalf("admitted %d but answered %d: %s", c.Queued, answered, c.Summary())
	}
	if c.SendErrors != 0 {
		t.Fatalf("%d responses hit a closed or failing socket", c.SendErrors)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// All serving goroutines must be gone (allow unrelated runtime
	// goroutines a moment to settle).
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLiveSendPathZeroAllocSteadyState gates the drain-side hot path:
// marshaling, sealing and batch-flushing a full batch of responses
// must not allocate once batches and sealers exist.
func TestLiveSendPathZeroAllocSteadyState(t *testing.T) {
	if !transport.BatchSyscalls {
		t.Skip("fallback transport: per-datagram WriteToUDP may allocate in the runtime")
	}
	key := liveTestKey()
	sink := listenUDP(t) // absorbs the sealed responses
	conn, err := net.DialUDP("udp", nil, sink.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bc, err := transport.NewBatchConn(conn)
	if err != nil {
		t.Fatal(err)
	}
	sealer, err := wire.NewSealerShard(key, 500, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	to, ok := transport.SockaddrFromUDP(sink.LocalAddr().(*net.UDPAddr))
	if !ok {
		t.Fatal("bad sink addr")
	}
	const batch = 64
	deliveries := make([]Delivery[transport.Sockaddr], batch)
	for i := range deliveries {
		deliveries[i] = Delivery[transport.Sockaddr]{
			To:   to,
			Resp: wire.TimeResponse{ClientID: uint64(i), Seq: uint64(i), Status: wire.StatusOK, Nanos: 42},
		}
	}
	out := transport.NewBatch(batch, SealedResponseSize)
	var plain [wire.CommitResponseSize]byte
	s := &LiveServer{}
	run := func() { s.sendDeliveries(bc, sealer, deliveries, out, &plain) }
	run() // warm
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("steady-state send path allocated %.1f times per run", allocs)
	}
	if n := s.sendErrors.Load(); n != 0 {
		t.Fatalf("%d send errors on loopback", n)
	}
}
