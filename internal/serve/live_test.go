package serve

import (
	"net"
	"testing"
	"time"

	"triadtime/internal/wire"
)

func liveTestKey() []byte {
	key := make([]byte, wire.KeySize)
	for i := range key {
		key[i] = byte(i * 3)
	}
	return key
}

func listenUDP(t *testing.T) net.PacketConn {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	return conn
}

func TestLiveServerRoundtrip(t *testing.T) {
	key := liveTestKey()
	srv, err := NewLiveServer(LiveConfig{
		Conn:     listenUDP(t),
		Key:      key,
		SenderID: 150,
		Tick:     time.Millisecond,
		Server: Config{
			Clock: ClockFunc(func() (int64, error) { return 1234567890, nil }),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := listenUDP(t)
	defer client.Close()
	sealer, err := wire.NewSealer(key, 9001)
	if err != nil {
		t.Fatal(err)
	}
	opener, err := wire.NewOpener(key)
	if err != nil {
		t.Fatal(err)
	}

	const reqs = 20
	var plain [wire.TimeRequestSize]byte
	for i := 0; i < reqs; i++ {
		wire.TimeRequest{ClientID: 9001, Seq: uint64(i)}.MarshalInto(plain[:])
		if _, err := client.WriteTo(sealer.SealDatagramAppend(nil, plain[:]), srv.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}

	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	got := map[uint64]bool{}
	buf := make([]byte, 2048)
	for len(got) < reqs {
		n, _, err := client.ReadFrom(buf)
		if err != nil {
			t.Fatalf("after %d/%d responses: %v", len(got), reqs, err)
		}
		pt, sender, err := opener.OpenDatagramInto(nil, buf[:n])
		if err != nil {
			t.Fatalf("bad response datagram: %v", err)
		}
		// Each drain shard (and each receive goroutine's shed path)
		// seals under its own identity from the base-anchored range.
		idents := uint32(srv.Server().Shards() + srv.Sockets())
		if sender < 150 || sender >= 150+idents {
			t.Fatalf("response sender %d outside identity range [150,%d)", sender, 150+idents)
		}
		resp, err := wire.UnmarshalTimeResponse(pt)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != wire.StatusOK || resp.Nanos != 1234567890 || resp.ClientID != 9001 {
			t.Fatalf("bad response: %+v", resp)
		}
		got[resp.Seq] = true
	}
	c := srv.Server().Counters()
	if c.Served != reqs || c.Shed() != 0 {
		t.Fatalf("counters: %s", c.Summary())
	}
}

// TestLiveServerCloseAnswersAdmitted: requests admitted before Close
// are answered by the final drain, not dropped.
func TestLiveServerCloseAnswersAdmitted(t *testing.T) {
	key := liveTestKey()
	srv, err := NewLiveServer(LiveConfig{
		Conn:     listenUDP(t),
		Key:      key,
		SenderID: 150,
		// A long tick: the periodic drain won't fire before Close does,
		// so any response must come from the shutdown drain.
		Tick: time.Hour,
		Server: Config{
			Clock: ClockFunc(func() (int64, error) { return 7, nil }),
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	client := listenUDP(t)
	defer client.Close()
	sealer, err := wire.NewSealer(key, 77)
	if err != nil {
		t.Fatal(err)
	}
	var plain [wire.TimeRequestSize]byte
	wire.TimeRequest{ClientID: 77, Seq: 5}.MarshalInto(plain[:])
	if _, err := client.WriteTo(sealer.SealDatagramAppend(nil, plain[:]), srv.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	// Wait for admission, then close.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Server().Counters().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	opener, err := wire.NewOpener(key)
	if err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 2048)
	n, _, err := client.ReadFrom(buf)
	if err != nil {
		t.Fatalf("no response after Close: %v", err)
	}
	pt, _, err := opener.OpenDatagramInto(nil, buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.UnmarshalTimeResponse(pt)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusOK || resp.Seq != 5 || resp.Nanos != 7 {
		t.Fatalf("shutdown drain response: %+v", resp)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
